// ndb_inspect — dump a NeuroDB data directory (or a single file).
//
//   ndb_inspect <data-dir>          header + page directory of base.ndb and
//                                   every <backend>.pages file, plus every
//                                   WAL record (epoch, size, decoded ops)
//   ndb_inspect <file.ndb|.pages>   one page file
//   ndb_inspect <wal.ndb>           one write-ahead log
//   ndb_inspect wal <dir|wal.ndb>   one write-ahead log; --stats prints a
//                                   single summary line instead (records,
//                                   bytes, epoch span, kind histogram,
//                                   torn-tail flag)
//   ndb_inspect stats <data-dir>    recover the engine read-only and print
//                                   its metrics snapshot as JSON (--prom:
//                                   Prometheus text exposition instead) —
//                                   recovery-time state gauges (epoch,
//                                   delta records, pool/cache/io totals)
//   ndb_inspect tree <data-dir>     recover the engine and print the paged
//                                   R-tree's per-level profile: node count,
//                                   entries, fill %, pairwise MBR overlap
//                                   volume, root to leaves
//
// The dump commands are read-only: they never create, repair or truncate
// anything. `stats` and `tree` run the real recovery path
// (QueryEngine::Open), which truncates a torn WAL tail exactly as a
// restart would. Exit code 0 on a
// clean dump, 1 on unreadable/corrupt input (after printing what it could).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/durability.h"
#include "engine/query_engine.h"
#include "storage/disk/file.h"
#include "storage/disk/page_file.h"
#include "storage/disk/wal.h"

using namespace neurodb;

namespace {

int DumpPageFile(const std::string& path) {
  auto pf = storage::PageFile::Open(storage::DefaultFileSystem(), path);
  if (!pf.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 pf.status().ToString().c_str());
    return 1;
  }
  const storage::PageFile& file = **pf;
  std::printf("%s\n", path.c_str());
  std::printf("  page file: epoch=%llu block_bytes=%u file_blocks=%llu "
              "pages=%zu payload_bytes=%llu\n",
              static_cast<unsigned long long>(file.epoch()),
              file.block_bytes(),
              static_cast<unsigned long long>(file.file_blocks()),
              file.NumPages(),
              static_cast<unsigned long long>(file.PayloadBytes()));
  std::printf("  page directory (%zu entries):\n", file.NumPages());
  for (const auto& [id, run] : file.directory()) {
    std::printf("    page %-8u blocks [%u, +%u) payload %u bytes\n", id,
                run.first_block, run.num_blocks, run.payload_bytes);
  }
  if (!file.free_runs().empty()) {
    std::printf("  free runs (%zu):\n", file.free_runs().size());
    for (const auto& run : file.free_runs()) {
      std::printf("    blocks [%u, +%u)\n", run.first_block, run.num_blocks);
    }
  }
  return 0;
}

int DumpWal(const std::string& path, bool stats_only = false) {
  if (!storage::DefaultFileSystem()->Exists(path)) {
    std::fprintf(stderr, "%s: no such file\n", path.c_str());
    return 1;
  }
  auto wal =
      storage::WriteAheadLog::OpenOrCreate(storage::DefaultFileSystem(), path);
  if (!wal.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 wal.status().ToString().c_str());
    return 1;
  }
  if (!stats_only) std::printf("%s\n", path.c_str());
  storage::WriteAheadLog::ReplayStats stats;
  size_t update_batches = 0, load_records = 0, epoch_bumps = 0, unknown = 0;
  uint64_t payload_bytes = 0;
  storage::Epoch epoch_lo = 0, epoch_hi = 0;
  bool any_epoch = false;
  Status scanned = (*wal)->Replay(
      [&](const storage::WriteAheadLog::Record& record) {
        payload_bytes += record.payload.size();
        if (!any_epoch) {
          epoch_lo = epoch_hi = record.epoch;
          any_epoch = true;
        } else {
          epoch_lo = std::min(epoch_lo, record.epoch);
          epoch_hi = std::max(epoch_hi, record.epoch);
        }
        auto kind = engine::WalPayloadKind(record.payload);
        if (kind.ok() && *kind == engine::kWalKindUpdateBatch) {
          ++update_batches;
        } else if (kind.ok() && *kind == engine::kWalKindLoadElements) {
          ++load_records;
        } else if (kind.ok() && *kind == engine::kWalKindEpochBump) {
          ++epoch_bumps;
        } else {
          ++unknown;
        }
        if (stats_only) return Status::OK();
        std::printf("  record @%-8llu epoch=%-6llu payload=%zu bytes",
                    static_cast<unsigned long long>(record.offset),
                    static_cast<unsigned long long>(record.epoch),
                    record.payload.size());
        if (kind.ok() && *kind == engine::kWalKindUpdateBatch) {
          auto ops = engine::DecodeUpdateBatch(record.payload);
          if (ops.ok()) {
            size_t inserts = 0, erases = 0, moves = 0;
            for (const auto& op : *ops) {
              if (op.kind == engine::UpdateKind::kInsert) ++inserts;
              else if (op.kind == engine::UpdateKind::kErase) ++erases;
              else ++moves;
            }
            std::printf("  (%zu ops: %zu insert, %zu erase, %zu move)\n",
                        ops->size(), inserts, erases, moves);
          } else {
            std::printf("  (malformed update batch: %s)\n",
                        ops.status().ToString().c_str());
          }
        } else if (kind.ok() && *kind == engine::kWalKindLoadElements) {
          auto elements = engine::DecodeLoadElements(record.payload);
          if (elements.ok()) {
            std::printf("  (load record: %zu elements)\n", elements->size());
          } else {
            std::printf("  (malformed load record: %s)\n",
                        elements.status().ToString().c_str());
          }
        } else if (kind.ok() && *kind == engine::kWalKindEpochBump) {
          std::printf("  (epoch bump — op-less Compact epoch advance)\n");
        } else {
          std::printf("  (payload not a known record kind)\n");
        }
        return Status::OK();
      },
      &stats);
  if (!scanned.ok()) {
    std::fprintf(stderr, "  scan failed: %s\n", scanned.ToString().c_str());
    return 1;
  }
  if (stats_only) {
    // One summary line: what a shell script (or a human eyeballing group
    // commit) wants — how many records, how big, which epochs, what kinds.
    std::printf(
        "%s: records=%zu payload_bytes=%llu end_offset=%llu "
        "epochs=[%llu..%llu] update_batches=%zu load_records=%zu "
        "epoch_bumps=%zu unknown=%zu torn_tail=%s\n",
        path.c_str(), stats.records,
        static_cast<unsigned long long>(payload_bytes),
        static_cast<unsigned long long>(stats.end_offset),
        static_cast<unsigned long long>(any_epoch ? epoch_lo : 0),
        static_cast<unsigned long long>(any_epoch ? epoch_hi : 0),
        update_batches, load_records, epoch_bumps, unknown,
        stats.torn_tail ? "yes" : "no");
    return 0;
  }
  std::printf("  %zu intact records, end_offset=%llu\n", stats.records,
              static_cast<unsigned long long>(stats.end_offset));
  if (stats.torn_tail) {
    std::printf("  TORN TAIL: %llu trailing bytes are not an intact record "
                "(recovery would truncate them)\n",
                static_cast<unsigned long long>(stats.dropped_bytes));
  }
  return 0;
}

int DumpDir(const std::string& dir) {
  auto names = storage::DefaultFileSystem()->ListDir(dir);
  if (!names.ok()) {
    std::fprintf(stderr, "%s: %s\n", dir.c_str(),
                 names.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> sorted = *names;
  std::sort(sorted.begin(), sorted.end());
  // base.ndb first, then backend page files, then the WAL — the order a
  // reader wants to reason about recovery in.
  int rc = 0;
  bool any = false;
  for (const std::string& name : sorted) {
    if (name == "base.ndb" ||
        (name.size() > 6 &&
         name.compare(name.size() - 6, 6, ".pages") == 0)) {
      any = true;
      rc |= DumpPageFile(dir + "/" + name);
    }
  }
  for (const std::string& name : sorted) {
    if (name == "wal.ndb") {
      any = true;
      rc |= DumpWal(dir + "/" + name);
    }
  }
  if (!any) {
    std::fprintf(stderr, "%s: no base.ndb, *.pages or wal.ndb files\n",
                 dir.c_str());
    return 1;
  }
  return rc;
}

int DumpTree(const std::string& dir) {
  engine::RecoveryReport recovery;
  auto opened = engine::QueryEngine::Open(dir, engine::EngineOptions(),
                                          &recovery);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s: %s\n", dir.c_str(),
                 opened.status().ToString().c_str());
    return 1;
  }
  const rtree::RTree& tree = (*opened)->rtree_backend()->tree().tree();
  auto profile = tree.LevelProfile();
  std::printf("%s: R-tree  elements=%zu nodes=%zu height=%d\n", dir.c_str(),
              tree.size(), tree.NumNodes(), tree.Height());
  if (profile.empty()) {
    std::printf("  (empty tree)\n");
    return 0;
  }
  std::printf("  %-6s %-8s %-9s %-9s %-7s %-14s %s\n", "level", "nodes",
              "entries", "capacity", "fill%", "overlap um^3", "");
  // LevelProfile is leaf-first; print root-first, the way the tree reads.
  for (auto it = profile.rbegin(); it != profile.rend(); ++it) {
    std::string note = it->level == 0 ? "(leaves)" : "";
    if (it->overlap_sampled) note += " (overlap sampled)";
    std::printf("  %-6d %-8zu %-9zu %-9zu %-7.1f %-14.0f %s\n", it->level,
                it->nodes, it->entries, it->capacity, it->mean_fill * 100.0,
                it->overlap_volume, note.c_str());
  }
  return 0;
}

int DumpStats(const std::string& dir, bool prometheus) {
  engine::RecoveryReport recovery;
  auto opened = engine::QueryEngine::Open(dir, engine::EngineOptions(),
                                          &recovery);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s: %s\n", dir.c_str(),
                 opened.status().ToString().c_str());
    return 1;
  }
  const obs::MetricsSnapshot snapshot = (*opened)->MetricsSnapshot();
  if (prometheus) {
    std::fputs(snapshot.ToPrometheus().c_str(), stdout);
  } else {
    std::printf("%s\n", snapshot.ToJson().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "wal") == 0) {
    bool stats_only = false;
    std::string target;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--stats") == 0) {
        stats_only = true;
      } else if (target.empty()) {
        target = argv[i];
      } else {
        target.clear();
        break;
      }
    }
    if (target.empty()) {
      std::fprintf(stderr,
                   "usage: ndb_inspect wal <data-dir | wal.ndb> [--stats]\n");
      return 1;
    }
    if (std::filesystem::is_directory(target)) target += "/wal.ndb";
    return DumpWal(target, stats_only);
  }
  if (argc >= 2 && std::strcmp(argv[1], "tree") == 0) {
    if (argc != 3) {
      std::fprintf(stderr, "usage: ndb_inspect tree <data-dir>\n");
      return 1;
    }
    return DumpTree(argv[2]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "stats") == 0) {
    bool prometheus = false;
    std::string dir;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--prom") == 0) {
        prometheus = true;
      } else if (dir.empty()) {
        dir = argv[i];
      } else {
        dir.clear();
        break;
      }
    }
    if (dir.empty()) {
      std::fprintf(stderr, "usage: ndb_inspect stats <data-dir> [--prom]\n");
      return 1;
    }
    return DumpStats(dir, prometheus);
  }
  if (argc != 2 || std::strcmp(argv[1], "--help") == 0) {
    std::fprintf(stderr,
                 "usage: ndb_inspect <data-dir | file.ndb | file.pages>\n"
                 "       ndb_inspect wal <data-dir | wal.ndb> [--stats]\n"
                 "       ndb_inspect stats <data-dir> [--prom]\n"
                 "       ndb_inspect tree <data-dir>\n");
    return argc == 2 ? 0 : 1;
  }
  std::string path = argv[1];
  if (std::filesystem::is_directory(path)) return DumpDir(path);
  if (path.size() >= 7 &&
      path.compare(path.size() - 7, 7, "wal.ndb") == 0) {
    return DumpWal(path);
  }
  return DumpPageFile(path);
}
