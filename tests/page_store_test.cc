#include "storage/page_store.h"

#include <gtest/gtest.h>

namespace neurodb {
namespace storage {
namespace {

using geom::Aabb;
using geom::SpatialElement;
using geom::Vec3;

std::vector<SpatialElement> MakeElements(size_t n) {
  std::vector<SpatialElement> out;
  for (size_t i = 0; i < n; ++i) {
    float f = static_cast<float>(i);
    out.emplace_back(i, Aabb(Vec3(f, f, f), Vec3(f + 1, f + 1, f + 1)));
  }
  return out;
}

TEST(PageStoreTest, AllocateAssignsSequentialIds) {
  PageStore store;
  EXPECT_EQ(store.Allocate(), 0u);
  EXPECT_EQ(store.Allocate(), 1u);
  EXPECT_EQ(store.Allocate(), 2u);
  EXPECT_EQ(store.NumPages(), 3u);
}

TEST(PageStoreTest, WriteThenReadRoundTrips) {
  PageStore store;
  PageId id = store.Allocate();
  ASSERT_TRUE(store.Write(id, MakeElements(5)).ok());
  auto page = store.Read(id);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ((*page)->id, id);
  EXPECT_EQ((*page)->elements.size(), 5u);
  EXPECT_EQ((*page)->elements[3].id, 3u);
}

TEST(PageStoreTest, ReadInvalidIdFails) {
  PageStore store;
  auto page = store.Read(0);
  EXPECT_FALSE(page.ok());
  EXPECT_TRUE(page.status().IsOutOfRange());
}

TEST(PageStoreTest, WriteInvalidIdFails) {
  PageStore store;
  EXPECT_TRUE(store.Write(7, MakeElements(1)).IsOutOfRange());
}

TEST(PageStoreTest, StatsCountRawIo) {
  PageStore store;
  PageId id = store.Allocate();
  ASSERT_TRUE(store.Write(id, MakeElements(1)).ok());
  ASSERT_TRUE(store.Read(id).ok());
  ASSERT_TRUE(store.Read(id).ok());
  EXPECT_EQ(store.NumWrites(), 1u);
  EXPECT_EQ(store.NumReads(), 2u);
}

TEST(PageStoreTest, TotalBytesReflectsContents) {
  PageStore store;
  PageId a = store.Allocate();
  PageId b = store.Allocate();
  ASSERT_TRUE(store.Write(a, MakeElements(10)).ok());
  ASSERT_TRUE(store.Write(b, MakeElements(2)).ok());
  EXPECT_EQ(store.TotalBytes(),
            2 * kPageHeaderBytes + 12 * kElementBytes);
}

TEST(PageTest, BoundsCoverAllElements) {
  Page page;
  page.elements = MakeElements(4);
  Aabb b = page.Bounds();
  EXPECT_EQ(b.min, Vec3(0, 0, 0));
  EXPECT_EQ(b.max, Vec3(4, 4, 4));
}

TEST(PageTest, ElementsPerPageMatchesLayout) {
  // 8 KiB page: (8192 - 16) / 32 = 255 elements.
  EXPECT_EQ(ElementsPerPage(8192), 255u);
  EXPECT_EQ(ElementsPerPage(4096), 127u);
  // Degenerate page sizes never return zero.
  EXPECT_EQ(ElementsPerPage(10), 1u);
}

}  // namespace
}  // namespace storage
}  // namespace neurodb
