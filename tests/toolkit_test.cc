// Integration tests of the NeuroToolkit facade — the three demo exhibits
// end to end on a generated circuit.

#include "core/toolkit.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "neuro/circuit_generator.h"
#include "neuro/workload.h"

namespace neurodb {
namespace core {
namespace {

using geom::Aabb;
using geom::Vec3;

class ToolkitFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    neuro::CircuitParams params;
    params.num_neurons = 20;
    params.seed = 2024;
    auto circuit = neuro::CircuitGenerator(params).Generate();
    ASSERT_TRUE(circuit.ok());
    circuit_ = std::move(circuit).value();

    ToolkitOptions options;
    options.flat.elems_per_page = 64;
    options.rtree.max_entries = 64;
    options.rtree.min_entries = 26;
    tk_ = std::make_unique<NeuroToolkit>(options);
    ASSERT_TRUE(tk_->LoadCircuit(circuit_).ok());
  }

  neuro::Circuit circuit_;
  std::unique_ptr<NeuroToolkit> tk_;
};

TEST_F(ToolkitFixture, LoadPopulatesEverything) {
  EXPECT_TRUE(tk_->loaded());
  EXPECT_EQ(tk_->NumSegments(), circuit_.TotalSegments());
  EXPECT_GT(tk_->flat_index().NumPages(), 0u);
  EXPECT_GT(tk_->paged_rtree().NumPages(), 0u);
  EXPECT_GT(tk_->axons().size(), 0u);
  EXPECT_GT(tk_->dendrites().size(), 0u);
  EXPECT_EQ(tk_->resolver().size(), tk_->NumSegments());
}

TEST_F(ToolkitFixture, DoubleLoadFails) {
  EXPECT_TRUE(tk_->LoadCircuit(circuit_).IsAlreadyExists());
}

TEST_F(ToolkitFixture, QueriesBeforeLoadFail) {
  NeuroToolkit fresh;
  EXPECT_FALSE(fresh.CompareRangeQuery(Aabb::Cube(Vec3(0, 0, 0), 5)).ok());
  EXPECT_FALSE(fresh.WalkThrough({}, scout::PrefetchMethod::kNone).ok());
  EXPECT_FALSE(
      fresh.FindSynapses(touch::JoinMethod::kTouch, touch::JoinOptions()).ok());
  EXPECT_TRUE(
      fresh.LoadCircuit(neuro::Circuit()).IsInvalidArgument());  // empty
}

TEST_F(ToolkitFixture, CompareRangeQueryAgreesAndReportsStats) {
  auto queries = neuro::DataCenteredQueries(
      circuit_.FlattenSegments().Elements(), 40.0f, 5, 3);
  for (const auto& q : queries) {
    auto report = tk_->CompareRangeQuery(q);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->results_match);
    EXPECT_EQ(report->flat.results, report->rtree.results);
    EXPECT_GT(report->flat.results, 0u);
    EXPECT_GT(report->flat.pages_read, 0u);
    EXPECT_GT(report->rtree.pages_read, 0u);
    // The R-tree panel shows per-level node fetches summing to the total.
    uint64_t level_sum = 0;
    for (uint64_t c : report->rtree.nodes_per_level) level_sum += c;
    EXPECT_EQ(level_sum, report->rtree.pages_read);
  }
}

TEST_F(ToolkitFixture, FlatReadsFewerPagesOnSelectiveQueries) {
  // The demo's headline: on selective queries over dense data FLAT reads
  // only result pages while the R-tree pays for overlap. Compare averages.
  auto queries = neuro::DataCenteredQueries(
      circuit_.FlattenSegments().Elements(), 25.0f, 8, 5);
  uint64_t flat_pages = 0;
  uint64_t rtree_pages = 0;
  for (const auto& q : queries) {
    auto report = tk_->CompareRangeQuery(q);
    ASSERT_TRUE(report.ok());
    flat_pages += report->flat.pages_read;
    rtree_pages += report->rtree.pages_read;
  }
  EXPECT_LT(flat_pages, rtree_pages);
}

TEST_F(ToolkitFixture, WalkThroughWorksForAllMethods) {
  auto path = neuro::FollowBranchPath(circuit_, 1, 12.0f, 1);
  ASSERT_TRUE(path.ok());
  auto queries = neuro::PathQueries(*path, 30.0f);

  uint64_t none_stall = 0;
  for (auto method : scout::AllPrefetchMethods()) {
    auto result = tk_->WalkThrough(queries, method);
    ASSERT_TRUE(result.ok()) << scout::PrefetchMethodName(method);
    EXPECT_EQ(result->steps.size(), queries.size());
    if (method == scout::PrefetchMethod::kNone) {
      none_stall = result->total_stall_us;
    } else if (method == scout::PrefetchMethod::kScout) {
      EXPECT_LT(result->total_stall_us, none_stall);
    }
  }
}

TEST_F(ToolkitFixture, FindSynapsesIsMethodInvariant) {
  touch::JoinOptions options;
  options.epsilon = 3.0f;

  auto sort_pairs = [](std::vector<touch::JoinPair> pairs) {
    std::sort(pairs.begin(), pairs.end());
    return pairs;
  };

  auto reference =
      tk_->FindSynapses(touch::JoinMethod::kNestedLoop, options);
  ASSERT_TRUE(reference.ok());
  EXPECT_GT(reference->pairs.size(), 0u)
      << "a 20-neuron circuit must produce synapse candidates";
  auto expected = sort_pairs(reference->pairs);

  for (auto method :
       {touch::JoinMethod::kTouch, touch::JoinMethod::kPbsm,
        touch::JoinMethod::kS3, touch::JoinMethod::kPlaneSweep}) {
    auto result = tk_->FindSynapses(method, options);
    ASSERT_TRUE(result.ok()) << touch::JoinMethodName(method);
    EXPECT_EQ(sort_pairs(result->pairs), expected)
        << touch::JoinMethodName(method);
  }
}

TEST_F(ToolkitFixture, SynapsePairsConnectAxonToDendrite) {
  touch::JoinOptions options;
  options.epsilon = 3.0f;
  auto result = tk_->FindSynapses(touch::JoinMethod::kTouch, options);
  ASSERT_TRUE(result.ok());
  for (const auto& pair : result->pairs) {
    uint32_t pre = neuro::GidOf(pair.a);
    uint32_t post = neuro::GidOf(pair.b);
    EXPECT_LT(pre, circuit_.NumNeurons());
    EXPECT_LT(post, circuit_.NumNeurons());
    uint32_t section = neuro::SectionOf(pair.a);
    EXPECT_EQ(circuit_.neuron(pre).morphology.section(section).type,
              neuro::SectionType::kAxon);
    uint32_t post_section = neuro::SectionOf(pair.b);
    EXPECT_TRUE(neuro::IsDendrite(
        circuit_.neuron(post).morphology.section(post_section).type));
  }
}

}  // namespace
}  // namespace core
}  // namespace neurodb
