#include <gtest/gtest.h>

#include <cmath>

#include "mesh/surface_mesh.h"
#include "mesh/tube_mesher.h"

namespace neurodb {
namespace mesh {
namespace {

using geom::Vec3;

TEST(SurfaceMeshTest, AddAndQuery) {
  SurfaceMesh m;
  uint32_t a = m.AddVertex(Vec3(0, 0, 0));
  uint32_t b = m.AddVertex(Vec3(1, 0, 0));
  uint32_t c = m.AddVertex(Vec3(0, 1, 0));
  m.AddTriangle(a, b, c);
  EXPECT_EQ(m.NumVertices(), 3u);
  EXPECT_EQ(m.NumTriangles(), 1u);
  EXPECT_DOUBLE_EQ(m.TriangleAt(0).Area(), 0.5);
  EXPECT_DOUBLE_EQ(m.TotalArea(), 0.5);
}

TEST(SurfaceMeshTest, ValidateCatchesBadIndices) {
  SurfaceMesh m;
  m.AddVertex(Vec3(0, 0, 0));
  m.AddVertex(Vec3(1, 0, 0));
  m.AddTriangle(0, 1, 5);  // vertex 5 missing
  EXPECT_TRUE(m.Validate().IsCorruption());
}

TEST(SurfaceMeshTest, ValidateCatchesDegenerateFacet) {
  SurfaceMesh m;
  m.AddVertex(Vec3(0, 0, 0));
  m.AddVertex(Vec3(1, 0, 0));
  m.AddTriangle(0, 1, 1);
  EXPECT_TRUE(m.Validate().IsCorruption());
}

TEST(SurfaceMeshTest, OpenMeshFailsClosedCheck) {
  SurfaceMesh m;
  m.AddVertex(Vec3(0, 0, 0));
  m.AddVertex(Vec3(1, 0, 0));
  m.AddVertex(Vec3(0, 1, 0));
  m.AddTriangle(0, 1, 2);
  EXPECT_TRUE(m.Validate(false).ok());
  EXPECT_TRUE(m.Validate(true).IsCorruption());
}

TEST(SurfaceMeshTest, AppendRebasesIndices) {
  SurfaceMesh a;
  a.AddVertex(Vec3(0, 0, 0));
  a.AddVertex(Vec3(1, 0, 0));
  a.AddVertex(Vec3(0, 1, 0));
  a.AddTriangle(0, 1, 2);
  SurfaceMesh b = a;
  b.Append(a);
  EXPECT_EQ(b.NumVertices(), 6u);
  EXPECT_EQ(b.NumTriangles(), 2u);
  EXPECT_TRUE(b.Validate().ok());
  EXPECT_EQ(b.triangles()[1][0], 3u);
}

TEST(SurfaceMeshTest, ToElementsUsesBaseId) {
  SurfaceMesh m;
  m.AddVertex(Vec3(0, 0, 0));
  m.AddVertex(Vec3(1, 0, 0));
  m.AddVertex(Vec3(0, 1, 0));
  m.AddTriangle(0, 1, 2);
  auto elems = m.ToElements(1000);
  ASSERT_EQ(elems.size(), 1u);
  EXPECT_EQ(elems[0].id, 1000u);
  EXPECT_TRUE(elems[0].bounds.Contains(Vec3(0.5f, 0.5f, 0)));
}

TEST(TubeMesherTest, StraightTubeIsWatertight) {
  std::vector<Vec3> centers = {Vec3(0, 0, 0), Vec3(5, 0, 0), Vec3(10, 0, 0)};
  std::vector<float> radii = {1.0f, 1.0f, 1.0f};
  auto mesh = MeshTube(centers, radii);
  ASSERT_TRUE(mesh.ok());
  EXPECT_TRUE(mesh->Validate(/*require_closed=*/true).ok())
      << mesh->Validate(true).ToString();
  // 3 rings of 8 + 2 cap centers.
  EXPECT_EQ(mesh->NumVertices(), 3u * 8 + 2);
  // 2 ring bands * 16 triangles + 2 caps * 8.
  EXPECT_EQ(mesh->NumTriangles(), 2u * 16 + 16);
}

TEST(TubeMesherTest, CurvedJaggedTubeIsWatertight) {
  std::vector<Vec3> centers;
  std::vector<float> radii;
  for (int i = 0; i < 20; ++i) {
    centers.emplace_back(static_cast<float>(i),
                         std::sin(i * 0.7f) * 3.0f,
                         std::cos(i * 1.3f) * 2.0f);
    radii.push_back(1.0f - 0.03f * i);
  }
  TubeMesherOptions options;
  options.sides = 6;
  auto mesh = MeshTube(centers, radii, options);
  ASSERT_TRUE(mesh.ok());
  EXPECT_TRUE(mesh->Validate(true).ok()) << mesh->Validate(true).ToString();
}

TEST(TubeMesherTest, SurfaceAreaApproximatesCylinder) {
  // A straight unit-radius tube of length 10: lateral area 2*pi*r*L ~ 62.8.
  std::vector<Vec3> centers = {Vec3(0, 0, 0), Vec3(10, 0, 0)};
  std::vector<float> radii = {1.0f, 1.0f};
  TubeMesherOptions options;
  options.sides = 32;
  auto mesh = MeshTube(centers, radii, options);
  ASSERT_TRUE(mesh.ok());
  double lateral = 2 * M_PI * 1.0 * 10.0;
  double caps = 2 * M_PI * 1.0;  // two unit disks
  EXPECT_NEAR(mesh->TotalArea(), lateral + caps, 2.5);
}

TEST(TubeMesherTest, RejectsBadInput) {
  EXPECT_FALSE(MeshTube({Vec3(0, 0, 0)}, {1.0f}).ok());
  EXPECT_FALSE(MeshTube({Vec3(0, 0, 0), Vec3(1, 0, 0)}, {1.0f}).ok());
  EXPECT_FALSE(
      MeshTube({Vec3(0, 0, 0), Vec3(1, 0, 0)}, {1.0f, -1.0f}).ok());
  EXPECT_FALSE(
      MeshTube({Vec3(0, 0, 0), Vec3(0, 0, 0)}, {1.0f, 1.0f}).ok());
  TubeMesherOptions bad;
  bad.sides = 2;
  EXPECT_FALSE(
      MeshTube({Vec3(0, 0, 0), Vec3(1, 0, 0)}, {1.0f, 1.0f}, bad).ok());
}

TEST(MeshSphereTest, SphereIsWatertightAndRound) {
  SurfaceMesh sphere = MeshSphere(Vec3(5, 5, 5), 2.0f, 12, 8);
  EXPECT_TRUE(sphere.Validate(true).ok()) << sphere.Validate(true).ToString();
  // Area approaches 4*pi*r^2 = 50.27.
  EXPECT_NEAR(sphere.TotalArea(), 4 * M_PI * 4.0, 3.0);
  geom::Aabb b = sphere.Bounds();
  EXPECT_NEAR(b.Center().x, 5.0f, 1e-4);
  EXPECT_NEAR(b.Extent().y, 4.0f, 1e-4);
}

}  // namespace
}  // namespace mesh
}  // namespace neurodb
