// Durability stress: concurrent group-commit writers racing background
// checkpoints on a fault-injecting filesystem, crash-recover-verify in
// rounds (durability_stress_nightly scales NEURODB_STRESS_OPS to 4000),
// plus the residency-bound proof that streaming checkpoint and recovery
// never materialize more than a page chunk / pool window at a time.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "diff_harness.h"
#include "engine/durability.h"
#include "engine/query_engine.h"
#include "storage/disk/file.h"
#include "storage/page.h"

namespace neurodb {
namespace engine {
namespace {

using geom::Aabb;
using geom::ElementId;
using geom::ElementVec;
using geom::SpatialElement;
using geom::Vec3;
using neurodb::testing::EnvOr;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "ndb_durability_stress_XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    if (made != nullptr) path_ = made;
  }
  ~TempDir() {
    if (!path_.empty()) std::filesystem::remove_all(path_);
  }
  std::string Sub(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

ElementVec MakeGrid(size_t n) {
  ElementVec out;
  for (size_t i = 0; i < n; ++i) {
    float x = static_cast<float>(i % 8) * 10.0f;
    float y = static_cast<float>((i / 8) % 8) * 10.0f;
    float z = static_cast<float>(i / 64) * 10.0f;
    out.emplace_back(i + 1,
                     geom::Aabb(Vec3(x, y, z), Vec3(x + 4, y + 4, z + 4)));
  }
  return out;
}

EngineOptions StressOptions(const std::string& dir, storage::FileSystem* fs) {
  EngineOptions options;
  options.durability.dir = dir;
  options.durability.fs = fs;
  options.durability.block_bytes = 512;
  options.durability.sync = SyncPolicy::kGroup;
  options.durability.group_max_batches = 8;
  options.durability.group_hold_us = 500;
  // Small enough that every round's commits trip at least one background
  // checkpoint racing the writers.
  options.durability.checkpoint_wal_bytes = 4096;
  return options;
}

std::vector<ElementId> LiveIds(QueryEngine* db) {
  RangeRequest request;
  request.box = Aabb(Vec3(-100, -100, -100), Vec3(1e6f, 1e6f, 1e6f));
  request.backend = BackendChoice::kAll;
  geom::CollectingVisitor out;
  auto report = db->Execute(request, out);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report.ok()) EXPECT_TRUE(report->results_match);
  std::vector<ElementId> ids = out.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool IsSubset(const std::vector<ElementId>& sub,
              const std::vector<ElementId>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

// Rounds of: arm a random write budget over EVERY durable file (WAL group
// appends, background-checkpoint base rewrites and backend page flushes
// all count), let several writer threads race single-insert group commits
// against size-triggered background checkpoints until the budget kills
// something, then "restart": reopen and verify the recovered live set
// sits between the acknowledged set (group fsync returned — must survive)
// and the submitted set (a record written but never acknowledged may
// legitimately replay; state invented from nowhere may not). Recovered
// ids are durable from then on, so each round's baseline is the previous
// round's recovered set.
TEST(DurabilityStressTest, ConcurrentWritersWithBackgroundCheckpoints) {
  const size_t ops = static_cast<size_t>(EnvOr("NEURODB_STRESS_OPS", 400));
  uint64_t seed = EnvOr("NEURODB_STRESS_SEED", 0xBEEF0001);
  if (std::getenv("NEURODB_DIFF_SEED_FROM_DATE") != nullptr) {
    std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    seed = static_cast<uint64_t>(utc.tm_year + 1900) * 10000 +
           static_cast<uint64_t>(utc.tm_mon + 1) * 100 +
           static_cast<uint64_t>(utc.tm_mday);
  }
  constexpr int kWriters = 4;
  constexpr size_t kRounds = 6;
  const size_t per_writer =
      std::max<size_t>(5, ops / (kRounds * kWriters));

  TempDir dir;
  storage::FaultPlan plan;  // empty path_filter: every durable file counts
  storage::FaultInjectingFileSystem fs(storage::DefaultFileSystem(), &plan);

  auto db = std::make_unique<QueryEngine>(StressOptions(dir.Sub("data"), &fs));
  ASSERT_TRUE(db->LoadElements(MakeGrid(64)).ok());

  std::mt19937_64 rng(seed ^ 0xD0A1B2C3D4E5F607ull);
  std::vector<ElementId> present = LiveIds(db.get());  // the seed grid
  size_t crashes = 0;

  for (size_t round = 0; round < kRounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    plan.tear_bytes = (rng() % 3 == 0) ? 1 + rng() % 24 : 0;
    plan.Reset(static_cast<int64_t>(10 + rng() % 60));

    std::vector<std::vector<ElementId>> acked(kWriters);
    std::vector<std::vector<ElementId>> submitted(kWriters);
    {
      std::vector<std::thread> writers;
      for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w, round] {
          for (size_t i = 0; i < per_writer; ++i) {
            UpdateRequest request;
            request.kind = UpdateKind::kInsert;
            request.id = 1000000 + round * 100000 +
                         static_cast<ElementId>(w) * 10000 + i;
            float f = static_cast<float>(request.id % 89);
            request.bounds =
                Aabb(Vec3(f, f, f), Vec3(f + 2, f + 2, f + 2));
            submitted[w].push_back(request.id);
            auto applied = db->ApplyUpdates(
                std::span<const UpdateRequest>(&request, 1));
            if (applied.ok()) acked[w].push_back(request.id);
          }
        });
      }
      for (auto& t : writers) t.join();
    }
    if (plan.Crashed()) ++crashes;

    // "Restart the process" whether or not this round's budget fired: the
    // recovered set must contain the baseline + everything acknowledged,
    // and nothing that was never submitted.
    std::vector<ElementId> must_have = present;
    std::vector<ElementId> may_have = present;
    for (int w = 0; w < kWriters; ++w) {
      must_have.insert(must_have.end(), acked[w].begin(), acked[w].end());
      may_have.insert(may_have.end(), submitted[w].begin(),
                      submitted[w].end());
    }
    std::sort(must_have.begin(), must_have.end());
    std::sort(may_have.begin(), may_have.end());

    db.reset();
    plan.Reset(-1);
    RecoveryReport report;
    auto recovered = QueryEngine::Open(dir.Sub("data"),
                                       StressOptions("", &fs), &report);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    db = std::move(*recovered);

    std::vector<ElementId> ids = LiveIds(db.get());
    EXPECT_TRUE(IsSubset(must_have, ids))
        << "an acknowledged batch was lost in round " << round;
    EXPECT_TRUE(IsSubset(ids, may_have))
        << "recovery invented state in round " << round;
    present = std::move(ids);
  }
  // The budgets are sized so the sweep actually exercises crash paths.
  EXPECT_GT(crashes, 0u);
}

// The streaming bound: checkpoint a snapshot far larger than any buffer
// pool and prove peak residency stays one page chunk on the write side
// and one readahead window on the recovery side.
TEST(DurabilityStressTest, CheckpointAndRecoveryResidencyBoundedByPool) {
  TempDir dir;
  DurabilityOptions options;
  options.dir = dir.Sub("data");
  options.block_bytes = 512;
  auto dm = DurabilityManager::Create(options);
  ASSERT_TRUE(dm.ok()) << dm.status().ToString();

  const size_t per_page = storage::ElementsPerPage(options.block_bytes);
  const size_t kElements = per_page * 1200;  // ~1200 pages >> any window

  auto stream = (*dm)->BeginCheckpoint();
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  for (size_t i = 0; i < kElements; ++i) {
    float f = static_cast<float>(i % 997);
    ASSERT_TRUE((*stream)
                    ->Append(SpatialElement{
                        static_cast<ElementId>(i + 1),
                        Aabb(Vec3(f, f, f), Vec3(f + 1, f + 1, f + 1))})
                    .ok());
  }
  ASSERT_TRUE((*stream)->Finish().ok());
  EXPECT_EQ((*stream)->elements_written(), kElements);
  // Write-side residency: never more than one page chunk in memory,
  // no matter how large the live set is.
  EXPECT_LE((*stream)->max_buffered(), per_page);
  ASSERT_TRUE((*dm)->CommitCheckpoint(1, (*dm)->wal().end_offset()).ok());

  // Recovery-side residency: stream the snapshot back through a 16-page
  // pool budget; the readahead window must respect it while still
  // coalescing reads well below one call per page.
  const uint64_t window = 16 * options.block_bytes;
  storage::PageFile::ScanStats scan;
  size_t streamed = 0, max_span = 0;
  Status scanned = (*dm)->StreamBase(
      [&](std::span<const SpatialElement> page) {
        streamed += page.size();
        max_span = std::max(max_span, page.size());
        return Status::OK();
      },
      window, &scan);
  ASSERT_TRUE(scanned.ok()) << scanned.ToString();
  EXPECT_EQ(streamed, kElements);
  EXPECT_LE(max_span, per_page);
  EXPECT_LE(scan.max_window_bytes, window);
  EXPECT_GT(scan.read_calls, 0u);
  // Sequentially allocated checkpoint pages coalesce: far fewer device
  // reads than pages.
  EXPECT_LT(scan.read_calls, (kElements / per_page) / 4);
}

}  // namespace
}  // namespace engine
}  // namespace neurodb
