// Differential-testing harness runs: seeded randomized Range/Knn/Join
// workloads through FLAT, R-tree and Grid with brute-force ground truth
// (tests/diff_harness.h). The default run is sized for CI; the seeded
// "nightly" ctest registration (see CMakeLists.txt) scales it up through
// NEURODB_DIFF_QUERIES and rotates the seed daily at run time via
// NEURODB_DIFF_SEED_FROM_DATE (NEURODB_DIFF_SEED pins it explicitly).

#include "diff_harness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

#include "neuro/circuit_generator.h"

namespace neurodb {
namespace testing {
namespace {

using geom::Aabb;
using geom::Vec3;

// The workload seed: fixed by default (deterministic CI), overridable via
// NEURODB_DIFF_SEED, or — for the nightly registration — derived from the
// current UTC date at run time (YYYYMMDD) so a cached build directory
// still rotates its coverage.
uint64_t DiffSeed() {
  if (std::getenv("NEURODB_DIFF_SEED_FROM_DATE") != nullptr) {
    std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    return static_cast<uint64_t>(utc.tm_year + 1900) * 10000 +
           static_cast<uint64_t>(utc.tm_mon + 1) * 100 +
           static_cast<uint64_t>(utc.tm_mday);
  }
  return EnvOr("NEURODB_DIFF_SEED", 20260730);
}

neuro::Circuit MakeCircuit(uint32_t neurons, uint64_t seed) {
  neuro::CircuitParams params;
  params.num_neurons = neurons;
  params.seed = seed;
  auto circuit = neuro::CircuitGenerator(params).Generate();
  EXPECT_TRUE(circuit.ok());
  return std::move(circuit).value();
}

class DiffHarnessFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    circuit_ = MakeCircuit(12, 7);
    engine::EngineOptions options;
    options.flat.elems_per_page = 64;
    options.grid.elems_per_page = 64;
    // The nightly registration sets NEURODB_DIFF_THREADS so the same
    // workload also exercises the worker pool + parallel shard fan-out.
    options.num_threads = std::max<uint64_t>(1, EnvOr("NEURODB_DIFF_THREADS", 1));
    db_ = std::make_unique<engine::QueryEngine>(options);
    ASSERT_TRUE(db_->LoadCircuit(circuit_).ok());
    elements_ = circuit_.FlattenSegments().Elements();
  }

  neuro::Circuit circuit_;
  std::unique_ptr<engine::QueryEngine> db_;
  geom::ElementVec elements_;
};

// The acceptance run: a seeded randomized Range/Knn workload, replayed
// through all three backends, zero divergences tolerated. Seed and size are
// env-overridable for the nightly registration.
TEST_F(DiffHarnessFixture, SeededRangeKnnWorkloadHasNoDivergence) {
  neuro::MixedWorkloadOptions options;
  options.knn_fraction = 0.35;
  options.join_fraction = 0.0;

  size_t queries = EnvOr("NEURODB_DIFF_QUERIES", 1000);
  uint64_t seed = DiffSeed();
  DiffOutcome outcome =
      RunDifferential(db_.get(), elements_, options, queries, seed);
  EXPECT_FALSE(outcome.diverged) << outcome.Summary();
  EXPECT_EQ(outcome.queries_run, queries);
  EXPECT_GT(outcome.ranges, 0u);
  EXPECT_GT(outcome.knns, 0u);
}

// Walkthrough queries replay random-walk paths one Session::Step at a time
// and cross-check every step against the kAll range path and brute force
// (ROADMAP PR-2 follow-up: session replay folded into the harness).
TEST_F(DiffHarnessFixture, SeededWalkthroughWorkloadHasNoDivergence) {
  neuro::MixedWorkloadOptions options;
  options.knn_fraction = 0.25;
  options.walkthrough_fraction = 0.25;
  options.walk_steps = 5;

  DiffOutcome outcome = RunDifferential(db_.get(), elements_, options, 60,
                                        EnvOr("NEURODB_DIFF_SEED", 20260730));
  EXPECT_FALSE(outcome.diverged) << outcome.Summary();
  EXPECT_GT(outcome.walkthroughs, 0u);
  EXPECT_GT(outcome.ranges, 0u);
}

// Delta-query parity (result-cache subsystem): a seeded workload of range
// queries through CachePolicy::kDelta (backend rotated per query) plus
// walkthroughs with deliberately overlapping boxes replayed through cached
// and cold sessions — every answer byte-identical to a cold full re-query.
// 1000 queries in CI; the nightly registration scales to 10000 via
// NEURODB_DELTA_QUERIES.
TEST_F(DiffHarnessFixture, DeltaCachedAnswersMatchColdReQueries) {
  neuro::MixedWorkloadOptions options;
  options.knn_fraction = 0.0;
  options.walkthrough_fraction = 0.05;
  options.walk_steps = 5;
  // Steps much shorter than the box side: ~80% volume overlap between
  // consecutive walkthrough boxes, the result cache's home turf.
  options.walk_step = 6.0f;
  options.walk_side = 30.0f;

  size_t queries = EnvOr("NEURODB_DELTA_QUERIES", 1000);
  DiffOutcome outcome =
      RunDeltaParity(db_.get(), elements_, options, queries, DiffSeed());
  EXPECT_FALSE(outcome.diverged) << outcome.Summary();
  EXPECT_EQ(outcome.queries_run, queries);
  EXPECT_GT(outcome.ranges, 0u);
  EXPECT_GT(outcome.walkthroughs, 0u);
  // The delta path must actually have served cache coverage, or the run
  // proved nothing about the planner.
  ASSERT_NE(db_->result_cache(), nullptr);
  EXPECT_GT(db_->result_cache()->stats().hits, 0u);
}

// Join queries cross-check TOUCH against the independent plane-sweep
// algorithm at randomized epsilons.
TEST_F(DiffHarnessFixture, SeededJoinWorkloadHasNoDivergence) {
  neuro::MixedWorkloadOptions options;
  options.join_fraction = 1.0;

  DiffOutcome outcome = RunDifferential(db_.get(), elements_, options, 4,
                                        EnvOr("NEURODB_DIFF_SEED", 20260730));
  EXPECT_FALSE(outcome.diverged) << outcome.Summary();
  EXPECT_EQ(outcome.joins, 4u);
}

// The sub-seed printed on divergence regenerates exactly the failing query:
// workload[i] must be bit-identical to MixedWorkloadQuery(seed + i).
TEST_F(DiffHarnessFixture, SubSeedRegeneratesExactQuery) {
  neuro::MixedWorkloadOptions options;
  options.knn_fraction = 0.4;
  options.join_fraction = 0.1;
  auto workload =
      neuro::MixedWorkload(db_->domain(), elements_, options, 50, 99);
  ASSERT_EQ(workload.size(), 50u);
  for (size_t i = 0; i < workload.size(); ++i) {
    neuro::WorkloadQuery again = neuro::MixedWorkloadQuery(
        db_->domain(), elements_, options, workload[i].sub_seed);
    EXPECT_EQ(workload[i].sub_seed, 99u + i);
    EXPECT_EQ(static_cast<int>(again.kind),
              static_cast<int>(workload[i].kind));
    EXPECT_EQ(again.box, workload[i].box);
    EXPECT_EQ(again.point.x, workload[i].point.x);
    EXPECT_EQ(again.point.y, workload[i].point.y);
    EXPECT_EQ(again.point.z, workload[i].point.z);
    EXPECT_EQ(again.k, workload[i].k);
    EXPECT_EQ(again.epsilon, workload[i].epsilon);
  }
}

// Index-variant rotation: the same seeded Range/Knn workload, zero
// divergences tolerated, through engines whose R-tree and sharded backends
// are configured with the new construction paths — Hilbert bulk loading,
// partial fill factors, R* forced reinsertion, and Hilbert-assigned shards
// hosting inner R-trees — over skewed element clouds (Gaussian clusters /
// power-law density) instead of the fixture's circuit. FLAT is always part
// of the kAll parity set, so every variant is checked byte-identical to
// the FLAT ground truth as well as brute force. CI runs 1000 queries per
// variant; the nightly registration scales to 10000 and rotates the seed.
struct IndexVariant {
  const char* name;
  engine::EngineOptions options;
};

std::vector<IndexVariant> IndexVariants() {
  std::vector<IndexVariant> out;
  {
    IndexVariant v{"HilbertBulkFill80", {}};
    v.options.rtree.build = rtree::BuildAlgorithm::kHilbertBulk;
    v.options.rtree.fill_factor = 0.8;
    out.push_back(v);
  }
  {
    IndexVariant v{"RStarReinsertInsert", {}};
    v.options.rtree.build = rtree::BuildAlgorithm::kDynamicInsert;
    v.options.rtree.split = rtree::SplitAlgorithm::kRStar;
    v.options.rtree.reinsert_factor = 0.3;
    out.push_back(v);
  }
  {
    IndexVariant v{"StrBulkFill70ShardedHilbertRTree", {}};
    v.options.rtree.build = rtree::BuildAlgorithm::kStrBulk;
    v.options.rtree.fill_factor = 0.7;
    v.options.sharded.assignment = engine::ShardAssignment::kHilbert;
    v.options.sharded.inner_index = engine::ShardIndexKind::kRTree;
    out.push_back(v);
  }
  {
    IndexVariant v{"ShardedHilbertGrid", {}};
    v.options.sharded.assignment = engine::ShardAssignment::kHilbert;
    v.options.sharded.num_shards = 6;
    out.push_back(v);
  }
  return out;
}

class IndexVariantDiffTest : public ::testing::TestWithParam<size_t> {};

TEST_P(IndexVariantDiffTest, BuildVariantWorkloadHasNoDivergence) {
  const IndexVariant variant = IndexVariants()[GetParam()];
  engine::EngineOptions options = variant.options;
  options.flat.elems_per_page = 64;
  options.grid.elems_per_page = 64;
  options.num_threads =
      std::max<uint64_t>(1, EnvOr("NEURODB_DIFF_THREADS", 1));
  engine::QueryEngine db(options);

  // Skewed clouds, not the circuit: the distributions the new build paths
  // exist for, alternated across variants.
  const Aabb domain(Vec3(0, 0, 0), Vec3(200, 200, 200));
  geom::ElementVec elements =
      GetParam() % 2 == 0
          ? neuro::ClusteredElements(4000, domain, /*clusters=*/16,
                                     /*sigma=*/5.0f, /*elem_side=*/1.5f,
                                     /*seed=*/31)
          : neuro::PowerLawElements(4000, domain, /*clusters=*/24,
                                    /*alpha=*/1.1, /*sigma_max=*/30.0f,
                                    /*elem_side=*/1.5f, /*seed=*/32);
  ASSERT_TRUE(db.LoadElements(elements).ok());

  neuro::MixedWorkloadOptions workload;
  workload.knn_fraction = 0.35;
  workload.join_fraction = 0.0;

  size_t queries = EnvOr("NEURODB_DIFF_QUERIES", 1000);
  DiffOutcome outcome = RunDifferential(&db, elements, workload, queries,
                                        DiffSeed() + 100 * (GetParam() + 1));
  EXPECT_FALSE(outcome.diverged)
      << variant.name << ": " << outcome.Summary();
  EXPECT_EQ(outcome.queries_run, queries);
  EXPECT_GT(outcome.ranges, 0u);
  EXPECT_GT(outcome.knns, 0u);
}

INSTANTIATE_TEST_SUITE_P(Variants, IndexVariantDiffTest,
                         ::testing::Range<size_t>(0, IndexVariants().size()),
                         [](const auto& info) {
                           return std::string(
                               IndexVariants()[info.param].name);
                         });

// A backend that silently drops the first streamed match of every range
// query — the class of bug the harness exists to catch.
class LossyBackend : public engine::GridBackend {
 public:
  const char* name() const override { return "Lossy"; }

  // Queries flow through the epoch-pinned entry point — inject there.
  Status RangeQueryAt(storage::Epoch read_epoch, const Aabb& box,
                      storage::PoolSet* pools, geom::ResultVisitor& visitor,
                      engine::RangeStats* stats) const override {
    struct DropFirst : geom::ResultVisitor {
      geom::ResultVisitor* inner = nullptr;
      bool dropped = false;
      void Visit(geom::ElementId id, const Aabb& bounds) override {
        if (!dropped) {
          dropped = true;
          return;
        }
        inner->Visit(id, bounds);
      }
    };
    DropFirst drop;
    drop.inner = &visitor;
    return GridBackend::RangeQueryAt(read_epoch, box, pools, drop, stats);
  }
};

// The harness detects an injected divergence and hands back a sub-seed
// that regenerates a diverging query on its own.
TEST(DiffHarnessDetectionTest, CatchesLossyBackendWithMinimalRepro) {
  neuro::Circuit circuit = MakeCircuit(8, 21);
  engine::EngineOptions options;
  options.flat.elems_per_page = 64;
  engine::QueryEngine db(options);
  ASSERT_TRUE(db.RegisterBackend(std::make_unique<LossyBackend>()).ok());
  ASSERT_TRUE(db.LoadCircuit(circuit).ok());
  geom::ElementVec elements = circuit.FlattenSegments().Elements();

  neuro::MixedWorkloadOptions workload;
  workload.knn_fraction = 0.0;
  workload.data_centered_fraction = 1.0;  // guaranteed non-empty results
  DiffOutcome outcome = RunDifferential(&db, elements, workload, 50, 5);
  ASSERT_TRUE(outcome.diverged) << outcome.Summary();

  // Minimal repro: regenerate just the failing query from its sub-seed and
  // watch it diverge again, in isolation.
  neuro::WorkloadQuery repro = neuro::MixedWorkloadQuery(
      db.domain(), elements, workload, outcome.failing_seed);
  ASSERT_EQ(static_cast<int>(repro.kind),
            static_cast<int>(neuro::QueryKind::kRange));
  engine::RangeRequest request;
  request.box = repro.box;
  request.backend = engine::BackendChoice::kAll;
  auto report = db.Execute(request);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->results_match);
}

}  // namespace
}  // namespace testing
}  // namespace neurodb
