#include "storage/pagination.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace neurodb {
namespace storage {
namespace {

using geom::Aabb;
using geom::ElementVec;
using geom::SpatialElement;
using geom::Vec3;

ElementVec RandomElements(size_t n, uint64_t seed) {
  Pcg32 rng(seed);
  ElementVec out;
  for (size_t i = 0; i < n; ++i) {
    Vec3 c(static_cast<float>(rng.Uniform(0, 100)),
           static_cast<float>(rng.Uniform(0, 100)),
           static_cast<float>(rng.Uniform(0, 100)));
    out.emplace_back(i, Aabb::Cube(c, 1.0f));
  }
  return out;
}

class PaginationOrderTest : public ::testing::TestWithParam<PackOrder> {};

TEST_P(PaginationOrderTest, PreservesEveryElementExactlyOnce) {
  ElementVec elements = RandomElements(500, 42);
  PageStore store;
  auto layout = PaginateElements(elements, &store, 64, GetParam());
  ASSERT_TRUE(layout.ok());
  std::multiset<uint64_t> seen;
  for (PageId id : layout->page_ids) {
    auto page = store.Read(id);
    ASSERT_TRUE(page.ok());
    for (const auto& e : (*page)->elements) seen.insert(e.id);
  }
  EXPECT_EQ(seen.size(), elements.size());
  for (const auto& e : elements) {
    EXPECT_EQ(seen.count(e.id), 1u) << "element " << e.id;
  }
}

TEST_P(PaginationOrderTest, PageBoundsAreTight) {
  ElementVec elements = RandomElements(300, 7);
  PageStore store;
  auto layout = PaginateElements(elements, &store, 50, GetParam());
  ASSERT_TRUE(layout.ok());
  ASSERT_EQ(layout->page_ids.size(), layout->page_bounds.size());
  for (size_t i = 0; i < layout->page_ids.size(); ++i) {
    auto page = store.Read(layout->page_ids[i]);
    ASSERT_TRUE(page.ok());
    Aabb computed;
    for (const auto& e : (*page)->elements) computed.Extend(e.bounds);
    EXPECT_EQ(computed, layout->page_bounds[i]);
  }
}

TEST_P(PaginationOrderTest, RespectsPageCapacity) {
  ElementVec elements = RandomElements(257, 9);
  PageStore store;
  auto layout = PaginateElements(elements, &store, 32, GetParam());
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->page_ids.size(), (257 + 31) / 32);
  for (PageId id : layout->page_ids) {
    auto page = store.Read(id);
    ASSERT_TRUE(page.ok());
    EXPECT_LE((*page)->elements.size(), 32u);
    EXPECT_GE((*page)->elements.size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOrders, PaginationOrderTest,
                         ::testing::Values(PackOrder::kHilbert, PackOrder::kStr,
                                           PackOrder::kInput),
                         [](const auto& info) {
                           switch (info.param) {
                             case PackOrder::kHilbert:
                               return "Hilbert";
                             case PackOrder::kStr:
                               return "Str";
                             case PackOrder::kInput:
                               return "Input";
                           }
                           return "Unknown";
                         });

TEST(PaginationTest, EmptyInputYieldsEmptyLayout) {
  PageStore store;
  auto layout = PaginateElements({}, &store, 10, PackOrder::kHilbert);
  ASSERT_TRUE(layout.ok());
  EXPECT_TRUE(layout->page_ids.empty());
  EXPECT_EQ(store.NumPages(), 0u);
}

TEST(PaginationTest, NullStoreAndZeroCapacityFail) {
  ElementVec elements = RandomElements(5, 1);
  PageStore store;
  EXPECT_FALSE(PaginateElements(elements, nullptr, 10, PackOrder::kStr).ok());
  EXPECT_FALSE(PaginateElements(elements, &store, 0, PackOrder::kStr).ok());
}

TEST(PaginationTest, TracksElementPagesWhenAsked) {
  ElementVec elements = RandomElements(100, 3);
  PageStore store;
  auto layout = PaginateElements(elements, &store, 16, PackOrder::kHilbert,
                                 /*track_element_pages=*/true);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->element_pages.size(), elements.size());
  // Every mapping must be consistent with the actual page contents.
  for (const auto& [eid, pid] : layout->element_pages) {
    auto page = store.Read(pid);
    ASSERT_TRUE(page.ok());
    bool found = false;
    for (const auto& e : (*page)->elements) {
      if (e.id == eid) found = true;
    }
    EXPECT_TRUE(found) << "element " << eid << " not on its page";
  }
}

TEST(PaginationTest, HilbertPackingIsSpatiallyCoherent) {
  // Hilbert-packed pages must have far smaller total page volume than
  // input-order pages on shuffled data.
  ElementVec elements = RandomElements(2000, 11);
  PageStore store_h;
  PageStore store_i;
  auto hilbert =
      PaginateElements(elements, &store_h, 64, PackOrder::kHilbert);
  auto input = PaginateElements(elements, &store_i, 64, PackOrder::kInput);
  ASSERT_TRUE(hilbert.ok());
  ASSERT_TRUE(input.ok());
  auto total_volume = [](const Layout& layout) {
    double v = 0;
    for (const auto& b : layout.page_bounds) v += b.Volume();
    return v;
  };
  EXPECT_LT(total_volume(*hilbert) * 5, total_volume(*input));
}

TEST(StrOrderTest, ReturnsAPermutation) {
  ElementVec elements = RandomElements(777, 13);
  auto order = StrOrder(elements, 32);
  ASSERT_EQ(order.size(), elements.size());
  std::vector<uint32_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (uint32_t i = 0; i < sorted.size(); ++i) {
    ASSERT_EQ(sorted[i], i);
  }
}

TEST(StrOrderTest, HandlesEdgeCases) {
  EXPECT_TRUE(StrOrder({}, 10).empty());
  ElementVec one = RandomElements(1, 1);
  EXPECT_EQ(StrOrder(one, 10).size(), 1u);
  ElementVec few = RandomElements(5, 2);
  EXPECT_EQ(StrOrder(few, 0).size(), 5u);  // degenerate group size
}

}  // namespace
}  // namespace storage
}  // namespace neurodb
