// Property tests: for every construction path (dynamic insertion with both
// split algorithms — R* with and without forced reinsertion — plus STR and
// Hilbert bulk loading at full and partial fill factors) and across seeds
// and dataset shapes, the R-tree must (a) satisfy its structural invariants
// and (b) answer range queries exactly like brute force.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/rng.h"
#include "rtree/rtree.h"

namespace neurodb {
namespace rtree {
namespace {

using geom::Aabb;
using geom::ElementId;
using geom::ElementVec;
using geom::Vec3;

enum class BuildKind {
  kInsertQuadratic,
  kInsertRStar,          // R* split, no forced reinsertion
  kInsertRStarReinsert,  // R* split + 30% forced reinsertion on overflow
  kBulkStr,
  kBulkHilbert,
  kBulkStrFill75,      // STR packing at a partial fill factor
  kBulkHilbertFill75,  // Hilbert packing at a partial fill factor
};

std::string BuildKindName(BuildKind k) {
  switch (k) {
    case BuildKind::kInsertQuadratic:
      return "InsertQuadratic";
    case BuildKind::kInsertRStar:
      return "InsertRStar";
    case BuildKind::kInsertRStarReinsert:
      return "InsertRStarReinsert";
    case BuildKind::kBulkStr:
      return "BulkStr";
    case BuildKind::kBulkHilbert:
      return "BulkHilbert";
    case BuildKind::kBulkStrFill75:
      return "BulkStrFill75";
    case BuildKind::kBulkHilbertFill75:
      return "BulkHilbertFill75";
  }
  return "Unknown";
}

enum class DataShape { kUniform, kClustered, kSkewedLine };

std::string DataShapeName(DataShape s) {
  switch (s) {
    case DataShape::kUniform:
      return "Uniform";
    case DataShape::kClustered:
      return "Clustered";
    case DataShape::kSkewedLine:
      return "SkewedLine";
  }
  return "Unknown";
}

ElementVec MakeData(DataShape shape, size_t n, uint64_t seed) {
  Pcg32 rng(seed);
  ElementVec out;
  switch (shape) {
    case DataShape::kUniform:
      for (size_t i = 0; i < n; ++i) {
        Vec3 c(static_cast<float>(rng.Uniform(0, 100)),
               static_cast<float>(rng.Uniform(0, 100)),
               static_cast<float>(rng.Uniform(0, 100)));
        out.emplace_back(i, Aabb::Cube(c, static_cast<float>(rng.Uniform(0.2, 3))));
      }
      break;
    case DataShape::kClustered: {
      const int kClusters = 8;
      std::vector<Vec3> centers;
      for (int c = 0; c < kClusters; ++c) {
        centers.emplace_back(static_cast<float>(rng.Uniform(10, 90)),
                             static_cast<float>(rng.Uniform(10, 90)),
                             static_cast<float>(rng.Uniform(10, 90)));
      }
      for (size_t i = 0; i < n; ++i) {
        const Vec3& c = centers[rng.NextBounded(kClusters)];
        Vec3 p(c.x + static_cast<float>(rng.Gaussian(0, 3)),
               c.y + static_cast<float>(rng.Gaussian(0, 3)),
               c.z + static_cast<float>(rng.Gaussian(0, 3)));
        out.emplace_back(i, Aabb::Cube(p, 1.0f));
      }
      break;
    }
    case DataShape::kSkewedLine:
      // Elongated boxes along a diagonal: high-overlap adversarial case.
      for (size_t i = 0; i < n; ++i) {
        float t = static_cast<float>(rng.Uniform(0, 100));
        Vec3 a(t, t, t);
        Vec3 b(t + static_cast<float>(rng.Uniform(1, 10)),
               t + static_cast<float>(rng.Uniform(0.1, 1)),
               t + static_cast<float>(rng.Uniform(0.1, 1)));
        out.emplace_back(i, Aabb(a, b));
      }
      break;
  }
  return out;
}

std::vector<ElementId> BruteForce(const ElementVec& elements,
                                  const Aabb& box) {
  std::vector<ElementId> out;
  for (const auto& e : elements) {
    if (e.bounds.Intersects(box)) out.push_back(e.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

using Param = std::tuple<BuildKind, DataShape, uint64_t>;

class RTreeEquivalenceTest : public ::testing::TestWithParam<Param> {};

TEST_P(RTreeEquivalenceTest, InvariantsHoldAndQueriesMatchBruteForce) {
  auto [kind, shape, seed] = GetParam();
  const size_t n = 900;
  ElementVec elements = MakeData(shape, n, seed);

  RTreeOptions options;
  options.max_entries = 12;
  options.min_entries = 5;

  RTree tree{options};
  switch (kind) {
    case BuildKind::kInsertQuadratic:
    case BuildKind::kInsertRStar:
    case BuildKind::kInsertRStarReinsert: {
      options.split = kind == BuildKind::kInsertQuadratic
                          ? SplitAlgorithm::kQuadratic
                          : SplitAlgorithm::kRStar;
      // Pin the reinsertion knob so the two R* variants are genuinely
      // distinct paths (the default is non-zero).
      options.reinsert_factor =
          kind == BuildKind::kInsertRStarReinsert ? 0.3 : 0.0;
      tree = RTree{options};
      for (const auto& e : elements) {
        ASSERT_TRUE(tree.Insert(e).ok());
      }
      break;
    }
    case BuildKind::kBulkStr: {
      auto built = RTree::BulkLoadStr(elements, options);
      ASSERT_TRUE(built.ok());
      tree = std::move(built).value();
      break;
    }
    case BuildKind::kBulkHilbert: {
      auto built = RTree::BulkLoadHilbert(elements, options);
      ASSERT_TRUE(built.ok());
      tree = std::move(built).value();
      break;
    }
    case BuildKind::kBulkStrFill75:
    case BuildKind::kBulkHilbertFill75: {
      options.build = kind == BuildKind::kBulkStrFill75
                          ? BuildAlgorithm::kStrBulk
                          : BuildAlgorithm::kHilbertBulk;
      options.fill_factor = 0.75;
      auto built = RTree::Build(elements, options);
      ASSERT_TRUE(built.ok());
      tree = std::move(built).value();
      break;
    }
  }

  ASSERT_EQ(tree.size(), n);
  Status invariants = tree.CheckInvariants();
  ASSERT_TRUE(invariants.ok()) << invariants.ToString();

  Pcg32 rng(seed ^ 0xfeed);
  for (int q = 0; q < 30; ++q) {
    Aabb box = Aabb::Cube(Vec3(static_cast<float>(rng.Uniform(-10, 110)),
                               static_cast<float>(rng.Uniform(-10, 110)),
                               static_cast<float>(rng.Uniform(-10, 110))),
                          static_cast<float>(rng.Uniform(0.5, 40)));
    std::vector<ElementId> got;
    tree.RangeQuery(box, &got);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForce(elements, box))
        << BuildKindName(kind) << "/" << DataShapeName(shape) << " query " << q;
  }
}

TEST_P(RTreeEquivalenceTest, FindAnySucceedsIffRangeNonEmpty) {
  auto [kind, shape, seed] = GetParam();
  if (kind != BuildKind::kBulkStr) {
    GTEST_SKIP() << "seed-lookup property only exercised on the bulk tree";
  }
  ElementVec elements = MakeData(shape, 700, seed);
  auto tree = RTree::BulkLoadStr(elements);
  ASSERT_TRUE(tree.ok());
  Pcg32 rng(seed ^ 0xabcd);
  for (int q = 0; q < 40; ++q) {
    Aabb box = Aabb::Cube(Vec3(static_cast<float>(rng.Uniform(-20, 120)),
                               static_cast<float>(rng.Uniform(-20, 120)),
                               static_cast<float>(rng.Uniform(-20, 120))),
                          static_cast<float>(rng.Uniform(0.5, 25)));
    geom::SpatialElement found;
    bool any = tree->FindAny(box, &found);
    bool expect = !BruteForce(elements, box).empty();
    ASSERT_EQ(any, expect);
    if (any) {
      ASSERT_TRUE(found.bounds.Intersects(box));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RTreeEquivalenceTest,
    ::testing::Combine(::testing::Values(BuildKind::kInsertQuadratic,
                                         BuildKind::kInsertRStar,
                                         BuildKind::kInsertRStarReinsert,
                                         BuildKind::kBulkStr,
                                         BuildKind::kBulkHilbert,
                                         BuildKind::kBulkStrFill75,
                                         BuildKind::kBulkHilbertFill75),
                       ::testing::Values(DataShape::kUniform,
                                         DataShape::kClustered,
                                         DataShape::kSkewedLine),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return BuildKindName(std::get<0>(info.param)) +
             DataShapeName(std::get<1>(info.param)) + "Seed" +
             std::to_string(std::get<2>(info.param));
    });

// Mixed workload: bulk load, then keep inserting — the tree must stay
// consistent through repeated splits on top of a packed structure.
TEST(RTreeMixedTest, BulkThenInsertStaysConsistent) {
  ElementVec initial = MakeData(DataShape::kUniform, 500, 50);
  RTreeOptions options;
  options.max_entries = 10;
  options.min_entries = 4;
  auto built = RTree::BulkLoadStr(initial, options);
  ASSERT_TRUE(built.ok());
  RTree tree = std::move(built).value();

  ElementVec extra = MakeData(DataShape::kClustered, 500, 51);
  ElementVec all = initial;
  for (auto e : extra) {
    e.id += 10000;
    ASSERT_TRUE(tree.Insert(e).ok());
    all.push_back(e);
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  ASSERT_EQ(tree.size(), 1000u);

  Pcg32 rng(52);
  for (int q = 0; q < 25; ++q) {
    Aabb box = Aabb::Cube(Vec3(static_cast<float>(rng.Uniform(0, 100)),
                               static_cast<float>(rng.Uniform(0, 100)),
                               static_cast<float>(rng.Uniform(0, 100))),
                          static_cast<float>(rng.Uniform(2, 30)));
    std::vector<ElementId> got;
    tree.RangeQuery(box, &got);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForce(all, box));
  }
}

}  // namespace
}  // namespace rtree
}  // namespace neurodb
