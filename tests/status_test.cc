#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace neurodb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad input");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::Corruption("page 7 torn");
  EXPECT_EQ(s.ToString(), "Corruption: page 7 torn");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

Status FailsThrough() {
  NEURODB_RETURN_NOT_OK(Status::IOError("disk gone"));
  return Status::OK();
}

Status Passes() {
  NEURODB_RETURN_NOT_OK(Status::OK());
  return Status::InvalidArgument("reached");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(FailsThrough().IsIOError());
  EXPECT_TRUE(Passes().IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Status UseAssignOrReturn(int v, int* out) {
  NEURODB_ASSIGN_OR_RETURN(*out, Half(v));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_TRUE(UseAssignOrReturn(3, &out).IsInvalidArgument());
}

}  // namespace
}  // namespace neurodb
