// The central join property: every algorithm — TOUCH, PBSM, S3, plane
// sweep — must return exactly the nested-loop reference pair set, across
// data shapes, epsilon values, tuning knobs and seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/rng.h"
#include "neuro/circuit_generator.h"
#include "neuro/workload.h"
#include "touch/spatial_join.h"

namespace neurodb {
namespace touch {
namespace {

using geom::Aabb;
using geom::Vec3;

enum class Shape { kUniform, kClustered, kCircuit };

std::string ShapeName(Shape s) {
  switch (s) {
    case Shape::kUniform:
      return "Uniform";
    case Shape::kClustered:
      return "Clustered";
    case Shape::kCircuit:
      return "Circuit";
  }
  return "Unknown";
}

std::pair<JoinInput, JoinInput> MakeInputs(Shape shape, uint64_t seed) {
  const Aabb domain(Vec3(0, 0, 0), Vec3(60, 60, 60));
  switch (shape) {
    case Shape::kUniform: {
      auto a = neuro::UniformSegments(500, domain, 4, 1, 0.3f, seed);
      auto b = neuro::UniformSegments(500, domain, 4, 1, 0.3f, seed + 100);
      return {JoinInput::FromSegments(a.segments, a.ids),
              JoinInput::FromSegments(b.segments, b.ids)};
    }
    case Shape::kClustered: {
      auto a = neuro::ClusteredSegments(500, domain, 4, 3, 4, 0.3f, seed);
      auto b =
          neuro::ClusteredSegments(500, domain, 4, 3, 4, 0.3f, seed + 100);
      return {JoinInput::FromSegments(a.segments, a.ids),
              JoinInput::FromSegments(b.segments, b.ids)};
    }
    case Shape::kCircuit: {
      neuro::CircuitParams params;
      params.num_neurons = 6;
      params.seed = seed;
      auto circuit = neuro::CircuitGenerator(params).Generate();
      EXPECT_TRUE(circuit.ok());
      auto axons = circuit->FlattenSegments(neuro::NeuriteFilter::kAxons);
      auto dendrites =
          circuit->FlattenSegments(neuro::NeuriteFilter::kDendrites);
      return {JoinInput::FromSegments(axons.segments, axons.ids),
              JoinInput::FromSegments(dendrites.segments, dendrites.ids)};
    }
  }
  return {};
}

std::vector<JoinPair> Sorted(std::vector<JoinPair> pairs) {
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

using Param = std::tuple<Shape, float, uint64_t>;

class JoinEquivalenceTest : public ::testing::TestWithParam<Param> {};

TEST_P(JoinEquivalenceTest, AllMethodsMatchNestedLoopReference) {
  auto [shape, epsilon, seed] = GetParam();
  auto [a, b] = MakeInputs(shape, seed);
  ASSERT_GT(a.size(), 0u);
  ASSERT_GT(b.size(), 0u);

  JoinOptions options;
  options.epsilon = epsilon;

  auto reference = NestedLoopJoin(a, b, options);
  ASSERT_TRUE(reference.ok());
  auto expected = Sorted(reference->pairs);

  for (JoinMethod method :
       {JoinMethod::kPlaneSweep, JoinMethod::kScalableSweep,
        JoinMethod::kPbsm, JoinMethod::kS3, JoinMethod::kTouch}) {
    auto result = RunJoin(method, a, b, options);
    ASSERT_TRUE(result.ok()) << JoinMethodName(method);
    EXPECT_EQ(Sorted(result->pairs), expected)
        << JoinMethodName(method) << " on " << ShapeName(shape)
        << " eps=" << epsilon << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JoinEquivalenceTest,
    ::testing::Combine(::testing::Values(Shape::kUniform, Shape::kClustered,
                                         Shape::kCircuit),
                       ::testing::Values(0.5f, 2.0f, 5.0f),
                       ::testing::Values<uint64_t>(1, 2)),
    [](const auto& info) {
      return ShapeName(std::get<0>(info.param)) + "Eps" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10)) +
             "S" + std::to_string(std::get<2>(info.param));
    });

// Tuning knobs must never change the answer, only the cost.
class TouchTuningTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(TouchTuningTest, FanoutAndLeafSizeDoNotChangeResults) {
  auto [fanout, leaf] = GetParam();
  auto [a, b] = MakeInputs(Shape::kClustered, 9);
  JoinOptions base;
  base.epsilon = 2.0f;
  auto reference = NestedLoopJoin(a, b, base);
  ASSERT_TRUE(reference.ok());

  JoinOptions tuned = base;
  tuned.touch_fanout = fanout;
  tuned.touch_leaf = leaf;
  auto result = TouchJoin(a, b, tuned);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Sorted(result->pairs), Sorted(reference->pairs))
      << "fanout=" << fanout << " leaf=" << leaf;
}

INSTANTIATE_TEST_SUITE_P(Knobs, TouchTuningTest,
                         ::testing::Combine(::testing::Values<size_t>(4, 16,
                                                                      64),
                                            ::testing::Values<size_t>(8, 96,
                                                                      512)),
                         [](const auto& info) {
                           return "F" + std::to_string(std::get<0>(info.param)) +
                                  "L" + std::to_string(std::get<1>(info.param));
                         });

class PbsmTuningTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PbsmTuningTest, GridResolutionDoesNotChangeResults) {
  auto [a, b] = MakeInputs(Shape::kUniform, 12);
  JoinOptions base;
  base.epsilon = 2.0f;
  auto reference = NestedLoopJoin(a, b, base);
  ASSERT_TRUE(reference.ok());

  JoinOptions tuned = base;
  tuned.pbsm_target_per_cell = GetParam();
  auto result = PbsmJoin(a, b, tuned);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Sorted(result->pairs), Sorted(reference->pairs))
      << "target_per_cell=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Grids, PbsmTuningTest,
                         ::testing::Values<size_t>(2, 16, 64, 4096));

// Self-join (same dataset on both sides) is the synapse-discovery shape
// when joining a circuit against itself.
TEST(JoinSelfTest, SelfJoinIsConsistentAcrossMethods) {
  auto [a, unused] = MakeInputs(Shape::kUniform, 31);
  (void)unused;
  JoinOptions options;
  options.epsilon = 1.0f;
  auto reference = NestedLoopJoin(a, a, options);
  ASSERT_TRUE(reference.ok());
  for (JoinMethod method :
       {JoinMethod::kPlaneSweep, JoinMethod::kScalableSweep,
        JoinMethod::kPbsm, JoinMethod::kS3, JoinMethod::kTouch}) {
    auto result = RunJoin(method, a, a, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(Sorted(result->pairs), Sorted(reference->pairs))
        << JoinMethodName(method);
  }
}

// Degenerate geometry: zero-length segments (points) and coincident boxes.
TEST(JoinDegenerateTest, PointSegmentsAndDuplicates) {
  std::vector<geom::Segment> sa;
  std::vector<geom::ElementId> ia;
  for (int i = 0; i < 20; ++i) {
    Vec3 p(static_cast<float>(i), 0, 0);
    sa.emplace_back(p, p, 0.2f);  // degenerate capsule = sphere
    ia.push_back(i);
  }
  // b duplicates a.
  JoinInput a = JoinInput::FromSegments(sa, ia);
  JoinOptions options;
  options.epsilon = 0.7f;  // spheres at distance 1: gap = 1 - 0.4 = 0.6 <= eps
  auto reference = NestedLoopJoin(a, a, options);
  ASSERT_TRUE(reference.ok());
  // Each point matches itself and both neighbors (except the ends).
  EXPECT_EQ(reference->pairs.size(), 20u + 2 * 19u);
  for (JoinMethod method :
       {JoinMethod::kPlaneSweep, JoinMethod::kScalableSweep,
        JoinMethod::kPbsm, JoinMethod::kS3, JoinMethod::kTouch}) {
    auto result = RunJoin(method, a, a, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(Sorted(result->pairs), Sorted(reference->pairs))
        << JoinMethodName(method);
  }
}

}  // namespace
}  // namespace touch
}  // namespace neurodb
