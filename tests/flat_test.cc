#include "flat/flat_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "neuro/workload.h"

namespace neurodb {
namespace flat {
namespace {

using geom::Aabb;
using geom::ElementId;
using geom::ElementVec;
using geom::Vec3;

ElementVec UniformData(size_t n, uint64_t seed, float domain = 100.0f) {
  Pcg32 rng(seed);
  ElementVec out;
  for (size_t i = 0; i < n; ++i) {
    Vec3 c(static_cast<float>(rng.Uniform(0, domain)),
           static_cast<float>(rng.Uniform(0, domain)),
           static_cast<float>(rng.Uniform(0, domain)));
    out.emplace_back(i, Aabb::Cube(c, 2.0f));
  }
  return out;
}

std::vector<ElementId> BruteForce(const ElementVec& elements,
                                  const Aabb& box) {
  std::vector<ElementId> out;
  for (const auto& e : elements) {
    if (e.bounds.Intersects(box)) out.push_back(e.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(FlatIndexTest, BuildValidatesArguments) {
  storage::PageStore store;
  FlatOptions options;
  options.elems_per_page = 0;
  EXPECT_FALSE(FlatIndex::Build(UniformData(10, 1), &store, options).ok());
  EXPECT_FALSE(FlatIndex::Build(UniformData(10, 1), nullptr).ok());
}

TEST(FlatIndexTest, EmptyDatasetQueriesCleanly) {
  storage::PageStore store;
  auto index = FlatIndex::Build({}, &store);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->NumPages(), 0u);
  storage::BufferPool pool(&store, 16);
  std::vector<ElementId> out;
  EXPECT_TRUE(
      index->RangeQuery(Aabb::Cube(Vec3(0, 0, 0), 5), &pool, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(FlatIndexTest, InvariantsHoldAfterBuild) {
  storage::PageStore store;
  FlatOptions options;
  options.elems_per_page = 32;
  auto index = FlatIndex::Build(UniformData(2000, 3), &store, options);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index->CheckInvariants().ok())
      << index->CheckInvariants().ToString();
  EXPECT_EQ(index->NumPages(), (2000 + 31) / 32);
  EXPECT_GT(index->MetadataBytes(), 0u);
}

TEST(FlatIndexTest, QueryMatchesBruteForce) {
  ElementVec elements = UniformData(3000, 5);
  storage::PageStore store;
  FlatOptions options;
  options.elems_per_page = 64;
  auto index = FlatIndex::Build(elements, &store, options);
  ASSERT_TRUE(index.ok());
  storage::BufferPool pool(&store, 10000);
  Pcg32 rng(6);
  for (int q = 0; q < 40; ++q) {
    Aabb box = Aabb::Cube(Vec3(static_cast<float>(rng.Uniform(0, 100)),
                               static_cast<float>(rng.Uniform(0, 100)),
                               static_cast<float>(rng.Uniform(0, 100))),
                          static_cast<float>(rng.Uniform(1, 30)));
    std::vector<ElementId> got;
    ASSERT_TRUE(index->RangeQuery(box, &pool, &got).ok());
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForce(elements, box)) << "query " << q;
  }
}

TEST(FlatIndexTest, StatsAccountPagesAndResults) {
  ElementVec elements = UniformData(2000, 7);
  storage::PageStore store;
  FlatOptions options;
  options.elems_per_page = 50;
  auto index = FlatIndex::Build(elements, &store, options);
  ASSERT_TRUE(index.ok());
  storage::BufferPool pool(&store, 10000);

  Aabb box = Aabb::Cube(Vec3(50, 50, 50), 30);
  FlatQueryStats stats;
  std::vector<ElementId> got;
  ASSERT_TRUE(index->RangeQuery(box, &pool, &got, &stats).ok());
  EXPECT_EQ(stats.results, got.size());
  EXPECT_EQ(stats.data_pages_read, stats.crawl_steps);
  EXPECT_GT(stats.seed_nodes_visited, 0u);
  // Each read page was scanned fully.
  EXPECT_GE(stats.elements_scanned, got.size());
  // Pages read equals the number of distinct pages intersecting the range
  // (crawl + rescue reads each exactly once).
  EXPECT_EQ(stats.data_pages_read, index->PagesInRange(box).size());
}

TEST(FlatIndexTest, CrawlReadsEachPageOnce) {
  ElementVec elements = UniformData(1500, 9);
  storage::PageStore store;
  FlatOptions options;
  options.elems_per_page = 40;
  auto index = FlatIndex::Build(elements, &store, options);
  ASSERT_TRUE(index.ok());
  storage::BufferPool pool(&store, 10000);
  std::vector<uint32_t> order;
  std::vector<ElementId> got;
  FlatQueryStats stats;
  ASSERT_TRUE(index
                  ->RangeQueryTraced(Aabb::Cube(Vec3(50, 50, 50), 40), &pool,
                                     &got, &order, &stats)
                  .ok());
  std::vector<uint32_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end())
      << "a page was crawled twice";
  EXPECT_EQ(order.size(), stats.data_pages_read);
}

TEST(FlatIndexTest, CrawlOrderIsNeighborConnected) {
  // On dense data with no rescue, consecutive crawl visits expand a
  // connected region: every visited page (after the seed) neighbors some
  // earlier-visited page.
  ElementVec elements = UniformData(4000, 11);
  storage::PageStore store;
  FlatOptions options;
  options.elems_per_page = 64;
  options.rescue = false;
  auto index = FlatIndex::Build(elements, &store, options);
  ASSERT_TRUE(index.ok());
  storage::BufferPool pool(&store, 10000);
  std::vector<uint32_t> order;
  std::vector<ElementId> got;
  ASSERT_TRUE(index
                  ->RangeQueryTraced(Aabb::Cube(Vec3(50, 50, 50), 35), &pool,
                                     &got, &order, nullptr)
                  .ok());
  ASSERT_GT(order.size(), 2u);
  for (size_t k = 1; k < order.size(); ++k) {
    bool connected = false;
    const auto& neighbors = index->NeighborsOf(order[k]);
    for (size_t j = 0; j < k && !connected; ++j) {
      connected = std::binary_search(neighbors.begin(), neighbors.end(),
                                     order[j]);
    }
    ASSERT_TRUE(connected) << "crawl step " << k << " not connected";
  }
}

TEST(FlatIndexTest, RescueCompletesDisconnectedRanges) {
  // Two far-apart dense blobs, each filling whole pages exactly (input
  // pack order, 32 per page): a query covering both has a disconnected
  // in-range page graph. Crawl-only finds one blob; rescue finds both.
  ElementVec elements;
  Pcg32 rng(13);
  for (size_t i = 0; i < 384; ++i) {
    Vec3 c(static_cast<float>(rng.Uniform(0, 10)),
           static_cast<float>(rng.Uniform(0, 10)),
           static_cast<float>(rng.Uniform(0, 10)));
    elements.emplace_back(i, Aabb::Cube(c, 1.0f));
  }
  for (size_t i = 384; i < 768; ++i) {
    Vec3 c(static_cast<float>(rng.Uniform(90, 100)),
           static_cast<float>(rng.Uniform(90, 100)),
           static_cast<float>(rng.Uniform(90, 100)));
    elements.emplace_back(i, Aabb::Cube(c, 1.0f));
  }
  Aabb both(Vec3(-5, -5, -5), Vec3(105, 105, 105));

  storage::PageStore store_rescue;
  FlatOptions with_rescue;
  with_rescue.elems_per_page = 32;
  with_rescue.pack = storage::PackOrder::kInput;
  with_rescue.rescue = true;
  auto rescue_index = FlatIndex::Build(elements, &store_rescue, with_rescue);
  ASSERT_TRUE(rescue_index.ok());
  storage::BufferPool pool(&store_rescue, 10000);
  std::vector<ElementId> got;
  FlatQueryStats stats;
  ASSERT_TRUE(rescue_index->RangeQuery(both, &pool, &got, &stats).ok());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, BruteForce(elements, both));
  EXPECT_GT(stats.extra_seeds, 0u) << "rescue should have re-seeded";

  // Crawl-only on the same data misses the far blob.
  storage::PageStore store_plain;
  FlatOptions no_rescue = with_rescue;
  no_rescue.rescue = false;
  auto plain_index = FlatIndex::Build(elements, &store_plain, no_rescue);
  ASSERT_TRUE(plain_index.ok());
  storage::BufferPool pool2(&store_plain, 10000);
  std::vector<ElementId> partial;
  ASSERT_TRUE(plain_index->RangeQuery(both, &pool2, &partial).ok());
  EXPECT_LT(partial.size(), got.size());
  EXPECT_EQ(partial.size(), 384u);  // exactly one blob
}

TEST(FlatIndexTest, PagesInRangeMatchesPageBounds) {
  ElementVec elements = UniformData(1000, 15);
  storage::PageStore store;
  auto index = FlatIndex::Build(elements, &store);
  ASSERT_TRUE(index.ok());
  Aabb box = Aabb::Cube(Vec3(30, 30, 30), 25);
  auto pages = index->PagesInRange(box);
  for (uint32_t i = 0; i < index->NumPages(); ++i) {
    bool listed = std::binary_search(pages.begin(), pages.end(), i);
    EXPECT_EQ(listed, index->PageBounds(i).Intersects(box)) << "page " << i;
  }
}

TEST(FlatIndexTest, QueryChargesOnlyDataPages) {
  // The modeled time of a FLAT query is data pages * read cost; the seed
  // structure is memory resident and charges nothing.
  ElementVec elements = UniformData(2000, 17);
  storage::PageStore store;
  auto index = FlatIndex::Build(elements, &store);
  ASSERT_TRUE(index.ok());
  SimClock clock;
  storage::DiskCostModel cost;
  cost.page_read_micros = 250;
  cost.page_hit_micros = 0;
  storage::BufferPool pool(&store, 10000, &clock, cost);
  FlatQueryStats stats;
  std::vector<ElementId> got;
  ASSERT_TRUE(index
                  ->RangeQuery(Aabb::Cube(Vec3(50, 50, 50), 30), &pool, &got,
                               &stats)
                  .ok());
  EXPECT_EQ(clock.NowMicros(), stats.data_pages_read * 250);
}

TEST(FlatIndexTest, NullArgumentsAreRejected) {
  storage::PageStore store;
  auto index = FlatIndex::Build(UniformData(50, 19), &store);
  ASSERT_TRUE(index.ok());
  std::vector<ElementId> out;
  storage::BufferPool pool(&store, 16);
  EXPECT_FALSE(
      index->RangeQuery(Aabb::Cube(Vec3(0, 0, 0), 5), nullptr, &out).ok());
  EXPECT_FALSE(
      index->RangeQuery(Aabb::Cube(Vec3(0, 0, 0), 5), &pool, nullptr).ok());
}

}  // namespace
}  // namespace flat
}  // namespace neurodb
