#include "geom/vec3.h"

#include <gtest/gtest.h>

namespace neurodb {
namespace geom {
namespace {

TEST(Vec3Test, DefaultIsZero) {
  Vec3 v;
  EXPECT_EQ(v, Vec3(0, 0, 0));
}

TEST(Vec3Test, Arithmetic) {
  Vec3 a(1, 2, 3);
  Vec3 b(4, 5, 6);
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0f, Vec3(2, 4, 6));
  EXPECT_EQ(2.0f * a, Vec3(2, 4, 6));
  EXPECT_EQ(a / 2.0f, Vec3(0.5f, 1.0f, 1.5f));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
}

TEST(Vec3Test, CompoundAssignment) {
  Vec3 v(1, 1, 1);
  v += Vec3(1, 2, 3);
  EXPECT_EQ(v, Vec3(2, 3, 4));
  v -= Vec3(1, 1, 1);
  EXPECT_EQ(v, Vec3(1, 2, 3));
  v *= 3.0f;
  EXPECT_EQ(v, Vec3(3, 6, 9));
}

TEST(Vec3Test, Indexing) {
  Vec3 v(7, 8, 9);
  EXPECT_EQ(v[0], 7);
  EXPECT_EQ(v[1], 8);
  EXPECT_EQ(v[2], 9);
  v[1] = 10;
  EXPECT_EQ(v.y, 10);
}

TEST(Vec3Test, DotAndCross) {
  Vec3 x(1, 0, 0);
  Vec3 y(0, 1, 0);
  EXPECT_DOUBLE_EQ(x.Dot(y), 0.0);
  EXPECT_EQ(x.Cross(y), Vec3(0, 0, 1));
  EXPECT_EQ(y.Cross(x), Vec3(0, 0, -1));
  EXPECT_DOUBLE_EQ(Vec3(1, 2, 3).Dot(Vec3(4, 5, 6)), 32.0);
}

TEST(Vec3Test, NormAndNormalize) {
  Vec3 v(3, 4, 0);
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.SquaredNorm(), 25.0);
  Vec3 n = v.Normalized();
  EXPECT_NEAR(n.Norm(), 1.0, 1e-6);
  EXPECT_NEAR(n.x, 0.6f, 1e-6);
}

TEST(Vec3Test, NormalizeZeroIsZero) {
  EXPECT_EQ(Vec3(0, 0, 0).Normalized(), Vec3(0, 0, 0));
}

TEST(Vec3Test, DistanceFunctions) {
  EXPECT_DOUBLE_EQ(Distance(Vec3(0, 0, 0), Vec3(0, 3, 4)), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(Vec3(1, 1, 1), Vec3(2, 2, 2)), 3.0);
}

TEST(Vec3Test, Lerp) {
  Vec3 mid = Lerp(Vec3(0, 0, 0), Vec3(10, 20, 30), 0.5f);
  EXPECT_EQ(mid, Vec3(5, 10, 15));
  EXPECT_EQ(Lerp(Vec3(1, 1, 1), Vec3(2, 2, 2), 0.0f), Vec3(1, 1, 1));
}

TEST(Vec3Test, MinMaxComponentwise) {
  Vec3 a(1, 5, 3);
  Vec3 b(2, 4, 3);
  EXPECT_EQ(Min(a, b), Vec3(1, 4, 3));
  EXPECT_EQ(Max(a, b), Vec3(2, 5, 3));
}

TEST(Vec3Test, CrossIsOrthogonal) {
  Vec3 a(1.5f, -2.0f, 0.5f);
  Vec3 b(0.3f, 4.0f, -1.0f);
  Vec3 c = a.Cross(b);
  EXPECT_NEAR(c.Dot(a), 0.0, 1e-5);
  EXPECT_NEAR(c.Dot(b), 0.0, 1e-5);
}

}  // namespace
}  // namespace geom
}  // namespace neurodb
