#include "common/table.h"

#include <gtest/gtest.h>

namespace neurodb {
namespace {

TEST(TableTest, FormatsHeaderAndRows) {
  TableWriter t("demo", {"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| alpha"), std::string::npos);
  EXPECT_NE(s.find("| 22"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  TableWriter t("", {"a", "b", "c"});
  t.AddRow({"only"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("only"), std::string::npos);
}

TEST(TableTest, ExtraCellsAreDropped) {
  TableWriter t("", {"a"});
  t.AddRow({"keep", "drop"});
  EXPECT_EQ(t.ToString().find("drop"), std::string::npos);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(TableWriter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::Num(2.0, 0), "2");
}

TEST(TableTest, IntFormats) {
  EXPECT_EQ(TableWriter::Int(12345), "12345");
}

TEST(TableTest, BytesUsesBinarySuffixes) {
  EXPECT_EQ(TableWriter::Bytes(512), "512.0 B");
  EXPECT_EQ(TableWriter::Bytes(2048), "2.00 KiB");
  EXPECT_EQ(TableWriter::Bytes(3 * 1024 * 1024), "3.00 MiB");
}

TEST(TableTest, FactorAppendsX) {
  EXPECT_EQ(TableWriter::Factor(12.34, 1), "12.3x");
}

TEST(TableTest, ColumnsAlignAcrossRows) {
  TableWriter t("", {"col"});
  t.AddRow({"short"});
  t.AddRow({"a much longer cell"});
  std::string s = t.ToString();
  // Every data line must have the same length (aligned box).
  size_t first_len = std::string::npos;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t end = s.find('\n', pos);
    std::string line = s.substr(pos, end - pos);
    if (!line.empty() && line[0] == '|') {
      if (first_len == std::string::npos) {
        first_len = line.size();
      } else {
        EXPECT_EQ(line.size(), first_len);
      }
    }
    pos = end + 1;
  }
}

}  // namespace
}  // namespace neurodb
