// Observability tests: histogram quantiles against a sorted-vector oracle,
// snapshot JSON round-trip and Prometheus exposition, concurrent recording
// into one registry (the TSan CI job runs this binary under
// -fsanitize=thread), slow-query ring capture/eviction, trace span trees
// covering engine → backend → pool → disk, and the metrics-off probe
// (byte-identical answers, empty export).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "engine/query_engine.h"
#include "geom/visitor.h"
#include "obs/metrics.h"
#include "obs/slow_log.h"
#include "obs/trace.h"

namespace neurodb {
namespace {

using engine::BackendChoice;
using engine::CachePolicy;
using engine::EngineOptions;
using engine::MetricsMode;
using engine::QueryEngine;
using geom::Aabb;
using geom::ElementVec;
using geom::Vec3;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "ndb_obs_test_XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    if (made != nullptr) path_ = made;
  }
  ~TempDir() {
    if (!path_.empty()) std::filesystem::remove_all(path_);
  }
  std::string Sub(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

ElementVec MakeGrid(size_t n) {
  ElementVec out;
  for (size_t i = 0; i < n; ++i) {
    float x = static_cast<float>(i % 8) * 10.0f;
    float y = static_cast<float>((i / 8) % 8) * 10.0f;
    float z = static_cast<float>(i / 64) * 10.0f;
    out.emplace_back(i + 1, Aabb(Vec3(x, y, z), Vec3(x + 4, y + 4, z + 4)));
  }
  return out;
}

Aabb EverythingBox() { return Aabb(Vec3(-5, -5, -5), Vec3(500, 500, 500)); }

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundsRoundTrip) {
  uint64_t prev = 0;
  for (size_t i = 0; i < obs::Histogram::kNumBuckets; ++i) {
    const uint64_t upper = obs::Histogram::BucketUpperBound(i);
    // The upper bound is the largest value of its own bucket, and bounds
    // grow strictly with the index.
    EXPECT_EQ(obs::Histogram::BucketIndex(upper), i) << "bucket " << i;
    if (i > 0) EXPECT_GT(upper, prev) << "bucket " << i;
    prev = upper;
  }
  // Every value maps into a bucket whose bound contains it, within 25%.
  std::mt19937_64 rng(0x0B5);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng() >> (rng() % 64);
    const uint64_t upper =
        obs::Histogram::BucketUpperBound(obs::Histogram::BucketIndex(v));
    EXPECT_GE(upper, v);
    // Overestimate stays under 25% (subtraction form: v + v/4 overflows
    // uint64 for samples near 2^64).
    EXPECT_LE(upper - v, v / 4 + 1);
  }
}

TEST(HistogramTest, QuantilesMatchSortedVectorOracle) {
  std::mt19937_64 rng(0xB0B);
  for (size_t n : {1u, 7u, 100u, 5000u}) {
    obs::Histogram h;
    std::vector<uint64_t> samples;
    samples.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      // Heavy-tailed: uniform within a random octave, like latencies.
      const uint64_t v = rng() % (uint64_t{1} << (rng() % 24));
      samples.push_back(v);
      h.Record(v);
    }
    std::sort(samples.begin(), samples.end());

    uint64_t sum = 0;
    for (uint64_t v : samples) sum += v;
    EXPECT_EQ(h.count(), n);
    EXPECT_EQ(h.sum(), sum);
    EXPECT_EQ(h.max(), samples.back());

    for (double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
      const size_t rank = std::min<size_t>(
          n, std::max<size_t>(
                 1, static_cast<size_t>(std::ceil(q * static_cast<double>(n)))));
      const uint64_t exact = samples[rank - 1];
      // The reconstruction is exactly the bucket upper bound of the true
      // rank sample — deterministic, and within the bucketing error.
      EXPECT_EQ(h.ValueAtQuantile(q),
                obs::Histogram::BucketUpperBound(
                    obs::Histogram::BucketIndex(exact)))
          << "n=" << n << " q=" << q;
      EXPECT_GE(h.ValueAtQuantile(q), exact);
      EXPECT_LE(h.ValueAtQuantile(q), exact + exact / 4 + 1);
    }
  }
  EXPECT_EQ(obs::Histogram().ValueAtQuantile(0.5), 0u);
}

// ---------------------------------------------------------------------------
// Snapshot serialization
// ---------------------------------------------------------------------------

TEST(MetricsSnapshotTest, JsonRoundTripIsFieldIdentical) {
  obs::MetricsRegistry registry;
  registry.counter("engine.query.range.count")->Add(42);
  registry.counter("weird \"name\" with\\slashes")->Add(7);
  registry.gauge("engine.epoch")->Set(9);
  obs::Histogram* h = registry.histogram("engine.query.range.latency_us");
  for (uint64_t v : {3u, 90u, 1500u, 1500u, 80000u}) h->Record(v);

  const obs::MetricsSnapshot snap = registry.Snapshot();
  auto parsed = obs::MetricsSnapshot::FromJson(snap.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  ASSERT_EQ(parsed->counters.size(), snap.counters.size());
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    EXPECT_EQ(parsed->counters[i].name, snap.counters[i].name);
    EXPECT_EQ(parsed->counters[i].value, snap.counters[i].value);
  }
  ASSERT_EQ(parsed->gauges.size(), snap.gauges.size());
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    EXPECT_EQ(parsed->gauges[i].name, snap.gauges[i].name);
    EXPECT_EQ(parsed->gauges[i].value, snap.gauges[i].value);
  }
  ASSERT_EQ(parsed->histograms.size(), snap.histograms.size());
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    EXPECT_EQ(parsed->histograms[i].name, snap.histograms[i].name);
    EXPECT_EQ(parsed->histograms[i].count, snap.histograms[i].count);
    EXPECT_EQ(parsed->histograms[i].sum, snap.histograms[i].sum);
    EXPECT_EQ(parsed->histograms[i].max, snap.histograms[i].max);
    EXPECT_EQ(parsed->histograms[i].p50, snap.histograms[i].p50);
    EXPECT_EQ(parsed->histograms[i].p95, snap.histograms[i].p95);
    EXPECT_EQ(parsed->histograms[i].p99, snap.histograms[i].p99);
  }
}

TEST(MetricsSnapshotTest, FromJsonRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[]", "{\"counters\":[]}", "{\"counters\":{\"a\":}}",
        "{\"histograms\":{\"h\":{\"count\":1}}} trailing"}) {
    EXPECT_FALSE(obs::MetricsSnapshot::FromJson(bad).ok()) << bad;
  }
}

TEST(MetricsSnapshotTest, PrometheusExposition) {
  obs::MetricsRegistry registry;
  registry.counter("engine.query.range.count")->Add(3);
  registry.gauge("pool.pages_cached")->Set(12);
  registry.histogram("engine.query.range.latency_us")->Record(100);

  const std::string text = registry.Snapshot().ToPrometheus();
  EXPECT_NE(text.find("# TYPE neurodb_engine_query_range_count counter"),
            std::string::npos);
  EXPECT_NE(text.find("neurodb_engine_query_range_count 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE neurodb_pool_pages_cached gauge"),
            std::string::npos);
  EXPECT_NE(
      text.find("# TYPE neurodb_engine_query_range_latency_us summary"),
      std::string::npos);
  EXPECT_NE(
      text.find("neurodb_engine_query_range_latency_us{quantile=\"0.99\"}"),
      std::string::npos);
  EXPECT_NE(text.find("neurodb_engine_query_range_latency_us_count 1"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency (the TSan CI job runs this under -fsanitize=thread)
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, ConcurrentRecordingIsExact) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      // Resolve through the registry from every thread (exercises the
      // get-or-create lock), record through the stable pointers.
      obs::Counter* counter = registry.counter("shared.counter");
      obs::Gauge* gauge = registry.gauge("shared.gauge");
      obs::Histogram* hist = registry.histogram("shared.hist");
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        gauge->SetMax(static_cast<uint64_t>(t) * kPerThread + i);
        hist->Record(i % 1024);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const obs::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_NE(snap.FindCounter("shared.counter"), nullptr);
  EXPECT_EQ(snap.FindCounter("shared.counter")->value, kThreads * kPerThread);
  ASSERT_NE(snap.FindGauge("shared.gauge"), nullptr);
  EXPECT_EQ(snap.FindGauge("shared.gauge")->value,
            kThreads * kPerThread - 1);
  ASSERT_NE(snap.FindHistogram("shared.hist"), nullptr);
  EXPECT_EQ(snap.FindHistogram("shared.hist")->count, kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

TEST(SlowQueryLogTest, RingEvictsOldestAndIgnoresFastQueries) {
  obs::SlowQueryLog log(/*capacity=*/4, /*threshold_us=*/10);
  log.Record("range", 9, nullptr);  // below threshold: ignored
  for (uint64_t i = 0; i < 10; ++i) log.Record("range", 10 + i, nullptr);

  EXPECT_EQ(log.total_recorded(), 10u);
  const std::vector<obs::SlowQuery> entries = log.Entries();
  ASSERT_EQ(entries.size(), 4u);
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].seq, 7 + i);  // oldest six evicted
    EXPECT_EQ(entries[i].duration_us, 16 + i);
    EXPECT_EQ(entries[i].kind, "range");
  }
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

TEST(EngineObsTest, QueriesPopulateEngineAndBackendMetrics) {
  QueryEngine db;
  ASSERT_TRUE(db.LoadElements(MakeGrid(200)).ok());

  engine::RangeRequest range;
  range.box = EverythingBox();
  range.cache = CachePolicy::kWarm;
  ASSERT_TRUE(db.Execute(range).ok());
  engine::KnnRequest knn;
  knn.point = Vec3(20, 20, 10);
  knn.k = 5;
  ASSERT_TRUE(db.Execute(knn).ok());

  const obs::MetricsSnapshot snap = db.MetricsSnapshot();
  ASSERT_NE(snap.FindCounter("engine.query.range.count"), nullptr);
  EXPECT_EQ(snap.FindCounter("engine.query.range.count")->value, 1u);
  EXPECT_EQ(snap.FindCounter("engine.query.range.results")->value, 200u);
  EXPECT_EQ(snap.FindCounter("engine.query.knn.count")->value, 1u);
  ASSERT_NE(snap.FindHistogram("engine.query.range.latency_us"), nullptr);
  EXPECT_EQ(snap.FindHistogram("engine.query.range.latency_us")->count, 1u);
  // Per-backend attribution: the default kAll request ran every backend.
  ASSERT_NE(snap.FindCounter("backend.FLAT.queries"), nullptr);
  EXPECT_GE(snap.FindCounter("backend.FLAT.queries")->value, 1u);
  // Sampled state gauges appear in the snapshot.
  ASSERT_NE(snap.FindGauge("engine.backends"), nullptr);
  EXPECT_GE(snap.FindGauge("engine.backends")->value, 3u);
  ASSERT_NE(snap.FindGauge("pool.pages_cached"), nullptr);
}

TEST(EngineObsTest, TracedQueryCoversEngineBackendAndPoolLayers) {
  QueryEngine db;
  ASSERT_TRUE(db.LoadElements(MakeGrid(300)).ok());

  engine::RangeRequest request;
  request.box = EverythingBox();
  request.backend = BackendChoice::kFlat;
  request.cache = CachePolicy::kWarm;
  request.trace = true;
  auto report = db.Execute(request);
  ASSERT_TRUE(report.ok());

  // Memory stores: logical pool counters are populated, physical IO is not
  // — the uniform cost signal of RangeReport::pool.
  EXPECT_GT(report->pool.accesses(), 0u);
  EXPECT_EQ(report->io.bytes_read, 0u);
  EXPECT_EQ(report->io.bytes_written, 0u);

  ASSERT_NE(report->trace, nullptr);
  const std::vector<obs::Span>& spans = report->trace->spans();
  ASSERT_GE(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "range");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_GT(spans[0].duration_ns, 0u);

  auto find = [&spans](const std::string& name) -> const obs::Span* {
    for (const obs::Span& s : spans) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  const obs::Span* backend = find("backend:FLAT");
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->parent, 0);
  EXPECT_GT(backend->duration_ns, 0u);
  bool pages_tag = false;
  for (const auto& [key, value] : backend->tags) {
    if (key == "pages_read") {
      pages_tag = true;
      EXPECT_NE(value, "0");
    }
  }
  EXPECT_TRUE(pages_tag);
  const obs::Span* pool = find("pool");
  ASSERT_NE(pool, nullptr);
  EXPECT_GT(pool->duration_ns, 0u);
  EXPECT_EQ(find("disk"), nullptr);  // nothing below the pool in memory
}

TEST(EngineObsTest, TracedQueryOnDiskStoresReachesDiskSpan) {
  TempDir dir;
  EngineOptions options;
  options.durability.dir = dir.Sub("data");
  options.durability.disk_backends = true;
  QueryEngine db(options);
  ASSERT_TRUE(db.LoadElements(MakeGrid(300)).ok());

  engine::RangeRequest request;
  request.box = EverythingBox();
  request.backend = BackendChoice::kRTree;
  request.cache = CachePolicy::kCold;  // fresh pool: every page misses
  request.trace = true;
  auto report = db.Execute(request);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->io.bytes_read, 0u);

  ASSERT_NE(report->trace, nullptr);
  const obs::Span* disk = nullptr;
  for (const obs::Span& s : report->trace->spans()) {
    if (s.name == "disk") disk = &s;
  }
  ASSERT_NE(disk, nullptr);
  bool bytes_tag = false;
  for (const auto& [key, value] : disk->tags) {
    if (key == "bytes_read") {
      bytes_tag = true;
      EXPECT_NE(value, "0");
    }
  }
  EXPECT_TRUE(bytes_tag);
}

TEST(EngineObsTest, SlowLogCapturesTracedOffenders) {
  EngineOptions options;
  options.slow_query_us = 1;  // everything is slow
  options.slow_log_entries = 4;
  QueryEngine db(options);
  ASSERT_TRUE(db.LoadElements(MakeGrid(200)).ok());

  for (int i = 0; i < 6; ++i) {
    engine::RangeRequest request;
    request.box = EverythingBox();
    request.cache = CachePolicy::kWarm;
    ASSERT_TRUE(db.Execute(request).ok());
  }

  ASSERT_NE(db.slow_log(), nullptr);
  const std::vector<obs::SlowQuery> entries = db.slow_log()->Entries();
  ASSERT_EQ(entries.size(), 4u);  // ring capacity
  EXPECT_EQ(db.slow_log()->total_recorded(), 6u);
  for (const obs::SlowQuery& slow : entries) {
    EXPECT_EQ(slow.kind, "range");
    EXPECT_GE(slow.duration_us, 1u);
    // Offenders retain their span tree even though the requests never
    // asked for a trace.
    ASSERT_NE(slow.trace, nullptr);
    EXPECT_EQ(slow.trace->root().name, "range");
  }
  const obs::MetricsSnapshot snap = db.MetricsSnapshot();
  ASSERT_NE(snap.FindCounter("engine.slow_queries"), nullptr);
  EXPECT_EQ(snap.FindCounter("engine.slow_queries")->value, 6u);
}

TEST(EngineObsTest, SlowLogRequiresMetricsOn) {
  EngineOptions options;
  options.metrics = MetricsMode::kOff;
  options.slow_query_us = 100;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(EngineObsTest, MetricsOffAnswersByteIdenticallyAndExportsNothing) {
  const ElementVec elements = MakeGrid(300);
  QueryEngine on;
  ASSERT_TRUE(on.LoadElements(elements).ok());
  EngineOptions off_options;
  off_options.metrics = MetricsMode::kOff;
  QueryEngine off(off_options);
  ASSERT_TRUE(off.LoadElements(elements).ok());

  std::mt19937_64 rng(0x5EED);
  for (int i = 0; i < 20; ++i) {
    const float x = static_cast<float>(rng() % 60);
    const float y = static_cast<float>(rng() % 60);
    engine::RangeRequest request;
    request.box = Aabb(Vec3(x, y, 0), Vec3(x + 25, y + 25, 40));
    request.cache = CachePolicy::kWarm;
    request.trace = true;  // honored only with metrics on

    geom::CollectingVisitor got_on, got_off;
    auto report_on = on.Execute(request, got_on);
    auto report_off = off.Execute(request, got_off);
    ASSERT_TRUE(report_on.ok());
    ASSERT_TRUE(report_off.ok());
    const ElementVec a = got_on.TakeElements();
    const ElementVec b = got_off.TakeElements();
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j].id, b[j].id);
    EXPECT_NE(report_on->trace, nullptr);
    EXPECT_EQ(report_off->trace, nullptr);

    engine::KnnRequest knn;
    knn.point = Vec3(x, y, 10);
    knn.k = 7;
    auto knn_on = on.Execute(knn);
    auto knn_off = off.Execute(knn);
    ASSERT_TRUE(knn_on.ok());
    ASSERT_TRUE(knn_off.ok());
    ASSERT_EQ(knn_on->hits.size(), knn_off->hits.size());
    for (size_t j = 0; j < knn_on->hits.size(); ++j) {
      EXPECT_EQ(knn_on->hits[j].id, knn_off->hits[j].id);
    }
  }

  EXPECT_EQ(off.metrics(), nullptr);
  const obs::MetricsSnapshot empty = off.MetricsSnapshot();
  EXPECT_TRUE(empty.counters.empty());
  EXPECT_TRUE(empty.gauges.empty());
  EXPECT_TRUE(empty.histograms.empty());
}

TEST(EngineObsTest, SessionStepsRecordMetricsAndTraces) {
  EngineOptions options;
  options.session.trace_steps = true;
  options.slow_query_us = 1;
  QueryEngine db(options);
  ASSERT_TRUE(db.LoadElements(MakeGrid(300)).ok());

  auto session = db.OpenSession(scout::PrefetchMethod::kHilbert,
                                CachePolicy::kWarm);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  for (int i = 0; i < 3; ++i) {
    const float x = static_cast<float>(i) * 8.0f;
    auto step = session->Step(Aabb(Vec3(x, 0, 0), Vec3(x + 30, 30, 30)));
    ASSERT_TRUE(step.ok()) << step.status().ToString();
    ASSERT_NE(step->trace, nullptr);
    EXPECT_EQ(step->trace->root().name, "session.step");
    bool saw_query = false, saw_prefetch = false;
    for (const obs::Span& span : step->trace->spans()) {
      if (span.name == "query") saw_query = true;
      if (span.name == "prefetch") saw_prefetch = true;
    }
    EXPECT_TRUE(saw_query);
    EXPECT_TRUE(saw_prefetch);
  }

  const obs::MetricsSnapshot snap = db.MetricsSnapshot();
  ASSERT_NE(snap.FindCounter("session.step.count"), nullptr);
  EXPECT_EQ(snap.FindCounter("session.step.count")->value, 3u);
  ASSERT_NE(snap.FindHistogram("session.step.latency_us"), nullptr);
  EXPECT_EQ(snap.FindHistogram("session.step.latency_us")->count, 3u);
  // Every (wall-slow) step also landed in the engine's slow-query log.
  ASSERT_NE(db.slow_log(), nullptr);
  ASSERT_FALSE(db.slow_log()->Entries().empty());
  EXPECT_EQ(db.slow_log()->Entries().back().kind, "session.step");
}

}  // namespace
}  // namespace neurodb
