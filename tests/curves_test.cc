#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geom/hilbert.h"
#include "geom/morton.h"

namespace neurodb {
namespace geom {
namespace {

TEST(MortonTest, RoundTripExhaustiveSmall) {
  for (uint32_t x = 0; x < 8; ++x) {
    for (uint32_t y = 0; y < 8; ++y) {
      for (uint32_t z = 0; z < 8; ++z) {
        uint64_t code = MortonEncode(x, y, z);
        uint32_t rx, ry, rz;
        MortonDecode(code, &rx, &ry, &rz);
        ASSERT_EQ(rx, x);
        ASSERT_EQ(ry, y);
        ASSERT_EQ(rz, z);
      }
    }
  }
}

TEST(MortonTest, RoundTripRandomFullWidth) {
  Pcg32 rng(3);
  for (int i = 0; i < 10000; ++i) {
    uint32_t x = rng.NextU32() & 0x1fffff;
    uint32_t y = rng.NextU32() & 0x1fffff;
    uint32_t z = rng.NextU32() & 0x1fffff;
    uint32_t rx, ry, rz;
    MortonDecode(MortonEncode(x, y, z), &rx, &ry, &rz);
    ASSERT_EQ(rx, x);
    ASSERT_EQ(ry, y);
    ASSERT_EQ(rz, z);
  }
}

TEST(MortonTest, OrderingInterleavesAxes) {
  EXPECT_EQ(MortonEncode(0, 0, 0), 0u);
  EXPECT_EQ(MortonEncode(1, 0, 0), 1u);
  EXPECT_EQ(MortonEncode(0, 1, 0), 2u);
  EXPECT_EQ(MortonEncode(0, 0, 1), 4u);
  EXPECT_EQ(MortonEncode(1, 1, 1), 7u);
}

TEST(HilbertTest, RoundTripExhaustiveSmall) {
  for (int bits = 1; bits <= 4; ++bits) {
    uint32_t n = 1u << bits;
    for (uint32_t x = 0; x < n; ++x) {
      for (uint32_t y = 0; y < n; ++y) {
        for (uint32_t z = 0; z < n; ++z) {
          uint64_t idx = HilbertEncode(x, y, z, bits);
          uint32_t rx, ry, rz;
          HilbertDecode(idx, &rx, &ry, &rz, bits);
          ASSERT_EQ(rx, x) << "bits=" << bits;
          ASSERT_EQ(ry, y);
          ASSERT_EQ(rz, z);
        }
      }
    }
  }
}

TEST(HilbertTest, IsABijectionOnSmallCube) {
  const int bits = 3;
  const uint32_t n = 1u << bits;
  std::vector<bool> seen(n * n * n, false);
  for (uint32_t x = 0; x < n; ++x) {
    for (uint32_t y = 0; y < n; ++y) {
      for (uint32_t z = 0; z < n; ++z) {
        uint64_t idx = HilbertEncode(x, y, z, bits);
        ASSERT_LT(idx, seen.size());
        ASSERT_FALSE(seen[idx]) << "collision at index " << idx;
        seen[idx] = true;
      }
    }
  }
}

TEST(HilbertTest, ConsecutiveIndicesAreGridNeighbors) {
  // The defining property of the Hilbert curve: consecutive curve positions
  // differ by exactly 1 in exactly one coordinate.
  const int bits = 4;
  const uint64_t total = 1ull << (3 * bits);
  uint32_t px, py, pz;
  HilbertDecode(0, &px, &py, &pz, bits);
  for (uint64_t i = 1; i < total; ++i) {
    uint32_t x, y, z;
    HilbertDecode(i, &x, &y, &z, bits);
    uint32_t manhattan = (x > px ? x - px : px - x) +
                         (y > py ? y - py : py - y) +
                         (z > pz ? z - pz : pz - z);
    ASSERT_EQ(manhattan, 1u) << "at index " << i;
    px = x;
    py = y;
    pz = z;
  }
}

TEST(HilbertTest, RoundTripRandomFullWidth) {
  Pcg32 rng(9);
  for (int i = 0; i < 10000; ++i) {
    uint32_t x = rng.NextU32() & 0x1fffff;
    uint32_t y = rng.NextU32() & 0x1fffff;
    uint32_t z = rng.NextU32() & 0x1fffff;
    uint64_t idx = HilbertEncode(x, y, z);
    uint32_t rx, ry, rz;
    HilbertDecode(idx, &rx, &ry, &rz);
    ASSERT_EQ(rx, x);
    ASSERT_EQ(ry, y);
    ASSERT_EQ(rz, z);
  }
}

TEST(HilbertMapperTest, ClampsOutOfDomainPoints) {
  Aabb domain(Vec3(0, 0, 0), Vec3(10, 10, 10));
  HilbertMapper mapper(domain, 8);
  // Outside points map to valid keys (no crash / overflow).
  uint64_t k1 = mapper.Key(Vec3(-100, 5, 5));
  uint64_t k2 = mapper.Key(Vec3(0, 5, 5));
  EXPECT_EQ(k1, k2);
  uint64_t k3 = mapper.Key(Vec3(1000, 1000, 1000));
  uint64_t k4 = mapper.Key(Vec3(10, 10, 10));
  EXPECT_EQ(k3, k4);
}

TEST(HilbertMapperTest, PreservesLocalityBetterThanRandom) {
  // Mean key distance of spatially close point pairs must be far below the
  // mean key distance of random pairs.
  Aabb domain(Vec3(0, 0, 0), Vec3(100, 100, 100));
  HilbertMapper mapper(domain, 10);
  Pcg32 rng(77);
  double close_sum = 0.0;
  double far_sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    Vec3 p(static_cast<float>(rng.Uniform(1, 99)),
           static_cast<float>(rng.Uniform(1, 99)),
           static_cast<float>(rng.Uniform(1, 99)));
    Vec3 q = p + Vec3(0.5f, 0.5f, 0.5f);
    Vec3 r(static_cast<float>(rng.Uniform(1, 99)),
           static_cast<float>(rng.Uniform(1, 99)),
           static_cast<float>(rng.Uniform(1, 99)));
    auto key_dist = [&](const Vec3& a, const Vec3& b) {
      uint64_t ka = mapper.Key(a);
      uint64_t kb = mapper.Key(b);
      return static_cast<double>(ka > kb ? ka - kb : kb - ka);
    };
    close_sum += key_dist(p, q);
    far_sum += key_dist(p, r);
  }
  EXPECT_LT(close_sum * 20, far_sum)
      << "Hilbert keys of nearby points should be much closer than random";
}

TEST(HilbertMapperTest, DegenerateDomainAxis) {
  // A flat (2-D) domain must not divide by zero.
  Aabb domain(Vec3(0, 5, 0), Vec3(10, 5, 10));
  HilbertMapper mapper(domain, 8);
  uint64_t k = mapper.Key(Vec3(5, 5, 5));
  (void)k;  // just must not crash; key is valid
  SUCCEED();
}

}  // namespace
}  // namespace geom
}  // namespace neurodb
