#include "geom/triangle.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace neurodb {
namespace geom {
namespace {

Triangle UnitRight() {
  return Triangle(Vec3(0, 0, 0), Vec3(1, 0, 0), Vec3(0, 1, 0));
}

TEST(TriangleTest, AreaAndCentroid) {
  Triangle t = UnitRight();
  EXPECT_DOUBLE_EQ(t.Area(), 0.5);
  Vec3 c = t.Centroid();
  EXPECT_NEAR(c.x, 1.0 / 3, 1e-6);
  EXPECT_NEAR(c.y, 1.0 / 3, 1e-6);
  EXPECT_NEAR(c.z, 0.0, 1e-6);
}

TEST(TriangleTest, ScaledNormalDirection) {
  Vec3 n = UnitRight().ScaledNormal();
  EXPECT_EQ(n, Vec3(0, 0, 1));
}

TEST(TriangleTest, BoundsCoverVertices) {
  Triangle t(Vec3(-1, 2, 3), Vec3(4, -5, 6), Vec3(7, 8, -9));
  Aabb b = t.Bounds();
  EXPECT_TRUE(b.Contains(t.v0));
  EXPECT_TRUE(b.Contains(t.v1));
  EXPECT_TRUE(b.Contains(t.v2));
  EXPECT_EQ(b.min, Vec3(-1, -5, -9));
  EXPECT_EQ(b.max, Vec3(7, 8, 6));
}

TEST(PointTriangleDistanceTest, AboveFace) {
  EXPECT_DOUBLE_EQ(
      SquaredDistancePointTriangle(Vec3(0.25f, 0.25f, 2), UnitRight()), 4.0);
}

TEST(PointTriangleDistanceTest, OnFaceIsZero) {
  EXPECT_NEAR(SquaredDistancePointTriangle(Vec3(0.2f, 0.2f, 0), UnitRight()),
              0.0, 1e-12);
}

TEST(PointTriangleDistanceTest, VertexRegions) {
  Triangle t = UnitRight();
  EXPECT_DOUBLE_EQ(SquaredDistancePointTriangle(Vec3(-1, -1, 0), t), 2.0);
  EXPECT_DOUBLE_EQ(SquaredDistancePointTriangle(Vec3(2, -1, 0), t), 2.0);
  EXPECT_DOUBLE_EQ(SquaredDistancePointTriangle(Vec3(-1, 2, 0), t), 2.0);
}

TEST(PointTriangleDistanceTest, EdgeRegions) {
  Triangle t = UnitRight();
  // Below the bottom edge.
  EXPECT_DOUBLE_EQ(SquaredDistancePointTriangle(Vec3(0.5f, -2, 0), t), 4.0);
  // Left of the left edge.
  EXPECT_DOUBLE_EQ(SquaredDistancePointTriangle(Vec3(-3, 0.5f, 0), t), 9.0);
  // Beyond the hypotenuse: closest point is (0.5, 0.5, 0).
  EXPECT_NEAR(SquaredDistancePointTriangle(Vec3(1, 1, 0), t), 0.5, 1e-9);
}

// Property: never exceeds distance to any vertex, and matches barycentric
// sampling to within the sampling resolution.
TEST(PointTriangleDistanceTest, PropertyMatchesSampling) {
  Pcg32 rng(23);
  auto random_point = [&]() {
    return Vec3(static_cast<float>(rng.Uniform(-5, 5)),
                static_cast<float>(rng.Uniform(-5, 5)),
                static_cast<float>(rng.Uniform(-5, 5)));
  };
  const int kGrid = 50;
  for (int trial = 0; trial < 100; ++trial) {
    Triangle t(random_point(), random_point(), random_point());
    Vec3 p = random_point();
    double exact = std::sqrt(SquaredDistancePointTriangle(p, t));
    double vertex_min = std::min(
        {Distance(p, t.v0), Distance(p, t.v1), Distance(p, t.v2)});
    ASSERT_LE(exact, vertex_min + 1e-6);

    double sampled = 1e300;
    for (int i = 0; i <= kGrid; ++i) {
      for (int j = 0; j <= kGrid - i; ++j) {
        float u = static_cast<float>(i) / kGrid;
        float v = static_cast<float>(j) / kGrid;
        Vec3 q = t.v0 + (t.v1 - t.v0) * u + (t.v2 - t.v0) * v;
        sampled = std::min(sampled, Distance(p, q));
      }
    }
    double edge_scale = Distance(t.v0, t.v1) + Distance(t.v0, t.v2);
    ASSERT_LE(exact, sampled + 1e-6);
    ASSERT_GE(exact, sampled - edge_scale / kGrid);
  }
}

}  // namespace
}  // namespace geom
}  // namespace neurodb
