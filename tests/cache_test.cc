// Tests of the result-cache subsystem (src/cache/) and the PoolManager
// (src/storage/pool_manager.h): box subtraction geometry, cache eviction
// and lookup policy, delta-plan exactness against brute force, and the
// named persistent pool sets behind the engine's warm path.

#include "cache/delta_planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cache/result_cache.h"
#include "common/rng.h"
#include "storage/pool_manager.h"

namespace neurodb {
namespace cache {
namespace {

using geom::Aabb;
using geom::ElementVec;
using geom::SpatialElement;
using geom::Vec3;

Aabb RandomBox(Pcg32* rng, float extent) {
  Vec3 lo(static_cast<float>(rng->Uniform(0, extent)),
          static_cast<float>(rng->Uniform(0, extent)),
          static_cast<float>(rng->Uniform(0, extent)));
  Vec3 size(static_cast<float>(rng->Uniform(1, extent / 2)),
            static_cast<float>(rng->Uniform(1, extent / 2)),
            static_cast<float>(rng->Uniform(1, extent / 2)));
  return Aabb(lo, lo + size);
}

// --------------------------------------------------------------------------
// SubtractBox
// --------------------------------------------------------------------------

TEST(SubtractBoxTest, EdgeCases) {
  Aabb outer({0, 0, 0}, {10, 10, 10});
  // Disjoint clip: the whole outer box is residual.
  auto disjoint = DeltaPlanner::SubtractBox(outer, Aabb({20, 20, 20},
                                                        {30, 30, 30}));
  ASSERT_EQ(disjoint.size(), 1u);
  EXPECT_EQ(disjoint[0], outer);

  // Clip covers outer: nothing is left.
  EXPECT_TRUE(
      DeltaPlanner::SubtractBox(outer, Aabb({-1, -1, -1}, {11, 11, 11}))
          .empty());
  EXPECT_TRUE(DeltaPlanner::SubtractBox(outer, outer).empty());

  // A centered clip produces the full six residual slabs.
  auto six = DeltaPlanner::SubtractBox(outer, Aabb({4, 4, 4}, {6, 6, 6}));
  EXPECT_EQ(six.size(), 6u);
}

TEST(SubtractBoxTest, RandomizedCoverageAndVolumeConservation) {
  Pcg32 rng(7);
  for (int round = 0; round < 200; ++round) {
    Aabb outer = RandomBox(&rng, 50.0f);
    Aabb clip = RandomBox(&rng, 50.0f);
    auto residuals = DeltaPlanner::SubtractBox(outer, clip);
    ASSERT_LE(residuals.size(), 6u);

    // Volume conservation: covered fragment + residuals == outer.
    double covered = Aabb::Intersection(outer, clip).Volume();
    double residual_volume = 0.0;
    for (const Aabb& r : residuals) {
      ASSERT_TRUE(r.IsValid());
      EXPECT_TRUE(outer.Contains(r));
      residual_volume += r.Volume();
    }
    EXPECT_NEAR(covered + residual_volume, outer.Volume(),
                1e-5 * std::max(1.0, outer.Volume()));

    // Point coverage: every sampled point of outer is in the clip or in
    // some residual.
    for (int sample = 0; sample < 50; ++sample) {
      Vec3 p(static_cast<float>(rng.Uniform(outer.min.x, outer.max.x)),
             static_cast<float>(rng.Uniform(outer.min.y, outer.max.y)),
             static_cast<float>(rng.Uniform(outer.min.z, outer.max.z)));
      bool covered_point = clip.Contains(p);
      for (const Aabb& r : residuals) covered_point |= r.Contains(p);
      ASSERT_TRUE(covered_point) << "round " << round;
    }
  }
}

// --------------------------------------------------------------------------
// ResultCache
// --------------------------------------------------------------------------

ElementVec OneElement(uint64_t id) {
  ElementVec v;
  v.emplace_back(id, Aabb({0, 0, 0}, {1, 1, 1}));
  return v;
}

TEST(ResultCacheTest, EvictsOldestBeyondCapacity) {
  ResultCache cache(2);
  cache.Insert(Aabb({0, 0, 0}, {1, 1, 1}), OneElement(1));
  cache.Insert(Aabb({10, 0, 0}, {11, 1, 1}), OneElement(2));
  cache.Insert(Aabb({20, 0, 0}, {21, 1, 1}), OneElement(3));
  ASSERT_EQ(cache.size(), 2u);
  // The first entry was evicted; the two newest survive.
  EXPECT_EQ(cache.entry(0).results[0].id, 2u);
  EXPECT_EQ(cache.entry(1).results[0].id, 3u);
  EXPECT_EQ(cache.stats().insertions, 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, CoveredInsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(2);
  Aabb big({0, 0, 0}, {10, 10, 10});
  cache.Insert(big, OneElement(1));
  cache.Insert(Aabb({100, 0, 0}, {101, 1, 1}), OneElement(2));
  // A box inside `big` must not evict anything — the covering entry is
  // refreshed to most-recent instead.
  cache.Insert(Aabb({2, 2, 2}, {3, 3, 3}), OneElement(9));
  ASSERT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.entry(1).box, big);
  EXPECT_EQ(cache.entry(1).results[0].id, 1u);
}

TEST(ResultCacheTest, SubsumedEntriesAreDropped) {
  ResultCache cache(4);
  cache.Insert(Aabb({1, 1, 1}, {2, 2, 2}), OneElement(1));
  cache.Insert(Aabb({3, 3, 3}, {4, 4, 4}), OneElement(2));
  cache.Insert(Aabb({0, 0, 0}, {10, 10, 10}), OneElement(3));
  // Both small boxes are inside the new one and can never win BestOverlap.
  ASSERT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.entry(0).results[0].id, 3u);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(ResultCacheTest, BestOverlapPicksLargestIntersection) {
  ResultCache cache(4);
  cache.Insert(Aabb({0, 0, 0}, {4, 10, 10}), {});     // overlap 4*10*10
  cache.Insert(Aabb({0, 0, 0}, {10, 10, 10}), {});    // subsumes the first
  ASSERT_EQ(cache.size(), 1u);
  cache.Insert(Aabb({8, 0, 0}, {12, 10, 10}), {});    // overlap 2*10*10
  auto best = cache.BestOverlap(Aabb({0, 0, 0}, {10, 10, 10}));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(cache.entry(*best).box, Aabb({0, 0, 0}, {10, 10, 10}));

  EXPECT_FALSE(cache.BestOverlap(Aabb({50, 50, 50}, {60, 60, 60}))
                   .has_value());
  EXPECT_EQ(cache.stats().lookups, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  ResultCache disabled(0);
  disabled.Insert(Aabb({0, 0, 0}, {1, 1, 1}), {});
  EXPECT_EQ(disabled.size(), 0u);
  EXPECT_FALSE(disabled.enabled());

  // Degenerate (zero-volume) boxes can never serve a hit and must not
  // evict useful entries.
  ResultCache planar(2);
  planar.Insert(Aabb({0, 0, 0}, {10, 10, 0}), {});
  EXPECT_EQ(planar.size(), 0u);
}

TEST(DeltaPlannerTest, SliverOverlapDegradesToFullMiss) {
  ResultCache cache(2);
  cache.Insert(Aabb({0, 0, 0}, {10, 10, 10}), {});
  // A corner clip of ~1e-6 of the query volume: paying six residual
  // queries for that coverage would cost more than one full query, so
  // the plan degrades to a miss with the whole box as the one residual.
  DeltaPlan sliver = DeltaPlanner::Plan(
      cache, Aabb({9.9f, 9.9f, 9.9f}, {19.9f, 19.9f, 19.9f}));
  EXPECT_FALSE(sliver.source.has_value());
  ASSERT_EQ(sliver.residuals.size(), 1u);
  EXPECT_EQ(sliver.covered_fraction, 0.0);

  // A solid overlap plans normally.
  DeltaPlan half = DeltaPlanner::Plan(cache, Aabb({5, 0, 0}, {15, 10, 10}));
  EXPECT_TRUE(half.source.has_value());
  EXPECT_NEAR(half.covered_fraction, 0.5, 1e-6);
}

// --------------------------------------------------------------------------
// DeltaPlanner end-to-end exactness (pure geometry, no backends)
// --------------------------------------------------------------------------

ElementVec BruteForce(const ElementVec& elements, const Aabb& box) {
  ElementVec out;
  for (const auto& e : elements) {
    if (e.bounds.Intersects(box)) out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const SpatialElement& a, const SpatialElement& b) {
              return a.id < b.id;
            });
  return out;
}

TEST(DeltaPlannerTest, RandomizedDeltaAnswersEqualFullReQuery) {
  Pcg32 rng(21);
  // A random element cloud with ids in insertion order.
  ElementVec elements;
  for (uint64_t id = 0; id < 2000; ++id) {
    Aabb b = RandomBox(&rng, 100.0f);
    b.max = b.min + (b.max - b.min) * 0.05f;  // small boxes
    elements.emplace_back(id, b);
  }

  ResultCache cache(4);
  for (int round = 0; round < 300; ++round) {
    Aabb query = RandomBox(&rng, 100.0f);
    DeltaPlan plan = DeltaPlanner::Plan(cache, query);

    ElementVec answer;
    if (plan.source.has_value()) {
      EXPECT_GE(plan.covered_fraction, 0.0);
      EXPECT_LE(plan.covered_fraction, 1.0);
      EXPECT_NEAR(plan.covered_fraction + plan.residual_fraction, 1.0, 1e-9);
      // Residual parts answered "by the backend" = brute force here.
      ElementVec residual_results;
      for (const Aabb& residual : plan.residuals) {
        ElementVec part = BruteForce(elements, residual);
        residual_results.insert(residual_results.end(), part.begin(),
                                part.end());
      }
      answer = DeltaPlanner::MergeById(cache.entry(*plan.source), query,
                                       std::move(residual_results));
    } else {
      answer = BruteForce(elements, query);
    }

    // The delta answer must be byte-identical to a full re-query.
    ElementVec truth = BruteForce(elements, query);
    ASSERT_EQ(answer.size(), truth.size()) << "round " << round;
    for (size_t i = 0; i < truth.size(); ++i) {
      ASSERT_EQ(answer[i].id, truth[i].id) << "round " << round;
    }

    cache.Insert(query, std::move(answer));
  }
  EXPECT_GT(cache.stats().hits, 0u);
}

}  // namespace
}  // namespace cache

// --------------------------------------------------------------------------
// storage::PoolManager
// --------------------------------------------------------------------------

namespace storage {
namespace {

TEST(PoolManagerTest, GetOrCreateIsIdempotentByName) {
  PageStore store;
  PageId page = store.Allocate();
  ASSERT_TRUE(store.Write(page, {geom::SpatialElement(
                                    1, geom::Aabb({0, 0, 0}, {1, 1, 1}))})
                  .ok());

  PoolManager manager(64);
  PoolSet* first = manager.GetOrCreate("FLAT", {&store});
  PoolSet* again = manager.GetOrCreate("FLAT", {&store});
  EXPECT_EQ(first, again);
  EXPECT_EQ(manager.NumSets(), 1u);
  EXPECT_EQ(manager.Stats().sets_created, 1u);
  EXPECT_EQ(manager.Stats().sets_reused, 1u);

  // A different name is a different set; an explicit budget is honored.
  PoolSet* other = manager.GetOrCreate("Grid", {&store}, 8);
  EXPECT_NE(other, first);
  EXPECT_EQ(other->pool(0)->capacity(), 8u);
  EXPECT_EQ(first->pool(0)->capacity(), 64u);
}

TEST(PoolManagerTest, StatsAggregateHitsMissesAndEvictions) {
  PageStore store;
  std::vector<PageId> pages;
  for (int i = 0; i < 4; ++i) {
    PageId page = store.Allocate();
    ASSERT_TRUE(store.Write(page, {geom::SpatialElement(
                                      static_cast<uint64_t>(i),
                                      geom::Aabb({0, 0, 0}, {1, 1, 1}))})
                    .ok());
    pages.push_back(page);
  }

  PoolManager manager(16);
  PoolSet* set = manager.GetOrCreate("FLAT", {&store});
  for (PageId page : pages) ASSERT_TRUE(set->pool(0)->Fetch(page).ok());
  for (PageId page : pages) ASSERT_TRUE(set->pool(0)->Fetch(page).ok());

  PoolManagerStats stats = manager.Stats();
  EXPECT_EQ(stats.pool_sets, 1u);
  EXPECT_EQ(stats.pools, 1u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.pages_cached, 4u);
  EXPECT_EQ(manager.TotalTicker("pool.hits"), 4u);

  // Named eviction drops the pages and counts them.
  EXPECT_TRUE(manager.Evict("FLAT"));
  EXPECT_FALSE(manager.Evict("NoSuchSet"));
  stats = manager.Stats();
  EXPECT_EQ(stats.pages_cached, 0u);
  EXPECT_EQ(stats.evictions, 4u);

  // The clock charged one read per miss and one hit cost per hit.
  DiskCostModel cost;
  EXPECT_EQ(manager.clock()->NowMicros(),
            4 * cost.page_read_micros + 4 * cost.page_hit_micros);

  // Remove retires the set's history: counters never decrease.
  EXPECT_TRUE(manager.Remove("FLAT"));
  EXPECT_EQ(manager.NumSets(), 0u);
  stats = manager.Stats();
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.evictions, 4u);
}

}  // namespace
}  // namespace storage
}  // namespace neurodb
