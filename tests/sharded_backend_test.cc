// Tests of the domain-sharded backend: deterministic longest-axis
// splitting, ground-truth parity on queries that straddle shard
// boundaries, the single-shard degenerate case, k beyond the per-shard
// population (the cross-shard merge must refill from other shards), pool
// set validation, and serial-vs-parallel shard fan-out equivalence.

#include "engine/sharded_backend.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "diff_harness.h"
#include "exec/thread_pool.h"
#include "neuro/workload.h"

namespace neurodb {
namespace engine {
namespace {

using geom::Aabb;
using geom::ElementId;
using geom::KnnHit;
using geom::Vec3;

geom::ElementVec MakeCloud(size_t n, uint64_t seed) {
  Aabb domain(Vec3(0, 0, 0), Vec3(200, 120, 80));
  return neuro::UniformSegments(n, domain, 6.0f, 2.0f, 0.5f, seed).Elements();
}

std::vector<ElementId> SortedIds(const CollectingVisitor& visitor) {
  std::vector<ElementId> ids = visitor.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(ShardedBackendTest, SplitsAreExhaustiveAndNonEmpty) {
  geom::ElementVec elements = MakeCloud(500, 3);
  ShardedOptions options;
  options.num_shards = 6;
  ShardedBackend backend(options);
  ASSERT_TRUE(backend.Build(elements).ok());

  ASSERT_EQ(backend.NumShards(), 6u);
  size_t total = 0;
  for (size_t s = 0; s < backend.NumShards(); ++s) {
    EXPECT_GT(backend.ShardPopulation(s), 0u);
    EXPECT_TRUE(backend.shard_bounds(s).IsValid());
    total += backend.ShardPopulation(s);
  }
  EXPECT_EQ(total, elements.size());
  // Near-proportional split: no shard hoards the data.
  for (size_t s = 0; s < backend.NumShards(); ++s) {
    EXPECT_LT(backend.ShardPopulation(s), elements.size() / 2);
  }
}

TEST(ShardedBackendTest, CostBasedSelectionSkipsZeroPopulationShards) {
  // An empty build produces one zero-population shard whose bounds never
  // became valid — selection must skip it by population, queries must
  // still work and kNN must return nothing.
  ShardedBackend empty_backend;
  ASSERT_TRUE(empty_backend.Build(geom::ElementVec{}).ok());
  ASSERT_EQ(empty_backend.NumShards(), 1u);
  EXPECT_EQ(empty_backend.ShardPopulation(0), 0u);
  EXPECT_TRUE(
      empty_backend.SelectShards(Aabb(Vec3(0, 0, 0), Vec3(500, 500, 500)))
          .empty());

  storage::PoolSet pools = empty_backend.MakePoolSet(64);
  CollectingVisitor out;
  ASSERT_TRUE(empty_backend
                  .RangeQuery(Aabb(Vec3(0, 0, 0), Vec3(500, 500, 500)),
                              &pools, out)
                  .ok());
  EXPECT_EQ(out.size(), 0u);
  std::vector<KnnHit> hits;
  ASSERT_TRUE(empty_backend.KnnQuery(Vec3(1, 1, 1), 5, &pools, &hits).ok());
  EXPECT_TRUE(hits.empty());

  // On a populated backend the selection is driven by bounds intersection
  // as before: a query outside every shard selects nothing, a domain-wide
  // query selects only populated shards.
  geom::ElementVec elements = MakeCloud(400, 11);
  ShardedOptions options;
  options.num_shards = 4;
  ShardedBackend backend(options);
  ASSERT_TRUE(backend.Build(elements).ok());
  EXPECT_TRUE(
      backend.SelectShards(Aabb(Vec3(900, 900, 900), Vec3(950, 950, 950)))
          .empty());
  std::vector<size_t> all =
      backend.SelectShards(Aabb(Vec3(-10, -10, -10), Vec3(500, 500, 500)));
  EXPECT_EQ(all.size(), backend.NumShards());
  for (size_t s : all) EXPECT_GT(backend.ShardPopulation(s), 0u);
}

TEST(ShardedBackendTest, FewerElementsThanShardsDegradesGracefully) {
  geom::ElementVec elements = MakeCloud(3, 5);
  ShardedOptions options;
  options.num_shards = 8;
  ShardedBackend backend(options);
  ASSERT_TRUE(backend.Build(elements).ok());
  EXPECT_EQ(backend.NumShards(), 3u);

  storage::PoolSet pools = backend.MakePoolSet(64);
  std::vector<KnnHit> hits;
  ASSERT_TRUE(backend.KnnQuery(Vec3(0, 0, 0), 10, &pools, &hits).ok());
  EXPECT_EQ(hits, geom::BruteForceKnn(elements, Vec3(0, 0, 0), 10));
}

TEST(ShardedBackendTest, RangeParityAcrossShardBoundaries) {
  geom::ElementVec elements = MakeCloud(3000, 11);
  ShardedOptions options;
  options.num_shards = 5;  // odd count → uneven recursive cuts
  ShardedBackend backend(options);
  ASSERT_TRUE(backend.Build(elements).ok());

  // Boxes centered on data (guaranteed hits, many near cut planes) plus
  // domain-spanning slabs that cross every shard.
  auto queries = neuro::DataCenteredQueries(elements, 35.0f, 12, 17);
  queries.push_back(Aabb(Vec3(0, 0, 0), Vec3(200, 120, 80)));
  queries.push_back(Aabb(Vec3(95, 0, 0), Vec3(105, 120, 80)));
  queries.push_back(Aabb(Vec3(-50, -50, -50), Vec3(-1, -1, -1)));  // empty

  for (const Aabb& box : queries) {
    storage::PoolSet pools = backend.MakePoolSet(4096);
    CollectingVisitor out;
    RangeStats stats;
    ASSERT_TRUE(backend.RangeQuery(box, &pools, out, &stats).ok());
    EXPECT_EQ(SortedIds(out),
              ::neurodb::testing::BruteForceRangeIds(elements, box))
        << "box " << box;
    EXPECT_EQ(stats.results, out.size());
  }
}

TEST(ShardedBackendTest, KnnParityIncludingKBeyondShardPopulation) {
  geom::ElementVec elements = MakeCloud(400, 13);
  ShardedOptions options;
  options.num_shards = 8;  // ~50 elements per shard
  ShardedBackend backend(options);
  ASSERT_TRUE(backend.Build(elements).ok());

  size_t max_shard = 0;
  for (size_t s = 0; s < backend.NumShards(); ++s) {
    max_shard = std::max(max_shard, backend.ShardPopulation(s));
  }

  std::vector<Vec3> points = {Vec3(100, 60, 40), Vec3(0, 0, 0),
                              Vec3(500, 500, 500), Vec3(-40, 60, 10)};
  // k values below, at and far beyond the largest shard population: the
  // best-first shard merge must keep refilling from farther shards.
  for (size_t k : {size_t{1}, size_t{16}, max_shard + 10, elements.size() + 5}) {
    for (const Vec3& p : points) {
      storage::PoolSet pools = backend.MakePoolSet(4096);
      std::vector<KnnHit> hits;
      ASSERT_TRUE(backend.KnnQuery(p, k, &pools, &hits).ok());
      EXPECT_EQ(hits, geom::BruteForceKnn(elements, p, k))
          << "k=" << k << " at (" << p.x << ", " << p.y << ", " << p.z << ")";
    }
  }
}

TEST(ShardedBackendTest, SingleShardDegenerateCaseMatchesGroundTruth) {
  geom::ElementVec elements = MakeCloud(600, 29);
  ShardedOptions options;
  options.num_shards = 1;
  ShardedBackend backend(options);
  ASSERT_TRUE(backend.Build(elements).ok());
  ASSERT_EQ(backend.NumShards(), 1u);

  Aabb box = Aabb::Cube(Vec3(100, 60, 40), 60.0f);
  storage::PoolSet pools = backend.MakePoolSet(4096);
  CollectingVisitor out;
  ASSERT_TRUE(backend.RangeQuery(box, &pools, out, nullptr).ok());
  EXPECT_EQ(SortedIds(out),
            ::neurodb::testing::BruteForceRangeIds(elements, box));

  std::vector<KnnHit> hits;
  ASSERT_TRUE(backend.KnnQuery(Vec3(100, 60, 40), 12, &pools, &hits).ok());
  EXPECT_EQ(hits, geom::BruteForceKnn(elements, Vec3(100, 60, 40), 12));
}

TEST(ShardedBackendTest, ParallelShardFanOutMatchesSerial) {
  geom::ElementVec elements = MakeCloud(2000, 37);
  ShardedOptions options;
  options.num_shards = 4;

  ShardedBackend serial(options);
  ShardedBackend parallel(options);
  ASSERT_TRUE(serial.Build(elements).ok());
  ASSERT_TRUE(parallel.Build(elements).ok());
  exec::ThreadPool pool(4);
  parallel.set_thread_pool(&pool);

  auto queries = neuro::DataCenteredQueries(elements, 45.0f, 10, 41);
  for (const Aabb& box : queries) {
    storage::PoolSet serial_pools = serial.MakePoolSet(4096);
    storage::PoolSet parallel_pools = parallel.MakePoolSet(4096);
    CollectingVisitor serial_out, parallel_out;
    RangeStats serial_stats, parallel_stats;
    ASSERT_TRUE(
        serial.RangeQuery(box, &serial_pools, serial_out, &serial_stats).ok());
    ASSERT_TRUE(parallel
                    .RangeQuery(box, &parallel_pools, parallel_out,
                                &parallel_stats)
                    .ok());
    // Bit-identical, including the visit order (shard-order replay).
    EXPECT_EQ(serial_out.Ids(), parallel_out.Ids());
    EXPECT_EQ(serial_stats.pages_read, parallel_stats.pages_read);
    EXPECT_EQ(serial_stats.elements_scanned, parallel_stats.elements_scanned);
    EXPECT_EQ(serial_stats.results, parallel_stats.results);
  }
}

TEST(ShardedBackendTest, RejectsMismatchedPoolSets) {
  geom::ElementVec elements = MakeCloud(200, 43);
  ShardedOptions options;
  options.num_shards = 4;
  ShardedBackend backend(options);
  ASSERT_TRUE(backend.Build(elements).ok());

  // A single-pool set does not cover four shard stores.
  GridBackend other;
  ASSERT_TRUE(other.Build(elements).ok());
  storage::PoolSet wrong = other.MakePoolSet(64);
  CollectingVisitor out;
  EXPECT_TRUE(backend.RangeQuery(Aabb::Cube(Vec3(0, 0, 0), 10), &wrong, out)
                  .IsInvalidArgument());
  std::vector<KnnHit> hits;
  EXPECT_TRUE(
      backend.KnnQuery(Vec3(0, 0, 0), 3, &wrong, &hits).IsInvalidArgument());
  EXPECT_TRUE(backend.RangeQuery(Aabb::Cube(Vec3(0, 0, 0), 10), nullptr, out)
                  .IsInvalidArgument());
}

TEST(ShardedBackendTest, StoreReadsAggregateAcrossShards) {
  geom::ElementVec elements = MakeCloud(1000, 47);
  ShardedOptions options;
  options.num_shards = 4;
  ShardedBackend backend(options);
  ASSERT_TRUE(backend.Build(elements).ok());
  EXPECT_EQ(backend.Stores().size(), 4u);
  EXPECT_EQ(backend.TotalStoreReads(), 0u);

  storage::PoolSet pools = backend.MakePoolSet(4096);
  CollectingVisitor out;
  Aabb everything(Vec3(-1000, -1000, -1000), Vec3(1000, 1000, 1000));
  ASSERT_TRUE(backend.RangeQuery(everything, &pools, out, nullptr).ok());
  EXPECT_EQ(out.size(), elements.size());

  // Every shard served pages; the aggregation sums their stores.
  uint64_t total = 0;
  for (size_t s = 0; s < backend.NumShards(); ++s) {
    uint64_t reads = backend.shard(s).store().NumReads();
    EXPECT_GT(reads, 0u) << "shard " << s;
    total += reads;
  }
  EXPECT_EQ(backend.TotalStoreReads(), total);

  BackendStats stats = backend.Stats();
  EXPECT_GT(stats.index_pages, 0u);
  EXPECT_GT(stats.metadata_bytes, 0u);
}

}  // namespace
}  // namespace engine
}  // namespace neurodb
