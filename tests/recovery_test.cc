// Crash-recovery tests: the kill-at-every-WAL-record matrix (a recovered
// engine answers byte-identically to a never-crashed oracle), torn-tail
// truncation, durable round-trips through QueryEngine::Open, checkpoint
// semantics (Compact truncates the WAL; a crash mid-checkpoint rolls back
// to the previous base + full WAL), and the seeded recovery fuzz that
// backs the recovery_fuzz_nightly ctest label.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "diff_harness.h"
#include "engine/query_engine.h"
#include "geom/knn.h"
#include "neuro/workload.h"
#include "storage/disk/file.h"

namespace neurodb {
namespace engine {
namespace {

using geom::Aabb;
using geom::ElementId;
using geom::ElementVec;
using geom::SpatialElement;
using geom::Vec3;
using neurodb::testing::BruteForceRangeIds;
using neurodb::testing::EnvOr;
using neurodb::testing::ReplayWalkthrough;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "ndb_recovery_test_XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    if (made != nullptr) path_ = made;
  }
  ~TempDir() {
    if (!path_.empty()) std::filesystem::remove_all(path_);
  }
  std::string Sub(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

ElementVec MakeGrid(size_t n) {
  ElementVec out;
  for (size_t i = 0; i < n; ++i) {
    float x = static_cast<float>(i % 8) * 10.0f;
    float y = static_cast<float>((i / 8) % 8) * 10.0f;
    float z = static_cast<float>(i / 64) * 10.0f;
    out.emplace_back(i + 1,
                     Aabb(Vec3(x, y, z), Vec3(x + 4, y + 4, z + 4)));
  }
  return out;
}

Aabb BoxAt(float x, float y, float z, float side) {
  return Aabb(Vec3(x, y, z), Vec3(x + side, y + side, z + side));
}

// A fixed 10-batch update script over MakeGrid(48) (ids 1..48; new ids from
// 1000): inserts, moves and erases, including ops on earlier batch output.
std::vector<std::vector<UpdateRequest>> ScriptedBatches() {
  auto ins = [](ElementId id, float x) {
    return UpdateRequest{UpdateKind::kInsert, id, BoxAt(x, x, x, 3)};
  };
  auto mov = [](ElementId id, float x) {
    return UpdateRequest{UpdateKind::kMove, id, BoxAt(x, 2, 2, 5)};
  };
  auto del = [](ElementId id) {
    return UpdateRequest{UpdateKind::kErase, id, Aabb()};
  };
  return {
      {ins(1000, 1), ins(1001, 7)},
      {mov(1000, 30), ins(1002, 13)},
      {del(1001), ins(1003, 19)},
      {mov(5, 44)},
      {del(7), del(1000)},
      {ins(1004, 25), mov(1002, 61)},
      {ins(1005, 33)},
      {del(1003), mov(11, 52)},
      {ins(1006, 39), ins(1007, 45), del(1004)},
      {mov(1006, 3), del(13)},
  };
}

// Mutates the brute-force oracle (ascending by id) exactly as the engine
// applies `batch`.
void ApplyToOracle(ElementVec* live, const std::vector<UpdateRequest>& batch) {
  for (const UpdateRequest& u : batch) {
    auto it = std::lower_bound(
        live->begin(), live->end(), u.id,
        [](const SpatialElement& e, ElementId v) { return e.id < v; });
    if (u.kind == UpdateKind::kInsert) {
      live->insert(it, SpatialElement(u.id, u.bounds));
    } else if (u.kind == UpdateKind::kErase) {
      ASSERT_TRUE(it != live->end() && it->id == u.id);
      live->erase(it);
    } else {
      ASSERT_TRUE(it != live->end() && it->id == u.id);
      it->bounds = u.bounds;
    }
  }
}

// kAll range + kNN + internal parity of `db` against the oracle live set.
void ExpectMatchesOracle(QueryEngine* db, const ElementVec& live,
                         const std::string& context) {
  const Aabb everything = BoxAt(-10, -10, -10, 200);
  const Aabb boxes[] = {everything, BoxAt(0, 0, 0, 25), BoxAt(28, 1, 1, 40)};
  for (const Aabb& box : boxes) {
    RangeRequest request;
    request.box = box;
    request.backend = BackendChoice::kAll;
    request.cache = CachePolicy::kWarm;
    geom::CollectingVisitor out;
    auto report = db->Execute(request, out);
    ASSERT_TRUE(report.ok()) << context << ": " << report.status().ToString();
    EXPECT_TRUE(report->results_match) << context;
    std::vector<ElementId> ids = out.Ids();
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, BruteForceRangeIds(live, box)) << context;
  }

  KnnRequest knn;
  knn.point = Vec3(20, 20, 5);
  knn.k = 8;
  knn.backend = BackendChoice::kAll;
  auto kr = db->Execute(knn);
  ASSERT_TRUE(kr.ok()) << context;
  EXPECT_TRUE(kr->results_match) << context;
  EXPECT_EQ(kr->hits, geom::BruteForceKnn(live, knn.point, knn.k)) << context;
}

EngineOptions DurableOptions(const std::string& dir,
                             storage::FileSystem* fs = nullptr,
                             SyncPolicy sync = SyncPolicy::kPerBatch) {
  EngineOptions options;
  options.durability.dir = dir;
  options.durability.fs = fs;
  options.durability.block_bytes = 512;
  options.durability.sync = sync;
  return options;
}

// ---------------------------------------------------------------------------
// Round trips and basic Open semantics
// ---------------------------------------------------------------------------

TEST(RecoveryTest, CleanCloseRoundTripsThroughOpen) {
  TempDir dir;
  ElementVec initial = MakeGrid(300);
  {
    QueryEngine db(DurableOptions(dir.Sub("data")));
    ASSERT_TRUE(db.LoadElements(initial).ok());
  }
  RecoveryReport report;
  auto db = QueryEngine::Open(dir.Sub("data"), EngineOptions(), &report);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(report.base_elements, initial.size());
  EXPECT_EQ(report.replayed_batches, 0u);
  EXPECT_FALSE(report.torn_tail);

  // Full differential parity of the reopened engine vs the original
  // element list: kAll ranges and kNN against brute force.
  neuro::MixedWorkloadOptions workload;
  auto outcome = neurodb::testing::RunDifferential(db->get(), initial,
                                                   workload, 120, 0xD15C);
  EXPECT_FALSE(outcome.diverged) << outcome.Summary();

  // Walkthrough parity (sessions over the recovered engine).
  std::vector<Aabb> path = {BoxAt(0, 0, 0, 30), BoxAt(10, 5, 0, 30),
                            BoxAt(20, 10, 0, 30), BoxAt(30, 15, 0, 30)};
  EXPECT_EQ(ReplayWalkthrough(db->get(), initial, path,
                              scout::PrefetchMethod::kNone),
            std::string());
}

TEST(RecoveryTest, WalBatchesReplayAfterUncleanClose) {
  TempDir dir;
  ElementVec initial = MakeGrid(48);
  ElementVec oracle = initial;
  auto batches = ScriptedBatches();
  {
    QueryEngine db(DurableOptions(dir.Sub("data")));
    ASSERT_TRUE(db.LoadElements(initial).ok());
    for (const auto& batch : batches) {
      ASSERT_TRUE(
          db.ApplyUpdates(std::span<const UpdateRequest>(batch)).ok());
      ApplyToOracle(&oracle, batch);
    }
    // No Checkpoint, no Compact: everything since load lives in the WAL.
  }
  RecoveryReport report;
  auto db = QueryEngine::Open(dir.Sub("data"), EngineOptions(), &report);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(report.checkpoint_epoch, 0u);
  EXPECT_EQ(report.replayed_batches, batches.size());
  EXPECT_EQ((*db)->epoch(), batches.size());
  ExpectMatchesOracle(db->get(), oracle, "unclean close");
}

TEST(RecoveryTest, OpenRejectsADirectoryWithoutABase) {
  TempDir dir;
  auto db = QueryEngine::Open(dir.Sub("empty"));
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsNotFound()) << db.status().ToString();
}

TEST(RecoveryTest, CompactCheckpointsAndTruncatesTheWal) {
  TempDir dir;
  ElementVec oracle = MakeGrid(48);
  auto batches = ScriptedBatches();
  {
    QueryEngine db(DurableOptions(dir.Sub("data")));
    ASSERT_TRUE(db.LoadElements(MakeGrid(48)).ok());
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          db.ApplyUpdates(std::span<const UpdateRequest>(batches[i])).ok());
      ApplyToOracle(&oracle, batches[i]);
    }
    ASSERT_GT(db.durability()->wal().end_offset(), 16u);
    ASSERT_TRUE(db.Compact().ok());
    // The checkpoint emptied the log and stamped the post-compact epoch.
    EXPECT_EQ(db.durability()->wal().end_offset(), 16u);
    EXPECT_EQ(db.durability()->checkpoint_epoch(), 5u);
    for (size_t i = 4; i < 7; ++i) {
      ASSERT_TRUE(
          db.ApplyUpdates(std::span<const UpdateRequest>(batches[i])).ok());
      ApplyToOracle(&oracle, batches[i]);
    }
  }
  RecoveryReport report;
  auto db = QueryEngine::Open(dir.Sub("data"), EngineOptions(), &report);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(report.checkpoint_epoch, 5u);
  EXPECT_EQ(report.replayed_batches, 3u);
  EXPECT_EQ((*db)->epoch(), 8u);
  ExpectMatchesOracle(db->get(), oracle, "compact + tail");
}

TEST(RecoveryTest, DurableEngineReportsDeviceIo) {
  TempDir dir;
  QueryEngine db(DurableOptions(dir.Sub("data")));
  ASSERT_TRUE(db.LoadElements(MakeGrid(300)).ok());

  storage::IoStats totals = db.IoTotals();
  EXPECT_GT(totals.bytes_written, 0u);  // backend builds + checkpoint
  EXPECT_GT(totals.fsyncs, 0u);

  RangeRequest request;
  request.box = BoxAt(0, 0, 0, 50);
  request.backend = BackendChoice::kAll;
  request.cache = CachePolicy::kWarm;
  auto report = db.Execute(request);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->io.bytes_read, 0u);  // first touch pays device reads

  // The in-memory engine reports all zeros through the same seams.
  QueryEngine memory;
  ASSERT_TRUE(memory.LoadElements(MakeGrid(300)).ok());
  storage::IoStats none = memory.IoTotals();
  EXPECT_EQ(none.bytes_read + none.bytes_written + none.fsyncs, 0u);
  auto memory_report = memory.Execute(request);
  ASSERT_TRUE(memory_report.ok());
  EXPECT_EQ(memory_report->io.bytes_read, 0u);
  EXPECT_EQ(memory_report->io.bytes_written, 0u);
}

// ---------------------------------------------------------------------------
// The crash matrix: kill the process at every WAL record (clean cut and
// torn tail), recover, and demand byte-identical answers to a never-
// crashed oracle holding exactly the acknowledged batches.
// ---------------------------------------------------------------------------

void RunCrashMatrix(size_t tear_bytes,
                    SyncPolicy sync = SyncPolicy::kPerBatch) {
  auto batches = ScriptedBatches();
  for (size_t crash_at = 0; crash_at < batches.size(); ++crash_at) {
    SCOPED_TRACE("crash before WAL record " + std::to_string(crash_at) +
                 " tear=" + std::to_string(tear_bytes) +
                 " sync=" + std::to_string(static_cast<int>(sync)));
    TempDir dir;
    storage::FaultPlan plan;
    plan.path_filter = "wal.ndb";
    plan.tear_bytes = tear_bytes;
    storage::FaultInjectingFileSystem fs(storage::DefaultFileSystem(), &plan);

    ElementVec oracle = MakeGrid(48);
    auto db = std::make_unique<QueryEngine>(
        DurableOptions(dir.Sub("data"), &fs, sync));
    ASSERT_TRUE(db->LoadElements(MakeGrid(48)).ok());

    // Arm after load: every counted write is one ApplyUpdates WAL append,
    // so budget == index of the batch whose append dies.
    plan.Reset(static_cast<int64_t>(crash_at));
    size_t acked = 0;
    for (const auto& batch : batches) {
      auto applied = db->ApplyUpdates(std::span<const UpdateRequest>(batch));
      if (!applied.ok()) break;
      ApplyToOracle(&oracle, batch);
      ++acked;
    }
    ASSERT_EQ(acked, crash_at);
    ASSERT_TRUE(plan.Crashed());

    // An un-acknowledged batch must have left the engine consistent: it
    // still answers (pre-crash state) even though durability is gone.
    ExpectMatchesOracle(db.get(), oracle, "post-crash, pre-recovery");

    // "Restart the process": drop the dead engine, lift the fault, reopen.
    db.reset();
    plan.Reset(-1);
    RecoveryReport report;
    auto recovered =
        QueryEngine::Open(dir.Sub("data"), DurableOptions("", &fs), &report);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

    // No fsync'd batch may be lost; nothing past the acknowledged set may
    // materialize (a torn record must not replay).
    EXPECT_GE(report.replayed_batches, acked);
    EXPECT_LE(report.replayed_batches, acked + 1);
    EXPECT_EQ(report.replayed_batches, acked);
    EXPECT_EQ(report.torn_tail, tear_bytes > 0);
    if (tear_bytes > 0) EXPECT_GT(report.dropped_bytes, 0u);
    EXPECT_EQ((*recovered)->epoch(),
              report.checkpoint_epoch + report.replayed_batches);

    ExpectMatchesOracle(recovered->get(), oracle, "recovered");

    // Life goes on: the recovered engine accepts the remaining batches
    // (appending cleanly after the truncated tail) and stays in parity.
    for (size_t i = acked; i < batches.size(); ++i) {
      ASSERT_TRUE((*recovered)
                      ->ApplyUpdates(
                          std::span<const UpdateRequest>(batches[i]))
                      .ok());
      ApplyToOracle(&oracle, batches[i]);
    }
    ExpectMatchesOracle(recovered->get(), oracle, "resumed after recovery");
  }
}

TEST(RecoveryMatrixTest, KillAtEveryWalRecordLosesNoAcknowledgedBatch) {
  RunCrashMatrix(/*tear_bytes=*/0);
}

TEST(RecoveryMatrixTest, TornTailAtEveryWalRecordIsDroppedCleanly) {
  // 11 bytes is shorter than any record header: replay must classify the
  // leftover prefix as a torn tail and recovery must truncate it.
  RunCrashMatrix(/*tear_bytes=*/11);
}

// A single writer under SyncPolicy::kGroup forms groups of one: every
// coalesced append is still exactly one counted WAL write, so the whole
// matrix (and its byte-identical oracle) must hold unchanged.
TEST(RecoveryMatrixTest, KillAtEveryWalRecordUnderGroupCommit) {
  RunCrashMatrix(/*tear_bytes=*/0, SyncPolicy::kGroup);
}

TEST(RecoveryMatrixTest, TornTailAtEveryWalRecordUnderGroupCommit) {
  RunCrashMatrix(/*tear_bytes=*/11, SyncPolicy::kGroup);
}

// kNone still writes every record before the backends mutate — it only
// skips the fsync. Under the fault model a written record survives the
// crash, so the acknowledged set is still exactly what recovers.
TEST(RecoveryMatrixTest, KillAtEveryWalRecordUnderNoSyncPolicy) {
  RunCrashMatrix(/*tear_bytes=*/0, SyncPolicy::kNone);
}

// Kill the WAL write inside a genuinely coalesced group append: several
// writer threads race batches into the combining queue while the fault
// plan cuts the log after `budget` group writes. Group commit must keep
// the crash atomic per group — after recovery the live set is exactly the
// seed grid plus every acknowledged insert, nothing more, nothing less
// (an unacknowledged batch from a killed group must not materialize).
TEST(RecoveryMatrixTest, KillInsideCoalescedGroupAppendWithWriterRace) {
  constexpr int kWriters = 4;
  constexpr int kBatchesPerWriter = 16;
  for (int64_t budget : {1, 2, 4, 7}) {
    SCOPED_TRACE("budget=" + std::to_string(budget));
    TempDir dir;
    storage::FaultPlan plan;
    plan.path_filter = "wal.ndb";
    storage::FaultInjectingFileSystem fs(storage::DefaultFileSystem(), &plan);

    EngineOptions options =
        DurableOptions(dir.Sub("data"), &fs, SyncPolicy::kGroup);
    options.durability.group_max_batches = 8;
    options.durability.group_hold_us = 2000;  // force real coalescing
    auto db = std::make_unique<QueryEngine>(options);
    ASSERT_TRUE(db->LoadElements(MakeGrid(48)).ok());

    plan.Reset(budget);
    std::vector<std::vector<ElementId>> acked(kWriters);
    {
      std::vector<std::thread> writers;
      for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
          for (int i = 0; i < kBatchesPerWriter; ++i) {
            UpdateRequest request;
            request.kind = UpdateKind::kInsert;
            request.id = 10000 + static_cast<ElementId>(w) * 1000 + i;
            float f = static_cast<float>(request.id % 97);
            request.bounds = BoxAt(f, f, f, 2);
            auto applied = db->ApplyUpdates(
                std::span<const UpdateRequest>(&request, 1));
            if (applied.ok()) acked[w].push_back(request.id);
          }
        });
      }
      for (auto& t : writers) t.join();
    }
    ASSERT_TRUE(plan.Crashed());

    size_t total_acked = 0;
    std::vector<ElementId> expected;
    for (const auto& ids : acked) {
      total_acked += ids.size();
      expected.insert(expected.end(), ids.begin(), ids.end());
    }
    for (const SpatialElement& e : MakeGrid(48)) expected.push_back(e.id);
    std::sort(expected.begin(), expected.end());

    db.reset();
    plan.Reset(-1);
    RecoveryReport report;
    auto recovered =
        QueryEngine::Open(dir.Sub("data"), DurableOptions("", &fs), &report);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    // Every batch in a group is acknowledged (or fails) atomically with
    // the group's single write + fsync, so replay lands on exactly the
    // acknowledged count.
    EXPECT_EQ(report.replayed_batches, total_acked);

    const Aabb everything = BoxAt(-10, -10, -10, 200);
    RangeRequest request;
    request.box = everything;
    request.backend = BackendChoice::kAll;
    geom::CollectingVisitor out;
    auto range = (*recovered)->Execute(request, out);
    ASSERT_TRUE(range.ok()) << range.status().ToString();
    EXPECT_TRUE(range->results_match);
    std::vector<ElementId> ids = out.Ids();
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, expected);
  }
}

TEST(RecoveryTest, CrashDuringCheckpointRollsBackToPreviousBaseAndWal) {
  TempDir dir;
  storage::FaultPlan plan;
  plan.path_filter = "base.ndb";
  storage::FaultInjectingFileSystem fs(storage::DefaultFileSystem(), &plan);

  ElementVec oracle = MakeGrid(48);
  auto batches = ScriptedBatches();
  auto db =
      std::make_unique<QueryEngine>(DurableOptions(dir.Sub("data"), &fs));
  ASSERT_TRUE(db->LoadElements(MakeGrid(48)).ok());
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        db->ApplyUpdates(std::span<const UpdateRequest>(batches[i])).ok());
    ApplyToOracle(&oracle, batches[i]);
  }

  // Kill the base rewrite mid-checkpoint: copy-on-write means the
  // committed base (epoch 0) and the 4-record WAL must both survive.
  plan.Reset(1);
  ASSERT_FALSE(db->Compact().ok());
  ASSERT_TRUE(plan.Crashed());

  db.reset();
  plan.Reset(-1);
  RecoveryReport report;
  auto recovered =
      QueryEngine::Open(dir.Sub("data"), DurableOptions("", &fs), &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(report.checkpoint_epoch, 0u);
  EXPECT_EQ(report.replayed_batches, 4u);
  ExpectMatchesOracle(recovered->get(), oracle, "mid-checkpoint crash");
}

// Kill the base rewrite of a *background* checkpoint (CheckpointAsync on
// the mutation worker) while the foreground keeps committing. The fault
// only hits base.ndb, so the concurrent commits keep succeeding; the
// failed checkpoint must leave the previous base and the (now longer) WAL
// fully intact, and recovery must land on every acknowledged batch.
TEST(RecoveryTest, KillMidBackgroundCheckpointKeepsCommittingAndRecovers) {
  TempDir dir;
  storage::FaultPlan plan;
  plan.path_filter = "base.ndb";
  storage::FaultInjectingFileSystem fs(storage::DefaultFileSystem(), &plan);

  ElementVec oracle = MakeGrid(48);
  auto batches = ScriptedBatches();
  auto db = std::make_unique<QueryEngine>(
      DurableOptions(dir.Sub("data"), &fs, SyncPolicy::kGroup));
  ASSERT_TRUE(db->LoadElements(MakeGrid(48)).ok());
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        db->ApplyUpdates(std::span<const UpdateRequest>(batches[i])).ok());
    ApplyToOracle(&oracle, batches[i]);
  }

  plan.Reset(1);
  std::future<Status> pending = db->CheckpointAsync();
  // Foreground writers race the streaming rewrite; their WAL appends are
  // not fault-filtered and must all acknowledge.
  for (size_t i = 4; i < batches.size(); ++i) {
    ASSERT_TRUE(
        db->ApplyUpdates(std::span<const UpdateRequest>(batches[i])).ok());
    ApplyToOracle(&oracle, batches[i]);
  }
  Status checkpoint = pending.get();
  ASSERT_FALSE(checkpoint.ok());
  ASSERT_TRUE(plan.Crashed());

  // The engine itself is still healthy — only the checkpoint died.
  ExpectMatchesOracle(db.get(), oracle, "after failed background checkpoint");

  db.reset();
  plan.Reset(-1);
  RecoveryReport report;
  auto recovered =
      QueryEngine::Open(dir.Sub("data"), DurableOptions("", &fs), &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(report.checkpoint_epoch, 0u);
  EXPECT_EQ(report.replayed_batches, batches.size());
  ExpectMatchesOracle(recovered->get(), oracle,
                      "recovered after background-checkpoint kill");
}

// ---------------------------------------------------------------------------
// Per-backend page-file crash points: kill writes to the <backend>.pages
// files (rebuildable caches, unlike base.ndb/wal.ndb) during the two
// phases that write them — the initial build and Compact — and demand the
// directory stays recoverable either way.
// ---------------------------------------------------------------------------

// A crash inside the backend page builds of LoadElements: the load was
// never acknowledged, so recovery may legitimately come back with either
// the full load set (the WAL-before-build load record survived) or an
// empty engine (the crash predates the load record) — never partial
// state, and never an unopenable directory. At least one budget in the
// sweep must land after the load record, proving the record actually
// rescues a crashed build.
TEST(RecoveryMatrixTest, KillInBackendPageWritesDuringBuildStaysRecoverable) {
  ElementVec initial = MakeGrid(48);
  size_t full_recoveries = 0;
  size_t crashes = 0;
  for (int64_t budget : {1, 4, 12, 25}) {
    SCOPED_TRACE("budget=" + std::to_string(budget));
    TempDir dir;
    storage::FaultPlan plan;
    plan.path_filter = ".pages";
    storage::FaultInjectingFileSystem fs(storage::DefaultFileSystem(), &plan);

    auto db = std::make_unique<QueryEngine>(
        DurableOptions(dir.Sub("data"), &fs));
    plan.Reset(budget);
    Status loaded = db->LoadElements(initial);
    if (loaded.ok()) continue;  // budget outlasted every build write
    ASSERT_TRUE(plan.Crashed()) << loaded.ToString();
    ++crashes;

    db.reset();
    plan.Reset(-1);
    RecoveryReport report;
    auto recovered =
        QueryEngine::Open(dir.Sub("data"), DurableOptions("", &fs), &report);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

    const Aabb everything = BoxAt(-10, -10, -10, 200);
    RangeRequest request;
    request.box = everything;
    request.backend = BackendChoice::kAll;
    geom::CollectingVisitor out;
    auto range = (*recovered)->Execute(request, out);
    ASSERT_TRUE(range.ok()) << range.status().ToString();
    EXPECT_TRUE(range->results_match);
    std::vector<ElementId> ids = out.Ids();
    std::sort(ids.begin(), ids.end());
    if (ids.empty()) {
      EXPECT_EQ(report.base_elements, 0u);  // pre-record crash: clean slate
    } else {
      ElementVec oracle = initial;
      std::sort(oracle.begin(), oracle.end(),
                [](const SpatialElement& a, const SpatialElement& b) {
                  return a.id < b.id;
                });
      EXPECT_EQ(ids, BruteForceRangeIds(oracle, everything));
      ++full_recoveries;
    }
  }
  EXPECT_GT(crashes, 0u);
  // The load record must have rescued at least one crashed build.
  EXPECT_GT(full_recoveries, 0u);
}

// A crash inside the .pages writes of Compact (the backend rebuilds or the
// checkpoint's store flush): the page files are caches of base + WAL, so
// recovery must land on exactly the acknowledged batches regardless of
// where in the compaction the write died.
TEST(RecoveryMatrixTest, KillInBackendPageWritesDuringCompactRecovers) {
  auto batches = ScriptedBatches();
  size_t crashes = 0;
  for (int64_t budget : {1, 3, 8, 20}) {
    SCOPED_TRACE("budget=" + std::to_string(budget));
    TempDir dir;
    storage::FaultPlan plan;
    plan.path_filter = ".pages";
    storage::FaultInjectingFileSystem fs(storage::DefaultFileSystem(), &plan);

    ElementVec oracle = MakeGrid(48);
    auto db = std::make_unique<QueryEngine>(
        DurableOptions(dir.Sub("data"), &fs));
    ASSERT_TRUE(db->LoadElements(MakeGrid(48)).ok());
    for (size_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          db->ApplyUpdates(std::span<const UpdateRequest>(batches[i])).ok());
      ApplyToOracle(&oracle, batches[i]);
    }

    plan.Reset(budget);
    Status compacted = db->Compact();
    if (!compacted.ok()) {
      ASSERT_TRUE(plan.Crashed()) << compacted.ToString();
      ++crashes;
    }

    db.reset();
    plan.Reset(-1);
    RecoveryReport report;
    auto recovered =
        QueryEngine::Open(dir.Sub("data"), DurableOptions("", &fs), &report);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ExpectMatchesOracle(recovered->get(), oracle,
                        "compact .pages crash, budget " +
                            std::to_string(budget));

    // Life goes on: the rest of the script applies and stays in parity.
    for (size_t i = 5; i < batches.size(); ++i) {
      ASSERT_TRUE((*recovered)
                      ->ApplyUpdates(
                          std::span<const UpdateRequest>(batches[i]))
                      .ok());
      ApplyToOracle(&oracle, batches[i]);
    }
    ExpectMatchesOracle(recovered->get(), oracle, "resumed after .pages crash");
  }
  EXPECT_GT(crashes, 0u);
}

// ---------------------------------------------------------------------------
// Seeded recovery fuzz (recovery_fuzz_nightly scales NEURODB_RECOVERY_OPS
// to 10000): a MixedWorkload update stream with random crash points, each
// followed by recovery and an oracle parity check.
// ---------------------------------------------------------------------------

TEST(RecoveryFuzzTest, SeededRandomCrashPointsRecoverLosslessly) {
  const size_t ops = static_cast<size_t>(EnvOr("NEURODB_RECOVERY_OPS", 300));
  uint64_t seed = EnvOr("NEURODB_RECOVERY_SEED", 0x5EED0001);
  // The nightly run rotates coverage by deriving the seed from the date.
  if (std::getenv("NEURODB_DIFF_SEED_FROM_DATE") != nullptr) {
    std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    seed = static_cast<uint64_t>(utc.tm_year + 1900) * 10000 +
           static_cast<uint64_t>(utc.tm_mon + 1) * 100 +
           static_cast<uint64_t>(utc.tm_mday);
  }

  TempDir dir;
  storage::FaultPlan plan;
  plan.path_filter = "wal.ndb";
  storage::FaultInjectingFileSystem fs(storage::DefaultFileSystem(), &plan);

  ElementVec initial = MakeGrid(64);
  auto db =
      std::make_unique<QueryEngine>(DurableOptions(dir.Sub("data"), &fs));
  ASSERT_TRUE(db->LoadElements(initial).ok());

  // Oracle live set, ascending by id, mutated in lockstep.
  ElementVec live = initial;
  std::sort(live.begin(), live.end(),
            [](const SpatialElement& a, const SpatialElement& b) {
              return a.id < b.id;
            });
  ElementId next_id = live.back().id + 1;
  auto find_live = [&](ElementId id) {
    auto it = std::lower_bound(
        live.begin(), live.end(), id,
        [](const SpatialElement& e, ElementId v) { return e.id < v; });
    return (it != live.end() && it->id == id) ? it : live.end();
  };

  neuro::MixedWorkloadOptions workload_options;
  workload_options.update_fraction = 0.8;
  workload_options.knn_fraction = 0.1;
  std::vector<neuro::WorkloadQuery> workload =
      neuro::MixedWorkload(db->domain(), initial, workload_options, ops, seed);

  std::mt19937_64 rng(seed ^ 0x9E3779B97F4A7C15ull);
  size_t acked_since_checkpoint = 0;
  size_t crashes = 0;
  size_t recoveries = 0;

  auto arm = [&] {
    plan.tear_bytes = (rng() % 3 == 0) ? 1 + rng() % 24 : 0;
    plan.Reset(static_cast<int64_t>(1 + rng() % 12));
  };
  arm();

  for (size_t i = 0; i < workload.size(); ++i) {
    const neuro::WorkloadQuery& query = workload[i];
    if (query.kind == neuro::QueryKind::kUpdate) {
      UpdateRequest request;
      if (query.update_op == neuro::WorkloadUpdateOp::kInsert) {
        request.kind = UpdateKind::kInsert;
        request.id = next_id++;
        request.bounds = query.box;
      } else {
        if (live.empty()) continue;
        size_t idx = static_cast<size_t>(query.update_rank % live.size());
        request.id = live[idx].id;
        request.kind = query.update_op == neuro::WorkloadUpdateOp::kErase
                           ? UpdateKind::kErase
                           : UpdateKind::kMove;
        request.bounds = query.box;
      }

      auto applied =
          db->ApplyUpdates(std::span<const UpdateRequest>(&request, 1));
      if (applied.ok()) {
        ++acked_since_checkpoint;
        if (request.kind == UpdateKind::kInsert) {
          live.emplace_back(request.id, request.bounds);
          std::sort(live.begin(), live.end(),
                    [](const SpatialElement& a, const SpatialElement& b) {
                      return a.id < b.id;
                    });
        } else if (request.kind == UpdateKind::kErase) {
          live.erase(find_live(request.id));
        } else {
          find_live(request.id)->bounds = request.bounds;
        }
        continue;
      }

      // The injected crash: recover and verify nothing acknowledged is
      // lost and nothing unacknowledged appears.
      ASSERT_TRUE(plan.Crashed())
          << "non-injected ApplyUpdates failure at op " << i << ": "
          << applied.status().ToString();
      ++crashes;
      db.reset();
      plan.Reset(-1);
      RecoveryReport report;
      auto recovered = QueryEngine::Open(dir.Sub("data"),
                                         DurableOptions("", &fs), &report);
      ASSERT_TRUE(recovered.ok())
          << "recovery " << recoveries << ": " << recovered.status().ToString();
      ASSERT_EQ(report.replayed_batches, acked_since_checkpoint)
          << "recovery " << recoveries;
      db = std::move(*recovered);
      ++recoveries;

      // Spot-check parity after every recovery.
      Aabb everything(Vec3(-100, -100, -100), Vec3(300, 300, 300));
      RangeRequest check;
      check.box = everything;
      check.backend = BackendChoice::kAll;
      geom::CollectingVisitor out;
      auto range = db->Execute(check, out);
      ASSERT_TRUE(range.ok());
      ASSERT_TRUE(range->results_match);
      std::vector<ElementId> ids = out.Ids();
      std::sort(ids.begin(), ids.end());
      ASSERT_EQ(ids, BruteForceRangeIds(live, everything))
          << "state diverged after recovery " << recoveries;

      // Occasionally checkpoint so the fuzz also crosses checkpoints.
      if (rng() % 4 == 0) {
        ASSERT_TRUE(db->Compact().ok());
        acked_since_checkpoint = 0;
      }
      arm();
    } else if (query.kind == neuro::QueryKind::kRange) {
      RangeRequest request;
      request.box = query.box;
      request.backend = BackendChoice::kAll;
      request.cache = CachePolicy::kWarm;
      geom::CollectingVisitor out;
      auto report = db->Execute(request, out);
      ASSERT_TRUE(report.ok());
      ASSERT_TRUE(report->results_match) << "op " << i;
      std::vector<ElementId> ids = out.Ids();
      std::sort(ids.begin(), ids.end());
      ASSERT_EQ(ids, BruteForceRangeIds(live, query.box)) << "op " << i;
    } else if (query.kind == neuro::QueryKind::kKnn) {
      KnnRequest request;
      request.point = query.point;
      request.k = query.k;
      request.backend = BackendChoice::kAll;
      auto report = db->Execute(request);
      ASSERT_TRUE(report.ok());
      ASSERT_TRUE(report->results_match) << "op " << i;
      ASSERT_EQ(report->hits,
                geom::BruteForceKnn(live, query.point, query.k))
          << "op " << i;
    }
  }
  // The fuzz must actually have crashed (otherwise the budgets were far
  // too generous to test anything).
  EXPECT_GT(crashes, 0u);
  EXPECT_EQ(crashes, recoveries);
}

}  // namespace
}  // namespace engine
}  // namespace neurodb
