#include "geom/segment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace neurodb {
namespace geom {
namespace {

Vec3 RandomPoint(Pcg32* rng, double lo = -10, double hi = 10) {
  return Vec3(static_cast<float>(rng->Uniform(lo, hi)),
              static_cast<float>(rng->Uniform(lo, hi)),
              static_cast<float>(rng->Uniform(lo, hi)));
}

TEST(SegmentTest, BasicProperties) {
  Segment s(Vec3(0, 0, 0), Vec3(4, 0, 0), 1.0f);
  EXPECT_DOUBLE_EQ(s.Length(), 4.0);
  EXPECT_EQ(s.Midpoint(), Vec3(2, 0, 0));
  EXPECT_EQ(s.Direction(), Vec3(1, 0, 0));
}

TEST(SegmentTest, BoundsIncludeRadius) {
  Segment s(Vec3(0, 0, 0), Vec3(4, 0, 0), 0.5f);
  Aabb b = s.Bounds();
  EXPECT_EQ(b.min, Vec3(-0.5f, -0.5f, -0.5f));
  EXPECT_EQ(b.max, Vec3(4.5f, 0.5f, 0.5f));
}

TEST(PointSegmentDistanceTest, KnownCases) {
  Vec3 a(0, 0, 0);
  Vec3 b(10, 0, 0);
  // Perpendicular foot inside the segment.
  EXPECT_DOUBLE_EQ(SquaredDistancePointSegment(Vec3(5, 3, 0), a, b), 9.0);
  // Beyond endpoint a.
  EXPECT_DOUBLE_EQ(SquaredDistancePointSegment(Vec3(-3, 4, 0), a, b), 25.0);
  // Beyond endpoint b.
  EXPECT_DOUBLE_EQ(SquaredDistancePointSegment(Vec3(13, 0, 4), a, b), 25.0);
  // On the segment.
  EXPECT_DOUBLE_EQ(SquaredDistancePointSegment(Vec3(7, 0, 0), a, b), 0.0);
}

TEST(PointSegmentDistanceTest, DegenerateSegmentIsPoint) {
  Vec3 p(1, 1, 1);
  EXPECT_DOUBLE_EQ(SquaredDistancePointSegment(p, Vec3(4, 5, 1), Vec3(4, 5, 1)),
                   25.0);
}

TEST(SegmentSegmentDistanceTest, ParallelSegments) {
  // Two parallel segments 3 apart.
  double d2 = SquaredDistanceSegmentSegment(Vec3(0, 0, 0), Vec3(10, 0, 0),
                                            Vec3(0, 3, 0), Vec3(10, 3, 0));
  EXPECT_DOUBLE_EQ(d2, 9.0);
}

TEST(SegmentSegmentDistanceTest, CrossingSegmentsTouch) {
  double d2 = SquaredDistanceSegmentSegment(Vec3(-1, 0, 0), Vec3(1, 0, 0),
                                            Vec3(0, -1, 0), Vec3(0, 1, 0));
  EXPECT_NEAR(d2, 0.0, 1e-12);
}

TEST(SegmentSegmentDistanceTest, SkewLines) {
  // Closest points are the segment midlines at z distance 2.
  double d2 = SquaredDistanceSegmentSegment(Vec3(-1, 0, 0), Vec3(1, 0, 0),
                                            Vec3(0, -1, 2), Vec3(0, 1, 2));
  EXPECT_NEAR(d2, 4.0, 1e-9);
}

TEST(SegmentSegmentDistanceTest, EndpointToEndpoint) {
  double d2 = SquaredDistanceSegmentSegment(Vec3(0, 0, 0), Vec3(1, 0, 0),
                                            Vec3(4, 0, 0), Vec3(6, 0, 0));
  EXPECT_DOUBLE_EQ(d2, 9.0);
}

TEST(SegmentSegmentDistanceTest, BothDegenerate) {
  double d2 = SquaredDistanceSegmentSegment(Vec3(0, 0, 0), Vec3(0, 0, 0),
                                            Vec3(0, 0, 5), Vec3(0, 0, 5));
  EXPECT_DOUBLE_EQ(d2, 25.0);
}

TEST(SegmentSegmentDistanceTest, OneDegenerate) {
  double d2 = SquaredDistanceSegmentSegment(Vec3(0, 0, 0), Vec3(0, 0, 0),
                                            Vec3(-5, 3, 0), Vec3(5, 3, 0));
  EXPECT_DOUBLE_EQ(d2, 9.0);
}

// Property: symmetric in the two segments, and never exceeds any
// endpoint-pair distance.
TEST(SegmentSegmentDistanceTest, PropertySymmetryAndUpperBound) {
  Pcg32 rng(11);
  for (int i = 0; i < 1000; ++i) {
    Vec3 p1 = RandomPoint(&rng);
    Vec3 q1 = RandomPoint(&rng);
    Vec3 p2 = RandomPoint(&rng);
    Vec3 q2 = RandomPoint(&rng);
    double d12 = SquaredDistanceSegmentSegment(p1, q1, p2, q2);
    double d21 = SquaredDistanceSegmentSegment(p2, q2, p1, q1);
    ASSERT_NEAR(d12, d21, 1e-6);
    double endpoint_min =
        std::min({SquaredDistance(p1, p2), SquaredDistance(p1, q2),
                  SquaredDistance(q1, p2), SquaredDistance(q1, q2)});
    // Closest points are reconstructed in float, so allow rounding at the
    // scale of the coordinates (~1e-6 relative).
    ASSERT_LE(d12, endpoint_min * (1.0 + 1e-5) + 1e-5);
    ASSERT_GE(d12, -1e-12);
  }
}

// Property: matches a dense sampling approximation of the true minimum.
TEST(SegmentSegmentDistanceTest, PropertyMatchesSampling) {
  Pcg32 rng(13);
  const int kSamples = 60;
  for (int trial = 0; trial < 100; ++trial) {
    Vec3 p1 = RandomPoint(&rng);
    Vec3 q1 = RandomPoint(&rng);
    Vec3 p2 = RandomPoint(&rng);
    Vec3 q2 = RandomPoint(&rng);
    double exact = std::sqrt(SquaredDistanceSegmentSegment(p1, q1, p2, q2));
    double sampled = 1e300;
    for (int i = 0; i <= kSamples; ++i) {
      Vec3 a = Lerp(p1, q1, static_cast<float>(i) / kSamples);
      for (int j = 0; j <= kSamples; ++j) {
        Vec3 b = Lerp(p2, q2, static_cast<float>(j) / kSamples);
        sampled = std::min(sampled, Distance(a, b));
      }
    }
    // Sampling only overestimates, by at most the sampling resolution.
    double resolution =
        (Distance(p1, q1) + Distance(p2, q2)) / kSamples;
    ASSERT_LE(exact, sampled + 1e-6);
    ASSERT_GE(exact, sampled - resolution);
  }
}

TEST(CapsuleDistanceTest, SubtractsRadiiAndClamps) {
  Segment s(Vec3(0, 0, 0), Vec3(10, 0, 0), 1.0f);
  Segment t(Vec3(0, 5, 0), Vec3(10, 5, 0), 1.5f);
  EXPECT_NEAR(CapsuleDistance(s, t), 2.5, 1e-9);
  // Overlapping capsules: zero, not negative.
  Segment u(Vec3(0, 1, 0), Vec3(10, 1, 0), 1.0f);
  EXPECT_DOUBLE_EQ(CapsuleDistance(s, u), 0.0);
}

TEST(WithinDistanceTest, ConsistentWithCapsuleDistance) {
  Pcg32 rng(17);
  for (int i = 0; i < 500; ++i) {
    Segment s(RandomPoint(&rng, -5, 5), RandomPoint(&rng, -5, 5), 0.3f);
    Segment t(RandomPoint(&rng, -5, 5), RandomPoint(&rng, -5, 5), 0.4f);
    float eps = static_cast<float>(rng.Uniform(0.0, 4.0));
    ASSERT_EQ(WithinDistance(s, t, eps), CapsuleDistance(s, t) <= eps)
        << "eps=" << eps;
  }
}

}  // namespace
}  // namespace geom
}  // namespace neurodb
