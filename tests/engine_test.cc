// Tests of the engine API: backend parity through the visitor protocol,
// RangeRequest{kAll} reproducing the legacy CompareRangeQuery panel, batch
// execution stats, incremental Session stepping and boundary validation.

#include "engine/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/toolkit.h"
#include "neuro/circuit_generator.h"
#include "neuro/workload.h"
#include "scout/session.h"

namespace neurodb {
namespace engine {
namespace {

using geom::Aabb;
using geom::ElementId;
using geom::Vec3;

neuro::Circuit MakeCircuit(uint32_t neurons, uint64_t seed) {
  neuro::CircuitParams params;
  params.num_neurons = neurons;
  params.seed = seed;
  auto circuit = neuro::CircuitGenerator(params).Generate();
  EXPECT_TRUE(circuit.ok());
  return std::move(circuit).value();
}

std::vector<ElementId> SortedIds(const CollectingVisitor& visitor) {
  std::vector<ElementId> ids = visitor.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    circuit_ = MakeCircuit(20, 2024);
    EngineOptions options;
    options.flat.elems_per_page = 64;
    options.rtree.max_entries = 64;
    options.rtree.min_entries = 26;
    db_ = std::make_unique<QueryEngine>(options);
    ASSERT_TRUE(db_->LoadCircuit(circuit_).ok());
  }

  neuro::Circuit circuit_;
  std::unique_ptr<QueryEngine> db_;
};

// --------------------------------------------------------------------------
// Backend parity (property test)
// --------------------------------------------------------------------------

TEST(BackendParityTest, FlatAndRTreeAgreeOnRandomWorkloads) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    // A random segment cloud — sparser and less connected than tissue, so
    // this also exercises FLAT's rescue pass.
    Aabb domain(Vec3(0, 0, 0), Vec3(300, 300, 300));
    neuro::SegmentDataset cloud =
        neuro::UniformSegments(4000, domain, 6.0f, 2.0f, 0.5f, seed);
    geom::ElementVec elements = cloud.Elements();

    FlatBackend flat;
    PagedRTreeBackend rtree;
    ASSERT_TRUE(flat.Build(elements).ok());
    ASSERT_TRUE(rtree.Build(elements).ok());

    auto queries = neuro::DataCenteredQueries(elements, 40.0f, 6, seed + 10);
    auto uniform = neuro::UniformQueries(domain, 25.0f, 6, seed + 20);
    queries.insert(queries.end(), uniform.begin(), uniform.end());

    for (const Aabb& box : queries) {
      storage::PoolSet flat_pools = flat.MakePoolSet(4096);
      storage::PoolSet rtree_pools = rtree.MakePoolSet(4096);
      CollectingVisitor flat_out;
      CollectingVisitor rtree_out;
      RangeStats flat_stats, rtree_stats;
      ASSERT_TRUE(
          flat.RangeQuery(box, &flat_pools, flat_out, &flat_stats).ok());
      ASSERT_TRUE(
          rtree.RangeQuery(box, &rtree_pools, rtree_out, &rtree_stats).ok());
      EXPECT_EQ(SortedIds(flat_out), SortedIds(rtree_out))
          << "seed " << seed << " box " << box;
      EXPECT_EQ(flat_stats.results, flat_out.size());
      EXPECT_EQ(rtree_stats.results, rtree_out.size());
    }
  }
}

TEST_F(EngineFixture, KAllCrossChecksBackends) {
  auto queries = neuro::DataCenteredQueries(
      circuit_.FlattenSegments().Elements(), 40.0f, 5, 3);
  for (const Aabb& box : queries) {
    RangeRequest request;
    request.box = box;
    request.backend = BackendChoice::kAll;
    auto report = db_->Execute(request);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->results_match);
    ASSERT_EQ(report->rows.size(), 4u);
    EXPECT_EQ(report->rows[0].method, "FLAT");
    EXPECT_EQ(report->rows[1].method, "R-Tree");
    EXPECT_EQ(report->rows[2].method, "Grid");
    EXPECT_EQ(report->rows[3].method, "Sharded");
    for (size_t i = 1; i < report->rows.size(); ++i) {
      EXPECT_EQ(report->rows[0].stats.results, report->rows[i].stats.results);
    }
    EXPECT_GT(report->results, 0u);
  }
}

// --------------------------------------------------------------------------
// Legacy panel reproduction
// --------------------------------------------------------------------------

TEST_F(EngineFixture, RangeRequestAllReproducesCompareRangeQuery) {
  // Reconstruct the pre-engine CompareRangeQuery by hand: each index run
  // against a fresh cold pool with its own clock, exactly as toolkit.cc
  // used to do — then check RangeRequest{kAll} reports the same numbers.
  Aabb box = Aabb::Cube(db_->domain().Center(), 40.0f);

  flat::FlatQueryStats flat_stats;
  std::vector<ElementId> flat_ids;
  {
    SimClock clock;
    storage::BufferPool pool(db_->flat_backend()->store(),
                             db_->options().pool_pages, &clock,
                             db_->options().cost);
    ASSERT_TRUE(
        db_->flat_index().RangeQuery(box, &pool, &flat_ids, &flat_stats).ok());
  }
  rtree::QueryStats rtree_stats;
  std::vector<ElementId> rtree_ids;
  {
    SimClock clock;
    storage::BufferPool pool(db_->rtree_backend()->store(),
                             db_->options().pool_pages, &clock,
                             db_->options().cost);
    ASSERT_TRUE(
        db_->paged_rtree().RangeQuery(box, &rtree_ids, &pool, &rtree_stats)
            .ok());
  }

  RangeRequest request;
  request.box = box;
  request.backend = BackendChoice::kAll;
  request.cache = CachePolicy::kCold;
  auto report = db_->Execute(request);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->results_match);
  EXPECT_EQ(report->rows[0].stats.pages_read, flat_stats.data_pages_read);
  EXPECT_EQ(report->rows[0].stats.results, flat_stats.results);
  EXPECT_EQ(report->rows[0].stats.elements_scanned,
            flat_stats.elements_scanned);
  EXPECT_EQ(report->rows[1].stats.pages_read, rtree_stats.nodes_visited);
  EXPECT_EQ(report->rows[1].stats.results, rtree_stats.results);
  EXPECT_EQ(report->rows[1].stats.nodes_per_level,
            rtree_stats.nodes_per_level);

  // The compatibility shim reports the same rows in the legacy shape.
  core::ToolkitOptions toolkit_options;
  toolkit_options.flat.elems_per_page = 64;
  toolkit_options.rtree.max_entries = 64;
  toolkit_options.rtree.min_entries = 26;
  core::NeuroToolkit tk(toolkit_options);
  ASSERT_TRUE(tk.LoadCircuit(circuit_).ok());
  auto legacy = tk.CompareRangeQuery(box);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->flat.pages_read, report->rows[0].stats.pages_read);
  EXPECT_EQ(legacy->flat.time_us, report->rows[0].stats.time_us);
  EXPECT_EQ(legacy->flat.results, report->rows[0].stats.results);
  EXPECT_EQ(legacy->rtree.pages_read, report->rows[1].stats.pages_read);
  EXPECT_EQ(legacy->rtree.time_us, report->rows[1].stats.time_us);
  EXPECT_EQ(legacy->rtree.nodes_per_level,
            report->rows[1].stats.nodes_per_level);
}

// --------------------------------------------------------------------------
// Streaming visitors
// --------------------------------------------------------------------------

TEST_F(EngineFixture, VisitorStreamsEachResultExactlyOnce) {
  RangeRequest request;
  request.box = Aabb::Cube(db_->domain().Center(), 40.0f);
  request.backend = BackendChoice::kAll;

  CollectingVisitor collected;
  auto report = db_->Execute(request, collected);
  ASSERT_TRUE(report.ok());
  // kAll runs two backends but the caller sees the primary's stream once.
  EXPECT_EQ(collected.size(), report->results);

  CountingVisitor counted;
  auto recount = db_->Execute(request, counted);
  ASSERT_TRUE(recount.ok());
  EXPECT_EQ(counted.count(), report->results);
}

// --------------------------------------------------------------------------
// Batch execution
// --------------------------------------------------------------------------

TEST_F(EngineFixture, ExecuteBatchAggregatesPerQueryStats) {
  auto boxes = neuro::DataCenteredQueries(
      circuit_.FlattenSegments().Elements(), 30.0f, 6, 11);
  std::vector<RangeRequest> batch;
  for (const Aabb& box : boxes) {
    RangeRequest request;
    request.box = box;
    request.backend = BackendChoice::kFlat;
    request.cache = CachePolicy::kWarm;
    batch.push_back(request);
  }
  auto result = db_->ExecuteBatch(batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->reports.size(), batch.size());
  EXPECT_EQ(result->aggregate.queries, batch.size());

  uint64_t pages = 0, results = 0;
  for (const RangeReport& report : result->reports) {
    ASSERT_EQ(report.rows.size(), 1u);
    pages += report.rows[0].stats.pages_read;
    results += report.results;
  }
  EXPECT_EQ(result->aggregate.pages_read, pages);
  EXPECT_EQ(result->aggregate.results, results);
  EXPECT_EQ(result->aggregate.pool_hits + result->aggregate.pool_misses,
            pages);
  EXPECT_GT(result->aggregate.time_us, 0u);
}

TEST_F(EngineFixture, ExecuteBatchSharesWarmPoolAcrossRequests) {
  Aabb box = Aabb::Cube(db_->domain().Center(), 40.0f);
  RangeRequest warm;
  warm.box = box;
  warm.backend = BackendChoice::kFlat;
  warm.cache = CachePolicy::kWarm;
  std::vector<RangeRequest> batch = {warm, warm};
  auto result = db_->ExecuteBatch(batch);
  ASSERT_TRUE(result.ok());
  // The second identical query is served from the shared warm pool.
  EXPECT_GT(result->aggregate.pool_hits, 0u);
  EXPECT_EQ(result->aggregate.pool_misses,
            result->reports[0].rows[0].stats.pages_read);

  // Cold requests drop the shared pool before running.
  RangeRequest cold = warm;
  cold.cache = CachePolicy::kCold;
  std::vector<RangeRequest> cold_batch = {warm, cold};
  auto cold_result = db_->ExecuteBatch(cold_batch);
  ASSERT_TRUE(cold_result.ok());
  EXPECT_EQ(cold_result->aggregate.pool_misses,
            2 * cold_result->reports[0].rows[0].stats.pages_read);
}

TEST_F(EngineFixture, MixedBatchAggregatesAcrossRangeAndKnn) {
  auto boxes = neuro::DataCenteredQueries(
      circuit_.FlattenSegments().Elements(), 30.0f, 4, 13);
  std::vector<QueryRequest> batch;
  for (size_t i = 0; i < boxes.size(); ++i) {
    RangeRequest range;
    range.box = boxes[i];
    range.backend = BackendChoice::kFlat;
    range.cache = CachePolicy::kWarm;
    batch.emplace_back(range);

    KnnRequest knn;
    knn.point = boxes[i].Center();
    knn.k = 5 + i;
    knn.backend = BackendChoice::kRTree;
    knn.cache = CachePolicy::kWarm;
    batch.emplace_back(knn);
  }

  auto result = db_->ExecuteBatch(std::span<const QueryRequest>(batch));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->reports.size(), batch.size());
  EXPECT_EQ(result->aggregate.queries, batch.size());

  uint64_t pages = 0, results = 0;
  for (size_t i = 0; i < result->reports.size(); ++i) {
    if (const auto* range = std::get_if<RangeReport>(&result->reports[i])) {
      ASSERT_EQ(range->rows.size(), 1u);
      EXPECT_EQ(range->rows[0].method, "FLAT");
      pages += range->rows[0].stats.pages_read;
      results += range->results;
    } else {
      const KnnReport& knn = std::get<KnnReport>(result->reports[i]);
      ASSERT_EQ(knn.rows.size(), 1u);
      EXPECT_EQ(knn.rows[0].method, "R-Tree");
      EXPECT_EQ(knn.hits.size(), 5 + i / 2);
      pages += knn.rows[0].stats.pages_read;
      results += knn.hits.size();
    }
  }
  EXPECT_EQ(result->aggregate.pages_read, pages);
  EXPECT_EQ(result->aggregate.results, results);
  EXPECT_EQ(result->aggregate.pool_hits + result->aggregate.pool_misses,
            pages);
  EXPECT_GT(result->aggregate.time_us, 0u);

  // The request order alternates Range, Knn — reports must mirror it.
  for (size_t i = 0; i < result->reports.size(); ++i) {
    EXPECT_EQ(result->reports[i].index(), i % 2);
  }
}

TEST_F(EngineFixture, RangeOnlyBatchMatchesMixedBatch) {
  auto boxes = neuro::DataCenteredQueries(
      circuit_.FlattenSegments().Elements(), 30.0f, 5, 29);
  std::vector<RangeRequest> plain;
  std::vector<QueryRequest> mixed;
  for (const Aabb& box : boxes) {
    RangeRequest request;
    request.box = box;
    request.backend = BackendChoice::kFlat;
    request.cache = CachePolicy::kWarm;
    plain.push_back(request);
    mixed.emplace_back(request);
  }
  auto plain_result = db_->ExecuteBatch(plain);
  auto mixed_result = db_->ExecuteBatch(std::span<const QueryRequest>(mixed));
  ASSERT_TRUE(plain_result.ok());
  ASSERT_TRUE(mixed_result.ok());
  EXPECT_EQ(plain_result->aggregate.pages_read,
            mixed_result->aggregate.pages_read);
  EXPECT_EQ(plain_result->aggregate.results, mixed_result->aggregate.results);
  EXPECT_EQ(plain_result->aggregate.time_us, mixed_result->aggregate.time_us);
}

// --------------------------------------------------------------------------
// Sessions
// --------------------------------------------------------------------------

TEST_F(EngineFixture, SessionStepMatchesWholePathReplay) {
  auto path = neuro::FollowBranchPath(circuit_, 1, 12.0f, 1);
  ASSERT_TRUE(path.ok());
  auto queries = neuro::PathQueries(*path, 30.0f);
  ASSERT_GT(queries.size(), 2u);

  for (auto method : scout::AllPrefetchMethods()) {
    auto session = db_->OpenSession(method);
    ASSERT_TRUE(session.ok()) << scout::PrefetchMethodName(method);
    for (const Aabb& box : queries) {
      ASSERT_TRUE(session->Step(box).ok());
    }
    EXPECT_EQ(session->NumSteps(), queries.size());
    scout::SessionResult stepped = session->Summary();

    WalkthroughRequest request;
    request.queries = queries;
    request.method = method;
    auto replayed = db_->Execute(request);
    ASSERT_TRUE(replayed.ok());
    EXPECT_EQ(stepped.total_stall_us, replayed->total_stall_us);
    EXPECT_EQ(stepped.total_time_us, replayed->total_time_us);
    EXPECT_EQ(stepped.pages_missed, replayed->pages_missed);
    EXPECT_EQ(stepped.prefetch_issued, replayed->prefetch_issued);
    EXPECT_EQ(stepped.prefetch_used, replayed->prefetch_used);

    // And both match the original scout replay loop over the same index.
    scout::WalkthroughSession legacy(&db_->flat_index(),
                                     db_->flat_backend()->store(),
                                     &db_->resolver(),
                                     db_->options().session);
    auto legacy_run = legacy.Run(queries, method);
    ASSERT_TRUE(legacy_run.ok());
    EXPECT_EQ(stepped.total_stall_us, legacy_run->total_stall_us);
    EXPECT_EQ(stepped.pages_missed, legacy_run->pages_missed);
  }
}

TEST_F(EngineFixture, SessionStepStreamsResults) {
  auto session = db_->OpenSession(scout::PrefetchMethod::kNone);
  ASSERT_TRUE(session.ok());
  CollectingVisitor visitor;
  auto step = session->Step(Aabb::Cube(db_->domain().Center(), 40.0f), visitor);
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step->results, visitor.size());
  EXPECT_GT(step->results, 0u);
  EXPECT_GT(step->stall_us, 0u);
}

TEST_F(EngineFixture, SessionStepKnnMatchesEngineExecute) {
  auto path = neuro::FollowBranchPath(circuit_, 1, 12.0f, 1);
  ASSERT_TRUE(path.ok());
  ASSERT_GT(path->waypoints.size(), 2u);

  for (auto method :
       {scout::PrefetchMethod::kNone, scout::PrefetchMethod::kScout}) {
    auto session = db_->OpenSession(method);
    ASSERT_TRUE(session.ok());
    size_t steps = 0;
    for (const auto& waypoint : path->waypoints) {
      std::vector<geom::KnnHit> stepped;
      auto step = session->StepKnn(waypoint, 8, &stepped);
      ASSERT_TRUE(step.ok()) << step.status().ToString();
      EXPECT_EQ(step->results, stepped.size());
      ++steps;

      // Whole-path replay of the same query through the engine: the session
      // pool state differs (it stays warm across steps) but the answer must
      // be identical hit-for-hit.
      KnnRequest request;
      request.point = waypoint;
      request.k = 8;
      request.backend = BackendChoice::kFlat;
      auto replayed = db_->Execute(request);
      ASSERT_TRUE(replayed.ok());
      EXPECT_EQ(stepped, replayed->hits);
    }
    EXPECT_EQ(session->NumSteps(), steps);
    // kNN steps feed the Figure 6 statistics like range steps do.
    scout::SessionResult summary = session->Summary();
    EXPECT_EQ(summary.steps.size(), steps);
    EXPECT_GT(summary.pages_missed + summary.pages_hit, 0u);
  }
}

TEST_F(EngineFixture, SessionInterleavesRangeAndKnnSteps) {
  auto session = db_->OpenSession(scout::PrefetchMethod::kScout);
  ASSERT_TRUE(session.ok());
  Aabb box = Aabb::Cube(db_->domain().Center(), 30.0f);
  ASSERT_TRUE(session->Step(box).ok());
  std::vector<geom::KnnHit> hits;
  ASSERT_TRUE(session->StepKnn(db_->domain().Center(), 5, &hits).ok());
  ASSERT_TRUE(session->Step(box).ok());
  EXPECT_EQ(session->NumSteps(), 3u);
  EXPECT_EQ(hits.size(), 5u);
}

TEST_F(EngineFixture, ScoutSessionBeatsNoPrefetch) {
  auto path = neuro::FollowBranchPath(circuit_, 1, 12.0f, 1);
  ASSERT_TRUE(path.ok());
  auto queries = neuro::PathQueries(*path, 30.0f);

  uint64_t stalls[2] = {0, 0};
  scout::PrefetchMethod methods[2] = {scout::PrefetchMethod::kNone,
                                      scout::PrefetchMethod::kScout};
  for (int i = 0; i < 2; ++i) {
    auto session = db_->OpenSession(methods[i]);
    ASSERT_TRUE(session.ok());
    for (const Aabb& box : queries) ASSERT_TRUE(session->Step(box).ok());
    stalls[i] = session->Summary().total_stall_us;
  }
  EXPECT_LT(stalls[1], stalls[0]);
}

// --------------------------------------------------------------------------
// Boundary validation
// --------------------------------------------------------------------------

TEST(EngineValidationTest, RejectsZeroPoolPages) {
  EngineOptions options;
  options.pool_pages = 0;
  QueryEngine db(options);
  EXPECT_TRUE(db.LoadCircuit(MakeCircuit(5, 1)).IsInvalidArgument());

  EngineOptions session_options;
  session_options.session.pool_pages = 0;
  QueryEngine db2(session_options);
  EXPECT_TRUE(db2.LoadCircuit(MakeCircuit(5, 1)).IsInvalidArgument());

  EngineOptions thread_options;
  thread_options.num_threads = 0;
  QueryEngine db3(thread_options);
  EXPECT_TRUE(db3.LoadCircuit(MakeCircuit(5, 1)).IsInvalidArgument());

  EngineOptions shard_options;
  shard_options.sharded.num_shards = 0;
  QueryEngine db4(shard_options);
  EXPECT_TRUE(db4.LoadCircuit(MakeCircuit(5, 1)).IsInvalidArgument());
}

TEST(EngineValidationTest, RejectsEmptyCircuitAndDoubleLoad) {
  QueryEngine db;
  EXPECT_TRUE(db.LoadCircuit(neuro::Circuit()).IsInvalidArgument());
  ASSERT_TRUE(db.LoadCircuit(MakeCircuit(5, 1)).ok());
  EXPECT_TRUE(db.LoadCircuit(MakeCircuit(5, 1)).IsAlreadyExists());
}

TEST(EngineValidationTest, RequestsBeforeLoadFail) {
  QueryEngine db;
  RangeRequest range;
  range.box = Aabb::Cube(Vec3(0, 0, 0), 5);
  EXPECT_TRUE(db.Execute(range).status().IsInvalidArgument());
  EXPECT_TRUE(db.ExecuteBatch(std::span<const RangeRequest>())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db.ExecuteBatch(std::span<const QueryRequest>())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db.Execute(JoinRequest()).status().IsInvalidArgument());
  EXPECT_TRUE(db.Execute(WalkthroughRequest()).status().IsInvalidArgument());
  EXPECT_TRUE(
      db.OpenSession(scout::PrefetchMethod::kNone).status().IsInvalidArgument());
}

TEST_F(EngineFixture, RejectsInvalidBoxes) {
  RangeRequest bad;
  bad.box = Aabb(Vec3(10, 0, 0), Vec3(0, 10, 10));  // lo > hi on x
  EXPECT_TRUE(db_->Execute(bad).status().IsInvalidArgument());

  std::vector<RangeRequest> batch = {bad};
  EXPECT_TRUE(db_->ExecuteBatch(batch).status().IsInvalidArgument());

  auto session = db_->OpenSession(scout::PrefetchMethod::kNone);
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session->Step(bad.box).status().IsInvalidArgument());

  WalkthroughRequest walk;
  walk.queries = {bad.box};
  EXPECT_TRUE(db_->Execute(walk).status().IsInvalidArgument());
}

TEST_F(EngineFixture, HugeBoxesAreValidAndReturnEverything) {
  // Regression: the grid's cell arithmetic must clamp, not overflow, on
  // boxes vastly larger than the domain.
  RangeRequest request;
  request.box = Aabb::Cube(Vec3(0, 0, 0), 1e30f);
  request.backend = BackendChoice::kAll;
  auto report = db_->Execute(request);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->results_match);
  EXPECT_EQ(report->results, db_->NumSegments());
}

TEST_F(EngineFixture, RejectsNegativeJoinEpsilon) {
  JoinRequest join;
  join.options.epsilon = -1.0f;
  EXPECT_TRUE(db_->Execute(join).status().IsInvalidArgument());

  join.options.epsilon = 3.0f;
  auto result = db_->Execute(join);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->pairs.size(), 0u);
}

TEST(EngineValidationTest, RegisterBackendRules) {
  QueryEngine db;
  EXPECT_TRUE(db.RegisterBackend(nullptr).IsInvalidArgument());
  // Duplicate name.
  EXPECT_TRUE(db.RegisterBackend(std::make_unique<FlatBackend>())
                  .IsAlreadyExists());
  ASSERT_TRUE(db.LoadCircuit(MakeCircuit(5, 1)).ok());
  // Too late once loaded.
  EXPECT_TRUE(db.RegisterBackend(std::make_unique<PagedRTreeBackend>())
                  .IsInvalidArgument());
}

TEST_F(EngineFixture, BackendStatsReportFootprint) {
  ASSERT_EQ(db_->NumBackends(), 4u);
  for (size_t i = 0; i < db_->NumBackends(); ++i) {
    BackendStats stats = db_->backend(i).Stats();
    EXPECT_GT(stats.index_pages, 0u) << db_->backend(i).name();
    EXPECT_GT(stats.metadata_bytes, 0u) << db_->backend(i).name();
  }
}

}  // namespace
}  // namespace engine
}  // namespace neurodb
