// Tests of the engine API: backend parity through the visitor protocol,
// RangeRequest{kAll} reproducing the legacy CompareRangeQuery panel, batch
// execution stats, incremental Session stepping and boundary validation.

#include "engine/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/toolkit.h"
#include "neuro/circuit_generator.h"
#include "neuro/workload.h"
#include "scout/session.h"

namespace neurodb {
namespace engine {
namespace {

using geom::Aabb;
using geom::ElementId;
using geom::Vec3;

neuro::Circuit MakeCircuit(uint32_t neurons, uint64_t seed) {
  neuro::CircuitParams params;
  params.num_neurons = neurons;
  params.seed = seed;
  auto circuit = neuro::CircuitGenerator(params).Generate();
  EXPECT_TRUE(circuit.ok());
  return std::move(circuit).value();
}

std::vector<ElementId> SortedIds(const CollectingVisitor& visitor) {
  std::vector<ElementId> ids = visitor.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    circuit_ = MakeCircuit(20, 2024);
    EngineOptions options;
    options.flat.elems_per_page = 64;
    options.rtree.max_entries = 64;
    options.rtree.min_entries = 26;
    db_ = std::make_unique<QueryEngine>(options);
    ASSERT_TRUE(db_->LoadCircuit(circuit_).ok());
  }

  neuro::Circuit circuit_;
  std::unique_ptr<QueryEngine> db_;
};

// --------------------------------------------------------------------------
// Backend parity (property test)
// --------------------------------------------------------------------------

TEST(BackendParityTest, FlatAndRTreeAgreeOnRandomWorkloads) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    // A random segment cloud — sparser and less connected than tissue, so
    // this also exercises FLAT's rescue pass.
    Aabb domain(Vec3(0, 0, 0), Vec3(300, 300, 300));
    neuro::SegmentDataset cloud =
        neuro::UniformSegments(4000, domain, 6.0f, 2.0f, 0.5f, seed);
    geom::ElementVec elements = cloud.Elements();

    FlatBackend flat;
    PagedRTreeBackend rtree;
    ASSERT_TRUE(flat.Build(elements).ok());
    ASSERT_TRUE(rtree.Build(elements).ok());

    auto queries = neuro::DataCenteredQueries(elements, 40.0f, 6, seed + 10);
    auto uniform = neuro::UniformQueries(domain, 25.0f, 6, seed + 20);
    queries.insert(queries.end(), uniform.begin(), uniform.end());

    for (const Aabb& box : queries) {
      storage::PoolSet flat_pools = flat.MakePoolSet(4096);
      storage::PoolSet rtree_pools = rtree.MakePoolSet(4096);
      CollectingVisitor flat_out;
      CollectingVisitor rtree_out;
      RangeStats flat_stats, rtree_stats;
      ASSERT_TRUE(
          flat.RangeQuery(box, &flat_pools, flat_out, &flat_stats).ok());
      ASSERT_TRUE(
          rtree.RangeQuery(box, &rtree_pools, rtree_out, &rtree_stats).ok());
      EXPECT_EQ(SortedIds(flat_out), SortedIds(rtree_out))
          << "seed " << seed << " box " << box;
      EXPECT_EQ(flat_stats.results, flat_out.size());
      EXPECT_EQ(rtree_stats.results, rtree_out.size());
    }
  }
}

TEST_F(EngineFixture, KAllCrossChecksBackends) {
  auto queries = neuro::DataCenteredQueries(
      circuit_.FlattenSegments().Elements(), 40.0f, 5, 3);
  for (const Aabb& box : queries) {
    RangeRequest request;
    request.box = box;
    request.backend = BackendChoice::kAll;
    auto report = db_->Execute(request);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->results_match);
    ASSERT_EQ(report->rows.size(), 4u);
    EXPECT_EQ(report->rows[0].method, "FLAT");
    EXPECT_EQ(report->rows[1].method, "R-Tree");
    EXPECT_EQ(report->rows[2].method, "Grid");
    EXPECT_EQ(report->rows[3].method, "Sharded");
    for (size_t i = 1; i < report->rows.size(); ++i) {
      EXPECT_EQ(report->rows[0].stats.results, report->rows[i].stats.results);
    }
    EXPECT_GT(report->results, 0u);
  }
}

// --------------------------------------------------------------------------
// Legacy panel reproduction
// --------------------------------------------------------------------------

TEST_F(EngineFixture, RangeRequestAllReproducesCompareRangeQuery) {
  // Reconstruct the pre-engine CompareRangeQuery by hand: each index run
  // against a fresh cold pool with its own clock, exactly as toolkit.cc
  // used to do — then check RangeRequest{kAll} reports the same numbers.
  Aabb box = Aabb::Cube(db_->domain().Center(), 40.0f);

  flat::FlatQueryStats flat_stats;
  std::vector<ElementId> flat_ids;
  {
    SimClock clock;
    storage::BufferPool pool(db_->flat_backend()->store(),
                             db_->options().pool_pages, &clock,
                             db_->options().cost);
    ASSERT_TRUE(
        db_->flat_index().RangeQuery(box, &pool, &flat_ids, &flat_stats).ok());
  }
  rtree::QueryStats rtree_stats;
  std::vector<ElementId> rtree_ids;
  {
    SimClock clock;
    storage::BufferPool pool(db_->rtree_backend()->store(),
                             db_->options().pool_pages, &clock,
                             db_->options().cost);
    ASSERT_TRUE(
        db_->paged_rtree().RangeQuery(box, &rtree_ids, &pool, &rtree_stats)
            .ok());
  }

  RangeRequest request;
  request.box = box;
  request.backend = BackendChoice::kAll;
  request.cache = CachePolicy::kCold;
  auto report = db_->Execute(request);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->results_match);
  EXPECT_EQ(report->rows[0].stats.pages_read, flat_stats.data_pages_read);
  EXPECT_EQ(report->rows[0].stats.results, flat_stats.results);
  EXPECT_EQ(report->rows[0].stats.elements_scanned,
            flat_stats.elements_scanned);
  EXPECT_EQ(report->rows[1].stats.pages_read, rtree_stats.nodes_visited);
  EXPECT_EQ(report->rows[1].stats.results, rtree_stats.results);
  EXPECT_EQ(report->rows[1].stats.nodes_per_level,
            rtree_stats.nodes_per_level);

  // The compatibility shim reports the same rows in the legacy shape.
  core::ToolkitOptions toolkit_options;
  toolkit_options.flat.elems_per_page = 64;
  toolkit_options.rtree.max_entries = 64;
  toolkit_options.rtree.min_entries = 26;
  core::NeuroToolkit tk(toolkit_options);
  ASSERT_TRUE(tk.LoadCircuit(circuit_).ok());
  auto legacy = tk.CompareRangeQuery(box);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->flat.pages_read, report->rows[0].stats.pages_read);
  EXPECT_EQ(legacy->flat.time_us, report->rows[0].stats.time_us);
  EXPECT_EQ(legacy->flat.results, report->rows[0].stats.results);
  EXPECT_EQ(legacy->rtree.pages_read, report->rows[1].stats.pages_read);
  EXPECT_EQ(legacy->rtree.time_us, report->rows[1].stats.time_us);
  EXPECT_EQ(legacy->rtree.nodes_per_level,
            report->rows[1].stats.nodes_per_level);
}

// --------------------------------------------------------------------------
// Streaming visitors
// --------------------------------------------------------------------------

TEST_F(EngineFixture, VisitorStreamsEachResultExactlyOnce) {
  RangeRequest request;
  request.box = Aabb::Cube(db_->domain().Center(), 40.0f);
  request.backend = BackendChoice::kAll;

  CollectingVisitor collected;
  auto report = db_->Execute(request, collected);
  ASSERT_TRUE(report.ok());
  // kAll runs two backends but the caller sees the primary's stream once.
  EXPECT_EQ(collected.size(), report->results);

  CountingVisitor counted;
  auto recount = db_->Execute(request, counted);
  ASSERT_TRUE(recount.ok());
  EXPECT_EQ(counted.count(), report->results);
}

// --------------------------------------------------------------------------
// Batch execution
// --------------------------------------------------------------------------

TEST_F(EngineFixture, ExecuteBatchAggregatesPerQueryStats) {
  auto boxes = neuro::DataCenteredQueries(
      circuit_.FlattenSegments().Elements(), 30.0f, 6, 11);
  std::vector<RangeRequest> batch;
  for (const Aabb& box : boxes) {
    RangeRequest request;
    request.box = box;
    request.backend = BackendChoice::kFlat;
    request.cache = CachePolicy::kWarm;
    batch.push_back(request);
  }
  auto result = db_->ExecuteBatch(batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->reports.size(), batch.size());
  EXPECT_EQ(result->aggregate.queries, batch.size());

  uint64_t pages = 0, results = 0;
  for (const RangeReport& report : result->reports) {
    ASSERT_EQ(report.rows.size(), 1u);
    pages += report.rows[0].stats.pages_read;
    results += report.results;
  }
  EXPECT_EQ(result->aggregate.pages_read, pages);
  EXPECT_EQ(result->aggregate.results, results);
  EXPECT_EQ(result->aggregate.pool_hits + result->aggregate.pool_misses,
            pages);
  EXPECT_GT(result->aggregate.time_us, 0u);
}

TEST_F(EngineFixture, ExecuteBatchSharesWarmPoolAcrossRequests) {
  Aabb box = Aabb::Cube(db_->domain().Center(), 40.0f);
  RangeRequest warm;
  warm.box = box;
  warm.backend = BackendChoice::kFlat;
  warm.cache = CachePolicy::kWarm;
  std::vector<RangeRequest> batch = {warm, warm};
  auto result = db_->ExecuteBatch(batch);
  ASSERT_TRUE(result.ok());
  // The second identical query is served from the shared warm pool.
  EXPECT_GT(result->aggregate.pool_hits, 0u);
  EXPECT_EQ(result->aggregate.pool_misses,
            result->reports[0].rows[0].stats.pages_read);

  // Warm pools are the engine's persistent PoolManager sets: a second
  // batch on the same engine starts where the first left off, so the warm
  // request misses nothing at all.
  auto again = db_->ExecuteBatch(batch);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->aggregate.pool_misses, 0u);
  EXPECT_EQ(again->aggregate.pool_hits,
            2 * again->reports[0].rows[0].stats.pages_read);

  // Cold requests drop the shared pool before running: the leading warm
  // request rides the surviving pool for free, the cold one evicts it and
  // pays its pages in full.
  RangeRequest cold = warm;
  cold.cache = CachePolicy::kCold;
  std::vector<RangeRequest> cold_batch = {warm, cold};
  auto cold_result = db_->ExecuteBatch(cold_batch);
  ASSERT_TRUE(cold_result.ok());
  EXPECT_EQ(cold_result->aggregate.pool_misses,
            cold_result->reports[1].rows[0].stats.pages_read);

  // Cold evicts *before* executing, so the cold request itself leaves a
  // warm pool behind — the next warm batch rides it.
  auto after_cold = db_->ExecuteBatch(batch);
  ASSERT_TRUE(after_cold.ok());
  EXPECT_EQ(after_cold->aggregate.pool_misses, 0u);
}

TEST_F(EngineFixture, MixedBatchAggregatesAcrossRangeAndKnn) {
  auto boxes = neuro::DataCenteredQueries(
      circuit_.FlattenSegments().Elements(), 30.0f, 4, 13);
  std::vector<QueryRequest> batch;
  for (size_t i = 0; i < boxes.size(); ++i) {
    RangeRequest range;
    range.box = boxes[i];
    range.backend = BackendChoice::kFlat;
    range.cache = CachePolicy::kWarm;
    batch.emplace_back(range);

    KnnRequest knn;
    knn.point = boxes[i].Center();
    knn.k = 5 + i;
    knn.backend = BackendChoice::kRTree;
    knn.cache = CachePolicy::kWarm;
    batch.emplace_back(knn);
  }

  auto result = db_->ExecuteBatch(std::span<const QueryRequest>(batch));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->reports.size(), batch.size());
  EXPECT_EQ(result->aggregate.queries, batch.size());

  uint64_t pages = 0, results = 0;
  for (size_t i = 0; i < result->reports.size(); ++i) {
    if (const auto* range = std::get_if<RangeReport>(&result->reports[i])) {
      ASSERT_EQ(range->rows.size(), 1u);
      EXPECT_EQ(range->rows[0].method, "FLAT");
      pages += range->rows[0].stats.pages_read;
      results += range->results;
    } else {
      const KnnReport& knn = std::get<KnnReport>(result->reports[i]);
      ASSERT_EQ(knn.rows.size(), 1u);
      EXPECT_EQ(knn.rows[0].method, "R-Tree");
      EXPECT_EQ(knn.hits.size(), 5 + i / 2);
      pages += knn.rows[0].stats.pages_read;
      results += knn.hits.size();
    }
  }
  EXPECT_EQ(result->aggregate.pages_read, pages);
  EXPECT_EQ(result->aggregate.results, results);
  EXPECT_EQ(result->aggregate.pool_hits + result->aggregate.pool_misses,
            pages);
  EXPECT_GT(result->aggregate.time_us, 0u);

  // The request order alternates Range, Knn — reports must mirror it.
  for (size_t i = 0; i < result->reports.size(); ++i) {
    EXPECT_EQ(result->reports[i].index(), i % 2);
  }
}

TEST_F(EngineFixture, RangeOnlyBatchMatchesMixedBatch) {
  auto boxes = neuro::DataCenteredQueries(
      circuit_.FlattenSegments().Elements(), 30.0f, 5, 29);
  std::vector<RangeRequest> plain;
  std::vector<QueryRequest> mixed;
  for (const Aabb& box : boxes) {
    RangeRequest request;
    request.box = box;
    request.backend = BackendChoice::kFlat;
    request.cache = CachePolicy::kWarm;
    plain.push_back(request);
    mixed.emplace_back(request);
  }
  // Warm batches run over the engine's persistent pools, so a fair
  // comparison needs two engines in the same (fresh) state.
  QueryEngine mixed_db(db_->options());
  ASSERT_TRUE(mixed_db.LoadCircuit(circuit_).ok());
  auto plain_result = db_->ExecuteBatch(plain);
  auto mixed_result =
      mixed_db.ExecuteBatch(std::span<const QueryRequest>(mixed));
  ASSERT_TRUE(plain_result.ok());
  ASSERT_TRUE(mixed_result.ok());
  EXPECT_EQ(plain_result->aggregate.pages_read,
            mixed_result->aggregate.pages_read);
  EXPECT_EQ(plain_result->aggregate.results, mixed_result->aggregate.results);
  EXPECT_EQ(plain_result->aggregate.time_us, mixed_result->aggregate.time_us);
}

// --------------------------------------------------------------------------
// Result cache: delta range requests (CachePolicy::kDelta)
// --------------------------------------------------------------------------

TEST_F(EngineFixture, DeltaRequestMatchesColdExecutionExactly) {
  Aabb box = Aabb::Cube(db_->domain().Center(), 50.0f);
  // A shifted box overlapping the first one by half along x.
  Aabb shifted = box;
  shifted.min.x += 25.0f;
  shifted.max.x += 25.0f;

  auto cold_ids = [&](const Aabb& b) {
    RangeRequest request;
    request.box = b;
    request.backend = BackendChoice::kFlat;
    request.cache = CachePolicy::kCold;
    CollectingVisitor out;
    auto report = db_->Execute(request, out);
    EXPECT_TRUE(report.ok());
    return SortedIds(out);
  };
  auto delta_ids = [&](const Aabb& b, RangeReport* report_out) {
    RangeRequest request;
    request.box = b;
    request.backend = BackendChoice::kFlat;
    request.cache = CachePolicy::kDelta;
    CollectingVisitor out;
    auto report = db_->Execute(request, out);
    EXPECT_TRUE(report.ok());
    if (report.ok() && report_out != nullptr) *report_out = *report;
    return SortedIds(out);
  };

  RangeReport first, second, third;
  EXPECT_EQ(delta_ids(box, &first), cold_ids(box));
  // First delta request: nothing cached yet.
  EXPECT_EQ(first.cache_hit_fraction, 0.0);

  EXPECT_EQ(delta_ids(shifted, &second), cold_ids(shifted));
  // Second request half-covers the first box.
  EXPECT_GT(second.cache_hit_fraction, 0.0);
  EXPECT_LT(second.delta_volume_fraction, 1.0);

  // Repeating the request is a full cache hit: no pages at all.
  EXPECT_EQ(delta_ids(shifted, &third), cold_ids(shifted));
  EXPECT_EQ(third.cache_hit_fraction, 1.0);
  EXPECT_EQ(third.rows[0].stats.pages_read, 0u);

  EXPECT_GT(db_->result_cache()->stats().hits, 0u);
}

TEST_F(EngineFixture, DeltaBatchReportsCacheFractionsAndSavesPages) {
  // A sliding window: consecutive boxes overlap by ~2/3.
  std::vector<Aabb> boxes;
  Aabb window = Aabb::Cube(db_->domain().Center(), 45.0f);
  for (int i = 0; i < 6; ++i) {
    boxes.push_back(window);
    window.min.x += 15.0f;
    window.max.x += 15.0f;
  }

  auto run = [&](CachePolicy policy) {
    // A fresh engine per run: warm/delta state is persistent.
    QueryEngine db(db_->options());
    EXPECT_TRUE(db.LoadCircuit(circuit_).ok());
    std::vector<RangeRequest> batch;
    for (const Aabb& box : boxes) {
      RangeRequest request;
      request.box = box;
      request.backend = BackendChoice::kFlat;
      request.cache = policy;
      batch.push_back(request);
    }
    auto result = db.ExecuteBatch(batch);
    EXPECT_TRUE(result.ok());
    return *result;
  };

  BatchResult warm = run(CachePolicy::kWarm);
  BatchResult delta = run(CachePolicy::kDelta);

  // Same answers, request by request.
  ASSERT_EQ(warm.reports.size(), delta.reports.size());
  for (size_t i = 0; i < warm.reports.size(); ++i) {
    EXPECT_EQ(warm.reports[i].results, delta.reports[i].results)
        << "request " << i;
  }

  // The delta batch answered overlap from the cache: fewer pages touched
  // than even the warm pool path, and the aggregate says why.
  EXPECT_EQ(delta.aggregate.delta_requests, boxes.size());
  EXPECT_GT(delta.aggregate.cache_hit_fraction, 0.3);
  EXPECT_LT(delta.aggregate.delta_volume_fraction, 0.7);
  EXPECT_LT(delta.aggregate.pages_read, warm.aggregate.pages_read);

  // Warm batches never consult the cache.
  EXPECT_EQ(warm.aggregate.delta_requests, 0u);
}

TEST_F(EngineFixture, DeltaWithKAllFallsBackToPlainWarmParity) {
  Aabb box = Aabb::Cube(db_->domain().Center(), 40.0f);
  RangeRequest request;
  request.box = box;
  request.backend = BackendChoice::kAll;
  request.cache = CachePolicy::kDelta;
  auto first = db_->Execute(request);
  auto second = db_->Execute(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // kAll keeps its full cross-check: every backend really executed.
  EXPECT_EQ(first->rows.size(), db_->NumBackends());
  EXPECT_TRUE(first->results_match);
  EXPECT_EQ(first->results, second->results);
  EXPECT_EQ(first->cache_hit_fraction, 0.0);
}

TEST_F(EngineFixture, PoolManagerExposesWarmState) {
  storage::PoolManager* manager = db_->pool_manager();
  ASSERT_NE(manager, nullptr);
  // One named set per registered backend, created at LoadCircuit.
  EXPECT_EQ(manager->NumSets(), db_->NumBackends());
  EXPECT_NE(manager->Find("FLAT"), nullptr);
  EXPECT_NE(manager->Find("Sharded"), nullptr);
  EXPECT_EQ(manager->Find("NoSuchBackend"), nullptr);
  // The sharded backend's set carries one pool per shard.
  EXPECT_EQ(manager->Find("Sharded")->size(),
            db_->sharded_backend()->NumShards());

  RangeRequest request;
  request.box = Aabb::Cube(db_->domain().Center(), 40.0f);
  request.backend = BackendChoice::kFlat;
  request.cache = CachePolicy::kWarm;
  ASSERT_TRUE(db_->Execute(request).ok());
  storage::PoolManagerStats stats = manager->Stats();
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.pages_cached, 0u);

  ASSERT_TRUE(db_->Execute(request).ok());
  stats = manager->Stats();
  EXPECT_GT(stats.hits, 0u);

  // Evicting the FLAT set empties it and counts the dropped pages.
  uint64_t evictions_before = stats.evictions;
  EXPECT_TRUE(manager->Evict("FLAT"));
  stats = manager->Stats();
  EXPECT_GT(stats.evictions, evictions_before);
  EXPECT_EQ(manager->Find("FLAT")->PagesCached(), 0u);
}

// --------------------------------------------------------------------------
// Sessions
// --------------------------------------------------------------------------

TEST_F(EngineFixture, SessionStepMatchesWholePathReplay) {
  auto path = neuro::FollowBranchPath(circuit_, 1, 12.0f, 1);
  ASSERT_TRUE(path.ok());
  auto queries = neuro::PathQueries(*path, 30.0f);
  ASSERT_GT(queries.size(), 2u);

  for (auto method : scout::AllPrefetchMethods()) {
    auto session = db_->OpenSession(method);
    ASSERT_TRUE(session.ok()) << scout::PrefetchMethodName(method);
    for (const Aabb& box : queries) {
      ASSERT_TRUE(session->Step(box).ok());
    }
    EXPECT_EQ(session->NumSteps(), queries.size());
    scout::SessionResult stepped = session->Summary();

    WalkthroughRequest request;
    request.queries = queries;
    request.method = method;
    auto replayed = db_->Execute(request);
    ASSERT_TRUE(replayed.ok());
    EXPECT_EQ(stepped.total_stall_us, replayed->total_stall_us);
    EXPECT_EQ(stepped.total_time_us, replayed->total_time_us);
    EXPECT_EQ(stepped.pages_missed, replayed->pages_missed);
    EXPECT_EQ(stepped.prefetch_issued, replayed->prefetch_issued);
    EXPECT_EQ(stepped.prefetch_used, replayed->prefetch_used);

    // And both match the original scout replay loop over the same index.
    scout::WalkthroughSession legacy(&db_->flat_index(),
                                     db_->flat_backend()->store(),
                                     &db_->resolver(),
                                     db_->options().session);
    auto legacy_run = legacy.Run(queries, method);
    ASSERT_TRUE(legacy_run.ok());
    EXPECT_EQ(stepped.total_stall_us, legacy_run->total_stall_us);
    EXPECT_EQ(stepped.pages_missed, legacy_run->pages_missed);
  }
}

TEST_F(EngineFixture, SessionStepStreamsResults) {
  auto session = db_->OpenSession(scout::PrefetchMethod::kNone);
  ASSERT_TRUE(session.ok());
  CollectingVisitor visitor;
  auto step = session->Step(Aabb::Cube(db_->domain().Center(), 40.0f), visitor);
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step->results, visitor.size());
  EXPECT_GT(step->results, 0u);
  EXPECT_GT(step->stall_us, 0u);
}

TEST_F(EngineFixture, SessionStepKnnMatchesEngineExecute) {
  auto path = neuro::FollowBranchPath(circuit_, 1, 12.0f, 1);
  ASSERT_TRUE(path.ok());
  ASSERT_GT(path->waypoints.size(), 2u);

  for (auto method :
       {scout::PrefetchMethod::kNone, scout::PrefetchMethod::kScout}) {
    auto session = db_->OpenSession(method);
    ASSERT_TRUE(session.ok());
    size_t steps = 0;
    for (const auto& waypoint : path->waypoints) {
      std::vector<geom::KnnHit> stepped;
      auto step = session->StepKnn(waypoint, 8, &stepped);
      ASSERT_TRUE(step.ok()) << step.status().ToString();
      EXPECT_EQ(step->results, stepped.size());
      ++steps;

      // Whole-path replay of the same query through the engine: the session
      // pool state differs (it stays warm across steps) but the answer must
      // be identical hit-for-hit.
      KnnRequest request;
      request.point = waypoint;
      request.k = 8;
      request.backend = BackendChoice::kFlat;
      auto replayed = db_->Execute(request);
      ASSERT_TRUE(replayed.ok());
      EXPECT_EQ(stepped, replayed->hits);
    }
    EXPECT_EQ(session->NumSteps(), steps);
    // kNN steps feed the Figure 6 statistics like range steps do.
    scout::SessionResult summary = session->Summary();
    EXPECT_EQ(summary.steps.size(), steps);
    EXPECT_GT(summary.pages_missed + summary.pages_hit, 0u);
  }
}

TEST_F(EngineFixture, SessionInterleavesRangeAndKnnSteps) {
  auto session = db_->OpenSession(scout::PrefetchMethod::kScout);
  ASSERT_TRUE(session.ok());
  Aabb box = Aabb::Cube(db_->domain().Center(), 30.0f);
  ASSERT_TRUE(session->Step(box).ok());
  std::vector<geom::KnnHit> hits;
  ASSERT_TRUE(session->StepKnn(db_->domain().Center(), 5, &hits).ok());
  ASSERT_TRUE(session->Step(box).ok());
  EXPECT_EQ(session->NumSteps(), 3u);
  EXPECT_EQ(hits.size(), 5u);
}

TEST_F(EngineFixture, ScoutSessionBeatsNoPrefetch) {
  auto path = neuro::FollowBranchPath(circuit_, 1, 12.0f, 1);
  ASSERT_TRUE(path.ok());
  auto queries = neuro::PathQueries(*path, 30.0f);

  uint64_t stalls[2] = {0, 0};
  scout::PrefetchMethod methods[2] = {scout::PrefetchMethod::kNone,
                                      scout::PrefetchMethod::kScout};
  for (int i = 0; i < 2; ++i) {
    auto session = db_->OpenSession(methods[i]);
    ASSERT_TRUE(session.ok());
    for (const Aabb& box : queries) ASSERT_TRUE(session->Step(box).ok());
    stalls[i] = session->Summary().total_stall_us;
  }
  EXPECT_LT(stalls[1], stalls[0]);
}

// --------------------------------------------------------------------------
// Cached sessions (result cache + delta steps)
// --------------------------------------------------------------------------

TEST_F(EngineFixture, CachedSessionStepsMatchColdSessionExactly) {
  auto path = neuro::FollowBranchPath(circuit_, 1, 12.0f, 1);
  ASSERT_TRUE(path.ok());
  auto queries = neuro::PathQueries(*path, 30.0f);
  ASSERT_GT(queries.size(), 2u);

  for (auto method :
       {scout::PrefetchMethod::kNone, scout::PrefetchMethod::kExtrapolation,
        scout::PrefetchMethod::kScout}) {
    auto cold = db_->OpenSession(method, CachePolicy::kCold);
    auto cached = db_->OpenSession(method, CachePolicy::kWarm);
    ASSERT_TRUE(cold.ok());
    ASSERT_TRUE(cached.ok());
    ASSERT_NE(cached->result_cache(), nullptr);
    EXPECT_EQ(cold->result_cache(), nullptr);

    bool any_coverage = false;
    for (const Aabb& box : queries) {
      CollectingVisitor cold_out, cached_out;
      auto cold_step = cold->Step(box, cold_out);
      auto cached_step = cached->Step(box, cached_out);
      ASSERT_TRUE(cold_step.ok());
      ASSERT_TRUE(cached_step.ok());
      // Byte-identical answers, step by step.
      EXPECT_EQ(SortedIds(cached_out), SortedIds(cold_out));
      EXPECT_EQ(cached_step->results, cold_step->results);
      // With an order-insensitive prefetcher both sessions warm the pool
      // identically, so the cached step's residual queries demand a
      // subset of the cold step's pages — misses can only shrink. (Pool
      // *hit* counts may grow: residual crawls re-touch boundary pages.
      // SCOUT sees the ids in a different order in a cached session, so
      // its prefetch choices may differ either way.)
      if (method != scout::PrefetchMethod::kScout) {
        EXPECT_LE(cached_step->pages_missed, cold_step->pages_missed);
      }
      if (cached_step->cache_hit_fraction > 0.0) any_coverage = true;
    }
    // Consecutive path boxes overlap, so the cache must have covered
    // something after the first step.
    EXPECT_TRUE(any_coverage) << scout::PrefetchMethodName(method);
  }
}

TEST_F(EngineFixture, CachedSessionRepeatedBoxIsServedEntirelyFromCache) {
  auto session = db_->OpenSession(scout::PrefetchMethod::kNone,
                                  CachePolicy::kDelta);
  ASSERT_TRUE(session.ok());
  Aabb box = Aabb::Cube(db_->domain().Center(), 40.0f);

  auto first = session->Step(box);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->cache_hit_fraction, 0.0);
  EXPECT_GT(first->results, 0u);

  auto second = session->Step(box);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->cache_hit_fraction, 1.0);
  EXPECT_EQ(second->delta_volume_fraction, 0.0);
  EXPECT_EQ(second->results, first->results);
  // Full coverage → no residual queries → no demand I/O, no stall.
  EXPECT_EQ(second->pages_missed, 0u);
  EXPECT_EQ(second->stall_us, 0u);
}

TEST_F(EngineFixture, ColdOpenSessionOverridesEngineWideCacheDefault) {
  // An engine configured with session caching on by default must still
  // hand out genuinely cold sessions for kCold — the harness's cold
  // baselines depend on the policy argument governing both ways.
  EngineOptions options = db_->options();
  options.session.cache_results = true;
  QueryEngine db(options);
  ASSERT_TRUE(db.LoadCircuit(circuit_).ok());

  auto cold = db.OpenSession(scout::PrefetchMethod::kNone, CachePolicy::kCold);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->result_cache(), nullptr);
  auto warm = db.OpenSession(scout::PrefetchMethod::kNone, CachePolicy::kWarm);
  ASSERT_TRUE(warm.ok());
  EXPECT_NE(warm->result_cache(), nullptr);

  // result_cache_boxes == 0 is the engine-wide kill switch: even kWarm
  // sessions come out uncached.
  EngineOptions disabled_options = db_->options();
  disabled_options.result_cache_boxes = 0;
  QueryEngine disabled(disabled_options);
  ASSERT_TRUE(disabled.LoadCircuit(circuit_).ok());
  auto disabled_warm =
      disabled.OpenSession(scout::PrefetchMethod::kNone, CachePolicy::kWarm);
  ASSERT_TRUE(disabled_warm.ok());
  EXPECT_EQ(disabled_warm->result_cache(), nullptr);
}

TEST_F(EngineFixture, CachedWalkthroughRequestMatchesColdReplay) {
  auto path = neuro::FollowBranchPath(circuit_, 2, 10.0f, 3);
  ASSERT_TRUE(path.ok());
  auto queries = neuro::PathQueries(*path, 30.0f);

  // Extrapolation is order-insensitive, so the cached replay's prefetch
  // behaviour matches the cold one page for page and the stall comparison
  // below is exact, not probabilistic.
  WalkthroughRequest cold;
  cold.queries = queries;
  cold.method = scout::PrefetchMethod::kExtrapolation;
  WalkthroughRequest cached = cold;
  cached.cache = CachePolicy::kWarm;

  auto cold_run = db_->Execute(cold);
  auto cached_run = db_->Execute(cached);
  ASSERT_TRUE(cold_run.ok());
  ASSERT_TRUE(cached_run.ok());
  ASSERT_EQ(cached_run->steps.size(), cold_run->steps.size());
  for (size_t i = 0; i < cold_run->steps.size(); ++i) {
    EXPECT_EQ(cached_run->steps[i].results, cold_run->steps[i].results)
        << "step " << i;
  }
  // The cached replay demands at most as many pages and reports coverage.
  EXPECT_LE(cached_run->pages_missed, cold_run->pages_missed);
  EXPECT_GT(cached_run->MeanCacheHitFraction(), 0.0);
  EXPECT_EQ(cold_run->MeanCacheHitFraction(), 0.0);
}

// --------------------------------------------------------------------------
// Boundary validation
// --------------------------------------------------------------------------

TEST(EngineValidationTest, RejectsZeroPoolPages) {
  EngineOptions options;
  options.pool_pages = 0;
  QueryEngine db(options);
  EXPECT_TRUE(db.LoadCircuit(MakeCircuit(5, 1)).IsInvalidArgument());

  EngineOptions session_options;
  session_options.session.pool_pages = 0;
  QueryEngine db2(session_options);
  EXPECT_TRUE(db2.LoadCircuit(MakeCircuit(5, 1)).IsInvalidArgument());

  EngineOptions thread_options;
  thread_options.num_threads = 0;
  QueryEngine db3(thread_options);
  EXPECT_TRUE(db3.LoadCircuit(MakeCircuit(5, 1)).IsInvalidArgument());

  EngineOptions shard_options;
  shard_options.sharded.num_shards = 0;
  QueryEngine db4(shard_options);
  EXPECT_TRUE(db4.LoadCircuit(MakeCircuit(5, 1)).IsInvalidArgument());
}

TEST(EngineValidationTest, RejectsEmptyCircuitAndDoubleLoad) {
  QueryEngine db;
  EXPECT_TRUE(db.LoadCircuit(neuro::Circuit()).IsInvalidArgument());
  ASSERT_TRUE(db.LoadCircuit(MakeCircuit(5, 1)).ok());
  EXPECT_TRUE(db.LoadCircuit(MakeCircuit(5, 1)).IsAlreadyExists());
}

TEST(EngineValidationTest, RequestsBeforeLoadFail) {
  QueryEngine db;
  RangeRequest range;
  range.box = Aabb::Cube(Vec3(0, 0, 0), 5);
  EXPECT_TRUE(db.Execute(range).status().IsInvalidArgument());
  EXPECT_TRUE(db.ExecuteBatch(std::span<const RangeRequest>())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db.ExecuteBatch(std::span<const QueryRequest>())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db.Execute(JoinRequest()).status().IsInvalidArgument());
  EXPECT_TRUE(db.Execute(WalkthroughRequest()).status().IsInvalidArgument());
  EXPECT_TRUE(
      db.OpenSession(scout::PrefetchMethod::kNone).status().IsInvalidArgument());
}

TEST_F(EngineFixture, RejectsInvalidBoxes) {
  RangeRequest bad;
  bad.box = Aabb(Vec3(10, 0, 0), Vec3(0, 10, 10));  // lo > hi on x
  EXPECT_TRUE(db_->Execute(bad).status().IsInvalidArgument());

  std::vector<RangeRequest> batch = {bad};
  EXPECT_TRUE(db_->ExecuteBatch(batch).status().IsInvalidArgument());

  auto session = db_->OpenSession(scout::PrefetchMethod::kNone);
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session->Step(bad.box).status().IsInvalidArgument());

  WalkthroughRequest walk;
  walk.queries = {bad.box};
  EXPECT_TRUE(db_->Execute(walk).status().IsInvalidArgument());
}

TEST_F(EngineFixture, HugeBoxesAreValidAndReturnEverything) {
  // Regression: the grid's cell arithmetic must clamp, not overflow, on
  // boxes vastly larger than the domain.
  RangeRequest request;
  request.box = Aabb::Cube(Vec3(0, 0, 0), 1e30f);
  request.backend = BackendChoice::kAll;
  auto report = db_->Execute(request);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->results_match);
  EXPECT_EQ(report->results, db_->NumSegments());
}

TEST_F(EngineFixture, RejectsNegativeJoinEpsilon) {
  JoinRequest join;
  join.options.epsilon = -1.0f;
  EXPECT_TRUE(db_->Execute(join).status().IsInvalidArgument());

  join.options.epsilon = 3.0f;
  auto result = db_->Execute(join);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->pairs.size(), 0u);
}

TEST(EngineValidationTest, RegisterBackendRules) {
  QueryEngine db;
  EXPECT_TRUE(db.RegisterBackend(nullptr).IsInvalidArgument());
  // Duplicate name.
  EXPECT_TRUE(db.RegisterBackend(std::make_unique<FlatBackend>())
                  .IsAlreadyExists());
  ASSERT_TRUE(db.LoadCircuit(MakeCircuit(5, 1)).ok());
  // Too late once loaded.
  EXPECT_TRUE(db.RegisterBackend(std::make_unique<PagedRTreeBackend>())
                  .IsInvalidArgument());
}

TEST_F(EngineFixture, BackendStatsReportFootprint) {
  ASSERT_EQ(db_->NumBackends(), 4u);
  for (size_t i = 0; i < db_->NumBackends(); ++i) {
    BackendStats stats = db_->backend(i).Stats();
    EXPECT_GT(stats.index_pages, 0u) << db_->backend(i).name();
    EXPECT_GT(stats.metadata_bytes, 0u) << db_->backend(i).name();
  }
}

}  // namespace
}  // namespace engine
}  // namespace neurodb
