// BackendAdvisor: profile validation, the cold structural-model path, and
// the switch to measured pages/query ranking once every candidate backend
// has executed queries.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "engine/query_engine.h"
#include "neuro/workload.h"

namespace neurodb {
namespace engine {
namespace {

using geom::Aabb;
using geom::Vec3;

TEST(WorkloadProfileTest, ValidateRejectsBadProfiles) {
  WorkloadProfile ok;
  EXPECT_TRUE(ok.Validate().ok());

  WorkloadProfile negative;
  negative.range_weight = -1.0;
  EXPECT_FALSE(negative.Validate().ok());

  WorkloadProfile zero;
  zero.range_weight = 0.0;
  zero.knn_weight = 0.0;
  EXPECT_FALSE(zero.Validate().ok());

  WorkloadProfile side;
  side.range_side = 0.0f;
  EXPECT_FALSE(side.Validate().ok());

  WorkloadProfile k;
  k.knn_k = 0;
  EXPECT_FALSE(k.Validate().ok());

  WorkloadProfile anchored;
  anchored.data_centered = 1.5;
  EXPECT_FALSE(anchored.Validate().ok());
}

class AdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineOptions options;
    options.flat.elems_per_page = 64;
    options.grid.elems_per_page = 64;
    db_ = std::make_unique<QueryEngine>(options);
    const Aabb domain(Vec3(0, 0, 0), Vec3(200, 200, 200));
    elements_ = neuro::ClusteredElements(6000, domain, /*clusters=*/16,
                                         /*sigma=*/5.0f, /*elem_side=*/1.5f,
                                         /*seed=*/41);
    ASSERT_TRUE(db_->LoadElements(elements_).ok());
  }

  std::unique_ptr<QueryEngine> db_;
  geom::ElementVec elements_;
};

// Fresh engine, no queries executed: the decision must come from the
// structural model alone, with every candidate scored and no measured
// counters available.
TEST_F(AdvisorTest, ColdEngineUsesModel) {
  WorkloadProfile profile;
  profile.data_centered = 1.0;
  auto decision = db_->Advise(profile);
  ASSERT_TRUE(decision.ok());
  EXPECT_FALSE(decision->from_measurements);
  EXPECT_GE(decision->estimates.size(), 4u);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& est : decision->estimates) {
    EXPECT_LT(est.measured_pages_per_query, 0.0) << est.backend;
    EXPECT_GT(est.cost, 0.0) << est.backend;
    best = std::min(best, est.cost);
  }
  // The pick is the modeled argmin.
  for (const auto& est : decision->estimates) {
    if (est.backend == decision->backend_name) {
      EXPECT_DOUBLE_EQ(est.cost, best);
    }
  }
  EXPECT_NE(decision->rationale.find("modeled"), std::string::npos)
      << decision->rationale;
}

// After every backend has executed queries, the ranking switches to the
// live pages/query counters and the pick is the measured argmin.
TEST_F(AdvisorTest, MeasuredCountersOverrideModel) {
  auto anchors = neuro::DataCenteredQueries(elements_, 1.0f, 8, 17);
  for (auto choice : {BackendChoice::kFlat, BackendChoice::kRTree,
                      BackendChoice::kGrid, BackendChoice::kSharded}) {
    for (const auto& anchor : anchors) {
      KnnRequest request;
      request.point = anchor.Center();
      request.k = 8;
      request.backend = choice;
      request.cache = CachePolicy::kCold;
      ASSERT_TRUE(db_->Execute(request).ok());
    }
  }

  WorkloadProfile profile;
  profile.range_weight = 0.0;
  profile.knn_weight = 1.0;
  profile.knn_k = 8;
  profile.data_centered = 1.0;
  auto decision = db_->Advise(profile);
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->from_measurements);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& est : decision->estimates) {
    EXPECT_GE(est.measured_pages_per_query, 0.0) << est.backend;
    best = std::min(best, est.measured_pages_per_query);
  }
  for (const auto& est : decision->estimates) {
    if (est.backend == decision->backend_name) {
      EXPECT_DOUBLE_EQ(est.measured_pages_per_query, best);
    }
  }
  EXPECT_NE(decision->rationale.find("measured"), std::string::npos)
      << decision->rationale;
}

// A partially-warm engine (some backends queried, some not) must stay on
// the model: ranking mixed measured/modeled numbers would compare
// incomparable scales.
TEST_F(AdvisorTest, PartialCountersStayOnModel) {
  auto anchors = neuro::DataCenteredQueries(elements_, 1.0f, 4, 19);
  for (const auto& anchor : anchors) {
    KnnRequest request;
    request.point = anchor.Center();
    request.k = 8;
    request.backend = BackendChoice::kRTree;
    request.cache = CachePolicy::kCold;
    ASSERT_TRUE(db_->Execute(request).ok());
  }
  WorkloadProfile profile;
  profile.data_centered = 1.0;
  auto decision = db_->Advise(profile);
  ASSERT_TRUE(decision.ok());
  EXPECT_FALSE(decision->from_measurements);
}

}  // namespace
}  // namespace engine
}  // namespace neurodb
