// NeuroDB — differential-testing harness.
//
// Replays a seeded randomized workload of Range / Knn / Join queries
// through the engine and checks, per query, that (a) every registered
// backend agrees (BackendChoice::kAll parity — FLAT crawl vs R-tree
// traversal vs grid scan), and (b) the agreed answer matches a brute-force
// ground truth computed directly over the element list, so three backends
// sharing one bug cannot pass. Joins are cross-checked across independent
// join algorithms (TOUCH vs plane sweep) the same way.
//
// The harness stops at the FIRST divergence and reports a minimal
// reproduction: every workload query carries its own sub-seed, and
// neuro::MixedWorkloadQuery(domain, elements, options, sub_seed)
// regenerates exactly the failing query — no need to replay the whole
// workload to debug it.

#ifndef NEURODB_TESTS_DIFF_HARNESS_H_
#define NEURODB_TESTS_DIFF_HARNESS_H_

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "geom/knn.h"
#include "neuro/workload.h"

namespace neurodb {
namespace testing {

/// Result of one differential run.
struct DiffOutcome {
  bool diverged = false;
  size_t queries_run = 0;
  size_t ranges = 0;
  size_t knns = 0;
  size_t joins = 0;
  /// Valid when diverged: the failing query's index in the workload and the
  /// sub-seed that regenerates it via neuro::MixedWorkloadQuery.
  size_t failing_index = 0;
  uint64_t failing_seed = 0;
  std::string detail;

  std::string Summary() const {
    std::ostringstream os;
    if (!diverged) {
      os << "no divergence in " << queries_run << " queries (" << ranges
         << " range, " << knns << " knn, " << joins << " join)";
    } else {
      os << "DIVERGENCE at query " << failing_index
         << " — minimal repro: MixedWorkloadQuery(..., sub_seed="
         << failing_seed << ") — " << detail;
    }
    return os.str();
  }
};

/// Brute-force range count over the raw element list.
inline uint64_t BruteForceRangeCount(const geom::ElementVec& elements,
                                     const geom::Aabb& box) {
  uint64_t count = 0;
  for (const auto& e : elements) {
    if (e.bounds.Intersects(box)) ++count;
  }
  return count;
}

/// Run `n` seeded queries from `options` through `db` (which must have a
/// circuit loaded); `elements` is the loaded dataset, used for both
/// workload anchoring and ground truth. Stops at the first divergence.
inline DiffOutcome RunDifferential(engine::QueryEngine* db,
                                   const geom::ElementVec& elements,
                                   const neuro::MixedWorkloadOptions& options,
                                   size_t n, uint64_t seed) {
  DiffOutcome outcome;
  std::vector<neuro::WorkloadQuery> workload =
      neuro::MixedWorkload(db->domain(), elements, options, n, seed);

  auto fail = [&](size_t i, const std::string& detail) {
    outcome.diverged = true;
    outcome.failing_index = i;
    outcome.failing_seed = workload[i].sub_seed;
    outcome.detail = detail;
  };

  for (size_t i = 0; i < workload.size(); ++i) {
    const neuro::WorkloadQuery& query = workload[i];
    ++outcome.queries_run;

    if (query.kind == neuro::QueryKind::kRange) {
      ++outcome.ranges;
      engine::RangeRequest request;
      request.box = query.box;
      request.backend = engine::BackendChoice::kAll;
      request.cache = engine::CachePolicy::kWarm;
      auto report = db->Execute(request);
      if (!report.ok()) {
        fail(i, "range request failed: " + report.status().ToString());
        break;
      }
      if (!report->results_match) {
        std::ostringstream os;
        os << "range backends disagree on box " << query.box << ":";
        for (const auto& row : report->rows) {
          os << ' ' << row.method << '=' << row.stats.results;
        }
        fail(i, os.str());
        break;
      }
      uint64_t truth = BruteForceRangeCount(elements, query.box);
      if (report->results != truth) {
        std::ostringstream os;
        os << "all backends agree on " << report->results
           << " results but brute force finds " << truth << " for box "
           << query.box;
        fail(i, os.str());
        break;
      }
    } else if (query.kind == neuro::QueryKind::kKnn) {
      ++outcome.knns;
      engine::KnnRequest request;
      request.point = query.point;
      request.k = query.k;
      request.backend = engine::BackendChoice::kAll;
      request.cache = engine::CachePolicy::kWarm;
      auto report = db->Execute(request);
      if (!report.ok()) {
        fail(i, "knn request failed: " + report.status().ToString());
        break;
      }
      if (!report->results_match) {
        std::ostringstream os;
        os << "knn backends disagree for k=" << query.k << " at ("
           << query.point.x << ", " << query.point.y << ", " << query.point.z
           << ")";
        fail(i, os.str());
        break;
      }
      std::vector<geom::KnnHit> truth =
          geom::BruteForceKnn(elements, query.point, query.k);
      if (report->hits != truth) {
        std::ostringstream os;
        os << "all backends agree but brute-force kNN differs (k=" << query.k
           << ", got " << report->hits.size() << " hits, want "
           << truth.size() << ")";
        fail(i, os.str());
        break;
      }
    } else {
      ++outcome.joins;
      engine::JoinRequest touch;
      touch.method = touch::JoinMethod::kTouch;
      touch.options.epsilon = query.epsilon;
      engine::JoinRequest sweep;
      sweep.method = touch::JoinMethod::kPlaneSweep;
      sweep.options.epsilon = query.epsilon;
      auto touch_result = db->Execute(touch);
      auto sweep_result = db->Execute(sweep);
      if (!touch_result.ok() || !sweep_result.ok()) {
        fail(i, "join failed: " +
                    (touch_result.ok() ? sweep_result.status()
                                       : touch_result.status())
                        .ToString());
        break;
      }
      std::vector<touch::JoinPair> a = touch_result->pairs;
      std::vector<touch::JoinPair> b = sweep_result->pairs;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      if (a != b) {
        std::ostringstream os;
        os << "TOUCH and plane sweep disagree at epsilon=" << query.epsilon
           << " (" << a.size() << " vs " << b.size() << " pairs)";
        fail(i, os.str());
        break;
      }
    }
  }
  return outcome;
}

}  // namespace testing
}  // namespace neurodb

#endif  // NEURODB_TESTS_DIFF_HARNESS_H_
