// NeuroDB — differential-testing harness.
//
// Replays a seeded randomized workload of Range / Knn / Join / Walkthrough
// queries through the engine and checks, per query, that (a) every
// registered backend agrees (BackendChoice::kAll parity — FLAT crawl vs
// R-tree traversal vs grid scan vs sharded merge), and (b) the agreed
// answer matches a brute-force ground truth computed directly over the
// element list, so backends sharing one bug cannot pass. Joins are
// cross-checked across independent join algorithms (TOUCH vs plane sweep)
// the same way; walkthroughs replay a random-walk path one Session::Step at
// a time and cross-check every step against both the engine's kAll range
// path and brute force.
//
// RunBatchParity drives the concurrent ExecuteBatch path: the same workload
// as a batch of cold requests through a serial engine and a multi-threaded
// engine, demanding byte-identical per-query reports in request order.
//
// Every harness stops at the FIRST divergence and reports a minimal
// reproduction: every workload query carries its own sub-seed, and
// neuro::MixedWorkloadQuery(domain, elements, options, sub_seed)
// regenerates exactly the failing query — no need to replay the whole
// workload to debug it.

#ifndef NEURODB_TESTS_DIFF_HARNESS_H_
#define NEURODB_TESTS_DIFF_HARNESS_H_

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/query_engine.h"
#include "geom/knn.h"
#include "neuro/workload.h"

namespace neurodb {
namespace testing {

/// Env-tunable harness knob (the nightly ctest registrations scale query
/// counts and seeds through the environment).
inline uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

/// Result of one differential run.
struct DiffOutcome {
  bool diverged = false;
  size_t queries_run = 0;
  size_t ranges = 0;
  size_t knns = 0;
  size_t joins = 0;
  size_t walkthroughs = 0;
  size_t updates = 0;
  /// Valid when diverged: the failing query's index in the workload and the
  /// sub-seed that regenerates it via neuro::MixedWorkloadQuery.
  size_t failing_index = 0;
  uint64_t failing_seed = 0;
  std::string detail;
  /// Shrink-reducer output (when it ran on a divergence): the smallest
  /// element subset found that still reproduces, and its size.
  bool shrunk = false;
  size_t minimized_elements = 0;
  geom::ElementVec minimized;

  std::string Summary() const {
    std::ostringstream os;
    if (!diverged) {
      os << "no divergence in " << queries_run << " queries (" << ranges
         << " range, " << knns << " knn, " << joins << " join, "
         << walkthroughs << " walkthrough, " << updates << " update)";
    } else {
      os << "DIVERGENCE at query " << failing_index
         << " — minimal repro: MixedWorkloadQuery(..., sub_seed="
         << failing_seed << ") — " << detail;
      if (shrunk) {
        os << " — circuit shrunk to " << minimized_elements << " elements";
      }
    }
    return os.str();
  }
};

/// ddmin-style circuit reducer: repeatedly drop contiguous chunks of the
/// element list (halves, then quarters, ...) while `still_diverges` keeps
/// returning true, bounded by `max_attempts` predicate evaluations (each
/// evaluation typically rebuilds a whole engine). Returns the smallest
/// reproducing subset found — minimizing the *circuit*, where the query
/// sub-seed alone cannot (a traversal bug usually needs a specific element
/// constellation, not a specific query).
inline geom::ElementVec MinimizeElements(
    geom::ElementVec elements,
    const std::function<bool(const geom::ElementVec&)>& still_diverges,
    size_t max_attempts = 48) {
  size_t attempts = 0;
  size_t chunk = std::max<size_t>(1, elements.size() / 2);
  for (;;) {
    bool removed_any = false;
    for (size_t start = 0;
         start < elements.size() && attempts < max_attempts;) {
      size_t end = std::min(elements.size(), start + chunk);
      geom::ElementVec candidate;
      candidate.reserve(elements.size() - (end - start));
      candidate.insert(candidate.end(), elements.begin(),
                       elements.begin() + static_cast<ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       elements.begin() + static_cast<ptrdiff_t>(end),
                       elements.end());
      ++attempts;
      if (!candidate.empty() && still_diverges(candidate)) {
        elements = std::move(candidate);
        removed_any = true;
        // The next chunk shifted into `start` — retry the same offset.
      } else {
        start += chunk;
      }
    }
    if (attempts >= max_attempts) break;
    if (removed_any) continue;  // another pass at this granularity
    if (chunk == 1) break;      // a full singleton pass removed nothing
    chunk = std::max<size_t>(1, chunk / 2);
  }
  return elements;
}

/// Brute-force range count over the raw element list.
inline uint64_t BruteForceRangeCount(const geom::ElementVec& elements,
                                     const geom::Aabb& box) {
  uint64_t count = 0;
  for (const auto& e : elements) {
    if (e.bounds.Intersects(box)) ++count;
  }
  return count;
}

/// Sorted ids of every element intersecting `box` (walkthrough ground
/// truth, where counts alone would let compensating errors slip through).
inline std::vector<geom::ElementId> BruteForceRangeIds(
    const geom::ElementVec& elements, const geom::Aabb& box) {
  std::vector<geom::ElementId> ids;
  for (const auto& e : elements) {
    if (e.bounds.Intersects(box)) ids.push_back(e.id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Replay one walkthrough path step by step: every step's streamed result
/// set must match a *cached* delta session's answer, the engine's kAll
/// range answer and brute force. Walkthrough paths use steps shorter than
/// the box side, so consecutive boxes deliberately overlap — the case the
/// result cache answers by delta decomposition. Returns a non-empty error
/// description on divergence.
inline std::string ReplayWalkthrough(
    engine::QueryEngine* db, const geom::ElementVec& elements,
    const std::vector<geom::Aabb>& path,
    scout::PrefetchMethod method = scout::PrefetchMethod::kScout) {
  auto session = db->OpenSession(method);
  if (!session.ok()) {
    return "OpenSession failed: " + session.status().ToString();
  }
  auto cached = db->OpenSession(method, engine::CachePolicy::kDelta);
  if (!cached.ok()) {
    return "OpenSession(kDelta) failed: " + cached.status().ToString();
  }
  // An engine with caching disabled (result_cache_boxes == 0 or an
  // approximate flat.rescue == false index) silently hands back an
  // uncached session — comparing it against the cold one would claim
  // delta parity that never ran. Skip the cached leg explicitly; the
  // delta-parity tests separately assert cache hits actually happened.
  const bool delta_enabled = cached->result_cache() != nullptr;
  for (size_t step = 0; step < path.size(); ++step) {
    const geom::Aabb& box = path[step];
    geom::CollectingVisitor stepped;
    auto record = session->Step(box, stepped);
    if (!record.ok()) {
      return "Step failed: " + record.status().ToString();
    }
    std::vector<geom::ElementId> step_ids = stepped.Ids();
    std::sort(step_ids.begin(), step_ids.end());

    if (delta_enabled) {
      geom::CollectingVisitor cached_stepped;
      auto cached_record = cached->Step(box, cached_stepped);
      if (!cached_record.ok()) {
        return "cached Step failed: " + cached_record.status().ToString();
      }
      std::vector<geom::ElementId> cached_ids = cached_stepped.Ids();
      std::sort(cached_ids.begin(), cached_ids.end());
      if (cached_ids != step_ids) {
        std::ostringstream os;
        os << "cached delta session returned " << cached_ids.size()
           << " ids but the cold session returned " << step_ids.size()
           << " at walkthrough step " << step;
        return os.str();
      }
    }

    engine::RangeRequest request;
    request.box = box;
    request.backend = engine::BackendChoice::kAll;
    request.cache = engine::CachePolicy::kWarm;
    geom::CollectingVisitor ranged;
    auto report = db->Execute(request, ranged);
    if (!report.ok()) {
      return "range replay failed: " + report.status().ToString();
    }
    std::vector<geom::ElementId> range_ids = ranged.Ids();
    std::sort(range_ids.begin(), range_ids.end());

    std::ostringstream os;
    if (!report->results_match) {
      os << "backends disagree at walkthrough step " << step;
      return os.str();
    }
    if (step_ids != range_ids) {
      os << "Session::Step returned " << step_ids.size()
         << " ids but the engine range path returned " << range_ids.size()
         << " at step " << step;
      return os.str();
    }
    if (step_ids != BruteForceRangeIds(elements, box)) {
      os << "walkthrough step " << step << " disagrees with brute force";
      return os.str();
    }
  }
  return std::string();
}

/// Run `n` seeded queries from `options` through `db` (which must have a
/// circuit loaded); `elements` is the loaded dataset, used for both
/// workload anchoring and ground truth. Stops at the first divergence.
/// When `shrink_with` is non-null, a divergence additionally runs the
/// circuit shrink reducer (ShrinkDivergence) with those engine options —
/// opt-in, because a divergence injected through a custom registered
/// backend cannot reproduce on the fresh default engines the reducer
/// builds.
inline geom::ElementVec ShrinkDivergence(
    const geom::ElementVec& elements, const geom::Aabb& domain,
    const neuro::MixedWorkloadOptions& options, uint64_t failing_sub_seed,
    const engine::EngineOptions& engine_options = engine::EngineOptions(),
    size_t max_attempts = 48);

inline DiffOutcome RunDifferential(engine::QueryEngine* db,
                                   const geom::ElementVec& elements,
                                   const neuro::MixedWorkloadOptions& options,
                                   size_t n, uint64_t seed,
                                   const engine::EngineOptions* shrink_with =
                                       nullptr) {
  DiffOutcome outcome;
  std::vector<neuro::WorkloadQuery> workload =
      neuro::MixedWorkload(db->domain(), elements, options, n, seed);

  auto fail = [&](size_t i, const std::string& detail) {
    outcome.diverged = true;
    outcome.failing_index = i;
    outcome.failing_seed = workload[i].sub_seed;
    outcome.detail = detail;
  };

  for (size_t i = 0; i < workload.size(); ++i) {
    const neuro::WorkloadQuery& query = workload[i];
    ++outcome.queries_run;

    if (query.kind == neuro::QueryKind::kRange) {
      ++outcome.ranges;
      engine::RangeRequest request;
      request.box = query.box;
      request.backend = engine::BackendChoice::kAll;
      request.cache = engine::CachePolicy::kWarm;
      auto report = db->Execute(request);
      if (!report.ok()) {
        fail(i, "range request failed: " + report.status().ToString());
        break;
      }
      if (!report->results_match) {
        std::ostringstream os;
        os << "range backends disagree on box " << query.box << ":";
        for (const auto& row : report->rows) {
          os << ' ' << row.method << '=' << row.stats.results;
        }
        fail(i, os.str());
        break;
      }
      uint64_t truth = BruteForceRangeCount(elements, query.box);
      if (report->results != truth) {
        std::ostringstream os;
        os << "all backends agree on " << report->results
           << " results but brute force finds " << truth << " for box "
           << query.box;
        fail(i, os.str());
        break;
      }
    } else if (query.kind == neuro::QueryKind::kKnn) {
      ++outcome.knns;
      engine::KnnRequest request;
      request.point = query.point;
      request.k = query.k;
      request.backend = engine::BackendChoice::kAll;
      request.cache = engine::CachePolicy::kWarm;
      auto report = db->Execute(request);
      if (!report.ok()) {
        fail(i, "knn request failed: " + report.status().ToString());
        break;
      }
      if (!report->results_match) {
        std::ostringstream os;
        os << "knn backends disagree for k=" << query.k << " at ("
           << query.point.x << ", " << query.point.y << ", " << query.point.z
           << ")";
        fail(i, os.str());
        break;
      }
      std::vector<geom::KnnHit> truth =
          geom::BruteForceKnn(elements, query.point, query.k);
      if (report->hits != truth) {
        std::ostringstream os;
        os << "all backends agree but brute-force kNN differs (k=" << query.k
           << ", got " << report->hits.size() << " hits, want "
           << truth.size() << ")";
        fail(i, os.str());
        break;
      }
    } else if (query.kind == neuro::QueryKind::kWalkthrough) {
      ++outcome.walkthroughs;
      std::string error = ReplayWalkthrough(db, elements, query.path);
      if (!error.empty()) {
        fail(i, error);
        break;
      }
    } else {
      ++outcome.joins;
      engine::JoinRequest touch;
      touch.method = touch::JoinMethod::kTouch;
      touch.options.epsilon = query.epsilon;
      engine::JoinRequest sweep;
      sweep.method = touch::JoinMethod::kPlaneSweep;
      sweep.options.epsilon = query.epsilon;
      auto touch_result = db->Execute(touch);
      auto sweep_result = db->Execute(sweep);
      if (!touch_result.ok() || !sweep_result.ok()) {
        fail(i, "join failed: " +
                    (touch_result.ok() ? sweep_result.status()
                                       : touch_result.status())
                        .ToString());
        break;
      }
      std::vector<touch::JoinPair> a = touch_result->pairs;
      std::vector<touch::JoinPair> b = sweep_result->pairs;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      if (a != b) {
        std::ostringstream os;
        os << "TOUCH and plane sweep disagree at epsilon=" << query.epsilon
           << " (" << a.size() << " vs " << b.size() << " pairs)";
        fail(i, os.str());
        break;
      }
    }
  }
  if (outcome.diverged && shrink_with != nullptr) {
    outcome.minimized = ShrinkDivergence(elements, db->domain(), options,
                                         outcome.failing_seed, *shrink_with);
    outcome.minimized_elements = outcome.minimized.size();
    outcome.shrunk = outcome.minimized_elements < elements.size();
  }
  return outcome;
}

/// True when two per-backend statistic rows are byte-identical.
inline bool SameRow(const engine::RangeRow& a, const engine::RangeRow& b) {
  return a.method == b.method && a.stats.pages_read == b.stats.pages_read &&
         a.stats.time_us == b.stats.time_us &&
         a.stats.results == b.stats.results &&
         a.stats.elements_scanned == b.stats.elements_scanned &&
         a.stats.nodes_per_level == b.stats.nodes_per_level;
}

inline bool SameRows(const std::vector<engine::RangeRow>& a,
                     const std::vector<engine::RangeRow>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!SameRow(a[i], b[i])) return false;
  }
  return true;
}

/// Turn the range/knn queries of a seeded workload into a cold mixed batch
/// (joins and walkthroughs have no batch form and are skipped). When
/// `sub_seeds` is given it receives, per batch entry, the originating
/// query's sub_seed — the minimal-repro handle survives the filtering.
inline std::vector<engine::QueryRequest> WorkloadToBatch(
    const std::vector<neuro::WorkloadQuery>& workload,
    engine::BackendChoice backend,
    std::vector<uint64_t>* sub_seeds = nullptr) {
  std::vector<engine::QueryRequest> batch;
  batch.reserve(workload.size());
  if (sub_seeds != nullptr) sub_seeds->clear();
  for (const neuro::WorkloadQuery& query : workload) {
    if (query.kind == neuro::QueryKind::kRange) {
      engine::RangeRequest request;
      request.box = query.box;
      request.backend = backend;
      request.cache = engine::CachePolicy::kCold;
      batch.emplace_back(request);
    } else if (query.kind == neuro::QueryKind::kKnn) {
      engine::KnnRequest request;
      request.point = query.point;
      request.k = query.k;
      request.backend = backend;
      request.cache = engine::CachePolicy::kCold;
      batch.emplace_back(request);
    } else {
      continue;
    }
    if (sub_seeds != nullptr) sub_seeds->push_back(query.sub_seed);
  }
  return batch;
}

/// Concurrent-batch parity: run the same seeded workload as one cold batch
/// through `serial_db` (num_threads == 1) and `parallel_db`
/// (num_threads > 1) and demand byte-identical per-query reports — same
/// request order, same rows, same stats, same hits. Cold requests make
/// every per-query report independent of lane history, so the serial and
/// lane-partitioned runs must agree exactly.
inline DiffOutcome RunBatchParity(engine::QueryEngine* serial_db,
                                  engine::QueryEngine* parallel_db,
                                  const geom::ElementVec& elements,
                                  const neuro::MixedWorkloadOptions& options,
                                  size_t n, uint64_t seed,
                                  engine::BackendChoice backend =
                                      engine::BackendChoice::kAll) {
  DiffOutcome outcome;
  std::vector<neuro::WorkloadQuery> workload =
      neuro::MixedWorkload(serial_db->domain(), elements, options, n, seed);
  std::vector<uint64_t> sub_seeds;
  std::vector<engine::QueryRequest> batch =
      WorkloadToBatch(workload, backend, &sub_seeds);

  auto serial = serial_db->ExecuteBatch(std::span<const engine::QueryRequest>(batch));
  auto parallel =
      parallel_db->ExecuteBatch(std::span<const engine::QueryRequest>(batch));
  if (!serial.ok() || !parallel.ok()) {
    outcome.diverged = true;
    outcome.detail = "batch failed: " +
                     (serial.ok() ? parallel.status() : serial.status())
                         .ToString();
    return outcome;
  }

  outcome.queries_run = batch.size();
  for (size_t i = 0; i < batch.size(); ++i) {
    const engine::QueryReport& s = serial->reports[i];
    const engine::QueryReport& p = parallel->reports[i];
    std::ostringstream os;
    if (s.index() != p.index()) {
      os << "report kind mismatch at request " << i;
    } else if (const auto* sr = std::get_if<engine::RangeReport>(&s)) {
      ++outcome.ranges;
      const auto& pr = std::get<engine::RangeReport>(p);
      if (sr->results != pr.results ||
          sr->results_match != pr.results_match ||
          !SameRows(sr->rows, pr.rows)) {
        os << "range report diverges at request " << i << " (serial "
           << sr->results << " results, parallel " << pr.results << ")";
      }
    } else {
      ++outcome.knns;
      const auto& sk = std::get<engine::KnnReport>(s);
      const auto& pk = std::get<engine::KnnReport>(p);
      if (sk.hits != pk.hits || sk.results_match != pk.results_match ||
          !SameRows(sk.rows, pk.rows)) {
        os << "knn report diverges at request " << i << " (serial "
           << sk.hits.size() << " hits, parallel " << pk.hits.size() << ")";
      }
    }
    std::string detail = os.str();
    if (!detail.empty()) {
      outcome.diverged = true;
      outcome.failing_index = i;
      outcome.failing_seed = sub_seeds[i];
      outcome.detail = detail;
      return outcome;
    }
  }

  // Aggregates: totals are sums over requests in both modes, so they must
  // match exactly too (critical_path_us and lanes legitimately differ).
  if (serial->aggregate.pages_read != parallel->aggregate.pages_read ||
      serial->aggregate.results != parallel->aggregate.results ||
      serial->aggregate.time_us != parallel->aggregate.time_us ||
      serial->aggregate.pool_hits != parallel->aggregate.pool_hits ||
      serial->aggregate.pool_misses != parallel->aggregate.pool_misses) {
    outcome.diverged = true;
    outcome.detail = "batch aggregates diverge between serial and parallel";
  }
  return outcome;
}

/// Delta-query parity: every range query of a seeded workload runs through
/// the engine's CachePolicy::kDelta result-cache path — rotating the
/// backend per query, so entries cached from one backend's answer serve
/// another's delta — and its id set must be byte-identical to a cold full
/// re-query (brute force over the element list); walkthrough queries
/// replay their (deliberately overlapping) paths through a cached *and* a
/// cold session via ReplayWalkthrough. Sized by `n` (CI 1000, nightly
/// 10000 via NEURODB_DELTA_QUERIES).
inline DiffOutcome RunDeltaParity(engine::QueryEngine* db,
                                  const geom::ElementVec& elements,
                                  const neuro::MixedWorkloadOptions& options,
                                  size_t n, uint64_t seed) {
  DiffOutcome outcome;
  std::vector<neuro::WorkloadQuery> workload =
      neuro::MixedWorkload(db->domain(), elements, options, n, seed);

  auto fail = [&](size_t i, const std::string& detail) {
    outcome.diverged = true;
    outcome.failing_index = i;
    outcome.failing_seed = workload[i].sub_seed;
    outcome.detail = detail;
  };

  // Single-backend choices the delta path supports, rotated per query so
  // cache entries written after one backend's answer serve the next
  // backend's delta — the cache must be backend-agnostic.
  const engine::BackendChoice kRotation[] = {
      engine::BackendChoice::kFlat, engine::BackendChoice::kRTree,
      engine::BackendChoice::kGrid, engine::BackendChoice::kSharded};

  for (size_t i = 0; i < workload.size(); ++i) {
    const neuro::WorkloadQuery& query = workload[i];
    ++outcome.queries_run;

    if (query.kind == neuro::QueryKind::kRange) {
      ++outcome.ranges;
      engine::RangeRequest request;
      request.box = query.box;
      request.backend = kRotation[i % 4];
      request.cache = engine::CachePolicy::kDelta;
      geom::CollectingVisitor delta_out;
      auto report = db->Execute(request, delta_out);
      if (!report.ok()) {
        fail(i, "delta request failed: " + report.status().ToString());
        break;
      }
      std::vector<geom::ElementId> delta_ids = delta_out.Ids();
      std::sort(delta_ids.begin(), delta_ids.end());
      if (delta_ids != BruteForceRangeIds(elements, query.box)) {
        std::ostringstream os;
        os << "delta answer (" << delta_ids.size()
           << " ids, cache_hit_fraction=" << report->cache_hit_fraction
           << ") disagrees with a cold full re-query for box " << query.box;
        fail(i, os.str());
        break;
      }
    } else if (query.kind == neuro::QueryKind::kWalkthrough) {
      ++outcome.walkthroughs;
      std::string error = ReplayWalkthrough(db, elements, query.path);
      if (!error.empty()) {
        fail(i, error);
        break;
      }
    }
    // kKnn / kJoin take no delta path; RunDifferential covers them.
  }
  return outcome;
}

/// True when `query` (regenerated from a divergence's sub-seed) still
/// diverges on a *fresh default engine* built over `elements` — the shrink
/// reducer's predicate. Covers the query kinds a standalone engine can
/// replay (range, kNN, walkthrough); joins use circuit-level inputs a bare
/// element subset cannot express.
inline bool QueryDivergesOn(const geom::ElementVec& elements,
                            const neuro::WorkloadQuery& query,
                            const engine::EngineOptions& engine_options) {
  engine::QueryEngine db(engine_options);
  if (!db.LoadElements(elements).ok()) return false;

  if (query.kind == neuro::QueryKind::kRange) {
    engine::RangeRequest request;
    request.box = query.box;
    request.backend = engine::BackendChoice::kAll;
    request.cache = engine::CachePolicy::kWarm;
    auto report = db.Execute(request);
    if (!report.ok()) return true;
    return !report->results_match ||
           report->results != BruteForceRangeCount(elements, query.box);
  }
  if (query.kind == neuro::QueryKind::kKnn) {
    engine::KnnRequest request;
    request.point = query.point;
    request.k = query.k;
    request.backend = engine::BackendChoice::kAll;
    request.cache = engine::CachePolicy::kWarm;
    auto report = db.Execute(request);
    if (!report.ok()) return true;
    return !report->results_match ||
           report->hits != geom::BruteForceKnn(elements, query.point, query.k);
  }
  if (query.kind == neuro::QueryKind::kWalkthrough) {
    // kNone: a bare element set has no morphologies for SCOUT to extract.
    return !ReplayWalkthrough(&db, elements, query.path,
                              scout::PrefetchMethod::kNone)
                .empty();
  }
  return false;
}

/// Shrink the *circuit* behind a read-path divergence: bisect the element
/// list while the failing query (by its minimal-repro sub-seed) keeps
/// diverging on a fresh engine. Returns the reduced element subset (the
/// original list when the divergence needs state a fresh default engine
/// lacks, e.g. an injected custom backend).
inline geom::ElementVec ShrinkDivergence(
    const geom::ElementVec& elements, const geom::Aabb& domain,
    const neuro::MixedWorkloadOptions& options, uint64_t failing_sub_seed,
    const engine::EngineOptions& engine_options, size_t max_attempts) {
  // The query stays FIXED (regenerated against the original anchors); only
  // the circuit shrinks underneath it.
  neuro::WorkloadQuery query =
      neuro::MixedWorkloadQuery(domain, elements, options, failing_sub_seed);
  if (!QueryDivergesOn(elements, query, engine_options)) return elements;
  return MinimizeElements(
      elements,
      [&](const geom::ElementVec& subset) {
        return QueryDivergesOn(subset, query, engine_options);
      },
      max_attempts);
}

/// Update-parity run configuration.
struct UpdateParityOptions {
  /// Query mix; update_fraction should be > 0 to exercise mutation.
  neuro::MixedWorkloadOptions workload;
  /// Engine configuration for shrink-reducer rebuilds (the main run uses
  /// the caller's engine).
  engine::EngineOptions engine;
  /// Applied updates between Compact() calls (0 = never compact).
  size_t compact_every = 0;
  /// On divergence, bisect the circuit with full-stream replays on fresh
  /// engines (expensive; failure path only).
  bool shrink_on_divergence = false;
  size_t shrink_attempts = 24;
};

/// Replay `workload` (at most `limit` queries) through `db`, which must be
/// loaded with exactly `initial`, against a brute-force *mutable* oracle:
/// kUpdate queries flow through QueryEngine::ApplyUpdates and mutate the
/// oracle in lockstep; every range/kNN/walkthrough query is checked against
/// the oracle's live element set through the kAll parity panel AND — for
/// ranges and each update's dirty region — through the CachePolicy::kDelta
/// result-cache path, so stale cache entries surface as divergences
/// immediately after the epoch bump that should have invalidated them.
inline DiffOutcome ReplayUpdateWorkload(
    engine::QueryEngine* db, const geom::ElementVec& initial,
    const std::vector<neuro::WorkloadQuery>& workload,
    const UpdateParityOptions& options, size_t limit = SIZE_MAX) {
  DiffOutcome outcome;
  // The oracle: the live element set, ascending by id.
  geom::ElementVec live = initial;
  std::sort(live.begin(), live.end(),
            [](const geom::SpatialElement& a, const geom::SpatialElement& b) {
              return a.id < b.id;
            });
  geom::ElementId next_id = live.empty() ? 1 : live.back().id + 1;
  auto find_live = [&](geom::ElementId id) {
    auto it = std::lower_bound(
        live.begin(), live.end(), id,
        [](const geom::SpatialElement& e, geom::ElementId v) {
          return e.id < v;
        });
    return (it != live.end() && it->id == id) ? it : live.end();
  };

  auto fail = [&](size_t i, const std::string& detail) {
    outcome.diverged = true;
    outcome.failing_index = i;
    outcome.failing_seed = workload[i].sub_seed;
    outcome.detail = detail;
  };

  const engine::BackendChoice kRotation[] = {
      engine::BackendChoice::kFlat, engine::BackendChoice::kRTree,
      engine::BackendChoice::kGrid, engine::BackendChoice::kSharded};

  // Checks one box through the delta (result-cache) path vs the oracle.
  auto check_delta_range = [&](size_t i, const geom::Aabb& box) {
    engine::RangeRequest request;
    request.box = box;
    request.backend = kRotation[i % 4];
    request.cache = engine::CachePolicy::kDelta;
    geom::CollectingVisitor out;
    auto report = db->Execute(request, out);
    if (!report.ok()) {
      return std::string("delta request failed: ") +
             report.status().ToString();
    }
    std::vector<geom::ElementId> ids = out.Ids();
    std::sort(ids.begin(), ids.end());
    if (ids != BruteForceRangeIds(live, box)) {
      std::ostringstream os;
      os << "delta answer (" << ids.size()
         << " ids, epoch=" << report->epoch
         << ") disagrees with the mutable oracle for box " << box;
      return os.str();
    }
    return std::string();
  };

  size_t applied_updates = 0;
  const size_t n = std::min(limit, workload.size());
  for (size_t i = 0; i < n; ++i) {
    const neuro::WorkloadQuery& query = workload[i];
    ++outcome.queries_run;

    if (query.kind == neuro::QueryKind::kUpdate) {
      ++outcome.updates;
      engine::UpdateRequest request;
      if (query.update_op == neuro::WorkloadUpdateOp::kInsert) {
        request.kind = engine::UpdateKind::kInsert;
        request.id = next_id++;
        request.bounds = query.box;
      } else {
        if (live.empty()) continue;  // nothing to erase/move (deterministic)
        size_t idx = static_cast<size_t>(query.update_rank % live.size());
        request.id = live[idx].id;
        if (query.update_op == neuro::WorkloadUpdateOp::kErase) {
          request.kind = engine::UpdateKind::kErase;
        } else {
          request.kind = engine::UpdateKind::kMove;
          request.bounds = query.box;
        }
      }

      storage::Epoch epoch_before = db->epoch();
      auto report =
          db->ApplyUpdates(std::span<const engine::UpdateRequest>(&request, 1));
      if (!report.ok()) {
        fail(i, "ApplyUpdates failed: " + report.status().ToString());
        break;
      }
      if (report->epoch != epoch_before + 1 || db->epoch() != report->epoch) {
        fail(i, "epoch did not advance by one across the update batch");
        break;
      }
      ++applied_updates;

      // Mutate the oracle in lockstep.
      if (request.kind == engine::UpdateKind::kInsert) {
        live.emplace_back(request.id, request.bounds);
        std::sort(live.begin(), live.end(),
                  [](const geom::SpatialElement& a,
                     const geom::SpatialElement& b) { return a.id < b.id; });
      } else if (request.kind == engine::UpdateKind::kErase) {
        auto it = find_live(request.id);
        if (it != live.end()) live.erase(it);
      } else {
        auto it = find_live(request.id);
        if (it != live.end()) it->bounds = request.bounds;
      }

      // Cache-invalidation check after the epoch bump: the dirty region
      // itself, through the delta path — a cache entry the invalidation
      // missed answers this box stale.
      if (report->dirty.IsValid()) {
        std::string error = check_delta_range(i, report->dirty.Expanded(1.0f));
        if (!error.empty()) {
          fail(i, "post-update " + error);
          break;
        }
      }

      if (options.compact_every > 0 &&
          applied_updates % options.compact_every == 0) {
        Status compacted = db->Compact();
        if (!compacted.ok()) {
          fail(i, "Compact failed: " + compacted.ToString());
          break;
        }
        if (db->DeltaSize() != 0) {
          fail(i, "Compact left a non-empty delta");
          break;
        }
        if (report->dirty.IsValid()) {
          std::string error =
              check_delta_range(i, report->dirty.Expanded(1.0f));
          if (!error.empty()) {
            fail(i, "post-compact " + error);
            break;
          }
        }
      }
    } else if (query.kind == neuro::QueryKind::kRange) {
      ++outcome.ranges;
      engine::RangeRequest request;
      request.box = query.box;
      request.backend = engine::BackendChoice::kAll;
      request.cache = engine::CachePolicy::kWarm;
      geom::CollectingVisitor out;
      auto report = db->Execute(request, out);
      if (!report.ok()) {
        fail(i, "range request failed: " + report.status().ToString());
        break;
      }
      if (!report->results_match) {
        std::ostringstream os;
        os << "range backends disagree on box " << query.box << " at epoch "
           << report->epoch << ":";
        for (const auto& row : report->rows) {
          os << ' ' << row.method << '=' << row.stats.results;
        }
        fail(i, os.str());
        break;
      }
      std::vector<geom::ElementId> ids = out.Ids();
      std::sort(ids.begin(), ids.end());
      if (ids != BruteForceRangeIds(live, query.box)) {
        std::ostringstream os;
        os << "all backends agree on " << ids.size()
           << " results but the mutable oracle finds "
           << BruteForceRangeCount(live, query.box) << " for box "
           << query.box;
        fail(i, os.str());
        break;
      }
      std::string error = check_delta_range(i, query.box);
      if (!error.empty()) {
        fail(i, error);
        break;
      }
    } else if (query.kind == neuro::QueryKind::kKnn) {
      ++outcome.knns;
      engine::KnnRequest request;
      request.point = query.point;
      request.k = query.k;
      request.backend = engine::BackendChoice::kAll;
      request.cache = engine::CachePolicy::kWarm;
      auto report = db->Execute(request);
      if (!report.ok()) {
        fail(i, "knn request failed: " + report.status().ToString());
        break;
      }
      if (!report->results_match ||
          report->hits != geom::BruteForceKnn(live, query.point, query.k)) {
        std::ostringstream os;
        os << "knn diverges from the mutable oracle (k=" << query.k
           << ", epoch=" << report->epoch << ")";
        fail(i, os.str());
        break;
      }
    } else if (query.kind == neuro::QueryKind::kWalkthrough) {
      ++outcome.walkthroughs;
      // kNone: LoadElements-built engines have no SCOUT skeletons; the
      // point here is session-vs-engine-vs-oracle parity under mutation.
      std::string error = ReplayWalkthrough(db, live, query.path,
                                            scout::PrefetchMethod::kNone);
      if (!error.empty()) {
        fail(i, error);
        break;
      }
    } else {
      // kJoin: join inputs are circuit-level and static — RunDifferential
      // covers them; an update stream has nothing to check there.
      ++outcome.joins;
    }
  }
  return outcome;
}

/// Mutation parity (the update-path twin of RunDifferential): a seeded
/// interleaved update/query stream through every registered backend vs a
/// brute-force mutable oracle, with a CachePolicy::kDelta invalidation
/// check after every epoch bump and optional periodic compaction. On
/// divergence, optionally shrinks the *initial circuit* with full-stream
/// replays on fresh engines (UpdateParityOptions::shrink_on_divergence).
/// `db` must be loaded with exactly `elements`.
inline DiffOutcome RunUpdateParity(engine::QueryEngine* db,
                                   const geom::ElementVec& elements,
                                   const UpdateParityOptions& options,
                                   size_t n, uint64_t seed) {
  std::vector<neuro::WorkloadQuery> workload =
      neuro::MixedWorkload(db->domain(), elements, options.workload, n, seed);
  DiffOutcome outcome = ReplayUpdateWorkload(db, elements, workload, options);
  if (outcome.diverged && options.shrink_on_divergence) {
    UpdateParityOptions inner = options;
    inner.shrink_on_divergence = false;
    const size_t limit = outcome.failing_index + 1;
    outcome.minimized = MinimizeElements(
        elements,
        [&](const geom::ElementVec& subset) {
          engine::QueryEngine fresh(inner.engine);
          if (!fresh.LoadElements(subset).ok()) return false;
          return ReplayUpdateWorkload(&fresh, subset, workload, inner, limit)
              .diverged;
        },
        options.shrink_attempts);
    outcome.minimized_elements = outcome.minimized.size();
    outcome.shrunk = outcome.minimized_elements < elements.size();
  }
  return outcome;
}

/// Concurrent reader/writer run configuration.
struct ConcurrentReaderOptions {
  /// Reader threads issuing kAll range/kNN queries while the writer runs.
  size_t readers = 4;
  size_t queries_per_reader = 48;
  /// Scripted writer batches and their size.
  size_t batches = 32;
  size_t ops_per_batch = 6;
  /// Applied batches between Compact() calls (0 = never compact).
  size_t compact_every = 0;
  /// Fraction of reader queries that are kNN instead of range.
  double knn_fraction = 0.3;
  /// A reader pinned at an epoch the writer has since retired from the
  /// retention window gets kOutOfRange — it re-pins and retries, at most
  /// this many times per query before reporting the query as failed.
  size_t max_retries = 64;
};

/// Snapshot-read differential under real concurrency: one writer thread
/// streams pre-scripted update batches through QueryEngine::ApplyUpdates
/// (alternating the synchronous and the Async worker path, with optional
/// periodic Compact) while `readers` threads issue BackendChoice::kAll
/// range/kNN queries. Every reader records the epoch the engine pinned its
/// query at; after both sides join, each recorded answer is checked against
/// a brute-force oracle evaluated over the scripted live set *at that
/// epoch* — so a query that raced ApplyUpdates must still have returned the
/// byte-identical answer a quiesced engine at its pinned epoch would give.
/// Cross-backend parity (results_match) is asserted per query as well.
/// Designed to run under TSan: readers never synchronize with the writer
/// except through the engine itself.
inline DiffOutcome RunConcurrentReaders(engine::QueryEngine* db,
                                        const geom::ElementVec& elements,
                                        const ConcurrentReaderOptions& options,
                                        uint64_t seed) {
  DiffOutcome outcome;

  // ---- Script the writer deterministically, before any thread starts:
  // per batch the concrete update requests, plus the oracle live set after
  // each batch (snapshot 0 = the initial load).
  std::vector<std::vector<engine::UpdateRequest>> batches(options.batches);
  std::vector<geom::ElementVec> snapshots;
  {
    geom::ElementVec live = elements;
    std::sort(live.begin(), live.end(),
              [](const geom::SpatialElement& a, const geom::SpatialElement& b) {
                return a.id < b.id;
              });
    snapshots.push_back(live);
    geom::ElementId next_id = live.empty() ? 1 : live.back().id + 1;
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 1);
    const geom::Aabb domain = db->domain();
    std::uniform_real_distribution<float> ux(domain.min.x, domain.max.x);
    std::uniform_real_distribution<float> uy(domain.min.y, domain.max.y);
    std::uniform_real_distribution<float> uz(domain.min.z, domain.max.z);
    const float extent = std::max(
        {domain.max.x - domain.min.x, domain.max.y - domain.min.y,
         domain.max.z - domain.min.z, 1.0f});
    std::uniform_real_distribution<float> uside(0.02f * extent,
                                                0.08f * extent);
    for (auto& batch : batches) {
      for (size_t op = 0; op < options.ops_per_batch; ++op) {
        engine::UpdateRequest request;
        uint64_t kind = rng() % 10;
        if (live.empty() || kind < 4) {
          request.kind = engine::UpdateKind::kInsert;
          request.id = next_id++;
          request.bounds =
              geom::Aabb::Cube(geom::Vec3(ux(rng), uy(rng), uz(rng)),
                               uside(rng));
          live.emplace_back(request.id, request.bounds);
        } else {
          size_t idx = static_cast<size_t>(rng() % live.size());
          request.id = live[idx].id;
          if (kind < 7) {
            request.kind = engine::UpdateKind::kErase;
            live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
          } else {
            request.kind = engine::UpdateKind::kMove;
            request.bounds =
                geom::Aabb::Cube(geom::Vec3(ux(rng), uy(rng), uz(rng)),
                                 uside(rng));
            live[idx].bounds = request.bounds;
          }
        }
        batch.push_back(request);
      }
      snapshots.push_back(live);
    }
  }

  // ---- Writer thread: applies the script and records which engine epoch
  // corresponds to which oracle snapshot. Only the writer touches this map
  // while threads run; the main thread reads it after join().
  std::unordered_map<storage::Epoch, size_t> snapshot_at_epoch;
  snapshot_at_epoch[db->epoch()] = 0;
  std::string writer_error;
  std::thread writer([&] {
    size_t applied = 0;
    for (size_t j = 0; j < batches.size(); ++j) {
      Result<engine::UpdateReport> report =
          (j % 2 == 0)
              ? db->ApplyUpdates(std::span<const engine::UpdateRequest>(
                    batches[j]))
              : db->ApplyUpdatesAsync(batches[j]).get();
      if (!report.ok()) {
        writer_error = "ApplyUpdates failed at batch " + std::to_string(j) +
                       ": " + report.status().ToString();
        return;
      }
      snapshot_at_epoch[report->epoch] = j + 1;
      ++applied;
      if (options.compact_every > 0 &&
          applied % options.compact_every == 0) {
        Status compacted =
            (j % 2 == 0) ? db->Compact() : db->CompactAsync().get();
        if (!compacted.ok()) {
          writer_error = "Compact failed after batch " + std::to_string(j) +
                         ": " + compacted.ToString();
          return;
        }
        // Compaction changes no answers — the new epoch answers from the
        // same live set as the epoch before it.
        snapshot_at_epoch[db->epoch()] = j + 1;
      }
      std::this_thread::yield();
    }
  });

  // ---- Reader threads: kAll cold queries, each recording the epoch the
  // engine pinned it at plus its full sorted answer.
  struct Observation {
    storage::Epoch epoch = 0;
    bool is_knn = false;
    geom::Aabb box;
    geom::Vec3 point;
    size_t k = 0;
    std::vector<geom::ElementId> ids;
    std::vector<geom::KnnHit> hits;
    bool backends_matched = true;
    std::string error;  // non-retryable failure
  };
  std::vector<std::vector<Observation>> observed(options.readers);
  std::vector<std::thread> reader_threads;
  reader_threads.reserve(options.readers);
  for (size_t r = 0; r < options.readers; ++r) {
    reader_threads.emplace_back([&, r] {
      std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 1000003ull * (r + 2));
      const geom::Aabb domain = db->domain();
      std::uniform_real_distribution<float> ux(domain.min.x, domain.max.x);
      std::uniform_real_distribution<float> uy(domain.min.y, domain.max.y);
      std::uniform_real_distribution<float> uz(domain.min.z, domain.max.z);
      const float extent = std::max(
          {domain.max.x - domain.min.x, domain.max.y - domain.min.y,
           domain.max.z - domain.min.z, 1.0f});
      std::uniform_real_distribution<float> uside(0.05f * extent,
                                                  0.20f * extent);
      for (size_t q = 0; q < options.queries_per_reader; ++q) {
        Observation ob;
        ob.is_knn =
            (static_cast<double>(rng() % 1000) / 1000.0) < options.knn_fraction;
        ob.box = geom::Aabb::Cube(geom::Vec3(ux(rng), uy(rng), uz(rng)),
                                  uside(rng));
        ob.point = geom::Vec3(ux(rng), uy(rng), uz(rng));
        ob.k = 1 + static_cast<size_t>(rng() % 8);
        for (size_t attempt = 0;; ++attempt) {
          Status failed = Status::OK();
          if (ob.is_knn) {
            engine::KnnRequest request;
            request.point = ob.point;
            request.k = ob.k;
            request.backend = engine::BackendChoice::kAll;
            request.cache = engine::CachePolicy::kCold;
            auto report = db->Execute(request);
            if (report.ok()) {
              ob.epoch = report->epoch;
              ob.hits = report->hits;
              ob.backends_matched = report->results_match;
              break;
            }
            failed = report.status();
          } else {
            engine::RangeRequest request;
            request.box = ob.box;
            request.backend = engine::BackendChoice::kAll;
            request.cache = engine::CachePolicy::kCold;
            geom::CollectingVisitor out;
            auto report = db->Execute(request, out);
            if (report.ok()) {
              ob.epoch = report->epoch;
              ob.ids = out.Ids();
              std::sort(ob.ids.begin(), ob.ids.end());
              ob.backends_matched = report->results_match;
              break;
            }
            failed = report.status();
          }
          // Retired-epoch reads re-pin at the newest epoch and try again;
          // anything else is a genuine failure.
          if (failed.code() != StatusCode::kOutOfRange ||
              attempt >= options.max_retries) {
            ob.error = failed.ToString();
            break;
          }
        }
        observed[r].push_back(std::move(ob));
      }
    });
  }

  writer.join();
  for (std::thread& t : reader_threads) t.join();

  if (!writer_error.empty()) {
    outcome.diverged = true;
    outcome.detail = writer_error;
    return outcome;
  }

  // ---- Offline verdict: every recorded answer must equal the quiesced
  // oracle at its pinned epoch.
  for (size_t r = 0; r < observed.size(); ++r) {
    for (size_t q = 0; q < observed[r].size(); ++q) {
      const Observation& ob = observed[r][q];
      ++outcome.queries_run;
      std::ostringstream os;
      os << "reader " << r << " query " << q << " (epoch " << ob.epoch
         << "): ";
      if (!ob.error.empty()) {
        outcome.diverged = true;
        outcome.detail = os.str() + ob.error;
        return outcome;
      }
      if (!ob.backends_matched) {
        outcome.diverged = true;
        outcome.detail = os.str() + "backends disagree at the pinned epoch";
        return outcome;
      }
      auto snap = snapshot_at_epoch.find(ob.epoch);
      if (snap == snapshot_at_epoch.end()) {
        outcome.diverged = true;
        outcome.detail =
            os.str() + "query pinned an epoch the writer never published";
        return outcome;
      }
      const geom::ElementVec& live = snapshots[snap->second];
      if (ob.is_knn) {
        ++outcome.knns;
        if (ob.hits != geom::BruteForceKnn(live, ob.point, ob.k)) {
          outcome.diverged = true;
          os << "kNN answer (k=" << ob.k << ", " << ob.hits.size()
             << " hits) disagrees with the quiesced oracle at its epoch";
          outcome.detail = os.str();
          return outcome;
        }
      } else {
        ++outcome.ranges;
        if (ob.ids != BruteForceRangeIds(live, ob.box)) {
          outcome.diverged = true;
          os << "range answer (" << ob.ids.size() << " ids, box " << ob.box
             << ") disagrees with the quiesced oracle at its epoch";
          outcome.detail = os.str();
          return outcome;
        }
      }
    }
  }
  outcome.updates = options.batches * options.ops_per_batch;
  return outcome;
}

}  // namespace testing
}  // namespace neurodb

#endif  // NEURODB_TESTS_DIFF_HARNESS_H_
