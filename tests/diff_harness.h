// NeuroDB — differential-testing harness.
//
// Replays a seeded randomized workload of Range / Knn / Join / Walkthrough
// queries through the engine and checks, per query, that (a) every
// registered backend agrees (BackendChoice::kAll parity — FLAT crawl vs
// R-tree traversal vs grid scan vs sharded merge), and (b) the agreed
// answer matches a brute-force ground truth computed directly over the
// element list, so backends sharing one bug cannot pass. Joins are
// cross-checked across independent join algorithms (TOUCH vs plane sweep)
// the same way; walkthroughs replay a random-walk path one Session::Step at
// a time and cross-check every step against both the engine's kAll range
// path and brute force.
//
// RunBatchParity drives the concurrent ExecuteBatch path: the same workload
// as a batch of cold requests through a serial engine and a multi-threaded
// engine, demanding byte-identical per-query reports in request order.
//
// Every harness stops at the FIRST divergence and reports a minimal
// reproduction: every workload query carries its own sub-seed, and
// neuro::MixedWorkloadQuery(domain, elements, options, sub_seed)
// regenerates exactly the failing query — no need to replay the whole
// workload to debug it.

#ifndef NEURODB_TESTS_DIFF_HARNESS_H_
#define NEURODB_TESTS_DIFF_HARNESS_H_

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "engine/query_engine.h"
#include "geom/knn.h"
#include "neuro/workload.h"

namespace neurodb {
namespace testing {

/// Env-tunable harness knob (the nightly ctest registrations scale query
/// counts and seeds through the environment).
inline uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

/// Result of one differential run.
struct DiffOutcome {
  bool diverged = false;
  size_t queries_run = 0;
  size_t ranges = 0;
  size_t knns = 0;
  size_t joins = 0;
  size_t walkthroughs = 0;
  /// Valid when diverged: the failing query's index in the workload and the
  /// sub-seed that regenerates it via neuro::MixedWorkloadQuery.
  size_t failing_index = 0;
  uint64_t failing_seed = 0;
  std::string detail;

  std::string Summary() const {
    std::ostringstream os;
    if (!diverged) {
      os << "no divergence in " << queries_run << " queries (" << ranges
         << " range, " << knns << " knn, " << joins << " join, "
         << walkthroughs << " walkthrough)";
    } else {
      os << "DIVERGENCE at query " << failing_index
         << " — minimal repro: MixedWorkloadQuery(..., sub_seed="
         << failing_seed << ") — " << detail;
    }
    return os.str();
  }
};

/// Brute-force range count over the raw element list.
inline uint64_t BruteForceRangeCount(const geom::ElementVec& elements,
                                     const geom::Aabb& box) {
  uint64_t count = 0;
  for (const auto& e : elements) {
    if (e.bounds.Intersects(box)) ++count;
  }
  return count;
}

/// Sorted ids of every element intersecting `box` (walkthrough ground
/// truth, where counts alone would let compensating errors slip through).
inline std::vector<geom::ElementId> BruteForceRangeIds(
    const geom::ElementVec& elements, const geom::Aabb& box) {
  std::vector<geom::ElementId> ids;
  for (const auto& e : elements) {
    if (e.bounds.Intersects(box)) ids.push_back(e.id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Replay one walkthrough path step by step: every step's streamed result
/// set must match a *cached* delta session's answer, the engine's kAll
/// range answer and brute force. Walkthrough paths use steps shorter than
/// the box side, so consecutive boxes deliberately overlap — the case the
/// result cache answers by delta decomposition. Returns a non-empty error
/// description on divergence.
inline std::string ReplayWalkthrough(engine::QueryEngine* db,
                                     const geom::ElementVec& elements,
                                     const std::vector<geom::Aabb>& path) {
  auto session = db->OpenSession(scout::PrefetchMethod::kScout);
  if (!session.ok()) {
    return "OpenSession failed: " + session.status().ToString();
  }
  auto cached = db->OpenSession(scout::PrefetchMethod::kScout,
                                engine::CachePolicy::kDelta);
  if (!cached.ok()) {
    return "OpenSession(kDelta) failed: " + cached.status().ToString();
  }
  // An engine with caching disabled (result_cache_boxes == 0 or an
  // approximate flat.rescue == false index) silently hands back an
  // uncached session — comparing it against the cold one would claim
  // delta parity that never ran. Skip the cached leg explicitly; the
  // delta-parity tests separately assert cache hits actually happened.
  const bool delta_enabled = cached->result_cache() != nullptr;
  for (size_t step = 0; step < path.size(); ++step) {
    const geom::Aabb& box = path[step];
    geom::CollectingVisitor stepped;
    auto record = session->Step(box, stepped);
    if (!record.ok()) {
      return "Step failed: " + record.status().ToString();
    }
    std::vector<geom::ElementId> step_ids = stepped.Ids();
    std::sort(step_ids.begin(), step_ids.end());

    if (delta_enabled) {
      geom::CollectingVisitor cached_stepped;
      auto cached_record = cached->Step(box, cached_stepped);
      if (!cached_record.ok()) {
        return "cached Step failed: " + cached_record.status().ToString();
      }
      std::vector<geom::ElementId> cached_ids = cached_stepped.Ids();
      std::sort(cached_ids.begin(), cached_ids.end());
      if (cached_ids != step_ids) {
        std::ostringstream os;
        os << "cached delta session returned " << cached_ids.size()
           << " ids but the cold session returned " << step_ids.size()
           << " at walkthrough step " << step;
        return os.str();
      }
    }

    engine::RangeRequest request;
    request.box = box;
    request.backend = engine::BackendChoice::kAll;
    request.cache = engine::CachePolicy::kWarm;
    geom::CollectingVisitor ranged;
    auto report = db->Execute(request, ranged);
    if (!report.ok()) {
      return "range replay failed: " + report.status().ToString();
    }
    std::vector<geom::ElementId> range_ids = ranged.Ids();
    std::sort(range_ids.begin(), range_ids.end());

    std::ostringstream os;
    if (!report->results_match) {
      os << "backends disagree at walkthrough step " << step;
      return os.str();
    }
    if (step_ids != range_ids) {
      os << "Session::Step returned " << step_ids.size()
         << " ids but the engine range path returned " << range_ids.size()
         << " at step " << step;
      return os.str();
    }
    if (step_ids != BruteForceRangeIds(elements, box)) {
      os << "walkthrough step " << step << " disagrees with brute force";
      return os.str();
    }
  }
  return std::string();
}

/// Run `n` seeded queries from `options` through `db` (which must have a
/// circuit loaded); `elements` is the loaded dataset, used for both
/// workload anchoring and ground truth. Stops at the first divergence.
inline DiffOutcome RunDifferential(engine::QueryEngine* db,
                                   const geom::ElementVec& elements,
                                   const neuro::MixedWorkloadOptions& options,
                                   size_t n, uint64_t seed) {
  DiffOutcome outcome;
  std::vector<neuro::WorkloadQuery> workload =
      neuro::MixedWorkload(db->domain(), elements, options, n, seed);

  auto fail = [&](size_t i, const std::string& detail) {
    outcome.diverged = true;
    outcome.failing_index = i;
    outcome.failing_seed = workload[i].sub_seed;
    outcome.detail = detail;
  };

  for (size_t i = 0; i < workload.size(); ++i) {
    const neuro::WorkloadQuery& query = workload[i];
    ++outcome.queries_run;

    if (query.kind == neuro::QueryKind::kRange) {
      ++outcome.ranges;
      engine::RangeRequest request;
      request.box = query.box;
      request.backend = engine::BackendChoice::kAll;
      request.cache = engine::CachePolicy::kWarm;
      auto report = db->Execute(request);
      if (!report.ok()) {
        fail(i, "range request failed: " + report.status().ToString());
        break;
      }
      if (!report->results_match) {
        std::ostringstream os;
        os << "range backends disagree on box " << query.box << ":";
        for (const auto& row : report->rows) {
          os << ' ' << row.method << '=' << row.stats.results;
        }
        fail(i, os.str());
        break;
      }
      uint64_t truth = BruteForceRangeCount(elements, query.box);
      if (report->results != truth) {
        std::ostringstream os;
        os << "all backends agree on " << report->results
           << " results but brute force finds " << truth << " for box "
           << query.box;
        fail(i, os.str());
        break;
      }
    } else if (query.kind == neuro::QueryKind::kKnn) {
      ++outcome.knns;
      engine::KnnRequest request;
      request.point = query.point;
      request.k = query.k;
      request.backend = engine::BackendChoice::kAll;
      request.cache = engine::CachePolicy::kWarm;
      auto report = db->Execute(request);
      if (!report.ok()) {
        fail(i, "knn request failed: " + report.status().ToString());
        break;
      }
      if (!report->results_match) {
        std::ostringstream os;
        os << "knn backends disagree for k=" << query.k << " at ("
           << query.point.x << ", " << query.point.y << ", " << query.point.z
           << ")";
        fail(i, os.str());
        break;
      }
      std::vector<geom::KnnHit> truth =
          geom::BruteForceKnn(elements, query.point, query.k);
      if (report->hits != truth) {
        std::ostringstream os;
        os << "all backends agree but brute-force kNN differs (k=" << query.k
           << ", got " << report->hits.size() << " hits, want "
           << truth.size() << ")";
        fail(i, os.str());
        break;
      }
    } else if (query.kind == neuro::QueryKind::kWalkthrough) {
      ++outcome.walkthroughs;
      std::string error = ReplayWalkthrough(db, elements, query.path);
      if (!error.empty()) {
        fail(i, error);
        break;
      }
    } else {
      ++outcome.joins;
      engine::JoinRequest touch;
      touch.method = touch::JoinMethod::kTouch;
      touch.options.epsilon = query.epsilon;
      engine::JoinRequest sweep;
      sweep.method = touch::JoinMethod::kPlaneSweep;
      sweep.options.epsilon = query.epsilon;
      auto touch_result = db->Execute(touch);
      auto sweep_result = db->Execute(sweep);
      if (!touch_result.ok() || !sweep_result.ok()) {
        fail(i, "join failed: " +
                    (touch_result.ok() ? sweep_result.status()
                                       : touch_result.status())
                        .ToString());
        break;
      }
      std::vector<touch::JoinPair> a = touch_result->pairs;
      std::vector<touch::JoinPair> b = sweep_result->pairs;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      if (a != b) {
        std::ostringstream os;
        os << "TOUCH and plane sweep disagree at epsilon=" << query.epsilon
           << " (" << a.size() << " vs " << b.size() << " pairs)";
        fail(i, os.str());
        break;
      }
    }
  }
  return outcome;
}

/// True when two per-backend statistic rows are byte-identical.
inline bool SameRow(const engine::RangeRow& a, const engine::RangeRow& b) {
  return a.method == b.method && a.stats.pages_read == b.stats.pages_read &&
         a.stats.time_us == b.stats.time_us &&
         a.stats.results == b.stats.results &&
         a.stats.elements_scanned == b.stats.elements_scanned &&
         a.stats.nodes_per_level == b.stats.nodes_per_level;
}

inline bool SameRows(const std::vector<engine::RangeRow>& a,
                     const std::vector<engine::RangeRow>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!SameRow(a[i], b[i])) return false;
  }
  return true;
}

/// Turn the range/knn queries of a seeded workload into a cold mixed batch
/// (joins and walkthroughs have no batch form and are skipped). When
/// `sub_seeds` is given it receives, per batch entry, the originating
/// query's sub_seed — the minimal-repro handle survives the filtering.
inline std::vector<engine::QueryRequest> WorkloadToBatch(
    const std::vector<neuro::WorkloadQuery>& workload,
    engine::BackendChoice backend,
    std::vector<uint64_t>* sub_seeds = nullptr) {
  std::vector<engine::QueryRequest> batch;
  batch.reserve(workload.size());
  if (sub_seeds != nullptr) sub_seeds->clear();
  for (const neuro::WorkloadQuery& query : workload) {
    if (query.kind == neuro::QueryKind::kRange) {
      engine::RangeRequest request;
      request.box = query.box;
      request.backend = backend;
      request.cache = engine::CachePolicy::kCold;
      batch.emplace_back(request);
    } else if (query.kind == neuro::QueryKind::kKnn) {
      engine::KnnRequest request;
      request.point = query.point;
      request.k = query.k;
      request.backend = backend;
      request.cache = engine::CachePolicy::kCold;
      batch.emplace_back(request);
    } else {
      continue;
    }
    if (sub_seeds != nullptr) sub_seeds->push_back(query.sub_seed);
  }
  return batch;
}

/// Concurrent-batch parity: run the same seeded workload as one cold batch
/// through `serial_db` (num_threads == 1) and `parallel_db`
/// (num_threads > 1) and demand byte-identical per-query reports — same
/// request order, same rows, same stats, same hits. Cold requests make
/// every per-query report independent of lane history, so the serial and
/// lane-partitioned runs must agree exactly.
inline DiffOutcome RunBatchParity(engine::QueryEngine* serial_db,
                                  engine::QueryEngine* parallel_db,
                                  const geom::ElementVec& elements,
                                  const neuro::MixedWorkloadOptions& options,
                                  size_t n, uint64_t seed,
                                  engine::BackendChoice backend =
                                      engine::BackendChoice::kAll) {
  DiffOutcome outcome;
  std::vector<neuro::WorkloadQuery> workload =
      neuro::MixedWorkload(serial_db->domain(), elements, options, n, seed);
  std::vector<uint64_t> sub_seeds;
  std::vector<engine::QueryRequest> batch =
      WorkloadToBatch(workload, backend, &sub_seeds);

  auto serial = serial_db->ExecuteBatch(std::span<const engine::QueryRequest>(batch));
  auto parallel =
      parallel_db->ExecuteBatch(std::span<const engine::QueryRequest>(batch));
  if (!serial.ok() || !parallel.ok()) {
    outcome.diverged = true;
    outcome.detail = "batch failed: " +
                     (serial.ok() ? parallel.status() : serial.status())
                         .ToString();
    return outcome;
  }

  outcome.queries_run = batch.size();
  for (size_t i = 0; i < batch.size(); ++i) {
    const engine::QueryReport& s = serial->reports[i];
    const engine::QueryReport& p = parallel->reports[i];
    std::ostringstream os;
    if (s.index() != p.index()) {
      os << "report kind mismatch at request " << i;
    } else if (const auto* sr = std::get_if<engine::RangeReport>(&s)) {
      ++outcome.ranges;
      const auto& pr = std::get<engine::RangeReport>(p);
      if (sr->results != pr.results ||
          sr->results_match != pr.results_match ||
          !SameRows(sr->rows, pr.rows)) {
        os << "range report diverges at request " << i << " (serial "
           << sr->results << " results, parallel " << pr.results << ")";
      }
    } else {
      ++outcome.knns;
      const auto& sk = std::get<engine::KnnReport>(s);
      const auto& pk = std::get<engine::KnnReport>(p);
      if (sk.hits != pk.hits || sk.results_match != pk.results_match ||
          !SameRows(sk.rows, pk.rows)) {
        os << "knn report diverges at request " << i << " (serial "
           << sk.hits.size() << " hits, parallel " << pk.hits.size() << ")";
      }
    }
    std::string detail = os.str();
    if (!detail.empty()) {
      outcome.diverged = true;
      outcome.failing_index = i;
      outcome.failing_seed = sub_seeds[i];
      outcome.detail = detail;
      return outcome;
    }
  }

  // Aggregates: totals are sums over requests in both modes, so they must
  // match exactly too (critical_path_us and lanes legitimately differ).
  if (serial->aggregate.pages_read != parallel->aggregate.pages_read ||
      serial->aggregate.results != parallel->aggregate.results ||
      serial->aggregate.time_us != parallel->aggregate.time_us ||
      serial->aggregate.pool_hits != parallel->aggregate.pool_hits ||
      serial->aggregate.pool_misses != parallel->aggregate.pool_misses) {
    outcome.diverged = true;
    outcome.detail = "batch aggregates diverge between serial and parallel";
  }
  return outcome;
}

/// Delta-query parity: every range query of a seeded workload runs through
/// the engine's CachePolicy::kDelta result-cache path — rotating the
/// backend per query, so entries cached from one backend's answer serve
/// another's delta — and its id set must be byte-identical to a cold full
/// re-query (brute force over the element list); walkthrough queries
/// replay their (deliberately overlapping) paths through a cached *and* a
/// cold session via ReplayWalkthrough. Sized by `n` (CI 1000, nightly
/// 10000 via NEURODB_DELTA_QUERIES).
inline DiffOutcome RunDeltaParity(engine::QueryEngine* db,
                                  const geom::ElementVec& elements,
                                  const neuro::MixedWorkloadOptions& options,
                                  size_t n, uint64_t seed) {
  DiffOutcome outcome;
  std::vector<neuro::WorkloadQuery> workload =
      neuro::MixedWorkload(db->domain(), elements, options, n, seed);

  auto fail = [&](size_t i, const std::string& detail) {
    outcome.diverged = true;
    outcome.failing_index = i;
    outcome.failing_seed = workload[i].sub_seed;
    outcome.detail = detail;
  };

  // Single-backend choices the delta path supports, rotated per query so
  // cache entries written after one backend's answer serve the next
  // backend's delta — the cache must be backend-agnostic.
  const engine::BackendChoice kRotation[] = {
      engine::BackendChoice::kFlat, engine::BackendChoice::kRTree,
      engine::BackendChoice::kGrid, engine::BackendChoice::kSharded};

  for (size_t i = 0; i < workload.size(); ++i) {
    const neuro::WorkloadQuery& query = workload[i];
    ++outcome.queries_run;

    if (query.kind == neuro::QueryKind::kRange) {
      ++outcome.ranges;
      engine::RangeRequest request;
      request.box = query.box;
      request.backend = kRotation[i % 4];
      request.cache = engine::CachePolicy::kDelta;
      geom::CollectingVisitor delta_out;
      auto report = db->Execute(request, delta_out);
      if (!report.ok()) {
        fail(i, "delta request failed: " + report.status().ToString());
        break;
      }
      std::vector<geom::ElementId> delta_ids = delta_out.Ids();
      std::sort(delta_ids.begin(), delta_ids.end());
      if (delta_ids != BruteForceRangeIds(elements, query.box)) {
        std::ostringstream os;
        os << "delta answer (" << delta_ids.size()
           << " ids, cache_hit_fraction=" << report->cache_hit_fraction
           << ") disagrees with a cold full re-query for box " << query.box;
        fail(i, os.str());
        break;
      }
    } else if (query.kind == neuro::QueryKind::kWalkthrough) {
      ++outcome.walkthroughs;
      std::string error = ReplayWalkthrough(db, elements, query.path);
      if (!error.empty()) {
        fail(i, error);
        break;
      }
    }
    // kKnn / kJoin take no delta path; RunDifferential covers them.
  }
  return outcome;
}

}  // namespace testing
}  // namespace neurodb

#endif  // NEURODB_TESTS_DIFF_HARNESS_H_
