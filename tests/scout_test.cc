#include "scout/structure.h"

#include <gtest/gtest.h>

#include "scout/prefetcher.h"

namespace neurodb {
namespace scout {
namespace {

using geom::Aabb;
using geom::ElementId;
using geom::Segment;
using geom::Vec3;

/// Builds a resolver over a hand-crafted set of segments.
class StructureFixture : public ::testing::Test {
 protected:
  void AddChain(ElementId base, Vec3 start, Vec3 step, int count,
                float radius = 0.3f) {
    Vec3 p = start;
    for (int i = 0; i < count; ++i) {
      Vec3 q = p + step;
      dataset_.Add(Segment(p, q, radius), base + i);
      p = q;
    }
  }

  void Finish() { resolver_.AddDataset(dataset_); }

  std::vector<ElementId> AllIds() const { return dataset_.ids; }

  neuro::SegmentDataset dataset_;
  neuro::SegmentResolver resolver_;
};

TEST_F(StructureFixture, SingleChainIsOneStructure) {
  AddChain(100, Vec3(0, 0, 0), Vec3(2, 0, 0), 10);
  Finish();
  Aabb box(Vec3(-1, -1, -1), Vec3(30, 1, 1));
  auto structures = ExtractStructures(AllIds(), resolver_, box);
  ASSERT_TRUE(structures.ok());
  ASSERT_EQ(structures->size(), 1u);
  EXPECT_EQ((*structures)[0].elements.size(), 10u);
}

TEST_F(StructureFixture, DisjointChainsAreSeparateStructures) {
  AddChain(100, Vec3(0, 0, 0), Vec3(2, 0, 0), 5);
  AddChain(200, Vec3(0, 50, 0), Vec3(2, 0, 0), 5);
  Finish();
  Aabb box(Vec3(-5, -5, -5), Vec3(60, 60, 5));
  auto structures = ExtractStructures(AllIds(), resolver_, box);
  ASSERT_TRUE(structures.ok());
  EXPECT_EQ(structures->size(), 2u);
}

TEST_F(StructureFixture, ExitDetectionFindsBoundaryCrossing) {
  // Chain runs from x=0 to x=20; the box ends at x=10.
  AddChain(100, Vec3(0, 0, 0), Vec3(2, 0, 0), 10);
  Finish();
  Aabb box(Vec3(-1, -1, -1), Vec3(10.5f, 1, 1));
  // Result = segments intersecting the box (first 6 segments: [0,2]..[10,12]).
  std::vector<ElementId> result;
  for (size_t i = 0; i < dataset_.size(); ++i) {
    if (dataset_.segments[i].Bounds().Intersects(box)) {
      result.push_back(dataset_.ids[i]);
    }
  }
  auto structures = ExtractStructures(result, resolver_, box);
  ASSERT_TRUE(structures.ok());
  ASSERT_EQ(structures->size(), 1u);
  const Structure& s = (*structures)[0];
  ASSERT_TRUE(s.HasExit());
  // The exit direction points in +x.
  EXPECT_GT(s.exits[0].direction.x, 0.9f);
  EXPECT_GT(s.exits[0].point.x, 10.0f);
}

TEST_F(StructureFixture, FullyInteriorStructureHasNoExit) {
  AddChain(100, Vec3(5, 5, 5), Vec3(1, 0, 0), 4);
  Finish();
  Aabb box(Vec3(0, 0, 0), Vec3(50, 50, 50));
  auto structures = ExtractStructures(AllIds(), resolver_, box);
  ASSERT_TRUE(structures.ok());
  ASSERT_EQ(structures->size(), 1u);
  EXPECT_FALSE((*structures)[0].HasExit());
}

TEST_F(StructureFixture, BranchingChainsRemainOneStructure) {
  // A trunk with two children sharing its endpoint.
  AddChain(100, Vec3(0, 0, 0), Vec3(2, 0, 0), 5);   // ends at (10,0,0)
  AddChain(200, Vec3(10, 0, 0), Vec3(1, 2, 0), 4);  // branch up
  AddChain(300, Vec3(10, 0, 0), Vec3(1, -2, 0), 4);  // branch down
  Finish();
  Aabb box(Vec3(-5, -20, -5), Vec3(30, 20, 5));
  auto structures = ExtractStructures(AllIds(), resolver_, box);
  ASSERT_TRUE(structures.ok());
  EXPECT_EQ(structures->size(), 1u);
  EXPECT_EQ((*structures)[0].elements.size(), 13u);
}

TEST_F(StructureFixture, ConnectTolControlsMerging) {
  // Two chains 2 apart: connected at tol=3, separate at tol=1.
  AddChain(100, Vec3(0, 0, 0), Vec3(2, 0, 0), 3);
  AddChain(200, Vec3(0, 2, 0), Vec3(2, 0, 0), 3);
  Finish();
  Aabb box(Vec3(-5, -5, -5), Vec3(20, 20, 5));
  StructureOptions loose;
  loose.connect_tol = 3.0f;
  auto merged = ExtractStructures(AllIds(), resolver_, box, loose);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->size(), 1u);

  StructureOptions tight;
  tight.connect_tol = 1.0f;
  auto split = ExtractStructures(AllIds(), resolver_, box, tight);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->size(), 2u);
}

TEST_F(StructureFixture, UnknownIdFails) {
  AddChain(100, Vec3(0, 0, 0), Vec3(1, 0, 0), 2);
  Finish();
  auto bad = ExtractStructures({999999}, resolver_,
                               Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)));
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
}

TEST_F(StructureFixture, InvalidToleranceFails) {
  Finish();
  StructureOptions bad;
  bad.connect_tol = 0.0f;
  EXPECT_FALSE(
      ExtractStructures({}, resolver_, Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), bad)
          .ok());
}

TEST(StructureTest, SharesElementsMergeScan) {
  Structure s;
  s.elements = {2, 5, 9};
  EXPECT_TRUE(s.SharesElements({1, 5, 7}));
  EXPECT_FALSE(s.SharesElements({1, 3, 7}));
  EXPECT_FALSE(s.SharesElements({}));
}

TEST(PrefetcherFactoryTest, ValidatesContext) {
  PrefetchContext empty;
  // None works without wiring.
  EXPECT_TRUE(MakePrefetcher(PrefetchMethod::kNone, empty).ok());
  // Others need index + pool.
  EXPECT_FALSE(MakePrefetcher(PrefetchMethod::kHilbert, empty).ok());
  EXPECT_FALSE(MakePrefetcher(PrefetchMethod::kScout, empty).ok());
}

TEST(PrefetcherFactoryTest, NamesMatchMethods) {
  EXPECT_STREQ(PrefetchMethodName(PrefetchMethod::kNone), "None");
  EXPECT_STREQ(PrefetchMethodName(PrefetchMethod::kHilbert), "Hilbert");
  EXPECT_STREQ(PrefetchMethodName(PrefetchMethod::kExtrapolation),
               "Extrapolation");
  EXPECT_STREQ(PrefetchMethodName(PrefetchMethod::kScout), "SCOUT");
  EXPECT_EQ(AllPrefetchMethods().size(), 4u);
}

}  // namespace
}  // namespace scout
}  // namespace neurodb
