#include <gtest/gtest.h>

#include "neuro/morphology.h"
#include "neuro/morphology_generator.h"
#include "neuro/swc_io.h"

namespace neurodb {
namespace neuro {
namespace {

using geom::Vec3;

Section MakeSection(uint32_t id, int32_t parent, Vec3 from, Vec3 to) {
  Section s;
  s.id = id;
  s.parent = parent;
  s.points = {from, (from + to) * 0.5f, to};
  s.radii = {1.0f, 0.9f, 0.8f};
  return s;
}

TEST(MorphologyTest, AddSectionEnforcesStructure) {
  Morphology m(Vec3(0, 0, 0), 5.0f);
  EXPECT_TRUE(m.AddSection(MakeSection(0, -1, Vec3(5, 0, 0), Vec3(15, 0, 0))).ok());
  // Wrong id.
  EXPECT_TRUE(m.AddSection(MakeSection(5, -1, Vec3(0, 0, 0), Vec3(1, 0, 0)))
                  .IsInvalidArgument());
  // Missing parent.
  EXPECT_TRUE(m.AddSection(MakeSection(1, 9, Vec3(0, 0, 0), Vec3(1, 0, 0)))
                  .IsInvalidArgument());
  // Too few points.
  Section degenerate;
  degenerate.id = 1;
  degenerate.points = {Vec3(0, 0, 0)};
  degenerate.radii = {1.0f};
  EXPECT_TRUE(m.AddSection(degenerate).IsInvalidArgument());
}

TEST(MorphologyTest, CountsAndLength) {
  Morphology m(Vec3(0, 0, 0), 5.0f);
  ASSERT_TRUE(
      m.AddSection(MakeSection(0, -1, Vec3(5, 0, 0), Vec3(15, 0, 0))).ok());
  ASSERT_TRUE(
      m.AddSection(MakeSection(1, 0, Vec3(15, 0, 0), Vec3(15, 10, 0))).ok());
  EXPECT_EQ(m.NumSections(), 2u);
  EXPECT_EQ(m.NumSegments(), 4u);  // 2 per section
  EXPECT_DOUBLE_EQ(m.TotalLength(), 20.0);
}

TEST(MorphologyTest, ChildrenAndTerminals) {
  Morphology m(Vec3(0, 0, 0), 5.0f);
  ASSERT_TRUE(m.AddSection(MakeSection(0, -1, Vec3(5, 0, 0), Vec3(15, 0, 0))).ok());
  ASSERT_TRUE(m.AddSection(MakeSection(1, 0, Vec3(15, 0, 0), Vec3(20, 5, 0))).ok());
  ASSERT_TRUE(m.AddSection(MakeSection(2, 0, Vec3(15, 0, 0), Vec3(20, -5, 0))).ok());
  EXPECT_EQ(m.ChildrenOf(0), (std::vector<uint32_t>{1, 2}));
  EXPECT_TRUE(m.ChildrenOf(1).empty());
  EXPECT_EQ(m.Terminals(), (std::vector<uint32_t>{1, 2}));
}

TEST(MorphologyTest, ValidateDetectsDetachedChild) {
  Morphology m(Vec3(0, 0, 0), 5.0f);
  ASSERT_TRUE(m.AddSection(MakeSection(0, -1, Vec3(5, 0, 0), Vec3(15, 0, 0))).ok());
  ASSERT_TRUE(
      m.AddSection(MakeSection(1, 0, Vec3(50, 50, 50), Vec3(60, 50, 50))).ok());
  EXPECT_TRUE(m.Validate().IsCorruption());
}

TEST(MorphologyTest, TranslateMovesEverything) {
  Morphology m(Vec3(0, 0, 0), 5.0f);
  ASSERT_TRUE(m.AddSection(MakeSection(0, -1, Vec3(5, 0, 0), Vec3(15, 0, 0))).ok());
  geom::Aabb before = m.Bounds();
  m.Translate(Vec3(10, 20, 30));
  geom::Aabb after = m.Bounds();
  EXPECT_NEAR(after.min.x - before.min.x, 10.0f, 1e-4);
  EXPECT_NEAR(after.max.y - before.max.y, 20.0f, 1e-4);
  EXPECT_EQ(m.soma_center(), Vec3(10, 20, 30));
}

TEST(MorphologyGeneratorTest, DeterministicForSameSeed) {
  MorphologyParams params = MorphologyParams::Pyramidal();
  MorphologyGenerator g1(params, 777);
  MorphologyGenerator g2(params, 777);
  Morphology a = g1.Generate(Vec3(10, 10, 10));
  Morphology b = g2.Generate(Vec3(10, 10, 10));
  ASSERT_EQ(a.NumSections(), b.NumSections());
  ASSERT_EQ(a.NumSegments(), b.NumSegments());
  for (size_t i = 0; i < a.NumSections(); ++i) {
    ASSERT_EQ(a.section(i).points.size(), b.section(i).points.size());
    for (size_t k = 0; k < a.section(i).points.size(); ++k) {
      ASSERT_EQ(a.section(i).points[k], b.section(i).points[k]);
    }
  }
}

TEST(MorphologyGeneratorTest, DifferentSeedsDiffer) {
  MorphologyParams params = MorphologyParams::Pyramidal();
  Morphology a = MorphologyGenerator(params, 1).Generate(Vec3(0, 0, 0));
  Morphology b = MorphologyGenerator(params, 2).Generate(Vec3(0, 0, 0));
  // Extremely unlikely to coincide.
  EXPECT_NE(a.NumSegments(), b.NumSegments());
}

TEST(MorphologyGeneratorTest, GeneratedMorphologyIsValid) {
  for (uint64_t seed : {1u, 7u, 42u, 1234u}) {
    Morphology m = MorphologyGenerator(MorphologyParams::Pyramidal(), seed)
                       .Generate(Vec3(100, 100, 100));
    EXPECT_TRUE(m.Validate().ok()) << "seed " << seed;
    EXPECT_GT(m.NumSections(), 3u);
    EXPECT_GT(m.NumSegments(), 30u);
    EXPECT_GT(m.TotalLength(), 100.0);
  }
}

TEST(MorphologyGeneratorTest, HasAxonAndDendrites) {
  Morphology m = MorphologyGenerator(MorphologyParams::Pyramidal(), 5)
                     .Generate(Vec3(0, 0, 0));
  bool axon = false;
  bool dendrite = false;
  bool apical = false;
  for (const auto& s : m.sections()) {
    if (s.type == SectionType::kAxon) axon = true;
    if (s.type == SectionType::kBasalDendrite) dendrite = true;
    if (s.type == SectionType::kApicalDendrite) apical = true;
  }
  EXPECT_TRUE(axon);
  EXPECT_TRUE(dendrite);
  EXPECT_TRUE(apical);
}

TEST(MorphologyGeneratorTest, RespectsExtentLimit) {
  MorphologyParams params = MorphologyParams::Interneuron();
  params.extent_limit = 80.0f;
  Morphology m = MorphologyGenerator(params, 9).Generate(Vec3(0, 0, 0));
  geom::Aabb b = m.Bounds();
  // Growth stops shortly after the limit; one segment of slack plus the
  // axon factor.
  float slack = params.extent_limit * params.axon_length_factor +
                3 * params.segment_length_mean * params.axon_length_factor;
  EXPECT_LT(b.Extent().Norm(), 2.0 * slack);
}

TEST(SwcIoTest, RoundTripPreservesGeometry) {
  Morphology original =
      MorphologyGenerator(MorphologyParams::Interneuron(), 31)
          .Generate(Vec3(50, 60, 70));
  std::string text = ToSwcString(original);
  auto parsed = FromSwcString(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->NumSections(), original.NumSections());
  EXPECT_EQ(parsed->NumSegments(), original.NumSegments());
  EXPECT_EQ(parsed->soma_center(), original.soma_center());
  EXPECT_FLOAT_EQ(parsed->soma_radius(), original.soma_radius());
  EXPECT_NEAR(parsed->TotalLength(), original.TotalLength(), 1e-2);
  EXPECT_TRUE(parsed->Validate().ok());
}

TEST(SwcIoTest, ParsesCommentsAndRejectsGarbage) {
  EXPECT_FALSE(FromSwcString("# only a comment\n").ok());
  EXPECT_FALSE(FromSwcString("1 2 not numbers here x y\n").ok());
  // Minimal valid file: a soma and one two-point neurite.
  const char* text =
      "# comment\n"
      "1 1 0 0 0 5.0 -1\n"
      "2 3 5 0 0 1.0 1\n"
      "3 3 10 0 0 0.8 2\n";
  auto m = FromSwcString(text);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->NumSections(), 1u);
  EXPECT_EQ(m->NumSegments(), 1u);
}

TEST(SwcIoTest, RejectsMissingParent) {
  const char* text =
      "1 1 0 0 0 5.0 -1\n"
      "2 3 5 0 0 1.0 99\n";
  EXPECT_FALSE(FromSwcString(text).ok());
}

}  // namespace
}  // namespace neuro
}  // namespace neurodb
