// Tests of the parallel execution subsystem: ThreadPool task/future
// semantics, graceful shutdown and exception safety; PartitionLanes
// determinism; ParallelExecutor inline-vs-pooled equivalence; and the
// engine-level acceptance property — ExecuteBatch with num_threads > 1 is
// byte-identical (results and per-query stats, in request order) to the
// serial path on a seeded 1000-query mixed workload, and deterministic
// under repeated runs.

#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "diff_harness.h"
#include "exec/parallel_executor.h"
#include "neuro/circuit_generator.h"

namespace neurodb {
namespace exec {
namespace {

// --------------------------------------------------------------------------
// ThreadPool
// --------------------------------------------------------------------------

TEST(ThreadPoolTest, SubmitReturnsResultsThroughFutures) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);

  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  // Queue far more slow tasks than workers, destroy the pool immediately,
  // and verify that every task still ran: graceful shutdown completes the
  // queue instead of abandoning it.
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      }));
    }
  }  // ~ThreadPool joins after draining
  EXPECT_EQ(ran.load(), 32);
  for (auto& future : futures) {
    EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

TEST(ThreadPoolTest, ExceptionsTravelThroughFuturesAndPoolSurvives) {
  ThreadPool pool(2);
  auto bad = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task is still alive and serving.
  EXPECT_EQ(pool.Submit([] { return 11; }).get(), 11);
}

TEST(ThreadPoolTest, InWorkerIsTrueOnlyOnWorkerThreads) {
  EXPECT_FALSE(ThreadPool::InWorker());
  ThreadPool pool(1);
  EXPECT_TRUE(pool.Submit([] { return ThreadPool::InWorker(); }).get());
  EXPECT_FALSE(ThreadPool::InWorker());
}

// --------------------------------------------------------------------------
// PartitionLanes
// --------------------------------------------------------------------------

TEST(PartitionLanesTest, CoversRangeContiguouslyAndNearEvenly) {
  for (size_t n : {1u, 2u, 7u, 100u, 1001u}) {
    for (size_t lanes : {1u, 2u, 3u, 8u, 200u}) {
      auto parts = PartitionLanes(n, lanes);
      ASSERT_EQ(parts.size(), std::min(n, lanes));
      size_t expect_begin = 0;
      size_t min_len = n, max_len = 0;
      for (size_t i = 0; i < parts.size(); ++i) {
        EXPECT_EQ(parts[i].lane, i);
        EXPECT_EQ(parts[i].begin, expect_begin);
        ASSERT_GT(parts[i].size(), 0u);
        min_len = std::min(min_len, parts[i].size());
        max_len = std::max(max_len, parts[i].size());
        expect_begin = parts[i].end;
      }
      EXPECT_EQ(expect_begin, n);
      EXPECT_LE(max_len - min_len, 1u);
    }
  }
  EXPECT_TRUE(PartitionLanes(0, 4).empty());
}

// --------------------------------------------------------------------------
// ParallelExecutor
// --------------------------------------------------------------------------

TEST(ParallelExecutorTest, PooledAndInlineRunsProduceTheSameOutput) {
  const size_t n = 103;
  std::vector<int> input(n);
  std::iota(input.begin(), input.end(), 0);

  auto run = [&](ThreadPool* pool, size_t lanes) {
    std::vector<int> out(n, -1);
    ParallelExecutor executor(pool);
    Status status = executor.Run(
        PartitionLanes(n, lanes), [&](const LaneRange& lane) {
          for (size_t i = lane.begin; i < lane.end; ++i) {
            out[i] = input[i] * 3;
          }
          return Status::OK();
        });
    EXPECT_TRUE(status.ok());
    return out;
  };

  std::vector<int> inline_out = run(nullptr, 4);
  ThreadPool pool(4);
  std::vector<int> pooled_out = run(&pool, 4);
  EXPECT_EQ(inline_out, pooled_out);
}

TEST(ParallelExecutorTest, ReportsFirstFailingLaneInLaneOrder) {
  ThreadPool pool(4);
  ParallelExecutor executor(&pool);
  std::atomic<int> ran{0};
  Status status = executor.Run(
      PartitionLanes(8, 8), [&](const LaneRange& lane) {
        ran.fetch_add(1);
        if (lane.lane == 2 || lane.lane == 5) {
          return Status::InvalidArgument("lane " +
                                         std::to_string(lane.lane));
        }
        return Status::OK();
      });
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.ToString().find("lane 2"), std::string::npos);
  EXPECT_EQ(ran.load(), 8);  // every lane ran despite the failures
}

TEST(ParallelExecutorTest, LaneExceptionsBecomeInternalStatus) {
  ThreadPool pool(2);
  ParallelExecutor executor(&pool);
  Status status = executor.Run(
      PartitionLanes(4, 4), [&](const LaneRange& lane) -> Status {
        if (lane.lane == 1) throw std::runtime_error("boom");
        return Status::OK();
      });
  EXPECT_TRUE(status.IsInternal());
  EXPECT_NE(status.ToString().find("boom"), std::string::npos);
}

TEST(ParallelExecutorTest, NestedRunFromWorkerFallsBackInline) {
  // A fan-out issued from inside a pool task must not block on pool
  // capacity — with one worker this would deadlock if it did.
  ThreadPool pool(1);
  ParallelExecutor outer(&pool);
  Status status = outer.Run(PartitionLanes(1, 1), [&](const LaneRange&) {
    ParallelExecutor inner(&pool);
    return inner.Run(PartitionLanes(4, 4),
                     [](const LaneRange&) { return Status::OK(); });
  });
  EXPECT_TRUE(status.ok());
}

// --------------------------------------------------------------------------
// Engine acceptance: serial vs parallel ExecuteBatch
// --------------------------------------------------------------------------

neuro::Circuit MakeCircuit(uint32_t neurons, uint64_t seed) {
  neuro::CircuitParams params;
  params.num_neurons = neurons;
  params.seed = seed;
  auto circuit = neuro::CircuitGenerator(params).Generate();
  EXPECT_TRUE(circuit.ok());
  return std::move(circuit).value();
}

engine::EngineOptions BatchOptions(size_t num_threads) {
  engine::EngineOptions options;
  options.flat.elems_per_page = 64;
  options.grid.elems_per_page = 64;
  options.num_threads = num_threads;
  return options;
}

// The acceptance run: a seeded 1000-query mixed Range/Knn workload executed
// as one cold batch against every backend, serially and with four worker
// threads — byte-identical reports, request order preserved. Scaled up by
// the nightly registration through NEURODB_DIFF_QUERIES.
TEST(ParallelBatchTest, ParallelBatchIsByteIdenticalToSerial) {
  neuro::Circuit circuit = MakeCircuit(12, 7);
  engine::QueryEngine serial_db(BatchOptions(1));
  engine::QueryEngine parallel_db(BatchOptions(4));
  ASSERT_TRUE(serial_db.LoadCircuit(circuit).ok());
  ASSERT_TRUE(parallel_db.LoadCircuit(circuit).ok());
  ASSERT_NE(parallel_db.thread_pool(), nullptr);
  geom::ElementVec elements = circuit.FlattenSegments().Elements();

  neuro::MixedWorkloadOptions options;
  options.knn_fraction = 0.35;
  size_t queries = ::neurodb::testing::EnvOr("NEURODB_DIFF_QUERIES", 1000);
  ::neurodb::testing::DiffOutcome outcome = ::neurodb::testing::RunBatchParity(
      &serial_db, &parallel_db, elements, options, queries,
      ::neurodb::testing::EnvOr("NEURODB_DIFF_SEED", 20260730));
  EXPECT_FALSE(outcome.diverged) << outcome.Summary();
  EXPECT_EQ(outcome.queries_run, queries);
  EXPECT_GT(outcome.ranges, 0u);
  EXPECT_GT(outcome.knns, 0u);
}

// Scheduling must never leak into the output: the same batch through the
// same multi-threaded engine twice is bit-identical, including per-query
// stats and the lane-merged aggregate.
TEST(ParallelBatchTest, RepeatedParallelRunsAreDeterministic) {
  neuro::Circuit circuit = MakeCircuit(10, 19);
  engine::QueryEngine db(BatchOptions(4));
  ASSERT_TRUE(db.LoadCircuit(circuit).ok());
  geom::ElementVec elements = circuit.FlattenSegments().Elements();

  neuro::MixedWorkloadOptions options;
  options.knn_fraction = 0.4;
  std::vector<neuro::WorkloadQuery> workload =
      neuro::MixedWorkload(db.domain(), elements, options, 200, 23);
  // Warm requests: lanes share pool state *within* the run — the adversarial
  // case for determinism across runs.
  std::vector<engine::QueryRequest> batch;
  for (neuro::WorkloadQuery& query : workload) {
    if (query.kind == neuro::QueryKind::kRange) {
      engine::RangeRequest request;
      request.box = query.box;
      request.cache = engine::CachePolicy::kWarm;
      batch.emplace_back(request);
    } else if (query.kind == neuro::QueryKind::kKnn) {
      engine::KnnRequest request;
      request.point = query.point;
      request.k = query.k;
      request.cache = engine::CachePolicy::kWarm;
      batch.emplace_back(request);
    }
  }

  auto first = db.ExecuteBatch(std::span<const engine::QueryRequest>(batch));
  auto second = db.ExecuteBatch(std::span<const engine::QueryRequest>(batch));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->reports.size(), second->reports.size());
  EXPECT_GT(first->aggregate.lanes, 1u);
  EXPECT_EQ(first->aggregate.pages_read, second->aggregate.pages_read);
  EXPECT_EQ(first->aggregate.time_us, second->aggregate.time_us);
  EXPECT_EQ(first->aggregate.critical_path_us,
            second->aggregate.critical_path_us);
  EXPECT_EQ(first->aggregate.pool_hits, second->aggregate.pool_hits);
  for (size_t i = 0; i < first->reports.size(); ++i) {
    ASSERT_EQ(first->reports[i].index(), second->reports[i].index());
    if (const auto* a =
            std::get_if<engine::RangeReport>(&first->reports[i])) {
      const auto& b = std::get<engine::RangeReport>(second->reports[i]);
      EXPECT_EQ(a->results, b.results) << "request " << i;
      EXPECT_TRUE(::neurodb::testing::SameRows(a->rows, b.rows))
          << "request " << i;
    } else {
      const auto& a_knn = std::get<engine::KnnReport>(first->reports[i]);
      const auto& b_knn = std::get<engine::KnnReport>(second->reports[i]);
      EXPECT_EQ(a_knn.hits, b_knn.hits) << "request " << i;
      EXPECT_TRUE(::neurodb::testing::SameRows(a_knn.rows, b_knn.rows))
          << "request " << i;
    }
  }
}

// The aggregate invariants of the lane merge: time_us is the sum of lane
// clocks, critical_path_us the slowest lane, and both reduce to the serial
// reading when there is one lane.
TEST(ParallelBatchTest, AggregateTracksLanesAndCriticalPath) {
  neuro::Circuit circuit = MakeCircuit(8, 31);
  engine::QueryEngine db(BatchOptions(3));
  ASSERT_TRUE(db.LoadCircuit(circuit).ok());

  auto boxes = neuro::DataCenteredQueries(
      circuit.FlattenSegments().Elements(), 30.0f, 9, 41);
  std::vector<engine::RangeRequest> batch;
  for (const geom::Aabb& box : boxes) {
    engine::RangeRequest request;
    request.box = box;
    request.backend = engine::BackendChoice::kFlat;
    batch.push_back(request);
  }
  auto result = db.ExecuteBatch(batch);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->aggregate.lanes, 3u);
  EXPECT_GE(result->aggregate.time_us, result->aggregate.critical_path_us);
  EXPECT_GT(result->aggregate.critical_path_us, 0u);
  // Three near-equal lanes: the critical path cannot exceed the total but
  // must cover at least a lane's share of it.
  EXPECT_GE(result->aggregate.critical_path_us,
            result->aggregate.time_us / 3);
}

}  // namespace
}  // namespace exec
}  // namespace neurodb
