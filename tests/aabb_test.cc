#include "geom/aabb.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace neurodb {
namespace geom {
namespace {

TEST(AabbTest, DefaultIsEmpty) {
  Aabb box;
  EXPECT_TRUE(box.IsEmpty());
  EXPECT_FALSE(box.IsValid());
  EXPECT_DOUBLE_EQ(box.Volume(), 0.0);
  EXPECT_DOUBLE_EQ(box.SurfaceArea(), 0.0);
  EXPECT_DOUBLE_EQ(box.Margin(), 0.0);
}

TEST(AabbTest, FromPointIsDegenerateButValid) {
  Aabb box = Aabb::FromPoint(Vec3(1, 2, 3));
  EXPECT_TRUE(box.IsValid());
  EXPECT_DOUBLE_EQ(box.Volume(), 0.0);
  EXPECT_TRUE(box.Contains(Vec3(1, 2, 3)));
}

TEST(AabbTest, CubeCenterAndExtent) {
  Aabb box = Aabb::Cube(Vec3(10, 10, 10), 4.0f);
  EXPECT_EQ(box.Center(), Vec3(10, 10, 10));
  EXPECT_EQ(box.Extent(), Vec3(4, 4, 4));
  EXPECT_DOUBLE_EQ(box.Volume(), 64.0);
  EXPECT_DOUBLE_EQ(box.SurfaceArea(), 96.0);
  EXPECT_DOUBLE_EQ(box.Margin(), 12.0);
}

TEST(AabbTest, ExtendGrowsToCoverPoints) {
  Aabb box;
  box.Extend(Vec3(0, 0, 0));
  box.Extend(Vec3(2, -1, 3));
  EXPECT_EQ(box.min, Vec3(0, -1, 0));
  EXPECT_EQ(box.max, Vec3(2, 0, 3));
}

TEST(AabbTest, ExtendWithEmptyBoxIsIdentity) {
  Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  Aabb copy = box;
  box.Extend(Aabb());
  EXPECT_EQ(box, copy);
}

TEST(AabbTest, UnionCoversBoth) {
  Aabb a(Vec3(0, 0, 0), Vec3(1, 1, 1));
  Aabb b(Vec3(2, 2, 2), Vec3(3, 3, 3));
  Aabb u = Aabb::Union(a, b);
  EXPECT_TRUE(u.Contains(a));
  EXPECT_TRUE(u.Contains(b));
}

TEST(AabbTest, IntersectionOfDisjointIsEmpty) {
  Aabb a(Vec3(0, 0, 0), Vec3(1, 1, 1));
  Aabb b(Vec3(2, 2, 2), Vec3(3, 3, 3));
  EXPECT_TRUE(Aabb::Intersection(a, b).IsEmpty());
  EXPECT_FALSE(a.Intersects(b));
}

TEST(AabbTest, TouchingBoxesIntersect) {
  Aabb a(Vec3(0, 0, 0), Vec3(1, 1, 1));
  Aabb b(Vec3(1, 0, 0), Vec3(2, 1, 1));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_DOUBLE_EQ(Aabb::Intersection(a, b).Volume(), 0.0);
}

TEST(AabbTest, ContainsPointBoundaryInclusive) {
  Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  EXPECT_TRUE(box.Contains(Vec3(0, 0, 0)));
  EXPECT_TRUE(box.Contains(Vec3(1, 1, 1)));
  EXPECT_TRUE(box.Contains(Vec3(0.5f, 0.5f, 0.5f)));
  EXPECT_FALSE(box.Contains(Vec3(1.01f, 0.5f, 0.5f)));
}

TEST(AabbTest, ContainsBox) {
  Aabb outer(Vec3(0, 0, 0), Vec3(10, 10, 10));
  Aabb inner(Vec3(1, 1, 1), Vec3(2, 2, 2));
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
  EXPECT_FALSE(outer.Contains(Aabb()));  // empty box is not contained
}

TEST(AabbTest, ExpandedGrowsSymmetrically) {
  Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  Aabb e = box.Expanded(0.5f);
  EXPECT_EQ(e.min, Vec3(-0.5f, -0.5f, -0.5f));
  EXPECT_EQ(e.max, Vec3(1.5f, 1.5f, 1.5f));
  EXPECT_TRUE(Aabb().Expanded(1.0f).IsEmpty());
}

TEST(AabbTest, DistanceToPoint) {
  Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  EXPECT_DOUBLE_EQ(box.SquaredDistanceTo(Vec3(0.5f, 0.5f, 0.5f)), 0.0);
  EXPECT_DOUBLE_EQ(box.SquaredDistanceTo(Vec3(2, 0.5f, 0.5f)), 1.0);
  EXPECT_DOUBLE_EQ(box.SquaredDistanceTo(Vec3(2, 2, 0.5f)), 2.0);
}

TEST(AabbTest, DistanceBetweenBoxes) {
  Aabb a(Vec3(0, 0, 0), Vec3(1, 1, 1));
  Aabb b(Vec3(3, 0, 0), Vec3(4, 1, 1));
  EXPECT_DOUBLE_EQ(a.SquaredDistanceTo(b), 4.0);
  Aabb c(Vec3(0.5f, 0.5f, 0.5f), Vec3(2, 2, 2));
  EXPECT_DOUBLE_EQ(a.SquaredDistanceTo(c), 0.0);
}

TEST(AabbTest, EnlargementMetric) {
  Aabb base(Vec3(0, 0, 0), Vec3(1, 1, 1));
  Aabb inside(Vec3(0.2f, 0.2f, 0.2f), Vec3(0.8f, 0.8f, 0.8f));
  EXPECT_DOUBLE_EQ(Enlargement(base, inside), 0.0);
  Aabb outside(Vec3(0, 0, 0), Vec3(2, 1, 1));
  EXPECT_DOUBLE_EQ(Enlargement(base, outside), 1.0);
}

TEST(AabbTest, OverlapVolume) {
  Aabb a(Vec3(0, 0, 0), Vec3(2, 2, 2));
  Aabb b(Vec3(1, 1, 1), Vec3(3, 3, 3));
  EXPECT_DOUBLE_EQ(OverlapVolume(a, b), 1.0);
  EXPECT_DOUBLE_EQ(OverlapVolume(a, Aabb(Vec3(5, 5, 5), Vec3(6, 6, 6))), 0.0);
}

// Property sweep: intersection symmetry and containment coherence on random
// boxes.
TEST(AabbPropertyTest, RandomBoxesSymmetryAndCoherence) {
  Pcg32 rng(7);
  auto random_box = [&]() {
    Vec3 a(static_cast<float>(rng.Uniform(-10, 10)),
           static_cast<float>(rng.Uniform(-10, 10)),
           static_cast<float>(rng.Uniform(-10, 10)));
    Vec3 b(static_cast<float>(rng.Uniform(-10, 10)),
           static_cast<float>(rng.Uniform(-10, 10)),
           static_cast<float>(rng.Uniform(-10, 10)));
    return Aabb(Min(a, b), Max(a, b));
  };
  for (int i = 0; i < 500; ++i) {
    Aabb a = random_box();
    Aabb b = random_box();
    ASSERT_EQ(a.Intersects(b), b.Intersects(a));
    ASSERT_EQ(!Aabb::Intersection(a, b).IsEmpty() ||
                  a.SquaredDistanceTo(b) == 0.0,
              a.Intersects(b));
    Aabb u = Aabb::Union(a, b);
    ASSERT_TRUE(u.Contains(a));
    ASSERT_TRUE(u.Contains(b));
    ASSERT_GE(u.Volume() + 1e-9, a.Volume());
    ASSERT_GE(u.Volume() + 1e-9, b.Volume());
  }
}

}  // namespace
}  // namespace geom
}  // namespace neurodb
