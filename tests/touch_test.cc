#include "touch/spatial_join.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "neuro/workload.h"

namespace neurodb {
namespace touch {
namespace {

using geom::Aabb;
using geom::ElementId;
using geom::Segment;
using geom::Vec3;

JoinInput TinyA() {
  // Three unit boxes along x at 0, 10, 20.
  geom::ElementVec elems;
  elems.emplace_back(100, Aabb::Cube(Vec3(0, 0, 0), 1));
  elems.emplace_back(101, Aabb::Cube(Vec3(10, 0, 0), 1));
  elems.emplace_back(102, Aabb::Cube(Vec3(20, 0, 0), 1));
  return JoinInput::FromElements(elems);
}

JoinInput TinyB() {
  // One box near a[0], one between a[1] and a[2], one far away.
  geom::ElementVec elems;
  elems.emplace_back(200, Aabb::Cube(Vec3(1.5f, 0, 0), 1));
  elems.emplace_back(201, Aabb::Cube(Vec3(15, 0, 0), 1));
  elems.emplace_back(202, Aabb::Cube(Vec3(500, 0, 0), 1));
  return JoinInput::FromElements(elems);
}

std::vector<JoinPair> Sorted(std::vector<JoinPair> pairs) {
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

class JoinMethodTest : public ::testing::TestWithParam<JoinMethod> {};

TEST_P(JoinMethodTest, TinyCaseExactPairs) {
  JoinOptions options;
  options.epsilon = 1.0f;  // a expanded by 1: reach 1.5 around each center
  auto result = RunJoin(GetParam(), TinyA(), TinyB(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // a0 [-0.5,0.5] expanded -> [-1.5,1.5]; b0 [1,2] -> intersects.
  // Nothing reaches b1 at [14.5,15.5] (a1 expanded ends at 11.5,
  // a2 expanded starts at 18.5). b2 is far away.
  std::vector<JoinPair> expected = {{100, 200}};
  EXPECT_EQ(Sorted(result->pairs), expected) << JoinMethodName(GetParam());
  EXPECT_EQ(result->stats.results, 1u);
}

TEST_P(JoinMethodTest, EmptyInputsYieldEmptyResult) {
  JoinOptions options;
  JoinInput empty;
  auto r1 = RunJoin(GetParam(), empty, TinyB(), options);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->pairs.empty());
  auto r2 = RunJoin(GetParam(), TinyA(), empty, options);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->pairs.empty());
}

TEST_P(JoinMethodTest, EpsilonZeroMeansBoxIntersection) {
  JoinOptions options;
  options.epsilon = 0.0f;
  geom::ElementVec ea;
  ea.emplace_back(1, Aabb::Cube(Vec3(0, 0, 0), 2));
  geom::ElementVec eb;
  eb.emplace_back(2, Aabb::Cube(Vec3(1, 0, 0), 2));  // overlaps
  eb.emplace_back(3, Aabb::Cube(Vec3(5, 0, 0), 2));  // disjoint
  auto result = RunJoin(GetParam(), JoinInput::FromElements(ea),
                        JoinInput::FromElements(eb), options);
  ASSERT_TRUE(result.ok());
  std::vector<JoinPair> expected = {{1, 2}};
  EXPECT_EQ(Sorted(result->pairs), expected);
}

TEST_P(JoinMethodTest, RefinementPrunesCornerPairs) {
  // Two orthogonal segments whose boxes overlap but whose capsules stay
  // farther apart than epsilon: the filter passes, refinement must reject.
  std::vector<Segment> sa = {Segment(Vec3(0, 0, 0), Vec3(10, 0, 0), 0.1f)};
  std::vector<Segment> sb = {Segment(Vec3(9, 3, 3), Vec3(12, 3, 3), 0.1f)};
  JoinInput a = JoinInput::FromSegments(sa, {7});
  JoinInput b = JoinInput::FromSegments(sb, {8});
  JoinOptions options;
  options.epsilon = 3.0f;
  options.refine = true;
  auto refined = RunJoin(GetParam(), a, b, options);
  ASSERT_TRUE(refined.ok());
  // Capsule distance: centerlines are sqrt(18)-ish apart at closest, minus
  // radii 0.2 => > 3.
  EXPECT_TRUE(refined->pairs.empty());

  options.refine = false;
  auto filter_only = RunJoin(GetParam(), a, b, options);
  ASSERT_TRUE(filter_only.ok());
  EXPECT_EQ(filter_only->pairs.size(), 1u);
}

TEST_P(JoinMethodTest, StatsArePopulated) {
  JoinOptions options;
  options.epsilon = 2.0f;
  neuro::SegmentDataset da = neuro::UniformSegments(
      400, Aabb(Vec3(0, 0, 0), Vec3(50, 50, 50)), 4, 1, 0.3f, 1);
  neuro::SegmentDataset db = neuro::UniformSegments(
      400, Aabb(Vec3(0, 0, 0), Vec3(50, 50, 50)), 4, 1, 0.3f, 2);
  auto result = RunJoin(GetParam(),
                        JoinInput::FromSegments(da.segments, da.ids),
                        JoinInput::FromSegments(db.segments, db.ids), options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->pairs.size(), 0u);
  EXPECT_GT(result->stats.mbr_tests, 0u);
  EXPECT_GT(result->stats.refine_tests, 0u);
  EXPECT_GT(result->stats.total_ns, 0u);
  EXPECT_GT(result->stats.peak_bytes, 0u);
  EXPECT_EQ(result->stats.results, result->pairs.size());
}

INSTANTIATE_TEST_SUITE_P(AllMethods, JoinMethodTest,
                         ::testing::ValuesIn(AllJoinMethods()),
                         [](const auto& info) {
                           return JoinMethodName(info.param);
                         });

TEST(JoinInputTest, FromSegmentsDerivesBounds) {
  std::vector<Segment> segs = {Segment(Vec3(0, 0, 0), Vec3(4, 0, 0), 0.5f)};
  JoinInput in = JoinInput::FromSegments(segs, {42});
  ASSERT_EQ(in.size(), 1u);
  EXPECT_TRUE(in.HasGeometry());
  EXPECT_EQ(in.boxes[0], segs[0].Bounds());
  EXPECT_TRUE(in.Validate().ok());
}

TEST(JoinInputTest, ValidationCatchesMismatches) {
  JoinInput bad;
  bad.boxes.push_back(Aabb::Cube(Vec3(0, 0, 0), 1));
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());  // ids missing
  bad.ids.push_back(1);
  EXPECT_TRUE(bad.Validate().ok());
  bad.boxes.push_back(Aabb());  // empty box
  bad.ids.push_back(2);
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
}

TEST(JoinOptionsTest, ValidationRules) {
  JoinOptions ok;
  EXPECT_TRUE(ok.Validate().ok());
  JoinOptions bad = ok;
  bad.epsilon = -1.0f;
  EXPECT_FALSE(bad.Validate().ok());
  bad = ok;
  bad.touch_fanout = 1;
  EXPECT_FALSE(bad.Validate().ok());
  bad = ok;
  bad.touch_leaf = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = ok;
  bad.s3_fanout = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = ok;
  bad.pbsm_max_cells_per_dim = 0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(TouchJoinTest, FiltersObjectsInEmptySpace) {
  // A-data occupies two far-apart clusters; B objects in the void between
  // them must be filtered without any pairwise comparisons.
  // 64 elements per cluster with 32-entry leaves: STR slabs split the two
  // clusters exactly, so no leaf MBR bridges the void between them.
  geom::ElementVec ea;
  for (int i = 0; i < 64; ++i) {
    ea.emplace_back(i, Aabb::Cube(Vec3(0, 0, static_cast<float>(i)), 1));
    ea.emplace_back(1000 + i,
                    Aabb::Cube(Vec3(100, 0, static_cast<float>(i)), 1));
  }
  geom::ElementVec eb;
  eb.emplace_back(5000, Aabb::Cube(Vec3(50, 0, 25), 1));   // void
  eb.emplace_back(5001, Aabb::Cube(Vec3(-50, 0, 25), 1));  // outside
  JoinOptions options;
  options.epsilon = 1.0f;
  options.touch_fanout = 4;
  options.touch_leaf = 32;
  auto result = TouchJoin(JoinInput::FromElements(ea),
                          JoinInput::FromElements(eb), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->pairs.empty());
  EXPECT_EQ(result->stats.filtered, 2u);
  EXPECT_EQ(result->stats.mbr_tests, 0u);  // never reached a leaf entry
}

TEST(TouchJoinTest, PhaseTimingsAreRecorded) {
  neuro::SegmentDataset da = neuro::UniformSegments(
      1000, Aabb(Vec3(0, 0, 0), Vec3(60, 60, 60)), 4, 1, 0.3f, 3);
  neuro::SegmentDataset db = neuro::UniformSegments(
      1000, Aabb(Vec3(0, 0, 0), Vec3(60, 60, 60)), 4, 1, 0.3f, 4);
  JoinOptions options;
  auto result = TouchJoin(JoinInput::FromSegments(da.segments, da.ids),
                          JoinInput::FromSegments(db.segments, db.ids),
                          options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.build_ns, 0u);
  EXPECT_GT(result->stats.assign_ns, 0u);
  EXPECT_GT(result->stats.probe_ns, 0u);
  EXPECT_GE(result->stats.total_ns, result->stats.build_ns);
}

TEST(PbsmJoinTest, NoDuplicatePairsAcrossCells) {
  // Large objects spanning many grid cells are the duplicate hazard.
  geom::ElementVec ea;
  geom::ElementVec eb;
  for (int i = 0; i < 30; ++i) {
    ea.emplace_back(i, Aabb(Vec3(0, static_cast<float>(i), 0),
                            Vec3(100, static_cast<float>(i) + 5, 5)));
    eb.emplace_back(100 + i, Aabb(Vec3(static_cast<float>(i * 3), 0, 0),
                                  Vec3(static_cast<float>(i * 3) + 5, 100, 5)));
  }
  JoinOptions options;
  options.epsilon = 0.5f;
  options.pbsm_target_per_cell = 4;  // force a fine grid
  auto result = PbsmJoin(JoinInput::FromElements(ea),
                         JoinInput::FromElements(eb), options);
  ASSERT_TRUE(result.ok());
  auto pairs = Sorted(result->pairs);
  EXPECT_TRUE(std::adjacent_find(pairs.begin(), pairs.end()) == pairs.end())
      << "PBSM reported a duplicate pair";
  // Cross-hatch: every (a,b) pair intersects.
  EXPECT_EQ(pairs.size(), 30u * 30u);
}

TEST(JoinMethodNameTest, NamesAreStable) {
  EXPECT_STREQ(JoinMethodName(JoinMethod::kTouch), "TOUCH");
  EXPECT_STREQ(JoinMethodName(JoinMethod::kPbsm), "PBSM");
  EXPECT_STREQ(JoinMethodName(JoinMethod::kS3), "S3");
  EXPECT_STREQ(JoinMethodName(JoinMethod::kPlaneSweep), "PlaneSweep");
  EXPECT_STREQ(JoinMethodName(JoinMethod::kNestedLoop), "NestedLoop");
  EXPECT_EQ(AllJoinMethods().size(), 6u);
  EXPECT_STREQ(JoinMethodName(JoinMethod::kScalableSweep), "ScalableSweep");
}

}  // namespace
}  // namespace touch
}  // namespace neurodb
