#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace neurodb {
namespace {

TEST(Pcg32Test, DeterministicForSameSeed) {
  Pcg32 a(123, 7);
  Pcg32 b(123, 7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(Pcg32Test, DifferentSeedsDiffer) {
  Pcg32 a(1);
  Pcg32 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32Test, NextBoundedStaysInBounds) {
  Pcg32 rng(99);
  for (uint32_t bound : {1u, 2u, 7u, 100u, 1000000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(Pcg32Test, NextBoundedCoversAllValues) {
  Pcg32 rng(5);
  std::set<uint32_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Pcg32Test, NextDoubleInUnitInterval) {
  Pcg32 rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  // Mean of U(0,1) = 0.5; tolerance ~5 sigma.
  EXPECT_NEAR(sum / n, 0.5, 0.011);
}

TEST(Pcg32Test, UniformRespectsRange) {
  Pcg32 rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-4.0, 9.0);
    ASSERT_GE(v, -4.0);
    ASSERT_LT(v, 9.0);
  }
}

TEST(Pcg32Test, GaussianMomentsAreSane) {
  Pcg32 rng(29);
  const int n = 50000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum2 += v * v;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Pcg32Test, GaussianScaled) {
  Pcg32 rng(31);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Pcg32Test, NextBoolFrequency) {
  Pcg32 rng(41);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Pcg32Test, ForkProducesIndependentStream) {
  Pcg32 parent(55);
  Pcg32 child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextU32() == child.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace neurodb
