#include <gtest/gtest.h>

#include "neuro/circuit.h"
#include "neuro/circuit_generator.h"
#include "neuro/element_id.h"
#include "neuro/morphology_generator.h"

namespace neurodb {
namespace neuro {
namespace {

using geom::Vec3;

CircuitParams SmallParams(uint32_t n = 20, uint64_t seed = 7) {
  CircuitParams p;
  p.num_neurons = n;
  p.seed = seed;
  return p;
}

TEST(ElementIdTest, EncodeDecodeRoundTrip) {
  for (uint32_t gid : {0u, 1u, 999u, (1u << 24) - 1}) {
    for (uint32_t section : {0u, 5u, (1u << 20) - 1}) {
      for (uint32_t segment : {0u, 17u, (1u << 20) - 1}) {
        geom::ElementId id = EncodeSegmentId(gid, section, segment);
        EXPECT_EQ(GidOf(id), gid);
        EXPECT_EQ(SectionOf(id), section);
        EXPECT_EQ(SegmentOf(id), segment);
      }
    }
  }
}

TEST(ElementIdTest, DistinctTriplesGetDistinctIds) {
  EXPECT_NE(EncodeSegmentId(1, 0, 0), EncodeSegmentId(0, 1, 0));
  EXPECT_NE(EncodeSegmentId(0, 1, 0), EncodeSegmentId(0, 0, 1));
}

TEST(CircuitTest, AddNeuronAssignsGids) {
  Circuit c;
  Morphology m = MorphologyGenerator(MorphologyParams::Interneuron(), 1)
                     .Generate(Vec3(0, 0, 0));
  EXPECT_EQ(c.AddNeuron(m), 0u);
  EXPECT_EQ(c.AddNeuron(m), 1u);
  EXPECT_EQ(c.NumNeurons(), 2u);
  EXPECT_EQ(c.neuron(1).gid, 1u);
}

TEST(CircuitTest, FlattenCountsMatchMorphologies) {
  CircuitGenerator gen(SmallParams());
  auto circuit = gen.Generate();
  ASSERT_TRUE(circuit.ok());
  SegmentDataset all = circuit->FlattenSegments(NeuriteFilter::kAll);
  EXPECT_EQ(all.size(), circuit->TotalSegments());
  EXPECT_GT(all.size(), 500u);

  SegmentDataset axons = circuit->FlattenSegments(NeuriteFilter::kAxons);
  SegmentDataset dendrites =
      circuit->FlattenSegments(NeuriteFilter::kDendrites);
  EXPECT_EQ(axons.size() + dendrites.size(), all.size());
  EXPECT_GT(axons.size(), 0u);
  EXPECT_GT(dendrites.size(), 0u);
}

TEST(CircuitTest, FlattenedIdsIdentifyTheirNeuron) {
  CircuitGenerator gen(SmallParams(10, 3));
  auto circuit = gen.Generate();
  ASSERT_TRUE(circuit.ok());
  SegmentDataset all = circuit->FlattenSegments();
  for (size_t i = 0; i < all.size(); ++i) {
    uint32_t gid = GidOf(all.ids[i]);
    uint32_t section = SectionOf(all.ids[i]);
    uint32_t segment = SegmentOf(all.ids[i]);
    ASSERT_LT(gid, circuit->NumNeurons());
    const Morphology& m = circuit->neuron(gid).morphology;
    ASSERT_LT(section, m.NumSections());
    ASSERT_LT(segment, m.section(section).NumSegments());
    // The stored capsule matches the morphology's segment.
    geom::Segment expect = m.section(section).SegmentAt(segment);
    ASSERT_EQ(all.segments[i].a, expect.a);
    ASSERT_EQ(all.segments[i].b, expect.b);
  }
}

TEST(SegmentResolverTest, FindsEveryFlattenedSegment) {
  CircuitGenerator gen(SmallParams(8, 5));
  auto circuit = gen.Generate();
  ASSERT_TRUE(circuit.ok());
  SegmentDataset all = circuit->FlattenSegments();
  SegmentResolver resolver;
  resolver.AddDataset(all);
  EXPECT_EQ(resolver.size(), all.size());
  for (size_t i = 0; i < all.size(); i += 13) {
    auto seg = resolver.Find(all.ids[i]);
    ASSERT_TRUE(seg.ok());
    EXPECT_EQ(seg->a, all.segments[i].a);
  }
  EXPECT_TRUE(resolver.Find(EncodeSegmentId(9999, 0, 0)).status().IsNotFound());
}

TEST(CircuitGeneratorTest, DeterministicForSameSeed) {
  auto a = CircuitGenerator(SmallParams(15, 99)).Generate();
  auto b = CircuitGenerator(SmallParams(15, 99)).Generate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->TotalSegments(), b->TotalSegments());
  EXPECT_EQ(a->neuron(7).morphology.soma_center(),
            b->neuron(7).morphology.soma_center());
}

TEST(CircuitGeneratorTest, ValidatesParams) {
  CircuitParams bad = SmallParams();
  bad.num_neurons = 0;
  EXPECT_FALSE(CircuitGenerator(bad).Generate().ok());

  bad = SmallParams();
  bad.layer_weights.clear();
  EXPECT_FALSE(CircuitGenerator(bad).Generate().ok());

  bad = SmallParams();
  bad.layer_weights = {0.0f, 0.0f};
  EXPECT_FALSE(CircuitGenerator(bad).Generate().ok());

  bad = SmallParams();
  bad.pyramidal_fraction = 1.5f;
  EXPECT_FALSE(CircuitGenerator(bad).Generate().ok());

  bad = SmallParams();
  bad.column_size.y = -1.0f;
  EXPECT_FALSE(CircuitGenerator(bad).Generate().ok());
}

TEST(CircuitGeneratorTest, SomataRespectColumnAndLayers) {
  CircuitParams params = SmallParams(60, 11);
  CircuitGenerator gen(params);
  auto circuit = gen.Generate();
  ASSERT_TRUE(circuit.ok());
  for (const auto& neuron : circuit->neurons()) {
    const Vec3& soma = neuron.morphology.soma_center();
    EXPECT_GE(soma.x, 0.0f);
    EXPECT_LE(soma.x, params.column_size.x);
    EXPECT_GE(soma.y, 0.0f);
    EXPECT_LE(soma.y, params.column_size.y);
    EXPECT_GE(soma.z, 0.0f);
    EXPECT_LE(soma.z, params.column_size.z);
  }
}

TEST(CircuitGeneratorTest, LayerBandsPartitionTheColumn) {
  CircuitGenerator gen(SmallParams());
  float prev_hi = -1.0f;
  const size_t layers = gen.params().layer_weights.size();
  float column_height = gen.params().column_size.y;
  for (size_t l = layers; l-- > 0;) {  // bottom-up
    auto [lo, hi] = gen.LayerBand(l);
    EXPECT_LT(lo, hi);
    if (prev_hi >= 0.0f) EXPECT_FLOAT_EQ(lo, prev_hi);
    prev_hi = hi;
  }
  EXPECT_FLOAT_EQ(prev_hi, column_height);
}

TEST(CircuitGeneratorTest, LayerWeightsSkewDensity) {
  // Put almost everything in the top layer; somata must concentrate there.
  CircuitParams params = SmallParams(100, 17);
  params.layer_weights = {0.9f, 0.025f, 0.025f, 0.025f, 0.025f};
  auto circuit = CircuitGenerator(params).Generate();
  ASSERT_TRUE(circuit.ok());
  auto [lo, hi] = CircuitGenerator(params).LayerBand(0);
  size_t in_top = 0;
  for (const auto& n : circuit->neurons()) {
    float y = n.morphology.soma_center().y;
    if (y >= lo && y <= hi) ++in_top;
  }
  EXPECT_GT(in_top, 75u);
}

TEST(CircuitTest, GeneratedCircuitValidates) {
  auto circuit = CircuitGenerator(SmallParams(12, 23)).Generate();
  ASSERT_TRUE(circuit.ok());
  EXPECT_TRUE(circuit->Validate().ok());
  EXPECT_TRUE(circuit->Bounds().IsValid());
  EXPECT_GT(circuit->TotalCableLength(), 0.0);
}

}  // namespace
}  // namespace neuro
}  // namespace neurodb
