// kNN tests: brute-force ground truth on random circuits for all three
// backends, tie-breaking determinism of the shared (distance, id) order,
// and Status propagation for degenerate inputs (k == 0, k beyond the
// dataset, non-finite points) at every API boundary — backend, engine,
// session and batch.

#include "geom/knn.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "engine/query_engine.h"
#include "neuro/circuit_generator.h"
#include "neuro/workload.h"

namespace neurodb {
namespace engine {
namespace {

using geom::Aabb;
using geom::ElementId;
using geom::KnnHit;
using geom::Vec3;

neuro::Circuit MakeCircuit(uint32_t neurons, uint64_t seed) {
  neuro::CircuitParams params;
  params.num_neurons = neurons;
  params.seed = seed;
  auto circuit = neuro::CircuitGenerator(params).Generate();
  EXPECT_TRUE(circuit.ok());
  return std::move(circuit).value();
}

class KnnFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    circuit_ = MakeCircuit(10, 404);
    EngineOptions options;
    options.flat.elems_per_page = 64;
    options.grid.elems_per_page = 64;
    db_ = std::make_unique<QueryEngine>(options);
    ASSERT_TRUE(db_->LoadCircuit(circuit_).ok());
    elements_ = circuit_.FlattenSegments().Elements();
  }

  neuro::Circuit circuit_;
  std::unique_ptr<QueryEngine> db_;
  geom::ElementVec elements_;
};

// --------------------------------------------------------------------------
// Ground truth parity
// --------------------------------------------------------------------------

TEST_F(KnnFixture, AllBackendsMatchBruteForceOnRandomCircuits) {
  // Query points: on the data, uniform in the domain, and far outside it.
  std::vector<Vec3> points;
  auto anchors = neuro::DataCenteredQueries(elements_, 1.0f, 5, 17);
  for (const Aabb& box : anchors) points.push_back(box.Center());
  auto uniform = neuro::UniformQueries(db_->domain(), 1.0f, 5, 18);
  for (const Aabb& box : uniform) points.push_back(box.Center());
  Vec3 far = db_->domain().max + Vec3(500, 500, 500);
  points.push_back(far);

  for (const Vec3& p : points) {
    for (size_t k : {1u, 7u, 64u}) {
      std::vector<KnnHit> truth = geom::BruteForceKnn(elements_, p, k);
      for (BackendChoice choice :
           {BackendChoice::kFlat, BackendChoice::kRTree, BackendChoice::kGrid,
            BackendChoice::kSharded}) {
        KnnRequest request;
        request.point = p;
        request.k = k;
        request.backend = choice;
        auto report = db_->Execute(request);
        ASSERT_TRUE(report.ok()) << report.status().ToString();
        ASSERT_EQ(report->rows.size(), 1u);
        EXPECT_EQ(report->hits, truth)
            << report->rows[0].method << " diverges from brute force at ("
            << p.x << ", " << p.y << ", " << p.z << "), k=" << k;
      }
    }
  }
}

TEST_F(KnnFixture, KAllCrossChecksAllBackends) {
  auto uniform = neuro::UniformQueries(db_->domain(), 1.0f, 8, 23);
  for (const Aabb& box : uniform) {
    KnnRequest request;
    request.point = box.Center();
    request.k = 12;
    request.backend = BackendChoice::kAll;
    auto report = db_->Execute(request);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->rows.size(), 4u);
    EXPECT_EQ(report->rows[0].method, "FLAT");
    EXPECT_EQ(report->rows[1].method, "R-Tree");
    EXPECT_EQ(report->rows[2].method, "Grid");
    EXPECT_EQ(report->rows[3].method, "Sharded");
    EXPECT_TRUE(report->results_match);
    EXPECT_EQ(report->hits.size(), 12u);
    // Ascending under the shared (distance, id) order.
    for (size_t i = 1; i < report->hits.size(); ++i) {
      EXPECT_LT(report->hits[i - 1], report->hits[i]);
    }
  }
}

// --------------------------------------------------------------------------
// Tie-breaking determinism
// --------------------------------------------------------------------------

TEST(KnnTieBreakTest, EqualDistancesResolveByAscendingId) {
  // Six unit cubes at the same distance from the origin along the axes,
  // plus two distractors farther out. Any k cutting through the tie must
  // pick the lowest ids, identically in every backend.
  geom::ElementVec elements;
  float d = 10.0f;
  std::vector<Vec3> centers = {{d, 0, 0},  {-d, 0, 0}, {0, d, 0},
                               {0, -d, 0}, {0, 0, d},  {0, 0, -d}};
  for (size_t i = 0; i < centers.size(); ++i) {
    elements.emplace_back(static_cast<ElementId>(i),
                          Aabb::Cube(centers[i], 1.0f));
  }
  elements.emplace_back(100, Aabb::Cube(Vec3(3 * d, 0, 0), 1.0f));
  elements.emplace_back(101, Aabb::Cube(Vec3(0, 3 * d, 0), 1.0f));

  FlatBackend flat;
  PagedRTreeBackend rtree;
  GridBackend grid;
  ShardedBackend sharded;
  ASSERT_TRUE(flat.Build(elements).ok());
  ASSERT_TRUE(rtree.Build(elements).ok());
  ASSERT_TRUE(grid.Build(elements).ok());
  ASSERT_TRUE(sharded.Build(elements).ok());

  std::vector<SpatialBackend*> backends = {&flat, &rtree, &grid, &sharded};
  for (size_t k : {1u, 4u, 6u, 8u}) {
    std::vector<KnnHit> truth = geom::BruteForceKnn(elements, Vec3(0, 0, 0), k);
    for (SpatialBackend* backend : backends) {
      storage::PoolSet pools = backend->MakePoolSet(64);
      std::vector<KnnHit> hits;
      ASSERT_TRUE(
          backend->KnnQuery(Vec3(0, 0, 0), k, &pools, &hits).ok());
      ASSERT_EQ(hits.size(), std::min(k, elements.size()))
          << backend->name();
      EXPECT_EQ(hits, truth) << backend->name() << " k=" << k;
      // The tie block resolves to ids 0, 1, 2, ... in order.
      for (size_t i = 0; i < std::min(k, centers.size()); ++i) {
        EXPECT_EQ(hits[i].id, static_cast<ElementId>(i))
            << backend->name() << " k=" << k;
      }
    }
  }
}

// --------------------------------------------------------------------------
// Grid ring search vs the exhaustive-scan oracle
// --------------------------------------------------------------------------

TEST_F(KnnFixture, GridRingSearchMatchesScanOracle) {
  GridBackend* grid = db_->grid_backend();
  std::vector<Vec3> points;
  auto anchors = neuro::DataCenteredQueries(elements_, 1.0f, 8, 51);
  for (const Aabb& box : anchors) points.push_back(box.Center());
  auto uniform = neuro::UniformQueries(db_->domain(), 1.0f, 8, 52);
  for (const Aabb& box : uniform) points.push_back(box.Center());
  points.push_back(db_->domain().min - Vec3(300, 10, 40));  // outside
  points.push_back(db_->domain().max + Vec3(5, 700, 0));

  for (const Vec3& p : points) {
    for (size_t k : {1u, 9u, 100u}) {
      storage::PoolSet ring_pools = grid->MakePoolSet(4096);
      storage::PoolSet scan_pools = grid->MakePoolSet(4096);
      std::vector<KnnHit> ring, scan;
      RangeStats ring_stats, scan_stats;
      ASSERT_TRUE(
          grid->KnnQuery(p, k, &ring_pools, &ring, &ring_stats).ok());
      ASSERT_TRUE(
          grid->KnnScanQuery(p, k, &scan_pools, &scan, &scan_stats).ok());
      EXPECT_EQ(ring, scan) << "k=" << k << " at (" << p.x << ", " << p.y
                            << ", " << p.z << ")";
      // The ring search must never do more work than the full scan.
      EXPECT_LE(ring_stats.pages_read, scan_stats.pages_read);
      EXPECT_LE(ring_stats.elements_scanned, scan_stats.elements_scanned);
    }
  }
}

TEST_F(KnnFixture, GridRingSearchPrunesOnSmallK) {
  // For k == 1 on a data-centered point the ring search should terminate
  // after a handful of rings, well short of the whole grid.
  GridBackend* grid = db_->grid_backend();
  ASSERT_GT(grid->NumCells(), 8u);  // resolution high enough to prune
  uint64_t ring_total = 0, scan_total = 0;
  auto anchors = neuro::DataCenteredQueries(elements_, 1.0f, 10, 53);
  for (const Aabb& box : anchors) {
    storage::PoolSet ring_pools = grid->MakePoolSet(4096);
    storage::PoolSet scan_pools = grid->MakePoolSet(4096);
    std::vector<KnnHit> hits;
    RangeStats ring_stats, scan_stats;
    ASSERT_TRUE(grid->KnnQuery(box.Center(), 1, &ring_pools, &hits,
                               &ring_stats)
                    .ok());
    ASSERT_TRUE(grid->KnnScanQuery(box.Center(), 1, &scan_pools, &hits,
                                   &scan_stats)
                    .ok());
    ring_total += ring_stats.elements_scanned;
    scan_total += scan_stats.elements_scanned;
  }
  EXPECT_LT(ring_total, scan_total);
}

// --------------------------------------------------------------------------
// Degenerate inputs: Status at every boundary
// --------------------------------------------------------------------------

TEST_F(KnnFixture, EngineRejectsKZero) {
  KnnRequest request;
  request.point = db_->domain().Center();
  request.k = 0;
  EXPECT_TRUE(db_->Execute(request).status().IsInvalidArgument());
}

TEST_F(KnnFixture, EngineRejectsNonFinitePoints) {
  for (float bad : {std::numeric_limits<float>::quiet_NaN(),
                    std::numeric_limits<float>::infinity(),
                    -std::numeric_limits<float>::infinity()}) {
    KnnRequest request;
    request.point = Vec3(bad, 0, 0);
    request.k = 3;
    EXPECT_TRUE(db_->Execute(request).status().IsInvalidArgument());
    request.point = Vec3(0, bad, 0);
    EXPECT_TRUE(db_->Execute(request).status().IsInvalidArgument());
    request.point = Vec3(0, 0, bad);
    EXPECT_TRUE(db_->Execute(request).status().IsInvalidArgument());
  }
}

TEST_F(KnnFixture, KBeyondDatasetClampsToEveryElement) {
  KnnRequest request;
  request.point = db_->domain().Center();
  request.k = elements_.size() + 1000;
  request.backend = BackendChoice::kAll;
  auto report = db_->Execute(request);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->results_match);
  EXPECT_EQ(report->hits.size(), elements_.size());
}

TEST_F(KnnFixture, BatchPropagatesDegenerateKnnStatus) {
  KnnRequest bad_k;
  bad_k.point = db_->domain().Center();
  bad_k.k = 0;
  std::vector<QueryRequest> batch = {bad_k};
  EXPECT_TRUE(db_->ExecuteBatch(std::span<const QueryRequest>(batch))
                  .status()
                  .IsInvalidArgument());

  KnnRequest bad_point;
  bad_point.point = Vec3(std::numeric_limits<float>::quiet_NaN(), 0, 0);
  bad_point.k = 3;
  batch = {bad_point};
  EXPECT_TRUE(db_->ExecuteBatch(std::span<const QueryRequest>(batch))
                  .status()
                  .IsInvalidArgument());
}

TEST_F(KnnFixture, SessionPropagatesDegenerateKnnStatus) {
  auto session = db_->OpenSession(scout::PrefetchMethod::kNone);
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(
      session->StepKnn(db_->domain().Center(), 0).status().IsInvalidArgument());
  EXPECT_TRUE(session
                  ->StepKnn(Vec3(std::numeric_limits<float>::quiet_NaN(), 0, 0),
                            3)
                  .status()
                  .IsInvalidArgument());
  // Degenerate steps must not have been recorded.
  EXPECT_EQ(session->NumSteps(), 0u);
}

TEST_F(KnnFixture, BackendLevelDegenerateInputs) {
  for (size_t i = 0; i < db_->NumBackends(); ++i) {
    const SpatialBackend& backend = db_->backend(i);
    storage::PoolSet pools =
        const_cast<SpatialBackend&>(backend).MakePoolSet(64);
    std::vector<KnnHit> hits{{7, 7.0}};
    // k == 0 is a valid (empty) index-level answer; the engine boundary is
    // what rejects it. The output vector must still be cleared.
    EXPECT_TRUE(
        backend.KnnQuery(Vec3(0, 0, 0), 0, &pools, &hits).ok())
        << backend.name();
    EXPECT_TRUE(hits.empty()) << backend.name();
    // Null pool set / non-finite points are errors everywhere.
    EXPECT_TRUE(backend.KnnQuery(Vec3(0, 0, 0), 1, nullptr, &hits)
                    .IsInvalidArgument())
        << backend.name();
    EXPECT_TRUE(
        backend
            .KnnQuery(Vec3(std::numeric_limits<float>::quiet_NaN(), 0, 0), 1,
                      &pools, &hits)
            .IsInvalidArgument())
        << backend.name();
  }
}

}  // namespace
}  // namespace engine
}  // namespace neurodb
