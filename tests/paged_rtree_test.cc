#include "rtree/paged_rtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/sim_clock.h"

namespace neurodb {
namespace rtree {
namespace {

using geom::Aabb;
using geom::ElementId;
using geom::ElementVec;
using geom::Vec3;

ElementVec RandomElements(size_t n, uint64_t seed) {
  Pcg32 rng(seed);
  ElementVec out;
  for (size_t i = 0; i < n; ++i) {
    Vec3 c(static_cast<float>(rng.Uniform(0, 100)),
           static_cast<float>(rng.Uniform(0, 100)),
           static_cast<float>(rng.Uniform(0, 100)));
    out.emplace_back(i, Aabb::Cube(c, 1.5f));
  }
  return out;
}

TEST(PagedRTreeTest, BuildAllocatesOnePagePerNode) {
  ElementVec elements = RandomElements(1000, 1);
  auto tree = RTree::BulkLoadStr(elements);
  ASSERT_TRUE(tree.ok());
  size_t nodes = tree->NumNodes();

  storage::PageStore store;
  auto paged = PagedRTree::Build(std::move(tree).value(), &store);
  ASSERT_TRUE(paged.ok());
  EXPECT_EQ(paged->NumPages(), nodes);
  EXPECT_EQ(store.NumPages(), nodes);
}

TEST(PagedRTreeTest, NullStoreFails) {
  auto tree = RTree::BulkLoadStr(RandomElements(10, 2));
  ASSERT_TRUE(tree.ok());
  EXPECT_FALSE(PagedRTree::Build(std::move(tree).value(), nullptr).ok());
}

TEST(PagedRTreeTest, QueryMatchesInMemoryTree) {
  ElementVec elements = RandomElements(2000, 3);
  auto tree = RTree::BulkLoadStr(elements);
  ASSERT_TRUE(tree.ok());
  storage::PageStore store;
  auto paged = PagedRTree::Build(std::move(tree).value(), &store);
  ASSERT_TRUE(paged.ok());

  storage::BufferPool pool(&store, 10000);
  Pcg32 rng(4);
  for (int q = 0; q < 30; ++q) {
    Aabb box = Aabb::Cube(Vec3(static_cast<float>(rng.Uniform(0, 100)),
                               static_cast<float>(rng.Uniform(0, 100)),
                               static_cast<float>(rng.Uniform(0, 100))),
                          static_cast<float>(rng.Uniform(2, 30)));
    std::vector<ElementId> via_pages;
    ASSERT_TRUE(paged->RangeQuery(box, &via_pages, &pool).ok());
    std::vector<ElementId> via_memory;
    paged->tree().RangeQuery(box, &via_memory);
    std::sort(via_pages.begin(), via_pages.end());
    std::sort(via_memory.begin(), via_memory.end());
    ASSERT_EQ(via_pages, via_memory);
  }
}

TEST(PagedRTreeTest, ColdQueryChargesOnePageFetchPerVisitedNode) {
  ElementVec elements = RandomElements(3000, 5);
  RTreeOptions options;
  options.max_entries = 16;
  options.min_entries = 6;
  auto tree = RTree::BulkLoadStr(elements, options);
  ASSERT_TRUE(tree.ok());
  storage::PageStore store;
  auto paged = PagedRTree::Build(std::move(tree).value(), &store);
  ASSERT_TRUE(paged.ok());

  SimClock clock;
  storage::DiskCostModel cost;
  cost.page_read_micros = 100;
  cost.page_hit_micros = 0;
  storage::BufferPool pool(&store, 10000, &clock, cost);

  QueryStats stats;
  std::vector<ElementId> out;
  ASSERT_TRUE(paged
                  ->RangeQuery(Aabb::Cube(Vec3(50, 50, 50), 30), &out, &pool,
                               &stats)
                  .ok());
  // Cold cache: every visited node was a miss.
  EXPECT_EQ(pool.stats().Get("pool.misses"), stats.nodes_visited);
  EXPECT_EQ(clock.NowMicros(), stats.nodes_visited * 100);

  // Repeating the same query hits the pool for every node.
  QueryStats stats2;
  std::vector<ElementId> out2;
  ASSERT_TRUE(paged
                  ->RangeQuery(Aabb::Cube(Vec3(50, 50, 50), 30), &out2, &pool,
                               &stats2)
                  .ok());
  EXPECT_EQ(pool.stats().Get("pool.misses"), stats.nodes_visited);
  EXPECT_EQ(pool.stats().Get("pool.hits"), stats2.nodes_visited);
}

TEST(PagedRTreeTest, NullPoolFails) {
  auto tree = RTree::BulkLoadStr(RandomElements(10, 6));
  ASSERT_TRUE(tree.ok());
  storage::PageStore store;
  auto paged = PagedRTree::Build(std::move(tree).value(), &store);
  ASSERT_TRUE(paged.ok());
  std::vector<ElementId> out;
  EXPECT_FALSE(
      paged->RangeQuery(Aabb::Cube(Vec3(0, 0, 0), 1), &out, nullptr).ok());
}

TEST(PagedRTreeTest, EmptyTreeQueriesAreNoOps) {
  auto tree = RTree::BulkLoadStr({});
  ASSERT_TRUE(tree.ok());
  storage::PageStore store;
  auto paged = PagedRTree::Build(std::move(tree).value(), &store);
  ASSERT_TRUE(paged.ok());
  storage::BufferPool pool(&store, 10);
  std::vector<ElementId> out;
  ASSERT_TRUE(
      paged->RangeQuery(Aabb::Cube(Vec3(0, 0, 0), 5), &out, &pool).ok());
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace rtree
}  // namespace neurodb
