// End-to-end walkthrough behaviour: accounting identities, prefetch
// effectiveness on structure-following paths (SCOUT must beat no
// prefetching and win on hit rate), and candidate pruning.

#include "scout/session.h"

#include <gtest/gtest.h>

#include "flat/flat_index.h"
#include "neuro/circuit_generator.h"
#include "neuro/workload.h"

namespace neurodb {
namespace scout {
namespace {

using geom::Aabb;
using geom::Vec3;

class SessionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    neuro::CircuitParams params;
    params.num_neurons = 25;
    params.seed = 77;
    auto circuit = neuro::CircuitGenerator(params).Generate();
    ASSERT_TRUE(circuit.ok());
    circuit_ = std::move(circuit).value();

    dataset_ = circuit_.FlattenSegments();
    resolver_.AddDataset(dataset_);

    flat::FlatOptions options;
    options.elems_per_page = 64;
    auto index =
        flat::FlatIndex::Build(dataset_.Elements(), &store_, options);
    ASSERT_TRUE(index.ok());
    index_.emplace(std::move(index).value());

    auto path = neuro::FollowBranchPath(circuit_, 0, 10.0f, 1);
    ASSERT_TRUE(path.ok());
    queries_ = neuro::PathQueries(*path, 30.0f);
    ASSERT_GE(queries_.size(), 5u);
  }

  SessionOptions DefaultOptions() const {
    SessionOptions o;
    o.pool_pages = 4096;
    o.think_time_us = 500'000;
    o.cost.page_read_micros = 5000;
    o.cost.page_hit_micros = 10;
    return o;
  }

  neuro::Circuit circuit_;
  neuro::SegmentDataset dataset_;
  neuro::SegmentResolver resolver_;
  storage::PageStore store_;
  std::optional<flat::FlatIndex> index_;
  std::vector<Aabb> queries_;
};

TEST_F(SessionFixture, AccountingIdentitiesHold) {
  WalkthroughSession session(&*index_, &store_, &resolver_, DefaultOptions());
  auto result = session.Run(queries_, PrefetchMethod::kNone);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->steps.size(), queries_.size());

  uint64_t stall_sum = 0;
  uint64_t missed_sum = 0;
  for (const auto& s : result->steps) {
    stall_sum += s.stall_us;
    missed_sum += s.pages_missed;
  }
  EXPECT_EQ(stall_sum, result->total_stall_us);
  EXPECT_EQ(missed_sum, result->pages_missed);
  // Total time = stalls + one think pause per query.
  EXPECT_EQ(result->total_time_us,
            result->total_stall_us +
                queries_.size() * DefaultOptions().think_time_us);
  // No prefetching happened.
  EXPECT_EQ(result->prefetch_issued, 0u);
  EXPECT_EQ(result->PrefetchPrecision(), 0.0);
}

TEST_F(SessionFixture, ScoutReducesStallVersusNone) {
  WalkthroughSession session(&*index_, &store_, &resolver_, DefaultOptions());
  auto none = session.Run(queries_, PrefetchMethod::kNone);
  auto scout = session.Run(queries_, PrefetchMethod::kScout);
  ASSERT_TRUE(none.ok());
  ASSERT_TRUE(scout.ok());
  EXPECT_GT(scout->prefetch_issued, 0u);
  EXPECT_GT(scout->prefetch_used, 0u);
  // Following a branch, SCOUT must cut the stall substantially.
  EXPECT_LT(scout->total_stall_us, none->total_stall_us);
  EXPECT_GT(scout->HitRate(), none->HitRate());
}

TEST_F(SessionFixture, ScoutBeatsBaselinesOnHitRate) {
  WalkthroughSession session(&*index_, &store_, &resolver_, DefaultOptions());
  auto hilbert = session.Run(queries_, PrefetchMethod::kHilbert);
  auto scout = session.Run(queries_, PrefetchMethod::kScout);
  ASSERT_TRUE(hilbert.ok());
  ASSERT_TRUE(scout.ok());
  EXPECT_GE(scout->HitRate(), hilbert->HitRate());
}

TEST_F(SessionFixture, PrefetchBudgetIsHonoredPerStep) {
  SessionOptions options = DefaultOptions();
  options.think_time_us = 20'000;  // only 4 pages at 5 ms each
  WalkthroughSession session(&*index_, &store_, &resolver_, options);
  auto result = session.Run(queries_, PrefetchMethod::kScout);
  ASSERT_TRUE(result.ok());
  for (const auto& step : result->steps) {
    EXPECT_LE(step.prefetched, options.PrefetchBudget());
  }
}

TEST_F(SessionFixture, ZeroReadCostMeansZeroBudget) {
  SessionOptions options = DefaultOptions();
  options.cost.page_read_micros = 0;
  EXPECT_EQ(options.PrefetchBudget(), 0u);
}

TEST_F(SessionFixture, PrefetchBudgetIsCappedAtPoolCapacity) {
  // A huge think time used to "prefetch" more pages than the pool can
  // hold, silently evicting what it just warmed. The budget now caps at
  // pool_pages.
  SessionOptions options = DefaultOptions();
  options.pool_pages = 8;
  options.think_time_us = 10'000'000;  // 2000 pages at 5 ms each
  EXPECT_EQ(options.PrefetchBudget(), 8u);

  WalkthroughSession session(&*index_, &store_, &resolver_, options);
  auto result = session.Run(queries_, PrefetchMethod::kScout);
  ASSERT_TRUE(result.ok());
  for (const auto& step : result->steps) {
    EXPECT_LE(step.prefetched, options.pool_pages);
  }
}

TEST_F(SessionFixture, ScoutCandidatesShrinkAlongThePath) {
  // Paper Figure 5: the candidate set narrows as the sequence continues.
  WalkthroughSession session(&*index_, &store_, &resolver_, DefaultOptions());
  auto result = session.Run(queries_, PrefetchMethod::kScout);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->steps.size(), 3u);
  uint64_t first = result->steps.front().candidates;
  uint64_t later_max = 0;
  for (size_t i = 2; i < result->steps.size(); ++i) {
    later_max = std::max(later_max, result->steps[i].candidates);
  }
  EXPECT_GT(first, 0u);
  EXPECT_LE(later_max, first)
      << "pruning should not grow the candidate set while following";
}

TEST_F(SessionFixture, RunsAreIndependentAndRepeatable) {
  WalkthroughSession session(&*index_, &store_, &resolver_, DefaultOptions());
  auto a = session.Run(queries_, PrefetchMethod::kExtrapolation);
  auto b = session.Run(queries_, PrefetchMethod::kExtrapolation);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_stall_us, b->total_stall_us);
  EXPECT_EQ(a->prefetch_issued, b->prefetch_issued);
  EXPECT_EQ(a->pages_missed, b->pages_missed);
}

TEST_F(SessionFixture, NullWiringFails) {
  WalkthroughSession bad(nullptr, &store_, &resolver_, DefaultOptions());
  EXPECT_FALSE(bad.Run(queries_, PrefetchMethod::kNone).ok());
}

TEST_F(SessionFixture, ScoutWithoutResolverFails) {
  WalkthroughSession session(&*index_, &store_, nullptr, DefaultOptions());
  EXPECT_FALSE(session.Run(queries_, PrefetchMethod::kScout).ok());
  // Non-content-aware methods still work without a resolver.
  EXPECT_TRUE(session.Run(queries_, PrefetchMethod::kHilbert).ok());
}

TEST_F(SessionFixture, EmptyQuerySequence) {
  WalkthroughSession session(&*index_, &store_, &resolver_, DefaultOptions());
  auto result = session.Run({}, PrefetchMethod::kScout);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->steps.empty());
  EXPECT_EQ(result->total_time_us, 0u);
}

}  // namespace
}  // namespace scout
}  // namespace neurodb
