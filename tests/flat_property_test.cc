// Property sweep: FLAT (rescue on) must equal brute force for every pack
// order, page size, data shape and seed; on dense connected data the crawl
// alone (rescue off) must already be complete.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/rng.h"
#include "flat/flat_index.h"
#include "neuro/circuit_generator.h"

namespace neurodb {
namespace flat {
namespace {

using geom::Aabb;
using geom::ElementId;
using geom::ElementVec;
using geom::Vec3;

enum class Shape { kUniformDense, kCircuit, kLayeredSkew };

std::string ShapeName(Shape s) {
  switch (s) {
    case Shape::kUniformDense:
      return "UniformDense";
    case Shape::kCircuit:
      return "Circuit";
    case Shape::kLayeredSkew:
      return "LayeredSkew";
  }
  return "Unknown";
}

ElementVec MakeData(Shape shape, uint64_t seed) {
  Pcg32 rng(seed);
  ElementVec out;
  switch (shape) {
    case Shape::kUniformDense:
      for (size_t i = 0; i < 3000; ++i) {
        Vec3 c(static_cast<float>(rng.Uniform(0, 80)),
               static_cast<float>(rng.Uniform(0, 80)),
               static_cast<float>(rng.Uniform(0, 80)));
        out.emplace_back(i, Aabb::Cube(c, 3.0f));
      }
      break;
    case Shape::kCircuit: {
      neuro::CircuitParams params;
      params.num_neurons = 15;
      params.seed = seed;
      auto circuit = neuro::CircuitGenerator(params).Generate();
      EXPECT_TRUE(circuit.ok());
      out = circuit->FlattenSegments().Elements();
      break;
    }
    case Shape::kLayeredSkew:
      // 90% of elements in a thin dense slab, the rest sparse.
      for (size_t i = 0; i < 3000; ++i) {
        bool dense = rng.NextBool(0.9);
        Vec3 c(static_cast<float>(rng.Uniform(0, 100)),
               dense ? static_cast<float>(rng.Uniform(40, 50))
                     : static_cast<float>(rng.Uniform(0, 100)),
               static_cast<float>(rng.Uniform(0, 100)));
        out.emplace_back(i, Aabb::Cube(c, 2.5f));
      }
      break;
  }
  return out;
}

std::vector<ElementId> BruteForce(const ElementVec& elements,
                                  const Aabb& box) {
  std::vector<ElementId> out;
  for (const auto& e : elements) {
    if (e.bounds.Intersects(box)) out.push_back(e.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

using Param = std::tuple<storage::PackOrder, size_t, Shape, uint64_t>;

class FlatEquivalenceTest : public ::testing::TestWithParam<Param> {};

TEST_P(FlatEquivalenceTest, RescueQueriesMatchBruteForce) {
  auto [pack, page_size, shape, seed] = GetParam();
  ElementVec elements = MakeData(shape, seed);

  storage::PageStore store;
  FlatOptions options;
  options.pack = pack;
  options.elems_per_page = page_size;
  options.rescue = true;
  auto index = FlatIndex::Build(elements, &store, options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->CheckInvariants().ok());

  Aabb domain = index->domain();
  storage::BufferPool pool(&store, 1 << 20);
  Pcg32 rng(seed ^ 0xbeef);
  for (int q = 0; q < 20; ++q) {
    Vec3 c(static_cast<float>(
               rng.Uniform(domain.min.x - 10, domain.max.x + 10)),
           static_cast<float>(
               rng.Uniform(domain.min.y - 10, domain.max.y + 10)),
           static_cast<float>(
               rng.Uniform(domain.min.z - 10, domain.max.z + 10)));
    Aabb box = Aabb::Cube(c, static_cast<float>(rng.Uniform(2, 50)));
    std::vector<ElementId> got;
    ASSERT_TRUE(index->RangeQuery(box, &pool, &got).ok());
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForce(elements, box))
        << ShapeName(shape) << " page=" << page_size << " query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FlatEquivalenceTest,
    ::testing::Combine(
        ::testing::Values(storage::PackOrder::kHilbert,
                          storage::PackOrder::kStr),
        ::testing::Values<size_t>(16, 64, 253),
        ::testing::Values(Shape::kUniformDense, Shape::kCircuit,
                          Shape::kLayeredSkew),
        ::testing::Values<uint64_t>(1, 2)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) == storage::PackOrder::kHilbert
                             ? "Hilbert"
                             : "Str";
      return name + "P" + std::to_string(std::get<1>(info.param)) +
             ShapeName(std::get<2>(info.param)) + "S" +
             std::to_string(std::get<3>(info.param));
    });

class FlatDenseCrawlTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlatDenseCrawlTest, CrawlAloneIsCompleteOnDenseData) {
  // The paper's setting: dense continuous tissue. Crawl-only execution
  // (rescue off) must already return the full result.
  ElementVec elements = MakeData(Shape::kUniformDense, GetParam());
  storage::PageStore store;
  FlatOptions options;
  options.elems_per_page = 64;
  options.rescue = false;
  auto index = FlatIndex::Build(elements, &store, options);
  ASSERT_TRUE(index.ok());
  storage::BufferPool pool(&store, 1 << 20);
  Pcg32 rng(GetParam() ^ 0xcafe);
  for (int q = 0; q < 15; ++q) {
    Aabb box = Aabb::Cube(Vec3(static_cast<float>(rng.Uniform(10, 70)),
                               static_cast<float>(rng.Uniform(10, 70)),
                               static_cast<float>(rng.Uniform(10, 70))),
                          static_cast<float>(rng.Uniform(5, 30)));
    std::vector<ElementId> got;
    ASSERT_TRUE(index->RangeQuery(box, &pool, &got).ok());
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForce(elements, box)) << "query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatDenseCrawlTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

TEST(FlatDensityTest, PagesReadTrackResultSizeNotDensity) {
  // Double the density at a fixed query size: FLAT's page reads should
  // scale with the result (roughly 2x), not explode superlinearly.
  auto run = [](size_t n, uint64_t seed) {
    Pcg32 rng(seed);
    ElementVec elements;
    for (size_t i = 0; i < n; ++i) {
      Vec3 c(static_cast<float>(rng.Uniform(0, 60)),
             static_cast<float>(rng.Uniform(0, 60)),
             static_cast<float>(rng.Uniform(0, 60)));
      elements.emplace_back(i, Aabb::Cube(c, 2.0f));
    }
    storage::PageStore store;
    FlatOptions options;
    options.elems_per_page = 64;
    auto index = FlatIndex::Build(elements, &store, options);
    EXPECT_TRUE(index.ok());
    storage::BufferPool pool(&store, 1 << 20);
    FlatQueryStats stats;
    std::vector<ElementId> got;
    EXPECT_TRUE(index
                    ->RangeQuery(Aabb::Cube(Vec3(30, 30, 30), 20), &pool,
                                 &got, &stats)
                    .ok());
    return std::make_pair(stats.data_pages_read, got.size());
  };
  auto [pages_1x, results_1x] = run(2000, 7);
  auto [pages_4x, results_4x] = run(8000, 7);
  ASSERT_GT(results_4x, 2 * results_1x);
  // Pages per result element must not degrade materially with density.
  double per_result_1x = static_cast<double>(pages_1x) / results_1x;
  double per_result_4x = static_cast<double>(pages_4x) / results_4x;
  EXPECT_LT(per_result_4x, per_result_1x * 1.5);
}

}  // namespace
}  // namespace flat
}  // namespace neurodb
