#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/sim_clock.h"

namespace neurodb {
namespace {

TEST(StatsTest, TickersStartAtZero) {
  Stats s;
  EXPECT_EQ(s.Get("anything"), 0u);
}

TEST(StatsTest, AddBumpSet) {
  Stats s;
  s.Add("pages", 3);
  s.Bump("pages");
  EXPECT_EQ(s.Get("pages"), 4u);
  s.Set("pages", 10);
  EXPECT_EQ(s.Get("pages"), 10u);
}

TEST(StatsTest, SetMaxKeepsMaximum) {
  Stats s;
  s.SetMax("peak", 5);
  s.SetMax("peak", 3);
  EXPECT_EQ(s.Get("peak"), 5u);
  s.SetMax("peak", 9);
  EXPECT_EQ(s.Get("peak"), 9u);
}

TEST(StatsTest, MergeAddsTickerwise) {
  Stats a;
  Stats b;
  a.Add("x", 1);
  b.Add("x", 2);
  b.Add("y", 5);
  a.Merge(b);
  EXPECT_EQ(a.Get("x"), 3u);
  EXPECT_EQ(a.Get("y"), 5u);
}

TEST(StatsTest, ResetZeroesButKeepsNames) {
  Stats s;
  s.Add("x", 7);
  s.Reset();
  EXPECT_EQ(s.Get("x"), 0u);
  EXPECT_EQ(s.tickers().size(), 1u);
  s.Clear();
  EXPECT_TRUE(s.tickers().empty());
}

TEST(StatsTest, ToStringIsSortedByName) {
  Stats s;
  s.Add("zz", 1);
  s.Add("aa", 2);
  EXPECT_EQ(s.ToString(), "aa=2 zz=1");
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(t.ElapsedNanos(), 0u);
  EXPECT_GE(t.ElapsedMillis(), 0.0);
}

TEST(ScopedTimerTest, AddsElapsedToTicker) {
  Stats s;
  {
    ScopedTimer timer(&s, "work_ns");
    volatile uint64_t sink = 0;
    for (int i = 0; i < 10000; ++i) sink += i;
  }
  EXPECT_GT(s.Get("work_ns"), 0u);
}

TEST(ScopedTimerTest, NullStatsIsSafe) {
  ScopedTimer timer(nullptr, "x");  // must not crash on destruction
}

TEST(SimClockTest, StartsAtZeroAndAdvances) {
  SimClock c;
  EXPECT_EQ(c.NowMicros(), 0u);
  c.Advance(100);
  EXPECT_EQ(c.NowMicros(), 100u);
}

TEST(SimClockTest, AdvanceToIsMonotone) {
  SimClock c;
  c.Advance(50);
  EXPECT_EQ(c.AdvanceTo(80), 30u);
  EXPECT_EQ(c.NowMicros(), 80u);
  EXPECT_EQ(c.AdvanceTo(10), 0u);  // past: no-op
  EXPECT_EQ(c.NowMicros(), 80u);
}

TEST(SimClockTest, ResetReturnsToZero) {
  SimClock c;
  c.Advance(5);
  c.Reset();
  EXPECT_EQ(c.NowMicros(), 0u);
}

}  // namespace
}  // namespace neurodb
