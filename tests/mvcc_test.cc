// Snapshot-read (MVCC-lite) tests: concurrent readers racing ApplyUpdates
// and Compact must answer exactly as a quiesced engine pinned at their read
// epoch (tests/diff_harness.h RunConcurrentReaders, also the body of the
// mvcc_stress_nightly ctest label and the TSan CI job), explicit epoch pins
// replay historical answers within the retention window and report
// kOutOfRange beyond it, and an engine created empty and populated purely
// through updates survives a restart through QueryEngine::Open via its
// WAL-logged load record.

#include <gtest/gtest.h>

#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "diff_harness.h"
#include "engine/query_engine.h"
#include "geom/knn.h"

namespace neurodb {
namespace engine {
namespace {

using geom::Aabb;
using geom::ElementId;
using geom::ElementVec;
using geom::SpatialElement;
using geom::Vec3;
using neurodb::testing::BruteForceRangeIds;
using neurodb::testing::ConcurrentReaderOptions;
using neurodb::testing::EnvOr;
using neurodb::testing::RunConcurrentReaders;

uint64_t MvccSeed() {
  // Fixed by default (deterministic CI); the nightly registration rotates
  // coverage by deriving the seed from the current UTC date.
  if (std::getenv("NEURODB_DIFF_SEED_FROM_DATE") != nullptr) {
    std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    return static_cast<uint64_t>(utc.tm_year + 1900) * 10000 +
           static_cast<uint64_t>(utc.tm_mon + 1) * 100 +
           static_cast<uint64_t>(utc.tm_mday);
  }
  return EnvOr("NEURODB_MVCC_SEED", 0x37C0FFEE);
}

ElementVec MakeCloud(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> pos(0.0f, 300.0f);
  std::uniform_real_distribution<float> side(1.0f, 8.0f);
  ElementVec out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.emplace_back(i + 1, Aabb::Cube(Vec3(pos(rng), pos(rng), pos(rng)),
                                       side(rng)));
  }
  return out;
}

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "ndb_mvcc_test_XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    if (made != nullptr) path_ = made;
  }
  ~TempDir() {
    if (!path_.empty()) std::filesystem::remove_all(path_);
  }
  std::string Sub(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------------
// Concurrent snapshot reads (the differential harness run the TSan CI job
// and the mvcc_stress_nightly label execute at scale)
// ---------------------------------------------------------------------------

TEST(MvccTest, ConcurrentReadersMatchQuiescedOracle) {
  ElementVec elements = MakeCloud(350, 71);
  QueryEngine db;
  ASSERT_TRUE(db.LoadElements(elements).ok());

  ConcurrentReaderOptions options;
  options.readers = 4;
  options.queries_per_reader = 24;
  options.batches = 24;
  options.ops_per_batch = 6;
  auto outcome = RunConcurrentReaders(&db, elements, options, MvccSeed());
  EXPECT_FALSE(outcome.diverged) << outcome.Summary();
  EXPECT_GT(outcome.queries_run, 0u);
}

TEST(MvccTest, ConcurrentReadersSurviveCompaction) {
  ElementVec elements = MakeCloud(350, 73);
  QueryEngine db;
  ASSERT_TRUE(db.LoadElements(elements).ok());

  ConcurrentReaderOptions options;
  options.readers = 4;
  options.queries_per_reader = 24;
  options.batches = 24;
  options.ops_per_batch = 6;
  options.compact_every = 6;
  auto outcome = RunConcurrentReaders(&db, elements, options, MvccSeed() + 1);
  EXPECT_FALSE(outcome.diverged) << outcome.Summary();
}

// ---------------------------------------------------------------------------
// Explicit epoch pins: historical replay within the retention window,
// kOutOfRange beyond it
// ---------------------------------------------------------------------------

TEST(MvccTest, ExplicitPinReplaysHistoricalAnswers) {
  ElementVec elements = MakeCloud(120, 77);
  QueryEngine db;
  ASSERT_TRUE(db.LoadElements(elements).ok());

  const Aabb everything(Vec3(-10, -10, -10), Vec3(350, 350, 350));
  // Oracle live set per epoch: epoch 0 = the load, epoch e = after e
  // single-insert batches.
  std::vector<ElementVec> live_at = {elements};
  for (ElementId id = 10'000; id < 10'005; ++id) {
    UpdateRequest insert{UpdateKind::kInsert, id,
                         Aabb::Cube(Vec3(50, 50, 50), 4.0f)};
    ASSERT_TRUE(
        db.ApplyUpdates(std::span<const UpdateRequest>(&insert, 1)).ok());
    ElementVec live = live_at.back();
    live.emplace_back(id, insert.bounds);
    live_at.push_back(std::move(live));
  }
  ASSERT_EQ(db.epoch(), 5u);

  // Every retained epoch replays the exact answer of its day.
  for (storage::Epoch e = 0; e <= 5; ++e) {
    RangeRequest request;
    request.box = everything;
    request.backend = BackendChoice::kAll;
    request.cache = CachePolicy::kCold;
    request.read_epoch = e;
    geom::CollectingVisitor out;
    auto report = db.Execute(request, out);
    ASSERT_TRUE(report.ok()) << "epoch " << e << ": "
                             << report.status().ToString();
    EXPECT_TRUE(report->results_match) << "epoch " << e;
    EXPECT_EQ(report->epoch, e);
    std::vector<ElementId> ids = out.Ids();
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, BruteForceRangeIds(live_at[e], everything))
        << "epoch " << e;
  }

  // Publish past the retention window (8 versions): the oldest epochs
  // retire and a pin on them reports kOutOfRange instead of answering
  // from the wrong snapshot.
  for (ElementId id = 20'000; id < 20'008; ++id) {
    UpdateRequest insert{UpdateKind::kInsert, id,
                         Aabb::Cube(Vec3(80, 80, 80), 4.0f)};
    ASSERT_TRUE(
        db.ApplyUpdates(std::span<const UpdateRequest>(&insert, 1)).ok());
  }
  RangeRequest retired;
  retired.box = everything;
  retired.backend = BackendChoice::kAll;
  retired.cache = CachePolicy::kCold;
  retired.read_epoch = 0;
  auto report = db.Execute(retired);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsOutOfRange()) << report.status().ToString();

  // A pin in the future of the newest published epoch is equally absent.
  retired.read_epoch = db.epoch() + 100;
  // Future epochs resolve to nothing on the ring only when ahead of every
  // published version — VersionRing::At answers with the newest entry at
  // or below the pin, so this must still be the *current* answer.
  auto future = db.Execute(retired);
  ASSERT_TRUE(future.ok());
  EXPECT_EQ(future->results, live_at.back().size() + 8);
}

// Compaction retires every pre-compaction epoch: the delta folded into the
// base, so old pins cannot be answered any more and must say so.
TEST(MvccTest, CompactRetiresPreCompactionEpochs) {
  ElementVec elements = MakeCloud(100, 79);
  QueryEngine db;
  ASSERT_TRUE(db.LoadElements(elements).ok());

  UpdateRequest erase{UpdateKind::kErase, elements[0].id, Aabb()};
  ASSERT_TRUE(
      db.ApplyUpdates(std::span<const UpdateRequest>(&erase, 1)).ok());
  ASSERT_TRUE(db.Compact().ok());
  ASSERT_EQ(db.epoch(), 2u);

  RangeRequest request;
  request.box = Aabb(Vec3(-10, -10, -10), Vec3(350, 350, 350));
  request.backend = BackendChoice::kAll;
  request.cache = CachePolicy::kCold;
  request.read_epoch = 1;
  auto pinned = db.Execute(request);
  ASSERT_FALSE(pinned.ok());
  EXPECT_TRUE(pinned.status().IsOutOfRange()) << pinned.status().ToString();

  request.read_epoch = 2;
  auto current = db.Execute(request);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->results, elements.size() - 1);
}

// ---------------------------------------------------------------------------
// Durable-empty-engine recovery: an engine created with no elements and
// populated purely through ApplyUpdates must survive a restart — the load
// record in the WAL is its only birth certificate.
// ---------------------------------------------------------------------------

EngineOptions DurableOptions(const std::string& dir) {
  EngineOptions options;
  options.durability.dir = dir;
  options.durability.block_bytes = 512;
  return options;
}

TEST(MvccTest, EmptyDurableEngineRecoversThroughOpen) {
  TempDir dir;
  ElementVec live;  // oracle, ascending by id
  {
    QueryEngine db(DurableOptions(dir.Sub("data")));
    ASSERT_TRUE(db.LoadElements(ElementVec()).ok());
    for (ElementId id = 1; id <= 40; ++id) {
      float x = static_cast<float>(id) * 5.0f;
      UpdateRequest insert{UpdateKind::kInsert, id,
                           Aabb::Cube(Vec3(x, x, x), 3.0f)};
      ASSERT_TRUE(
          db.ApplyUpdates(std::span<const UpdateRequest>(&insert, 1)).ok());
      live.emplace_back(id, insert.bounds);
    }
    UpdateRequest erase{UpdateKind::kErase, 7, Aabb()};
    ASSERT_TRUE(
        db.ApplyUpdates(std::span<const UpdateRequest>(&erase, 1)).ok());
    live.erase(live.begin() + 6);
    // Unclean close: no Checkpoint, no Compact — everything this engine
    // ever knew lives in the WAL, including the (empty) load record.
  }

  RecoveryReport report;
  auto db = QueryEngine::Open(dir.Sub("data"), EngineOptions(), &report);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(report.base_elements, 0u);
  EXPECT_EQ(report.replayed_batches, 41u);
  EXPECT_EQ((*db)->epoch(), 41u);

  const Aabb everything(Vec3(-10, -10, -10), Vec3(300, 300, 300));
  RangeRequest request;
  request.box = everything;
  request.backend = BackendChoice::kAll;
  request.cache = CachePolicy::kWarm;
  geom::CollectingVisitor out;
  auto range = (*db)->Execute(request, out);
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  EXPECT_TRUE(range->results_match);
  std::vector<ElementId> ids = out.Ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, BruteForceRangeIds(live, everything));

  KnnRequest knn;
  knn.point = Vec3(100, 100, 100);
  knn.k = 5;
  knn.backend = BackendChoice::kAll;
  auto kr = (*db)->Execute(knn);
  ASSERT_TRUE(kr.ok());
  EXPECT_TRUE(kr->results_match);
  EXPECT_EQ(kr->hits, geom::BruteForceKnn(live, knn.point, knn.k));

  // Keep living after recovery: more updates, a checkpoint, and a second
  // reopen — the checkpointed base now carries what the WAL used to.
  UpdateRequest insert{UpdateKind::kInsert, 500,
                       Aabb::Cube(Vec3(10, 200, 10), 4.0f)};
  ASSERT_TRUE(
      (*db)->ApplyUpdates(std::span<const UpdateRequest>(&insert, 1)).ok());
  live.emplace_back(500, insert.bounds);
  ASSERT_TRUE((*db)->Compact().ok());
  db->reset();

  RecoveryReport again;
  auto reopened = QueryEngine::Open(dir.Sub("data"), EngineOptions(), &again);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(again.base_elements, live.size());
  EXPECT_EQ(again.replayed_batches, 0u);
  geom::CollectingVisitor out2;
  auto range2 = (*reopened)->Execute(request, out2);
  ASSERT_TRUE(range2.ok());
  std::vector<ElementId> ids2 = out2.Ids();
  std::sort(ids2.begin(), ids2.end());
  EXPECT_EQ(ids2, BruteForceRangeIds(live, everything));
}

// The degenerate corner: an empty durable engine that crashes before any
// update still reopens (as an empty engine), rather than being mistaken
// for a missing data directory.
TEST(MvccTest, EmptyDurableEngineWithNoUpdatesReopensEmpty) {
  TempDir dir;
  {
    QueryEngine db(DurableOptions(dir.Sub("data")));
    ASSERT_TRUE(db.LoadElements(ElementVec()).ok());
  }
  RecoveryReport report;
  auto db = QueryEngine::Open(dir.Sub("data"), EngineOptions(), &report);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(report.base_elements, 0u);
  RangeRequest request;
  request.box = Aabb(Vec3(0, 0, 0), Vec3(100, 100, 100));
  request.backend = BackendChoice::kAll;
  auto range = (*db)->Execute(request);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->results, 0u);
}

// ---------------------------------------------------------------------------
// Seeded concurrent stress (mvcc_stress_nightly scales NEURODB_MVCC_OPS and
// rotates the seed daily)
// ---------------------------------------------------------------------------

TEST(MvccStressTest, SeededConcurrentStress) {
  const size_t ops = static_cast<size_t>(EnvOr("NEURODB_MVCC_OPS", 600));
  const uint64_t seed = MvccSeed();

  ElementVec elements = MakeCloud(400, seed ^ 0x5EED);
  QueryEngine db;
  ASSERT_TRUE(db.LoadElements(elements).ok());

  ConcurrentReaderOptions options;
  options.readers = static_cast<size_t>(EnvOr("NEURODB_MVCC_READERS", 4));
  options.batches = std::max<size_t>(8, ops / 12);
  options.ops_per_batch = 8;
  options.queries_per_reader = std::max<size_t>(16, ops / options.readers);
  options.compact_every = 10;
  options.knn_fraction = 0.35;
  auto outcome = RunConcurrentReaders(&db, elements, options, seed);
  EXPECT_FALSE(outcome.diverged) << outcome.Summary();
}

}  // namespace
}  // namespace engine
}  // namespace neurodb
