// Mutable-circuit coverage: the base+delta write path (ApplyUpdates /
// Compact / epochs) through every backend, the engine result cache's
// epoch invalidation, delta-aware sessions, delta kNN seeding parity and
// the update-parity differential harness (tests/diff_harness.h's
// RunUpdateParity — CI-sized here, scaled up by the update_parity_nightly
// ctest registration through NEURODB_UPDATE_OPS).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <set>

#include "diff_harness.h"
#include "engine/query_engine.h"
#include "neuro/workload.h"

namespace neurodb {
namespace testing {
namespace {

using geom::Aabb;
using geom::ElementId;
using geom::ElementVec;
using geom::KnnHit;
using geom::Vec3;

uint64_t UpdateSeed() {
  if (std::getenv("NEURODB_DIFF_SEED_FROM_DATE") != nullptr) {
    std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    return static_cast<uint64_t>(utc.tm_year + 1900) * 10000 +
           static_cast<uint64_t>(utc.tm_mon + 1) * 100 +
           static_cast<uint64_t>(utc.tm_mday);
  }
  return EnvOr("NEURODB_UPDATE_SEED", 20260730);
}

ElementVec MakeCloud(size_t n, uint64_t seed) {
  Aabb domain(Vec3(0, 0, 0), Vec3(300, 300, 300));
  return neuro::UniformSegments(n, domain, 6.0f, 2.0f, 0.5f, seed).Elements();
}

engine::EngineOptions SmallEngineOptions() {
  engine::EngineOptions options;
  options.flat.elems_per_page = 64;
  options.grid.elems_per_page = 64;
  options.sharded.inner.elems_per_page = 64;
  return options;
}

std::vector<ElementId> SortedIds(const geom::CollectingVisitor& v) {
  std::vector<ElementId> ids = v.Ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::unique_ptr<engine::QueryEngine> MakeEngine(const ElementVec& elements) {
  auto db = std::make_unique<engine::QueryEngine>(SmallEngineOptions());
  EXPECT_TRUE(db->LoadElements(elements).ok());
  return db;
}

engine::UpdateRequest Insert(ElementId id, const Aabb& bounds) {
  return engine::UpdateRequest{engine::UpdateKind::kInsert, id, bounds};
}
engine::UpdateRequest Erase(ElementId id) {
  return engine::UpdateRequest{engine::UpdateKind::kErase, id, Aabb()};
}
engine::UpdateRequest Move(ElementId id, const Aabb& bounds) {
  return engine::UpdateRequest{engine::UpdateKind::kMove, id, bounds};
}

Result<engine::UpdateReport> ApplyReport(
    engine::QueryEngine* db,
    std::initializer_list<engine::UpdateRequest> updates) {
  std::vector<engine::UpdateRequest> batch(updates);
  return db->ApplyUpdates(std::span<const engine::UpdateRequest>(batch));
}

Status Apply(engine::QueryEngine* db,
             std::initializer_list<engine::UpdateRequest> updates) {
  return ApplyReport(db, updates).status();
}

// --------------------------------------------------------------------------
// Targeted insert/erase/move parity across every backend
// --------------------------------------------------------------------------

TEST(UpdateTest, InsertEraseMoveAreVisibleInEveryBackend) {
  ElementVec elements = MakeCloud(600, 3);
  auto db = MakeEngine(elements);

  // Oracle mirror of the three mutations.
  ElementVec live = elements;
  ElementId fresh = 1'000'000;
  Aabb inserted = Aabb::Cube(Vec3(150, 150, 150), 4.0f);
  ASSERT_TRUE(Apply(db.get(), {Insert(fresh, inserted)}).ok());
  live.emplace_back(fresh, inserted);

  ElementId erased = live[17].id;
  ASSERT_TRUE(Apply(db.get(), {Erase(erased)}).ok());
  live.erase(live.begin() + 17);

  ElementId moved = live[3].id;
  Aabb moved_to = Aabb::Cube(Vec3(40, 260, 40), 4.0f);
  ASSERT_TRUE(Apply(db.get(), {Move(moved, moved_to)}).ok());
  live[3].bounds = moved_to;

  EXPECT_EQ(db->NumSegments(), live.size());
  EXPECT_GT(db->DeltaSize(), 0u);

  const engine::BackendChoice kChoices[] = {
      engine::BackendChoice::kFlat, engine::BackendChoice::kRTree,
      engine::BackendChoice::kGrid, engine::BackendChoice::kSharded,
      engine::BackendChoice::kAll};
  auto boxes = neuro::UniformQueries(db->domain(), 80.0f, 6, 11);
  boxes.push_back(inserted.Expanded(2.0f));
  boxes.push_back(moved_to.Expanded(2.0f));
  for (const Aabb& box : boxes) {
    std::vector<ElementId> truth = BruteForceRangeIds(live, box);
    for (engine::BackendChoice choice : kChoices) {
      engine::RangeRequest request;
      request.box = box;
      request.backend = choice;
      request.cache = engine::CachePolicy::kWarm;
      geom::CollectingVisitor out;
      auto report = db->Execute(request, out);
      ASSERT_TRUE(report.ok());
      EXPECT_TRUE(report->results_match);
      EXPECT_EQ(SortedIds(out), truth) << "box " << box;
      EXPECT_EQ(report->epoch, db->epoch());
    }

    engine::KnnRequest knn;
    knn.point = box.Center();
    knn.k = 12;
    knn.backend = engine::BackendChoice::kAll;
    knn.cache = engine::CachePolicy::kWarm;
    auto report = db->Execute(knn);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->results_match);
    EXPECT_EQ(report->hits, geom::BruteForceKnn(live, knn.point, knn.k));
  }
}

// --------------------------------------------------------------------------
// Validation and batch atomicity
// --------------------------------------------------------------------------

TEST(UpdateTest, ValidatesBatchesAtomically) {
  ElementVec elements = MakeCloud(200, 5);
  auto db = MakeEngine(elements);

  EXPECT_EQ(Apply(db.get(), {}).code(), StatusCode::kInvalidArgument);
  // Insert of a live id.
  EXPECT_EQ(Apply(db.get(), {Insert(elements[0].id, Aabb::Cube(Vec3(), 1))})
                .code(),
            StatusCode::kAlreadyExists);
  // Erase / move of unknown ids.
  EXPECT_EQ(Apply(db.get(), {Erase(999'999)}).code(), StatusCode::kNotFound);
  EXPECT_EQ(Apply(db.get(), {Move(999'999, Aabb::Cube(Vec3(), 1))}).code(),
            StatusCode::kNotFound);
  // Invalid bounds.
  EXPECT_EQ(Apply(db.get(), {Insert(500'000, Aabb())}).code(),
            StatusCode::kInvalidArgument);

  // A batch with one bad op applies nothing — and intra-batch dependencies
  // (insert then move of the same id) validate correctly.
  EXPECT_EQ(db->epoch(), 0u);
  EXPECT_EQ(Apply(db.get(), {Insert(500'000, Aabb::Cube(Vec3(1, 1, 1), 2)),
                             Erase(999'999)})
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db->DeltaSize(), 0u);
  EXPECT_EQ(db->epoch(), 0u);
  ASSERT_TRUE(Apply(db.get(), {Insert(500'000, Aabb::Cube(Vec3(1, 1, 1), 2)),
                               Move(500'000, Aabb::Cube(Vec3(5, 5, 5), 2)),
                               Erase(500'000)})
                  .ok());
  EXPECT_EQ(db->epoch(), 1u);
  EXPECT_EQ(db->NumSegments(), elements.size());
}

// --------------------------------------------------------------------------
// Epochs, result-cache invalidation and the invalidation counter
// --------------------------------------------------------------------------

TEST(UpdateTest, EpochTagsAndCacheInvalidation) {
  ElementVec elements = MakeCloud(600, 7);
  auto db = MakeEngine(elements);
  ASSERT_NE(db->result_cache(), nullptr);

  // Prime the result cache with a kDelta query.
  Aabb cached_box = Aabb::Cube(Vec3(150, 150, 150), 60.0f);
  engine::RangeRequest request;
  request.box = cached_box;
  request.backend = engine::BackendChoice::kFlat;
  request.cache = engine::CachePolicy::kDelta;
  ASSERT_TRUE(db->Execute(request).ok());
  ASSERT_EQ(db->result_cache()->size(), 1u);
  EXPECT_EQ(db->result_cache()->entry(0).epoch, 0u);

  // A far-away update keeps the entry (dirty region disjoint) but bumps
  // the epoch stamp for future inserts.
  auto far =
      ApplyReport(db.get(), {Insert(700'000, Aabb::Cube(Vec3(5, 5, 5), 2.0f))});
  ASSERT_TRUE(far.ok());
  EXPECT_EQ(far->epoch, 1u);
  EXPECT_EQ(far->invalidated_boxes, 0u);
  EXPECT_EQ(db->result_cache()->size(), 1u);

  // An update inside the cached box drops exactly that entry and counts it
  // as invalidation churn, not an eviction.
  uint64_t evictions0 = db->result_cache()->stats().evictions;
  auto near = ApplyReport(
      db.get(), {Insert(700'001, Aabb::Cube(Vec3(150, 150, 150), 2.0f))});
  ASSERT_TRUE(near.ok());
  EXPECT_EQ(near->epoch, 2u);
  EXPECT_EQ(near->invalidated_boxes, 1u);
  EXPECT_EQ(db->result_cache()->size(), 0u);
  EXPECT_EQ(db->result_cache()->stats().invalidated_boxes, 1u);
  EXPECT_EQ(db->result_cache()->stats().evictions, evictions0);

  // The re-query answers at the new epoch and sees the new element.
  geom::CollectingVisitor out;
  auto report = db->Execute(request, out);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->epoch, 2u);
  std::vector<ElementId> ids = SortedIds(out);
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), 700'001u));
  EXPECT_EQ(db->result_cache()->entry(0).epoch, 2u);
}

// --------------------------------------------------------------------------
// Compact: parity preserved, delta folded, layout epoch bumped
// --------------------------------------------------------------------------

TEST(UpdateTest, CompactFoldsDeltaAndPreservesParity) {
  ElementVec elements = MakeCloud(800, 9);
  auto db = MakeEngine(elements);

  // A burst of mutations.
  std::vector<engine::UpdateRequest> batch;
  for (size_t i = 0; i < 40; ++i) {
    batch.push_back(Insert(800'000 + i,
                           Aabb::Cube(Vec3(10.0f + 7.0f * i, 150, 150), 3.0f)));
  }
  for (size_t i = 0; i < 30; ++i) batch.push_back(Erase(elements[i * 7].id));
  // Disjoint from the erased indices (multiples of 7 up to 203).
  for (size_t i = 0; i < 20; ++i) {
    batch.push_back(Move(elements[300 + i * 3].id,
                         Aabb::Cube(Vec3(150, 10.0f + 9.0f * i, 150), 3.0f)));
  }
  ASSERT_TRUE(db->ApplyUpdates(std::span<const engine::UpdateRequest>(batch))
                  .ok());
  ASSERT_GT(db->DeltaSize(), 0u);

  auto boxes = neuro::UniformQueries(db->domain(), 90.0f, 8, 21);
  std::vector<std::vector<ElementId>> before;
  for (const Aabb& box : boxes) {
    engine::RangeRequest request;
    request.box = box;
    request.backend = engine::BackendChoice::kAll;
    request.cache = engine::CachePolicy::kWarm;
    geom::CollectingVisitor out;
    auto report = db->Execute(request, out);
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(report->results_match);
    before.push_back(SortedIds(out));
  }

  uint64_t flat_store_epoch = db->flat_backend()->store()->epoch();
  ASSERT_TRUE(db->Compact().ok());
  EXPECT_EQ(db->DeltaSize(), 0u);
  EXPECT_GT(db->flat_backend()->store()->epoch(), flat_store_epoch);
  EXPECT_EQ(db->epoch(), 2u);  // one update batch + one compaction

  for (size_t i = 0; i < boxes.size(); ++i) {
    engine::RangeRequest request;
    request.box = boxes[i];
    request.backend = engine::BackendChoice::kAll;
    request.cache = engine::CachePolicy::kWarm;
    geom::CollectingVisitor out;
    auto report = db->Execute(request, out);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->results_match);
    EXPECT_EQ(SortedIds(out), before[i]) << "box " << boxes[i];
  }

  // Compact is idempotent and cheap on an empty delta.
  ASSERT_TRUE(db->Compact().ok());
  EXPECT_EQ(db->DeltaSize(), 0u);
}

// --------------------------------------------------------------------------
// Sharded routing: spill inserts, bounds extension, compaction re-homing
// --------------------------------------------------------------------------

TEST(UpdateTest, ShardedSpillAndRehoming) {
  ElementVec elements = MakeCloud(500, 13);
  engine::ShardedOptions options;
  options.num_shards = 4;
  options.inner.elems_per_page = 64;
  engine::ShardedBackend backend(options);
  ASSERT_TRUE(backend.Build(elements).ok());

  // Far outside every shard bound: must spill, and still be queryable.
  Aabb outside = Aabb::Cube(Vec3(900, 900, 900), 4.0f);
  ASSERT_TRUE(backend.Insert(123'456, outside).ok());
  EXPECT_EQ(backend.SpillPopulation(), 1u);

  ElementVec live = elements;
  live.emplace_back(123'456, outside);

  storage::PoolSet pools = backend.MakePoolSet(4096);
  geom::CollectingVisitor out;
  ASSERT_TRUE(
      backend.RangeQuery(outside.Expanded(5.0f), &pools, out).ok());
  EXPECT_EQ(SortedIds(out), BruteForceRangeIds(live, outside.Expanded(5.0f)));

  std::vector<KnnHit> hits;
  ASSERT_TRUE(backend.KnnQuery(Vec3(890, 890, 890), 3, &pools, &hits).ok());
  EXPECT_EQ(hits, geom::BruteForceKnn(live, Vec3(890, 890, 890), 3));

  // Compaction re-homes the spill element into the nearest shard; answers
  // are unchanged, the spill and all deltas drain.
  ASSERT_TRUE(backend.Compact().ok());
  EXPECT_EQ(backend.SpillPopulation(), 0u);
  EXPECT_EQ(backend.DeltaSize(), 0u);
  storage::PoolSet fresh = backend.MakePoolSet(4096);
  geom::CollectingVisitor again;
  ASSERT_TRUE(
      backend.RangeQuery(outside.Expanded(5.0f), &fresh, again).ok());
  EXPECT_EQ(SortedIds(again),
            BruteForceRangeIds(live, outside.Expanded(5.0f)));

  // And the spilled id is now exactly erasable (it lives in a shard).
  ASSERT_TRUE(backend.Erase(123'456).ok());
  geom::CollectingVisitor gone;
  ASSERT_TRUE(
      backend.RangeQuery(outside.Expanded(5.0f), &fresh, gone).ok());
  EXPECT_EQ(SortedIds(gone),
            BruteForceRangeIds(elements, outside.Expanded(5.0f)));
}

// --------------------------------------------------------------------------
// Delta-aware sessions: updates visible, caches invalidated, epochs stamped
// --------------------------------------------------------------------------

TEST(UpdateTest, SessionsSeeUpdatesAndInvalidateTheirCaches) {
  ElementVec elements = MakeCloud(700, 17);
  auto db = MakeEngine(elements);

  auto cached = db->OpenSession(scout::PrefetchMethod::kNone,
                                engine::CachePolicy::kDelta);
  ASSERT_TRUE(cached.ok());
  ASSERT_NE(cached->result_cache(), nullptr);

  Aabb box = Aabb::Cube(Vec3(150, 150, 150), 50.0f);
  geom::CollectingVisitor first;
  auto step1 = cached->Step(box, first);
  ASSERT_TRUE(step1.ok());
  EXPECT_EQ(step1->epoch, 0u);

  // Mutate inside the cached box.
  ASSERT_TRUE(
      Apply(db.get(), {Insert(900'000, Aabb::Cube(Vec3(150, 150, 150), 2.0f))})
          .ok());

  ElementVec live = elements;
  live.emplace_back(900'000, Aabb::Cube(Vec3(150, 150, 150), 2.0f));

  // The next step catches up: the stale entry is invalidated, the answer
  // includes the insert and is stamped with the new epoch — byte-identical
  // to a cold session.
  geom::CollectingVisitor second;
  auto step2 = cached->Step(box, second);
  ASSERT_TRUE(step2.ok());
  EXPECT_EQ(step2->epoch, 1u);
  EXPECT_EQ(SortedIds(second), BruteForceRangeIds(live, box));
  EXPECT_GE(cached->Summary().cache_invalidated_boxes, 1u);

  auto cold = db->OpenSession(scout::PrefetchMethod::kNone,
                              engine::CachePolicy::kCold);
  ASSERT_TRUE(cold.ok());
  geom::CollectingVisitor cold_out;
  ASSERT_TRUE(cold->Step(box, cold_out).ok());
  EXPECT_EQ(SortedIds(cold_out), SortedIds(second));

  // kNN steps merge the delta too.
  std::vector<KnnHit> hits;
  ASSERT_TRUE(cold->StepKnn(Vec3(150, 150, 150), 8, &hits).ok());
  EXPECT_EQ(hits, geom::BruteForceKnn(live, Vec3(150, 150, 150), 8));
}

// --------------------------------------------------------------------------
// Delta kNN seeding parity (ROADMAP PR-4 follow-up)
// --------------------------------------------------------------------------

TEST(UpdateTest, SeededStepKnnIsByteIdenticalToUnseeded) {
  ElementVec elements = MakeCloud(1500, 19);
  auto db = MakeEngine(elements);

  scout::SessionOptions seeded_options = db->options().session;
  seeded_options.seed_knn = true;
  scout::SessionOptions unseeded_options = seeded_options;
  unseeded_options.seed_knn = false;

  auto seeded = engine::Session::Open(&db->flat_index(),
                                      db->flat_backend()->store(), nullptr,
                                      scout::PrefetchMethod::kNone,
                                      seeded_options);
  auto unseeded = engine::Session::Open(&db->flat_index(),
                                        db->flat_backend()->store(), nullptr,
                                        scout::PrefetchMethod::kNone,
                                        unseeded_options);
  ASSERT_TRUE(seeded.ok());
  ASSERT_TRUE(unseeded.ok());

  // A drifting exploration: each range step refreshes the seed candidates,
  // each kNN step must agree hit-for-hit with the unseeded session and
  // brute force.
  neuro::NavigationPath walk =
      neuro::RandomWalkPath(db->domain(), 8, 12.0f, 23);
  for (const Vec3& waypoint : walk.waypoints) {
    Aabb box = Aabb::Cube(waypoint, 40.0f);
    ASSERT_TRUE(seeded->Step(box).ok());
    ASSERT_TRUE(unseeded->Step(box).ok());

    for (size_t k : {1u, 8u, 24u}) {
      std::vector<KnnHit> with_seed, without_seed;
      ASSERT_TRUE(seeded->StepKnn(waypoint, k, &with_seed).ok());
      ASSERT_TRUE(unseeded->StepKnn(waypoint, k, &without_seed).ok());
      EXPECT_EQ(with_seed, without_seed) << "k=" << k;
      EXPECT_EQ(with_seed, geom::BruteForceKnn(elements, waypoint, k));
    }
  }
}

// --------------------------------------------------------------------------
// Shrink reducer mechanics (ROADMAP PR-2 follow-up)
// --------------------------------------------------------------------------

TEST(UpdateTest, MinimizeElementsFindsMinimalReproducingSubset) {
  ElementVec elements;
  for (ElementId id = 0; id < 100; ++id) {
    elements.emplace_back(id, Aabb::Cube(Vec3(static_cast<float>(id), 0, 0),
                                         1.0f));
  }
  // "Diverges" iff both culprit elements survive — the classic two-element
  // constellation a sub-seed repro alone cannot isolate.
  auto predicate = [](const ElementVec& subset) {
    bool has7 = false, has42 = false;
    for (const auto& e : subset) {
      if (e.id == 7) has7 = true;
      if (e.id == 42) has42 = true;
    }
    return has7 && has42;
  };
  ElementVec minimized = MinimizeElements(elements, predicate, 512);
  ASSERT_EQ(minimized.size(), 2u);
  EXPECT_EQ(minimized[0].id, 7u);
  EXPECT_EQ(minimized[1].id, 42u);
}

// --------------------------------------------------------------------------
// Workload generation: kUpdate queries are seeded and regenerable
// --------------------------------------------------------------------------

TEST(UpdateTest, WorkloadGeneratesRegenerableUpdates) {
  ElementVec elements = MakeCloud(100, 29);
  Aabb domain(Vec3(0, 0, 0), Vec3(300, 300, 300));
  neuro::MixedWorkloadOptions options;
  options.update_fraction = 1.0;
  options.knn_fraction = 0.0;

  auto workload = neuro::MixedWorkload(domain, elements, options, 64, 77);
  std::set<int> ops;
  for (const auto& query : workload) {
    ASSERT_EQ(query.kind, neuro::QueryKind::kUpdate);
    ops.insert(static_cast<int>(query.update_op));
    neuro::WorkloadQuery again =
        neuro::MixedWorkloadQuery(domain, elements, options, query.sub_seed);
    EXPECT_EQ(static_cast<int>(again.kind), static_cast<int>(query.kind));
    EXPECT_EQ(static_cast<int>(again.update_op),
              static_cast<int>(query.update_op));
    EXPECT_EQ(again.update_rank, query.update_rank);
    EXPECT_EQ(again.box, query.box);
  }
  EXPECT_EQ(ops.size(), 3u);  // all three mutation flavors appear
}

// --------------------------------------------------------------------------
// The acceptance run: interleaved update/query stream vs the mutable
// oracle, all backends + the delta cache, with periodic compaction.
// CI: 1000 ops; nightly: NEURODB_UPDATE_OPS=10000 (date-rotated seed).
// --------------------------------------------------------------------------

TEST(UpdateTest, SeededUpdateWorkloadHasNoDivergence) {
  ElementVec elements = MakeCloud(1200, 31);
  auto db = MakeEngine(elements);

  UpdateParityOptions options;
  options.workload.update_fraction = 0.35;
  options.workload.knn_fraction = 0.15;
  options.workload.walkthrough_fraction = 0.01;
  options.workload.join_fraction = 0.0;
  options.engine = SmallEngineOptions();
  options.compact_every = 200;
  options.shrink_on_divergence = true;

  size_t ops = EnvOr("NEURODB_UPDATE_OPS", 1000);
  uint64_t seed = UpdateSeed();
  DiffOutcome outcome =
      RunUpdateParity(db.get(), elements, options, ops, seed);
  EXPECT_FALSE(outcome.diverged)
      << outcome.Summary() << " (seed " << seed << ")";
  EXPECT_GT(outcome.updates, 0u);
  EXPECT_GT(outcome.ranges, 0u);
  // The stream actually exercised the epoch machinery.
  EXPECT_GT(db->epoch(), 0u);
}

// A read-only registered backend must reject the whole batch up front —
// a half-applied batch (built-ins mutated, custom backend not) would
// break kAll parity permanently.
class ReadOnlyBackend : public engine::GridBackend {
 public:
  const char* name() const override { return "ReadOnly"; }
  bool SupportsUpdates() const override { return false; }
};

TEST(UpdateTest, ReadOnlyBackendRejectsUpdatesAtomically) {
  ElementVec elements = MakeCloud(150, 43);
  auto db = std::make_unique<engine::QueryEngine>(SmallEngineOptions());
  ASSERT_TRUE(db->RegisterBackend(std::make_unique<ReadOnlyBackend>()).ok());
  ASSERT_TRUE(db->LoadElements(elements).ok());

  EXPECT_EQ(Apply(db.get(), {Insert(500'000, Aabb::Cube(Vec3(1, 1, 1), 2))})
                .code(),
            StatusCode::kUnimplemented);
  // Nothing applied anywhere: no delta records, no epoch bump, and the
  // five-way kAll panel still agrees.
  EXPECT_EQ(db->DeltaSize(), 0u);
  EXPECT_EQ(db->epoch(), 0u);
  engine::RangeRequest request;
  request.box = Aabb::Cube(Vec3(150, 150, 150), 80.0f);
  request.backend = engine::BackendChoice::kAll;
  auto report = db->Execute(request);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->results_match);
}

// Compaction rebuilds the page layout under any open session's private
// pool — the session adopts the new layout lazily (its pool drops stale
// pages through the store-epoch check) and keeps answering, byte-identical
// to a session opened fresh after the compaction.
TEST(UpdateTest, SessionsSurviveCompact) {
  ElementVec elements = MakeCloud(300, 47);
  auto db = MakeEngine(elements);

  auto session = db->OpenSession(scout::PrefetchMethod::kNone,
                                 engine::CachePolicy::kWarm);
  ASSERT_TRUE(session.ok());
  Aabb box = Aabb::Cube(Vec3(150, 150, 150), 40.0f);
  ASSERT_TRUE(session->Step(box).ok());

  ASSERT_TRUE(Apply(db.get(), {Erase(elements[0].id)}).ok());
  ASSERT_TRUE(db->Compact().ok());

  // The pre-compaction session keeps stepping against the rebuilt layout.
  geom::CollectingVisitor survived_out;
  auto survived = session->Step(box, survived_out);
  ASSERT_TRUE(survived.ok()) << survived.status().ToString();

  // ... and answers byte-identically to a session opened fresh after the
  // compaction.
  auto fresh = db->OpenSession(scout::PrefetchMethod::kNone,
                               engine::CachePolicy::kWarm);
  ASSERT_TRUE(fresh.ok());
  geom::CollectingVisitor fresh_out;
  ASSERT_TRUE(fresh->Step(box, fresh_out).ok());

  ElementVec survived_results = survived_out.TakeElements();
  ElementVec fresh_results = fresh_out.TakeElements();
  ASSERT_EQ(survived_results.size(), fresh_results.size());
  for (size_t i = 0; i < fresh_results.size(); ++i) {
    EXPECT_EQ(survived_results[i].id, fresh_results[i].id);
  }
  // The compaction folded the erase into the base; neither session may
  // still see the erased element.
  for (const auto& e : fresh_results) EXPECT_NE(e.id, elements[0].id);
}

// Compacting a base down to nothing leaves no crawl layout at all — the
// one post-compaction state a session cannot adopt. Steps report it.
TEST(UpdateTest, SessionsReportCompactToEmpty) {
  ElementVec elements = MakeCloud(40, 51);
  auto db = MakeEngine(elements);

  auto session = db->OpenSession(scout::PrefetchMethod::kNone,
                                 engine::CachePolicy::kWarm);
  ASSERT_TRUE(session.ok());

  std::vector<engine::UpdateRequest> erase_all;
  for (const auto& e : elements) erase_all.push_back(Erase(e.id));
  ASSERT_TRUE(db->ApplyUpdates(erase_all).ok());
  ASSERT_TRUE(db->Compact().ok());

  auto gone = session->Step(Aabb::Cube(Vec3(150, 150, 150), 40.0f));
  EXPECT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kInvalidArgument);
}

// An injected mutation bug (a backend that ignores erases) is caught by
// the update-parity harness with a usable repro handle.
class EraseDroppingBackend : public engine::GridBackend {
 public:
  const char* name() const override { return "EraseDropper"; }
  // Updates flow through the batched publish path — drop the erases there.
  Status ApplyBatch(const std::vector<engine::UpdateRequest>& updates,
                    storage::Epoch epoch) override {
    std::vector<engine::UpdateRequest> kept;
    for (const auto& u : updates) {
      if (u.kind != engine::UpdateKind::kErase) kept.push_back(u);
    }
    return engine::GridBackend::ApplyBatch(kept, epoch);
  }
};

TEST(UpdateTest, CatchesBackendThatDropsErases) {
  ElementVec elements = MakeCloud(400, 37);
  auto db = std::make_unique<engine::QueryEngine>(SmallEngineOptions());
  ASSERT_TRUE(
      db->RegisterBackend(std::make_unique<EraseDroppingBackend>()).ok());
  ASSERT_TRUE(db->LoadElements(elements).ok());

  UpdateParityOptions options;
  options.workload.update_fraction = 0.6;
  options.workload.update_insert_weight = 0.0;
  options.workload.update_erase_weight = 1.0;  // erases only
  options.workload.knn_fraction = 0.0;
  options.workload.data_centered_fraction = 1.0;
  options.engine = SmallEngineOptions();

  DiffOutcome outcome = RunUpdateParity(db.get(), elements, options, 80, 41);
  EXPECT_TRUE(outcome.diverged) << outcome.Summary();
}

}  // namespace
}  // namespace testing
}  // namespace neurodb
