#include "neuro/workload.h"

#include <gtest/gtest.h>

#include "neuro/circuit_generator.h"

namespace neurodb {
namespace neuro {
namespace {

using geom::Aabb;
using geom::Vec3;

const Aabb kDomain(Vec3(0, 0, 0), Vec3(100, 100, 100));

TEST(RangeWorkloadTest, UniformQueriesStayInDomain) {
  auto queries = UniformQueries(kDomain, 10.0f, 50, 1);
  ASSERT_EQ(queries.size(), 50u);
  for (const auto& q : queries) {
    EXPECT_TRUE(kDomain.Contains(q.Center()));
    EXPECT_FLOAT_EQ(q.Extent().x, 10.0f);
  }
}

TEST(RangeWorkloadTest, UniformQueriesAreDeterministic) {
  auto a = UniformQueries(kDomain, 10.0f, 20, 42);
  auto b = UniformQueries(kDomain, 10.0f, 20, 42);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(RangeWorkloadTest, DataCenteredQueriesHitData) {
  geom::ElementVec elements;
  for (int i = 0; i < 100; ++i) {
    elements.emplace_back(i, Aabb::Cube(Vec3(50, 50, static_cast<float>(i)),
                                        1.0f));
  }
  auto queries = DataCenteredQueries(elements, 5.0f, 30, 2);
  ASSERT_EQ(queries.size(), 30u);
  for (const auto& q : queries) {
    bool hits = false;
    for (const auto& e : elements) {
      if (e.bounds.Intersects(q)) hits = true;
    }
    EXPECT_TRUE(hits);
  }
  EXPECT_TRUE(DataCenteredQueries({}, 5.0f, 3, 2).empty());
}

TEST(RangeWorkloadTest, LayerQueriesTargetBand) {
  auto queries = LayerQueries(kDomain, 20.0f, 40.0f, 8.0f, 40, 3);
  for (const auto& q : queries) {
    float y = q.Center().y;
    EXPECT_GE(y, 20.0f);
    EXPECT_LE(y, 40.0f);
  }
}

TEST(NavigationTest, RandomWalkStaysInDomainAndSteps) {
  NavigationPath path = RandomWalkPath(kDomain, 100, 5.0f, 4);
  ASSERT_EQ(path.waypoints.size(), 100u);
  for (const auto& w : path.waypoints) {
    EXPECT_TRUE(kDomain.Contains(w));
  }
  EXPECT_GT(path.Length(), 0.0);
}

TEST(NavigationTest, FollowBranchPathResamplesUniformly) {
  neuro::CircuitParams params;
  params.num_neurons = 3;
  params.seed = 5;
  auto circuit = CircuitGenerator(params).Generate();
  ASSERT_TRUE(circuit.ok());
  auto path = FollowBranchPath(*circuit, 0, 4.0f, 1);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  ASSERT_GE(path->waypoints.size(), 3u);
  // Steps between consecutive waypoints are close to the requested step
  // (resampling across polyline corners can shorten them slightly).
  for (size_t i = 1; i + 1 < path->waypoints.size(); ++i) {
    double step = geom::Distance(path->waypoints[i - 1], path->waypoints[i]);
    EXPECT_LE(step, 4.0 + 1e-3);
    EXPECT_GT(step, 0.5);
  }
}

TEST(NavigationTest, FollowBranchPathErrors) {
  neuro::CircuitParams params;
  params.num_neurons = 2;
  params.seed = 6;
  auto circuit = CircuitGenerator(params).Generate();
  ASSERT_TRUE(circuit.ok());
  EXPECT_TRUE(FollowBranchPath(*circuit, 99, 4.0f, 1).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(FollowBranchPath(*circuit, 0, 0.0f, 1).status()
                  .IsInvalidArgument());
}

TEST(NavigationTest, PathQueriesCenterOnWaypoints) {
  NavigationPath path;
  path.waypoints = {Vec3(1, 2, 3), Vec3(4, 5, 6)};
  auto queries = PathQueries(path, 10.0f);
  ASSERT_EQ(queries.size(), 2u);
  EXPECT_EQ(queries[0].Center(), Vec3(1, 2, 3));
  EXPECT_FLOAT_EQ(queries[1].Extent().z, 10.0f);
}

TEST(SyntheticDataTest, UniformSegmentsRespectDomainAndCount) {
  SegmentDataset data = UniformSegments(500, kDomain, 5.0f, 1.0f, 0.5f, 7);
  ASSERT_EQ(data.size(), 500u);
  Aabb domain_with_slack = kDomain.Expanded(12.0f);
  for (const auto& s : data.segments) {
    EXPECT_TRUE(domain_with_slack.Contains(s.a));
    EXPECT_TRUE(domain_with_slack.Contains(s.b));
    EXPECT_FLOAT_EQ(s.radius, 0.5f);
    EXPECT_GT(s.Length(), 0.0);
  }
  // Ids are unique positions.
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data.ids[i], i);
  }
}

TEST(SyntheticDataTest, ClusteredSegmentsAreDenserThanUniform) {
  SegmentDataset uniform = UniformSegments(2000, kDomain, 4.0f, 1.0f, 0.3f, 8);
  SegmentDataset clustered =
      ClusteredSegments(2000, kDomain, 5, 3.0f, 4.0f, 0.3f, 8);
  // Clustered data occupies far less volume: compare bounding volumes of
  // random sub-batches via a crude proxy — mean pairwise midpoint distance.
  auto mean_spread = [](const SegmentDataset& d) {
    double sum = 0;
    int pairs = 0;
    for (size_t i = 0; i < d.size(); i += 97) {
      for (size_t j = i + 1; j < d.size(); j += 97) {
        sum += geom::Distance(d.segments[i].Midpoint(),
                              d.segments[j].Midpoint());
        ++pairs;
      }
    }
    return sum / pairs;
  };
  EXPECT_LT(mean_spread(clustered), mean_spread(uniform));
}

TEST(SyntheticDataTest, Deterministic) {
  SegmentDataset a = UniformSegments(100, kDomain, 5.0f, 1.0f, 0.5f, 99);
  SegmentDataset b = UniformSegments(100, kDomain, 5.0f, 1.0f, 0.5f, 99);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.segments[i].a, b.segments[i].a);
    EXPECT_EQ(a.segments[i].b, b.segments[i].b);
  }
}

}  // namespace
}  // namespace neuro
}  // namespace neurodb
