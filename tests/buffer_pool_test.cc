#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include "common/sim_clock.h"

namespace neurodb {
namespace storage {
namespace {

PageStore MakeStore(size_t pages) {
  PageStore store;
  for (size_t i = 0; i < pages; ++i) {
    PageId id = store.Allocate();
    std::vector<geom::SpatialElement> elems(1);
    elems[0].id = i;
    EXPECT_TRUE(store.Write(id, std::move(elems)).ok());
  }
  return store;
}

TEST(BufferPoolTest, MissThenHit) {
  PageStore store = MakeStore(4);
  BufferPool pool(&store, 4);
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(0).ok());
  EXPECT_EQ(pool.stats().Get("pool.misses"), 1u);
  EXPECT_EQ(pool.stats().Get("pool.hits"), 1u);
  EXPECT_TRUE(pool.Contains(0));
  EXPECT_FALSE(pool.Contains(1));
}

TEST(BufferPoolTest, LruEvictionOrder) {
  PageStore store = MakeStore(4);
  BufferPool pool(&store, 2);
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(1).ok());
  ASSERT_TRUE(pool.Fetch(0).ok());  // touch 0: 1 becomes LRU
  ASSERT_TRUE(pool.Fetch(2).ok());  // evicts 1
  EXPECT_TRUE(pool.Contains(0));
  EXPECT_FALSE(pool.Contains(1));
  EXPECT_TRUE(pool.Contains(2));
  EXPECT_EQ(pool.stats().Get("pool.evictions"), 1u);
}

TEST(BufferPoolTest, CapacityZeroBecomesOne) {
  PageStore store = MakeStore(2);
  BufferPool pool(&store, 0);
  EXPECT_EQ(pool.capacity(), 1u);
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(1).ok());
  EXPECT_EQ(pool.NumCached(), 1u);
}

TEST(BufferPoolTest, FetchUnknownPageFails) {
  PageStore store = MakeStore(1);
  BufferPool pool(&store, 2);
  EXPECT_FALSE(pool.Fetch(9).ok());
  // A failed fetch must not corrupt the cache.
  EXPECT_EQ(pool.NumCached(), 0u);
}

TEST(BufferPoolTest, ClockChargesMissAndHitCosts) {
  PageStore store = MakeStore(2);
  SimClock clock;
  DiskCostModel cost;
  cost.page_read_micros = 1000;
  cost.page_hit_micros = 10;
  BufferPool pool(&store, 2, &clock, cost);
  ASSERT_TRUE(pool.Fetch(0).ok());
  EXPECT_EQ(clock.NowMicros(), 1000u);
  ASSERT_TRUE(pool.Fetch(0).ok());
  EXPECT_EQ(clock.NowMicros(), 1010u);
}

TEST(BufferPoolTest, PrefetchDoesNotChargeDemandClock) {
  PageStore store = MakeStore(2);
  SimClock clock;
  BufferPool pool(&store, 2, &clock, DiskCostModel{});
  ASSERT_TRUE(pool.Prefetch(0).ok());
  EXPECT_EQ(clock.NowMicros(), 0u);
  EXPECT_TRUE(pool.Contains(0));
}

TEST(BufferPoolTest, PrefetchAccounting) {
  PageStore store = MakeStore(4);
  BufferPool pool(&store, 4);
  ASSERT_TRUE(pool.Prefetch(0).ok());
  ASSERT_TRUE(pool.Prefetch(1).ok());
  ASSERT_TRUE(pool.Fetch(0).ok());  // uses the prefetched page
  EXPECT_EQ(pool.stats().Get("pool.prefetch_issued"), 2u);
  EXPECT_EQ(pool.stats().Get("pool.prefetch_used"), 1u);
  // Demanding the same page again is a plain hit, not another use.
  ASSERT_TRUE(pool.Fetch(0).ok());
  EXPECT_EQ(pool.stats().Get("pool.prefetch_used"), 1u);
}

TEST(BufferPoolTest, RedundantPrefetchIsCounted) {
  PageStore store = MakeStore(2);
  BufferPool pool(&store, 2);
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Prefetch(0).ok());
  EXPECT_EQ(pool.stats().Get("pool.prefetch_redundant"), 1u);
  EXPECT_EQ(pool.stats().Get("pool.prefetch_issued"), 0u);
}

TEST(BufferPoolTest, EvictedUnusedPrefetchIsCounted) {
  PageStore store = MakeStore(4);
  BufferPool pool(&store, 1);
  ASSERT_TRUE(pool.Prefetch(0).ok());
  ASSERT_TRUE(pool.Fetch(1).ok());  // evicts 0 before it was ever used
  EXPECT_EQ(pool.stats().Get("pool.prefetch_evicted_unused"), 1u);
}

TEST(BufferPoolTest, EvictAllColdResets) {
  PageStore store = MakeStore(3);
  BufferPool pool(&store, 3);
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Prefetch(1).ok());
  pool.EvictAll();
  EXPECT_EQ(pool.NumCached(), 0u);
  EXPECT_FALSE(pool.Contains(0));
  // After a cold reset the next fetch is a miss again.
  ASSERT_TRUE(pool.Fetch(0).ok());
  EXPECT_EQ(pool.stats().Get("pool.misses"), 2u);
}

}  // namespace
}  // namespace storage
}  // namespace neurodb
