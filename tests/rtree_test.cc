#include "rtree/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace neurodb {
namespace rtree {
namespace {

using geom::Aabb;
using geom::ElementId;
using geom::ElementVec;
using geom::SpatialElement;
using geom::Vec3;

ElementVec RandomElements(size_t n, uint64_t seed, float domain = 100.0f) {
  Pcg32 rng(seed);
  ElementVec out;
  for (size_t i = 0; i < n; ++i) {
    Vec3 c(static_cast<float>(rng.Uniform(0, domain)),
           static_cast<float>(rng.Uniform(0, domain)),
           static_cast<float>(rng.Uniform(0, domain)));
    out.emplace_back(i, Aabb::Cube(c, static_cast<float>(rng.Uniform(0.5, 2))));
  }
  return out;
}

std::vector<ElementId> BruteForce(const ElementVec& elements,
                                  const Aabb& box) {
  std::vector<ElementId> out;
  for (const auto& e : elements) {
    if (e.bounds.Intersects(box)) out.push_back(e.id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RTreeOptionsTest, ValidationRules) {
  RTreeOptions ok;
  EXPECT_TRUE(ok.Validate().ok());
  RTreeOptions too_small;
  too_small.max_entries = 2;
  EXPECT_FALSE(too_small.Validate().ok());
  RTreeOptions bad_min;
  bad_min.max_entries = 10;
  bad_min.min_entries = 6;  // > max/2
  EXPECT_FALSE(bad_min.Validate().ok());
  RTreeOptions leaf;
  leaf.leaf_capacity = 128;
  EXPECT_TRUE(leaf.Validate().ok());
  EXPECT_EQ(leaf.LeafCapacity(), 128u);
  EXPECT_EQ(ok.LeafCapacity(), ok.max_entries);
}

TEST(RTreeTest, EmptyTreeBehaves) {
  RTree tree{RTreeOptions{}};
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 0);
  std::vector<ElementId> out;
  tree.RangeQuery(Aabb::Cube(Vec3(0, 0, 0), 10), &out);
  EXPECT_TRUE(out.empty());
  SpatialElement e;
  EXPECT_FALSE(tree.FindAny(Aabb::Cube(Vec3(0, 0, 0), 10), &e));
  EXPECT_TRUE(tree.Knn(Vec3(0, 0, 0), 3).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTreeTest, BulkLoadStrMatchesBruteForce) {
  ElementVec elements = RandomElements(2000, 5);
  auto tree = RTree::BulkLoadStr(elements);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), elements.size());
  EXPECT_TRUE(tree->CheckInvariants().ok());
  Pcg32 rng(6);
  for (int q = 0; q < 50; ++q) {
    Aabb box = Aabb::Cube(Vec3(static_cast<float>(rng.Uniform(0, 100)),
                               static_cast<float>(rng.Uniform(0, 100)),
                               static_cast<float>(rng.Uniform(0, 100))),
                          static_cast<float>(rng.Uniform(1, 30)));
    std::vector<ElementId> got;
    tree->RangeQuery(box, &got);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, BruteForce(elements, box));
  }
}

TEST(RTreeTest, BulkLoadHilbertMatchesBruteForce) {
  ElementVec elements = RandomElements(1500, 15);
  auto tree = RTree::BulkLoadHilbert(elements);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->CheckInvariants().ok());
  Aabb box = Aabb::Cube(Vec3(50, 50, 50), 25);
  std::vector<ElementId> got;
  tree->RangeQuery(box, &got);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, BruteForce(elements, box));
}

TEST(RTreeTest, BulkLoadEmptyAndSingle) {
  auto empty = RTree::BulkLoadStr({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_TRUE(empty->CheckInvariants().ok());

  ElementVec one = RandomElements(1, 3);
  auto single = RTree::BulkLoadStr(one);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->size(), 1u);
  EXPECT_EQ(single->Height(), 1);
  EXPECT_TRUE(single->CheckInvariants().ok());
}

TEST(RTreeTest, InsertRejectsEmptyBounds) {
  RTree tree{RTreeOptions{}};
  SpatialElement bad;
  EXPECT_TRUE(tree.Insert(bad).IsInvalidArgument());
}

TEST(RTreeTest, FindAnyReturnsIntersectingElement) {
  ElementVec elements = RandomElements(500, 21);
  auto tree = RTree::BulkLoadStr(elements);
  ASSERT_TRUE(tree.ok());
  Aabb box = Aabb::Cube(elements[123].bounds.Center(), 3.0f);
  SpatialElement found;
  QueryStats stats;
  ASSERT_TRUE(tree->FindAny(box, &found, &stats));
  EXPECT_TRUE(found.bounds.Intersects(box));
  EXPECT_GT(stats.nodes_visited, 0u);
  // A query far outside the domain finds nothing.
  EXPECT_FALSE(tree->FindAny(Aabb::Cube(Vec3(1e6f, 1e6f, 1e6f), 1), &found));
}

TEST(RTreeTest, KnnMatchesBruteForce) {
  ElementVec elements = RandomElements(800, 33);
  auto tree = RTree::BulkLoadStr(elements);
  ASSERT_TRUE(tree.ok());
  Vec3 p(40, 60, 20);
  const size_t k = 10;
  auto got = tree->Knn(p, k);
  ASSERT_EQ(got.size(), k);
  // Brute-force reference by box distance.
  std::vector<std::pair<double, ElementId>> ref;
  for (const auto& e : elements) {
    ref.emplace_back(e.bounds.SquaredDistanceTo(p), e.id);
  }
  std::sort(ref.begin(), ref.end());
  for (size_t i = 0; i < k; ++i) {
    EXPECT_NEAR(got[i].second * got[i].second, ref[i].first, 1e-6)
        << "rank " << i;
  }
  // Distances are non-decreasing.
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_GE(got[i].second, got[i - 1].second);
  }
}

TEST(RTreeTest, KnnWithKLargerThanTree) {
  ElementVec elements = RandomElements(5, 77);
  auto tree = RTree::BulkLoadStr(elements);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Knn(Vec3(0, 0, 0), 50).size(), 5u);
  EXPECT_TRUE(tree->Knn(Vec3(0, 0, 0), 0).empty());
}

TEST(RTreeTest, QueryStatsCountPerLevel) {
  ElementVec elements = RandomElements(5000, 9);
  RTreeOptions options;
  options.max_entries = 16;
  options.min_entries = 6;
  auto tree = RTree::BulkLoadStr(elements, options);
  ASSERT_TRUE(tree.ok());
  QueryStats stats;
  std::vector<ElementId> out;
  tree->RangeQuery(Aabb::Cube(Vec3(50, 50, 50), 40), &out, &stats);
  ASSERT_EQ(stats.nodes_per_level.size(),
            static_cast<size_t>(tree->Height()));
  uint64_t sum = 0;
  for (uint64_t c : stats.nodes_per_level) sum += c;
  EXPECT_EQ(sum, stats.nodes_visited);
  // Exactly one root visit.
  EXPECT_EQ(stats.nodes_per_level.back(), 1u);
  EXPECT_EQ(stats.results, out.size());
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  RTreeOptions options;
  options.max_entries = 8;
  options.min_entries = 3;
  auto small = RTree::BulkLoadStr(RandomElements(8, 1), options);
  auto large = RTree::BulkLoadStr(RandomElements(4096, 1), options);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_EQ(small->Height(), 1);
  EXPECT_GE(large->Height(), 4);  // 8^4 = 4096
  EXPECT_LE(large->Height(), 6);
}

TEST(RTreeTest, MemoryBytesIsPositiveAndGrows) {
  auto small = RTree::BulkLoadStr(RandomElements(100, 2));
  auto large = RTree::BulkLoadStr(RandomElements(10000, 2));
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(small->MemoryBytes(), 0u);
  EXPECT_GT(large->MemoryBytes(), small->MemoryBytes());
}

TEST(RTreeTest, LeafCapacityIsRespectedByBulkLoad) {
  RTreeOptions options;
  options.max_entries = 8;
  options.min_entries = 3;
  options.leaf_capacity = 100;
  auto tree = RTree::BulkLoadStr(RandomElements(1000, 4), options);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->CheckInvariants().ok());
  // With 100-entry leaves, 1000 elements need only 10 leaves.
  size_t leaves = 0;
  for (size_t i = 0; i < tree->NumNodes(); ++i) {
    if (tree->node(static_cast<int32_t>(i)).IsLeaf()) ++leaves;
  }
  EXPECT_EQ(leaves, 10u);
}

}  // namespace
}  // namespace rtree
}  // namespace neurodb
