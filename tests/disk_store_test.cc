// On-disk format tests: PageFile commit/reopen semantics, header
// validation, free-block reuse, DiskPageStore parity with the in-memory
// PageStore, and the PageStore epoch/move guarantees recovery depends on.

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/disk/disk_page_store.h"
#include "storage/disk/file.h"
#include "storage/disk/format.h"
#include "storage/disk/page_file.h"
#include "storage/disk/wal.h"
#include "storage/page_store.h"

namespace neurodb {
namespace storage {
namespace {

using geom::Aabb;
using geom::SpatialElement;
using geom::Vec3;

// Temp directories live under the test's working directory (the build
// tree), never outside the repo.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "ndb_disk_test_XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    if (made != nullptr) path_ = made;
  }
  ~TempDir() {
    if (!path_.empty()) std::filesystem::remove_all(path_);
  }
  std::string File(const std::string& name) const { return path_ + "/" + name; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<SpatialElement> MakeElements(size_t n, uint64_t first_id = 0) {
  std::vector<SpatialElement> out;
  for (size_t i = 0; i < n; ++i) {
    float f = static_cast<float>(first_id + i);
    out.emplace_back(first_id + i,
                     Aabb(Vec3(f, f, f), Vec3(f + 1, f + 1, f + 1)));
  }
  return out;
}

// ---------------------------------------------------------------------------
// PageFile
// ---------------------------------------------------------------------------

TEST(PageFileTest, SyncedPagesSurviveReopen) {
  TempDir dir;
  std::string path = dir.File("pages.ndb");
  {
    auto pf = PageFile::Create(DefaultFileSystem(), path, 512);
    ASSERT_TRUE(pf.ok()) << pf.status().ToString();
    for (PageId id = 0; id < 5; ++id) {
      ASSERT_TRUE(
          (*pf)->WritePage(id, EncodePageImage(id, MakeElements(3, id * 10)))
              .ok());
    }
    ASSERT_TRUE((*pf)->Sync(7).ok());
  }
  auto pf = PageFile::Open(DefaultFileSystem(), path);
  ASSERT_TRUE(pf.ok()) << pf.status().ToString();
  EXPECT_EQ((*pf)->epoch(), 7u);
  EXPECT_EQ((*pf)->NumPages(), 5u);
  EXPECT_EQ((*pf)->block_bytes(), 512u);
  for (PageId id = 0; id < 5; ++id) {
    auto image = (*pf)->ReadPage(id);
    ASSERT_TRUE(image.ok());
    auto page = DecodePageImage(image->data(), image->size(), id);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    ASSERT_EQ(page->elements.size(), 3u);
    EXPECT_EQ(page->elements[0].id, id * 10u);
  }
}

TEST(PageFileTest, UnsyncedWritesAreInvisibleAfterReopen) {
  TempDir dir;
  std::string path = dir.File("pages.ndb");
  {
    auto pf = PageFile::Create(DefaultFileSystem(), path, 512);
    ASSERT_TRUE(pf.ok());
    ASSERT_TRUE((*pf)->WritePage(0, EncodePageImage(0, MakeElements(2))).ok());
    ASSERT_TRUE((*pf)->Sync(1).ok());
    // Staged but never synced: must roll back to the epoch-1 state.
    ASSERT_TRUE((*pf)->WritePage(0, EncodePageImage(0, MakeElements(9))).ok());
    ASSERT_TRUE((*pf)->WritePage(1, EncodePageImage(1, MakeElements(4))).ok());
  }
  auto pf = PageFile::Open(DefaultFileSystem(), path);
  ASSERT_TRUE(pf.ok());
  EXPECT_EQ((*pf)->epoch(), 1u);
  EXPECT_EQ((*pf)->NumPages(), 1u);
  auto image = (*pf)->ReadPage(0);
  ASSERT_TRUE(image.ok());
  auto page = DecodePageImage(image->data(), image->size(), 0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->elements.size(), 2u);
}

TEST(PageFileTest, RejectsForeignMagic) {
  TempDir dir;
  std::string path = dir.File("not_a_page_file");
  auto file = DefaultFileSystem()->Open(path, true);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> junk(kPageFileHeaderBytes, 0xAB);
  ASSERT_TRUE((*file)->WriteAt(0, junk.data(), junk.size()).ok());
  auto pf = PageFile::Open(DefaultFileSystem(), path);
  ASSERT_FALSE(pf.ok());
  EXPECT_TRUE(pf.status().IsCorruption()) << pf.status().ToString();
}

TEST(PageFileTest, RejectsFutureFormatVersionWithCleanStatus) {
  TempDir dir;
  std::string path = dir.File("pages.ndb");
  {
    auto pf = PageFile::Create(DefaultFileSystem(), path, 512);
    ASSERT_TRUE(pf.ok());
    ASSERT_TRUE((*pf)->Sync(1).ok());
  }
  // Patch the version field to a future value and re-seal the CRC, so the
  // only thing wrong with the header is its version.
  auto file = DefaultFileSystem()->Open(path, false);
  ASSERT_TRUE(file.ok());
  uint8_t header[kPageFileHeaderBytes];
  auto n = (*file)->ReadAt(0, header, sizeof(header));
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, sizeof(header));
  PutU32(header + 8, kFormatVersion + 1);   // version field
  PutU32(header + 44, Crc32(header, 44));   // trailing CRC
  ASSERT_TRUE((*file)->WriteAt(0, header, sizeof(header)).ok());

  auto pf = PageFile::Open(DefaultFileSystem(), path);
  ASSERT_FALSE(pf.ok());
  EXPECT_TRUE(pf.status().IsInvalidArgument()) << pf.status().ToString();
  EXPECT_NE(pf.status().ToString().find("version"), std::string::npos);
}

TEST(PageFileTest, CorruptHeaderCrcIsRejected) {
  TempDir dir;
  std::string path = dir.File("pages.ndb");
  {
    auto pf = PageFile::Create(DefaultFileSystem(), path, 512);
    ASSERT_TRUE(pf.ok());
    ASSERT_TRUE((*pf)->Sync(1).ok());
  }
  auto file = DefaultFileSystem()->Open(path, false);
  ASSERT_TRUE(file.ok());
  uint8_t byte = 0;
  ASSERT_TRUE((*file)->ReadAt(16, &byte, 1).ok());  // epoch field
  byte ^= 0xFF;
  ASSERT_TRUE((*file)->WriteAt(16, &byte, 1).ok());
  auto pf = PageFile::Open(DefaultFileSystem(), path);
  ASSERT_FALSE(pf.ok());
  EXPECT_TRUE(pf.status().IsCorruption());
}

TEST(PageFileTest, RewritesReuseFreedBlocksInsteadOfGrowingTheFile) {
  TempDir dir;
  auto pf = PageFile::Create(DefaultFileSystem(), dir.File("pages.ndb"), 512);
  ASSERT_TRUE(pf.ok());
  // Two live generations at most (copy-on-write holds old + new between
  // Syncs), so steady-state rewriting must plateau, not grow linearly.
  ASSERT_TRUE((*pf)->WritePage(0, EncodePageImage(0, MakeElements(10))).ok());
  ASSERT_TRUE((*pf)->Sync(1).ok());
  uint64_t blocks_after_first = (*pf)->file_blocks();
  for (Epoch e = 2; e <= 21; ++e) {
    ASSERT_TRUE(
        (*pf)->WritePage(0, EncodePageImage(0, MakeElements(10))).ok());
    ASSERT_TRUE((*pf)->Sync(e).ok());
  }
  EXPECT_LE((*pf)->file_blocks(), blocks_after_first + 4);
}

TEST(PageFileTest, FreePageDropsThePageAtTheNextSync) {
  TempDir dir;
  std::string path = dir.File("pages.ndb");
  {
    auto pf = PageFile::Create(DefaultFileSystem(), path, 512);
    ASSERT_TRUE(pf.ok());
    ASSERT_TRUE((*pf)->WritePage(0, EncodePageImage(0, MakeElements(2))).ok());
    ASSERT_TRUE((*pf)->WritePage(1, EncodePageImage(1, MakeElements(2))).ok());
    ASSERT_TRUE((*pf)->Sync(1).ok());
    ASSERT_TRUE((*pf)->FreePage(0).ok());
    ASSERT_TRUE((*pf)->Sync(2).ok());
  }
  auto pf = PageFile::Open(DefaultFileSystem(), path);
  ASSERT_TRUE(pf.ok());
  EXPECT_EQ((*pf)->NumPages(), 1u);
  EXPECT_FALSE((*pf)->Contains(0));
  EXPECT_TRUE((*pf)->Contains(1));
}

// ---------------------------------------------------------------------------
// WriteAheadLog
// ---------------------------------------------------------------------------

TEST(WalTest, AppendedRecordsReplayInOrderAcrossReopen) {
  TempDir dir;
  std::string path = dir.File("wal.ndb");
  {
    auto wal = WriteAheadLog::OpenOrCreate(DefaultFileSystem(), path);
    ASSERT_TRUE(wal.ok());
    for (Epoch e = 1; e <= 3; ++e) {
      ASSERT_TRUE((*wal)->Append(e, {uint8_t(e), uint8_t(e + 1)}).ok());
    }
  }
  auto wal = WriteAheadLog::OpenOrCreate(DefaultFileSystem(), path);
  ASSERT_TRUE(wal.ok());
  std::vector<Epoch> epochs;
  WriteAheadLog::ReplayStats stats;
  ASSERT_TRUE((*wal)
                  ->Replay(
                      [&](const WriteAheadLog::Record& r) {
                        epochs.push_back(r.epoch);
                        EXPECT_EQ(r.payload.size(), 2u);
                        return Status::OK();
                      },
                      &stats)
                  .ok());
  EXPECT_EQ(epochs, (std::vector<Epoch>{1, 2, 3}));
  EXPECT_EQ(stats.records, 3u);
  EXPECT_FALSE(stats.torn_tail);
}

TEST(WalTest, TornTailRecordIsDroppedCleanly) {
  TempDir dir;
  std::string path = dir.File("wal.ndb");
  uint64_t intact_end = 0;
  {
    auto wal = WriteAheadLog::OpenOrCreate(DefaultFileSystem(), path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, {1, 2, 3, 4}).ok());
    intact_end = (*wal)->end_offset();
    ASSERT_TRUE((*wal)->Append(2, {5, 6, 7, 8}).ok());
  }
  // Tear the final record: chop 3 bytes off the file.
  {
    auto file = DefaultFileSystem()->Open(path, false);
    ASSERT_TRUE(file.ok());
    auto size = (*file)->Size();
    ASSERT_TRUE(size.ok());
    ASSERT_TRUE((*file)->Truncate(*size - 3).ok());
  }
  auto wal = WriteAheadLog::OpenOrCreate(DefaultFileSystem(), path);
  ASSERT_TRUE(wal.ok());
  size_t records = 0;
  WriteAheadLog::ReplayStats stats;
  ASSERT_TRUE((*wal)
                  ->Replay(
                      [&](const WriteAheadLog::Record&) {
                        ++records;
                        return Status::OK();
                      },
                      &stats)
                  .ok());
  EXPECT_EQ(records, 1u);
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_EQ(stats.end_offset, intact_end);
  EXPECT_GT(stats.dropped_bytes, 0u);
  // After truncation the log appends cleanly where the intact data ends.
  ASSERT_TRUE((*wal)->TruncateTail(stats.end_offset).ok());
  ASSERT_TRUE((*wal)->Append(2, {9}).ok());
}

TEST(WalTest, CorruptPayloadByteStopsReplayAtThatRecord) {
  TempDir dir;
  std::string path = dir.File("wal.ndb");
  uint64_t second_offset = 0;
  {
    auto wal = WriteAheadLog::OpenOrCreate(DefaultFileSystem(), path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(1, {1, 2, 3, 4}).ok());
    second_offset = (*wal)->end_offset();
    ASSERT_TRUE((*wal)->Append(2, {5, 6, 7, 8}).ok());
  }
  {
    auto file = DefaultFileSystem()->Open(path, false);
    ASSERT_TRUE(file.ok());
    // Flip one payload byte of the second record (header is 16 bytes).
    uint8_t byte = 0;
    ASSERT_TRUE((*file)->ReadAt(second_offset + 16, &byte, 1).ok());
    byte ^= 0xFF;
    ASSERT_TRUE((*file)->WriteAt(second_offset + 16, &byte, 1).ok());
  }
  auto wal = WriteAheadLog::OpenOrCreate(DefaultFileSystem(), path);
  ASSERT_TRUE(wal.ok());
  size_t records = 0;
  WriteAheadLog::ReplayStats stats;
  ASSERT_TRUE((*wal)
                  ->Replay(
                      [&](const WriteAheadLog::Record&) {
                        ++records;
                        return Status::OK();
                      },
                      &stats)
                  .ok());
  EXPECT_EQ(records, 1u);
  EXPECT_TRUE(stats.torn_tail);
}

// ---------------------------------------------------------------------------
// DiskPageStore — behaves exactly like the in-memory store through the
// PageStore interface, plus real I/O accounting and reopen.
// ---------------------------------------------------------------------------

TEST(DiskPageStoreTest, MatchesMemoryStoreSemantics) {
  TempDir dir;
  auto made = DiskPageStore::Create(dir.File("store.pages"));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  DiskPageStore& store = **made;

  EXPECT_EQ(store.Allocate(), 0u);
  EXPECT_EQ(store.Allocate(), 1u);
  EXPECT_EQ(store.NumPages(), 2u);

  ASSERT_TRUE(store.Write(0, MakeElements(10)).ok());
  ASSERT_TRUE(store.Write(1, MakeElements(2, 100)).ok());
  EXPECT_TRUE(store.Write(7, MakeElements(1)).IsOutOfRange());
  EXPECT_TRUE(store.Read(9).status().IsOutOfRange());

  auto page = store.Read(0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ((*page)->id, 0u);
  ASSERT_EQ((*page)->elements.size(), 10u);
  EXPECT_EQ((*page)->elements[3].id, 3u);
  // Repeat Read returns the same stable pointer and still counts.
  auto again = store.Read(0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *page);

  // Raw counters tick exactly like the in-memory store's.
  EXPECT_EQ(store.NumWrites(), 2u);
  EXPECT_EQ(store.NumReads(), 2u);
  EXPECT_EQ(store.Peek(0), *page);       // Peek never counts
  EXPECT_EQ(store.Peek(9), nullptr);
  EXPECT_EQ(store.NumReads(), 2u);

  EXPECT_EQ(store.TotalBytes(), 2 * kPageHeaderBytes + 12 * kElementBytes);

  // An allocated-but-never-written page reads back empty (memory-store
  // behaviour), not as an error.
  PageId fresh = store.Allocate();
  auto empty = store.Read(fresh);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ((*empty)->id, fresh);
  EXPECT_TRUE((*empty)->elements.empty());
}

TEST(DiskPageStoreTest, CountsDeviceIoWhereMemoryStoreReportsZeros) {
  TempDir dir;
  PageStore memory;
  auto made = DiskPageStore::Create(dir.File("store.pages"));
  ASSERT_TRUE(made.ok());
  DiskPageStore& disk = **made;

  PageId mid = memory.Allocate();
  PageId did = disk.Allocate();
  ASSERT_TRUE(memory.Write(mid, MakeElements(5)).ok());
  ASSERT_TRUE(disk.Write(did, MakeElements(5)).ok());
  ASSERT_TRUE(memory.Read(mid).ok());
  ASSERT_TRUE(disk.Read(did).ok());
  ASSERT_TRUE(disk.Flush().ok());

  IoStats none = memory.io();
  EXPECT_EQ(none.bytes_read, 0u);
  EXPECT_EQ(none.bytes_written, 0u);
  EXPECT_EQ(none.fsyncs, 0u);

  IoStats io = disk.io();
  EXPECT_GT(io.bytes_written, 0u);
  EXPECT_GT(io.bytes_read, 0u);   // Write invalidates the frame: cold read
  EXPECT_GT(io.fsyncs, 0u);
}

TEST(DiskPageStoreTest, ReopenRestoresPagesAndNeverRegressesEpoch) {
  TempDir dir;
  std::string path = dir.File("store.pages");
  {
    auto made = DiskPageStore::Create(path);
    ASSERT_TRUE(made.ok());
    DiskPageStore& store = **made;
    store.Allocate();
    store.Allocate();
    ASSERT_TRUE(store.Write(0, MakeElements(4)).ok());
    ASSERT_TRUE(store.Write(1, MakeElements(6, 50)).ok());
    store.BumpEpoch();
    store.BumpEpoch();
    ASSERT_TRUE(store.Flush().ok());  // commits at epoch 2
  }
  auto made = DiskPageStore::Open(path);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  DiskPageStore& store = **made;
  // A reopened store resumes at the persisted epoch: a BufferPool that
  // cached under epoch 2 must not see a "fresh" epoch-0 store.
  EXPECT_GE(store.epoch(), 2u);
  EXPECT_EQ(store.NumPages(), 2u);
  auto page = store.Read(1);
  ASSERT_TRUE(page.ok());
  ASSERT_EQ((*page)->elements.size(), 6u);
  EXPECT_EQ((*page)->elements[0].id, 50u);
}

TEST(DiskPageStoreTest, ResetDropsPagesAndAdvancesEpoch) {
  TempDir dir;
  auto made = DiskPageStore::Create(dir.File("store.pages"));
  ASSERT_TRUE(made.ok());
  DiskPageStore& store = **made;
  store.Allocate();
  ASSERT_TRUE(store.Write(0, MakeElements(3)).ok());
  Epoch before = store.epoch();
  store.Reset();
  EXPECT_GT(store.epoch(), before);
  EXPECT_EQ(store.NumPages(), 0u);
  EXPECT_TRUE(store.Read(0).status().IsOutOfRange());
  // The file is reusable immediately.
  store.Allocate();
  ASSERT_TRUE(store.Write(0, MakeElements(1)).ok());
  ASSERT_TRUE(store.Flush().ok());
}

// ---------------------------------------------------------------------------
// PageStore move/epoch guarantees (recovery reopens stores and moves them
// into place; neither step may hand a pool a regressed epoch).
// ---------------------------------------------------------------------------

TEST(PageStoreMoveTest, SelfMoveAssignmentIsSafe) {
  PageStore store;
  PageId id = store.Allocate();
  ASSERT_TRUE(store.Write(id, MakeElements(5)).ok());
  store.BumpEpoch();

  PageStore& alias = store;
  store = std::move(alias);

  EXPECT_EQ(store.NumPages(), 1u);
  EXPECT_EQ(store.epoch(), 1u);
  auto page = store.Read(id);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ((*page)->elements.size(), 5u);
}

TEST(PageStoreMoveTest, MoveAssignmentNeverRegressesEpoch) {
  PageStore old_store;
  old_store.BumpEpoch();
  old_store.BumpEpoch();
  old_store.BumpEpoch();  // epoch 3: pools may have cached under it

  PageStore young;        // epoch 0
  young.Allocate();
  old_store = std::move(young);
  // Contents moved, but the epoch keeps the maximum of the two.
  EXPECT_EQ(old_store.NumPages(), 1u);
  EXPECT_EQ(old_store.epoch(), 3u);

  // The other direction adopts the higher incoming epoch as usual.
  PageStore target;
  PageStore older;
  older.BumpEpoch();
  older.BumpEpoch();
  target = std::move(older);
  EXPECT_EQ(target.epoch(), 2u);
}

TEST(PageStoreMoveTest, ResetKeepsEpochStrictlyIncreasing) {
  PageStore store;
  Epoch last = store.epoch();
  for (int i = 0; i < 5; ++i) {
    store.Allocate();
    store.Reset();
    EXPECT_GT(store.epoch(), last);
    last = store.epoch();
  }
}

}  // namespace
}  // namespace storage
}  // namespace neurodb
