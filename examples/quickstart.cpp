// Quickstart: generate a small synthetic microcircuit, load it into the
// query engine, and run each of the demo's three exhibits once through the
// typed-request API — a FLAT vs R-tree range query (RangeRequest), a SCOUT
// walkthrough (WalkthroughRequest), and a TOUCH synapse join (JoinRequest).
//
//   ./examples/quickstart

#include <cstdio>

#include "engine/query_engine.h"
#include "neuro/circuit_generator.h"
#include "neuro/workload.h"

using namespace neurodb;

int main() {
  // 1. A small rat-cortex-like column (deterministic).
  neuro::CircuitParams params;
  params.num_neurons = 60;
  params.seed = 7;
  auto circuit = neuro::CircuitGenerator(params).Generate();
  if (!circuit.ok()) {
    std::fprintf(stderr, "generate: %s\n", circuit.status().ToString().c_str());
    return 1;
  }
  std::printf("circuit: %zu neurons, %zu branch segments, %.0f um of cable\n",
              circuit->NumNeurons(), circuit->TotalSegments(),
              circuit->TotalCableLength());

  // 2. Load into the engine: lays data out on each backend's simulated disk
  // and builds FLAT plus the baseline R-tree. Page granularity is the main
  // knob: finer pages sharpen both crawling and prefetching.
  engine::EngineOptions options;
  options.flat.elems_per_page = 64;
  engine::QueryEngine db(options);
  if (Status s = db.LoadCircuit(*circuit); !s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3. Range query on every backend (paper Figure 3's panel). Results
  // stream through a visitor; here we only need the statistics rows.
  engine::RangeRequest range;
  range.box = geom::Aabb::Cube(db.domain().Center(), 40.0f);
  range.backend = engine::BackendChoice::kAll;
  auto report = db.Execute(range);
  if (!report.ok()) return 1;
  std::printf("\nrange query (40 um cube @ center): %llu elements%s\n",
              static_cast<unsigned long long>(report->results),
              report->results_match ? "" : "  [BACKENDS DISAGREE]");
  for (const auto& row : report->rows) {
    std::printf("  %-7s: %4llu pages, %6llu us\n", row.method.c_str(),
                static_cast<unsigned long long>(row.stats.pages_read),
                static_cast<unsigned long long>(row.stats.time_us));
  }

  // 4. Walk along a branch with SCOUT prefetching (paper Figure 6).
  auto path = neuro::FollowBranchPath(*circuit, 0, 12.0f, 1);
  if (!path.ok()) return 1;
  engine::WalkthroughRequest walk;
  walk.queries = neuro::PathQueries(*path, 30.0f);
  walk.method = scout::PrefetchMethod::kNone;
  auto none = db.Execute(walk);
  walk.method = scout::PrefetchMethod::kScout;
  auto scout = db.Execute(walk);
  if (!none.ok() || !scout.ok()) return 1;
  std::printf("\nwalkthrough (%zu steps along a branch):\n",
              walk.queries.size());
  std::printf("  no prefetch : stall %6.1f ms\n", none->total_stall_us / 1e3);
  std::printf("  SCOUT       : stall %6.1f ms (%.1fx), %llu/%llu prefetches used\n",
              scout->total_stall_us / 1e3,
              static_cast<double>(none->total_stall_us) /
                  std::max<uint64_t>(1, scout->total_stall_us),
              static_cast<unsigned long long>(scout->prefetch_used),
              static_cast<unsigned long long>(scout->prefetch_issued));

  // 5. Find synapse candidates with TOUCH (paper Figure 7).
  engine::JoinRequest join;
  join.method = touch::JoinMethod::kTouch;
  join.options.epsilon = 3.0f;
  auto synapses = db.Execute(join);
  if (!synapses.ok()) return 1;
  std::printf("\nsynapse discovery (axon-dendrite pairs within 3 um):\n");
  std::printf("  TOUCH found %zu candidate synapses in %.1f ms "
              "(%llu comparisons)\n",
              synapses->pairs.size(), synapses->stats.total_ns / 1e6,
              static_cast<unsigned long long>(synapses->stats.mbr_tests));
  return 0;
}
