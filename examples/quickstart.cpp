// Quickstart: generate a small synthetic microcircuit, load it into the
// toolkit, and run each of the demo's three exhibits once — a FLAT vs
// R-tree range query, a SCOUT walkthrough step, and a TOUCH synapse join.
//
//   ./examples/quickstart

#include <cstdio>

#include "core/toolkit.h"
#include "neuro/circuit_generator.h"
#include "neuro/workload.h"

using namespace neurodb;

int main() {
  // 1. A small rat-cortex-like column (deterministic).
  neuro::CircuitParams params;
  params.num_neurons = 60;
  params.seed = 7;
  auto circuit = neuro::CircuitGenerator(params).Generate();
  if (!circuit.ok()) {
    std::fprintf(stderr, "generate: %s\n", circuit.status().ToString().c_str());
    return 1;
  }
  std::printf("circuit: %zu neurons, %zu branch segments, %.0f um of cable\n",
              circuit->NumNeurons(), circuit->TotalSegments(),
              circuit->TotalCableLength());

  // 2. Load into the toolkit: lays data out on simulated disk pages and
  // builds FLAT plus the baseline R-tree. Page granularity is the main
  // knob: finer pages sharpen both crawling and prefetching.
  core::ToolkitOptions options;
  options.flat.elems_per_page = 64;
  core::NeuroToolkit tk(options);
  if (Status s = tk.LoadCircuit(*circuit); !s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3. Range query, FLAT vs R-tree (paper Figure 3's panel).
  geom::Aabb query = geom::Aabb::Cube(tk.domain().Center(), 40.0f);
  auto report = tk.CompareRangeQuery(query);
  if (!report.ok()) return 1;
  std::printf("\nrange query (40 um cube @ center): %llu elements\n",
              static_cast<unsigned long long>(report->flat.results));
  std::printf("  FLAT   : %4llu pages, %6llu us\n",
              static_cast<unsigned long long>(report->flat.pages_read),
              static_cast<unsigned long long>(report->flat.time_us));
  std::printf("  R-Tree : %4llu pages, %6llu us\n",
              static_cast<unsigned long long>(report->rtree.pages_read),
              static_cast<unsigned long long>(report->rtree.time_us));

  // 4. Walk along a branch with SCOUT prefetching (paper Figure 6).
  auto path = neuro::FollowBranchPath(*circuit, 0, 12.0f, 1);
  if (!path.ok()) return 1;
  auto queries = neuro::PathQueries(*path, 30.0f);
  auto none = tk.WalkThrough(queries, scout::PrefetchMethod::kNone);
  auto scout = tk.WalkThrough(queries, scout::PrefetchMethod::kScout);
  if (!none.ok() || !scout.ok()) return 1;
  std::printf("\nwalkthrough (%zu steps along a branch):\n", queries.size());
  std::printf("  no prefetch : stall %6.1f ms\n", none->total_stall_us / 1e3);
  std::printf("  SCOUT       : stall %6.1f ms (%.1fx), %llu/%llu prefetches used\n",
              scout->total_stall_us / 1e3,
              static_cast<double>(none->total_stall_us) /
                  std::max<uint64_t>(1, scout->total_stall_us),
              static_cast<unsigned long long>(scout->prefetch_used),
              static_cast<unsigned long long>(scout->prefetch_issued));

  // 5. Find synapse candidates with TOUCH (paper Figure 7).
  touch::JoinOptions join_options;
  join_options.epsilon = 3.0f;
  auto synapses = tk.FindSynapses(touch::JoinMethod::kTouch, join_options);
  if (!synapses.ok()) return 1;
  std::printf("\nsynapse discovery (axon-dendrite pairs within 3 um):\n");
  std::printf("  TOUCH found %zu candidate synapses in %.1f ms "
              "(%llu comparisons)\n",
              synapses->pairs.size(), synapses->stats.total_ns / 1e6,
              static_cast<unsigned long long>(synapses->stats.mbr_tests));
  return 0;
}
