// branch_following — the demo's SCOUT exhibit (paper Figures 5-6) as a
// console program, on the engine's interactive session API: open a Session,
// walk along a neuron branch issuing one Step per waypoint (the per-step
// panel updates live — stall, pages, candidate structures), then replay the
// same path with every prefetching method for the end-of-run statistics.
//
//   ./examples/branch_following

#include <cstdio>

#include "common/table.h"
#include "engine/query_engine.h"
#include "neuro/circuit_generator.h"
#include "neuro/workload.h"

using namespace neurodb;

int main() {
  neuro::CircuitParams params;
  params.num_neurons = 80;
  params.seed = 21;
  auto circuit = neuro::CircuitGenerator(params).Generate();
  if (!circuit.ok()) return 1;

  engine::EngineOptions options;
  options.flat.elems_per_page = 128;
  options.session.think_time_us = 400'000;  // the scientist looks at each frame
  options.cost.page_read_micros = 5000;
  engine::QueryEngine db(options);
  if (!db.LoadCircuit(*circuit).ok()) return 1;

  auto path = neuro::FollowBranchPath(*circuit, 0, 12.0f, 1);
  if (!path.ok()) return 1;
  auto queries = neuro::PathQueries(*path, 35.0f);
  std::printf(
      "following the longest branch of neuron 0: %zu steps, %.0f um\n\n",
      queries.size(), path->Length());

  // Interactive exploration: one Step at a time through a SCOUT session —
  // the incremental form of the demo's live panel.
  auto session = db.OpenSession(scout::PrefetchMethod::kScout);
  if (!session.ok()) return 1;
  TableWriter steps("SCOUT per-step panel (paper Fig 5/6)",
                    {"step", "stall ms", "missed", "hits", "prefetched",
                     "candidates"});
  for (size_t i = 0; i < queries.size(); ++i) {
    auto step = session->Step(queries[i]);
    if (!step.ok()) return 1;
    if (i < 12) {
      steps.AddRow({TableWriter::Int(i),
                    TableWriter::Num(step->stall_us / 1e3, 1),
                    TableWriter::Int(step->pages_missed),
                    TableWriter::Int(step->pages_hit),
                    TableWriter::Int(step->prefetched),
                    TableWriter::Int(step->candidates)});
    }
  }
  steps.Print();

  // Method comparison via whole-path replay requests.
  TableWriter summary("walkthrough summary by method",
                      {"method", "stall ms", "speedup", "prefetched", "used",
                       "precision"});
  uint64_t none_stall = 1;
  for (auto method : scout::AllPrefetchMethods()) {
    engine::WalkthroughRequest request;
    request.queries = queries;
    request.method = method;
    auto run = db.Execute(request);
    if (!run.ok()) return 1;
    if (method == scout::PrefetchMethod::kNone) {
      none_stall = std::max<uint64_t>(1, run->total_stall_us);
    }
    summary.AddRow(
        {scout::PrefetchMethodName(method),
         TableWriter::Num(run->total_stall_us / 1e3, 1),
         TableWriter::Factor(static_cast<double>(none_stall) /
                             std::max<uint64_t>(1, run->total_stall_us)),
         TableWriter::Int(run->prefetch_issued),
         TableWriter::Int(run->prefetch_used),
         TableWriter::Num(100.0 * run->PrefetchPrecision(), 1) + "%"});
  }
  std::printf("\n");
  summary.Print();
  return 0;
}
