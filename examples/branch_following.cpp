// branch_following — the demo's SCOUT exhibit (paper Figures 5-6) as a
// console program: walk along a neuron branch issuing moving range queries
// with each prefetching method, and print the per-step panel (stall, pages,
// candidate structures) plus the end-of-run statistics.
//
//   ./examples/branch_following

#include <cstdio>

#include "common/table.h"
#include "flat/flat_index.h"
#include "neuro/circuit_generator.h"
#include "neuro/workload.h"
#include "scout/session.h"

using namespace neurodb;

int main() {
  neuro::CircuitParams params;
  params.num_neurons = 80;
  params.seed = 21;
  auto circuit = neuro::CircuitGenerator(params).Generate();
  if (!circuit.ok()) return 1;

  neuro::SegmentDataset dataset = circuit->FlattenSegments();
  neuro::SegmentResolver resolver;
  resolver.AddDataset(dataset);

  storage::PageStore store;
  flat::FlatOptions flat_options;
  flat_options.elems_per_page = 128;
  auto index = flat::FlatIndex::Build(dataset.Elements(), &store, flat_options);
  if (!index.ok()) return 1;

  auto path = neuro::FollowBranchPath(*circuit, 0, 12.0f, 1);
  if (!path.ok()) return 1;
  auto queries = neuro::PathQueries(*path, 35.0f);
  std::printf(
      "following the longest branch of neuron 0: %zu steps, %.0f um\n\n",
      queries.size(), path->Length());

  scout::SessionOptions options;
  options.think_time_us = 400'000;  // the scientist looks at each frame
  options.cost.page_read_micros = 5000;
  scout::WalkthroughSession session(&*index, &store, &resolver, options);

  // Per-step panel for SCOUT (the demo updated this live).
  auto scout_run = session.Run(queries, scout::PrefetchMethod::kScout);
  if (!scout_run.ok()) return 1;
  TableWriter steps("SCOUT per-step panel (paper Fig 5/6)",
                    {"step", "stall ms", "missed", "hits", "prefetched",
                     "candidates"});
  for (size_t i = 0; i < scout_run->steps.size() && i < 12; ++i) {
    const auto& s = scout_run->steps[i];
    steps.AddRow({TableWriter::Int(i), TableWriter::Num(s.stall_us / 1e3, 1),
                  TableWriter::Int(s.pages_missed),
                  TableWriter::Int(s.pages_hit), TableWriter::Int(s.prefetched),
                  TableWriter::Int(s.candidates)});
  }
  steps.Print();

  // Method comparison.
  TableWriter summary("walkthrough summary by method",
                      {"method", "stall ms", "speedup", "prefetched", "used",
                       "precision"});
  uint64_t none_stall = 1;
  for (auto method : scout::AllPrefetchMethods()) {
    auto run = session.Run(queries, method);
    if (!run.ok()) return 1;
    if (method == scout::PrefetchMethod::kNone) {
      none_stall = std::max<uint64_t>(1, run->total_stall_us);
    }
    summary.AddRow(
        {scout::PrefetchMethodName(method),
         TableWriter::Num(run->total_stall_us / 1e3, 1),
         TableWriter::Factor(static_cast<double>(none_stall) /
                             std::max<uint64_t>(1, run->total_stall_us)),
         TableWriter::Int(run->prefetch_issued),
         TableWriter::Int(run->prefetch_used),
         TableWriter::Num(100.0 * run->PrefetchPrecision(), 1) + "%"});
  }
  std::printf("\n");
  summary.Print();
  return 0;
}
