// flat_explorer — the demo's FLAT exhibit (paper Figures 2-4) as a console
// program on the engine API: run a RangeRequest{kAll} in a dense and a
// sparse region, show the live statistics panel, and visualize FLAT's crawl
// order (the order in which result pages are loaded while "crawling through
// the query range") plus the R-tree's node fetches per level.
//
//   ./examples/flat_explorer

#include <cstdio>

#include "common/table.h"
#include "engine/query_engine.h"
#include "flat/flat_index.h"
#include "neuro/circuit_generator.h"
#include "neuro/workload.h"
#include "storage/buffer_pool.h"

using namespace neurodb;

int main() {
  neuro::CircuitParams params;
  params.num_neurons = 150;
  params.seed = 12;
  params.layer_weights = {0.05f, 0.45f, 0.20f, 0.20f, 0.10f};
  auto circuit = neuro::CircuitGenerator(params).Generate();
  if (!circuit.ok()) return 1;

  engine::QueryEngine db;
  if (!db.LoadCircuit(*circuit).ok()) return 1;
  std::printf("model: %zu neurons / %zu segments on %zu data pages\n\n",
              circuit->NumNeurons(), db.NumSegments(),
              db.flat_index().NumPages());

  geom::Aabb domain = db.domain();
  float band = 500.0f / 5;
  struct Probe {
    const char* name;
    float y;
  } probes[] = {{"dense region (layer 2)", 500 - 1.5f * band},
                {"sparse region (layer 5)", 0.5f * band}};

  for (const Probe& probe : probes) {
    geom::Vec3 center(domain.Center().x, probe.y, domain.Center().z);
    engine::RangeRequest request;
    request.box = geom::Aabb::Cube(center, 45.0f);
    request.backend = engine::BackendChoice::kAll;
    auto report = db.Execute(request);
    if (!report.ok()) return 1;

    std::printf("=== %s ===\n", probe.name);
    TableWriter panel("live statistics (paper Fig 3)",
                      {"method", "disk pages", "time us", "results"});
    for (const auto& row : report->rows) {
      panel.AddRow({row.method, TableWriter::Int(row.stats.pages_read),
                    TableWriter::Int(row.stats.time_us),
                    TableWriter::Int(row.stats.results)});
    }
    panel.Print();

    for (const auto& row : report->rows) {
      if (row.stats.nodes_per_level.empty()) continue;
      std::printf("%s node fetches per level (root on the left): ",
                  row.method.c_str());
      for (size_t l = row.stats.nodes_per_level.size(); l-- > 0;) {
        std::printf("%llu ", static_cast<unsigned long long>(
                                 row.stats.nodes_per_level[l]));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  // Crawl-order trace (paper Figure 4): trace directly against the engine's
  // FLAT backend through a private pool over its page store.
  const flat::FlatIndex& index = db.flat_index();
  storage::BufferPool pool(db.flat_backend()->store(), 1 << 20);
  geom::Aabb query = geom::Aabb::Cube(
      geom::Vec3(domain.Center().x, 500 - 1.5f * band, domain.Center().z),
      45.0f);
  std::vector<uint32_t> order;
  geom::CountingVisitor out;
  flat::FlatQueryStats stats;
  if (!index.RangeQueryTraced(query, &pool, out, &order, &stats).ok()) {
    return 1;
  }
  std::printf("=== FLAT crawl order (paper Fig 4) ===\n");
  std::printf(
      "seed page found in %llu seed-tree node visits, then %zu pages "
      "crawled:\n",
      static_cast<unsigned long long>(stats.seed_nodes_visited), order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    const geom::Aabb& b = index.PageBounds(order[i]);
    std::printf("  step %2zu: page %4u  center=(%.0f, %.0f, %.0f)  "
                "neighbors=%zu\n",
                i, order[i], b.Center().x, b.Center().y, b.Center().z,
                index.NeighborsOf(order[i]).size());
    if (i == 14 && order.size() > 16) {
      std::printf("  ... (%zu more)\n", order.size() - 15);
      break;
    }
  }
  return 0;
}
