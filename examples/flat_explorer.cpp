// flat_explorer — the demo's FLAT exhibit (paper Figures 2-4) as a console
// program: run a query in a dense and a sparse region, show the live
// statistics panel, and visualize FLAT's crawl order (the order in which
// result pages are loaded while "crawling through the query range") plus
// the R-tree's node fetches per level.
//
//   ./examples/flat_explorer

#include <cstdio>

#include "common/sim_clock.h"
#include "common/table.h"
#include "core/toolkit.h"
#include "flat/flat_index.h"
#include "neuro/circuit_generator.h"
#include "neuro/workload.h"
#include "storage/buffer_pool.h"

using namespace neurodb;

int main() {
  neuro::CircuitParams params;
  params.num_neurons = 150;
  params.seed = 12;
  params.layer_weights = {0.05f, 0.45f, 0.20f, 0.20f, 0.10f};
  auto circuit = neuro::CircuitGenerator(params).Generate();
  if (!circuit.ok()) return 1;

  core::NeuroToolkit tk;
  if (!tk.LoadCircuit(*circuit).ok()) return 1;
  std::printf("model: %zu neurons / %zu segments on %zu data pages\n\n",
              circuit->NumNeurons(), tk.NumSegments(),
              tk.flat_index().NumPages());

  geom::Aabb domain = tk.domain();
  float band = 500.0f / 5;
  struct Probe {
    const char* name;
    float y;
  } probes[] = {{"dense region (layer 2)", 500 - 1.5f * band},
                {"sparse region (layer 5)", 0.5f * band}};

  for (const Probe& probe : probes) {
    geom::Vec3 center(domain.Center().x, probe.y, domain.Center().z);
    geom::Aabb query = geom::Aabb::Cube(center, 45.0f);
    auto report = tk.CompareRangeQuery(query);
    if (!report.ok()) return 1;

    std::printf("=== %s ===\n", probe.name);
    TableWriter panel("live statistics (paper Fig 3)",
                      {"method", "disk pages", "time us", "results"});
    panel.AddRow({"FLAT", TableWriter::Int(report->flat.pages_read),
                  TableWriter::Int(report->flat.time_us),
                  TableWriter::Int(report->flat.results)});
    panel.AddRow({"R-Tree", TableWriter::Int(report->rtree.pages_read),
                  TableWriter::Int(report->rtree.time_us),
                  TableWriter::Int(report->rtree.results)});
    panel.Print();

    std::printf("R-tree node fetches per level (root on the left): ");
    for (size_t l = report->rtree.nodes_per_level.size(); l-- > 0;) {
      std::printf("%llu ", static_cast<unsigned long long>(
                               report->rtree.nodes_per_level[l]));
    }
    std::printf("\n\n");
  }

  // Crawl-order trace (paper Figure 4): the toolkit owns its page store, so
  // build a standalone FLAT index over the same elements to trace against.
  neuro::SegmentDataset dataset = circuit->FlattenSegments();
  storage::PageStore store;
  auto index = flat::FlatIndex::Build(dataset.Elements(), &store);
  if (!index.ok()) return 1;
  storage::BufferPool pool(&store, 1 << 20);
  geom::Aabb query = geom::Aabb::Cube(
      geom::Vec3(domain.Center().x, 500 - 1.5f * band, domain.Center().z),
      45.0f);
  std::vector<uint32_t> order;
  std::vector<geom::ElementId> out;
  flat::FlatQueryStats stats;
  if (!index->RangeQueryTraced(query, &pool, &out, &order, &stats).ok()) {
    return 1;
  }
  std::printf("=== FLAT crawl order (paper Fig 4) ===\n");
  std::printf(
      "seed page found in %llu seed-tree node visits, then %zu pages "
      "crawled:\n",
      static_cast<unsigned long long>(stats.seed_nodes_visited), order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    const geom::Aabb& b = index->PageBounds(order[i]);
    std::printf("  step %2zu: page %4u  center=(%.0f, %.0f, %.0f)  "
                "neighbors=%zu\n",
                i, order[i], b.Center().x, b.Center().y, b.Center().z,
                index->NeighborsOf(order[i]).size());
    if (i == 14 && order.size() > 16) {
      std::printf("  ... (%zu more)\n", order.size() - 15);
      break;
    }
  }
  return 0;
}
