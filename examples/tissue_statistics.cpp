// tissue_statistics — the production use of FLAT named by the paper
// (Section 2.1): "FLAT is currently used by the neuroscientists to compute
// statistics (tissue density etc.) of the models they build". Slices the
// column into depth bins, computes per-bin segment density with FLAT range
// queries, and exports one neuron's morphology as SWC plus its soma mesh
// statistics.
//
//   ./examples/tissue_statistics

#include <cstdio>
#include <sstream>

#include "common/table.h"
#include "flat/flat_index.h"
#include "mesh/tube_mesher.h"
#include "neuro/circuit_generator.h"
#include "neuro/swc_io.h"
#include "storage/buffer_pool.h"

using namespace neurodb;

int main() {
  neuro::CircuitParams params;
  params.num_neurons = 150;
  params.seed = 42;
  params.layer_weights = {0.05f, 0.40f, 0.25f, 0.20f, 0.10f};
  auto circuit = neuro::CircuitGenerator(params).Generate();
  if (!circuit.ok()) return 1;

  neuro::SegmentDataset dataset = circuit->FlattenSegments();
  storage::PageStore store;
  auto index = flat::FlatIndex::Build(dataset.Elements(), &store);
  if (!index.ok()) return 1;
  storage::BufferPool pool(&store, 1 << 20);

  // Depth profile: one 300x50x300 um slab per bin.
  geom::Aabb domain = index->domain();
  const int kBins = 10;
  float dy = (domain.max.y - domain.min.y) / kBins;
  TableWriter profile("tissue density by cortical depth (FLAT range queries)",
                      {"depth bin um", "segments", "per 1000 um^3",
                       "pages read"});
  for (int bin = kBins - 1; bin >= 0; --bin) {
    geom::Aabb slab(
        geom::Vec3(domain.min.x, domain.min.y + bin * dy, domain.min.z),
        geom::Vec3(domain.max.x, domain.min.y + (bin + 1) * dy, domain.max.z));
    std::vector<geom::ElementId> out;
    flat::FlatQueryStats stats;
    if (!index->RangeQuery(slab, &pool, &out, &stats).ok()) return 1;
    pool.EvictAll();
    double volume_k = slab.Volume() / 1000.0;
    char range[48];
    std::snprintf(range, sizeof(range), "%.0f-%.0f",
                  domain.min.y + bin * dy, domain.min.y + (bin + 1) * dy);
    profile.AddRow({range, TableWriter::Int(out.size()),
                    TableWriter::Num(out.size() / volume_k, 2),
                    TableWriter::Int(stats.data_pages_read)});
  }
  profile.Print();

  // Morphology export + surface mesh stats for one cell (paper Fig 1).
  const neuro::Morphology& morph = circuit->neuron(0).morphology;
  std::string swc = neuro::ToSwcString(morph);
  size_t lines = 0;
  for (char c : swc) {
    if (c == '\n') ++lines;
  }
  std::printf("\nneuron 0: %zu sections, %zu segments -> SWC export %zu "
              "lines (%zu bytes)\n",
              morph.NumSections(), morph.NumSegments(), lines, swc.size());

  mesh::SurfaceMesh soma =
      mesh::MeshSphere(morph.soma_center(), morph.soma_radius(), 16, 12);
  mesh::SurfaceMesh first_branch;
  const neuro::Section& sec = morph.section(0);
  auto tube = mesh::MeshTube(sec.points, sec.radii);
  if (tube.ok()) first_branch = std::move(tube).value();
  std::printf("surface meshes: soma %zu triangles (%.0f um^2), first branch "
              "%zu triangles (%.0f um^2)\n",
              soma.NumTriangles(), soma.TotalArea(),
              first_branch.NumTriangles(), first_branch.TotalArea());
  return 0;
}
