// synapse_finder — the demo's TOUCH exhibit (paper Figure 7) as a console
// program: place synapses in a region of the model by joining axon
// segments against dendrite segments, with a selectable algorithm, and
// print the live charts (time, memory, comparisons). A few discovered
// synapse locations are printed with their anatomical identity.
//
//   ./examples/synapse_finder [epsilon_um]

#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "neuro/circuit_generator.h"
#include "neuro/element_id.h"
#include "touch/spatial_join.h"

using namespace neurodb;

int main(int argc, char** argv) {
  float epsilon = argc > 1 ? std::strtof(argv[1], nullptr) : 3.0f;

  neuro::CircuitParams params;
  params.num_neurons = 60;
  params.seed = 33;
  auto circuit = neuro::CircuitGenerator(params).Generate();
  if (!circuit.ok()) return 1;

  auto axons = circuit->FlattenSegments(neuro::NeuriteFilter::kAxons);
  auto dendrites = circuit->FlattenSegments(neuro::NeuriteFilter::kDendrites);
  touch::JoinInput a =
      touch::JoinInput::FromSegments(axons.segments, axons.ids);
  touch::JoinInput b =
      touch::JoinInput::FromSegments(dendrites.segments, dendrites.ids);
  std::printf(
      "synapse discovery: %zu axon x %zu dendrite segments, eps = %.1f um\n\n",
      a.size(), b.size(), epsilon);

  touch::JoinOptions options;
  options.epsilon = epsilon;

  TableWriter charts("join methods (paper Fig 7 charts)",
                     {"method", "time ms", "comparisons", "memory",
                      "synapses"});
  std::vector<touch::JoinPair> touch_pairs;
  for (auto method : touch::AllJoinMethods()) {
    auto result = touch::RunJoin(method, a, b, options);
    if (!result.ok()) return 1;
    if (method == touch::JoinMethod::kTouch) touch_pairs = result->pairs;
    charts.AddRow({touch::JoinMethodName(method),
                   TableWriter::Num(result->stats.total_ns / 1e6, 1),
                   TableWriter::Int(result->stats.mbr_tests),
                   TableWriter::Bytes(result->stats.peak_bytes),
                   TableWriter::Int(result->stats.results)});
  }
  charts.Print();

  std::printf("\nfirst synapse candidates (highlighted in the demo's 3-D "
              "view):\n");
  neuro::SegmentResolver resolver;
  resolver.AddDataset(axons);
  for (size_t i = 0; i < touch_pairs.size() && i < 8; ++i) {
    const auto& pair = touch_pairs[i];
    auto seg = resolver.Find(pair.a);
    if (!seg.ok()) continue;
    geom::Vec3 at = seg->Midpoint();
    std::printf(
        "  neuron %u (axon sec %u) -> neuron %u (dendrite sec %u) near "
        "(%.0f, %.0f, %.0f)\n",
        neuro::GidOf(pair.a), neuro::SectionOf(pair.a), neuro::GidOf(pair.b),
        neuro::SectionOf(pair.b), at.x, at.y, at.z);
  }
  return 0;
}
