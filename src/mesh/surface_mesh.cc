#include "mesh/surface_mesh.h"

#include <map>

namespace neurodb {
namespace mesh {

void SurfaceMesh::Append(const SurfaceMesh& other) {
  uint32_t base = static_cast<uint32_t>(vertices_.size());
  vertices_.insert(vertices_.end(), other.vertices_.begin(),
                   other.vertices_.end());
  triangles_.reserve(triangles_.size() + other.triangles_.size());
  for (const auto& t : other.triangles_) {
    triangles_.push_back({t[0] + base, t[1] + base, t[2] + base});
  }
}

geom::Aabb SurfaceMesh::Bounds() const {
  geom::Aabb box;
  for (const auto& v : vertices_) box.Extend(v);
  return box;
}

double SurfaceMesh::TotalArea() const {
  double area = 0.0;
  for (size_t i = 0; i < triangles_.size(); ++i) area += TriangleAt(i).Area();
  return area;
}

geom::ElementVec SurfaceMesh::ToElements(geom::ElementId id_base) const {
  geom::ElementVec out;
  out.reserve(triangles_.size());
  for (size_t i = 0; i < triangles_.size(); ++i) {
    out.emplace_back(id_base + i, TriangleAt(i).Bounds());
  }
  return out;
}

Status SurfaceMesh::Validate(bool require_closed) const {
  const uint32_t n = static_cast<uint32_t>(vertices_.size());
  std::map<std::pair<uint32_t, uint32_t>, int> edge_count;
  for (const auto& t : triangles_) {
    for (int k = 0; k < 3; ++k) {
      if (t[k] >= n) {
        return Status::Corruption("facet references missing vertex");
      }
    }
    if (t[0] == t[1] || t[1] == t[2] || t[0] == t[2]) {
      return Status::Corruption("degenerate facet (repeated vertex)");
    }
    if (require_closed) {
      for (int k = 0; k < 3; ++k) {
        uint32_t a = t[k];
        uint32_t b = t[(k + 1) % 3];
        if (a > b) std::swap(a, b);
        ++edge_count[{a, b}];
      }
    }
  }
  if (require_closed) {
    for (const auto& [edge, count] : edge_count) {
      if (count != 2) {
        return Status::Corruption(
            "mesh not watertight: edge shared by " + std::to_string(count) +
            " facets");
      }
    }
  }
  return Status::OK();
}

}  // namespace mesh
}  // namespace neurodb
