// NeuroDB — SurfaceMesh: indexed triangle mesh.
//
// The demo renders neurons as surface meshes (paper Figure 1 right) and the
// FLAT exhibit queries "real neuroscience data representing a small part of
// the rat neocortex (represented by a surface mesh)". TubeMesher
// (tube_mesher.h) produces such meshes from branch skeletons; ToElements()
// turns facets into indexable spatial elements.

#ifndef NEURODB_MESH_SURFACE_MESH_H_
#define NEURODB_MESH_SURFACE_MESH_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geom/aabb.h"
#include "geom/element.h"
#include "geom/triangle.h"
#include "geom/vec3.h"

namespace neurodb {
namespace mesh {

/// Indexed triangle mesh.
class SurfaceMesh {
 public:
  SurfaceMesh() = default;

  /// Append a vertex, returning its index.
  uint32_t AddVertex(const geom::Vec3& v) {
    vertices_.push_back(v);
    return static_cast<uint32_t>(vertices_.size() - 1);
  }

  /// Append a triangle by vertex indices (must already exist).
  void AddTriangle(uint32_t a, uint32_t b, uint32_t c) {
    triangles_.push_back({a, b, c});
  }

  /// Append another mesh (vertex indices are rebased).
  void Append(const SurfaceMesh& other);

  size_t NumVertices() const { return vertices_.size(); }
  size_t NumTriangles() const { return triangles_.size(); }
  const std::vector<geom::Vec3>& vertices() const { return vertices_; }
  const std::vector<std::array<uint32_t, 3>>& triangles() const {
    return triangles_;
  }

  /// Materialize facet `i` as a geometric triangle.
  geom::Triangle TriangleAt(size_t i) const {
    const auto& t = triangles_[i];
    return geom::Triangle(vertices_[t[0]], vertices_[t[1]], vertices_[t[2]]);
  }

  geom::Aabb Bounds() const;
  double TotalArea() const;

  /// One SpatialElement per facet; element ids are id_base + facet index.
  geom::ElementVec ToElements(geom::ElementId id_base = 0) const;

  /// Structural validation: vertex indices in range, no degenerate
  /// (repeated-vertex) facets, and — if `require_closed` — every edge
  /// shared by exactly two facets (watertight 2-manifold).
  Status Validate(bool require_closed = false) const;

 private:
  std::vector<geom::Vec3> vertices_;
  std::vector<std::array<uint32_t, 3>> triangles_;
};

}  // namespace mesh
}  // namespace neurodb

#endif  // NEURODB_MESH_SURFACE_MESH_H_
