// NeuroDB — TubeMesher: triangulated tube surfaces around branch skeletons.
//
// Converts a neuron branch (polyline of centers with per-point radii) into
// the watertight tube mesh the demo visualises. Rings of `sides` vertices
// are placed around each skeleton point in a frame transported along the
// polyline; consecutive rings are stitched with quads (two triangles), and
// both ends are capped with vertex fans.

#ifndef NEURODB_MESH_TUBE_MESHER_H_
#define NEURODB_MESH_TUBE_MESHER_H_

#include <vector>

#include "common/result.h"
#include "geom/vec3.h"
#include "mesh/surface_mesh.h"

namespace neurodb {
namespace mesh {

/// Options for tube meshing.
struct TubeMesherOptions {
  /// Vertices per cross-section ring (>= 3).
  int sides = 8;
};

/// Mesh one tube. `centers` and `radii` must have equal size >= 2 and
/// positive radii; consecutive centers must be distinct.
Result<SurfaceMesh> MeshTube(const std::vector<geom::Vec3>& centers,
                             const std::vector<float>& radii,
                             const TubeMesherOptions& options =
                                 TubeMesherOptions());

/// Mesh a sphere (icosphere-style UV sphere) for somata.
SurfaceMesh MeshSphere(const geom::Vec3& center, float radius, int slices = 8,
                       int stacks = 6);

}  // namespace mesh
}  // namespace neurodb

#endif  // NEURODB_MESH_TUBE_MESHER_H_
