#include "mesh/tube_mesher.h"

#include <cmath>

namespace neurodb {
namespace mesh {

using geom::Vec3;

namespace {

constexpr double kTau = 6.283185307179586;

/// Any unit vector orthogonal to `d` (assumed unit length).
Vec3 AnyPerpendicular(const Vec3& d) {
  // Pick the axis least aligned with d to avoid degeneracy.
  Vec3 axis = std::fabs(d.x) < 0.9f ? Vec3(1, 0, 0) : Vec3(0, 1, 0);
  return d.Cross(axis).Normalized();
}

}  // namespace

Result<SurfaceMesh> MeshTube(const std::vector<Vec3>& centers,
                             const std::vector<float>& radii,
                             const TubeMesherOptions& options) {
  if (options.sides < 3) {
    return Status::InvalidArgument("MeshTube: sides must be >= 3");
  }
  if (centers.size() < 2) {
    return Status::InvalidArgument("MeshTube: need at least 2 centers");
  }
  if (centers.size() != radii.size()) {
    return Status::InvalidArgument("MeshTube: centers/radii size mismatch");
  }
  for (float r : radii) {
    if (!(r > 0.0f)) {
      return Status::InvalidArgument("MeshTube: radii must be positive");
    }
  }
  for (size_t i = 0; i + 1 < centers.size(); ++i) {
    if (geom::SquaredDistance(centers[i], centers[i + 1]) <= 0.0) {
      return Status::InvalidArgument("MeshTube: repeated consecutive center");
    }
  }

  const int sides = options.sides;
  const size_t n = centers.size();
  SurfaceMesh out;

  // Transport a frame (u, v) along the polyline to avoid ring twisting.
  std::vector<Vec3> tangents(n);
  for (size_t i = 0; i < n; ++i) {
    Vec3 t;
    if (i == 0) {
      t = centers[1] - centers[0];
    } else if (i == n - 1) {
      t = centers[n - 1] - centers[n - 2];
    } else {
      t = centers[i + 1] - centers[i - 1];
    }
    tangents[i] = t.Normalized();
  }

  Vec3 u = AnyPerpendicular(tangents[0]);
  std::vector<uint32_t> prev_ring(sides);
  std::vector<uint32_t> ring(sides);

  for (size_t i = 0; i < n; ++i) {
    if (i > 0) {
      // Project previous u onto the plane orthogonal to the new tangent.
      Vec3 t = tangents[i];
      Vec3 proj = u - t * static_cast<float>(u.Dot(t));
      u = proj.SquaredNorm() > 1e-12 ? proj.Normalized() : AnyPerpendicular(t);
    }
    Vec3 v = tangents[i].Cross(u).Normalized();
    for (int s = 0; s < sides; ++s) {
      double ang = kTau * s / sides;
      Vec3 offset = u * static_cast<float>(std::cos(ang) * radii[i]) +
                    v * static_cast<float>(std::sin(ang) * radii[i]);
      ring[s] = out.AddVertex(centers[i] + offset);
    }
    if (i > 0) {
      for (int s = 0; s < sides; ++s) {
        int sn = (s + 1) % sides;
        // Quad (prev[s], prev[sn], ring[sn], ring[s]) as two triangles.
        out.AddTriangle(prev_ring[s], prev_ring[sn], ring[sn]);
        out.AddTriangle(prev_ring[s], ring[sn], ring[s]);
      }
    }
    prev_ring = ring;
  }

  // End caps: fans around the endpoint centers.
  uint32_t start_center = out.AddVertex(centers[0]);
  uint32_t end_center = out.AddVertex(centers[n - 1]);
  for (int s = 0; s < sides; ++s) {
    int sn = (s + 1) % sides;
    // Start ring vertices are indices 0..sides-1.
    out.AddTriangle(start_center, static_cast<uint32_t>(sn),
                    static_cast<uint32_t>(s));
    // End ring vertices are the last ring written before the caps.
    uint32_t base = static_cast<uint32_t>((n - 1) * sides);
    out.AddTriangle(end_center, base + s, base + sn);
  }
  return out;
}

SurfaceMesh MeshSphere(const Vec3& center, float radius, int slices,
                       int stacks) {
  SurfaceMesh out;
  if (slices < 3) slices = 3;
  if (stacks < 2) stacks = 2;

  uint32_t top = out.AddVertex(center + Vec3(0, radius, 0));
  // Interior rings (stacks-1 of them).
  for (int st = 1; st < stacks; ++st) {
    double phi = M_PI * st / stacks;  // polar angle from +y
    for (int sl = 0; sl < slices; ++sl) {
      double theta = kTau * sl / slices;
      Vec3 p(static_cast<float>(radius * std::sin(phi) * std::cos(theta)),
             static_cast<float>(radius * std::cos(phi)),
             static_cast<float>(radius * std::sin(phi) * std::sin(theta)));
      out.AddVertex(center + p);
    }
  }
  uint32_t bottom = out.AddVertex(center - Vec3(0, radius, 0));

  auto ring_vertex = [&](int st, int sl) -> uint32_t {
    return 1 + static_cast<uint32_t>((st - 1) * slices + (sl % slices));
  };

  // Top fan.
  for (int sl = 0; sl < slices; ++sl) {
    out.AddTriangle(top, ring_vertex(1, sl + 1), ring_vertex(1, sl));
  }
  // Body quads.
  for (int st = 1; st < stacks - 1; ++st) {
    for (int sl = 0; sl < slices; ++sl) {
      uint32_t a = ring_vertex(st, sl);
      uint32_t b = ring_vertex(st, sl + 1);
      uint32_t c = ring_vertex(st + 1, sl + 1);
      uint32_t d = ring_vertex(st + 1, sl);
      out.AddTriangle(a, b, c);
      out.AddTriangle(a, c, d);
    }
  }
  // Bottom fan.
  for (int sl = 0; sl < slices; ++sl) {
    out.AddTriangle(bottom, ring_vertex(stacks - 1, sl),
                    ring_vertex(stacks - 1, sl + 1));
  }
  return out;
}

}  // namespace mesh
}  // namespace neurodb
