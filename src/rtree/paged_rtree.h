// NeuroDB — PagedRTree: an RTree whose nodes live on simulated disk pages.
//
// The demo compares FLAT and the R-tree by "disk pages retrieved" (paper
// Figure 3). PagedRTree maps every tree node onto one page of a PageStore;
// query traversal fetches each visited node through a BufferPool, so page
// counts and modeled time come out of the same machinery FLAT uses.

#ifndef NEURODB_RTREE_PAGED_RTREE_H_
#define NEURODB_RTREE_PAGED_RTREE_H_

#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geom/knn.h"
#include "geom/visitor.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace neurodb {
namespace rtree {

/// Disk-resident view of an RTree.
class PagedRTree {
 public:
  /// Materialize `tree` into `store`: one page per node. Leaf pages hold the
  /// data entries; internal pages hold one (child-node-id, child-bounds)
  /// element per child, mirroring the branch-entry layout of a disk R-tree.
  static Result<PagedRTree> Build(RTree tree, storage::PageStore* store);

  PagedRTree(PagedRTree&&) = default;
  PagedRTree& operator=(PagedRTree&&) = default;

  /// Range query executed through `pool`: every visited node costs one page
  /// fetch. Each matching element is streamed to `visitor`.
  Status RangeQuery(const geom::Aabb& box, geom::ResultVisitor& visitor,
                    storage::BufferPool* pool,
                    QueryStats* stats = nullptr) const;

  /// Legacy materializing form: appends matching ids to `out`.
  Status RangeQuery(const geom::Aabb& box, std::vector<geom::ElementId>* out,
                    storage::BufferPool* pool,
                    QueryStats* stats = nullptr) const;

  /// k nearest neighbours of `p` by box distance, ties broken by id (the
  /// library-wide order of geom/knn.h). Best-first traversal (Hjaltason &
  /// Samet): nodes are expanded in increasing MBR distance, each expansion
  /// fetching the node's page through `pool`; the walk stops as soon as the
  /// nearest unexpanded node cannot improve the kth best hit. `hits` is
  /// cleared and filled ascending. k == 0 yields an empty answer; k larger
  /// than the dataset yields every element.
  Status Knn(const geom::Vec3& p, size_t k, storage::BufferPool* pool,
             std::vector<geom::KnnHit>* hits,
             QueryStats* stats = nullptr) const;

  /// The in-memory structure (geometry of nodes; used by tests).
  const RTree& tree() const { return tree_; }

  /// Page id backing a node.
  storage::PageId NodePage(int32_t node_id) const { return node_pages_[node_id]; }

  /// Pages occupied by the whole index.
  size_t NumPages() const { return node_pages_.size(); }

 private:
  explicit PagedRTree(RTree tree) : tree_(std::move(tree)) {}

  RTree tree_;
  std::vector<storage::PageId> node_pages_;  // indexed by node id
};

}  // namespace rtree
}  // namespace neurodb

#endif  // NEURODB_RTREE_PAGED_RTREE_H_
