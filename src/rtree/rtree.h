// NeuroDB — RTree: in-memory R-tree over 3-D bounding boxes.
//
// This is the baseline index of the paper ("Many indexes have been developed
// in the past to execute spatial range queries [...] they fail to do so on
// dense datasets", Section 2) and a building block of FLAT (seed index) and
// TOUCH/S3 (hierarchical partitioning / synchronized traversal).
//
// Supported construction paths:
//   * dynamic insertion with Guttman-quadratic or R*-style node splits,
//   * STR bulk loading (Leutenegger et al., ICDE'97 — the loader FLAT uses),
//   * Hilbert-sort bulk loading.
//
// Deletion is intentionally out of scope: the paper's workloads are
// build-once / analyze-many scientific models (see README "Scope").
//
// The node array is public (root(), node()) so that other components can
// layer behaviour on the same structure: PagedRTree charges page I/O per
// node visit, and the S3 spatial join traverses two trees in lockstep.

#ifndef NEURODB_RTREE_RTREE_H_
#define NEURODB_RTREE_RTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geom/aabb.h"
#include "geom/element.h"
#include "geom/vec3.h"

namespace neurodb {
namespace rtree {

/// Node-split algorithm used on overflow during dynamic insertion.
enum class SplitAlgorithm {
  /// Guttman's quadratic split (SIGMOD'84).
  kQuadratic,
  /// R*-tree split (Beckmann et al., SIGMOD'90): choose the split axis by
  /// minimum margin sum, then the distribution by minimum overlap.
  kRStar,
};

/// Construction path used by RTree::Build (and the paged backend's
/// Build/Compact rebuilds).
enum class BuildAlgorithm {
  /// Sort-Tile-Recursive packing (Leutenegger et al., ICDE'97).
  kStrBulk,
  /// Hilbert-curve sort of element centers, packed into runs.
  kHilbertBulk,
  /// One-at-a-time insertion through the configured split algorithm.
  kDynamicInsert,
};

/// Tuning knobs for RTree.
struct RTreeOptions {
  /// Maximum entries (or children) per node. 102 entries ≈ one 4 KiB page
  /// of 40-byte branch entries; the default 64 mirrors common configs.
  size_t max_entries = 64;
  /// Minimum fill on split; must be <= max_entries / 2.
  size_t min_entries = 26;
  /// Capacity of leaf nodes; 0 means "same as max_entries". TOUCH uses
  /// large data leaves under a narrower internal fanout.
  size_t leaf_capacity = 0;
  SplitAlgorithm split = SplitAlgorithm::kRStar;
  /// Construction path taken by Build() (the paged backend routes its
  /// Build / Compact rebuilds through this).
  BuildAlgorithm build = BuildAlgorithm::kStrBulk;
  /// Bulk-load pack fraction in (0, 1]: each packed node receives
  /// round(fill_factor * capacity) entries (clamped to [min_entries,
  /// capacity]). 1.0 reproduces the historical fully-packed layout;
  /// lower values leave headroom for subsequent dynamic inserts.
  double fill_factor = 1.0;
  /// R* forced reinsertion (Beckmann et al. §4.3): on the first overflow
  /// per level per insert, instead of splitting, evict this fraction of
  /// the node's entries (the ones farthest from the node center) and
  /// re-insert them closest-first. 0 disables. Only active with
  /// SplitAlgorithm::kRStar.
  double reinsert_factor = 0.3;

  size_t LeafCapacity() const {
    return leaf_capacity == 0 ? max_entries : leaf_capacity;
  }

  /// Entries packed per leaf / internal node by the bulk loaders after
  /// applying fill_factor.
  size_t PackedLeafCapacity() const;
  size_t PackedFanout() const;

  Status Validate() const;
};

/// Per-level structural profile (level 0 = leaves). Feeds the backend
/// advisor's cost model, `ndb_inspect tree`, and the micro_rtree bench.
struct LevelStats {
  int level = 0;
  size_t nodes = 0;
  /// Data entries (leaf level) or child slots (internal levels).
  size_t entries = 0;
  /// Per-node capacity at this level.
  size_t capacity = 0;
  /// entries / (nodes * capacity).
  double mean_fill = 0.0;
  /// Σ node-MBR volume.
  double total_volume = 0.0;
  /// Σ over nodes of (ex*ey + ey*ez + ez*ex) — the face-area term of the
  /// Kamel–Faloutsos expected-node-access formula.
  double sum_face_area = 0.0;
  /// Σ over nodes of (ex + ey + ez).
  double sum_extent = 0.0;
  /// Σ pairwise overlap volume between node MBRs at this level. Estimated
  /// from a deterministic sample when the level is large (see
  /// overlap_sampled).
  double overlap_volume = 0.0;
  bool overlap_sampled = false;
};

/// Per-query instrumentation (the demo shows "for the R-Tree how many nodes
/// are retrieved on each level", paper Section 2.2).
struct QueryStats {
  uint64_t nodes_visited = 0;
  uint64_t entries_tested = 0;
  uint64_t results = 0;
  /// nodes_per_level[l] = nodes visited at level l (0 = leaf level).
  std::vector<uint64_t> nodes_per_level;

  void CountNode(int level) {
    ++nodes_visited;
    if (nodes_per_level.size() <= static_cast<size_t>(level)) {
      nodes_per_level.resize(level + 1, 0);
    }
    ++nodes_per_level[level];
  }
};

/// In-memory R-tree. Move-only (owns its node arena).
class RTree {
 public:
  /// Tree node. Leaves (level 0) hold data entries; internal nodes hold
  /// child node ids. `bounds` always covers the full subtree.
  struct Node {
    geom::Aabb bounds;
    int32_t parent = -1;
    int32_t level = 0;  // 0 = leaf
    std::vector<int32_t> children;           // internal nodes
    std::vector<geom::SpatialElement> entries;  // leaf nodes

    bool IsLeaf() const { return level == 0; }
  };

  explicit RTree(RTreeOptions options = RTreeOptions());

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;

  /// Bulk load with Sort-Tile-Recursive packing. The resulting tree is
  /// fully packed (all nodes at max fill except the last per level).
  static Result<RTree> BulkLoadStr(const geom::ElementVec& elements,
                                   RTreeOptions options = RTreeOptions());

  /// Bulk load by Hilbert-sorting element centers and packing runs.
  static Result<RTree> BulkLoadHilbert(const geom::ElementVec& elements,
                                       RTreeOptions options = RTreeOptions());

  /// Build through the path selected by options.build (STR bulk, Hilbert
  /// bulk, or repeated dynamic insertion).
  static Result<RTree> Build(const geom::ElementVec& elements,
                             RTreeOptions options = RTreeOptions());

  /// Insert one element (dynamic path; splits per options.split).
  Status Insert(const geom::SpatialElement& element);

  /// Collect ids of all elements whose bounds intersect `box`.
  void RangeQuery(const geom::Aabb& box, std::vector<geom::ElementId>* out,
                  QueryStats* stats = nullptr) const;

  /// Collect full elements whose bounds intersect `box`.
  void RangeQueryElements(const geom::Aabb& box, geom::ElementVec* out,
                          QueryStats* stats = nullptr) const;

  /// Find *one* element intersecting `box` (FLAT's seed lookup). Returns
  /// false if the range is empty. Uses a best-first descent that prefers
  /// the child whose center is nearest the query center, so the expected
  /// node count is the tree height on dense data.
  bool FindAny(const geom::Aabb& box, geom::SpatialElement* out,
               QueryStats* stats = nullptr) const;

  /// k nearest neighbours of `p` by bounding-box distance (best-first).
  /// Returns (id, distance) pairs sorted by increasing distance.
  std::vector<std::pair<geom::ElementId, double>> Knn(const geom::Vec3& p,
                                                      size_t k,
                                                      QueryStats* stats =
                                                          nullptr) const;

  /// Number of stored elements.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height in levels (1 for a single leaf root; 0 for an empty tree).
  int Height() const;

  /// Approximate main-memory footprint in bytes.
  size_t MemoryBytes() const;

  /// Verify structural invariants (parent MBR containment, fanout bounds,
  /// uniform leaf depth, parent back-pointers, element count). Used by the
  /// property tests.
  Status CheckInvariants() const;

  /// Per-level structure stats, index 0 = leaf level. Empty for an empty
  /// tree.
  std::vector<LevelStats> LevelProfile() const;

  const RTreeOptions& options() const { return options_; }
  int32_t root() const { return root_; }
  const Node& node(int32_t id) const { return nodes_[id]; }
  size_t NumNodes() const { return nodes_.size(); }

 private:
  int32_t NewNode(int level);
  void RecomputeBounds(int32_t node_id);
  int32_t ChooseSubtree(const geom::Aabb& box, int target_level) const;
  void SplitNode(int32_t node_id);
  void AdjustUpward(int32_t node_id);
  // Overflow treatment: forced reinsertion on the first overflow per level
  // per public Insert (R*), falling back to SplitNode.
  void HandleOverflow(int32_t node_id);
  void ForcedReinsert(int32_t node_id);

  // Packs `boxed` runs into parent nodes until a single root remains.
  static RTree PackLevels(std::vector<Node> leaves, RTreeOptions options,
                          size_t element_count);

  RTreeOptions options_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  size_t size_ = 0;
  // Levels already granted a forced reinsertion during the current Insert.
  std::vector<char> reinserted_levels_;
};

}  // namespace rtree
}  // namespace neurodb

#endif  // NEURODB_RTREE_RTREE_H_
