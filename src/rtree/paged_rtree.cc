#include "rtree/paged_rtree.h"

#include <cmath>
#include <queue>

namespace neurodb {
namespace rtree {

using geom::Aabb;
using geom::ElementId;
using geom::SpatialElement;

Result<PagedRTree> PagedRTree::Build(RTree tree, storage::PageStore* store) {
  if (store == nullptr) {
    return Status::InvalidArgument("PagedRTree::Build: null store");
  }
  PagedRTree paged(std::move(tree));
  const RTree& t = paged.tree_;
  paged.node_pages_.resize(t.NumNodes(), storage::kInvalidPageId);
  for (size_t id = 0; id < t.NumNodes(); ++id) {
    const RTree::Node& n = t.node(static_cast<int32_t>(id));
    storage::PageId page = store->Allocate();
    std::vector<SpatialElement> payload;
    if (n.IsLeaf()) {
      payload = n.entries;
    } else {
      payload.reserve(n.children.size());
      for (int32_t c : n.children) {
        payload.emplace_back(static_cast<ElementId>(c), t.node(c).bounds);
      }
    }
    NEURODB_RETURN_NOT_OK(store->Write(page, std::move(payload)));
    paged.node_pages_[id] = page;
  }
  return paged;
}

Status PagedRTree::RangeQuery(const Aabb& box, geom::ResultVisitor& visitor,
                              storage::BufferPool* pool,
                              QueryStats* stats) const {
  if (pool == nullptr) {
    return Status::InvalidArgument("PagedRTree::RangeQuery: null pool");
  }
  if (tree_.root() == -1) return Status::OK();

  std::vector<int32_t> stack = {tree_.root()};
  while (!stack.empty()) {
    int32_t id = stack.back();
    stack.pop_back();
    const RTree::Node& n = tree_.node(id);
    // Fetching the node's page is what the disk-resident index would do.
    auto page = pool->Fetch(node_pages_[id]);
    if (!page.ok()) return page.status();
    if (stats != nullptr) stats->CountNode(n.level);

    if (n.IsLeaf()) {
      for (const auto& e : (*page)->elements) {
        if (stats != nullptr) ++stats->entries_tested;
        if (e.bounds.Intersects(box)) {
          visitor.Visit(e.id, e.bounds);
          if (stats != nullptr) ++stats->results;
        }
      }
    } else {
      for (const auto& branch : (*page)->elements) {
        if (stats != nullptr) ++stats->entries_tested;
        if (branch.bounds.Intersects(box)) {
          stack.push_back(static_cast<int32_t>(branch.id));
        }
      }
    }
  }
  return Status::OK();
}

Status PagedRTree::Knn(const geom::Vec3& p, size_t k,
                       storage::BufferPool* pool,
                       std::vector<geom::KnnHit>* hits,
                       QueryStats* stats) const {
  if (pool == nullptr) {
    return Status::InvalidArgument("PagedRTree::Knn: null pool");
  }
  if (hits == nullptr) {
    return Status::InvalidArgument("PagedRTree::Knn: null output");
  }
  if (!geom::IsFinitePoint(p)) {
    return Status::InvalidArgument("PagedRTree::Knn: non-finite query point");
  }
  hits->clear();
  if (k == 0 || tree_.root() == -1) return Status::OK();

  struct Frontier {
    double dist;
    int32_t node;
    bool operator>(const Frontier& o) const { return dist > o.dist; }
  };
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<Frontier>>
      frontier;
  frontier.push({geom::KnnDistance(p, tree_.node(tree_.root()).bounds),
                 tree_.root()});

  geom::KnnAccumulator acc(k);
  while (!frontier.empty()) {
    Frontier top = frontier.top();
    frontier.pop();
    // Strict prune: a node at distance == the kth best may still hold an
    // equal-distance element with a smaller id.
    if (acc.Full() && top.dist > acc.WorstDistance()) break;

    const RTree::Node& n = tree_.node(top.node);
    auto page = pool->Fetch(node_pages_[top.node]);
    if (!page.ok()) return page.status();
    if (stats != nullptr) stats->CountNode(n.level);

    if (n.IsLeaf()) {
      for (const auto& e : (*page)->elements) {
        if (stats != nullptr) ++stats->entries_tested;
        acc.Offer(e.id, geom::KnnDistance(p, e.bounds));
      }
    } else {
      for (const auto& branch : (*page)->elements) {
        if (stats != nullptr) ++stats->entries_tested;
        double dist = geom::KnnDistance(p, branch.bounds);
        if (acc.Full() && dist > acc.WorstDistance()) continue;
        frontier.push({dist, static_cast<int32_t>(branch.id)});
      }
    }
  }

  *hits = acc.TakeSorted();
  if (stats != nullptr) stats->results = hits->size();
  return Status::OK();
}

Status PagedRTree::RangeQuery(const Aabb& box, std::vector<ElementId>* out,
                              storage::BufferPool* pool,
                              QueryStats* stats) const {
  if (out == nullptr) {
    return Status::InvalidArgument("PagedRTree::RangeQuery: null output");
  }
  geom::VectorVisitor visitor(out);
  return RangeQuery(box, visitor, pool, stats);
}

}  // namespace rtree
}  // namespace neurodb
