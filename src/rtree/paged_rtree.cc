#include "rtree/paged_rtree.h"

namespace neurodb {
namespace rtree {

using geom::Aabb;
using geom::ElementId;
using geom::SpatialElement;

Result<PagedRTree> PagedRTree::Build(RTree tree, storage::PageStore* store) {
  if (store == nullptr) {
    return Status::InvalidArgument("PagedRTree::Build: null store");
  }
  PagedRTree paged(std::move(tree));
  const RTree& t = paged.tree_;
  paged.node_pages_.resize(t.NumNodes(), storage::kInvalidPageId);
  for (size_t id = 0; id < t.NumNodes(); ++id) {
    const RTree::Node& n = t.node(static_cast<int32_t>(id));
    storage::PageId page = store->Allocate();
    std::vector<SpatialElement> payload;
    if (n.IsLeaf()) {
      payload = n.entries;
    } else {
      payload.reserve(n.children.size());
      for (int32_t c : n.children) {
        payload.emplace_back(static_cast<ElementId>(c), t.node(c).bounds);
      }
    }
    NEURODB_RETURN_NOT_OK(store->Write(page, std::move(payload)));
    paged.node_pages_[id] = page;
  }
  return paged;
}

Status PagedRTree::RangeQuery(const Aabb& box, geom::ResultVisitor& visitor,
                              storage::BufferPool* pool,
                              QueryStats* stats) const {
  if (pool == nullptr) {
    return Status::InvalidArgument("PagedRTree::RangeQuery: null pool");
  }
  if (tree_.root() == -1) return Status::OK();

  std::vector<int32_t> stack = {tree_.root()};
  while (!stack.empty()) {
    int32_t id = stack.back();
    stack.pop_back();
    const RTree::Node& n = tree_.node(id);
    // Fetching the node's page is what the disk-resident index would do.
    auto page = pool->Fetch(node_pages_[id]);
    if (!page.ok()) return page.status();
    if (stats != nullptr) stats->CountNode(n.level);

    if (n.IsLeaf()) {
      for (const auto& e : (*page)->elements) {
        if (stats != nullptr) ++stats->entries_tested;
        if (e.bounds.Intersects(box)) {
          visitor.Visit(e.id, e.bounds);
          if (stats != nullptr) ++stats->results;
        }
      }
    } else {
      for (const auto& branch : (*page)->elements) {
        if (stats != nullptr) ++stats->entries_tested;
        if (branch.bounds.Intersects(box)) {
          stack.push_back(static_cast<int32_t>(branch.id));
        }
      }
    }
  }
  return Status::OK();
}

Status PagedRTree::RangeQuery(const Aabb& box, std::vector<ElementId>* out,
                              storage::BufferPool* pool,
                              QueryStats* stats) const {
  if (out == nullptr) {
    return Status::InvalidArgument("PagedRTree::RangeQuery: null output");
  }
  geom::VectorVisitor visitor(out);
  return RangeQuery(box, visitor, pool, stats);
}

}  // namespace rtree
}  // namespace neurodb
