#include "rtree/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "geom/hilbert.h"
#include "storage/pagination.h"

namespace neurodb {
namespace rtree {

using geom::Aabb;
using geom::ElementId;
using geom::ElementVec;
using geom::SpatialElement;
using geom::Vec3;

Status RTreeOptions::Validate() const {
  if (max_entries < 4) {
    return Status::InvalidArgument("RTreeOptions: max_entries must be >= 4");
  }
  if (min_entries < 1 || min_entries > max_entries / 2) {
    return Status::InvalidArgument(
        "RTreeOptions: min_entries must be in [1, max_entries/2]");
  }
  if (leaf_capacity != 0 &&
      (leaf_capacity < 2 || min_entries > leaf_capacity / 2)) {
    return Status::InvalidArgument(
        "RTreeOptions: leaf_capacity must be 0 or >= max(2, 2*min_entries)");
  }
  if (!(fill_factor > 0.0) || fill_factor > 1.0) {
    return Status::InvalidArgument(
        "RTreeOptions: fill_factor must be in (0, 1]");
  }
  if (reinsert_factor < 0.0 || reinsert_factor > 0.5) {
    return Status::InvalidArgument(
        "RTreeOptions: reinsert_factor must be in [0, 0.5]");
  }
  return Status::OK();
}

namespace {

size_t PackedCapacity(size_t capacity, double fill_factor, size_t floor) {
  size_t target = static_cast<size_t>(
      std::llround(fill_factor * static_cast<double>(capacity)));
  target = std::max<size_t>(target, std::max<size_t>(floor, 1));
  return std::min(target, capacity);
}

}  // namespace

size_t RTreeOptions::PackedLeafCapacity() const {
  return PackedCapacity(LeafCapacity(), fill_factor, min_entries);
}

size_t RTreeOptions::PackedFanout() const {
  return PackedCapacity(max_entries, fill_factor, min_entries);
}

RTree::RTree(RTreeOptions options) : options_(options) {}

int32_t RTree::NewNode(int level) {
  int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_.back().level = level;
  return id;
}

void RTree::RecomputeBounds(int32_t node_id) {
  Node& n = nodes_[node_id];
  Aabb box;
  if (n.IsLeaf()) {
    for (const auto& e : n.entries) box.Extend(e.bounds);
  } else {
    for (int32_t c : n.children) box.Extend(nodes_[c].bounds);
  }
  n.bounds = box;
}

// ---------------------------------------------------------------------------
// Bulk loading
// ---------------------------------------------------------------------------

RTree RTree::PackLevels(std::vector<Node> leaves, RTreeOptions options,
                        size_t element_count) {
  RTree tree(options);
  tree.nodes_ = std::move(leaves);
  tree.size_ = element_count;

  if (tree.nodes_.empty()) {
    tree.root_ = -1;
    return tree;
  }

  std::vector<int32_t> current(tree.nodes_.size());
  std::iota(current.begin(), current.end(), 0);

  const size_t fanout = options.PackedFanout();
  int level = 0;
  while (current.size() > 1) {
    ++level;
    // Order this level's nodes with STR over their bounding boxes so parent
    // groups are spatially coherent.
    ElementVec boxes;
    boxes.reserve(current.size());
    for (int32_t id : current) {
      boxes.emplace_back(static_cast<ElementId>(id), tree.nodes_[id].bounds);
    }
    std::vector<uint32_t> order = storage::StrOrder(boxes, fanout);

    std::vector<int32_t> parents;
    for (size_t at = 0; at < order.size(); at += fanout) {
      size_t end = std::min(order.size(), at + fanout);
      int32_t pid = tree.NewNode(level);
      for (size_t i = at; i < end; ++i) {
        int32_t child = static_cast<int32_t>(boxes[order[i]].id);
        tree.nodes_[pid].children.push_back(child);
        tree.nodes_[child].parent = pid;
        tree.nodes_[pid].bounds.Extend(tree.nodes_[child].bounds);
      }
      parents.push_back(pid);
    }
    current = std::move(parents);
  }
  tree.root_ = current[0];
  tree.nodes_[tree.root_].parent = -1;
  return tree;
}

namespace {

std::vector<RTree::Node> PackLeaves(const ElementVec& elements,
                                    const std::vector<uint32_t>& order,
                                    size_t leaf_capacity) {
  std::vector<RTree::Node> leaves;
  leaves.reserve(order.size() / leaf_capacity + 1);
  for (size_t at = 0; at < order.size(); at += leaf_capacity) {
    size_t end = std::min(order.size(), at + leaf_capacity);
    RTree::Node leaf;
    leaf.level = 0;
    leaf.entries.reserve(end - at);
    for (size_t i = at; i < end; ++i) {
      leaf.entries.push_back(elements[order[i]]);
      leaf.bounds.Extend(elements[order[i]].bounds);
    }
    leaves.push_back(std::move(leaf));
  }
  return leaves;
}

}  // namespace

Result<RTree> RTree::BulkLoadStr(const ElementVec& elements,
                                 RTreeOptions options) {
  NEURODB_RETURN_NOT_OK(options.Validate());
  const size_t run = options.PackedLeafCapacity();
  std::vector<uint32_t> order = storage::StrOrder(elements, run);
  return PackLevels(PackLeaves(elements, order, run), options,
                    elements.size());
}

Result<RTree> RTree::BulkLoadHilbert(const ElementVec& elements,
                                     RTreeOptions options) {
  NEURODB_RETURN_NOT_OK(options.Validate());
  Aabb domain;
  for (const auto& e : elements) domain.Extend(e.bounds);
  std::vector<std::pair<uint64_t, uint32_t>> keyed(elements.size());
  if (!elements.empty()) {
    geom::HilbertMapper mapper(domain);
    for (uint32_t i = 0; i < elements.size(); ++i) {
      keyed[i] = {mapper.Key(elements[i].bounds), i};
    }
    std::sort(keyed.begin(), keyed.end());
  }
  std::vector<uint32_t> order(elements.size());
  for (uint32_t i = 0; i < keyed.size(); ++i) order[i] = keyed[i].second;
  return PackLevels(
      PackLeaves(elements, order, options.PackedLeafCapacity()), options,
      elements.size());
}

Result<RTree> RTree::Build(const ElementVec& elements, RTreeOptions options) {
  switch (options.build) {
    case BuildAlgorithm::kStrBulk:
      return BulkLoadStr(elements, options);
    case BuildAlgorithm::kHilbertBulk:
      return BulkLoadHilbert(elements, options);
    case BuildAlgorithm::kDynamicInsert: {
      NEURODB_RETURN_NOT_OK(options.Validate());
      RTree tree(options);
      for (const auto& e : elements) {
        NEURODB_RETURN_NOT_OK(tree.Insert(e));
      }
      return tree;
    }
  }
  return Status::InvalidArgument("RTreeOptions: unknown build algorithm");
}

// ---------------------------------------------------------------------------
// Dynamic insertion
// ---------------------------------------------------------------------------

int32_t RTree::ChooseSubtree(const Aabb& box, int target_level) const {
  int32_t id = root_;
  while (nodes_[id].level > target_level) {
    const Node& n = nodes_[id];
    const bool leaf_children = nodes_[n.children.front()].IsLeaf();

    int32_t best = n.children.front();
    double best_primary = std::numeric_limits<double>::max();
    double best_secondary = std::numeric_limits<double>::max();
    double best_volume = std::numeric_limits<double>::max();

    for (int32_t c : n.children) {
      const Aabb& cb = nodes_[c].bounds;
      double enlargement = geom::Enlargement(cb, box);
      double volume = cb.Volume();
      double primary;
      double secondary;
      if (options_.split == SplitAlgorithm::kRStar && leaf_children) {
        // R* ChooseSubtree at the level above leaves: minimise overlap
        // enlargement, then volume enlargement.
        Aabb grown = Aabb::Union(cb, box);
        double overlap_before = 0.0;
        double overlap_after = 0.0;
        for (int32_t o : n.children) {
          if (o == c) continue;
          overlap_before += geom::OverlapVolume(cb, nodes_[o].bounds);
          overlap_after += geom::OverlapVolume(grown, nodes_[o].bounds);
        }
        primary = overlap_after - overlap_before;
        secondary = enlargement;
      } else {
        primary = enlargement;
        secondary = volume;
      }
      if (primary < best_primary ||
          (primary == best_primary && secondary < best_secondary) ||
          (primary == best_primary && secondary == best_secondary &&
           volume < best_volume)) {
        best = c;
        best_primary = primary;
        best_secondary = secondary;
        best_volume = volume;
      }
    }
    id = best;
  }
  return id;
}

namespace {

/// A unit being distributed during a node split: the bounding box plus
/// either a child node id (internal split) or an entry index (leaf split).
struct SplitItem {
  Aabb box;
  int32_t child = -1;
  uint32_t entry = 0;
};

/// Guttman quadratic split: returns item indices of the second group.
std::vector<uint32_t> QuadraticPartition(const std::vector<SplitItem>& items,
                                         size_t min_entries) {
  const size_t n = items.size();
  // PickSeeds: the pair wasting the most volume.
  uint32_t seed1 = 0;
  uint32_t seed2 = 1;
  double worst = -std::numeric_limits<double>::max();
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      double waste = Aabb::Union(items[i].box, items[j].box).Volume() -
                     items[i].box.Volume() - items[j].box.Volume();
      if (waste > worst) {
        worst = waste;
        seed1 = i;
        seed2 = j;
      }
    }
  }

  std::vector<int> group(n, -1);
  group[seed1] = 0;
  group[seed2] = 1;
  Aabb bb[2] = {items[seed1].box, items[seed2].box};
  size_t count[2] = {1, 1};
  size_t remaining = n - 2;

  while (remaining > 0) {
    // If one group must absorb everything left to reach min fill, do so.
    for (int g = 0; g < 2; ++g) {
      if (count[g] + remaining == min_entries ||
          count[g] + remaining < min_entries) {
        for (uint32_t i = 0; i < n; ++i) {
          if (group[i] == -1) {
            group[i] = g;
            bb[g].Extend(items[i].box);
            ++count[g];
          }
        }
        remaining = 0;
        break;
      }
    }
    if (remaining == 0) break;

    // PickNext: the item with the largest preference difference.
    uint32_t next = 0;
    double best_diff = -1.0;
    double d[2] = {0.0, 0.0};
    for (uint32_t i = 0; i < n; ++i) {
      if (group[i] != -1) continue;
      double d0 = geom::Enlargement(bb[0], items[i].box);
      double d1 = geom::Enlargement(bb[1], items[i].box);
      double diff = std::fabs(d0 - d1);
      if (diff > best_diff) {
        best_diff = diff;
        next = i;
        d[0] = d0;
        d[1] = d1;
      }
    }
    int g;
    if (d[0] != d[1]) {
      g = d[0] < d[1] ? 0 : 1;
    } else if (bb[0].Volume() != bb[1].Volume()) {
      g = bb[0].Volume() < bb[1].Volume() ? 0 : 1;
    } else {
      g = count[0] <= count[1] ? 0 : 1;
    }
    group[next] = g;
    bb[g].Extend(items[next].box);
    ++count[g];
    --remaining;
  }

  std::vector<uint32_t> second;
  for (uint32_t i = 0; i < n; ++i) {
    if (group[i] == 1) second.push_back(i);
  }
  return second;
}

/// R* split: choose axis by minimum margin sum over all distributions of
/// both sortings (by lower and by upper coordinate), then the distribution
/// with minimum overlap (ties: minimum total volume).
std::vector<uint32_t> RStarPartition(const std::vector<SplitItem>& items,
                                     size_t min_entries) {
  const size_t n = items.size();
  const size_t max_k = n - min_entries;  // split positions: [min_entries, max_k]

  std::vector<uint32_t> best_split;
  double best_overlap = std::numeric_limits<double>::max();
  double best_volume = std::numeric_limits<double>::max();
  int best_axis = -1;
  double best_margin = std::numeric_limits<double>::max();

  // First pass: pick the axis with the smallest margin sum.
  std::vector<uint32_t> order(n);
  for (int axis = 0; axis < 3; ++axis) {
    for (int by_upper = 0; by_upper < 2; ++by_upper) {
      std::iota(order.begin(), order.end(), 0u);
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        float ka = by_upper ? items[a].box.max[axis] : items[a].box.min[axis];
        float kb = by_upper ? items[b].box.max[axis] : items[b].box.min[axis];
        return ka < kb;
      });
      // Prefix / suffix bounding boxes.
      std::vector<Aabb> prefix(n), suffix(n);
      Aabb acc;
      for (size_t i = 0; i < n; ++i) {
        acc.Extend(items[order[i]].box);
        prefix[i] = acc;
      }
      acc = Aabb();
      for (size_t i = n; i-- > 0;) {
        acc.Extend(items[order[i]].box);
        suffix[i] = acc;
      }
      double margin_sum = 0.0;
      for (size_t k = min_entries; k <= max_k; ++k) {
        margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
      }
      if (margin_sum < best_margin) {
        best_margin = margin_sum;
        best_axis = axis * 2 + by_upper;
      }
    }
  }

  // Second pass: on the chosen axis/sort, pick the best distribution.
  {
    int axis = best_axis / 2;
    int by_upper = best_axis % 2;
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      float ka = by_upper ? items[a].box.max[axis] : items[a].box.min[axis];
      float kb = by_upper ? items[b].box.max[axis] : items[b].box.min[axis];
      return ka < kb;
    });
    std::vector<Aabb> prefix(n), suffix(n);
    Aabb acc;
    for (size_t i = 0; i < n; ++i) {
      acc.Extend(items[order[i]].box);
      prefix[i] = acc;
    }
    acc = Aabb();
    for (size_t i = n; i-- > 0;) {
      acc.Extend(items[order[i]].box);
      suffix[i] = acc;
    }
    for (size_t k = min_entries; k <= max_k; ++k) {
      double overlap = geom::OverlapVolume(prefix[k - 1], suffix[k]);
      double volume = prefix[k - 1].Volume() + suffix[k].Volume();
      if (overlap < best_overlap ||
          (overlap == best_overlap && volume < best_volume)) {
        best_overlap = overlap;
        best_volume = volume;
        best_split.assign(order.begin() + k, order.end());
      }
    }
  }
  return best_split;
}

}  // namespace

void RTree::SplitNode(int32_t node_id) {
  // Gather the items being distributed.
  std::vector<SplitItem> items;
  {
    Node& n = nodes_[node_id];
    if (n.IsLeaf()) {
      items.resize(n.entries.size());
      for (uint32_t i = 0; i < n.entries.size(); ++i) {
        items[i].box = n.entries[i].bounds;
        items[i].entry = i;
      }
    } else {
      items.resize(n.children.size());
      for (uint32_t i = 0; i < n.children.size(); ++i) {
        items[i].box = nodes_[n.children[i]].bounds;
        items[i].child = n.children[i];
      }
    }
  }

  std::vector<uint32_t> second_idx =
      options_.split == SplitAlgorithm::kQuadratic
          ? QuadraticPartition(items, options_.min_entries)
          : RStarPartition(items, options_.min_entries);

  std::vector<bool> in_second(items.size(), false);
  for (uint32_t i : second_idx) in_second[i] = true;

  const int level = nodes_[node_id].level;
  int32_t sibling = NewNode(level);  // may reallocate nodes_

  // Redistribute.
  if (nodes_[node_id].IsLeaf()) {
    std::vector<SpatialElement> keep;
    for (uint32_t i = 0; i < items.size(); ++i) {
      const SpatialElement& e = nodes_[node_id].entries[items[i].entry];
      if (in_second[i]) {
        nodes_[sibling].entries.push_back(e);
      } else {
        keep.push_back(e);
      }
    }
    nodes_[node_id].entries = std::move(keep);
  } else {
    std::vector<int32_t> keep;
    for (uint32_t i = 0; i < items.size(); ++i) {
      int32_t c = items[i].child;
      if (in_second[i]) {
        nodes_[sibling].children.push_back(c);
        nodes_[c].parent = sibling;
      } else {
        keep.push_back(c);
      }
    }
    nodes_[node_id].children = std::move(keep);
  }
  RecomputeBounds(node_id);
  RecomputeBounds(sibling);

  int32_t parent = nodes_[node_id].parent;
  if (parent == -1) {
    // Root split: grow the tree.
    int32_t new_root = NewNode(level + 1);
    nodes_[new_root].children = {node_id, sibling};
    nodes_[node_id].parent = new_root;
    nodes_[sibling].parent = new_root;
    RecomputeBounds(new_root);
    root_ = new_root;
    return;
  }

  nodes_[sibling].parent = parent;
  nodes_[parent].children.push_back(sibling);
  RecomputeBounds(parent);
  if (nodes_[parent].children.size() > options_.max_entries) {
    HandleOverflow(parent);
  } else {
    AdjustUpward(parent);
  }
}

void RTree::HandleOverflow(int32_t node_id) {
  const int level = nodes_[node_id].level;
  const bool may_reinsert =
      options_.split == SplitAlgorithm::kRStar &&
      options_.reinsert_factor > 0.0 && node_id != root_ &&
      (static_cast<size_t>(level) >= reinserted_levels_.size() ||
       !reinserted_levels_[level]);
  if (!may_reinsert) {
    SplitNode(node_id);
    return;
  }
  if (reinserted_levels_.size() <= static_cast<size_t>(level)) {
    reinserted_levels_.resize(level + 1, 0);
  }
  reinserted_levels_[level] = 1;
  ForcedReinsert(node_id);
}

void RTree::ForcedReinsert(int32_t node_id) {
  const bool leaf = nodes_[node_id].IsLeaf();
  const int level = nodes_[node_id].level;
  const size_t count = leaf ? nodes_[node_id].entries.size()
                            : nodes_[node_id].children.size();
  size_t p = static_cast<size_t>(
      std::llround(options_.reinsert_factor * static_cast<double>(count)));
  p = std::max<size_t>(p, 1);
  p = std::min(p, count - options_.min_entries);

  // Rank entries by squared distance of their center from the node center;
  // the p farthest are evicted, then re-inserted closest-first ("close
  // reinsert"). Index tiebreak keeps the pass deterministic.
  const Vec3 center = nodes_[node_id].bounds.Center();
  std::vector<std::pair<double, uint32_t>> ranked(count);
  for (uint32_t i = 0; i < count; ++i) {
    const Aabb& box = leaf ? nodes_[node_id].entries[i].bounds
                           : nodes_[nodes_[node_id].children[i]].bounds;
    ranked[i] = {(box.Center() - center).SquaredNorm(), i};
  }
  std::sort(ranked.begin(), ranked.end());
  // ranked[count-p .. count) are the evicted tail, ascending by distance.

  std::vector<bool> evict(count, false);
  for (size_t i = count - p; i < count; ++i) evict[ranked[i].second] = true;

  if (leaf) {
    std::vector<SpatialElement> removed;
    removed.reserve(p);
    for (size_t i = count - p; i < count; ++i) {
      removed.push_back(nodes_[node_id].entries[ranked[i].second]);
    }
    std::vector<SpatialElement> keep;
    keep.reserve(count - p);
    for (uint32_t i = 0; i < count; ++i) {
      if (!evict[i]) keep.push_back(nodes_[node_id].entries[i]);
    }
    nodes_[node_id].entries = std::move(keep);
    RecomputeBounds(node_id);
    AdjustUpward(node_id);
    for (const auto& e : removed) {
      int32_t target = ChooseSubtree(e.bounds, 0);
      nodes_[target].entries.push_back(e);
      nodes_[target].bounds.Extend(e.bounds);
      if (nodes_[target].entries.size() > options_.LeafCapacity()) {
        HandleOverflow(target);
      } else {
        AdjustUpward(target);
      }
    }
  } else {
    std::vector<int32_t> removed;
    removed.reserve(p);
    for (size_t i = count - p; i < count; ++i) {
      removed.push_back(nodes_[node_id].children[ranked[i].second]);
    }
    std::vector<int32_t> keep;
    keep.reserve(count - p);
    for (uint32_t i = 0; i < count; ++i) {
      if (!evict[i]) keep.push_back(nodes_[node_id].children[i]);
    }
    nodes_[node_id].children = std::move(keep);
    RecomputeBounds(node_id);
    AdjustUpward(node_id);
    for (int32_t child : removed) {
      // A child of level `level - 1` re-attaches under a node of `level`.
      int32_t target = ChooseSubtree(nodes_[child].bounds, level);
      nodes_[target].children.push_back(child);
      nodes_[child].parent = target;
      nodes_[target].bounds.Extend(nodes_[child].bounds);
      if (nodes_[target].children.size() > options_.max_entries) {
        HandleOverflow(target);
      } else {
        AdjustUpward(target);
      }
    }
  }
}

void RTree::AdjustUpward(int32_t node_id) {
  int32_t id = nodes_[node_id].parent;
  while (id != -1) {
    RecomputeBounds(id);
    id = nodes_[id].parent;
  }
}

Status RTree::Insert(const SpatialElement& element) {
  NEURODB_RETURN_NOT_OK(options_.Validate());
  if (element.bounds.IsEmpty()) {
    return Status::InvalidArgument("RTree::Insert: empty bounding box");
  }
  if (root_ == -1) {
    root_ = NewNode(0);
  }
  int32_t leaf = ChooseSubtree(element.bounds, 0);
  nodes_[leaf].entries.push_back(element);
  nodes_[leaf].bounds.Extend(element.bounds);
  ++size_;
  reinserted_levels_.clear();
  if (nodes_[leaf].entries.size() > options_.LeafCapacity()) {
    HandleOverflow(leaf);
  } else {
    AdjustUpward(leaf);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

void RTree::RangeQuery(const Aabb& box, std::vector<ElementId>* out,
                       QueryStats* stats) const {
  if (root_ == -1) return;
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    int32_t id = stack.back();
    stack.pop_back();
    const Node& n = nodes_[id];
    if (stats != nullptr) stats->CountNode(n.level);
    if (n.IsLeaf()) {
      for (const auto& e : n.entries) {
        if (stats != nullptr) ++stats->entries_tested;
        if (e.bounds.Intersects(box)) {
          out->push_back(e.id);
          if (stats != nullptr) ++stats->results;
        }
      }
    } else {
      for (int32_t c : n.children) {
        if (stats != nullptr) ++stats->entries_tested;
        if (nodes_[c].bounds.Intersects(box)) stack.push_back(c);
      }
    }
  }
}

void RTree::RangeQueryElements(const Aabb& box, ElementVec* out,
                               QueryStats* stats) const {
  if (root_ == -1) return;
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    int32_t id = stack.back();
    stack.pop_back();
    const Node& n = nodes_[id];
    if (stats != nullptr) stats->CountNode(n.level);
    if (n.IsLeaf()) {
      for (const auto& e : n.entries) {
        if (stats != nullptr) ++stats->entries_tested;
        if (e.bounds.Intersects(box)) {
          out->push_back(e);
          if (stats != nullptr) ++stats->results;
        }
      }
    } else {
      for (int32_t c : n.children) {
        if (stats != nullptr) ++stats->entries_tested;
        if (nodes_[c].bounds.Intersects(box)) stack.push_back(c);
      }
    }
  }
}

namespace {
bool FindAnyRec(const RTree& tree, int32_t id, const Aabb& box,
                SpatialElement* out, QueryStats* stats) {
  const RTree::Node& n = tree.node(id);
  if (stats != nullptr) stats->CountNode(n.level);
  if (n.IsLeaf()) {
    for (const auto& e : n.entries) {
      if (stats != nullptr) ++stats->entries_tested;
      if (e.bounds.Intersects(box)) {
        *out = e;
        if (stats != nullptr) ++stats->results;
        return true;
      }
    }
    return false;
  }
  // Visit intersecting children nearest the query center first: on dense
  // data the first descent succeeds, so the cost is the tree height.
  Vec3 qc = box.Center();
  std::vector<std::pair<double, int32_t>> candidates;
  for (int32_t c : n.children) {
    if (stats != nullptr) ++stats->entries_tested;
    const Aabb& cb = tree.node(c).bounds;
    if (cb.Intersects(box)) {
      candidates.emplace_back(cb.SquaredDistanceTo(qc), c);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  for (const auto& [dist, c] : candidates) {
    if (FindAnyRec(tree, c, box, out, stats)) return true;
  }
  return false;
}
}  // namespace

bool RTree::FindAny(const Aabb& box, SpatialElement* out,
                    QueryStats* stats) const {
  if (root_ == -1) return false;
  return FindAnyRec(*this, root_, box, out, stats);
}

std::vector<std::pair<ElementId, double>> RTree::Knn(const Vec3& p, size_t k,
                                                     QueryStats* stats) const {
  std::vector<std::pair<ElementId, double>> result;
  if (root_ == -1 || k == 0) return result;

  struct HeapItem {
    double dist;
    bool is_node;
    int32_t node;
    SpatialElement element;
    bool operator>(const HeapItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>>
      heap;
  heap.push({0.0, true, root_, {}});

  while (!heap.empty() && result.size() < k) {
    HeapItem top = heap.top();
    heap.pop();
    if (!top.is_node) {
      result.emplace_back(top.element.id, std::sqrt(top.dist));
      continue;
    }
    const Node& n = nodes_[top.node];
    if (stats != nullptr) stats->CountNode(n.level);
    if (n.IsLeaf()) {
      for (const auto& e : n.entries) {
        if (stats != nullptr) ++stats->entries_tested;
        heap.push({e.bounds.SquaredDistanceTo(p), false, -1, e});
      }
    } else {
      for (int32_t c : n.children) {
        if (stats != nullptr) ++stats->entries_tested;
        heap.push({nodes_[c].bounds.SquaredDistanceTo(p), true, c, {}});
      }
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

int RTree::Height() const {
  if (root_ == -1) return 0;
  return nodes_[root_].level + 1;
}

size_t RTree::MemoryBytes() const {
  size_t bytes = nodes_.capacity() * sizeof(Node);
  for (const auto& n : nodes_) {
    bytes += n.children.capacity() * sizeof(int32_t);
    bytes += n.entries.capacity() * sizeof(SpatialElement);
  }
  return bytes;
}

Status RTree::CheckInvariants() const {
  if (root_ == -1) {
    return size_ == 0 ? Status::OK()
                      : Status::Corruption("empty tree with nonzero size");
  }
  if (nodes_[root_].parent != -1) {
    return Status::Corruption("root has a parent");
  }

  size_t element_count = 0;
  int leaf_level = -1;
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    int32_t id = stack.back();
    stack.pop_back();
    const Node& n = nodes_[id];

    if (id != root_ && n.children.empty() && n.entries.empty()) {
      return Status::Corruption("non-root node is empty");
    }
    if (n.IsLeaf()) {
      if (leaf_level == -1) leaf_level = n.level;
      if (n.level != 0) return Status::Corruption("leaf at nonzero level");
      if (n.entries.size() > options_.LeafCapacity()) {
        return Status::Corruption("leaf overflow");
      }
      element_count += n.entries.size();
      Aabb box;
      for (const auto& e : n.entries) box.Extend(e.bounds);
      if (!n.entries.empty() && box != n.bounds) {
        return Status::Corruption("leaf bounds not tight");
      }
    } else {
      if (n.children.size() > options_.max_entries) {
        return Status::Corruption("internal node overflow");
      }
      Aabb box;
      for (int32_t c : n.children) {
        const Node& child = nodes_[c];
        if (child.parent != id) {
          return Status::Corruption("child parent pointer mismatch");
        }
        if (child.level != n.level - 1) {
          return Status::Corruption("child level mismatch (tree not balanced)");
        }
        if (!n.bounds.Contains(child.bounds)) {
          return Status::Corruption("child bounds escape parent");
        }
        box.Extend(child.bounds);
        stack.push_back(c);
      }
      if (box != n.bounds) {
        return Status::Corruption("internal bounds not tight");
      }
    }
  }
  if (element_count != size_) {
    return Status::Corruption("element count mismatch: counted " +
                              std::to_string(element_count) + ", size() says " +
                              std::to_string(size_));
  }
  return Status::OK();
}

namespace {

// Pairwise overlap volume of `boxes`, exact up to `exact_limit` boxes and
// estimated from a deterministic stride sample beyond it.
double PairwiseOverlap(const std::vector<Aabb>& boxes, size_t exact_limit,
                       bool* sampled) {
  const size_t n = boxes.size();
  *sampled = false;
  if (n < 2) return 0.0;
  if (n <= exact_limit) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        total += geom::OverlapVolume(boxes[i], boxes[j]);
      }
    }
    return total;
  }
  *sampled = true;
  const size_t stride = (n + exact_limit - 1) / exact_limit;
  std::vector<Aabb> sample;
  sample.reserve(exact_limit);
  for (size_t i = 0; i < n; i += stride) sample.push_back(boxes[i]);
  const size_t s = sample.size();
  double total = 0.0;
  for (size_t i = 0; i < s; ++i) {
    for (size_t j = i + 1; j < s; ++j) {
      total += geom::OverlapVolume(sample[i], sample[j]);
    }
  }
  const double pairs = static_cast<double>(n) * (n - 1);
  const double sample_pairs = static_cast<double>(s) * (s - 1);
  return total * pairs / sample_pairs;
}

}  // namespace

std::vector<LevelStats> RTree::LevelProfile() const {
  std::vector<LevelStats> levels;
  if (root_ == -1) return levels;
  levels.resize(nodes_[root_].level + 1);
  std::vector<std::vector<Aabb>> boxes(levels.size());

  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    int32_t id = stack.back();
    stack.pop_back();
    const Node& n = nodes_[id];
    LevelStats& ls = levels[n.level];
    ++ls.nodes;
    boxes[n.level].push_back(n.bounds);
    ls.total_volume += n.bounds.Volume();
    const Vec3 ext = n.bounds.Extent();
    ls.sum_face_area += static_cast<double>(ext.x) * ext.y +
                        static_cast<double>(ext.y) * ext.z +
                        static_cast<double>(ext.z) * ext.x;
    ls.sum_extent +=
        static_cast<double>(ext.x) + static_cast<double>(ext.y) + ext.z;
    if (n.IsLeaf()) {
      ls.entries += n.entries.size();
    } else {
      ls.entries += n.children.size();
      for (int32_t c : n.children) stack.push_back(c);
    }
  }

  constexpr size_t kOverlapExactLimit = 1024;
  for (size_t level = 0; level < levels.size(); ++level) {
    LevelStats& ls = levels[level];
    ls.level = static_cast<int>(level);
    ls.capacity = level == 0 ? options_.LeafCapacity() : options_.max_entries;
    ls.mean_fill =
        ls.nodes == 0
            ? 0.0
            : static_cast<double>(ls.entries) /
                  (static_cast<double>(ls.nodes) * ls.capacity);
    ls.overlap_volume =
        PairwiseOverlap(boxes[level], kOverlapExactLimit, &ls.overlap_sampled);
  }
  return levels;
}

}  // namespace rtree
}  // namespace neurodb
