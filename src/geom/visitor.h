// NeuroDB — ResultVisitor: streaming delivery of spatial query results.
//
// Indexes historically appended matches to a std::vector<ElementId>, which
// forces materialization on every query. The visitor protocol (the
// ISpatialIndex/IVisitor shape of libspatialindex-style engines) streams
// each match — id plus bounding box — to the caller as it is found, so
// counting, filtering, forwarding and aggregation run without an
// intermediate vector. The legacy vector APIs remain as thin adapters.

#ifndef NEURODB_GEOM_VISITOR_H_
#define NEURODB_GEOM_VISITOR_H_

#include <cstdint>
#include <vector>

#include "geom/aabb.h"
#include "geom/element.h"

namespace neurodb {
namespace geom {

/// Receives one callback per element matching a spatial query. Implementors
/// must tolerate matches arriving in index-specific (arbitrary) order and
/// must not retain the Aabb reference beyond the call.
class ResultVisitor {
 public:
  virtual ~ResultVisitor() = default;

  /// One matching element: its id and bounding box.
  virtual void Visit(ElementId id, const Aabb& bounds) = 0;
};

/// Convenience visitor that materializes matches (the old behaviour).
class CollectingVisitor : public ResultVisitor {
 public:
  void Visit(ElementId id, const Aabb& bounds) override {
    elements_.emplace_back(id, bounds);
  }

  const ElementVec& elements() const { return elements_; }
  size_t size() const { return elements_.size(); }

  /// Move the collected elements out (the visitor is left empty) —
  /// spares the deep copy on hot paths that consume the whole result.
  ElementVec TakeElements() { return std::move(elements_); }

  /// Ids only, in visit order.
  std::vector<ElementId> Ids() const {
    std::vector<ElementId> ids;
    ids.reserve(elements_.size());
    for (const auto& e : elements_) ids.push_back(e.id);
    return ids;
  }

  void Clear() { elements_.clear(); }

 private:
  ElementVec elements_;
};

/// Counts matches without materializing anything.
class CountingVisitor : public ResultVisitor {
 public:
  void Visit(ElementId, const Aabb&) override { ++count_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Appends ids to an external vector — the adapter behind the legacy
/// std::vector-based index APIs.
class VectorVisitor : public ResultVisitor {
 public:
  explicit VectorVisitor(std::vector<ElementId>* out) : out_(out) {}
  void Visit(ElementId id, const Aabb&) override { out_->push_back(id); }

 private:
  std::vector<ElementId>* out_;
};

/// Forwards every match to two downstream visitors (e.g. stream to the
/// caller while also collecting ids for a parity check).
class TeeVisitor : public ResultVisitor {
 public:
  TeeVisitor(ResultVisitor* first, ResultVisitor* second)
      : first_(first), second_(second) {}
  void Visit(ElementId id, const Aabb& bounds) override {
    if (first_ != nullptr) first_->Visit(id, bounds);
    if (second_ != nullptr) second_->Visit(id, bounds);
  }

 private:
  ResultVisitor* first_;
  ResultVisitor* second_;
};

}  // namespace geom
}  // namespace neurodb

#endif  // NEURODB_GEOM_VISITOR_H_
