// NeuroDB — k-nearest-neighbour primitives shared by every backend.
//
// All kNN answers in the library use the same metric and the same total
// order: the Euclidean distance from the query point to the element's
// bounding box (0 inside the box), with ties broken by ascending element
// id. The tie-break makes the k-element answer set *deterministic* — three
// independent backends (FLAT crawl, R-tree best-first, grid scan) can be
// compared hit-for-hit in BackendChoice::kAll parity runs.

#ifndef NEURODB_GEOM_KNN_H_
#define NEURODB_GEOM_KNN_H_

#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "geom/aabb.h"
#include "geom/element.h"
#include "geom/vec3.h"

namespace neurodb {
namespace geom {

/// One kNN answer: element id plus its box distance to the query point.
struct KnnHit {
  ElementId id = 0;
  double distance = 0.0;

  bool operator==(const KnnHit& o) const {
    return id == o.id && distance == o.distance;
  }
  /// Total order used everywhere: (distance, id) ascending.
  bool operator<(const KnnHit& o) const {
    return distance != o.distance ? distance < o.distance : id < o.id;
  }
};

/// Bounded accumulator of the k best hits under the (distance, id) order.
/// Offer() every candidate; TakeSorted() returns the k best ascending.
class KnnAccumulator {
 public:
  explicit KnnAccumulator(size_t k) : k_(k) {}

  /// Consider one candidate.
  void Offer(ElementId id, double distance) {
    if (k_ == 0) return;
    KnnHit hit{id, distance};
    if (heap_.size() < k_) {
      heap_.push(hit);
    } else if (hit < heap_.top()) {
      heap_.pop();
      heap_.push(hit);
    }
  }

  bool Full() const { return heap_.size() >= k_; }
  size_t size() const { return heap_.size(); }

  /// Distance of the current kth hit; +inf while fewer than k hits are
  /// held. A node/page whose minimum distance exceeds this bound cannot
  /// improve the answer (at equal distance it still can, via a smaller id —
  /// prune strictly greater only).
  double WorstDistance() const {
    return Full() ? heap_.top().distance
                  : std::numeric_limits<double>::infinity();
  }

  /// The k best hits, ascending by (distance, id). Leaves the accumulator
  /// empty.
  std::vector<KnnHit> TakeSorted() {
    std::vector<KnnHit> out;
    out.resize(heap_.size());
    for (size_t i = heap_.size(); i-- > 0;) {
      out[i] = heap_.top();
      heap_.pop();
    }
    return out;
  }

 private:
  size_t k_;
  // Max-heap under (distance, id): top = current worst of the k best.
  std::priority_queue<KnnHit> heap_;
};

/// Distance used by every backend: point-to-box Euclidean distance.
inline double KnnDistance(const Vec3& p, const Aabb& bounds) {
  return std::sqrt(bounds.SquaredDistanceTo(p));
}

/// True if every coordinate of `p` is finite (kNN validation boundary).
inline bool IsFinitePoint(const Vec3& p) {
  return std::isfinite(p.x) && std::isfinite(p.y) && std::isfinite(p.z);
}

/// Brute-force reference: the k best hits over `elements` under the shared
/// order. The ground truth the property tests and the differential harness
/// compare every backend against.
inline std::vector<KnnHit> BruteForceKnn(const ElementVec& elements,
                                         const Vec3& p, size_t k) {
  KnnAccumulator acc(k);
  for (const auto& e : elements) acc.Offer(e.id, KnnDistance(p, e.bounds));
  return acc.TakeSorted();
}

}  // namespace geom
}  // namespace neurodb

#endif  // NEURODB_GEOM_KNN_H_
