// NeuroDB — Vec3: 3-D vector with float storage and double arithmetic.
//
// Model coordinates are stored as float (micrometres; matches the precision
// of anatomical reconstructions), while reductions (dot, norm, distances)
// are computed in double to keep the geometric predicates well-conditioned.

#ifndef NEURODB_GEOM_VEC3_H_
#define NEURODB_GEOM_VEC3_H_

#include <cmath>
#include <ostream>

namespace neurodb {
namespace geom {

/// 3-D point / vector.
struct Vec3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  Vec3() = default;
  Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}

  float operator[](int axis) const { return axis == 0 ? x : (axis == 1 ? y : z); }
  float& operator[](int axis) {
    return axis == 0 ? x : (axis == 1 ? y : z);
  }

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
  Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
  Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(float s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  bool operator==(const Vec3& o) const { return x == o.x && y == o.y && z == o.z; }
  bool operator!=(const Vec3& o) const { return !(*this == o); }

  /// Dot product (double precision).
  double Dot(const Vec3& o) const {
    return static_cast<double>(x) * o.x + static_cast<double>(y) * o.y +
           static_cast<double>(z) * o.z;
  }

  /// Cross product.
  Vec3 Cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }

  double SquaredNorm() const { return Dot(*this); }
  double Norm() const { return std::sqrt(SquaredNorm()); }

  /// Unit-length copy; returns the zero vector unchanged.
  Vec3 Normalized() const {
    double n = Norm();
    if (n <= 0.0) return *this;
    float inv = static_cast<float>(1.0 / n);
    return {x * inv, y * inv, z * inv};
  }
};

inline Vec3 operator*(float s, const Vec3& v) { return v * s; }

/// Euclidean distance between two points (double precision).
inline double Distance(const Vec3& a, const Vec3& b) { return (a - b).Norm(); }

/// Squared Euclidean distance.
inline double SquaredDistance(const Vec3& a, const Vec3& b) {
  return (a - b).SquaredNorm();
}

/// Linear interpolation a + t*(b-a).
inline Vec3 Lerp(const Vec3& a, const Vec3& b, float t) {
  return a + (b - a) * t;
}

/// Componentwise min / max.
inline Vec3 Min(const Vec3& a, const Vec3& b) {
  return {std::fmin(a.x, b.x), std::fmin(a.y, b.y), std::fmin(a.z, b.z)};
}
inline Vec3 Max(const Vec3& a, const Vec3& b) {
  return {std::fmax(a.x, b.x), std::fmax(a.y, b.y), std::fmax(a.z, b.z)};
}

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace geom
}  // namespace neurodb

#endif  // NEURODB_GEOM_VEC3_H_
