// NeuroDB — Aabb: axis-aligned bounding box, the unit of spatial filtering
// used by every index and join in the library.

#ifndef NEURODB_GEOM_AABB_H_
#define NEURODB_GEOM_AABB_H_

#include <algorithm>
#include <limits>
#include <ostream>

#include "geom/vec3.h"

namespace neurodb {
namespace geom {

/// Axis-aligned box [min, max] in 3-D. A default-constructed Aabb is empty
/// (min > max) and behaves as the identity of Extend/Union.
struct Aabb {
  Vec3 min{std::numeric_limits<float>::max(), std::numeric_limits<float>::max(),
           std::numeric_limits<float>::max()};
  Vec3 max{std::numeric_limits<float>::lowest(),
           std::numeric_limits<float>::lowest(),
           std::numeric_limits<float>::lowest()};

  Aabb() = default;
  Aabb(const Vec3& mn, const Vec3& mx) : min(mn), max(mx) {}

  /// Box containing a single point.
  static Aabb FromPoint(const Vec3& p) { return Aabb(p, p); }

  /// Cube of side `side` centered at `c`.
  static Aabb Cube(const Vec3& c, float side) {
    float h = side * 0.5f;
    return Aabb({c.x - h, c.y - h, c.z - h}, {c.x + h, c.y + h, c.z + h});
  }

  /// True if the box contains no points (never Extended).
  bool IsEmpty() const { return min.x > max.x || min.y > max.y || min.z > max.z; }

  /// True if min <= max on every axis (degenerate zero-width boxes are valid).
  bool IsValid() const { return !IsEmpty(); }

  Vec3 Center() const { return (min + max) * 0.5f; }
  Vec3 Extent() const { return max - min; }

  double Volume() const {
    if (IsEmpty()) return 0.0;
    Vec3 e = Extent();
    return static_cast<double>(e.x) * e.y * e.z;
  }

  /// Half of the surface area (the classic R*-tree "margin" proxy is the
  /// full surface; we expose both).
  double SurfaceArea() const {
    if (IsEmpty()) return 0.0;
    Vec3 e = Extent();
    return 2.0 * (static_cast<double>(e.x) * e.y + static_cast<double>(e.y) * e.z +
                  static_cast<double>(e.z) * e.x);
  }

  /// Sum of the three edge lengths (R*-tree margin).
  double Margin() const {
    if (IsEmpty()) return 0.0;
    Vec3 e = Extent();
    return static_cast<double>(e.x) + e.y + e.z;
  }

  /// Grow to contain point `p`.
  void Extend(const Vec3& p) {
    min = Min(min, p);
    max = Max(max, p);
  }

  /// Grow to contain box `b`.
  void Extend(const Aabb& b) {
    if (b.IsEmpty()) return;
    min = Min(min, b.min);
    max = Max(max, b.max);
  }

  /// Smallest box containing both inputs.
  static Aabb Union(const Aabb& a, const Aabb& b) {
    Aabb u = a;
    u.Extend(b);
    return u;
  }

  /// Intersection box (empty if disjoint).
  static Aabb Intersection(const Aabb& a, const Aabb& b) {
    Aabb r(Max(a.min, b.min), Min(a.max, b.max));
    if (r.min.x > r.max.x || r.min.y > r.max.y || r.min.z > r.max.z) {
      return Aabb();  // empty
    }
    return r;
  }

  /// Closed-interval overlap test (boxes sharing a face intersect).
  bool Intersects(const Aabb& o) const {
    return min.x <= o.max.x && o.min.x <= max.x && min.y <= o.max.y &&
           o.min.y <= max.y && min.z <= o.max.z && o.min.z <= max.z;
  }

  /// True if `p` lies inside or on the boundary.
  bool Contains(const Vec3& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y &&
           p.z >= min.z && p.z <= max.z;
  }

  /// True if `o` lies fully inside or on the boundary.
  bool Contains(const Aabb& o) const {
    return !o.IsEmpty() && o.min.x >= min.x && o.max.x <= max.x &&
           o.min.y >= min.y && o.max.y <= max.y && o.min.z >= min.z &&
           o.max.z <= max.z;
  }

  /// Box grown by `eps` on every side (Minkowski sum with a cube). Used for
  /// epsilon-distance joins.
  Aabb Expanded(float eps) const {
    if (IsEmpty()) return *this;
    return Aabb({min.x - eps, min.y - eps, min.z - eps},
                {max.x + eps, max.y + eps, max.z + eps});
  }

  /// Squared distance from `p` to the box (0 if inside).
  double SquaredDistanceTo(const Vec3& p) const {
    auto axis = [](float v, float lo, float hi) -> double {
      if (v < lo) return static_cast<double>(lo) - v;
      if (v > hi) return static_cast<double>(v) - hi;
      return 0.0;
    };
    double dx = axis(p.x, min.x, max.x);
    double dy = axis(p.y, min.y, max.y);
    double dz = axis(p.z, min.z, max.z);
    return dx * dx + dy * dy + dz * dz;
  }

  /// Squared minimum distance between two boxes (0 if they intersect).
  double SquaredDistanceTo(const Aabb& o) const {
    auto axis = [](float amin, float amax, float bmin, float bmax) -> double {
      if (amax < bmin) return static_cast<double>(bmin) - amax;
      if (bmax < amin) return static_cast<double>(amin) - bmax;
      return 0.0;
    };
    double dx = axis(min.x, max.x, o.min.x, o.max.x);
    double dy = axis(min.y, max.y, o.min.y, o.max.y);
    double dz = axis(min.z, max.z, o.min.z, o.max.z);
    return dx * dx + dy * dy + dz * dz;
  }

  bool operator==(const Aabb& o) const { return min == o.min && max == o.max; }
  bool operator!=(const Aabb& o) const { return !(*this == o); }
};

inline std::ostream& operator<<(std::ostream& os, const Aabb& b) {
  return os << '[' << b.min << " .. " << b.max << ']';
}

/// Additional volume needed for `base` to cover `add` (ChooseSubtree metric).
inline double Enlargement(const Aabb& base, const Aabb& add) {
  return Aabb::Union(base, add).Volume() - base.Volume();
}

/// Volume of the intersection (R*-tree overlap metric).
inline double OverlapVolume(const Aabb& a, const Aabb& b) {
  return Aabb::Intersection(a, b).Volume();
}

}  // namespace geom
}  // namespace neurodb

#endif  // NEURODB_GEOM_AABB_H_
