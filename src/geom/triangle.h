// NeuroDB — Triangle: surface-mesh facet primitive.
//
// The demo visualises neurons as surface meshes (paper Figure 1 right);
// triangles are the element type when indexing at mesh granularity.

#ifndef NEURODB_GEOM_TRIANGLE_H_
#define NEURODB_GEOM_TRIANGLE_H_

#include "geom/aabb.h"
#include "geom/vec3.h"

namespace neurodb {
namespace geom {

/// A triangle given by its three vertices.
struct Triangle {
  Vec3 v0;
  Vec3 v1;
  Vec3 v2;

  Triangle() = default;
  Triangle(const Vec3& a, const Vec3& b, const Vec3& c) : v0(a), v1(b), v2(c) {}

  Vec3 Centroid() const { return (v0 + v1 + v2) / 3.0f; }

  /// Unnormalized normal (cross of two edges); its norm is twice the area.
  Vec3 ScaledNormal() const { return (v1 - v0).Cross(v2 - v0); }

  double Area() const { return 0.5 * ScaledNormal().Norm(); }

  Aabb Bounds() const {
    Aabb box;
    box.Extend(v0);
    box.Extend(v1);
    box.Extend(v2);
    return box;
  }
};

/// Squared distance from a point to a (solid) triangle.
double SquaredDistancePointTriangle(const Vec3& p, const Triangle& tri);

}  // namespace geom
}  // namespace neurodb

#endif  // NEURODB_GEOM_TRIANGLE_H_
