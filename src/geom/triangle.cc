#include "geom/triangle.h"

#include "geom/segment.h"

namespace neurodb {
namespace geom {

double SquaredDistancePointTriangle(const Vec3& p, const Triangle& tri) {
  // Ericson 5.1.5 (ClosestPtPointTriangle), specialised to return the
  // squared distance.
  const Vec3& a = tri.v0;
  const Vec3& b = tri.v1;
  const Vec3& c = tri.v2;

  Vec3 ab = b - a;
  Vec3 ac = c - a;
  Vec3 ap = p - a;
  double d1 = ab.Dot(ap);
  double d2 = ac.Dot(ap);
  if (d1 <= 0.0 && d2 <= 0.0) return SquaredDistance(p, a);

  Vec3 bp = p - b;
  double d3 = ab.Dot(bp);
  double d4 = ac.Dot(bp);
  if (d3 >= 0.0 && d4 <= d3) return SquaredDistance(p, b);

  double vc = d1 * d4 - d3 * d2;
  if (vc <= 0.0 && d1 >= 0.0 && d3 <= 0.0) {
    double v = d1 / (d1 - d3);
    return SquaredDistance(p, a + ab * static_cast<float>(v));
  }

  Vec3 cp = p - c;
  double d5 = ab.Dot(cp);
  double d6 = ac.Dot(cp);
  if (d6 >= 0.0 && d5 <= d6) return SquaredDistance(p, c);

  double vb = d5 * d2 - d1 * d6;
  if (vb <= 0.0 && d2 >= 0.0 && d6 <= 0.0) {
    double w = d2 / (d2 - d6);
    return SquaredDistance(p, a + ac * static_cast<float>(w));
  }

  double va = d3 * d6 - d5 * d4;
  if (va <= 0.0 && (d4 - d3) >= 0.0 && (d5 - d6) >= 0.0) {
    double w = (d4 - d3) / ((d4 - d3) + (d5 - d6));
    return SquaredDistance(p, b + (c - b) * static_cast<float>(w));
  }

  // Inside face region: project onto the plane.
  double denom = 1.0 / (va + vb + vc);
  double v = vb * denom;
  double w = vc * denom;
  Vec3 closest = a + ab * static_cast<float>(v) + ac * static_cast<float>(w);
  return SquaredDistance(p, closest);
}

}  // namespace geom
}  // namespace neurodb
