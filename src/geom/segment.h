// NeuroDB — Segment: a neuron-branch cylinder segment (capsule).
//
// Neuron morphologies are piecewise-linear: each branch is a chain of
// cylinders with a start/end point and radius. This is the element type
// indexed by FLAT and joined by TOUCH ("find pairs of neuron branches
// within distance e of each other", paper Section 4).

#ifndef NEURODB_GEOM_SEGMENT_H_
#define NEURODB_GEOM_SEGMENT_H_

#include <cstdint>

#include "geom/aabb.h"
#include "geom/vec3.h"

namespace neurodb {
namespace geom {

/// Capsule: the set of points within `radius` of the line segment [a, b].
struct Segment {
  Vec3 a;
  Vec3 b;
  float radius = 0.0f;

  Segment() = default;
  Segment(const Vec3& a_, const Vec3& b_, float r) : a(a_), b(b_), radius(r) {}

  Vec3 Midpoint() const { return (a + b) * 0.5f; }
  Vec3 Direction() const { return (b - a).Normalized(); }
  double Length() const { return Distance(a, b); }

  /// Tight AABB of the capsule (segment box inflated by the radius).
  Aabb Bounds() const {
    Aabb box(Min(a, b), Max(a, b));
    return box.Expanded(radius);
  }
};

/// Squared distance from point `p` to line segment [a, b] (centerline, the
/// radius is not considered).
double SquaredDistancePointSegment(const Vec3& p, const Vec3& a, const Vec3& b);

/// Squared minimum distance between the centerlines of two segments.
/// Robust closed-form clamp method (Ericson, "Real-Time Collision
/// Detection", 5.1.9), computed in double precision.
double SquaredDistanceSegmentSegment(const Vec3& p1, const Vec3& q1,
                                     const Vec3& p2, const Vec3& q2);

/// Minimum distance between two capsule *surfaces*: centerline distance
/// minus both radii, clamped at zero (overlapping capsules have distance 0).
double CapsuleDistance(const Segment& s, const Segment& t);

/// True if the two capsules approach within `eps` of each other — the
/// synapse-candidate predicate of the paper's distance join.
bool WithinDistance(const Segment& s, const Segment& t, float eps);

}  // namespace geom
}  // namespace neurodb

#endif  // NEURODB_GEOM_SEGMENT_H_
