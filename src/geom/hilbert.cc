#include "geom/hilbert.h"

#include <algorithm>

namespace neurodb {
namespace geom {

namespace {

constexpr int kDims = 3;

// Skilling, "Programming the Hilbert curve", AIP Conf. Proc. 707 (2004).
// Converts coordinates into the "transposed" Hilbert representation in
// place: after the call, interleaving the bits of x[0..2] (x[0] carries the
// most significant bit of each triple) yields the Hilbert index.
void AxesToTranspose(uint32_t x[kDims], int bits) {
  uint32_t m = 1u << (bits - 1);
  // Inverse undo.
  for (uint32_t q = m; q > 1; q >>= 1) {
    uint32_t p = q - 1;
    for (int i = 0; i < kDims; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert
      } else {
        uint32_t t = (x[0] ^ x[i]) & p;  // exchange
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < kDims; ++i) x[i] ^= x[i - 1];
  uint32_t t = 0;
  for (uint32_t q = m; q > 1; q >>= 1) {
    if (x[kDims - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < kDims; ++i) x[i] ^= t;
}

// Inverse of AxesToTranspose.
void TransposeToAxes(uint32_t x[kDims], int bits) {
  uint32_t n = 2u << (bits - 1);
  // Gray decode by H ^ (H/2).
  uint32_t t = x[kDims - 1] >> 1;
  for (int i = kDims - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (uint32_t q = 2; q != n; q <<= 1) {
    uint32_t p = q - 1;
    for (int i = kDims - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        uint32_t t2 = (x[0] ^ x[i]) & p;
        x[0] ^= t2;
        x[i] ^= t2;
      }
    }
  }
}

}  // namespace

uint64_t HilbertEncode(uint32_t xi, uint32_t yi, uint32_t zi, int bits) {
  uint32_t x[kDims] = {xi, yi, zi};
  AxesToTranspose(x, bits);
  uint64_t index = 0;
  for (int bit = bits - 1; bit >= 0; --bit) {
    for (int i = 0; i < kDims; ++i) {
      index = (index << 1) | ((x[i] >> bit) & 1u);
    }
  }
  return index;
}

void HilbertDecode(uint64_t index, uint32_t* xo, uint32_t* yo, uint32_t* zo,
                   int bits) {
  uint32_t x[kDims] = {0, 0, 0};
  int pos = kDims * bits - 1;
  for (int bit = bits - 1; bit >= 0; --bit) {
    for (int i = 0; i < kDims; ++i) {
      x[i] |= static_cast<uint32_t>((index >> pos) & 1u) << bit;
      --pos;
    }
  }
  TransposeToAxes(x, bits);
  *xo = x[0];
  *yo = x[1];
  *zo = x[2];
}

HilbertMapper::HilbertMapper(const Aabb& domain, int bits)
    : domain_(domain), bits_(bits) {
  double cells = static_cast<double>((1ull << bits_) - 1);
  Vec3 extent = domain.Extent();
  for (int axis = 0; axis < 3; ++axis) {
    double e = extent[axis];
    scale_[axis] = e > 0.0 ? cells / e : 0.0;
  }
}

uint64_t HilbertMapper::Key(const Vec3& p) const {
  uint32_t grid[3];
  uint32_t max_cell = static_cast<uint32_t>((1ull << bits_) - 1);
  for (int axis = 0; axis < 3; ++axis) {
    double rel = (static_cast<double>(p[axis]) - domain_.min[axis]) * scale_[axis];
    rel = std::clamp(rel, 0.0, static_cast<double>(max_cell));
    grid[axis] = static_cast<uint32_t>(rel);
  }
  return HilbertEncode(grid[0], grid[1], grid[2], bits_);
}

}  // namespace geom
}  // namespace neurodb
