// NeuroDB — 3-D Morton (Z-order) curve encoding.
//
// Used as a cheap space-filling-curve baseline and by storage pagination.

#ifndef NEURODB_GEOM_MORTON_H_
#define NEURODB_GEOM_MORTON_H_

#include <cstdint>

namespace neurodb {
namespace geom {

namespace detail {
/// Spread the low 21 bits of `v` so that there are two zero bits between
/// consecutive input bits.
inline uint64_t Part1By2(uint64_t v) {
  v &= 0x1fffff;  // 21 bits
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

/// Inverse of Part1By2.
inline uint64_t Compact1By2(uint64_t v) {
  v &= 0x1249249249249249ULL;
  v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v ^ (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v ^ (v >> 8)) & 0x1f0000ff0000ffULL;
  v = (v ^ (v >> 16)) & 0x1f00000000ffffULL;
  v = (v ^ (v >> 32)) & 0x1fffff;
  return v;
}
}  // namespace detail

/// Interleave three 21-bit grid coordinates into a 63-bit Morton code.
inline uint64_t MortonEncode(uint32_t x, uint32_t y, uint32_t z) {
  return detail::Part1By2(x) | (detail::Part1By2(y) << 1) |
         (detail::Part1By2(z) << 2);
}

/// Recover the three 21-bit grid coordinates from a Morton code.
inline void MortonDecode(uint64_t code, uint32_t* x, uint32_t* y, uint32_t* z) {
  *x = static_cast<uint32_t>(detail::Compact1By2(code));
  *y = static_cast<uint32_t>(detail::Compact1By2(code >> 1));
  *z = static_cast<uint32_t>(detail::Compact1By2(code >> 2));
}

}  // namespace geom
}  // namespace neurodb

#endif  // NEURODB_GEOM_MORTON_H_
