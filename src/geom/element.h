// NeuroDB — SpatialElement: the (id, bounds) unit every index operates on.

#ifndef NEURODB_GEOM_ELEMENT_H_
#define NEURODB_GEOM_ELEMENT_H_

#include <cstdint>
#include <vector>

#include "geom/aabb.h"

namespace neurodb {
namespace geom {

/// Opaque identifier of a spatial element. For circuit data this encodes
/// (neuron id, section id, segment index); the geometry layer treats it as
/// an opaque 64-bit handle.
using ElementId = uint64_t;

/// A spatial element as seen by indexes: its id and bounding box. The exact
/// geometry (capsule, triangle) lives in the owning dataset and is consulted
/// only in refinement steps.
struct SpatialElement {
  ElementId id = 0;
  Aabb bounds;

  SpatialElement() = default;
  SpatialElement(ElementId id_, const Aabb& b) : id(id_), bounds(b) {}
};

using ElementVec = std::vector<SpatialElement>;

}  // namespace geom
}  // namespace neurodb

#endif  // NEURODB_GEOM_ELEMENT_H_
