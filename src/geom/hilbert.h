// NeuroDB — 3-D Hilbert curve encoding (Skilling's transpose algorithm).
//
// The Hilbert curve provides the locality-preserving linear order used to
// pack spatially close elements into the same disk page (FLAT crawl pages)
// and drives the Hilbert-order prefetching baseline of SCOUT.

#ifndef NEURODB_GEOM_HILBERT_H_
#define NEURODB_GEOM_HILBERT_H_

#include <cstdint>

#include "geom/aabb.h"
#include "geom/vec3.h"

namespace neurodb {
namespace geom {

/// Number of bits per axis used by the curve (3*21 = 63 bits total).
inline constexpr int kHilbertBits = 21;

/// Map grid coordinates (each < 2^bits) to their Hilbert index.
uint64_t HilbertEncode(uint32_t x, uint32_t y, uint32_t z,
                       int bits = kHilbertBits);

/// Inverse of HilbertEncode.
void HilbertDecode(uint64_t index, uint32_t* x, uint32_t* y, uint32_t* z,
                   int bits = kHilbertBits);

/// Quantises points of `domain` onto a 2^bits grid and returns Hilbert keys.
/// Points outside the domain are clamped onto its boundary.
class HilbertMapper {
 public:
  HilbertMapper(const Aabb& domain, int bits = kHilbertBits);

  /// Hilbert key of point `p`.
  uint64_t Key(const Vec3& p) const;

  /// Hilbert key of the center of `box` (the standard choice for packing
  /// extended objects).
  uint64_t Key(const Aabb& box) const { return Key(box.Center()); }

  int bits() const { return bits_; }
  const Aabb& domain() const { return domain_; }

 private:
  Aabb domain_;
  int bits_;
  double scale_[3];
};

}  // namespace geom
}  // namespace neurodb

#endif  // NEURODB_GEOM_HILBERT_H_
