#include "geom/segment.h"

#include <algorithm>
#include <cmath>

namespace neurodb {
namespace geom {

namespace {
double Clamp01(double v) { return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v); }
}  // namespace

double SquaredDistancePointSegment(const Vec3& p, const Vec3& a,
                                   const Vec3& b) {
  Vec3 ab = b - a;
  double denom = ab.SquaredNorm();
  if (denom <= 0.0) return SquaredDistance(p, a);
  double t = Clamp01((p - a).Dot(ab) / denom);
  Vec3 closest = a + ab * static_cast<float>(t);
  return SquaredDistance(p, closest);
}

double SquaredDistanceSegmentSegment(const Vec3& p1, const Vec3& q1,
                                     const Vec3& p2, const Vec3& q2) {
  // Ericson 5.1.9: closest points of two segments S1(s)=p1+s*d1,
  // S2(t)=p2+t*d2 with s,t in [0,1].
  Vec3 d1 = q1 - p1;
  Vec3 d2 = q2 - p2;
  Vec3 r = p1 - p2;
  double a = d1.SquaredNorm();
  double e = d2.SquaredNorm();
  double f = d2.Dot(r);

  double s = 0.0;
  double t = 0.0;
  constexpr double kEps = 1e-12;

  if (a <= kEps && e <= kEps) {
    // Both segments degenerate to points.
    return SquaredDistance(p1, p2);
  }
  if (a <= kEps) {
    // First segment is a point.
    t = Clamp01(f / e);
  } else {
    double c = d1.Dot(r);
    if (e <= kEps) {
      // Second segment is a point.
      s = Clamp01(-c / a);
    } else {
      double b = d1.Dot(d2);
      double denom = a * e - b * b;
      // If not parallel, pick closest point on infinite lines, clamped.
      if (denom > kEps) {
        s = Clamp01((b * f - c * e) / denom);
      } else {
        s = 0.0;
      }
      t = (b * s + f) / e;
      // If t is outside [0,1], clamp t and recompute s.
      if (t < 0.0) {
        t = 0.0;
        s = Clamp01(-c / a);
      } else if (t > 1.0) {
        t = 1.0;
        s = Clamp01((b - c) / a);
      }
    }
  }

  Vec3 c1 = p1 + d1 * static_cast<float>(s);
  Vec3 c2 = p2 + d2 * static_cast<float>(t);
  return SquaredDistance(c1, c2);
}

double CapsuleDistance(const Segment& s, const Segment& t) {
  double center =
      std::sqrt(SquaredDistanceSegmentSegment(s.a, s.b, t.a, t.b));
  double d = center - s.radius - t.radius;
  return d > 0.0 ? d : 0.0;
}

bool WithinDistance(const Segment& s, const Segment& t, float eps) {
  // Early out via AABBs: a cheap necessary condition.
  if (!s.Bounds().Expanded(eps).Intersects(t.Bounds())) return false;
  return CapsuleDistance(s, t) <= static_cast<double>(eps);
}

}  // namespace geom
}  // namespace neurodb
