#include "neuro/circuit.h"

namespace neurodb {
namespace neuro {

uint32_t Circuit::AddNeuron(Morphology morphology) {
  uint32_t gid = static_cast<uint32_t>(neurons_.size());
  neurons_.push_back(Neuron{gid, std::move(morphology)});
  return gid;
}

size_t Circuit::TotalSegments() const {
  size_t n = 0;
  for (const auto& neuron : neurons_) n += neuron.morphology.NumSegments();
  return n;
}

double Circuit::TotalCableLength() const {
  double len = 0.0;
  for (const auto& neuron : neurons_) len += neuron.morphology.TotalLength();
  return len;
}

geom::Aabb Circuit::Bounds() const {
  geom::Aabb box;
  for (const auto& neuron : neurons_) box.Extend(neuron.morphology.Bounds());
  return box;
}

SegmentDataset Circuit::FlattenSegments(NeuriteFilter filter) const {
  SegmentDataset out;
  for (const auto& neuron : neurons_) {
    for (const auto& section : neuron.morphology.sections()) {
      bool keep = false;
      switch (filter) {
        case NeuriteFilter::kAll:
          keep = true;
          break;
        case NeuriteFilter::kAxons:
          keep = section.type == SectionType::kAxon;
          break;
        case NeuriteFilter::kDendrites:
          keep = IsDendrite(section.type);
          break;
      }
      if (!keep) continue;
      for (size_t i = 0; i < section.NumSegments(); ++i) {
        out.Add(section.SegmentAt(i),
                EncodeSegmentId(neuron.gid, section.id,
                                static_cast<uint32_t>(i)));
      }
    }
  }
  return out;
}

Status Circuit::Validate() const {
  for (const auto& neuron : neurons_) {
    NEURODB_RETURN_NOT_OK(neuron.morphology.Validate());
  }
  return Status::OK();
}

}  // namespace neuro
}  // namespace neurodb
