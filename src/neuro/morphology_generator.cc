#include "neuro/morphology_generator.h"

#include <cmath>
#include <deque>

namespace neurodb {
namespace neuro {

using geom::Vec3;

namespace {
constexpr float kDegToRad = 0.017453292519943295f;
}  // namespace

MorphologyParams MorphologyParams::Pyramidal() {
  MorphologyParams p;
  p.dendrite_stems = 6;
  p.with_axon = true;
  p.segment_length_mean = 9.0f;
  p.segment_length_std = 2.5f;
  p.tortuosity_deg = 13.0f;
  p.bifurcation_prob = 0.68f;
  p.max_branch_order = 5;
  p.initial_radius = 1.6f;
  p.extent_limit = 320.0f;
  return p;
}

MorphologyParams MorphologyParams::Interneuron() {
  MorphologyParams p;
  p.dendrite_stems = 8;
  p.with_axon = true;
  p.segment_length_mean = 6.0f;
  p.segment_length_std = 1.5f;
  p.tortuosity_deg = 18.0f;
  p.bifurcation_prob = 0.55f;
  p.max_branch_order = 3;
  p.initial_radius = 1.0f;
  p.extent_limit = 160.0f;
  p.axon_length_factor = 1.4f;
  return p;
}

MorphologyGenerator::MorphologyGenerator(MorphologyParams params,
                                         uint64_t seed)
    : params_(params), rng_(seed, 0x9e3779b97f4a7c15ULL) {}

Vec3 MorphologyGenerator::RandomUnit() {
  // Marsaglia: uniform on the sphere.
  for (;;) {
    double u = rng_.Uniform(-1.0, 1.0);
    double v = rng_.Uniform(-1.0, 1.0);
    double s = u * u + v * v;
    if (s >= 1.0 || s == 0.0) continue;
    double root = std::sqrt(1.0 - s);
    return Vec3(static_cast<float>(2.0 * u * root),
                static_cast<float>(2.0 * v * root),
                static_cast<float>(1.0 - 2.0 * s));
  }
}

Vec3 MorphologyGenerator::Jitter(const Vec3& direction, float angle_deg) {
  // Rotate `direction` by a Gaussian angle around a random perpendicular
  // axis (Rodrigues), producing the jagged growth of real neurites.
  double angle = rng_.Gaussian(0.0, angle_deg * kDegToRad);
  Vec3 axis = direction.Cross(RandomUnit());
  if (axis.SquaredNorm() < 1e-12) return direction;
  axis = axis.Normalized();
  float c = static_cast<float>(std::cos(angle));
  float s = static_cast<float>(std::sin(angle));
  Vec3 rotated = direction * c + axis.Cross(direction) * s +
                 axis * static_cast<float>(axis.Dot(direction) * (1.0 - c));
  return rotated.Normalized();
}

void MorphologyGenerator::GrowTree(Morphology* morph, const Vec3& soma_center,
                                   const Vec3& stem_direction,
                                   SectionType type, float length_factor,
                                   float radius_factor) {
  std::deque<GrowthFront> fronts;
  fronts.push_back(GrowthFront{
      soma_center + stem_direction * params_.soma_radius, stem_direction,
      params_.initial_radius * radius_factor, -1, 0, type});

  float extent = params_.extent_limit * length_factor;

  while (!fronts.empty()) {
    GrowthFront front = fronts.front();
    fronts.pop_front();
    if (front.radius < params_.min_radius) continue;

    Section section;
    section.id = static_cast<uint32_t>(morph->NumSections());
    section.parent = front.parent_section;
    section.type = front.type;
    section.points.push_back(front.position);
    section.radii.push_back(front.radius);

    uint32_t num_segments =
        params_.min_segments_per_section +
        rng_.NextBounded(params_.max_segments_per_section -
                         params_.min_segments_per_section + 1);

    Vec3 pos = front.position;
    Vec3 dir = front.direction;
    float radius = front.radius;
    bool clipped = false;
    for (uint32_t i = 0; i < num_segments; ++i) {
      double len = std::max<double>(
          0.5, rng_.Gaussian(params_.segment_length_mean * length_factor,
                             params_.segment_length_std * length_factor));
      dir = Jitter(dir, params_.tortuosity_deg);
      pos = pos + dir * static_cast<float>(len);
      // Per-point radius shrinks smoothly towards the section-end taper.
      radius *= std::pow(params_.taper, 1.0f / num_segments);
      section.points.push_back(pos);
      section.radii.push_back(std::max(radius, params_.min_radius));
      if (geom::Distance(pos, soma_center) > extent) {
        clipped = true;
        break;
      }
    }
    if (section.points.size() < 2) continue;
    // AddSection cannot fail here: ids are consecutive by construction.
    morph->AddSection(section);

    bool can_branch = !clipped && front.order + 1 < params_.max_branch_order &&
                      radius * params_.taper >= params_.min_radius;
    if (can_branch && rng_.NextBool(params_.bifurcation_prob)) {
      float half = 0.5f * params_.branch_angle_deg;
      for (int child = 0; child < 2; ++child) {
        Vec3 child_dir = Jitter(dir, half);
        fronts.push_back(GrowthFront{pos, child_dir, radius * params_.taper,
                                     static_cast<int32_t>(section.id),
                                     front.order + 1, front.type});
      }
    }
  }
}

Morphology MorphologyGenerator::Generate(const Vec3& soma_center) {
  Morphology morph(soma_center, params_.soma_radius);

  for (uint32_t stem = 0; stem < params_.dendrite_stems; ++stem) {
    Vec3 dir = RandomUnit();
    // First stem of a pyramidal-style cell grows upward (apical trunk).
    SectionType type = SectionType::kBasalDendrite;
    if (stem == 0) {
      dir = (dir * 0.4f + Vec3(0, 1, 0)).Normalized();
      type = SectionType::kApicalDendrite;
    }
    GrowTree(&morph, soma_center, dir, type, 1.0f, 1.0f);
  }
  if (params_.with_axon) {
    Vec3 dir = (RandomUnit() * 0.4f + Vec3(0, -1, 0)).Normalized();
    GrowTree(&morph, soma_center, dir, SectionType::kAxon,
             params_.axon_length_factor, params_.axon_radius_factor);
  }
  return morph;
}

}  // namespace neuro
}  // namespace neurodb
