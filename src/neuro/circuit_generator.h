// NeuroDB — CircuitGenerator: synthetic cortical microcircuits.
//
// Places synthetic neurons in a layered column (cortical layers have very
// different cell densities, which is what makes the demo's "dense vs sparse
// region" comparison meaningful — paper Section 2.2). Layer weights control
// the per-layer share of neurons; the column dimensions control absolute
// density.

#ifndef NEURODB_NEURO_CIRCUIT_GENERATOR_H_
#define NEURODB_NEURO_CIRCUIT_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "geom/aabb.h"
#include "neuro/circuit.h"
#include "neuro/morphology_generator.h"

namespace neurodb {
namespace neuro {

/// Parameters of a synthetic microcircuit.
struct CircuitParams {
  uint32_t num_neurons = 200;
  /// Column dimensions in micrometres: x and z horizontal, y = depth axis.
  geom::Vec3 column_size = geom::Vec3(300.0f, 500.0f, 300.0f);
  /// Relative neuron share per layer, top (index 0) to bottom. Mirrors the
  /// strongly non-uniform density of the neocortex. Must be non-empty with
  /// a positive sum.
  std::vector<float> layer_weights = {0.08f, 0.32f, 0.22f, 0.28f, 0.10f};
  /// Fraction of pyramidal-type cells (rest are interneurons).
  float pyramidal_fraction = 0.8f;
  MorphologyParams pyramidal = MorphologyParams::Pyramidal();
  MorphologyParams interneuron = MorphologyParams::Interneuron();
  uint64_t seed = 42;

  Status Validate() const;
};

/// Deterministic circuit generation from CircuitParams.
class CircuitGenerator {
 public:
  explicit CircuitGenerator(CircuitParams params);

  /// Generate the circuit (same params => same circuit).
  Result<Circuit> Generate() const;

  /// The y-interval [lo, hi) of a layer within the column.
  std::pair<float, float> LayerBand(size_t layer) const;

  const CircuitParams& params() const { return params_; }

 private:
  CircuitParams params_;
};

}  // namespace neuro
}  // namespace neurodb

#endif  // NEURODB_NEURO_CIRCUIT_GENERATOR_H_
