// NeuroDB — SWC text I/O for morphologies.
//
// SWC is the interchange format of anatomical reconstructions (one point
// per line: id type x y z radius parent). Export flattens sections into
// point rows; import reconstructs the section tree, so round-tripping a
// generated morphology preserves its segments.

#ifndef NEURODB_NEURO_SWC_IO_H_
#define NEURODB_NEURO_SWC_IO_H_

#include <istream>
#include <ostream>
#include <string>

#include "common/result.h"
#include "neuro/morphology.h"

namespace neurodb {
namespace neuro {

/// Serialize `morph` as SWC text.
void WriteSwc(const Morphology& morph, std::ostream* os);

/// Convenience: SWC text into a string.
std::string ToSwcString(const Morphology& morph);

/// Parse SWC text into a morphology. Lines starting with '#' are comments.
/// Soma is expected as a single type-1 point (the exporter's convention);
/// multi-point somata are collapsed to their first point.
Result<Morphology> ReadSwc(std::istream* is);

/// Convenience: parse from a string.
Result<Morphology> FromSwcString(const std::string& text);

}  // namespace neuro
}  // namespace neurodb

#endif  // NEURODB_NEURO_SWC_IO_H_
