// NeuroDB — Circuit: a population of placed neuron morphologies.
//
// The demo's model is "several thousand neurons" placed in a cortical
// volume (paper Section 1). A Circuit owns the morphologies and can flatten
// them into segment datasets — the element collections that FLAT indexes and
// TOUCH joins (axons vs dendrites for synapse discovery).

#ifndef NEURODB_NEURO_CIRCUIT_H_
#define NEURODB_NEURO_CIRCUIT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geom/aabb.h"
#include "geom/element.h"
#include "geom/segment.h"
#include "neuro/element_id.h"
#include "neuro/morphology.h"

namespace neurodb {
namespace neuro {

/// A flattened set of branch segments with their encoded element ids.
/// Kept as parallel arrays (column layout) for join/index performance.
struct SegmentDataset {
  std::vector<geom::Segment> segments;
  std::vector<geom::ElementId> ids;

  size_t size() const { return segments.size(); }
  bool empty() const { return segments.empty(); }

  void Add(const geom::Segment& s, geom::ElementId id) {
    segments.push_back(s);
    ids.push_back(id);
  }

  /// (id, bounds) view for index construction.
  geom::ElementVec Elements() const {
    geom::ElementVec out;
    out.reserve(segments.size());
    for (size_t i = 0; i < segments.size(); ++i) {
      out.emplace_back(ids[i], segments[i].Bounds());
    }
    return out;
  }

  geom::Aabb Bounds() const {
    geom::Aabb box;
    for (const auto& s : segments) box.Extend(s.Bounds());
    return box;
  }
};

/// Maps element ids back to their capsule geometry (needed by SCOUT's
/// skeleton extraction and by exact join refinement).
class SegmentResolver {
 public:
  SegmentResolver() = default;

  /// Index a dataset; ids must be unique across all added datasets.
  void AddDataset(const SegmentDataset& dataset) {
    map_.reserve(map_.size() + dataset.size());
    for (size_t i = 0; i < dataset.size(); ++i) {
      map_.emplace(dataset.ids[i], dataset.segments[i]);
    }
  }

  /// Look up the segment for `id`.
  Result<geom::Segment> Find(geom::ElementId id) const {
    auto it = map_.find(id);
    if (it == map_.end()) {
      return Status::NotFound("SegmentResolver: unknown element id");
    }
    return it->second;
  }

  size_t size() const { return map_.size(); }

 private:
  std::unordered_map<geom::ElementId, geom::Segment> map_;
};

/// A placed neuron.
struct Neuron {
  uint32_t gid = 0;
  Morphology morphology;
};

/// Which neurite classes to include when flattening a circuit.
enum class NeuriteFilter {
  kAll,
  kAxons,
  kDendrites,
};

/// A population of neurons.
class Circuit {
 public:
  Circuit() = default;

  /// Add a neuron; the assigned gid (its index) is returned.
  uint32_t AddNeuron(Morphology morphology);

  const std::vector<Neuron>& neurons() const { return neurons_; }
  const Neuron& neuron(uint32_t gid) const { return neurons_[gid]; }
  size_t NumNeurons() const { return neurons_.size(); }

  size_t TotalSegments() const;
  double TotalCableLength() const;
  geom::Aabb Bounds() const;

  /// Flatten branch segments into a dataset, optionally restricted by
  /// neurite type. Ids encode (gid, section, segment).
  SegmentDataset FlattenSegments(NeuriteFilter filter = NeuriteFilter::kAll) const;

  /// Validate every morphology.
  Status Validate() const;

 private:
  std::vector<Neuron> neurons_;
};

}  // namespace neuro
}  // namespace neurodb

#endif  // NEURODB_NEURO_CIRCUIT_H_
