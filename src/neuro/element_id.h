// NeuroDB — element id encoding for circuit segments.
//
// Spatial element ids are opaque 64-bit handles at the index layer; for
// circuit data they encode (neuron gid, section id, segment index) so that
// query and join results can be mapped back to anatomy:
//
//   bits 63..40: neuron gid      (24 bits, up to 16.7M neurons)
//   bits 39..20: section id      (20 bits)
//   bits 19..0 : segment index   (20 bits)

#ifndef NEURODB_NEURO_ELEMENT_ID_H_
#define NEURODB_NEURO_ELEMENT_ID_H_

#include <cstdint>

#include "geom/element.h"

namespace neurodb {
namespace neuro {

inline constexpr int kGidBits = 24;
inline constexpr int kSectionBits = 20;
inline constexpr int kSegmentBits = 20;

/// Pack (gid, section, segment) into an ElementId.
inline geom::ElementId EncodeSegmentId(uint32_t gid, uint32_t section,
                                       uint32_t segment) {
  return (static_cast<uint64_t>(gid) << (kSectionBits + kSegmentBits)) |
         (static_cast<uint64_t>(section) << kSegmentBits) |
         static_cast<uint64_t>(segment);
}

/// Neuron gid of an encoded id.
inline uint32_t GidOf(geom::ElementId id) {
  return static_cast<uint32_t>(id >> (kSectionBits + kSegmentBits));
}

/// Section id of an encoded id.
inline uint32_t SectionOf(geom::ElementId id) {
  return static_cast<uint32_t>(id >> kSegmentBits) &
         ((1u << kSectionBits) - 1);
}

/// Segment index of an encoded id.
inline uint32_t SegmentOf(geom::ElementId id) {
  return static_cast<uint32_t>(id) & ((1u << kSegmentBits) - 1);
}

}  // namespace neuro
}  // namespace neurodb

#endif  // NEURODB_NEURO_ELEMENT_ID_H_
