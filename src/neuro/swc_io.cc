#include "neuro/swc_io.h"

#include <map>
#include <sstream>
#include <vector>

namespace neurodb {
namespace neuro {

void WriteSwc(const Morphology& morph, std::ostream* os) {
  *os << "# NeuroDB SWC export\n";
  *os << "# id type x y z radius parent\n";

  int64_t next_id = 1;
  const int64_t soma_id = next_id++;
  const geom::Vec3& sc = morph.soma_center();
  *os << soma_id << " 1 " << sc.x << ' ' << sc.y << ' ' << sc.z << ' '
      << morph.soma_radius() << " -1\n";

  // Last sample id written for each section (anchor for children).
  std::vector<int64_t> section_end(morph.NumSections(), -1);

  for (const auto& section : morph.sections()) {
    int64_t prev =
        section.parent >= 0 ? section_end[section.parent] : soma_id;
    for (size_t k = 0; k < section.points.size(); ++k) {
      int64_t id = next_id++;
      const geom::Vec3& p = section.points[k];
      *os << id << ' ' << static_cast<int>(section.type) << ' ' << p.x << ' '
          << p.y << ' ' << p.z << ' ' << section.radii[k] << ' ' << prev
          << '\n';
      prev = id;
    }
    section_end[section.id] = prev;
  }
}

std::string ToSwcString(const Morphology& morph) {
  std::ostringstream os;
  WriteSwc(morph, &os);
  return os.str();
}

namespace {

struct Sample {
  int type = 0;
  geom::Vec3 pos;
  float radius = 0.0f;
  int64_t parent = -1;
};

}  // namespace

Result<Morphology> ReadSwc(std::istream* is) {
  std::map<int64_t, Sample> samples;  // ordered: parents precede children
  int64_t soma_id = -1;
  geom::Vec3 soma_center;
  float soma_radius = 0.0f;

  std::string line;
  while (std::getline(*is, line)) {
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    int64_t id;
    Sample s;
    if (!(ls >> id >> s.type >> s.pos.x >> s.pos.y >> s.pos.z >> s.radius >>
          s.parent)) {
      return Status::Corruption("ReadSwc: malformed line: " + line);
    }
    if (samples.count(id) > 0 || (soma_id >= 0 && id == soma_id)) {
      return Status::Corruption("ReadSwc: duplicate sample id");
    }
    if (s.type == 1) {
      if (soma_id < 0) {
        soma_id = id;
        soma_center = s.pos;
        soma_radius = s.radius;
      }
      continue;  // collapse multi-point somata
    }
    samples.emplace(id, s);
  }
  if (soma_id < 0) {
    return Status::Corruption("ReadSwc: no soma (type 1) sample");
  }

  Morphology morph(soma_center, soma_radius);

  // children adjacency among neurite samples.
  std::map<int64_t, std::vector<int64_t>> children;
  for (const auto& [id, s] : samples) {
    if (s.parent != soma_id) {
      auto parent_it = samples.find(s.parent);
      if (parent_it == samples.end()) {
        return Status::Corruption("ReadSwc: sample references missing parent");
      }
      if (s.parent >= id) {
        return Status::Corruption("ReadSwc: parent sample does not precede child");
      }
    }
    children[s.parent].push_back(id);
  }

  // Map from a chain-ending sample id to the section that ends there.
  std::map<int64_t, uint32_t> section_of_end;

  for (const auto& [id, s] : samples) {
    bool starts_chain =
        s.parent == soma_id || children[s.parent].size() >= 2;
    if (!starts_chain) continue;

    Section section;
    section.id = static_cast<uint32_t>(morph.NumSections());
    section.type = static_cast<SectionType>(s.type);
    if (s.parent == soma_id) {
      section.parent = -1;
    } else {
      auto it = section_of_end.find(s.parent);
      if (it == section_of_end.end()) {
        return Status::Corruption("ReadSwc: branch parent section not found");
      }
      section.parent = static_cast<int32_t>(it->second);
    }

    // Walk the unbranched chain.
    int64_t cur = id;
    for (;;) {
      const Sample& cs = samples.at(cur);
      section.points.push_back(cs.pos);
      section.radii.push_back(cs.radius);
      auto it = children.find(cur);
      if (it == children.end() || it->second.size() != 1) break;
      cur = it->second[0];
    }
    if (section.points.size() < 2) {
      return Status::Corruption("ReadSwc: section with a single sample");
    }
    section_of_end[cur] = section.id;
    NEURODB_RETURN_NOT_OK(morph.AddSection(std::move(section)));
  }
  return morph;
}

Result<Morphology> FromSwcString(const std::string& text) {
  std::istringstream is(text);
  return ReadSwc(&is);
}

}  // namespace neuro
}  // namespace neurodb
