#include "neuro/workload.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace neurodb {
namespace neuro {

using geom::Aabb;
using geom::Vec3;

namespace {

Vec3 UniformPoint(Pcg32* rng, const Aabb& domain) {
  return Vec3(static_cast<float>(rng->Uniform(domain.min.x, domain.max.x)),
              static_cast<float>(rng->Uniform(domain.min.y, domain.max.y)),
              static_cast<float>(rng->Uniform(domain.min.z, domain.max.z)));
}

Vec3 UnitVector(Pcg32* rng) {
  for (;;) {
    double u = rng->Uniform(-1.0, 1.0);
    double v = rng->Uniform(-1.0, 1.0);
    double s = u * u + v * v;
    if (s >= 1.0 || s == 0.0) continue;
    double root = std::sqrt(1.0 - s);
    return Vec3(static_cast<float>(2.0 * u * root),
                static_cast<float>(2.0 * v * root),
                static_cast<float>(1.0 - 2.0 * s));
  }
}

}  // namespace

std::vector<Aabb> UniformQueries(const Aabb& domain, float side, size_t n,
                                 uint64_t seed) {
  Pcg32 rng(seed, 1);
  std::vector<Aabb> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Aabb::Cube(UniformPoint(&rng, domain), side));
  }
  return out;
}

std::vector<Aabb> DataCenteredQueries(const geom::ElementVec& elements,
                                      float side, size_t n, uint64_t seed) {
  Pcg32 rng(seed, 2);
  std::vector<Aabb> out;
  if (elements.empty()) return out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& e = elements[rng.NextBounded(
        static_cast<uint32_t>(elements.size()))];
    out.push_back(Aabb::Cube(e.bounds.Center(), side));
  }
  return out;
}

std::vector<Aabb> LayerQueries(const Aabb& domain, float y_lo, float y_hi,
                               float side, size_t n, uint64_t seed) {
  Pcg32 rng(seed, 3);
  std::vector<Aabb> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Vec3 c(static_cast<float>(rng.Uniform(domain.min.x, domain.max.x)),
           static_cast<float>(rng.Uniform(y_lo, y_hi)),
           static_cast<float>(rng.Uniform(domain.min.z, domain.max.z)));
    out.push_back(Aabb::Cube(c, side));
  }
  return out;
}

double NavigationPath::Length() const {
  double len = 0.0;
  for (size_t i = 0; i + 1 < waypoints.size(); ++i) {
    len += geom::Distance(waypoints[i], waypoints[i + 1]);
  }
  return len;
}

namespace {

/// Depth-first search for the longest root-to-tip polyline of a morphology.
void LongestPathFrom(const Morphology& morph, uint32_t section_id,
                     std::vector<Vec3> prefix, double prefix_len,
                     std::vector<Vec3>* best, double* best_len) {
  const Section& s = morph.section(section_id);
  // Append this section's points (skip the first if it repeats the prefix
  // end).
  for (size_t i = 0; i < s.points.size(); ++i) {
    if (!prefix.empty() && i == 0 &&
        geom::SquaredDistance(prefix.back(), s.points[0]) < 1e-6) {
      continue;
    }
    prefix.push_back(s.points[i]);
  }
  prefix_len += s.Length();

  std::vector<uint32_t> kids = morph.ChildrenOf(static_cast<int32_t>(section_id));
  if (kids.empty()) {
    if (prefix_len > *best_len) {
      *best_len = prefix_len;
      *best = prefix;
    }
    return;
  }
  for (uint32_t kid : kids) {
    LongestPathFrom(morph, kid, prefix, prefix_len, best, best_len);
  }
}

/// Resample a polyline at (approximately) uniform arc-length steps.
std::vector<Vec3> Resample(const std::vector<Vec3>& polyline, float step) {
  std::vector<Vec3> out;
  if (polyline.empty()) return out;
  out.push_back(polyline.front());
  double carried = 0.0;
  for (size_t i = 0; i + 1 < polyline.size(); ++i) {
    Vec3 a = polyline[i];
    Vec3 b = polyline[i + 1];
    double seg_len = geom::Distance(a, b);
    double t = step - carried;
    while (t <= seg_len) {
      out.push_back(geom::Lerp(a, b, static_cast<float>(t / seg_len)));
      t += step;
    }
    carried = (carried + seg_len);
    carried = std::fmod(carried, step);
  }
  if (out.size() < 2) out.push_back(polyline.back());
  return out;
}

}  // namespace

Result<NavigationPath> FollowBranchPath(const Circuit& circuit, uint32_t gid,
                                        float step, uint64_t seed) {
  (void)seed;  // deterministic: the longest path is unique for our data
  if (gid >= circuit.NumNeurons()) {
    return Status::InvalidArgument("FollowBranchPath: no such neuron");
  }
  if (!(step > 0.0f)) {
    return Status::InvalidArgument("FollowBranchPath: step must be positive");
  }
  const Morphology& morph = circuit.neuron(gid).morphology;
  if (morph.NumSections() == 0) {
    return Status::NotFound("FollowBranchPath: neuron has no sections");
  }

  std::vector<Vec3> best;
  double best_len = -1.0;
  for (const auto& s : morph.sections()) {
    if (s.parent != -1) continue;
    LongestPathFrom(morph, s.id, {}, 0.0, &best, &best_len);
  }
  if (best.size() < 2) {
    return Status::NotFound("FollowBranchPath: degenerate branch path");
  }

  NavigationPath path;
  path.waypoints = Resample(best, step);
  return path;
}

NavigationPath RandomWalkPath(const Aabb& domain, size_t steps, float step,
                              uint64_t seed) {
  Pcg32 rng(seed, 4);
  NavigationPath path;
  Vec3 pos = UniformPoint(&rng, domain);
  Vec3 dir = UnitVector(&rng);
  path.waypoints.push_back(pos);
  for (size_t i = 1; i < steps; ++i) {
    // Heavy direction churn: prediction-hostile by construction.
    Vec3 turn = UnitVector(&rng);
    dir = (dir * 0.3f + turn * 0.7f).Normalized();
    pos = pos + dir * step;
    // Reflect off the domain walls.
    for (int axis = 0; axis < 3; ++axis) {
      if (pos[axis] < domain.min[axis] || pos[axis] > domain.max[axis]) {
        dir[axis] = -dir[axis];
        pos[axis] = std::clamp(pos[axis], domain.min[axis], domain.max[axis]);
      }
    }
    path.waypoints.push_back(pos);
  }
  return path;
}

std::vector<Aabb> PathQueries(const NavigationPath& path, float side) {
  std::vector<Aabb> out;
  out.reserve(path.waypoints.size());
  for (const auto& w : path.waypoints) out.push_back(Aabb::Cube(w, side));
  return out;
}

WorkloadQuery MixedWorkloadQuery(const Aabb& domain,
                                 const geom::ElementVec& elements,
                                 const MixedWorkloadOptions& options,
                                 uint64_t sub_seed) {
  Pcg32 rng(sub_seed, 7);
  WorkloadQuery query;
  query.sub_seed = sub_seed;

  double kind_draw = rng.NextDouble();
  if (kind_draw < options.join_fraction) {
    query.kind = QueryKind::kJoin;
    query.epsilon = static_cast<float>(
        rng.Uniform(options.epsilon_min, options.epsilon_max));
    return query;
  }
  if (kind_draw < options.join_fraction + options.walkthrough_fraction) {
    // A short random-walk exploration path. Regenerable from the sub_seed
    // alone, like every other query kind: the walk seed derives from it.
    query.kind = QueryKind::kWalkthrough;
    NavigationPath walk = RandomWalkPath(domain, options.walk_steps,
                                         options.walk_step,
                                         rng.NextU64());
    query.path = PathQueries(walk, options.walk_side);
    return query;
  }
  if (kind_draw < options.join_fraction + options.walkthrough_fraction +
                      options.update_fraction) {
    // A mutation. Inserts and moves get an element-scale bounding cube
    // (data-centered or uniform, like point queries); erase/move targets
    // are picked by rank against the live set at replay time.
    query.kind = QueryKind::kUpdate;
    double op_draw = rng.NextDouble();
    if (op_draw < options.update_insert_weight) {
      query.update_op = WorkloadUpdateOp::kInsert;
    } else if (op_draw <
               options.update_insert_weight + options.update_erase_weight) {
      query.update_op = WorkloadUpdateOp::kErase;
    } else {
      query.update_op = WorkloadUpdateOp::kMove;
    }
    query.update_rank = rng.NextU64();
    Vec3 center = UniformPoint(&rng, domain);
    if (!elements.empty() && rng.NextBool(options.data_centered_fraction)) {
      const auto& e =
          elements[rng.NextBounded(static_cast<uint32_t>(elements.size()))];
      center = e.bounds.Center();
    }
    float side = static_cast<float>(
        rng.Uniform(options.update_side_min, options.update_side_max));
    query.box = Aabb::Cube(center, side);
    return query;
  }
  query.kind = kind_draw < options.join_fraction +
                               options.walkthrough_fraction +
                               options.update_fraction +
                               options.knn_fraction
                   ? QueryKind::kKnn
                   : QueryKind::kRange;

  Vec3 center = UniformPoint(&rng, domain);
  if (!elements.empty() && rng.NextBool(options.data_centered_fraction)) {
    const auto& e =
        elements[rng.NextBounded(static_cast<uint32_t>(elements.size()))];
    center = e.bounds.Center();
  }

  if (query.kind == QueryKind::kKnn) {
    query.point = center;
    uint32_t span = options.k_max >= options.k_min
                        ? static_cast<uint32_t>(options.k_max -
                                                options.k_min + 1)
                        : 1;
    query.k = options.k_min + rng.NextBounded(span);
  } else {
    float side =
        static_cast<float>(rng.Uniform(options.side_min, options.side_max));
    query.box = Aabb::Cube(center, side);
  }
  return query;
}

std::vector<WorkloadQuery> MixedWorkload(const Aabb& domain,
                                         const geom::ElementVec& elements,
                                         const MixedWorkloadOptions& options,
                                         size_t n, uint64_t seed) {
  std::vector<WorkloadQuery> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(MixedWorkloadQuery(domain, elements, options, seed + i));
  }
  return out;
}

SegmentDataset UniformSegments(size_t n, const Aabb& domain, float length_mean,
                               float length_std, float radius, uint64_t seed) {
  Pcg32 rng(seed, 5);
  SegmentDataset out;
  for (size_t i = 0; i < n; ++i) {
    Vec3 mid = UniformPoint(&rng, domain);
    Vec3 dir = UnitVector(&rng);
    float half = 0.5f * std::max(0.25f, static_cast<float>(rng.Gaussian(
                                            length_mean, length_std)));
    out.Add(geom::Segment(mid - dir * half, mid + dir * half, radius),
            static_cast<geom::ElementId>(i));
  }
  return out;
}

SegmentDataset ClusteredSegments(size_t n, const Aabb& domain, size_t clusters,
                                 float sigma, float length_mean, float radius,
                                 uint64_t seed) {
  Pcg32 rng(seed, 6);
  std::vector<Vec3> centers;
  centers.reserve(clusters);
  for (size_t c = 0; c < clusters; ++c) {
    centers.push_back(UniformPoint(&rng, domain));
  }
  SegmentDataset out;
  for (size_t i = 0; i < n; ++i) {
    const Vec3& c = centers[rng.NextBounded(static_cast<uint32_t>(clusters))];
    Vec3 mid(c.x + static_cast<float>(rng.Gaussian(0, sigma)),
             c.y + static_cast<float>(rng.Gaussian(0, sigma)),
             c.z + static_cast<float>(rng.Gaussian(0, sigma)));
    Vec3 dir = UnitVector(&rng);
    float half = 0.5f * length_mean;
    out.Add(geom::Segment(mid - dir * half, mid + dir * half, radius),
            static_cast<geom::ElementId>(i));
  }
  return out;
}

namespace {

// Clamp a point into `domain` so skewed clouds stay inside the circuit
// bounding box (Gaussian tails would otherwise leak out and distort the
// advisor's domain-volume denominator).
Vec3 ClampInto(const Vec3& p, const Aabb& domain) {
  auto clamp1 = [](float v, float lo, float hi) {
    return v < lo ? lo : (v > hi ? hi : v);
  };
  return Vec3(clamp1(p.x, domain.min.x, domain.max.x),
              clamp1(p.y, domain.min.y, domain.max.y),
              clamp1(p.z, domain.min.z, domain.max.z));
}

// Cube element around `center` with side jittered in [0.5, 1.0] * elem_side.
geom::SpatialElement CloudElement(Pcg32* rng, const Vec3& center,
                                  const Aabb& domain, float elem_side,
                                  size_t id) {
  float side =
      elem_side * (0.5f + 0.5f * static_cast<float>(rng->NextDouble()));
  return geom::SpatialElement(static_cast<geom::ElementId>(id),
                              Aabb::Cube(ClampInto(center, domain), side));
}

}  // namespace

geom::ElementVec ClusteredElements(size_t n, const Aabb& domain,
                                   size_t clusters, float sigma,
                                   float elem_side, uint64_t seed) {
  Pcg32 rng(seed, 8);
  std::vector<Vec3> centers;
  centers.reserve(clusters);
  for (size_t c = 0; c < clusters; ++c) {
    centers.push_back(UniformPoint(&rng, domain));
  }
  geom::ElementVec out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Vec3& c = centers[rng.NextBounded(static_cast<uint32_t>(clusters))];
    Vec3 p(c.x + static_cast<float>(rng.Gaussian(0, sigma)),
           c.y + static_cast<float>(rng.Gaussian(0, sigma)),
           c.z + static_cast<float>(rng.Gaussian(0, sigma)));
    out.push_back(CloudElement(&rng, p, domain, elem_side, i));
  }
  return out;
}

geom::ElementVec PowerLawElements(size_t n, const Aabb& domain,
                                  size_t clusters, double alpha,
                                  float sigma_max, float elem_side,
                                  uint64_t seed) {
  Pcg32 rng(seed, 9);
  std::vector<Vec3> centers;
  std::vector<float> sigmas;
  std::vector<double> cdf;
  centers.reserve(clusters);
  sigmas.reserve(clusters);
  cdf.reserve(clusters);
  double total = 0.0;
  for (size_t r = 0; r < clusters; ++r) {
    centers.push_back(UniformPoint(&rng, domain));
    // Low ranks are both more populous (1/(r+1)^alpha of the draws) and
    // tighter (sigma shrinks with rank): dense cores, long sparse tail.
    sigmas.push_back(sigma_max *
                     static_cast<float>(std::pow(r + 1.0, -alpha / 3.0)));
    total += std::pow(r + 1.0, -alpha);
    cdf.push_back(total);
  }
  geom::ElementVec out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double u = rng.NextDouble() * total;
    size_t r = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (r >= clusters) r = clusters - 1;
    const Vec3& c = centers[r];
    const float s = sigmas[r];
    Vec3 p(c.x + static_cast<float>(rng.Gaussian(0, s)),
           c.y + static_cast<float>(rng.Gaussian(0, s)),
           c.z + static_cast<float>(rng.Gaussian(0, s)));
    out.push_back(CloudElement(&rng, p, domain, elem_side, i));
  }
  return out;
}

}  // namespace neuro
}  // namespace neurodb
