#include "neuro/morphology.h"

#include <cmath>

namespace neurodb {
namespace neuro {

Status Morphology::AddSection(Section section) {
  if (section.id != sections_.size()) {
    return Status::InvalidArgument("AddSection: id must be consecutive");
  }
  if (section.parent >= 0 &&
      static_cast<size_t>(section.parent) >= sections_.size()) {
    return Status::InvalidArgument("AddSection: parent does not exist");
  }
  if (section.points.size() < 2) {
    return Status::InvalidArgument("AddSection: need at least 2 points");
  }
  if (section.points.size() != section.radii.size()) {
    return Status::InvalidArgument("AddSection: points/radii size mismatch");
  }
  sections_.push_back(std::move(section));
  return Status::OK();
}

size_t Morphology::NumSegments() const {
  size_t n = 0;
  for (const auto& s : sections_) n += s.NumSegments();
  return n;
}

double Morphology::TotalLength() const {
  double len = 0.0;
  for (const auto& s : sections_) len += s.Length();
  return len;
}

geom::Aabb Morphology::Bounds() const {
  geom::Aabb box;
  box.Extend(geom::Aabb::Cube(soma_center_, 2.0f * soma_radius_));
  for (const auto& s : sections_) {
    for (size_t i = 0; i < s.points.size(); ++i) {
      geom::Aabb p = geom::Aabb::FromPoint(s.points[i]);
      box.Extend(p.Expanded(s.radii[i]));
    }
  }
  return box;
}

std::vector<uint32_t> Morphology::ChildrenOf(int32_t id) const {
  std::vector<uint32_t> out;
  for (const auto& s : sections_) {
    if (s.parent == id) out.push_back(s.id);
  }
  return out;
}

std::vector<uint32_t> Morphology::Terminals() const {
  std::vector<bool> has_child(sections_.size(), false);
  for (const auto& s : sections_) {
    if (s.parent >= 0) has_child[s.parent] = true;
  }
  std::vector<uint32_t> out;
  for (const auto& s : sections_) {
    if (!has_child[s.id]) out.push_back(s.id);
  }
  return out;
}

Status Morphology::Validate(float tol) const {
  for (size_t i = 0; i < sections_.size(); ++i) {
    const Section& s = sections_[i];
    if (s.id != i) return Status::Corruption("section id mismatch");
    if (s.parent >= 0 && static_cast<size_t>(s.parent) >= i) {
      return Status::Corruption("section parent does not precede child");
    }
    if (s.points.size() < 2 || s.points.size() != s.radii.size()) {
      return Status::Corruption("malformed section geometry");
    }
    for (float r : s.radii) {
      if (!(r > 0.0f) || !std::isfinite(r)) {
        return Status::Corruption("non-positive section radius");
      }
    }
    if (s.parent >= 0) {
      const Section& p = sections_[s.parent];
      double gap = geom::Distance(s.points.front(), p.points.back());
      if (gap > tol) {
        return Status::Corruption("child section detached from parent end");
      }
    }
  }
  return Status::OK();
}

void Morphology::Translate(const geom::Vec3& delta) {
  soma_center_ += delta;
  for (auto& s : sections_) {
    for (auto& p : s.points) p += delta;
  }
}

}  // namespace neuro
}  // namespace neurodb
