// NeuroDB — MorphologyGenerator: synthetic neuron morphologies.
//
// The paper's datasets are proprietary Blue Brain Project reconstructions;
// this generator is the documented substitution (DESIGN.md Section 5). It
// grows branching trees whose *statistics* — segment length, tortuosity
// ("irregular and jagged" branches, paper Section 3), bifurcation depth,
// radius taper, spatial extent — are the properties the indexes under study
// are sensitive to. Two presets approximate pyramidal cells and
// interneurons.

#ifndef NEURODB_NEURO_MORPHOLOGY_GENERATOR_H_
#define NEURODB_NEURO_MORPHOLOGY_GENERATOR_H_

#include <cstdint>

#include "common/rng.h"
#include "neuro/morphology.h"

namespace neurodb {
namespace neuro {

/// Growth parameters for one synthetic cell class.
struct MorphologyParams {
  /// Number of dendritic stems sprouting from the soma.
  uint32_t dendrite_stems = 5;
  /// Grow an axon (one stem, longer and thinner than dendrites).
  bool with_axon = true;
  /// Mean / stddev of one segment's length in micrometres.
  float segment_length_mean = 8.0f;
  float segment_length_std = 2.0f;
  /// Per-segment direction jitter in degrees (tortuosity / jaggedness).
  float tortuosity_deg = 14.0f;
  /// Probability that a section ends in a bifurcation (vs a terminal tip).
  float bifurcation_prob = 0.65f;
  /// Branching angle between the two children at a bifurcation, degrees.
  float branch_angle_deg = 40.0f;
  /// Maximum branch order (stem = order 0).
  uint32_t max_branch_order = 4;
  /// Segments per section: uniform in [min, max].
  uint32_t min_segments_per_section = 6;
  uint32_t max_segments_per_section = 24;
  /// Initial stem radius; each child section's radius shrinks by `taper`.
  float initial_radius = 1.4f;
  float taper = 0.8f;
  float min_radius = 0.15f;
  /// Soma sphere radius.
  float soma_radius = 8.0f;
  /// Hard cap on distance from the soma (growth stops beyond it).
  float extent_limit = 280.0f;
  /// Axon multipliers relative to dendrites.
  float axon_length_factor = 2.2f;
  float axon_radius_factor = 0.5f;

  /// Preset approximating a cortical pyramidal cell (apical trunk + basal
  /// dendrites + long axon).
  static MorphologyParams Pyramidal();
  /// Preset approximating a small interneuron (bushy, short-range).
  static MorphologyParams Interneuron();
};

/// Deterministic generator: the same (params, seed, soma center) always
/// yields the same morphology.
class MorphologyGenerator {
 public:
  MorphologyGenerator(MorphologyParams params, uint64_t seed);

  /// Generate one morphology rooted at `soma_center`.
  Morphology Generate(const geom::Vec3& soma_center);

 private:
  struct GrowthFront {
    geom::Vec3 position;
    geom::Vec3 direction;
    float radius;
    int32_t parent_section;
    uint32_t order;
    SectionType type;
  };

  void GrowTree(Morphology* morph, const geom::Vec3& soma_center,
                const geom::Vec3& stem_direction, SectionType type,
                float length_factor, float radius_factor);

  geom::Vec3 Jitter(const geom::Vec3& direction, float angle_deg);
  geom::Vec3 RandomUnit();

  MorphologyParams params_;
  Pcg32 rng_;
};

}  // namespace neuro
}  // namespace neurodb

#endif  // NEURODB_NEURO_MORPHOLOGY_GENERATOR_H_
