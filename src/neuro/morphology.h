// NeuroDB — Morphology: a neuron's branching structure.
//
// A morphology is a tree of *sections*; each section is an unbranched
// polyline of 3-D points with per-point radii (the SWC model used by
// anatomical reconstructions). Branch *segments* — the capsules between
// consecutive points — are the spatial elements the paper's indexes and
// joins operate on.

#ifndef NEURODB_NEURO_MORPHOLOGY_H_
#define NEURODB_NEURO_MORPHOLOGY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geom/aabb.h"
#include "geom/segment.h"
#include "geom/vec3.h"

namespace neurodb {
namespace neuro {

/// Neurite type of a section (mirrors SWC type codes).
enum class SectionType : uint8_t {
  kSoma = 1,
  kAxon = 2,
  kBasalDendrite = 3,
  kApicalDendrite = 4,
};

/// Returns true for the two dendrite types.
inline bool IsDendrite(SectionType t) {
  return t == SectionType::kBasalDendrite || t == SectionType::kApicalDendrite;
}

/// One unbranched stretch of neurite between branch points.
struct Section {
  uint32_t id = 0;
  /// Parent section id, or -1 for sections rooted at the soma.
  int32_t parent = -1;
  SectionType type = SectionType::kBasalDendrite;
  /// Polyline points; size() >= 2 for a valid section.
  std::vector<geom::Vec3> points;
  /// Per-point radii, parallel to points.
  std::vector<float> radii;

  size_t NumSegments() const {
    return points.size() >= 2 ? points.size() - 1 : 0;
  }

  /// Segment `i` (capsule between points i and i+1; radius = mean of ends).
  geom::Segment SegmentAt(size_t i) const {
    return geom::Segment(points[i], points[i + 1],
                         0.5f * (radii[i] + radii[i + 1]));
  }

  double Length() const {
    double len = 0.0;
    for (size_t i = 0; i + 1 < points.size(); ++i) {
      len += geom::Distance(points[i], points[i + 1]);
    }
    return len;
  }
};

/// A full neuron morphology: soma plus a section tree.
class Morphology {
 public:
  Morphology() = default;
  Morphology(geom::Vec3 soma_center, float soma_radius)
      : soma_center_(soma_center), soma_radius_(soma_radius) {}

  /// Append a section; its `id` must equal the current section count and its
  /// parent (if any) must already exist.
  Status AddSection(Section section);

  const std::vector<Section>& sections() const { return sections_; }
  const Section& section(uint32_t id) const { return sections_[id]; }
  size_t NumSections() const { return sections_.size(); }

  const geom::Vec3& soma_center() const { return soma_center_; }
  float soma_radius() const { return soma_radius_; }

  /// Total number of branch segments across all sections.
  size_t NumSegments() const;

  /// Total cable length in micrometres.
  double TotalLength() const;

  /// Bounding box of all points (soma sphere included).
  geom::Aabb Bounds() const;

  /// Child sections of `id` (computed; morphologies are small).
  std::vector<uint32_t> ChildrenOf(int32_t id) const;

  /// Ids of terminal (leaf) sections.
  std::vector<uint32_t> Terminals() const;

  /// Structural validation: ids consecutive, parents precede children,
  /// every section has >= 2 points with positive radii, child sections
  /// start where the parent ends (within `tol`).
  Status Validate(float tol = 1.0f) const;

  /// Translate the whole morphology by `delta`.
  void Translate(const geom::Vec3& delta);

 private:
  geom::Vec3 soma_center_;
  float soma_radius_ = 0.0f;
  std::vector<Section> sections_;
};

}  // namespace neuro
}  // namespace neurodb

#endif  // NEURODB_NEURO_MORPHOLOGY_H_
