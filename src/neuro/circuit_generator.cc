#include "neuro/circuit_generator.h"

#include <numeric>

#include "common/rng.h"

namespace neurodb {
namespace neuro {

Status CircuitParams::Validate() const {
  if (num_neurons == 0) {
    return Status::InvalidArgument("CircuitParams: num_neurons == 0");
  }
  if (layer_weights.empty()) {
    return Status::InvalidArgument("CircuitParams: no layers");
  }
  float sum = std::accumulate(layer_weights.begin(), layer_weights.end(), 0.0f);
  if (!(sum > 0.0f)) {
    return Status::InvalidArgument("CircuitParams: layer weights sum to <= 0");
  }
  for (float w : layer_weights) {
    if (w < 0.0f) {
      return Status::InvalidArgument("CircuitParams: negative layer weight");
    }
  }
  if (pyramidal_fraction < 0.0f || pyramidal_fraction > 1.0f) {
    return Status::InvalidArgument(
        "CircuitParams: pyramidal_fraction outside [0,1]");
  }
  if (!(column_size.x > 0 && column_size.y > 0 && column_size.z > 0)) {
    return Status::InvalidArgument("CircuitParams: non-positive column size");
  }
  return Status::OK();
}

CircuitGenerator::CircuitGenerator(CircuitParams params)
    : params_(std::move(params)) {}

std::pair<float, float> CircuitGenerator::LayerBand(size_t layer) const {
  // Layers split the y-extent evenly; index 0 is the top band.
  const size_t n = params_.layer_weights.size();
  float band = params_.column_size.y / static_cast<float>(n);
  float hi = params_.column_size.y - band * static_cast<float>(layer);
  return {hi - band, hi};
}

Result<Circuit> CircuitGenerator::Generate() const {
  NEURODB_RETURN_NOT_OK(params_.Validate());

  Pcg32 rng(params_.seed, 0xabcdef1234567890ULL);
  float weight_sum = std::accumulate(params_.layer_weights.begin(),
                                     params_.layer_weights.end(), 0.0f);

  Circuit circuit;
  for (uint32_t i = 0; i < params_.num_neurons; ++i) {
    // Pick the layer by weight.
    double pick = rng.NextDouble() * weight_sum;
    size_t layer = 0;
    double acc = 0.0;
    for (size_t l = 0; l < params_.layer_weights.size(); ++l) {
      acc += params_.layer_weights[l];
      if (pick <= acc) {
        layer = l;
        break;
      }
    }
    auto [y_lo, y_hi] = LayerBand(layer);

    geom::Vec3 soma(
        static_cast<float>(rng.Uniform(0.0, params_.column_size.x)),
        static_cast<float>(rng.Uniform(y_lo, y_hi)),
        static_cast<float>(rng.Uniform(0.0, params_.column_size.z)));

    bool pyramidal = rng.NextBool(params_.pyramidal_fraction);
    const MorphologyParams& mp =
        pyramidal ? params_.pyramidal : params_.interneuron;
    MorphologyGenerator gen(mp, rng.NextU64());
    circuit.AddNeuron(gen.Generate(soma));
  }
  return circuit;
}

}  // namespace neuro
}  // namespace neurodb
