// NeuroDB — workload generators.
//
// Produces the query mixes the demo exhibits run: uniform / data-centered /
// layer-targeted range queries (FLAT, Section 2.2), branch-following and
// random-walk navigation paths (SCOUT, Section 3.2), and controlled
// synthetic segment clouds for density sweeps and join property tests.

#ifndef NEURODB_NEURO_WORKLOAD_H_
#define NEURODB_NEURO_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "geom/aabb.h"
#include "geom/element.h"
#include "neuro/circuit.h"

namespace neurodb {
namespace neuro {

// ---------------------------------------------------------------------------
// Range query workloads
// ---------------------------------------------------------------------------

/// `n` cubes of side `side` with centers uniform in `domain`.
std::vector<geom::Aabb> UniformQueries(const geom::Aabb& domain, float side,
                                       size_t n, uint64_t seed);

/// `n` cubes centered on randomly chosen element centers (guaranteed
/// non-empty results; the demo audience clicks *on* the model).
std::vector<geom::Aabb> DataCenteredQueries(const geom::ElementVec& elements,
                                            float side, size_t n,
                                            uint64_t seed);

/// `n` cubes whose centers have y in [y_lo, y_hi] — targets one cortical
/// layer, i.e. a dense or a sparse region of the model.
std::vector<geom::Aabb> LayerQueries(const geom::Aabb& domain, float y_lo,
                                     float y_hi, float side, size_t n,
                                     uint64_t seed);

// ---------------------------------------------------------------------------
// Navigation (moving range query) workloads
// ---------------------------------------------------------------------------

/// A polyline of view positions; the session issues one range query per
/// waypoint ("at every step they retrieve the surroundings of the branch",
/// paper Section 3).
struct NavigationPath {
  std::vector<geom::Vec3> waypoints;

  double Length() const;
};

/// Follow neuron `gid`'s longest root-to-tip branch path, resampled every
/// `step` micrometres. Fails if the neuron has no sections.
Result<NavigationPath> FollowBranchPath(const Circuit& circuit, uint32_t gid,
                                        float step, uint64_t seed);

/// A jagged random walk through `domain` ("moving through the model
/// randomly", paper Section 3.2) — the adversarial case for prefetching.
NavigationPath RandomWalkPath(const geom::Aabb& domain, size_t steps,
                              float step, uint64_t seed);

/// One range query (cube of side `side`) per waypoint.
std::vector<geom::Aabb> PathQueries(const NavigationPath& path, float side);

// ---------------------------------------------------------------------------
// Mixed differential-testing workloads (tests/diff_harness.h)
// ---------------------------------------------------------------------------

/// Kind of one differential-workload query.
enum class QueryKind {
  kRange,
  kKnn,
  kJoin,
  kWalkthrough,
  /// A mutation of the loaded dataset (insert / erase / move). The
  /// concrete target of an erase or move is resolved against the *live*
  /// id set at replay time (updates are inherently history-dependent) —
  /// the query carries a rank that picks deterministically among the ids
  /// alive when it executes.
  kUpdate,
};

/// The mutation flavor of a kUpdate workload query (kept free of engine
/// types — neuro:: sits below engine:: in the layering; the harness maps
/// it onto engine::UpdateKind 1:1).
enum class WorkloadUpdateOp {
  kInsert,
  kErase,
  kMove,
};

/// One randomized query of a mixed workload. Every query remembers the
/// `sub_seed` that regenerates exactly it — the minimal reproduction handle
/// the differential harness prints on divergence.
struct WorkloadQuery {
  QueryKind kind = QueryKind::kRange;
  geom::Aabb box;      // kRange; kUpdate: insert/move bounds
  geom::Vec3 point;    // kKnn
  size_t k = 0;        // kKnn
  float epsilon = 0;   // kJoin
  /// kWalkthrough: a short random-walk path of range boxes replayed one
  /// Session::Step at a time.
  std::vector<geom::Aabb> path;
  /// kUpdate: which mutation, and — for erase/move — the rank that selects
  /// the target among the ids live at replay time (rank % live_count).
  WorkloadUpdateOp update_op = WorkloadUpdateOp::kInsert;
  uint64_t update_rank = 0;
  uint64_t sub_seed = 0;
};

/// Mix and shape of a randomized differential workload.
struct MixedWorkloadOptions {
  /// Fraction of queries that are kNN (the rest minus joins are ranges).
  double knn_fraction = 0.35;
  /// Fraction of queries that are epsilon-joins. Joins are far more
  /// expensive than point queries — keep this small.
  double join_fraction = 0.0;
  /// Fraction of queries that are session walkthroughs (a random-walk path
  /// of `walk_steps` range boxes replayed through Session::Step). Each
  /// walkthrough runs walk_steps range queries — keep this small too.
  double walkthrough_fraction = 0.0;
  /// Fraction of queries that are mutations (insert / erase / move),
  /// replayed through QueryEngine::ApplyUpdates by the update-parity
  /// harness. 0 keeps read-only workloads bit-identical to before this
  /// option existed.
  double update_fraction = 0.0;
  /// Insert : erase : move split of the update fraction (the remainder
  /// after insert_weight + erase_weight is moves).
  double update_insert_weight = 0.4;
  double update_erase_weight = 0.3;
  /// Bounding-cube side of inserted/moved elements, uniform in
  /// [update_side_min, update_side_max] — element-scale, not query-scale.
  float update_side_min = 1.0f;
  float update_side_max = 6.0f;
  /// Steps per walkthrough path.
  size_t walk_steps = 6;
  /// Step length of the walk, micrometres.
  float walk_step = 15.0f;
  /// Side of the range cube issued at each waypoint.
  float walk_side = 30.0f;
  /// Fraction of range/kNN queries anchored on a random element (dense,
  /// guaranteed-hit); the rest are uniform in the domain (sparse/empty).
  double data_centered_fraction = 0.5;
  /// Range query cube side, uniform in [side_min, side_max].
  float side_min = 8.0f;
  float side_max = 60.0f;
  /// kNN k, uniform in [k_min, k_max].
  size_t k_min = 1;
  size_t k_max = 32;
  /// Join epsilon, uniform in [epsilon_min, epsilon_max].
  float epsilon_min = 0.5f;
  float epsilon_max = 4.0f;
};

/// Regenerate the single query identified by `sub_seed` — the minimal
/// reproduction of a harness divergence. MixedWorkload(seed)[i] is exactly
/// MixedWorkloadQuery(..., seed + i).
WorkloadQuery MixedWorkloadQuery(const geom::Aabb& domain,
                                 const geom::ElementVec& elements,
                                 const MixedWorkloadOptions& options,
                                 uint64_t sub_seed);

/// `n` independent randomized queries; query i is derived from seed + i.
std::vector<WorkloadQuery> MixedWorkload(const geom::Aabb& domain,
                                         const geom::ElementVec& elements,
                                         const MixedWorkloadOptions& options,
                                         size_t n, uint64_t seed);

// ---------------------------------------------------------------------------
// Synthetic segment clouds (controlled density experiments)
// ---------------------------------------------------------------------------

/// `n` capsules with uniform random midpoints in `domain`, uniform random
/// orientation, Gaussian length and fixed radius.
SegmentDataset UniformSegments(size_t n, const geom::Aabb& domain,
                               float length_mean, float length_std,
                               float radius, uint64_t seed);

/// `n` capsules grouped around `clusters` Gaussian cluster centers with
/// spatial sigma `sigma` (skewed data; the PBSM-adversarial case).
SegmentDataset ClusteredSegments(size_t n, const geom::Aabb& domain,
                                 size_t clusters, float sigma,
                                 float length_mean, float radius,
                                 uint64_t seed);

// ---------------------------------------------------------------------------
// Skewed element clouds (backend-advisor discrimination workloads)
// ---------------------------------------------------------------------------

/// `n` elements (ids 0..n-1) grouped around `clusters` Gaussian cluster
/// centers with spatial sigma `sigma`; element boxes are cubes with side
/// uniform in [0.5, 1.0] * elem_side, centers clamped into `domain`. The
/// clustered circuit where a tight hierarchy (R-tree) wins and a uniform
/// grid overfetches.
geom::ElementVec ClusteredElements(size_t n, const geom::Aabb& domain,
                                   size_t clusters, float sigma,
                                   float elem_side, uint64_t seed);

/// Power-law density: cluster r (of `clusters`) draws population weight
/// 1/(r+1)^alpha and shrinks its sigma with rank — a few huge dense cores
/// plus a long sparse tail, the deep-circuit skew of the paper's dense
/// datasets. Same element-box shape rules as ClusteredElements.
geom::ElementVec PowerLawElements(size_t n, const geom::Aabb& domain,
                                  size_t clusters, double alpha,
                                  float sigma_max, float elem_side,
                                  uint64_t seed);

}  // namespace neuro
}  // namespace neurodb

#endif  // NEURODB_NEURO_WORKLOAD_H_
