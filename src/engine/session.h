// NeuroDB — engine::Session: an incremental exploration session handle.
//
// scout::WalkthroughSession replays a whole pre-recorded navigation path.
// Interactive callers (the demo's 3-D explorer) instead need to issue one
// range query at a time — where the scientist goes next depends on what the
// previous query showed. A Session owns the session state the walkthrough
// loop used to own privately — simulated clock, buffer pool, prefetcher —
// and exposes it one Step(box) at a time. Between steps the prefetcher
// warms the pool out of the modeled think time, exactly as in the replay
// path, so a Step-by-Step run and a whole-path replay produce identical
// statistics.
//
// With SessionOptions::cache_results the session additionally keeps a
// cache::ResultCache of its last evaluated boxes: an overlapping step is
// decomposed by cache::DeltaPlanner into a covered fragment answered from
// the cache plus at most six residual boxes answered by the index, merged
// under the global id order — the result set is identical to a full
// re-query, the demand I/O is proportional to the *uncovered* volume only.
// During think time the prefetcher's predicted next box is evaluated over
// prefetched pages and inserted into the cache (results, not just pages),
// so a correctly predicted step stalls for nothing.
//
// Sessions opened by QueryEngine::OpenSession are additionally *delta-
// aware*: each step pins the FLAT backend's newest published delta
// snapshot (BaseDeltaBackend::LatestDelta) and merges the immutable crawl
// layout with it (tombstones filtered, inserts appended), stamps its
// StepRecord with the snapshot's epoch, and — before querying — replays
// any UpdateLog stamps it has not yet seen to invalidate exactly the
// cached boxes whose region went dirty. A cached session therefore stays
// byte-identical to a cold one across ApplyUpdates.
//
// Sessions also *survive* QueryEngine::Compact: each step re-reads the
// store's layout epoch, and when a compaction rebuilt the pages the
// session simply adopts the new layout — its buffer pool already evicts
// stale pages through the same store-epoch check
// (storage::BufferPool::store_epoch), and cached result boxes stay valid
// because compaction never changes answers. The one unrecoverable case is
// a base compacted down to nothing (every element erased, then Compact):
// the FLAT index ceases to exist and Step reports it.

#ifndef NEURODB_ENGINE_SESSION_H_
#define NEURODB_ENGINE_SESSION_H_

#include <functional>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "cache/result_cache.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "engine/base_delta_backend.h"
#include "engine/delta_index.h"
#include "flat/flat_index.h"
#include "geom/aabb.h"
#include "geom/knn.h"
#include "geom/visitor.h"
#include "neuro/circuit.h"
#include "obs/metrics.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "scout/prefetcher.h"
#include "scout/session.h"
#include "storage/buffer_pool.h"

namespace neurodb {
namespace engine {

/// Observability hooks an engine threads into the sessions it opens (both
/// borrowed; they must outlive the session). `metrics` receives the
/// session.step.* counters and histograms; `slow_log` receives traced
/// steps whose wall time crosses its threshold. Default-constructed hooks
/// (standalone sessions, or an engine with metrics off) record nothing.
struct SessionObs {
  obs::MetricsRegistry* metrics = nullptr;
  obs::SlowQueryLog* slow_log = nullptr;
};

/// One interactive exploration session. Obtained from
/// QueryEngine::OpenSession; movable, not copyable. All clock/pool state is
/// private to the session, so several sessions can run against one engine —
/// but the session only borrows `index`/`store`/`resolver`, so the engine
/// (or whatever owns them) must outlive the session.
class Session {
 public:
  /// Open a session over a FLAT-indexed dataset. `resolver` may be null
  /// unless `method` is kScout. `delta_source` (the FLAT backend whose
  /// published delta snapshots the session reads) and `update_log` (the
  /// engine's applied-batch history) make the session delta-aware; leaving
  /// them null gives the classic read-only session over the base layout
  /// alone. `read_lock` (the engine's compaction lock) is held shared for
  /// the duration of each step so a step never observes a half-rebuilt
  /// page layout.
  static Result<Session> Open(const flat::FlatIndex* index,
                              storage::PageStore* store,
                              const neuro::SegmentResolver* resolver,
                              scout::PrefetchMethod method,
                              scout::SessionOptions options,
                              const BaseDeltaBackend* delta_source = nullptr,
                              const UpdateLog* update_log = nullptr,
                              std::shared_mutex* read_lock = nullptr,
                              SessionObs hooks = SessionObs{});

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  /// Execute one range query: streams results to `visitor`, charges demand
  /// misses to the session clock, lets the prefetcher spend the think pause
  /// and advances the clock past it. Returns the step's statistics row.
  Result<scout::StepRecord> Step(const geom::Aabb& box,
                                 geom::ResultVisitor& visitor);

  /// Step without materializing results.
  Result<scout::StepRecord> Step(const geom::Aabb& box);

  /// Execute one kNN query through the session pool (FLAT expanding-ring
  /// crawl): fills `hits` (when non-null) ascending by (distance, id),
  /// charges demand misses to the session clock and lets the prefetcher
  /// spend the think pause on the neighbourhood of the answer, exactly as
  /// a range Step does. k == 0 and non-finite points are InvalidArgument;
  /// k beyond the dataset clamps.
  ///
  /// Delta kNN seeding (SessionOptions::seed_knn, on by default): the
  /// previous step's result list seeds the crawl's starting ring radius
  /// with its k-th best distance to the new point — a slowly moving query
  /// starts tight instead of re-deriving the radius from global density.
  /// Seeding is a starting point only; hits are bit-identical to the
  /// unseeded path (parity-checked in tests).
  Result<scout::StepRecord> StepKnn(const geom::Vec3& point, size_t k,
                                    std::vector<geom::KnnHit>* hits = nullptr);

  /// Statistics over all steps so far (the paper Figure 6 panel). Cheap;
  /// may be called mid-session.
  scout::SessionResult Summary() const;

  size_t NumSteps() const { return steps_.size(); }
  const scout::SessionOptions& options() const { return options_; }
  const char* method_name() const { return prefetcher_->Name(); }

  /// The session's result cache, or nullptr when caching is off
  /// (SessionOptions::cache_results).
  const cache::ResultCache* result_cache() const { return cache_.get(); }

 private:
  Session() = default;

  /// Shared step skeleton: catch up on update-log invalidations, time the
  /// query, account pool deltas, feed the prefetcher the result ids and
  /// the box the answer came from, spend the think pause, record the step
  /// (stamped with the current epoch). `query` fills the result ids and
  /// the prefetch box.
  Result<scout::StepRecord> RunStep(
      const std::function<Status(std::vector<geom::ElementId>* ids,
                                 geom::Aabb* prefetch_box)>& query);

  /// The cached range-step body: delta-decompose `box` against the cache,
  /// answer residuals through the index (merged with the live update
  /// delta), merge under the id order, stream to `visitor`, remember the
  /// full result as the newest cache entry.
  Status CachedRangeStep(const geom::Aabb& box, geom::ResultVisitor& visitor,
                         std::vector<geom::ElementId>* ids);

  /// One index range query over `box` merged with the live update delta:
  /// base matches with dead ids dropped, live inserts appended.
  Status DeltaMergedRange(const geom::Aabb& box, geom::ElementVec* out);

  /// Drop cached boxes dirtied by update batches this session has not yet
  /// observed (no-op without an update log or a cache).
  void CatchUpInvalidations();

  /// The epoch the session currently answers at: the epoch of the delta
  /// snapshot pinned by the running step, else the update log's newest
  /// epoch, else 0.
  uint64_t CurrentEpoch() const {
    if (delta_source_ != nullptr) return snap_.epoch;
    return update_log_ != nullptr ? update_log_->epoch() : 0;
  }

  /// Think-time result prefetch: evaluate the prefetcher's predicted boxes
  /// over pool-resident pages (loading missing ones within the remaining
  /// `budget`) and insert their results into the cache. Returns pages
  /// loaded (they count against the step's prefetch budget).
  size_t PrepopulateCache(size_t budget);

  const flat::FlatIndex* index_ = nullptr;
  /// The crawl-page store the session pool caches, and the layout epoch the
  /// session last adopted — a Compact rebuilds the layout under the pool,
  /// so each step compares epochs and lazily re-adopts the new layout (the
  /// pool evicts its stale pages through the same check).
  const storage::PageStore* store_ = nullptr;
  storage::Epoch store_epoch_at_open_ = 0;
  /// The backend whose published delta snapshots the session steps against
  /// (null: read-only session over the base alone).
  const BaseDeltaBackend* delta_source_ = nullptr;
  /// The delta snapshot pinned for the step currently executing — refreshed
  /// at the top of every step, keeping the delta alive and immutable for
  /// the step's whole merge even while ApplyUpdates publishes newer ones.
  DeltaSnapshot snap_;
  /// Borrowed view of snap_.delta (null: no delta / empty overlay). Query
  /// helpers read this instead of touching delta_source_ directly.
  const DeltaIndex* delta_ = nullptr;
  /// The engine's compaction lock, held shared across each step (null:
  /// standalone session, no locking).
  std::shared_mutex* read_lock_ = nullptr;
  /// Applied-batch history for cache invalidation catch-up (null: none).
  const UpdateLog* update_log_ = nullptr;
  /// Update stamps already replayed into the session cache.
  size_t log_seen_ = 0;
  scout::SessionOptions options_;
  size_t budget_ = 0;
  // unique_ptrs keep addresses stable across moves (the prefetcher holds a
  // pointer to the pool).
  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<scout::Prefetcher> prefetcher_;
  /// Non-null iff options_.cache_results (unique_ptr for move stability).
  std::unique_ptr<cache::ResultCache> cache_;
  /// The previous step's full result list — the seed candidates for delta
  /// kNN seeding (range steps refresh it; kNN steps reuse it).
  geom::ElementVec last_results_;
  std::vector<scout::StepRecord> steps_;
  uint64_t total_stall_us_ = 0;
  /// Coverage of the step currently executing (set by CachedRangeStep,
  /// read back by RunStep into the StepRecord).
  double last_cover_fraction_ = 0.0;
  double last_delta_fraction_ = 1.0;
  /// Engine-provided observability hooks (empty for standalone sessions)
  /// and the session.step.* instruments pre-resolved from them — null
  /// pointers record nothing (obs::Add/Record tolerate null).
  SessionObs obs_;
  obs::Counter* m_steps_ = nullptr;
  obs::Counter* m_pages_missed_ = nullptr;
  obs::Counter* m_pages_hit_ = nullptr;
  obs::Histogram* m_latency_us_ = nullptr;
  obs::Histogram* m_stall_us_ = nullptr;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_SESSION_H_
