// NeuroDB — engine::Session: an incremental exploration session handle.
//
// scout::WalkthroughSession replays a whole pre-recorded navigation path.
// Interactive callers (the demo's 3-D explorer) instead need to issue one
// range query at a time — where the scientist goes next depends on what the
// previous query showed. A Session owns the session state the walkthrough
// loop used to own privately — simulated clock, buffer pool, prefetcher —
// and exposes it one Step(box) at a time. Between steps the prefetcher
// warms the pool out of the modeled think time, exactly as in the replay
// path, so a Step-by-Step run and a whole-path replay produce identical
// statistics.
//
// With SessionOptions::cache_results the session additionally keeps a
// cache::ResultCache of its last evaluated boxes: an overlapping step is
// decomposed by cache::DeltaPlanner into a covered fragment answered from
// the cache plus at most six residual boxes answered by the index, merged
// under the global id order — the result set is identical to a full
// re-query, the demand I/O is proportional to the *uncovered* volume only.
// During think time the prefetcher's predicted next box is evaluated over
// prefetched pages and inserted into the cache (results, not just pages),
// so a correctly predicted step stalls for nothing.

#ifndef NEURODB_ENGINE_SESSION_H_
#define NEURODB_ENGINE_SESSION_H_

#include <functional>
#include <memory>
#include <vector>

#include "cache/result_cache.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "flat/flat_index.h"
#include "geom/aabb.h"
#include "geom/knn.h"
#include "geom/visitor.h"
#include "neuro/circuit.h"
#include "scout/prefetcher.h"
#include "scout/session.h"
#include "storage/buffer_pool.h"

namespace neurodb {
namespace engine {

/// One interactive exploration session. Obtained from
/// QueryEngine::OpenSession; movable, not copyable. All clock/pool state is
/// private to the session, so several sessions can run against one engine —
/// but the session only borrows `index`/`store`/`resolver`, so the engine
/// (or whatever owns them) must outlive the session.
class Session {
 public:
  /// Open a session over a FLAT-indexed dataset. `resolver` may be null
  /// unless `method` is kScout.
  static Result<Session> Open(const flat::FlatIndex* index,
                              storage::PageStore* store,
                              const neuro::SegmentResolver* resolver,
                              scout::PrefetchMethod method,
                              scout::SessionOptions options);

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  /// Execute one range query: streams results to `visitor`, charges demand
  /// misses to the session clock, lets the prefetcher spend the think pause
  /// and advances the clock past it. Returns the step's statistics row.
  Result<scout::StepRecord> Step(const geom::Aabb& box,
                                 geom::ResultVisitor& visitor);

  /// Step without materializing results.
  Result<scout::StepRecord> Step(const geom::Aabb& box);

  /// Execute one kNN query through the session pool (FLAT expanding-ring
  /// crawl): fills `hits` (when non-null) ascending by (distance, id),
  /// charges demand misses to the session clock and lets the prefetcher
  /// spend the think pause on the neighbourhood of the answer, exactly as
  /// a range Step does. k == 0 and non-finite points are InvalidArgument;
  /// k beyond the dataset clamps.
  Result<scout::StepRecord> StepKnn(const geom::Vec3& point, size_t k,
                                    std::vector<geom::KnnHit>* hits = nullptr);

  /// Statistics over all steps so far (the paper Figure 6 panel). Cheap;
  /// may be called mid-session.
  scout::SessionResult Summary() const;

  size_t NumSteps() const { return steps_.size(); }
  const scout::SessionOptions& options() const { return options_; }
  const char* method_name() const { return prefetcher_->Name(); }

  /// The session's result cache, or nullptr when caching is off
  /// (SessionOptions::cache_results).
  const cache::ResultCache* result_cache() const { return cache_.get(); }

 private:
  Session() = default;

  /// Shared step skeleton: time the query, account pool deltas, feed the
  /// prefetcher the result ids and the box the answer came from, spend the
  /// think pause, record the step. `query` fills the result ids and the
  /// prefetch box.
  Result<scout::StepRecord> RunStep(
      const std::function<Status(std::vector<geom::ElementId>* ids,
                                 geom::Aabb* prefetch_box)>& query);

  /// The cached range-step body: delta-decompose `box` against the cache,
  /// answer residuals through the index, merge under the id order, stream
  /// to `visitor`, remember the full result as the newest cache entry.
  Status CachedRangeStep(const geom::Aabb& box, geom::ResultVisitor& visitor,
                         std::vector<geom::ElementId>* ids);

  /// Think-time result prefetch: evaluate the prefetcher's predicted boxes
  /// over pool-resident pages (loading missing ones within the remaining
  /// `budget`) and insert their results into the cache. Returns pages
  /// loaded (they count against the step's prefetch budget).
  size_t PrepopulateCache(size_t budget);

  const flat::FlatIndex* index_ = nullptr;
  scout::SessionOptions options_;
  size_t budget_ = 0;
  // unique_ptrs keep addresses stable across moves (the prefetcher holds a
  // pointer to the pool).
  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<scout::Prefetcher> prefetcher_;
  /// Non-null iff options_.cache_results (unique_ptr for move stability).
  std::unique_ptr<cache::ResultCache> cache_;
  std::vector<scout::StepRecord> steps_;
  uint64_t total_stall_us_ = 0;
  /// Coverage of the step currently executing (set by CachedRangeStep,
  /// read back by RunStep into the StepRecord).
  double last_cover_fraction_ = 0.0;
  double last_delta_fraction_ = 1.0;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_SESSION_H_
