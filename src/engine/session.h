// NeuroDB — engine::Session: an incremental exploration session handle.
//
// scout::WalkthroughSession replays a whole pre-recorded navigation path.
// Interactive callers (the demo's 3-D explorer) instead need to issue one
// range query at a time — where the scientist goes next depends on what the
// previous query showed. A Session owns the session state the walkthrough
// loop used to own privately — simulated clock, buffer pool, prefetcher —
// and exposes it one Step(box) at a time. Between steps the prefetcher
// warms the pool out of the modeled think time, exactly as in the replay
// path, so a Step-by-Step run and a whole-path replay produce identical
// statistics.
//
// With SessionOptions::cache_results the session additionally keeps a
// cache::ResultCache of its last evaluated boxes: an overlapping step is
// decomposed by cache::DeltaPlanner into a covered fragment answered from
// the cache plus at most six residual boxes answered by the index, merged
// under the global id order — the result set is identical to a full
// re-query, the demand I/O is proportional to the *uncovered* volume only.
// During think time the prefetcher's predicted next box is evaluated over
// prefetched pages and inserted into the cache (results, not just pages),
// so a correctly predicted step stalls for nothing.
//
// Sessions opened by QueryEngine::OpenSession are additionally *delta-
// aware*: they borrow the FLAT backend's DeltaIndex and the engine's
// UpdateLog, so every step merges the immutable crawl layout with the live
// updates (tombstones filtered, inserts appended), stamps its StepRecord
// with the epoch it answered at, and — before querying — replays any update
// stamps it has not yet seen to invalidate exactly the cached boxes whose
// region went dirty. A cached session therefore stays byte-identical to a
// cold one across ApplyUpdates. (QueryEngine::Compact rebuilds page
// layouts; sessions opened before a compaction are invalidated — reopen.)

#ifndef NEURODB_ENGINE_SESSION_H_
#define NEURODB_ENGINE_SESSION_H_

#include <functional>
#include <memory>
#include <vector>

#include "cache/result_cache.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "engine/delta_index.h"
#include "flat/flat_index.h"
#include "geom/aabb.h"
#include "geom/knn.h"
#include "geom/visitor.h"
#include "neuro/circuit.h"
#include "scout/prefetcher.h"
#include "scout/session.h"
#include "storage/buffer_pool.h"

namespace neurodb {
namespace engine {

/// One interactive exploration session. Obtained from
/// QueryEngine::OpenSession; movable, not copyable. All clock/pool state is
/// private to the session, so several sessions can run against one engine —
/// but the session only borrows `index`/`store`/`resolver`, so the engine
/// (or whatever owns them) must outlive the session.
class Session {
 public:
  /// Open a session over a FLAT-indexed dataset. `resolver` may be null
  /// unless `method` is kScout. `delta` (the FLAT backend's live delta)
  /// and `update_log` (the engine's applied-batch history) make the
  /// session delta-aware; leaving them null gives the classic read-only
  /// session over the base layout alone.
  static Result<Session> Open(const flat::FlatIndex* index,
                              storage::PageStore* store,
                              const neuro::SegmentResolver* resolver,
                              scout::PrefetchMethod method,
                              scout::SessionOptions options,
                              const DeltaIndex* delta = nullptr,
                              const UpdateLog* update_log = nullptr);

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  /// Execute one range query: streams results to `visitor`, charges demand
  /// misses to the session clock, lets the prefetcher spend the think pause
  /// and advances the clock past it. Returns the step's statistics row.
  Result<scout::StepRecord> Step(const geom::Aabb& box,
                                 geom::ResultVisitor& visitor);

  /// Step without materializing results.
  Result<scout::StepRecord> Step(const geom::Aabb& box);

  /// Execute one kNN query through the session pool (FLAT expanding-ring
  /// crawl): fills `hits` (when non-null) ascending by (distance, id),
  /// charges demand misses to the session clock and lets the prefetcher
  /// spend the think pause on the neighbourhood of the answer, exactly as
  /// a range Step does. k == 0 and non-finite points are InvalidArgument;
  /// k beyond the dataset clamps.
  ///
  /// Delta kNN seeding (SessionOptions::seed_knn, on by default): the
  /// previous step's result list seeds the crawl's starting ring radius
  /// with its k-th best distance to the new point — a slowly moving query
  /// starts tight instead of re-deriving the radius from global density.
  /// Seeding is a starting point only; hits are bit-identical to the
  /// unseeded path (parity-checked in tests).
  Result<scout::StepRecord> StepKnn(const geom::Vec3& point, size_t k,
                                    std::vector<geom::KnnHit>* hits = nullptr);

  /// Statistics over all steps so far (the paper Figure 6 panel). Cheap;
  /// may be called mid-session.
  scout::SessionResult Summary() const;

  size_t NumSteps() const { return steps_.size(); }
  const scout::SessionOptions& options() const { return options_; }
  const char* method_name() const { return prefetcher_->Name(); }

  /// The session's result cache, or nullptr when caching is off
  /// (SessionOptions::cache_results).
  const cache::ResultCache* result_cache() const { return cache_.get(); }

 private:
  Session() = default;

  /// Shared step skeleton: catch up on update-log invalidations, time the
  /// query, account pool deltas, feed the prefetcher the result ids and
  /// the box the answer came from, spend the think pause, record the step
  /// (stamped with the current epoch). `query` fills the result ids and
  /// the prefetch box.
  Result<scout::StepRecord> RunStep(
      const std::function<Status(std::vector<geom::ElementId>* ids,
                                 geom::Aabb* prefetch_box)>& query);

  /// The cached range-step body: delta-decompose `box` against the cache,
  /// answer residuals through the index (merged with the live update
  /// delta), merge under the id order, stream to `visitor`, remember the
  /// full result as the newest cache entry.
  Status CachedRangeStep(const geom::Aabb& box, geom::ResultVisitor& visitor,
                         std::vector<geom::ElementId>* ids);

  /// One index range query over `box` merged with the live update delta:
  /// base matches with dead ids dropped, live inserts appended.
  Status DeltaMergedRange(const geom::Aabb& box, geom::ElementVec* out);

  /// Drop cached boxes dirtied by update batches this session has not yet
  /// observed (no-op without an update log or a cache).
  void CatchUpInvalidations();

  /// The epoch the session currently answers at (0 without an update log).
  uint64_t CurrentEpoch() const {
    return update_log_ != nullptr ? update_log_->epoch() : 0;
  }

  /// Think-time result prefetch: evaluate the prefetcher's predicted boxes
  /// over pool-resident pages (loading missing ones within the remaining
  /// `budget`) and insert their results into the cache. Returns pages
  /// loaded (they count against the step's prefetch budget).
  size_t PrepopulateCache(size_t budget);

  const flat::FlatIndex* index_ = nullptr;
  /// The crawl-page store the session pool caches, and its layout epoch at
  /// Open — a later Compact rebuilds the layout under the pool, so steps
  /// fail fast instead of serving stale cached pages.
  const storage::PageStore* store_ = nullptr;
  storage::Epoch store_epoch_at_open_ = 0;
  /// Live update overlay of the indexed dataset (null: read-only session).
  const DeltaIndex* delta_ = nullptr;
  /// Applied-batch history for cache invalidation catch-up (null: none).
  const UpdateLog* update_log_ = nullptr;
  /// Update stamps already replayed into the session cache.
  size_t log_seen_ = 0;
  scout::SessionOptions options_;
  size_t budget_ = 0;
  // unique_ptrs keep addresses stable across moves (the prefetcher holds a
  // pointer to the pool).
  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<scout::Prefetcher> prefetcher_;
  /// Non-null iff options_.cache_results (unique_ptr for move stability).
  std::unique_ptr<cache::ResultCache> cache_;
  /// The previous step's full result list — the seed candidates for delta
  /// kNN seeding (range steps refresh it; kNN steps reuse it).
  geom::ElementVec last_results_;
  std::vector<scout::StepRecord> steps_;
  uint64_t total_stall_us_ = 0;
  /// Coverage of the step currently executing (set by CachedRangeStep,
  /// read back by RunStep into the StepRecord).
  double last_cover_fraction_ = 0.0;
  double last_delta_fraction_ = 1.0;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_SESSION_H_
