// NeuroDB — DeltaIndex: the in-memory write side of the base+delta design.
//
// Every index in the library is bulk-built and immutable — the right shape
// for the paper's read-only exhibits, the wrong shape for growing circuits.
// Instead of teaching four very different physical indexes to mutate in
// place, mutation is layered *over* them: the built index stays the
// immutable base, and a DeltaIndex absorbs the changes since the last
// (re)build as
//
//   * inserts — new elements, keyed by id in a sorted map so every
//     enumeration is in the same deterministic ascending-id order the
//     built indexes and the result cache use;
//   * tombstones — ids whose base copy is dead (erase = tombstone,
//     move = tombstone + re-insert at the new bounds).
//
// A merged query answer is: base results with dead ids filtered out, plus
// the live inserts intersecting the query (engine/base_delta_backend.h).
// Compact() folds the delta back into a rebuilt base and empties it.
//
// An UpdateLog records one (epoch, dirty box) stamp per applied batch, so
// late observers — exploration sessions holding their own result caches —
// can catch up on exactly the invalidations they missed.

#ifndef NEURODB_ENGINE_DELTA_INDEX_H_
#define NEURODB_ENGINE_DELTA_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/result.h"

#include "common/status.h"
#include "geom/aabb.h"
#include "geom/element.h"
#include "geom/knn.h"
#include "geom/vec3.h"
#include "storage/epoch.h"

namespace neurodb {
namespace engine {

/// Kind of one mutation.
enum class UpdateKind {
  /// Add a new element (id must not be live).
  kInsert,
  /// Remove a live element.
  kErase,
  /// Re-locate a live element (tombstone + insert under the hood).
  kMove,
};

/// One mutation of the loaded dataset. `bounds` is the new bounding box for
/// kInsert/kMove and ignored for kErase.
struct UpdateRequest {
  UpdateKind kind = UpdateKind::kInsert;
  geom::ElementId id = 0;
  geom::Aabb bounds;
};

/// One applied update batch: the epoch it created and the union of every
/// bounding box it touched (old and new positions) — the region whose
/// cached results are stale.
struct EpochStamp {
  storage::Epoch epoch = 0;
  geom::Aabb dirty;
};

/// The engine's history of applied batches, oldest first. Sessions replay
/// the suffix they have not yet seen to invalidate their private caches.
/// Internally synchronized: sessions read it while ApplyUpdates appends.
class UpdateLog {
 public:
  void Append(storage::Epoch epoch, const geom::Aabb& dirty) {
    std::lock_guard<std::mutex> lock(mu_);
    stamps_.push_back(EpochStamp{epoch, dirty});
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stamps_.size();
  }

  /// The suffix of stamps at index >= `from`, copied out — a reference into
  /// the vector would be invalidated by a concurrent Append reallocation.
  std::vector<EpochStamp> StampsSince(size_t from) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (from >= stamps_.size()) return {};
    return std::vector<EpochStamp>(stamps_.begin() + from, stamps_.end());
  }

  /// The current epoch: 0 before any update, else the newest stamp's.
  storage::Epoch epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stamps_.empty() ? 0 : stamps_.back().epoch;
  }

 private:
  mutable std::mutex mu_;
  std::vector<EpochStamp> stamps_;
};

/// In-memory inserts plus tombstones over an immutable base. Pure
/// mechanism: liveness validation (does this id exist?) is the engine's
/// job — the delta applies whatever it is told, with last-write-wins
/// upsert semantics that make Move(id) correct for both base elements and
/// delta-born ones.
class DeltaIndex {
 public:
  /// Upsert `id` at `bounds` as a live delta element.
  void Insert(geom::ElementId id, const geom::Aabb& bounds) {
    inserts_[id] = bounds;
    ++revision_;
  }

  /// Kill `id`: a delta-born element is simply dropped; a base element
  /// gets a tombstone (its page copy cannot be removed until Compact).
  void Erase(geom::ElementId id) {
    if (inserts_.erase(id) == 0) tombstones_.insert(id);
    ++revision_;
  }

  /// Relocate `id` to `bounds`. The base copy (if any) is tombstoned; the
  /// delta copy is upserted at the new position.
  void Move(geom::ElementId id, const geom::Aabb& bounds) {
    if (inserts_.find(id) == inserts_.end()) tombstones_.insert(id);
    inserts_[id] = bounds;
    ++revision_;
  }

  /// True when a *base* element with this id must not be reported: it is
  /// tombstoned, or shadowed by a delta copy (a Move's re-insert).
  bool IsDead(geom::ElementId id) const {
    return tombstones_.count(id) != 0 || inserts_.count(id) != 0;
  }

  /// Append every live insert intersecting `box` to `out`, ascending by id.
  void AppendInserts(const geom::Aabb& box, geom::ElementVec* out) const {
    for (const auto& [id, bounds] : inserts_) {
      if (bounds.Intersects(box)) out->emplace_back(id, bounds);
    }
  }

  /// THE range-merge rule, in one place: given the base answer for `box`
  /// in `elements`, drop dead base elements and append the live inserts
  /// intersecting `box`. Every read path — backend wrapper, session
  /// steps, think-time prepopulation — overlays through here, so the
  /// merge semantics cannot drift apart between them.
  void Overlay(const geom::Aabb& box, geom::ElementVec* elements) const {
    if (Empty()) return;
    elements->erase(
        std::remove_if(elements->begin(), elements->end(),
                       [this](const geom::SpatialElement& e) {
                         return IsDead(e.id);
                       }),
        elements->end());
    AppendInserts(box, elements);
  }

  /// Offer every live insert to a kNN accumulator — the delta side of the
  /// merged kNN frontier.
  void SeedKnn(const geom::Vec3& point, geom::KnnAccumulator* acc) const {
    for (const auto& [id, bounds] : inserts_) {
      acc->Offer(id, geom::KnnDistance(point, bounds));
    }
  }

  /// The merged live element set: `base` (which must be sorted ascending
  /// by id, as Build-time layouts are) minus dead ids, plus every insert,
  /// sorted ascending by id — the input a Compact rebuild is run over.
  geom::ElementVec ApplyTo(const geom::ElementVec& base) const;

  /// Union of the live insert bounds (empty Aabb when there are none).
  geom::Aabb InsertBounds() const {
    geom::Aabb bounds;
    for (const auto& [id, b] : inserts_) bounds.Extend(b);
    return bounds;
  }

  size_t InsertCount() const { return inserts_.size(); }
  size_t TombstoneCount() const { return tombstones_.size(); }
  /// Total delta records — the "how overdue is compaction" metric.
  size_t Size() const { return inserts_.size() + tombstones_.size(); }
  bool Empty() const { return inserts_.empty() && tombstones_.empty(); }

  void Clear() {
    inserts_.clear();
    tombstones_.clear();
    ++revision_;
  }

  const std::map<geom::ElementId, geom::Aabb>& inserts() const {
    return inserts_;
  }

  /// Mutation counter: bumped by every Insert/Erase/Move/Clear. Publishers
  /// compare it against the revision they last snapshotted to skip copying
  /// an unchanged delta (e.g. a backend whose shard a batch never touched).
  uint64_t revision() const { return revision_; }

 private:
  /// Live delta elements, ascending by id (deterministic enumeration).
  std::map<geom::ElementId, geom::Aabb> inserts_;
  /// Ids whose base copy is dead.
  std::unordered_set<geom::ElementId> tombstones_;
  uint64_t revision_ = 0;
};

/// One published, immutable delta version: the state of a DeltaIndex as of
/// `epoch`. Readers pinned at a read epoch resolve their view through one
/// of these; the shared_ptr keeps the version alive for as long as any
/// in-flight query still holds it, even after the ring trims it.
struct DeltaSnapshot {
  storage::Epoch epoch = 0;
  std::shared_ptr<const DeltaIndex> delta;
};

/// VersionRing — the MVCC-lite retention window: the last few published
/// (epoch, snapshot) pairs of some copy-on-write state, ascending by epoch.
/// The writer Publishes a new immutable snapshot per committed epoch;
/// readers resolve a pinned read epoch E to the newest snapshot with
/// epoch <= E. Internally synchronized (one mutex, snapshot handout by
/// shared_ptr copy), so readers never block each other and never observe a
/// half-published version.
template <typename T>
class VersionRing {
 public:
  explicit VersionRing(size_t retention = 8)
      : retention_(retention == 0 ? 1 : retention) {}

  /// Keep at most `n` versions from now on (>= 1). Trims immediately.
  void SetRetention(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    retention_ = n == 0 ? 1 : n;
    Trim();
  }

  /// Publish `snapshot` as the state at `epoch`. Epochs must be pushed in
  /// ascending order; the oldest version falls off past the retention cap.
  void Publish(storage::Epoch epoch, std::shared_ptr<const T> snapshot) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back(Entry{epoch, std::move(snapshot)});
    Trim();
  }

  /// Replace the newest snapshot in place, keeping its epoch — used when a
  /// single-threaded mutator (plain Insert/Erase/Move outside an epoch'd
  /// batch) changes state without committing a new engine epoch. Publishes
  /// at epoch 0 when the ring is empty.
  void Republish(std::shared_ptr<const T> snapshot) {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.empty()) {
      entries_.push_back(Entry{0, std::move(snapshot)});
    } else {
      entries_.back().snapshot = std::move(snapshot);
    }
  }

  /// Drop all history and restart the ring at (`epoch`, `snapshot`) — the
  /// Build path: the initial state of a fresh base.
  void Reset(storage::Epoch epoch, std::shared_ptr<const T> snapshot) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    entries_.push_back(Entry{epoch, std::move(snapshot)});
  }

  /// Drop all history — the Compact path: the physical base changed, so
  /// older delta versions no longer describe reachable states. Pinned
  /// readers get OutOfRange until the writer publishes the post-compact
  /// version.
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
  }

  /// The newest snapshot with epoch <= `read_epoch` (kLatestEpoch pins the
  /// newest overall). OutOfRange when `read_epoch` predates the retention
  /// window — the caller's snapshot has been retired and it must re-pin.
  Result<std::shared_ptr<const T>> At(storage::Epoch read_epoch) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (it->epoch <= read_epoch) return it->snapshot;
    }
    return Status::OutOfRange(
        "VersionRing: read epoch retired (older than the retention window)");
  }

  /// The newest snapshot, or nullptr when nothing was ever published.
  std::shared_ptr<const T> Latest() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.empty() ? nullptr : entries_.back().snapshot;
  }

  /// The newest published epoch (0 when empty).
  storage::Epoch LatestEpoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.empty() ? 0 : entries_.back().epoch;
  }

  size_t NumVersions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    storage::Epoch epoch = 0;
    std::shared_ptr<const T> snapshot;
  };

  void Trim() {
    while (entries_.size() > retention_) entries_.erase(entries_.begin());
  }

  mutable std::mutex mu_;
  size_t retention_;
  std::vector<Entry> entries_;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_DELTA_INDEX_H_
