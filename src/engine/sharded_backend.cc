#include "engine/sharded_backend.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "exec/parallel_executor.h"
#include "geom/hilbert.h"

namespace neurodb {
namespace engine {

using geom::Aabb;
using geom::Vec3;

Status ShardedOptions::Validate() const {
  if (num_shards == 0) {
    return Status::InvalidArgument("ShardedOptions: num_shards == 0");
  }
  if (num_shards > 256) {
    return Status::InvalidArgument("ShardedOptions: num_shards > 256");
  }
  if (inner_index == ShardIndexKind::kRTree) {
    return inner_rtree.Validate();
  }
  return inner.Validate();
}

namespace {

/// Recursive longest-axis median split: cut idx[begin, end) into `parts`
/// contiguous runs of near-proportional size. Deterministic — the
/// nth_element comparator breaks center-coordinate ties by element id, so
/// the same input always yields the same shards on every platform.
void SplitRecursive(const geom::ElementVec& elements,
                    std::vector<uint32_t>* idx, size_t begin, size_t end,
                    size_t parts,
                    std::vector<std::pair<size_t, size_t>>* runs) {
  if (parts <= 1 || end - begin <= 1) {
    runs->emplace_back(begin, end);
    return;
  }
  Aabb centers;
  for (size_t i = begin; i < end; ++i) {
    centers.Extend(elements[(*idx)[i]].bounds.Center());
  }
  Vec3 extent = centers.Extent();
  int axis = 0;
  if (extent.y > extent[axis]) axis = 1;
  if (extent.z > extent[axis]) axis = 2;

  size_t left_parts = parts / 2;
  size_t right_parts = parts - left_parts;
  size_t mid = begin + (end - begin) * left_parts / parts;
  std::nth_element(
      idx->begin() + begin, idx->begin() + mid, idx->begin() + end,
      [&elements, axis](uint32_t a, uint32_t b) {
        float ca = elements[a].bounds.Center()[axis];
        float cb = elements[b].bounds.Center()[axis];
        if (ca != cb) return ca < cb;
        return elements[a].id < elements[b].id;
      });
  SplitRecursive(elements, idx, begin, mid, left_parts, runs);
  SplitRecursive(elements, idx, mid, end, right_parts, runs);
}

/// Hilbert-order assignment: sort element indices by the Hilbert key of
/// their center (ties by element id) and cut the sorted sequence into
/// `parts` contiguous near-equal runs. Shards hug the space-filling curve,
/// so clustered data yields compact shards instead of long median slabs.
void SplitHilbert(const geom::ElementVec& elements, std::vector<uint32_t>* idx,
                  size_t parts,
                  std::vector<std::pair<size_t, size_t>>* runs) {
  Aabb domain;
  for (const auto& e : elements) domain.Extend(e.bounds);
  geom::HilbertMapper mapper(domain);
  std::vector<uint64_t> keys(elements.size());
  for (size_t i = 0; i < elements.size(); ++i) {
    keys[i] = mapper.Key(elements[i].bounds);
  }
  std::sort(idx->begin(), idx->end(), [&](uint32_t a, uint32_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return elements[a].id < elements[b].id;
  });
  const size_t n = idx->size();
  for (size_t s = 0; s < parts; ++s) {
    runs->emplace_back(n * s / parts, n * (s + 1) / parts);
  }
}

}  // namespace

std::vector<size_t> ShardedBackend::SelectShards(const Aabb& box) const {
  // Cost-based selection: bounds intersection alone is not enough — a
  // shard whose live population is zero (an empty build, or every element
  // erased since) is skipped outright, so the query pays neither the pool
  // lookup nor the inner-grid scan for it.
  std::vector<size_t> selected;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shard_sizes_[s] == 0) continue;
    if (shard_bounds_[s].IsValid() && box.Intersects(shard_bounds_[s])) {
      selected.push_back(s);
    }
  }
  return selected;
}

std::vector<size_t> ShardedBackend::SelectShardsIn(
    const Aabb& box, const ShardRouting& routing) const {
  std::vector<size_t> selected;
  for (size_t s = 0; s < routing.bounds.size(); ++s) {
    if (routing.sizes[s] == 0) continue;
    if (routing.bounds[s].IsValid() && box.Intersects(routing.bounds[s])) {
      selected.push_back(s);
    }
  }
  return selected;
}

Status ShardedBackend::Build(const geom::ElementVec& elements) {
  if (built_) {
    return Status::AlreadyExists("ShardedBackend: already built");
  }
  NEURODB_RETURN_NOT_OK(options_.Validate());
  NEURODB_RETURN_NOT_OK(BuildBase(elements));
  built_ = true;
  // The initial version at epoch 0: spill delta (empty), routing snapshot;
  // each shard published its own initial version inside its Build.
  PublishVersion(0);
  return Status::OK();
}

void ShardedBackend::PublishVersion(storage::Epoch epoch) {
  BaseDeltaBackend::PublishVersion(epoch);  // the spill delta
  for (auto& shard : shards_) shard->PublishVersion(epoch);
  // The routing snapshot is tiny (<= 256 boxes), so it publishes
  // unconditionally — no revision bookkeeping for bounds extensions.
  routing_versions_.Publish(epoch, MakeRouting());
}

void ShardedBackend::RepublishLatest() {
  BaseDeltaBackend::RepublishLatest();
  for (auto& shard : shards_) shard->RepublishLatest();
  routing_versions_.Republish(MakeRouting());
}

void ShardedBackend::SetVersionRetention(size_t versions) {
  BaseDeltaBackend::SetVersionRetention(versions);
  for (auto& shard : shards_) shard->SetVersionRetention(versions);
  routing_versions_.SetRetention(versions);
}

void ShardedBackend::ResetDeltaVersions() {
  BaseDeltaBackend::ResetDeltaVersions();
  routing_versions_.Clear();
}

Status ShardedBackend::BuildBase(const geom::ElementVec& elements) {
  // Never build an empty shard: fewer elements than shards degrades to
  // fewer shards (a one-element circuit is a one-shard backend).
  size_t shards = std::max<size_t>(
      1, std::min(options_.num_shards, std::max<size_t>(1, elements.size())));

  std::vector<uint32_t> idx(elements.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::vector<std::pair<size_t, size_t>> runs;
  if (elements.empty()) {
    runs.emplace_back(0, 0);
  } else if (options_.assignment == ShardAssignment::kHilbert) {
    SplitHilbert(elements, &idx, shards, &runs);
  } else {
    SplitRecursive(elements, &idx, 0, elements.size(), shards, &runs);
  }

  shards_.reserve(runs.size());
  shard_bounds_.reserve(runs.size());
  shard_sizes_.reserve(runs.size());
  id_to_shard_.reserve(elements.size());
  for (const auto& [begin, end] : runs) {
    geom::ElementVec part;
    part.reserve(end - begin);
    Aabb bounds;
    for (size_t i = begin; i < end; ++i) {
      part.push_back(elements[idx[i]]);
      bounds.Extend(part.back().bounds);
      id_to_shard_[part.back().id] = static_cast<uint32_t>(shards_.size());
    }
    std::unique_ptr<BaseDeltaBackend> shard = MakeInner();
    if (store_factory_) {
      std::string shard_name =
          std::string(name()) + ".shard" + std::to_string(shards_.size());
      NEURODB_RETURN_NOT_OK(shard->AttachStores(
          [this, &shard_name](const std::string&) {
            return store_factory_(shard_name);
          }));
    }
    NEURODB_RETURN_NOT_OK(shard->Build(part));
    shards_.push_back(std::move(shard));
    shard_bounds_.push_back(bounds);
    shard_sizes_.push_back(end - begin);
  }
  return Status::OK();
}

std::unique_ptr<BaseDeltaBackend> ShardedBackend::MakeInner() const {
  if (options_.inner_index == ShardIndexKind::kRTree) {
    return std::make_unique<PagedRTreeBackend>(options_.inner_rtree);
  }
  return std::make_unique<GridBackend>(options_.inner);
}

Status ShardedBackend::ResetBase() {
  shards_.clear();
  shard_bounds_.clear();
  shard_sizes_.clear();
  id_to_shard_.clear();
  return Status::OK();
}

size_t ShardedBackend::RouteByBounds(const Vec3& center) const {
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shard_bounds_[s].IsValid() && shard_bounds_[s].Contains(center)) {
      return s;
    }
  }
  return static_cast<size_t>(-1);
}

Status ShardedBackend::InsertPending(geom::ElementId id, const Aabb& bounds) {
  NEURODB_RETURN_NOT_OK(RequireBuilt("Insert"));
  size_t s = RouteByBounds(bounds.Center());
  if (s == static_cast<size_t>(-1)) {
    // Outside every shard: the spill delta (the inherited wrapper merges
    // it over the shard fan-out). Re-homed into a shard at Compact.
    delta_.Insert(id, bounds);
    return Status::OK();
  }
  NEURODB_RETURN_NOT_OK(shards_[s]->InsertPending(id, bounds));
  // The element's box may stick out of the median-split bounds; extending
  // them keeps both range selection and the kNN frontier's lower-bound
  // pruning conservative (bounds only ever grow between compactions).
  shard_bounds_[s].Extend(bounds);
  ++shard_sizes_[s];
  id_to_shard_[id] = static_cast<uint32_t>(s);
  return Status::OK();
}

Status ShardedBackend::ErasePending(geom::ElementId id) {
  NEURODB_RETURN_NOT_OK(RequireBuilt("Erase"));
  auto it = id_to_shard_.find(id);
  if (it == id_to_shard_.end()) {
    // A spill-born element (or an id the engine mis-validated — harmless
    // either way: the spill delta drops the insert or tombstones a ghost).
    delta_.Erase(id);
    return Status::OK();
  }
  size_t s = it->second;
  NEURODB_RETURN_NOT_OK(shards_[s]->ErasePending(id));
  if (shard_sizes_[s] > 0) --shard_sizes_[s];
  id_to_shard_.erase(it);
  return Status::OK();
}

Status ShardedBackend::MovePending(geom::ElementId id, const Aabb& bounds) {
  NEURODB_RETURN_NOT_OK(ErasePending(id));
  return InsertPending(id, bounds);
}

Status ShardedBackend::Compact() {
  NEURODB_RETURN_NOT_OK(RequireBuilt("Compact"));
  if (DeltaSize() == 0) return Status::OK();

  // Per-shard live sets, plus every spill element re-homed into the shard
  // containing its center — or, when none does, the shard whose (live)
  // bounds are nearest (ties: lowest index; a fully erased backend falls
  // back to shard 0).
  std::vector<geom::ElementVec> live(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    live[s] = shards_[s]->LiveElements();
  }
  for (const auto& [id, bounds] : delta_.inserts()) {
    Vec3 center = bounds.Center();
    size_t target = RouteByBounds(center);
    if (target == static_cast<size_t>(-1)) {
      double best = std::numeric_limits<double>::infinity();
      target = 0;
      for (size_t s = 0; s < shards_.size(); ++s) {
        if (!shard_bounds_[s].IsValid()) continue;
        double distance = shard_bounds_[s].SquaredDistanceTo(center);
        if (distance < best) {
          best = distance;
          target = s;
        }
      }
    }
    live[target].emplace_back(id, bounds);
  }

  id_to_shard_.clear();
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::sort(live[s].begin(), live[s].end(),
              [](const geom::SpatialElement& a, const geom::SpatialElement& b) {
                return a.id < b.id;
              });
    NEURODB_RETURN_NOT_OK(shards_[s]->ReplaceBase(live[s]));
    Aabb bounds;
    for (const auto& e : live[s]) {
      bounds.Extend(e.bounds);
      id_to_shard_[e.id] = static_cast<uint32_t>(s);
    }
    shard_bounds_[s] = bounds;
    shard_sizes_[s] = live[s].size();
  }
  delta_.Clear();
  // Every shard's ring was cleared by its ReplaceBase; clear the spill and
  // routing rings too. The engine publishes the post-compact version next.
  ResetDeltaVersions();
  return Status::OK();
}

size_t ShardedBackend::DeltaSize() const {
  size_t total = delta_.Size();
  for (const auto& shard : shards_) total += shard->DeltaSize();
  return total;
}

std::vector<storage::PageStore*> ShardedBackend::Stores() {
  std::vector<storage::PageStore*> stores;
  stores.reserve(shards_.size());
  for (auto& shard : shards_) stores.push_back(shard->store());
  return stores;
}

Status ShardedBackend::BaseRangeQuery(storage::Epoch read_epoch,
                                      const Aabb& box, storage::PoolSet* pools,
                                      ResultVisitor& visitor,
                                      RangeStats* stats) const {
  if (pools == nullptr) {
    return Status::InvalidArgument("ShardedBackend::RangeQuery: null pool set");
  }
  if (pools->size() != shards_.size()) {
    return Status::InvalidArgument(
        "ShardedBackend::RangeQuery: pool set size != shard count");
  }

  // Pinned readers select shards through the routing snapshot published at
  // their epoch — the live bounds/sizes mutate under concurrent inserts.
  std::vector<size_t> selected;
  if (read_epoch == storage::kLatestEpoch) {
    selected = SelectShards(box);
  } else {
    auto routing = routing_versions_.At(read_epoch);
    NEURODB_RETURN_NOT_OK(routing.status());
    selected = SelectShardsIn(box, **routing);
  }
  if (selected.empty()) return Status::OK();

  // Serial path (no pool, a single shard, or already on a pool worker):
  // stream straight to the visitor in shard order — no buffering.
  const bool fan_out = thread_pool_ != nullptr &&
                       !exec::ThreadPool::InWorker() && selected.size() > 1;
  if (!fan_out) {
    for (size_t s : selected) {
      storage::PoolSet shard_pool(pools->pool(s));
      RangeStats shard_stats;
      NEURODB_RETURN_NOT_OK(shards_[s]->RangeQueryAt(
          read_epoch, box, &shard_pool, visitor,
          stats != nullptr ? &shard_stats : nullptr));
      if (stats != nullptr) {
        stats->pages_read += shard_stats.pages_read;
        stats->elements_scanned += shard_stats.elements_scanned;
        stats->results += shard_stats.results;
      }
    }
    return Status::OK();
  }

  // Parallel fan-out: each selected shard runs against its own pool and
  // buffers its matches; the buffers are replayed to `visitor` and the
  // statistics merged in shard order afterwards, so the result —
  // including visit order — is bit-identical to the serial loop above.
  struct ShardRun {
    CollectingVisitor out;
    RangeStats stats;
  };
  std::vector<ShardRun> runs(selected.size());

  exec::ParallelExecutor executor(thread_pool_);
  std::vector<exec::LaneRange> lanes =
      exec::PartitionLanes(selected.size(), selected.size());
  Status status = executor.Run(lanes, [&](const exec::LaneRange& lane) {
    for (size_t i = lane.begin; i < lane.end; ++i) {
      size_t s = selected[i];
      storage::PoolSet shard_pool(pools->pool(s));
      NEURODB_RETURN_NOT_OK(shards_[s]->RangeQueryAt(
          read_epoch, box, &shard_pool, runs[i].out,
          stats != nullptr ? &runs[i].stats : nullptr));
    }
    return Status::OK();
  });
  NEURODB_RETURN_NOT_OK(status);

  for (const ShardRun& run : runs) {
    for (const auto& e : run.out.elements()) visitor.Visit(e.id, e.bounds);
    if (stats != nullptr) {
      stats->pages_read += run.stats.pages_read;
      stats->elements_scanned += run.stats.elements_scanned;
      stats->results += run.stats.results;
    }
  }
  return Status::OK();
}

Status ShardedBackend::BaseKnnQuery(storage::Epoch read_epoch,
                                    const Vec3& point, size_t k,
                                    storage::PoolSet* pools,
                                    std::vector<geom::KnnHit>* hits,
                                    RangeStats* stats) const {
  if (pools == nullptr) {
    return Status::InvalidArgument("ShardedBackend::KnnQuery: null pool set");
  }
  if (hits == nullptr) {
    return Status::InvalidArgument("ShardedBackend::KnnQuery: null output");
  }
  if (!geom::IsFinitePoint(point)) {
    return Status::InvalidArgument("ShardedBackend::KnnQuery: non-finite point");
  }
  if (pools->size() != shards_.size()) {
    return Status::InvalidArgument(
        "ShardedBackend::KnnQuery: pool set size != shard count");
  }
  hits->clear();
  if (k == 0) return Status::OK();

  // Pinned readers walk the frontier of their routing snapshot.
  std::shared_ptr<const ShardRouting> pinned;
  if (read_epoch != storage::kLatestEpoch) {
    auto routing = routing_versions_.At(read_epoch);
    NEURODB_RETURN_NOT_OK(routing.status());
    pinned = *routing;
  }
  const std::vector<Aabb>& bounds =
      pinned != nullptr ? pinned->bounds : shard_bounds_;
  const std::vector<size_t>& sizes =
      pinned != nullptr ? pinned->sizes : shard_sizes_;

  // Best-first over the shard frontier: visit shards by ascending distance
  // from the query point to the shard box (ties by shard id), and stop as
  // soon as the next shard cannot improve the current k-th hit. Prune
  // strictly greater only — at equal distance a smaller id could still
  // enter the answer (geom/knn.h).
  std::vector<std::pair<double, size_t>> frontier;
  frontier.reserve(shards_.size());
  for (size_t s = 0; s < bounds.size(); ++s) {
    // Population-based pruning: an empty shard can contribute nothing, so
    // it never enters the frontier even when its bounds are closest.
    if (sizes[s] == 0 || !bounds[s].IsValid()) continue;
    frontier.emplace_back(geom::KnnDistance(point, bounds[s]), s);
  }
  std::sort(frontier.begin(), frontier.end());

  geom::KnnAccumulator acc(k);
  for (const auto& [distance, s] : frontier) {
    if (acc.Full() && distance > acc.WorstDistance()) break;
    storage::PoolSet shard_pool(pools->pool(s));
    std::vector<geom::KnnHit> shard_hits;
    RangeStats shard_stats;
    NEURODB_RETURN_NOT_OK(shards_[s]->KnnQueryAt(
        read_epoch, point, k, &shard_pool, &shard_hits,
        stats != nullptr ? &shard_stats : nullptr));
    for (const geom::KnnHit& hit : shard_hits) acc.Offer(hit.id, hit.distance);
    if (stats != nullptr) {
      stats->pages_read += shard_stats.pages_read;
      stats->elements_scanned += shard_stats.elements_scanned;
    }
  }

  *hits = acc.TakeSorted();
  if (stats != nullptr) stats->results = hits->size();
  return Status::OK();
}

BackendStats ShardedBackend::Stats() const {
  BackendStats stats;
  if (!built_) return stats;
  for (const auto& shard : shards_) {
    BackendStats inner = shard->Stats();
    stats.index_pages += inner.index_pages;
    stats.metadata_bytes += inner.metadata_bytes;
    stats.io += inner.io;
  }
  stats.metadata_bytes += shard_bounds_.capacity() * sizeof(Aabb) +
                          shard_sizes_.capacity() * sizeof(size_t) +
                          id_to_shard_.size() *
                              (sizeof(geom::ElementId) + sizeof(uint32_t)) +
                          MutationMetadataBytes();  // the spill delta
  return stats;
}

uint64_t ShardedBackend::TotalStoreReads() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->store()->NumReads();
  return total;
}

}  // namespace engine
}  // namespace neurodb
