// NeuroDB — BaseDeltaBackend: the shared base+delta read/write plumbing of
// every built-in backend.
//
// FlatBackend, PagedRTreeBackend, GridBackend and ShardedBackend used to
// each own the same skeleton: a built-once immutable index, a built() guard,
// a RangeQuery/KnnQuery pair translating index statistics. BaseDeltaBackend
// hoists that skeleton and extends it with mutability:
//
//   * Build() guards double-builds, delegates layout to the subclass's
//     BuildBase() hook and retains the (id-sorted) base element list — the
//     canonical input of the next Compact rebuild;
//   * RangeQuery() answers from the immutable base (BaseRangeQuery hook)
//     when the delta is empty — the zero-overhead read-only fast path — and
//     otherwise merges: base results with dead ids filtered, plus the live
//     delta inserts intersecting the box, under the global ascending-id
//     insert order;
//   * KnnQuery() widens the base request to k + delta-size (an upper bound
//     on how many of the base's best hits mutation can have invalidated),
//     filters dead hits, and seeds the accumulator from the delta side too,
//     so the merged frontier is exact under the (distance, id) order;
//   * Insert/Erase/Move write the delta; Compact() folds it into a rebuilt
//     base via ResetBase() + BuildBase() over DeltaIndex::ApplyTo and
//     leaves the delta empty.
//
// ShardedBackend specializes the write path (per-shard deltas routed by the
// median-split bounds, spill delta for out-of-bounds inserts) but reuses
// the same wrapper for its spill.

#ifndef NEURODB_ENGINE_BASE_DELTA_BACKEND_H_
#define NEURODB_ENGINE_BASE_DELTA_BACKEND_H_

#include <vector>

#include "engine/backend.h"
#include "engine/delta_index.h"

namespace neurodb {
namespace engine {

class BaseDeltaBackend : public SpatialBackend {
 public:
  /// Guard + BuildBase + base element retention. Subclasses with a custom
  /// layout pipeline (ShardedBackend) override retain_base_elements().
  Status Build(const geom::ElementVec& elements) override;

  /// Base answer merged with the live delta (see header). Subclass query
  /// hooks, not this wrapper, are where index-specific traversal lives.
  Status RangeQuery(const geom::Aabb& box, storage::PoolSet* pools,
                    ResultVisitor& visitor,
                    RangeStats* stats = nullptr) const override;

  Status KnnQuery(const geom::Vec3& point, size_t k, storage::PoolSet* pools,
                  std::vector<geom::KnnHit>* hits,
                  RangeStats* stats = nullptr) const override;

  bool SupportsUpdates() const override { return true; }
  Status Insert(geom::ElementId id, const geom::Aabb& bounds) override;
  Status Erase(geom::ElementId id) override;
  Status Move(geom::ElementId id, const geom::Aabb& bounds) override;

  /// ResetBase + BuildBase over the merged live set; delta emptied. A
  /// compact down to zero elements leaves the backend built with no base
  /// (queries then answer from the — empty — delta alone).
  Status Compact() override;

  size_t DeltaSize() const override { return delta_.Size(); }

  bool built() const { return built_; }
  const DeltaIndex& delta() const { return delta_; }
  /// The immutable base's element list, ascending by id (empty for
  /// subclasses that keep their own partitioned copies).
  const geom::ElementVec& base_elements() const { return base_elements_; }

  /// The merged live element set (base minus tombstones plus inserts),
  /// ascending by id — what a fresh Build would be given.
  geom::ElementVec LiveElements() const { return delta_.ApplyTo(base_elements_); }

  /// Tear down the current base and rebuild it over `elements` (must be
  /// sorted ascending by id); clears the delta. The Compact building block,
  /// also used by ShardedBackend to rebuild one shard in place.
  Status ReplaceBase(geom::ElementVec elements);

 protected:
  /// Lay `elements` out and build the index. Called once per Build and once
  /// per Compact (after ResetBase). Never called with an empty vector.
  virtual Status BuildBase(const geom::ElementVec& elements) = 0;

  /// Drop the built index and Reset() the page store(s) so BuildBase can
  /// run again over a new element set.
  virtual Status ResetBase() = 0;

  /// Answer a range query from the immutable base only.
  virtual Status BaseRangeQuery(const geom::Aabb& box, storage::PoolSet* pools,
                                ResultVisitor& visitor,
                                RangeStats* stats) const = 0;

  /// Answer a kNN query from the immutable base only.
  virtual Status BaseKnnQuery(const geom::Vec3& point, size_t k,
                              storage::PoolSet* pools,
                              std::vector<geom::KnnHit>* hits,
                              RangeStats* stats) const = 0;

  /// Whether Build should retain its input as base_elements_. Subclasses
  /// that partition the input into inner backends (ShardedBackend) return
  /// false — each inner backend retains its own part.
  virtual bool retain_base_elements() const { return true; }

  /// Memory the mutation machinery keeps resident: the retained base
  /// element list (the Compact rebuild input) plus the live delta records.
  /// Subclass Stats() implementations add this to metadata_bytes so the
  /// index-footprint numbers stay honest about the base+delta overhead.
  size_t MutationMetadataBytes() const {
    return base_elements_.capacity() * sizeof(geom::SpatialElement) +
           delta_.Size() * (sizeof(geom::ElementId) + sizeof(geom::Aabb));
  }

  Status RequireBuilt(const char* op) const {
    if (!built_) {
      return Status::InvalidArgument(std::string(name()) + "::" + op +
                                     ": not built");
    }
    return Status::OK();
  }

  /// True when the base side currently indexes no elements (fresh empty
  /// build, or a compact after everything was erased).
  bool base_empty() const { return base_empty_; }

  DeltaIndex delta_;
  bool built_ = false;
  /// No base index exists (zero elements) — base query hooks are skipped.
  bool base_empty_ = false;

 private:
  geom::ElementVec base_elements_;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_BASE_DELTA_BACKEND_H_
