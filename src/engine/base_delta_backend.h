// NeuroDB — BaseDeltaBackend: the shared base+delta read/write plumbing of
// every built-in backend.
//
// FlatBackend, PagedRTreeBackend, GridBackend and ShardedBackend used to
// each own the same skeleton: a built-once immutable index, a built() guard,
// a RangeQuery/KnnQuery pair translating index statistics. BaseDeltaBackend
// hoists that skeleton and extends it with mutability:
//
//   * Build() guards double-builds, delegates layout to the subclass's
//     BuildBase() hook and retains the (id-sorted) base element list — the
//     canonical input of the next Compact rebuild;
//   * RangeQuery() answers from the immutable base (BaseRangeQuery hook)
//     when the delta is empty — the zero-overhead read-only fast path — and
//     otherwise merges: base results with dead ids filtered, plus the live
//     delta inserts intersecting the box, under the global ascending-id
//     insert order;
//   * KnnQuery() widens the base request to k + delta-size (an upper bound
//     on how many of the base's best hits mutation can have invalidated),
//     filters dead hits, and seeds the accumulator from the delta side too,
//     so the merged frontier is exact under the (distance, id) order;
//   * Insert/Erase/Move write the delta; Compact() folds it into a rebuilt
//     base via ResetBase() + BuildBase() over DeltaIndex::ApplyTo and
//     leaves the delta empty.
//
// MVCC-lite (ISSUE 7): the pending delta is the writer's working copy; a
// VersionRing of immutable DeltaIndex snapshots — one published per applied
// batch epoch — is the readers' view. RangeQueryAt/KnnQueryAt resolve a
// pinned read epoch through the ring, so a reader at epoch E keeps getting
// the E answer while ApplyBatch publishes E+1. kLatestEpoch bypasses the
// ring and reads the pending delta (the single-threaded fast path).
// Compact clears the ring (older versions describe states the rebuilt base
// can no longer reproduce); pinned readers then see OutOfRange and re-pin.
//
// ShardedBackend specializes the write path (per-shard deltas routed by the
// median-split bounds, spill delta for out-of-bounds inserts) but reuses
// the same wrapper for its spill.

#ifndef NEURODB_ENGINE_BASE_DELTA_BACKEND_H_
#define NEURODB_ENGINE_BASE_DELTA_BACKEND_H_

#include <memory>
#include <vector>

#include "engine/backend.h"
#include "engine/delta_index.h"

namespace neurodb {
namespace engine {

class BaseDeltaBackend : public SpatialBackend {
 public:
  /// Guard + BuildBase + base element retention. Subclasses with a custom
  /// layout pipeline (ShardedBackend) override retain_base_elements().
  /// Publishes the initial (empty-delta) version at epoch 0.
  Status Build(const geom::ElementVec& elements) override;

  /// Base answer merged with the live delta (see header). Subclass query
  /// hooks, not this wrapper, are where index-specific traversal lives.
  Status RangeQuery(const geom::Aabb& box, storage::PoolSet* pools,
                    ResultVisitor& visitor,
                    RangeStats* stats = nullptr) const override;

  Status KnnQuery(const geom::Vec3& point, size_t k, storage::PoolSet* pools,
                  std::vector<geom::KnnHit>* hits,
                  RangeStats* stats = nullptr) const override;

  /// Base answer merged with the delta version pinned at `read_epoch`
  /// (kLatestEpoch = the live pending delta). OutOfRange when `read_epoch`
  /// predates the retention window or a compaction.
  Status RangeQueryAt(storage::Epoch read_epoch, const geom::Aabb& box,
                      storage::PoolSet* pools, ResultVisitor& visitor,
                      RangeStats* stats = nullptr) const override;

  Status KnnQueryAt(storage::Epoch read_epoch, const geom::Vec3& point,
                    size_t k, storage::PoolSet* pools,
                    std::vector<geom::KnnHit>* hits,
                    RangeStats* stats = nullptr) const override;

  bool SupportsUpdates() const override { return true; }

  /// Mutate-and-republish: the standalone single-writer API. Each call
  /// applies to the pending delta and refreshes the newest published
  /// version in place (same epoch — no commit happened). Batched epoch'd
  /// mutation goes through ApplyBatch instead.
  Status Insert(geom::ElementId id, const geom::Aabb& bounds) override;
  Status Erase(geom::ElementId id) override;
  Status Move(geom::ElementId id, const geom::Aabb& bounds) override;

  /// Mutate the pending delta only — no version is published until
  /// PublishVersion/RepublishLatest. Virtual so ShardedBackend routes
  /// operations to the owning shard; these are the per-op building blocks
  /// ApplyBatch composes.
  virtual Status InsertPending(geom::ElementId id, const geom::Aabb& bounds);
  virtual Status ErasePending(geom::ElementId id);
  virtual Status MovePending(geom::ElementId id, const geom::Aabb& bounds);

  /// Apply the whole batch to the pending state, then publish one immutable
  /// version at `epoch` — the engine's per-batch commit.
  Status ApplyBatch(const std::vector<UpdateRequest>& updates,
                    storage::Epoch epoch) override;

  /// Publish the pending delta as the version at `epoch`. Skips the copy
  /// when nothing changed since the last publish (an untouched backend
  /// still resolves epoch E+1 to its older identical version).
  void PublishVersion(storage::Epoch epoch) override;

  /// Refresh the newest published version in place after an unbatched
  /// mutation (no new epoch). Public so ShardedBackend can cascade it to
  /// its inner shards (protected members are not accessible through a
  /// sibling-typed object).
  virtual void RepublishLatest();

  void SetVersionRetention(size_t versions) override {
    versions_.SetRetention(versions);
  }

  /// ResetBase + BuildBase over the merged live set; delta emptied and the
  /// version ring cleared (the engine publishes the post-compact version at
  /// the next epoch). A compact down to zero elements leaves the backend
  /// built with no base (queries then answer from the — empty — delta
  /// alone).
  Status Compact() override;

  size_t DeltaSize() const override { return delta_.Size(); }

  bool built() const { return built_; }
  const DeltaIndex& delta() const { return delta_; }

  /// True when the base side currently indexes no elements (fresh empty
  /// build, or a compact after everything was erased).
  bool base_empty() const { return base_empty_; }

  /// The newest published delta version and its epoch — what a session
  /// pins at the start of each step. `delta` is null only before Build or
  /// transiently during a Compact (callers treat null as "empty delta").
  DeltaSnapshot LatestDelta() const {
    return DeltaSnapshot{versions_.LatestEpoch(), versions_.Latest()};
  }

  /// Published versions currently retained (diagnostics / tests).
  size_t RetainedVersions() const { return versions_.NumVersions(); }

  /// The immutable base's element list, ascending by id (empty for
  /// subclasses that keep their own partitioned copies).
  const geom::ElementVec& base_elements() const { return base_elements_; }

  /// The merged live element set (base minus tombstones plus inserts),
  /// ascending by id — what a fresh Build would be given.
  geom::ElementVec LiveElements() const { return delta_.ApplyTo(base_elements_); }

  /// Tear down the current base and rebuild it over `elements` (must be
  /// sorted ascending by id); clears the delta and the version ring. The
  /// Compact building block, also used by ShardedBackend to rebuild one
  /// shard in place.
  Status ReplaceBase(geom::ElementVec elements);

 protected:
  /// Lay `elements` out and build the index. Called once per Build and once
  /// per Compact (after ResetBase). Never called with an empty vector.
  virtual Status BuildBase(const geom::ElementVec& elements) = 0;

  /// Drop the built index and Reset() the page store(s) so BuildBase can
  /// run again over a new element set.
  virtual Status ResetBase() = 0;

  /// Answer a range query from the immutable base only. `read_epoch` is
  /// the pinned epoch (kLatestEpoch = live state); single-version bases
  /// ignore it, ShardedBackend uses it to pin routing + inner deltas.
  virtual Status BaseRangeQuery(storage::Epoch read_epoch,
                                const geom::Aabb& box, storage::PoolSet* pools,
                                ResultVisitor& visitor,
                                RangeStats* stats) const = 0;

  /// Answer a kNN query from the immutable base only.
  virtual Status BaseKnnQuery(storage::Epoch read_epoch,
                              const geom::Vec3& point, size_t k,
                              storage::PoolSet* pools,
                              std::vector<geom::KnnHit>* hits,
                              RangeStats* stats) const = 0;

  /// Drop all published versions — the base changed shape. ShardedBackend
  /// cascades to its shards and routing snapshot.
  virtual void ResetDeltaVersions() { versions_.Clear(); }

  /// Whether Build should retain its input as base_elements_. Subclasses
  /// that partition the input into inner backends (ShardedBackend) return
  /// false — each inner backend retains its own part.
  virtual bool retain_base_elements() const { return true; }

  /// The merged-read body shared by the live and pinned paths: base answer
  /// through the hooks at `read_epoch`, overlaid with `view`.
  Status RangeQueryView(storage::Epoch read_epoch, const DeltaIndex& view,
                        const geom::Aabb& box, storage::PoolSet* pools,
                        ResultVisitor& visitor, RangeStats* stats) const;
  Status KnnQueryView(storage::Epoch read_epoch, const DeltaIndex& view,
                      const geom::Vec3& point, size_t k,
                      storage::PoolSet* pools, std::vector<geom::KnnHit>* hits,
                      RangeStats* stats) const;

  /// Memory the mutation machinery keeps resident: the retained base
  /// element list (the Compact rebuild input) plus the live delta records.
  /// Subclass Stats() implementations add this to metadata_bytes so the
  /// index-footprint numbers stay honest about the base+delta overhead.
  size_t MutationMetadataBytes() const {
    return base_elements_.capacity() * sizeof(geom::SpatialElement) +
           delta_.Size() * (sizeof(geom::ElementId) + sizeof(geom::Aabb));
  }

  Status RequireBuilt(const char* op) const {
    if (!built_) {
      return Status::InvalidArgument(std::string(name()) + "::" + op +
                                     ": not built");
    }
    return Status::OK();
  }

  DeltaIndex delta_;
  bool built_ = false;
  /// No base index exists (zero elements) — base query hooks are skipped.
  bool base_empty_ = false;

 private:
  geom::ElementVec base_elements_;
  /// Published immutable delta versions, newest last.
  VersionRing<DeltaIndex> versions_;
  /// delta_.revision() at the last publish — the skip-unchanged check.
  uint64_t published_revision_ = 0;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_BASE_DELTA_BACKEND_H_
