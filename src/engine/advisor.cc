#include "engine/advisor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "engine/query_engine.h"

namespace neurodb {
namespace engine {

using geom::Aabb;
using geom::Vec3;

Status WorkloadProfile::Validate() const {
  if (range_weight < 0.0 || knn_weight < 0.0) {
    return Status::InvalidArgument("WorkloadProfile: negative weight");
  }
  if (range_weight + knn_weight <= 0.0) {
    return Status::InvalidArgument("WorkloadProfile: all weights zero");
  }
  if (!(range_side > 0.0f)) {
    return Status::InvalidArgument("WorkloadProfile: range_side must be > 0");
  }
  if (knn_weight > 0.0 && knn_k == 0) {
    return Status::InvalidArgument("WorkloadProfile: knn_k must be >= 1");
  }
  if (data_centered < 0.0 || data_centered > 1.0) {
    return Status::InvalidArgument(
        "WorkloadProfile: data_centered must be in [0, 1]");
  }
  return Status::OK();
}

namespace {

/// Aggregates of one set of boxes (an R-tree level, FLAT's data pages) the
/// Kamel–Faloutsos expected-intersection formula needs.
struct BoxAggregate {
  double count = 0.0;
  double sum_volume = 0.0;
  double sum_face_area = 0.0;  // Σ (ex*ey + ey*ez + ez*ex)
  double sum_extent = 0.0;     // Σ (ex + ey + ez)

  void Add(const Aabb& box) {
    const Vec3 e = box.Extent();
    count += 1.0;
    sum_volume += static_cast<double>(e.x) * e.y * e.z;
    sum_face_area += static_cast<double>(e.x) * e.y +
                     static_cast<double>(e.y) * e.z +
                     static_cast<double>(e.z) * e.x;
    sum_extent += static_cast<double>(e.x) + e.y + e.z;
  }
};

double VolumeOf(const Aabb& domain) {
  const Vec3 ext = domain.Extent();
  return std::max(1e-9, static_cast<double>(ext.x) * ext.y * ext.z);
}

/// Anchor model shared by every estimator: a query anchored uniformly in
/// the domain sees the full domain volume in its denominator; a query
/// anchored ON the data (DataCenteredQueries and the data-centered share of
/// MixedWorkload) lands where elements actually are, so its effective
/// universe is the occupied volume. The two regimes are blended by the
/// profile's data_centered fraction.
struct AnchorModel {
  double domain_volume = 1.0;
  double occupied_volume = 1.0;  // capped by domain_volume
  double data_centered = 0.5;

  /// Expected value of num/denominator under the blended anchor.
  double Expect(double num) const {
    return data_centered * (num / occupied_volume) +
           (1.0 - data_centered) * (num / domain_volume);
  }
};

/// Expected number of boxes a query cube of side `q` intersects:
/// Σ_b Π_d (s_d + q) / D_d via the aggregate expansion under the blended
/// anchor model, clamped to [0, count].
double ExpectedIntersections(const BoxAggregate& a, const AnchorModel& anchor,
                             double q) {
  if (a.count <= 0.0) return 0.0;
  const double num = a.sum_volume + q * a.sum_face_area +
                     q * q * a.sum_extent + q * q * q * a.count;
  return std::min(a.count, anchor.Expect(num));
}

/// Equivalent query side for a kNN query: the edge of the cube expected to
/// hold k elements at the measured density. `occupied_volume` is the
/// volume the data actually fills (Σ leaf/page MBR volumes, capped by the
/// domain) — using it instead of the raw domain keeps the estimate honest
/// on skewed circuits where most of the domain is empty.
double KnnEquivalentSide(size_t k, size_t population, const Aabb& domain,
                         double occupied_volume) {
  if (population == 0) return 0.0;
  const Vec3 ext = domain.Extent();
  const double dv = std::max(1e-9, static_cast<double>(ext.x) * ext.y * ext.z);
  const double vol = std::min(dv, std::max(1e-9, occupied_volume));
  const double per_element = vol / static_cast<double>(population);
  return std::cbrt(per_element * static_cast<double>(std::min(k, population)));
}

/// Expected pages for one R-tree query of side `q`: the Kamel–Faloutsos sum
/// over every level of the profile (every visited node is one page in the
/// paged R-tree's cost model), floored at one node per level (the root
/// descent).
double RTreeExpectedPages(const std::vector<rtree::LevelStats>& levels,
                          const AnchorModel& anchor, double q) {
  double pages = 0.0;
  for (const auto& ls : levels) {
    BoxAggregate agg;
    agg.count = static_cast<double>(ls.nodes);
    agg.sum_volume = ls.total_volume;
    agg.sum_face_area = ls.sum_face_area;
    agg.sum_extent = ls.sum_extent;
    pages += std::max(1.0, ExpectedIntersections(agg, anchor, q));
  }
  return pages;
}

/// Σ leaf-level MBR volume of an R-tree profile (occupied-volume proxy).
double RTreeLeafVolume(const std::vector<rtree::LevelStats>& levels) {
  return levels.empty() ? 0.0 : levels.front().total_volume;
}

struct GridGeometry {
  double total_pages = 0.0;
  Vec3 cell_size{1, 1, 1};
  Vec3 widen{0, 0, 0};  // 2 * max element half-extent
};

/// Expected pages for one grid query of side `q`: the fraction of the
/// effective universe the widened cell block covers, applied to the
/// cell-major page count. The grid scans whole cell blocks, so the per-axis
/// span is the query side plus the widening margin plus one cell of
/// quantization; a kNN query additionally scans one confirmation shell of
/// cells to prove the k-th distance bound (`confirm_shell`). The occupied
/// universe is modeled as a cube, so its edge is the cube root of the
/// occupied volume.
double GridExpectedPages(const GridGeometry& g, const AnchorModel& anchor,
                         double q, bool confirm_shell) {
  if (g.total_pages <= 0.0) return 0.0;
  const double shell = confirm_shell ? 2.0 : 0.0;
  const double span[3] = {
      q + g.widen.x + (1.0 + shell) * g.cell_size.x,
      q + g.widen.y + (1.0 + shell) * g.cell_size.y,
      q + g.widen.z + (1.0 + shell) * g.cell_size.z,
  };
  const double dom_edge = std::cbrt(anchor.domain_volume);
  const double occ_edge = std::cbrt(anchor.occupied_volume);
  double frac_dom = 1.0, frac_occ = 1.0;
  for (int d = 0; d < 3; ++d) {
    frac_dom *= std::min(1.0, span[d] / std::max(1e-9, dom_edge));
    frac_occ *= std::min(1.0, span[d] / std::max(1e-9, occ_edge));
  }
  const double fraction = anchor.data_centered * frac_occ +
                          (1.0 - anchor.data_centered) * frac_dom;
  return std::max(1.0, g.total_pages * fraction);
}

/// FLAT's expanding-ring kNN overshoots the final radius while it doubles
/// outward; widen the equivalent side accordingly.
constexpr double kFlatRingOvershoot = 1.5;

struct ShardModel {
  Aabb bounds;
  size_t population = 0;
  // Model of the shard's inner index, one of:
  std::vector<rtree::LevelStats> rtree_levels;  // inner R-tree
  GridGeometry grid;                            // inner grid
  bool is_rtree = false;
};

double ShardedExpectedPages(const std::vector<ShardModel>& shards,
                            const AnchorModel& anchor, size_t population,
                            double q, bool knn) {
  double pages = 0.0;
  for (const auto& s : shards) {
    if (s.population == 0 || !s.bounds.IsValid()) continue;
    const double share =
        population == 0 ? 0.0
                        : static_cast<double>(s.population) /
                              static_cast<double>(population);
    // Probability the query reaches this shard: a data-centered anchor
    // lands in it with its population share; a uniform anchor intersects
    // its bounds per Kamel–Faloutsos.
    BoxAggregate one;
    one.Add(s.bounds);
    const double kf_num = one.sum_volume + q * one.sum_face_area +
                          q * q * one.sum_extent + q * q * q;
    const double hit = std::min(
        1.0, anchor.data_centered * share +
                 (1.0 - anchor.data_centered) * kf_num / anchor.domain_volume);
    // The shard's inner index spans only its own bounds and holds its own
    // share of the occupied volume.
    AnchorModel inner_anchor;
    inner_anchor.domain_volume = VolumeOf(s.bounds);
    inner_anchor.occupied_volume = std::min(
        inner_anchor.domain_volume,
        std::max(1e-9, anchor.occupied_volume * std::max(share, 1e-3)));
    inner_anchor.data_centered = anchor.data_centered;
    const double inner =
        s.is_rtree ? RTreeExpectedPages(s.rtree_levels, inner_anchor, q)
                   : GridExpectedPages(s.grid, inner_anchor, q, knn);
    pages += hit * inner;
  }
  return std::max(1.0, pages);
}

std::string FormatPages(double pages) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << pages;
  return os.str();
}

}  // namespace

Result<AdvisorDecision> QueryEngine::Advise(const WorkloadProfile& profile) {
  NEURODB_RETURN_NOT_OK(RequireLoaded("Advise"));
  NEURODB_RETURN_NOT_OK(profile.Validate());

  const Aabb& domain = domain_;
  const size_t population = live_bounds_.size();
  const double wr = profile.range_weight / (profile.range_weight +
                                            profile.knn_weight);
  const double wk = 1.0 - wr;
  const double q_range = profile.range_side;

  // --- Per-backend structure models, measured from what each built. ---

  // FLAT: the crawl reads exactly the data pages intersecting the region it
  // walks; the seed tree is memory-resident and charges no pages.
  BoxAggregate flat_pages;
  if (flat_ != nullptr && flat_->has_index()) {
    const flat::FlatIndex& index = flat_->index();
    for (uint32_t i = 0; i < index.NumPages(); ++i) {
      flat_pages.Add(index.PageBounds(i));
    }
  }

  // R-tree: the per-level MBR profile of the built tree.
  std::vector<rtree::LevelStats> rtree_levels;
  if (rtree_ != nullptr && !rtree_->base_empty()) {
    rtree_levels = rtree_->tree().tree().LevelProfile();
  }

  // Grid: cell geometry plus the cell-major page count.
  GridGeometry grid_geo;
  if (grid_ != nullptr) {
    grid_geo.total_pages =
        static_cast<double>(grid_->Stats().index_pages);
    grid_geo.cell_size = grid_->cell_size();
    const Vec3 h = grid_->max_half_extent();
    grid_geo.widen = {2.0f * h.x, 2.0f * h.y, 2.0f * h.z};
  }

  // Sharded: per-shard bounds + population + inner model.
  std::vector<ShardModel> shards;
  if (sharded_ != nullptr) {
    const bool inner_rtree =
        sharded_->options().inner_index == ShardIndexKind::kRTree;
    for (size_t s = 0; s < sharded_->NumShards(); ++s) {
      ShardModel model;
      model.bounds = sharded_->shard_bounds(s);
      model.population = sharded_->ShardPopulation(s);
      model.is_rtree = inner_rtree;
      const BaseDeltaBackend& inner = sharded_->shard(s);
      if (inner_rtree) {
        const auto& rt = static_cast<const PagedRTreeBackend&>(inner);
        if (!rt.base_empty()) model.rtree_levels = rt.tree().tree().LevelProfile();
      } else {
        const auto& gb = static_cast<const GridBackend&>(inner);
        model.grid.total_pages = static_cast<double>(gb.Stats().index_pages);
        model.grid.cell_size = gb.cell_size();
        const Vec3 h = gb.max_half_extent();
        model.grid.widen = {2.0f * h.x, 2.0f * h.y, 2.0f * h.z};
      }
      shards.push_back(std::move(model));
    }
  }

  // Occupied volume (for kNN density and the data-centered anchor blend):
  // prefer the R-tree's leaf MBRs, fall back to FLAT's page MBRs, then the
  // domain.
  double occupied = RTreeLeafVolume(rtree_levels);
  if (occupied <= 0.0) occupied = flat_pages.sum_volume;
  const double q_knn =
      KnnEquivalentSide(profile.knn_k, population, domain, occupied);

  AnchorModel anchor;
  anchor.domain_volume = VolumeOf(domain);
  anchor.occupied_volume = std::min(
      anchor.domain_volume, std::max(1e-9, occupied));
  anchor.data_centered = profile.data_centered;

  // --- Score every candidate. ---
  AdvisorDecision decision;
  for (size_t i = 0; i < backends_.size(); ++i) {
    const SpatialBackend* backend = backends_[i].get();
    BackendCostEstimate est;
    est.backend = backend->name();
    if (backend == flat_) {
      est.choice = BackendChoice::kFlat;
      est.range_pages = std::max(
          1.0, ExpectedIntersections(flat_pages, anchor, q_range));
      est.knn_pages = std::max(
          1.0, ExpectedIntersections(flat_pages, anchor,
                                     q_knn * kFlatRingOvershoot));
    } else if (backend == rtree_) {
      est.choice = BackendChoice::kRTree;
      est.range_pages = RTreeExpectedPages(rtree_levels, anchor, q_range);
      est.knn_pages = RTreeExpectedPages(rtree_levels, anchor, q_knn);
    } else if (backend == grid_) {
      est.choice = BackendChoice::kGrid;
      est.range_pages = GridExpectedPages(grid_geo, anchor, q_range, false);
      est.knn_pages = GridExpectedPages(grid_geo, anchor, q_knn, true);
    } else if (backend == sharded_) {
      est.choice = BackendChoice::kSharded;
      est.range_pages =
          ShardedExpectedPages(shards, anchor, population, q_range, false);
      est.knn_pages =
          ShardedExpectedPages(shards, anchor, population, q_knn, true);
    } else {
      continue;  // externally registered backends are not modeled
    }
    est.cost = wr * est.range_pages + wk * est.knn_pages;
    if (i < backend_metrics_.size() &&
        backend_metrics_[i].queries != nullptr) {
      const uint64_t queries = backend_metrics_[i].queries->value();
      if (queries > 0) {
        est.measured_pages_per_query =
            static_cast<double>(backend_metrics_[i].pages_read->value()) /
            static_cast<double>(queries);
      }
    }
    decision.estimates.push_back(std::move(est));
  }
  if (decision.estimates.empty()) {
    return Status::Internal("Advise: no built-in backends to rank");
  }

  // Rank. Once every candidate has executed queries, the live pages/query
  // counters ARE the workload's measured cost — rank by them and keep the
  // model as the cold-start path (and the per-candidate report).
  decision.from_measurements = true;
  for (const auto& est : decision.estimates) {
    if (est.measured_pages_per_query < 0.0) decision.from_measurements = false;
  }
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& est : decision.estimates) {
    const double rank_cost = decision.from_measurements
                                 ? est.measured_pages_per_query
                                 : est.cost;
    if (rank_cost < best_cost) {
      best_cost = rank_cost;
      decision.backend = est.choice;
      decision.backend_name = est.backend;
    }
  }

  std::ostringstream rationale;
  rationale << decision.backend_name << " expects the fewest pages ("
            << FormatPages(best_cost) << "/query, "
            << (decision.from_measurements ? "measured" : "modeled")
            << ") for " << population << " elements; candidates:";
  for (const auto& est : decision.estimates) {
    rationale << " " << est.backend << "=" << FormatPages(est.cost);
    if (est.measured_pages_per_query >= 0.0) {
      rationale << " (measured " << FormatPages(est.measured_pages_per_query)
                << ")";
    }
  }
  decision.rationale = rationale.str();

  // Decision observability: how often the advisor ran, what it picked, and
  // the modeled cost per candidate (scaled to integer page-milli-units).
  if (metrics_ != nullptr) {
    obs::Bump(metrics_->counter("advisor.runs"));
    obs::Bump(metrics_->counter("advisor.decision." + decision.backend_name));
    for (const auto& est : decision.estimates) {
      obs::Set(metrics_->gauge("advisor.cost_millipages." + est.backend),
               static_cast<uint64_t>(est.cost * 1000.0));
    }
  }
  return decision;
}

}  // namespace engine
}  // namespace neurodb
