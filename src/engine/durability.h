// NeuroDB — DurabilityManager: what a durable engine keeps in its data
// directory, and the codec between ApplyUpdates batches and WAL payloads.
//
// A data directory holds:
//   base.ndb       PageFile of the last checkpointed element snapshot:
//                  every live element, ascending by id, packed onto pages
//                  0..N-1. The file's header epoch is the checkpoint epoch.
//   wal.ndb        WriteAheadLog of every ApplyUpdates batch accepted since
//                  that checkpoint (record epoch = the engine epoch the
//                  batch created).
//   <name>.pages   One PageFile per backend store (derived data — rebuilt
//                  from base.ndb on recovery, never read by it).
//
// The protocol (engine/query_engine.cc drives it):
//   * ApplyUpdates appends + fsyncs the encoded batch BEFORE any backend
//     mutates — an acknowledged batch survives any later crash.
//   * Checkpoint/Compact rewrite base.ndb copy-on-write, commit its header
//     at the current engine epoch, then truncate the WAL. A crash between
//     those two steps is benign: replay skips records at or below the
//     checkpoint epoch.
//   * QueryEngine::Open loads base.ndb, rebuilds every backend, replays
//     the WAL tail through the normal ApplyUpdates path, and truncates a
//     torn final record.
//
// The WAL itself is payload-agnostic (storage must not depend on engine
// types); EncodeUpdateBatch/DecodeUpdateBatch is the engine-side codec.

#ifndef NEURODB_ENGINE_DURABILITY_H_
#define NEURODB_ENGINE_DURABILITY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/backend.h"
#include "engine/delta_index.h"
#include "geom/element.h"
#include "storage/disk/disk_page_store.h"
#include "storage/disk/page_file.h"
#include "storage/disk/wal.h"
#include "storage/epoch.h"

namespace neurodb {
namespace engine {

/// Durable-storage configuration (EngineOptions::durability). An empty
/// `dir` keeps the engine fully in-memory — the default, and the behaviour
/// of every engine before this subsystem existed.
struct DurabilityOptions {
  /// Data directory (created if missing). Empty disables durability.
  std::string dir;
  /// Block size of base.ndb and every backend page file.
  uint32_t block_bytes = 4096;
  /// Also put every backend's PageStore on disk (real block I/O per
  /// query). When false only base.ndb + wal.ndb are durable and backends
  /// stay on in-memory stores rebuilt at Open.
  bool disk_backends = true;
  /// Null means storage::DefaultFileSystem(); tests inject
  /// storage::FaultInjectingFileSystem here.
  storage::FileSystem* fs = nullptr;

  bool enabled() const { return !dir.empty(); }
  Status Validate() const;
};

/// What QueryEngine::Open found and did. The crash-recovery matrix keys
/// its oracle off `replayed_batches`: a recovered engine equals a fresh
/// engine that applied exactly the first `replayed_batches` batches after
/// the checkpoint.
struct RecoveryReport {
  storage::Epoch checkpoint_epoch = 0;
  size_t base_elements = 0;
  /// WAL batches replayed through ApplyUpdates.
  size_t replayed_batches = 0;
  /// A torn (partially written) tail record was found and truncated away.
  bool torn_tail = false;
  uint64_t dropped_bytes = 0;
};

/// WAL payload kinds: every record starts with a u32 discriminator so the
/// log can carry more than update batches (docs/FILE_FORMAT.md).
inline constexpr uint32_t kWalKindUpdateBatch = 1;
inline constexpr uint32_t kWalKindLoadElements = 2;

/// Serialize a batch: u32 kind (= kWalKindUpdateBatch), u32 count, then 40
/// bytes per op (u32 op kind, u32 reserved, u64 id, 6 × f32 bounds).
std::vector<uint8_t> EncodeUpdateBatch(std::span<const UpdateRequest> updates);

/// Parse an EncodeUpdateBatch payload; malformed input is kCorruption.
Result<std::vector<UpdateRequest>> DecodeUpdateBatch(
    const std::vector<uint8_t>& payload);

/// Serialize an initial dataset: u32 kind (= kWalKindLoadElements), u32
/// count, then 32 bytes per element (u64 id, 6 × f32 bounds). Logged by
/// LoadElements before any backend builds, so an engine created empty (or
/// crashed before its first checkpoint) recovers its birth dataset from
/// the WAL.
std::vector<uint8_t> EncodeLoadElements(
    std::span<const geom::SpatialElement> elements);

/// Parse an EncodeLoadElements payload; malformed input is kCorruption.
Result<geom::ElementVec> DecodeLoadElements(
    const std::vector<uint8_t>& payload);

/// The kind discriminator of a WAL payload (kCorruption when too short).
Result<uint32_t> WalPayloadKind(const std::vector<uint8_t>& payload);

class DurabilityManager {
 public:
  /// Initialize `options.dir` as a fresh data directory: empty base.ndb at
  /// epoch 0 and an empty WAL (stale files are truncated).
  static Result<std::unique_ptr<DurabilityManager>> Create(
      const DurabilityOptions& options);

  /// Open an existing data directory for recovery: validates and loads
  /// base.ndb's header/directory and opens the WAL without replaying it.
  static Result<std::unique_ptr<DurabilityManager>> Attach(
      const DurabilityOptions& options);

  /// The epoch stamped into base.ndb by the last checkpoint.
  storage::Epoch checkpoint_epoch() const { return base_->epoch(); }

  /// Every element of the checkpointed snapshot, ascending by id.
  Result<geom::ElementVec> LoadBase() const;

  /// Durably append one encoded batch to the WAL (fsync'd on return).
  Status LogUpdates(storage::Epoch epoch,
                    std::span<const UpdateRequest> updates);

  /// Durably append the initial dataset as a load record (fsync'd on
  /// return). Written at engine load, before backends build; the next
  /// checkpoint truncates it away, so a healthy directory carries at most
  /// one — and only until its first checkpoint completes.
  Status LogLoad(storage::Epoch epoch,
                 std::span<const geom::SpatialElement> elements);

  /// Rewrite base.ndb as `live` (must be ascending by id), commit its
  /// header at `epoch`, then truncate the WAL. Copy-on-write: a crash
  /// before the header commit leaves the previous base + full WAL intact.
  Status CheckpointBase(const geom::ElementVec& live, storage::Epoch epoch);

  /// Replay every intact WAL record in order, dispatching by payload kind:
  /// update batches to `fn`, load records to `load_fn` (rejected as
  /// corruption when null and one is present). Stops cleanly at the first
  /// torn record; `stats` receives the scan summary.
  Status Replay(
      const std::function<Status(storage::Epoch,
                                 const std::vector<UpdateRequest>&)>& fn,
      storage::WriteAheadLog::ReplayStats* stats,
      const std::function<Status(storage::Epoch, geom::ElementVec)>& load_fn =
          nullptr);

  /// Physically drop bytes past the last intact record (call after Replay).
  Status TruncateTornTail() {
    return wal_->TruncateTail(wal_->end_offset());
  }

  /// Store factory placing each backend's pages in "<dir>/<name>.pages".
  StoreFactory BackendStoreFactory() const;

  /// Device I/O of base.ndb + wal.ndb (backend page files report through
  /// their own stores).
  storage::IoStats io() const;

  const storage::PageFile& base() const { return *base_; }
  const storage::WriteAheadLog& wal() const { return *wal_; }
  const std::string& dir() const { return dir_; }

 private:
  DurabilityManager(std::string dir, uint32_t block_bytes,
                    storage::FileSystem* fs)
      : dir_(std::move(dir)), block_bytes_(block_bytes), fs_(fs) {}

  std::string dir_;
  uint32_t block_bytes_;
  storage::FileSystem* fs_;
  std::unique_ptr<storage::PageFile> base_;
  std::unique_ptr<storage::WriteAheadLog> wal_;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_DURABILITY_H_
