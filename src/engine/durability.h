// NeuroDB — DurabilityManager: what a durable engine keeps in its data
// directory, and the codec between ApplyUpdates batches and WAL payloads.
//
// A data directory holds:
//   base.ndb       PageFile of the last checkpointed element snapshot:
//                  every live element, ascending by id, packed onto pages
//                  0..N-1. The file's header epoch is the checkpoint epoch.
//   wal.ndb        WriteAheadLog of every ApplyUpdates batch accepted since
//                  that checkpoint (record epoch = the engine epoch the
//                  batch created).
//   <name>.pages   One PageFile per backend store (derived data — rebuilt
//                  from base.ndb on recovery, never read by it).
//
// The protocol (engine/query_engine.cc drives it):
//   * ApplyUpdates appends the encoded batch BEFORE any backend mutates —
//     under SyncPolicy::kPerBatch each append carries its own fsync; under
//     kGroup the commit-lock holder appends a whole group of batches in one
//     write + one fsync (LogUpdateGroup) — an acknowledged batch survives
//     any later crash either way. kNone skips the fsync entirely
//     (bulk-load: the next checkpoint is the durability point).
//   * Checkpoint/Compact rewrite base.ndb copy-on-write (streamed page by
//     page — peak residency is one page chunk, not the live set), commit
//     its header at the pinned epoch, then drop the covered WAL prefix
//     (CommitCheckpoint). A crash between those two steps is benign:
//     replay skips records at or below the checkpoint epoch.
//   * Compact logs a kWalKindEpochBump record for the epoch its rebuild
//     creates: the bump carries no ops, but keeps the WAL's epoch sequence
//     gapless when the checkpoint that would normally absorb it runs in
//     the background (or never completes).
//   * QueryEngine::Open streams base.ndb (readahead-coalesced ScanPages),
//     rebuilds every backend, replays the WAL tail through the normal
//     ApplyUpdates path, and truncates a torn final record.
//
// The WAL itself is payload-agnostic (storage must not depend on engine
// types); EncodeUpdateBatch/DecodeUpdateBatch is the engine-side codec.

#ifndef NEURODB_ENGINE_DURABILITY_H_
#define NEURODB_ENGINE_DURABILITY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/backend.h"
#include "engine/delta_index.h"
#include "geom/element.h"
#include "storage/disk/disk_page_store.h"
#include "storage/disk/page_file.h"
#include "storage/disk/wal.h"
#include "storage/epoch.h"

namespace neurodb {
namespace engine {

/// When an accepted ApplyUpdates batch becomes durable (docs/API.md
/// "Durability tuning"). Every policy writes the WAL record before any
/// backend mutates; they differ only in when the fsync happens.
enum class SyncPolicy : uint8_t {
  /// One fsync per batch — lowest latency to durability, lowest
  /// throughput under concurrent writers.
  kPerBatch,
  /// Group commit: concurrent writers' batches coalesce at the commit
  /// lock; the leader appends the whole group in one write and amortizes
  /// ONE fsync over it. Same durability guarantee as kPerBatch (a batch
  /// is only acknowledged after its group's fsync), ~group-size× fewer
  /// fsyncs.
  kGroup,
  /// No per-batch fsync at all (bulk load): batches are durable at the
  /// next checkpoint/Compact. A crash before that can lose acknowledged
  /// batches — opt in knowingly.
  kNone,
};

/// Durable-storage configuration (EngineOptions::durability). An empty
/// `dir` keeps the engine fully in-memory — the default, and the behaviour
/// of every engine before this subsystem existed.
struct DurabilityOptions {
  /// Data directory (created if missing). Empty disables durability.
  std::string dir;
  /// Block size of base.ndb and every backend page file.
  uint32_t block_bytes = 4096;
  /// Also put every backend's PageStore on disk (real block I/O per
  /// query). When false only base.ndb + wal.ndb are durable and backends
  /// stay on in-memory stores rebuilt at Open.
  bool disk_backends = true;
  /// Null means storage::DefaultFileSystem(); tests inject
  /// storage::FaultInjectingFileSystem here.
  storage::FileSystem* fs = nullptr;

  /// When a batch's WAL record is fsync'd (see SyncPolicy).
  SyncPolicy sync = SyncPolicy::kPerBatch;
  /// kGroup: most batches one coalesced append may carry.
  size_t group_max_batches = 64;
  /// kGroup: how long the leader may hold the group open waiting for more
  /// writers to queue up (0 = take whatever is queued, never wait). The
  /// knob trades single-writer latency for multi-writer coalescing.
  uint64_t group_hold_us = 100;
  /// When > 0: after a commit leaves the WAL at or past this many bytes,
  /// the engine schedules a background checkpoint on its mutation worker
  /// (CheckpointAsync). 0 disables the size trigger — Compact/Checkpoint
  /// remain the only checkpoint points.
  uint64_t checkpoint_wal_bytes = 0;

  bool enabled() const { return !dir.empty(); }
  Status Validate() const;
};

/// What QueryEngine::Open found and did. The crash-recovery matrix keys
/// its oracle off `replayed_batches`: a recovered engine equals a fresh
/// engine that applied exactly the first `replayed_batches` batches after
/// the checkpoint.
struct RecoveryReport {
  storage::Epoch checkpoint_epoch = 0;
  size_t base_elements = 0;
  /// WAL batches replayed through ApplyUpdates.
  size_t replayed_batches = 0;
  /// A torn (partially written) tail record was found and truncated away.
  bool torn_tail = false;
  uint64_t dropped_bytes = 0;
};

/// WAL payload kinds: every record starts with a u32 discriminator so the
/// log can carry more than update batches (docs/FILE_FORMAT.md).
inline constexpr uint32_t kWalKindUpdateBatch = 1;
inline constexpr uint32_t kWalKindLoadElements = 2;
/// An op-less epoch advance (Compact's rebuild): keeps replayed epochs
/// consecutive when the matching checkpoint runs in the background.
inline constexpr uint32_t kWalKindEpochBump = 3;

/// Default read window for streaming base scans (LoadBase/StreamBase):
/// callers that know their BufferPool budget pass their own.
inline constexpr uint64_t kDefaultScanWindowBytes = 1u << 20;

/// Serialize a batch: u32 kind (= kWalKindUpdateBatch), u32 count, then 40
/// bytes per op (u32 op kind, u32 reserved, u64 id, 6 × f32 bounds).
std::vector<uint8_t> EncodeUpdateBatch(std::span<const UpdateRequest> updates);

/// Parse an EncodeUpdateBatch payload; malformed input is kCorruption.
Result<std::vector<UpdateRequest>> DecodeUpdateBatch(
    const std::vector<uint8_t>& payload);

/// Serialize an initial dataset: u32 kind (= kWalKindLoadElements), u32
/// count, then 32 bytes per element (u64 id, 6 × f32 bounds). Logged by
/// LoadElements before any backend builds, so an engine created empty (or
/// crashed before its first checkpoint) recovers its birth dataset from
/// the WAL.
std::vector<uint8_t> EncodeLoadElements(
    std::span<const geom::SpatialElement> elements);

/// Parse an EncodeLoadElements payload; malformed input is kCorruption.
Result<geom::ElementVec> DecodeLoadElements(
    const std::vector<uint8_t>& payload);

/// Serialize an epoch bump: just the u32 kind (= kWalKindEpochBump) — the
/// epoch itself rides in the record header like every other record's.
std::vector<uint8_t> EncodeEpochBump();

/// The kind discriminator of a WAL payload (kCorruption when too short).
Result<uint32_t> WalPayloadKind(const std::vector<uint8_t>& payload);

/// A checkpoint rewrite in flight: elements stream in ascending id order,
/// buffered one page at a time (peak residency = storage::ElementsPerPage
/// elements, never the live set) and written under the PageFile's
/// sequential-allocation hint so the pages land physically contiguous.
/// Created by DurabilityManager::BeginCheckpoint; nothing is durable until
/// DurabilityManager::CommitCheckpoint — abandoning the stream (error
/// path) leaves the previous committed base fully intact.
class CheckpointStream {
 public:
  ~CheckpointStream();
  CheckpointStream(const CheckpointStream&) = delete;
  CheckpointStream& operator=(const CheckpointStream&) = delete;

  /// Add the next element (callers feed ascending ids; each full page
  /// chunk is written out immediately).
  Status Append(const geom::SpatialElement& element);

  /// Flush the final partial page. Idempotent; must precede
  /// CommitCheckpoint.
  Status Finish();

  size_t pages_written() const { return pages_written_; }
  size_t elements_written() const { return elements_written_; }
  /// Largest element buffer held at any point — the residency bound the
  /// larger-than-pool checkpoint test asserts on.
  size_t max_buffered() const { return max_buffered_; }

 private:
  friend class DurabilityManager;
  CheckpointStream(storage::PageFile* base, size_t per_page);
  Status FlushChunk();

  storage::PageFile* base_;
  size_t per_page_;
  std::vector<geom::SpatialElement> chunk_;
  storage::PageId next_page_ = 0;
  size_t pages_written_ = 0;
  size_t elements_written_ = 0;
  size_t max_buffered_ = 0;
  bool finished_ = false;
};

class DurabilityManager {
 public:
  /// Initialize `options.dir` as a fresh data directory: empty base.ndb at
  /// epoch 0 and an empty WAL (stale files are truncated).
  static Result<std::unique_ptr<DurabilityManager>> Create(
      const DurabilityOptions& options);

  /// Open an existing data directory for recovery: validates and loads
  /// base.ndb's header/directory and opens the WAL without replaying it.
  static Result<std::unique_ptr<DurabilityManager>> Attach(
      const DurabilityOptions& options);

  /// The epoch stamped into base.ndb by the last checkpoint.
  storage::Epoch checkpoint_epoch() const { return base_->epoch(); }

  /// Every element of the checkpointed snapshot, ascending by id.
  /// Materializes the full vector (backends build over it) but reads the
  /// file through StreamBase — the I/O buffer never exceeds `window_bytes`.
  Result<geom::ElementVec> LoadBase(
      uint64_t window_bytes = kDefaultScanWindowBytes) const;

  /// Stream the checkpointed snapshot in ascending id order, one decoded
  /// page span per callback, reading at most `window_bytes` at a time
  /// (physically adjacent pages coalesce into one readahead window).
  /// `scan_stats` (optional) reports read calls + peak window size.
  Status StreamBase(
      const std::function<Status(std::span<const geom::SpatialElement>)>& fn,
      uint64_t window_bytes,
      storage::PageFile::ScanStats* scan_stats = nullptr) const;

  /// Append one encoded batch to the WAL; `sync` fsyncs before returning
  /// (kPerBatch semantics — pass false under SyncPolicy::kNone).
  Status LogUpdates(storage::Epoch epoch,
                    std::span<const UpdateRequest> updates, bool sync = true);

  /// Group commit: append every record in ONE write with ONE fsync. On
  /// return all of them are durable; on error none was acknowledged.
  Status LogUpdateGroup(
      std::span<const storage::WriteAheadLog::PendingRecord> records);

  /// Durably append an op-less epoch advance (Compact's rebuild epoch).
  Status LogEpochBump(storage::Epoch epoch);

  /// Durably append the initial dataset as a load record (fsync'd on
  /// return). Written at engine load, before backends build; the next
  /// checkpoint truncates it away, so a healthy directory carries at most
  /// one — and only until its first checkpoint completes.
  Status LogLoad(storage::Epoch epoch,
                 std::span<const geom::SpatialElement> elements);

  /// Rewrite base.ndb as `live` (must be ascending by id), commit its
  /// header at `epoch`, then truncate the WAL. Copy-on-write: a crash
  /// before the header commit leaves the previous base + full WAL intact.
  /// (Streams internally; the synchronous convenience over BeginCheckpoint
  /// + CommitCheckpoint for callers that already hold the live set.)
  Status CheckpointBase(const geom::ElementVec& live, storage::Epoch epoch);

  /// Start a streaming base rewrite: stages a full copy-on-write page set
  /// under the sequential-allocation hint. The previous committed base
  /// stays intact (and readable through recovery) until CommitCheckpoint.
  Result<std::unique_ptr<CheckpointStream>> BeginCheckpoint();

  /// Make a finished stream the durable base: fsync the staged pages +
  /// header at `epoch`, then drop the WAL prefix below `wal_cut_offset`
  /// (the log's end_offset captured when the stream's snapshot was
  /// pinned — records at or before it have epoch <= `epoch` and are now
  /// covered by the base; records past it replay on top). Base-then-log
  /// order: a crash between the two leaves extra covered records behind,
  /// which replay skips by epoch.
  Status CommitCheckpoint(storage::Epoch epoch, uint64_t wal_cut_offset);

  /// Replay every intact WAL record in order, dispatching by payload kind:
  /// update batches to `fn`, load records to `load_fn` (rejected as
  /// corruption when null and one is present), epoch bumps to `bump_fn`
  /// (skipped when null — they carry no data). Stops cleanly at the first
  /// torn record; `stats` receives the scan summary.
  Status Replay(
      const std::function<Status(storage::Epoch,
                                 const std::vector<UpdateRequest>&)>& fn,
      storage::WriteAheadLog::ReplayStats* stats,
      const std::function<Status(storage::Epoch, geom::ElementVec)>& load_fn =
          nullptr,
      const std::function<Status(storage::Epoch)>& bump_fn = nullptr);

  /// Physically drop bytes past the last intact record (call after Replay).
  Status TruncateTornTail() {
    return wal_->TruncateTail(wal_->end_offset());
  }

  /// Store factory placing each backend's pages in "<dir>/<name>.pages".
  StoreFactory BackendStoreFactory() const;

  /// Device I/O of base.ndb + wal.ndb (backend page files report through
  /// their own stores).
  storage::IoStats io() const;

  const storage::PageFile& base() const { return *base_; }
  const storage::WriteAheadLog& wal() const { return *wal_; }
  const std::string& dir() const { return dir_; }

 private:
  DurabilityManager(std::string dir, uint32_t block_bytes,
                    storage::FileSystem* fs)
      : dir_(std::move(dir)), block_bytes_(block_bytes), fs_(fs) {}

  std::string dir_;
  uint32_t block_bytes_;
  storage::FileSystem* fs_;
  std::unique_ptr<storage::PageFile> base_;
  std::unique_ptr<storage::WriteAheadLog> wal_;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_DURABILITY_H_
