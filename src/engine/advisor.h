// NeuroDB — BackendAdvisor: cost-based backend selection from measured
// index statistics.
//
// The paper's demo shows the same query running on every index side by
// side; the advisor closes the loop by *choosing* — it estimates the pages
// a typical workload query would touch on each built backend from the
// structures those backends actually built (R-tree per-level MBR profiles,
// FLAT page bounds, grid cell geometry, per-shard populations), and
// recommends the cheapest one.
//
// The estimator is the Kamel–Faloutsos expected-node-access model: for a
// query cube of side q anchored uniformly in the domain, the probability it
// intersects a box with extents (sx, sy, sz) is
//
//     (sx + q)(sy + q)(sz + q) / (Dx * Dy * Dz)
//
// which sums over a set of boxes from four aggregates (Σ volume,
// Σ face area, Σ extent, count) — exactly what rtree::LevelStats carries
// and what FLAT's page MBRs / the grid's cell geometry provide. kNN
// queries are folded in by converting k to an equivalent query side from
// the measured population density. When the engine has live per-backend
// query counters (obs metrics), the measured pages/query is reported next
// to each model estimate — and once EVERY candidate has executed queries,
// the ranking itself switches to the measurements (the model remains the
// cold-start path).
//
// Entry point: QueryEngine::Advise(profile) — see query_engine.h.

#ifndef NEURODB_ENGINE_ADVISOR_H_
#define NEURODB_ENGINE_ADVISOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace neurodb {
namespace engine {

enum class BackendChoice;  // defined in query_engine.h

/// The workload the advisor optimizes for: a mix of range and kNN queries.
struct WorkloadProfile {
  /// Relative frequency of range queries (>= 0; weights are normalized).
  double range_weight = 0.5;
  /// Relative frequency of kNN queries (>= 0).
  double knn_weight = 0.5;
  /// Cube side of a typical range query, in circuit units.
  float range_side = 10.0f;
  /// Typical k of a kNN query.
  size_t knn_k = 8;
  /// Fraction of queries anchored on the data (neuro::DataCenteredQueries,
  /// MixedWorkloadOptions::data_centered_fraction) rather than uniformly in
  /// the domain. Anchored queries land where elements are dense, so the
  /// expected-intersection denominator shifts from the domain volume toward
  /// the occupied volume. The default matches MixedWorkloadOptions.
  double data_centered = 0.5;

  Status Validate() const;
};

/// One backend's modeled cost for a WorkloadProfile.
struct BackendCostEstimate {
  std::string backend;
  BackendChoice choice;
  /// Expected pages touched by one range query of profile.range_side.
  double range_pages = 0.0;
  /// Expected pages touched by one kNN query of profile.knn_k.
  double knn_pages = 0.0;
  /// Weighted blend the ranking uses.
  double cost = 0.0;
  /// Mean pages/query this backend measured since load (engine query
  /// counters), or a negative value when it has not executed any query.
  double measured_pages_per_query = -1.0;
};

/// The advisor's answer: the recommended backend plus the full scored
/// table and a human-readable rationale.
struct AdvisorDecision {
  BackendChoice backend;
  std::string backend_name;
  /// Every candidate, in engine registration order.
  std::vector<BackendCostEstimate> estimates;
  std::string rationale;
  /// True when every candidate had live pages/query counters and the
  /// ranking used those measurements; false when the decision came from
  /// the structural cost model alone (cold engine).
  bool from_measurements = false;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_ADVISOR_H_
