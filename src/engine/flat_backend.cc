#include "engine/flat_backend.h"

namespace neurodb {
namespace engine {

Status FlatBackend::BuildBase(const geom::ElementVec& elements) {
  NEURODB_ASSIGN_OR_RETURN(flat::FlatIndex index,
                           flat::FlatIndex::Build(elements, store_, options_));
  index_.emplace(std::move(index));
  return Status::OK();
}

Status FlatBackend::ResetBase() {
  index_.reset();
  store_->Reset();
  return Status::OK();
}

Status FlatBackend::BaseRangeQuery(storage::Epoch /*read_epoch*/,
                                   const geom::Aabb& box,
                                   storage::PoolSet* pools,
                                   ResultVisitor& visitor,
                                   RangeStats* stats) const {
  storage::BufferPool* pool = pools != nullptr ? pools->pool(0) : nullptr;
  flat::FlatQueryStats flat_stats;
  NEURODB_RETURN_NOT_OK(index_->RangeQuery(box, pool, visitor, &flat_stats));
  if (stats != nullptr) {
    stats->pages_read = flat_stats.data_pages_read;
    stats->results = flat_stats.results;
    stats->elements_scanned = flat_stats.elements_scanned;
  }
  return Status::OK();
}

Status FlatBackend::BaseKnnQuery(storage::Epoch /*read_epoch*/,
                                 const geom::Vec3& point, size_t k,
                                 storage::PoolSet* pools,
                                 std::vector<geom::KnnHit>* hits,
                                 RangeStats* stats) const {
  storage::BufferPool* pool = pools != nullptr ? pools->pool(0) : nullptr;
  flat::FlatQueryStats flat_stats;
  NEURODB_RETURN_NOT_OK(index_->Knn(point, k, pool, hits, &flat_stats));
  if (stats != nullptr) {
    stats->pages_read = flat_stats.data_pages_read;
    stats->results = flat_stats.results;
    stats->elements_scanned = flat_stats.elements_scanned;
  }
  return Status::OK();
}

BackendStats FlatBackend::Stats() const {
  BackendStats stats;
  if (index_.has_value()) {
    stats.index_pages = index_->NumPages();
    stats.metadata_bytes = index_->MetadataBytes() + MutationMetadataBytes();
  }
  stats.io = IoTotals();
  return stats;
}

}  // namespace engine
}  // namespace neurodb
