#include "engine/rtree_backend.h"

namespace neurodb {
namespace engine {

Status PagedRTreeBackend::BuildBase(const geom::ElementVec& elements) {
  NEURODB_ASSIGN_OR_RETURN(rtree::RTree tree,
                           rtree::RTree::Build(elements, options_));
  NEURODB_ASSIGN_OR_RETURN(rtree::PagedRTree paged,
                           rtree::PagedRTree::Build(std::move(tree), store_));
  tree_.emplace(std::move(paged));
  return Status::OK();
}

Status PagedRTreeBackend::ResetBase() {
  tree_.reset();
  store_->Reset();
  return Status::OK();
}

Status PagedRTreeBackend::BaseRangeQuery(storage::Epoch /*read_epoch*/,
                                         const geom::Aabb& box,
                                         storage::PoolSet* pools,
                                         ResultVisitor& visitor,
                                         RangeStats* stats) const {
  storage::BufferPool* pool = pools != nullptr ? pools->pool(0) : nullptr;
  rtree::QueryStats tree_stats;
  NEURODB_RETURN_NOT_OK(tree_->RangeQuery(box, visitor, pool, &tree_stats));
  if (stats != nullptr) {
    stats->pages_read = tree_stats.nodes_visited;
    stats->results = tree_stats.results;
    stats->elements_scanned = tree_stats.entries_tested;
    stats->nodes_per_level = std::move(tree_stats.nodes_per_level);
  }
  return Status::OK();
}

Status PagedRTreeBackend::BaseKnnQuery(storage::Epoch /*read_epoch*/,
                                       const geom::Vec3& point, size_t k,
                                       storage::PoolSet* pools,
                                       std::vector<geom::KnnHit>* hits,
                                       RangeStats* stats) const {
  storage::BufferPool* pool = pools != nullptr ? pools->pool(0) : nullptr;
  rtree::QueryStats tree_stats;
  NEURODB_RETURN_NOT_OK(tree_->Knn(point, k, pool, hits, &tree_stats));
  if (stats != nullptr) {
    stats->pages_read = tree_stats.nodes_visited;
    stats->results = tree_stats.results;
    stats->elements_scanned = tree_stats.entries_tested;
    stats->nodes_per_level = std::move(tree_stats.nodes_per_level);
  }
  return Status::OK();
}

BackendStats PagedRTreeBackend::Stats() const {
  BackendStats stats;
  if (tree_.has_value()) {
    stats.index_pages = tree_->NumPages();
    stats.metadata_bytes = tree_->tree().MemoryBytes() +
                           MutationMetadataBytes();
  }
  stats.io = IoTotals();
  return stats;
}

}  // namespace engine
}  // namespace neurodb
