// NeuroDB — PagedRTreeBackend: the disk-resident R-tree as a QueryEngine
// backend (the paper's comparison baseline).

#ifndef NEURODB_ENGINE_RTREE_BACKEND_H_
#define NEURODB_ENGINE_RTREE_BACKEND_H_

#include <optional>
#include <vector>

#include "engine/base_delta_backend.h"
#include "rtree/paged_rtree.h"

namespace neurodb {
namespace engine {

/// Adapter wrapping rtree::PagedRTree: bulk load (STR, Hilbert, or dynamic
/// insertion per RTreeOptions::build), one disk page per tree node, every
/// visited node charged as one page fetch. Mutation rides the inherited
/// base+delta protocol — Compact() rebuilds the tree through the same build
/// path over the merged element set rather than updating nodes in place.
class PagedRTreeBackend : public BaseDeltaBackend {
 public:
  explicit PagedRTreeBackend(rtree::RTreeOptions options = rtree::RTreeOptions())
      : options_(options) {}

  const char* name() const override { return "R-Tree"; }

  BackendStats Stats() const override;

  /// The wrapped paged tree (tests and the compatibility shim).
  const rtree::PagedRTree& tree() const { return *tree_; }

  const rtree::RTreeOptions& options() const { return options_; }

 protected:
  Status BuildBase(const geom::ElementVec& elements) override;
  Status ResetBase() override;
  Status BaseRangeQuery(storage::Epoch read_epoch, const geom::Aabb& box,
                        storage::PoolSet* pools, ResultVisitor& visitor,
                        RangeStats* stats) const override;
  Status BaseKnnQuery(storage::Epoch read_epoch, const geom::Vec3& point,
                      size_t k, storage::PoolSet* pools,
                      std::vector<geom::KnnHit>* hits,
                      RangeStats* stats) const override;

 private:
  rtree::RTreeOptions options_;
  std::optional<rtree::PagedRTree> tree_;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_RTREE_BACKEND_H_
