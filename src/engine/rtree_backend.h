// NeuroDB — PagedRTreeBackend: the disk-resident R-tree as a QueryEngine
// backend (the paper's comparison baseline).

#ifndef NEURODB_ENGINE_RTREE_BACKEND_H_
#define NEURODB_ENGINE_RTREE_BACKEND_H_

#include <optional>

#include "engine/backend.h"
#include "rtree/paged_rtree.h"

namespace neurodb {
namespace engine {

/// Adapter wrapping rtree::PagedRTree: STR bulk load, one disk page per
/// tree node, every visited node charged as one page fetch.
class PagedRTreeBackend : public SpatialBackend {
 public:
  explicit PagedRTreeBackend(rtree::RTreeOptions options = rtree::RTreeOptions())
      : options_(options) {}

  const char* name() const override { return "R-Tree"; }

  Status Build(const geom::ElementVec& elements) override;

  Status RangeQuery(const geom::Aabb& box, storage::PoolSet* pools,
                    ResultVisitor& visitor,
                    RangeStats* stats = nullptr) const override;

  /// Best-first node traversal (rtree::PagedRTree::Knn).
  Status KnnQuery(const geom::Vec3& point, size_t k,
                  storage::PoolSet* pools, std::vector<geom::KnnHit>* hits,
                  RangeStats* stats = nullptr) const override;

  BackendStats Stats() const override;

  bool built() const { return tree_.has_value(); }

  /// The wrapped paged tree (tests and the compatibility shim).
  const rtree::PagedRTree& tree() const { return *tree_; }

  const rtree::RTreeOptions& options() const { return options_; }

 private:
  rtree::RTreeOptions options_;
  std::optional<rtree::PagedRTree> tree_;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_RTREE_BACKEND_H_
