// NeuroDB — GridBackend: an in-memory uniform grid as a QueryEngine backend.
//
// The grid is deliberately the *simplest possible* spatial index: partition
// the domain into equal cells, assign every element to the cell of its
// bounding-box center, pack the cells onto disk pages cell-major. Range
// queries scan the cell block around the query (widened by the largest
// element half-extent, so center assignment stays exact); kNN expands cell
// rings outward from the query point and stops once no unvisited cell can
// still beat the k-th best distance (KnnScanQuery keeps the original
// exhaustive scan as the test oracle). The grid's job is to be a cheap,
// independent voice in BackendChoice::kAll parity comparisons: an
// implementation so different from FLAT's crawl and the R-tree's hierarchy
// that a bug in either is very unlikely to be mirrored here (the
// differential-testing harness in tests/diff_harness.h leans on exactly
// this).

#ifndef NEURODB_ENGINE_GRID_BACKEND_H_
#define NEURODB_ENGINE_GRID_BACKEND_H_

#include <array>
#include <cstdint>
#include <vector>

#include "engine/base_delta_backend.h"

namespace neurodb {
namespace engine {

/// Grid tuning. The resolution is derived from the dataset: roughly
/// `target_per_cell` elements per occupied cell, capped per axis.
struct GridOptions {
  /// Elements per data page (253 elements ~ one 8 KiB page, as FLAT).
  size_t elems_per_page = 253;
  /// Target average elements per cell — drives cells-per-axis.
  size_t target_per_cell = 64;
  /// Hard cap on cells per axis (keeps cell metadata bounded).
  size_t max_cells_per_dim = 64;

  Status Validate() const;
};

/// Uniform-grid backend. Elements live in exactly one cell (chosen by
/// bounding-box center); queries compensate by widening the examined cell
/// block by the largest element half-extent seen at build time. Mutation
/// rides the inherited base+delta protocol; Compact() re-grids the merged
/// element set in place (same PageStore object, fresh pages).
class GridBackend : public BaseDeltaBackend {
 public:
  explicit GridBackend(GridOptions options = GridOptions())
      : options_(options) {}

  const char* name() const override { return "Grid"; }

  /// The original exhaustive page scan over the *base* layout, kept as the
  /// brute-force oracle the ring search is tested against (and a
  /// deliberately index-free parity voice for targeted tests). Base-only:
  /// pending delta records are not merged in.
  Status KnnScanQuery(const geom::Vec3& point, size_t k,
                      storage::PoolSet* pools,
                      std::vector<geom::KnnHit>* hits,
                      RangeStats* stats = nullptr) const;

  BackendStats Stats() const override;

  const GridOptions& options() const { return options_; }
  /// Cells per axis chosen at build time (x, y, z).
  const std::array<uint32_t, 3>& dims() const { return dims_; }
  size_t NumCells() const {
    return static_cast<size_t>(dims_[0]) * dims_[1] * dims_[2];
  }
  /// Cell edge lengths chosen at build time (advisor cost model).
  const geom::Vec3& cell_size() const { return cell_size_; }
  /// Largest element half-extent per axis — the query widening margin.
  const geom::Vec3& max_half_extent() const { return max_half_extent_; }

 protected:
  Status BuildBase(const geom::ElementVec& elements) override;
  Status ResetBase() override;
  Status BaseRangeQuery(storage::Epoch read_epoch, const geom::Aabb& box,
                        storage::PoolSet* pools, ResultVisitor& visitor,
                        RangeStats* stats) const override;
  /// Expanding cell-ring search: scan the query point's cell, then the
  /// shell of cells one ring further out, and so on; terminate once the
  /// k-th best distance provably covers everything outside the scanned
  /// block (accounting for the center-assignment widening margin).
  Status BaseKnnQuery(storage::Epoch read_epoch, const geom::Vec3& point,
                      size_t k, storage::PoolSet* pools,
                      std::vector<geom::KnnHit>* hits,
                      RangeStats* stats) const override;

 private:
  /// Clamped cell coordinate of a point along one axis.
  uint32_t CellCoord(float v, int axis) const;
  /// Flat cell index of a point.
  size_t CellOf(const geom::Vec3& p) const;
  /// Validation shared by the ring and scan kNN entry points.
  Status ValidateKnn(storage::PoolSet* pools,
                     std::vector<geom::KnnHit>* hits,
                     const geom::Vec3& point) const;
  /// Fetch one page and offer every element to `acc`.
  Status ScanPage(size_t page_index, storage::BufferPool* pool,
                  const geom::Vec3& point, geom::KnnAccumulator* acc,
                  RangeStats* stats) const;

  GridOptions options_;

  geom::Aabb domain_;
  std::array<uint32_t, 3> dims_ = {1, 1, 1};
  geom::Vec3 cell_size_{1, 1, 1};
  /// Largest element half-extent per axis — the query widening margin.
  geom::Vec3 max_half_extent_{0, 0, 0};

  /// Element order is cell-major; cell c owns packed slots
  /// [cell_start_[c], cell_start_[c + 1]).
  std::vector<uint32_t> cell_start_;
  /// Data pages in pack order; packed slot s lives on page s / elems_per_page.
  std::vector<storage::PageId> page_ids_;
  size_t num_elements_ = 0;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_GRID_BACKEND_H_
