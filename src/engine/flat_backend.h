// NeuroDB — FlatBackend: the FLAT index as a QueryEngine backend.

#ifndef NEURODB_ENGINE_FLAT_BACKEND_H_
#define NEURODB_ENGINE_FLAT_BACKEND_H_

#include <optional>

#include "engine/backend.h"
#include "flat/flat_index.h"

namespace neurodb {
namespace engine {

/// Adapter wrapping flat::FlatIndex. Owns the crawl-page store; the seed
/// tree and neighborhood graph stay memory resident (FLAT's design).
class FlatBackend : public SpatialBackend {
 public:
  explicit FlatBackend(flat::FlatOptions options = flat::FlatOptions())
      : options_(options) {}

  const char* name() const override { return "FLAT"; }

  Status Build(const geom::ElementVec& elements) override;

  Status RangeQuery(const geom::Aabb& box, storage::PoolSet* pools,
                    ResultVisitor& visitor,
                    RangeStats* stats = nullptr) const override;

  /// Expanding-ring crawl (flat::FlatIndex::Knn).
  Status KnnQuery(const geom::Vec3& point, size_t k,
                  storage::PoolSet* pools, std::vector<geom::KnnHit>* hits,
                  RangeStats* stats = nullptr) const override;

  BackendStats Stats() const override;

  bool built() const { return index_.has_value(); }

  /// The wrapped index — SCOUT sessions crawl and prefetch through it.
  const flat::FlatIndex& index() const { return *index_; }

  const flat::FlatOptions& options() const { return options_; }

 private:
  flat::FlatOptions options_;
  std::optional<flat::FlatIndex> index_;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_FLAT_BACKEND_H_
