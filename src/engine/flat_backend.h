// NeuroDB — FlatBackend: the FLAT index as a QueryEngine backend.

#ifndef NEURODB_ENGINE_FLAT_BACKEND_H_
#define NEURODB_ENGINE_FLAT_BACKEND_H_

#include <optional>
#include <vector>

#include "engine/base_delta_backend.h"
#include "flat/flat_index.h"

namespace neurodb {
namespace engine {

/// Adapter wrapping flat::FlatIndex. Owns the crawl-page store; the seed
/// tree and neighborhood graph stay memory resident (FLAT's design). The
/// immutable crawl layout is the base side of the base+delta protocol —
/// updates accumulate in the inherited DeltaIndex until Compact() re-crawls
/// the merged element set onto a reset store.
class FlatBackend : public BaseDeltaBackend {
 public:
  explicit FlatBackend(flat::FlatOptions options = flat::FlatOptions())
      : options_(options) {}

  const char* name() const override { return "FLAT"; }

  BackendStats Stats() const override;

  /// The wrapped index — SCOUT sessions crawl and prefetch through it.
  /// Only valid when has_index(); an engine built empty (and populated
  /// purely through updates) has no crawl layout until the first Compact.
  const flat::FlatIndex& index() const { return *index_; }

  /// True when a built FLAT crawl layout exists (non-empty base).
  bool has_index() const { return index_.has_value(); }

  const flat::FlatOptions& options() const { return options_; }

 protected:
  Status BuildBase(const geom::ElementVec& elements) override;
  Status ResetBase() override;
  Status BaseRangeQuery(storage::Epoch read_epoch, const geom::Aabb& box,
                        storage::PoolSet* pools, ResultVisitor& visitor,
                        RangeStats* stats) const override;
  Status BaseKnnQuery(storage::Epoch read_epoch, const geom::Vec3& point,
                      size_t k, storage::PoolSet* pools,
                      std::vector<geom::KnnHit>* hits,
                      RangeStats* stats) const override;

 private:
  flat::FlatOptions options_;
  std::optional<flat::FlatIndex> index_;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_FLAT_BACKEND_H_
