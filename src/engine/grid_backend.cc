#include "engine/grid_backend.h"

#include <algorithm>
#include <cmath>

#include "storage/pagination.h"

namespace neurodb {
namespace engine {

using geom::Aabb;
using geom::Vec3;

Status GridOptions::Validate() const {
  if (elems_per_page == 0) {
    return Status::InvalidArgument("GridOptions: elems_per_page == 0");
  }
  if (target_per_cell == 0) {
    return Status::InvalidArgument("GridOptions: target_per_cell == 0");
  }
  if (max_cells_per_dim == 0) {
    return Status::InvalidArgument("GridOptions: max_cells_per_dim == 0");
  }
  return Status::OK();
}

uint32_t GridBackend::CellCoord(float v, int axis) const {
  float rel = (v - domain_.min[axis]) / cell_size_[axis];
  if (!(rel > 0.0f)) return 0;
  // Clamp before the cast: huge (but valid) query boxes would otherwise
  // overflow the float-to-uint32 conversion.
  if (rel >= static_cast<float>(dims_[axis])) return dims_[axis] - 1;
  return static_cast<uint32_t>(rel);
}

size_t GridBackend::CellOf(const Vec3& p) const {
  size_t cx = CellCoord(p.x, 0);
  size_t cy = CellCoord(p.y, 1);
  size_t cz = CellCoord(p.z, 2);
  return (cz * dims_[1] + cy) * dims_[0] + cx;
}

Status GridBackend::Build(const geom::ElementVec& elements) {
  if (built_) {
    return Status::AlreadyExists("GridBackend: already built");
  }
  NEURODB_RETURN_NOT_OK(options_.Validate());

  num_elements_ = elements.size();
  domain_ = Aabb();
  for (const auto& e : elements) domain_.Extend(e.bounds);

  // Resolution: ~target_per_cell elements per cell, cubic cells, capped.
  size_t target_cells =
      std::max<size_t>(1, elements.size() / options_.target_per_cell);
  uint32_t per_dim = static_cast<uint32_t>(
      std::lround(std::cbrt(static_cast<double>(target_cells))));
  per_dim = std::clamp<uint32_t>(
      per_dim, 1, static_cast<uint32_t>(options_.max_cells_per_dim));
  dims_ = {per_dim, per_dim, per_dim};

  Vec3 extent = elements.empty() ? Vec3(1, 1, 1) : domain_.Extent();
  for (int axis = 0; axis < 3; ++axis) {
    float size = extent[axis] / static_cast<float>(dims_[axis]);
    cell_size_[axis] = size > 0.0f ? size : 1.0f;
  }

  max_half_extent_ = Vec3(0, 0, 0);
  for (const auto& e : elements) {
    Vec3 half = e.bounds.Extent() * 0.5f;
    max_half_extent_ =
        Vec3(std::max(max_half_extent_.x, half.x),
             std::max(max_half_extent_.y, half.y),
             std::max(max_half_extent_.z, half.z));
  }

  // Counting sort into cell-major order.
  std::vector<uint32_t> counts(NumCells() + 1, 0);
  for (const auto& e : elements) ++counts[CellOf(e.bounds.Center()) + 1];
  for (size_t c = 1; c < counts.size(); ++c) counts[c] += counts[c - 1];
  cell_start_ = counts;  // counts is now the exclusive prefix sum

  std::vector<uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  geom::ElementVec packed(elements.size());
  for (const auto& e : elements) {
    packed[cursor[CellOf(e.bounds.Center())]++] = e;
  }

  // Pack the cell-major order onto pages (kInput keeps our order).
  NEURODB_ASSIGN_OR_RETURN(
      storage::Layout layout,
      storage::PaginateElements(packed, &store_, options_.elems_per_page,
                                storage::PackOrder::kInput));
  page_ids_ = std::move(layout.page_ids);

  built_ = true;
  return Status::OK();
}

Status GridBackend::RangeQuery(const Aabb& box, storage::BufferPool* pool,
                               ResultVisitor& visitor,
                               RangeStats* stats) const {
  if (!built_) {
    return Status::InvalidArgument("GridBackend: not built");
  }
  if (pool == nullptr) {
    return Status::InvalidArgument("GridBackend::RangeQuery: null pool");
  }
  if (page_ids_.empty() || !box.Intersects(domain_)) return Status::OK();

  // Any element intersecting `box` has its center — and therefore its cell —
  // inside `box` widened by the largest half-extent.
  uint32_t lo[3], hi[3];
  for (int axis = 0; axis < 3; ++axis) {
    lo[axis] = CellCoord(box.min[axis] - max_half_extent_[axis], axis);
    hi[axis] = CellCoord(box.max[axis] + max_half_extent_[axis], axis);
  }

  // Candidate pages: every page holding a slot of a cell in the block.
  // Pages are shared across cell boundaries, so dedup with a bitmap and
  // scan each page once; off-cell elements fail the bounds test.
  std::vector<char> wanted(page_ids_.size(), 0);
  for (uint32_t cz = lo[2]; cz <= hi[2]; ++cz) {
    for (uint32_t cy = lo[1]; cy <= hi[1]; ++cy) {
      for (uint32_t cx = lo[0]; cx <= hi[0]; ++cx) {
        size_t cell = (static_cast<size_t>(cz) * dims_[1] + cy) * dims_[0] + cx;
        uint32_t first = cell_start_[cell];
        uint32_t end = cell_start_[cell + 1];
        if (first == end) continue;
        size_t first_page = first / options_.elems_per_page;
        size_t last_page = (end - 1) / options_.elems_per_page;
        for (size_t page = first_page; page <= last_page; ++page) {
          wanted[page] = 1;
        }
      }
    }
  }

  for (size_t page_index = 0; page_index < page_ids_.size(); ++page_index) {
    if (!wanted[page_index]) continue;
    auto page = pool->Fetch(page_ids_[page_index]);
    if (!page.ok()) return page.status();
    if (stats != nullptr) ++stats->pages_read;
    for (const auto& e : (*page)->elements) {
      if (stats != nullptr) ++stats->elements_scanned;
      if (e.bounds.Intersects(box)) {
        visitor.Visit(e.id, e.bounds);
        if (stats != nullptr) ++stats->results;
      }
    }
  }
  return Status::OK();
}

Status GridBackend::KnnQuery(const Vec3& point, size_t k,
                             storage::BufferPool* pool,
                             std::vector<geom::KnnHit>* hits,
                             RangeStats* stats) const {
  if (!built_) {
    return Status::InvalidArgument("GridBackend: not built");
  }
  if (pool == nullptr) {
    return Status::InvalidArgument("GridBackend::KnnQuery: null pool");
  }
  if (hits == nullptr) {
    return Status::InvalidArgument("GridBackend::KnnQuery: null output");
  }
  if (!geom::IsFinitePoint(point)) {
    return Status::InvalidArgument("GridBackend::KnnQuery: non-finite point");
  }
  hits->clear();
  if (k == 0) return Status::OK();

  // Exhaustive scan: every page, every element. Deliberately index-free so
  // the answer cannot share a traversal bug with FLAT or the R-tree.
  geom::KnnAccumulator acc(k);
  for (storage::PageId page_id : page_ids_) {
    auto page = pool->Fetch(page_id);
    if (!page.ok()) return page.status();
    if (stats != nullptr) ++stats->pages_read;
    for (const auto& e : (*page)->elements) {
      if (stats != nullptr) ++stats->elements_scanned;
      acc.Offer(e.id, geom::KnnDistance(point, e.bounds));
    }
  }
  *hits = acc.TakeSorted();
  if (stats != nullptr) stats->results = hits->size();
  return Status::OK();
}

BackendStats GridBackend::Stats() const {
  BackendStats stats;
  if (built_) {
    stats.index_pages = page_ids_.size();
    stats.metadata_bytes = cell_start_.capacity() * sizeof(uint32_t) +
                           page_ids_.capacity() * sizeof(storage::PageId);
  }
  return stats;
}

}  // namespace engine
}  // namespace neurodb
