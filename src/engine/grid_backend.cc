#include "engine/grid_backend.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "storage/pagination.h"

namespace neurodb {
namespace engine {

using geom::Aabb;
using geom::Vec3;

Status GridOptions::Validate() const {
  if (elems_per_page == 0) {
    return Status::InvalidArgument("GridOptions: elems_per_page == 0");
  }
  if (target_per_cell == 0) {
    return Status::InvalidArgument("GridOptions: target_per_cell == 0");
  }
  if (max_cells_per_dim == 0) {
    return Status::InvalidArgument("GridOptions: max_cells_per_dim == 0");
  }
  return Status::OK();
}

uint32_t GridBackend::CellCoord(float v, int axis) const {
  float rel = (v - domain_.min[axis]) / cell_size_[axis];
  if (!(rel > 0.0f)) return 0;
  // Clamp before the cast: huge (but valid) query boxes would otherwise
  // overflow the float-to-uint32 conversion.
  if (rel >= static_cast<float>(dims_[axis])) return dims_[axis] - 1;
  return static_cast<uint32_t>(rel);
}

size_t GridBackend::CellOf(const Vec3& p) const {
  size_t cx = CellCoord(p.x, 0);
  size_t cy = CellCoord(p.y, 1);
  size_t cz = CellCoord(p.z, 2);
  return (cz * dims_[1] + cy) * dims_[0] + cx;
}

Status GridBackend::BuildBase(const geom::ElementVec& elements) {
  NEURODB_RETURN_NOT_OK(options_.Validate());

  num_elements_ = elements.size();
  domain_ = Aabb();
  for (const auto& e : elements) domain_.Extend(e.bounds);

  // Resolution: ~target_per_cell elements per cell, cubic cells, capped.
  size_t target_cells =
      std::max<size_t>(1, elements.size() / options_.target_per_cell);
  uint32_t per_dim = static_cast<uint32_t>(
      std::lround(std::cbrt(static_cast<double>(target_cells))));
  per_dim = std::clamp<uint32_t>(
      per_dim, 1, static_cast<uint32_t>(options_.max_cells_per_dim));
  dims_ = {per_dim, per_dim, per_dim};

  Vec3 extent = elements.empty() ? Vec3(1, 1, 1) : domain_.Extent();
  for (int axis = 0; axis < 3; ++axis) {
    float size = extent[axis] / static_cast<float>(dims_[axis]);
    cell_size_[axis] = size > 0.0f ? size : 1.0f;
  }

  max_half_extent_ = Vec3(0, 0, 0);
  for (const auto& e : elements) {
    Vec3 half = e.bounds.Extent() * 0.5f;
    max_half_extent_ =
        Vec3(std::max(max_half_extent_.x, half.x),
             std::max(max_half_extent_.y, half.y),
             std::max(max_half_extent_.z, half.z));
  }

  // Counting sort into cell-major order.
  std::vector<uint32_t> counts(NumCells() + 1, 0);
  for (const auto& e : elements) ++counts[CellOf(e.bounds.Center()) + 1];
  for (size_t c = 1; c < counts.size(); ++c) counts[c] += counts[c - 1];
  cell_start_ = counts;  // counts is now the exclusive prefix sum

  std::vector<uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  geom::ElementVec packed(elements.size());
  for (const auto& e : elements) {
    packed[cursor[CellOf(e.bounds.Center())]++] = e;
  }

  // Pack the cell-major order onto pages (kInput keeps our order).
  NEURODB_ASSIGN_OR_RETURN(
      storage::Layout layout,
      storage::PaginateElements(packed, store_, options_.elems_per_page,
                                storage::PackOrder::kInput));
  page_ids_ = std::move(layout.page_ids);
  return Status::OK();
}

Status GridBackend::ResetBase() {
  domain_ = Aabb();
  dims_ = {1, 1, 1};
  cell_size_ = Vec3(1, 1, 1);
  max_half_extent_ = Vec3(0, 0, 0);
  cell_start_.clear();
  page_ids_.clear();
  num_elements_ = 0;
  store_->Reset();
  return Status::OK();
}

Status GridBackend::BaseRangeQuery(storage::Epoch /*read_epoch*/,
                                   const Aabb& box, storage::PoolSet* pools,
                                   ResultVisitor& visitor,
                                   RangeStats* stats) const {
  if (pools == nullptr) {
    return Status::InvalidArgument("GridBackend::RangeQuery: null pool set");
  }
  storage::BufferPool* pool = pools->pool(0);
  if (page_ids_.empty() || !box.Intersects(domain_)) return Status::OK();

  // Any element intersecting `box` has its center — and therefore its cell —
  // inside `box` widened by the largest half-extent.
  uint32_t lo[3], hi[3];
  for (int axis = 0; axis < 3; ++axis) {
    lo[axis] = CellCoord(box.min[axis] - max_half_extent_[axis], axis);
    hi[axis] = CellCoord(box.max[axis] + max_half_extent_[axis], axis);
  }

  // Candidate pages: every page holding a slot of a cell in the block.
  // Pages are shared across cell boundaries, so dedup with a bitmap and
  // scan each page once; off-cell elements fail the bounds test.
  std::vector<char> wanted(page_ids_.size(), 0);
  for (uint32_t cz = lo[2]; cz <= hi[2]; ++cz) {
    for (uint32_t cy = lo[1]; cy <= hi[1]; ++cy) {
      for (uint32_t cx = lo[0]; cx <= hi[0]; ++cx) {
        size_t cell = (static_cast<size_t>(cz) * dims_[1] + cy) * dims_[0] + cx;
        uint32_t first = cell_start_[cell];
        uint32_t end = cell_start_[cell + 1];
        if (first == end) continue;
        size_t first_page = first / options_.elems_per_page;
        size_t last_page = (end - 1) / options_.elems_per_page;
        for (size_t page = first_page; page <= last_page; ++page) {
          wanted[page] = 1;
        }
      }
    }
  }

  for (size_t page_index = 0; page_index < page_ids_.size(); ++page_index) {
    if (!wanted[page_index]) continue;
    auto page = pool->Fetch(page_ids_[page_index]);
    if (!page.ok()) return page.status();
    if (stats != nullptr) ++stats->pages_read;
    for (const auto& e : (*page)->elements) {
      if (stats != nullptr) ++stats->elements_scanned;
      if (e.bounds.Intersects(box)) {
        visitor.Visit(e.id, e.bounds);
        if (stats != nullptr) ++stats->results;
      }
    }
  }
  return Status::OK();
}

Status GridBackend::ValidateKnn(storage::PoolSet* pools,
                                std::vector<geom::KnnHit>* hits,
                                const Vec3& point) const {
  if (!built_) {
    return Status::InvalidArgument("GridBackend: not built");
  }
  if (pools == nullptr) {
    return Status::InvalidArgument("GridBackend::KnnQuery: null pool set");
  }
  if (hits == nullptr) {
    return Status::InvalidArgument("GridBackend::KnnQuery: null output");
  }
  if (!geom::IsFinitePoint(point)) {
    return Status::InvalidArgument("GridBackend::KnnQuery: non-finite point");
  }
  return Status::OK();
}

Status GridBackend::ScanPage(size_t page_index, storage::BufferPool* pool,
                             const Vec3& point, geom::KnnAccumulator* acc,
                             RangeStats* stats) const {
  auto page = pool->Fetch(page_ids_[page_index]);
  if (!page.ok()) return page.status();
  if (stats != nullptr) ++stats->pages_read;
  for (const auto& e : (*page)->elements) {
    if (stats != nullptr) ++stats->elements_scanned;
    acc->Offer(e.id, geom::KnnDistance(point, e.bounds));
  }
  return Status::OK();
}

Status GridBackend::BaseKnnQuery(storage::Epoch /*read_epoch*/,
                                 const Vec3& point, size_t k,
                                 storage::PoolSet* pools,
                                 std::vector<geom::KnnHit>* hits,
                                 RangeStats* stats) const {
  NEURODB_RETURN_NOT_OK(ValidateKnn(pools, hits, point));
  hits->clear();
  if (k == 0 || page_ids_.empty()) return Status::OK();
  storage::BufferPool* pool = pools->pool(0);

  const int64_t cx = CellCoord(point.x, 0);
  const int64_t cy = CellCoord(point.y, 1);
  const int64_t cz = CellCoord(point.z, 2);
  const int64_t dim_x = dims_[0], dim_y = dims_[1], dim_z = dims_[2];

  geom::KnnAccumulator acc(k);
  std::vector<char> page_seen(page_ids_.size(), 0);

  // Scan every not-yet-seen page holding a slot of cell (x, y, z).
  auto scan_cell = [&](int64_t x, int64_t y, int64_t z) -> Status {
    size_t cell = (static_cast<size_t>(z) * dims_[1] + y) * dims_[0] + x;
    uint32_t first = cell_start_[cell];
    uint32_t end = cell_start_[cell + 1];
    if (first == end) return Status::OK();
    size_t first_page = first / options_.elems_per_page;
    size_t last_page = (end - 1) / options_.elems_per_page;
    for (size_t page = first_page; page <= last_page; ++page) {
      if (page_seen[page]) continue;
      page_seen[page] = 1;
      NEURODB_RETURN_NOT_OK(ScanPage(page, pool, point, &acc, stats));
    }
    return Status::OK();
  };

  for (int64_t r = 0;; ++r) {
    // The shell of cells at Chebyshev radius r around (cx, cy, cz),
    // clamped to the grid. Interior cells were handled by earlier rings.
    const int64_t zlo = cz - r, zhi = cz + r;
    const int64_t ylo = cy - r, yhi = cy + r;
    const int64_t xlo = cx - r, xhi = cx + r;
    for (int64_t z = std::max<int64_t>(zlo, 0);
         z <= std::min(zhi, dim_z - 1); ++z) {
      const bool z_edge = (z == zlo || z == zhi);
      for (int64_t y = std::max<int64_t>(ylo, 0);
           y <= std::min(yhi, dim_y - 1); ++y) {
        if (z_edge || y == ylo || y == yhi) {
          for (int64_t x = std::max<int64_t>(xlo, 0);
               x <= std::min(xhi, dim_x - 1); ++x) {
            NEURODB_RETURN_NOT_OK(scan_cell(x, y, z));
          }
        } else {
          if (xlo >= 0) NEURODB_RETURN_NOT_OK(scan_cell(xlo, y, z));
          if (xhi < dim_x) NEURODB_RETURN_NOT_OK(scan_cell(xhi, y, z));
        }
      }
    }

    // Done when the block [c - r, c + r] covers the whole grid...
    if (xlo <= 0 && ylo <= 0 && zlo <= 0 && xhi >= dim_x - 1 &&
        yhi >= dim_y - 1 && zhi >= dim_z - 1) {
      break;
    }
    // ... or when nothing outside the block can still improve the answer.
    // An element beyond a face of the block has its center beyond that
    // face's cell-boundary plane, so its box is at least (plane gap -
    // widening margin) away; the bound over all remaining elements is the
    // minimum over the six faces (domain-clamped faces have no cells
    // beyond and contribute nothing). The per-axis slack absorbs float
    // rounding between CellCoord's binning and the plane arithmetic here.
    // Prune strictly greater only: at equal distance a smaller id could
    // still enter the answer set (geom/knn.h).
    if (acc.Full()) {
      double bound = std::numeric_limits<double>::infinity();
      const double point_coord[3] = {point.x, point.y, point.z};
      const int64_t block_lo[3] = {xlo, ylo, zlo};
      const int64_t block_hi[3] = {xhi, yhi, zhi};
      const int64_t dim[3] = {dim_x, dim_y, dim_z};
      for (int axis = 0; axis < 3; ++axis) {
        const double cell = cell_size_[axis];
        const double slack = 1e-3 * cell;
        const double margin = max_half_extent_[axis] + slack;
        if (block_lo[axis] > 0) {
          double plane = domain_.min[axis] +
                         static_cast<double>(block_lo[axis]) * cell;
          bound = std::min(
              bound, std::max(0.0, (point_coord[axis] - plane) - margin));
        }
        if (block_hi[axis] + 1 < dim[axis]) {
          double plane = domain_.min[axis] +
                         static_cast<double>(block_hi[axis] + 1) * cell;
          bound = std::min(
              bound, std::max(0.0, (plane - point_coord[axis]) - margin));
        }
      }
      if (bound > acc.WorstDistance()) break;
    }
  }

  *hits = acc.TakeSorted();
  if (stats != nullptr) stats->results = hits->size();
  return Status::OK();
}

Status GridBackend::KnnScanQuery(const Vec3& point, size_t k,
                                 storage::PoolSet* pools,
                                 std::vector<geom::KnnHit>* hits,
                                 RangeStats* stats) const {
  NEURODB_RETURN_NOT_OK(ValidateKnn(pools, hits, point));
  hits->clear();
  if (k == 0) return Status::OK();
  storage::BufferPool* pool = pools->pool(0);

  // Exhaustive scan: every page, every element. Deliberately index-free so
  // the answer cannot share a traversal bug with the ring search (or with
  // FLAT and the R-tree).
  geom::KnnAccumulator acc(k);
  for (size_t page_index = 0; page_index < page_ids_.size(); ++page_index) {
    NEURODB_RETURN_NOT_OK(ScanPage(page_index, pool, point, &acc, stats));
  }
  *hits = acc.TakeSorted();
  if (stats != nullptr) stats->results = hits->size();
  return Status::OK();
}

BackendStats GridBackend::Stats() const {
  BackendStats stats;
  if (built_) {
    stats.index_pages = page_ids_.size();
    stats.metadata_bytes = cell_start_.capacity() * sizeof(uint32_t) +
                           page_ids_.capacity() * sizeof(storage::PageId) +
                           MutationMetadataBytes();
  }
  stats.io = IoTotals();
  return stats;
}

}  // namespace engine
}  // namespace neurodb
