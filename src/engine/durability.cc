#include "engine/durability.h"

#include <algorithm>

#include "storage/disk/format.h"

namespace neurodb {
namespace engine {

namespace {

constexpr size_t kOpBytes = 40;
constexpr size_t kElementBytes = 32;

std::string BaseName(const std::string& dir) { return dir + "/base.ndb"; }
std::string WalName(const std::string& dir) { return dir + "/wal.ndb"; }

// Backend names become file names; keep them portable.
std::string SanitizeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

Status DurabilityOptions::Validate() const {
  if (!enabled()) return Status::OK();
  if (block_bytes < 64 || block_bytes > (1u << 24)) {
    return Status::InvalidArgument(
        "DurabilityOptions: block_bytes out of range");
  }
  if (sync == SyncPolicy::kGroup && group_max_batches == 0) {
    return Status::InvalidArgument(
        "DurabilityOptions: kGroup requires group_max_batches > 0");
  }
  return Status::OK();
}

std::vector<uint8_t> EncodeUpdateBatch(
    std::span<const UpdateRequest> updates) {
  std::vector<uint8_t> out;
  out.reserve(8 + updates.size() * kOpBytes);
  storage::EncodeU32(&out, kWalKindUpdateBatch);
  storage::EncodeU32(&out, static_cast<uint32_t>(updates.size()));
  for (const UpdateRequest& u : updates) {
    storage::EncodeU32(&out, static_cast<uint32_t>(u.kind));
    storage::EncodeU32(&out, 0);
    storage::EncodeU64(&out, u.id);
    storage::EncodeF32(&out, u.bounds.min.x);
    storage::EncodeF32(&out, u.bounds.min.y);
    storage::EncodeF32(&out, u.bounds.min.z);
    storage::EncodeF32(&out, u.bounds.max.x);
    storage::EncodeF32(&out, u.bounds.max.y);
    storage::EncodeF32(&out, u.bounds.max.z);
  }
  return out;
}

Result<std::vector<UpdateRequest>> DecodeUpdateBatch(
    const std::vector<uint8_t>& payload) {
  if (payload.size() < 8) {
    return Status::Corruption("update batch payload shorter than its header");
  }
  if (storage::GetU32(payload.data()) != kWalKindUpdateBatch) {
    return Status::Corruption("payload is not an update batch record");
  }
  uint32_t count = storage::GetU32(payload.data() + 4);
  if (payload.size() != 8 + static_cast<size_t>(count) * kOpBytes) {
    return Status::Corruption("update batch payload length mismatch");
  }
  std::vector<UpdateRequest> out;
  out.reserve(count);
  const uint8_t* p = payload.data() + 8;
  for (uint32_t i = 0; i < count; ++i, p += kOpBytes) {
    uint32_t kind = storage::GetU32(p);
    if (kind > static_cast<uint32_t>(UpdateKind::kMove)) {
      return Status::Corruption("update batch has unknown op kind " +
                                std::to_string(kind));
    }
    UpdateRequest u;
    u.kind = static_cast<UpdateKind>(kind);
    u.id = storage::GetU64(p + 8);
    u.bounds.min.x = storage::GetF32(p + 16);
    u.bounds.min.y = storage::GetF32(p + 20);
    u.bounds.min.z = storage::GetF32(p + 24);
    u.bounds.max.x = storage::GetF32(p + 28);
    u.bounds.max.y = storage::GetF32(p + 32);
    u.bounds.max.z = storage::GetF32(p + 36);
    out.push_back(u);
  }
  return out;
}

std::vector<uint8_t> EncodeLoadElements(
    std::span<const geom::SpatialElement> elements) {
  std::vector<uint8_t> out;
  out.reserve(8 + elements.size() * kElementBytes);
  storage::EncodeU32(&out, kWalKindLoadElements);
  storage::EncodeU32(&out, static_cast<uint32_t>(elements.size()));
  for (const geom::SpatialElement& e : elements) {
    storage::EncodeU64(&out, e.id);
    storage::EncodeF32(&out, e.bounds.min.x);
    storage::EncodeF32(&out, e.bounds.min.y);
    storage::EncodeF32(&out, e.bounds.min.z);
    storage::EncodeF32(&out, e.bounds.max.x);
    storage::EncodeF32(&out, e.bounds.max.y);
    storage::EncodeF32(&out, e.bounds.max.z);
  }
  return out;
}

Result<geom::ElementVec> DecodeLoadElements(
    const std::vector<uint8_t>& payload) {
  if (payload.size() < 8) {
    return Status::Corruption("load payload shorter than its header");
  }
  if (storage::GetU32(payload.data()) != kWalKindLoadElements) {
    return Status::Corruption("payload is not a load record");
  }
  uint32_t count = storage::GetU32(payload.data() + 4);
  if (payload.size() != 8 + static_cast<size_t>(count) * kElementBytes) {
    return Status::Corruption("load payload length mismatch");
  }
  geom::ElementVec out;
  out.reserve(count);
  const uint8_t* p = payload.data() + 8;
  for (uint32_t i = 0; i < count; ++i, p += kElementBytes) {
    geom::SpatialElement e;
    e.id = storage::GetU64(p);
    e.bounds.min.x = storage::GetF32(p + 8);
    e.bounds.min.y = storage::GetF32(p + 12);
    e.bounds.min.z = storage::GetF32(p + 16);
    e.bounds.max.x = storage::GetF32(p + 20);
    e.bounds.max.y = storage::GetF32(p + 24);
    e.bounds.max.z = storage::GetF32(p + 28);
    out.push_back(e);
  }
  return out;
}

std::vector<uint8_t> EncodeEpochBump() {
  std::vector<uint8_t> out;
  storage::EncodeU32(&out, kWalKindEpochBump);
  return out;
}

Result<uint32_t> WalPayloadKind(const std::vector<uint8_t>& payload) {
  if (payload.size() < 4) {
    return Status::Corruption("WAL payload shorter than its kind tag");
  }
  return storage::GetU32(payload.data());
}

CheckpointStream::CheckpointStream(storage::PageFile* base, size_t per_page)
    : base_(base), per_page_(per_page) {
  chunk_.reserve(per_page_);
  base_->BeginSequentialAllocation();
}

CheckpointStream::~CheckpointStream() {
  // An abandoned stream (error path) must not leave the base allocating
  // sequentially forever.
  base_->EndSequentialAllocation();
}

Status CheckpointStream::FlushChunk() {
  if (chunk_.empty()) return Status::OK();
  NEURODB_RETURN_NOT_OK(base_->WritePage(
      next_page_, storage::EncodePageImage(next_page_, chunk_)));
  ++next_page_;
  ++pages_written_;
  chunk_.clear();
  return Status::OK();
}

Status CheckpointStream::Append(const geom::SpatialElement& element) {
  if (finished_) {
    return Status::InvalidArgument("CheckpointStream: append after Finish");
  }
  chunk_.push_back(element);
  ++elements_written_;
  if (chunk_.size() > max_buffered_) max_buffered_ = chunk_.size();
  if (chunk_.size() >= per_page_) return FlushChunk();
  return Status::OK();
}

Status CheckpointStream::Finish() {
  if (finished_) return Status::OK();
  NEURODB_RETURN_NOT_OK(FlushChunk());
  base_->EndSequentialAllocation();
  finished_ = true;
  return Status::OK();
}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Create(
    const DurabilityOptions& options) {
  NEURODB_RETURN_NOT_OK(options.Validate());
  storage::FileSystem* fs =
      options.fs ? options.fs : storage::DefaultFileSystem();
  NEURODB_RETURN_NOT_OK(fs->CreateDir(options.dir));
  std::unique_ptr<DurabilityManager> dm(
      new DurabilityManager(options.dir, options.block_bytes, fs));

  auto base = storage::PageFile::Create(fs, BaseName(dm->dir_),
                                        options.block_bytes);
  NEURODB_RETURN_NOT_OK(base.status());
  dm->base_ = std::move(*base);

  // A stale WAL from a previous directory incarnation must not replay into
  // the fresh base; a stale cut side file is a crashed CutPrefix's orphan.
  NEURODB_RETURN_NOT_OK(fs->Remove(WalName(dm->dir_)));
  NEURODB_RETURN_NOT_OK(
      fs->Remove(storage::WriteAheadLog::CutSidePath(WalName(dm->dir_))));
  auto wal = storage::WriteAheadLog::OpenOrCreate(fs, WalName(dm->dir_));
  NEURODB_RETURN_NOT_OK(wal.status());
  dm->wal_ = std::move(*wal);
  return dm;
}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Attach(
    const DurabilityOptions& options) {
  NEURODB_RETURN_NOT_OK(options.Validate());
  storage::FileSystem* fs =
      options.fs ? options.fs : storage::DefaultFileSystem();
  if (!fs->Exists(BaseName(options.dir))) {
    return Status::NotFound("DurabilityManager: '" + options.dir +
                            "' has no base.ndb — not a data directory");
  }
  std::unique_ptr<DurabilityManager> dm(
      new DurabilityManager(options.dir, options.block_bytes, fs));

  auto base = storage::PageFile::Open(fs, BaseName(dm->dir_));
  NEURODB_RETURN_NOT_OK(base.status());
  dm->base_ = std::move(*base);

  // A crashed CutPrefix may have left its side file behind; the rename
  // never happened, so wal.ndb is authoritative and the orphan is noise.
  NEURODB_RETURN_NOT_OK(
      fs->Remove(storage::WriteAheadLog::CutSidePath(WalName(dm->dir_))));
  auto wal = storage::WriteAheadLog::OpenOrCreate(fs, WalName(dm->dir_));
  NEURODB_RETURN_NOT_OK(wal.status());
  dm->wal_ = std::move(*wal);
  return dm;
}

Result<geom::ElementVec> DurabilityManager::LoadBase(
    uint64_t window_bytes) const {
  geom::ElementVec out;
  NEURODB_RETURN_NOT_OK(StreamBase(
      [&out](std::span<const geom::SpatialElement> chunk) {
        out.insert(out.end(), chunk.begin(), chunk.end());
        return Status::OK();
      },
      window_bytes));
  return out;
}

Status DurabilityManager::StreamBase(
    const std::function<Status(std::span<const geom::SpatialElement>)>& fn,
    uint64_t window_bytes, storage::PageFile::ScanStats* scan_stats) const {
  return base_->ScanPages(
      [&](storage::PageId id, const uint8_t* data, size_t size) -> Status {
        auto page = storage::DecodePageImage(data, size, id);
        NEURODB_RETURN_NOT_OK(page.status());
        return fn(std::span<const geom::SpatialElement>(page->elements));
      },
      window_bytes, scan_stats);
}

Status DurabilityManager::LogUpdates(storage::Epoch epoch,
                                     std::span<const UpdateRequest> updates,
                                     bool sync) {
  return wal_->Append(epoch, EncodeUpdateBatch(updates), sync);
}

Status DurabilityManager::LogUpdateGroup(
    std::span<const storage::WriteAheadLog::PendingRecord> records) {
  return wal_->AppendBatch(records, /*sync=*/true);
}

Status DurabilityManager::LogEpochBump(storage::Epoch epoch) {
  return wal_->Append(epoch, EncodeEpochBump(), /*sync=*/true);
}

Status DurabilityManager::LogLoad(
    storage::Epoch epoch, std::span<const geom::SpatialElement> elements) {
  return wal_->Append(epoch, EncodeLoadElements(elements));
}

Status DurabilityManager::CheckpointBase(const geom::ElementVec& live,
                                         storage::Epoch epoch) {
  auto stream = BeginCheckpoint();
  NEURODB_RETURN_NOT_OK(stream.status());
  for (const geom::SpatialElement& element : live) {
    NEURODB_RETURN_NOT_OK((*stream)->Append(element));
  }
  NEURODB_RETURN_NOT_OK((*stream)->Finish());
  // The caller's live set is everything — the whole log is covered.
  return CommitCheckpoint(epoch, wal_->end_offset());
}

Result<std::unique_ptr<CheckpointStream>> DurabilityManager::BeginCheckpoint() {
  // Copy-on-write: Clear only *stages* the removal of the committed pages;
  // until CommitCheckpoint's Sync they stay on disk and a crash recovers
  // the previous checkpoint.
  base_->Clear();
  return std::unique_ptr<CheckpointStream>(new CheckpointStream(
      base_.get(), storage::ElementsPerPage(base_->block_bytes())));
}

Status DurabilityManager::CommitCheckpoint(storage::Epoch epoch,
                                           uint64_t wal_cut_offset) {
  // PageFile::Sync fsyncs the whole file before committing the header, so
  // every streamed page is durable before the header points at it.
  NEURODB_RETURN_NOT_OK(base_->Sync(epoch));
  // Only once the new base is committed may the log shrink; the reverse
  // order could lose acknowledged batches. Records appended after the
  // snapshot was pinned (offset >= wal_cut_offset) survive the cut.
  return wal_->CutPrefix(wal_cut_offset);
}

Status DurabilityManager::Replay(
    const std::function<Status(storage::Epoch,
                               const std::vector<UpdateRequest>&)>& fn,
    storage::WriteAheadLog::ReplayStats* stats,
    const std::function<Status(storage::Epoch, geom::ElementVec)>& load_fn,
    const std::function<Status(storage::Epoch)>& bump_fn) {
  return wal_->Replay(
      [&](const storage::WriteAheadLog::Record& record) -> Status {
        auto kind = WalPayloadKind(record.payload);
        NEURODB_RETURN_NOT_OK(kind.status());
        switch (*kind) {
          case kWalKindUpdateBatch: {
            auto ops = DecodeUpdateBatch(record.payload);
            NEURODB_RETURN_NOT_OK(ops.status());
            return fn(record.epoch, *ops);
          }
          case kWalKindLoadElements: {
            if (load_fn == nullptr) {
              return Status::Corruption(
                  "DurabilityManager::Replay: unexpected load record");
            }
            auto elements = DecodeLoadElements(record.payload);
            NEURODB_RETURN_NOT_OK(elements.status());
            return load_fn(record.epoch, std::move(*elements));
          }
          case kWalKindEpochBump:
            // Data-free: consumers that only want batches (the load-record
            // pre-scan) skip them by leaving bump_fn null.
            return bump_fn == nullptr ? Status::OK() : bump_fn(record.epoch);
          default:
            return Status::Corruption(
                "DurabilityManager::Replay: unknown WAL record kind " +
                std::to_string(*kind));
        }
      },
      stats);
}

StoreFactory DurabilityManager::BackendStoreFactory() const {
  std::string dir = dir_;
  uint32_t block_bytes = block_bytes_;
  storage::FileSystem* fs = fs_;
  return [dir, block_bytes,
          fs](const std::string& name)
             -> Result<std::unique_ptr<storage::PageStore>> {
    storage::DiskStoreOptions opts;
    opts.block_bytes = block_bytes;
    opts.fs = fs;
    auto store = storage::DiskPageStore::Create(
        dir + "/" + SanitizeName(name) + ".pages", opts);
    NEURODB_RETURN_NOT_OK(store.status());
    return std::unique_ptr<storage::PageStore>(std::move(*store));
  };
}

storage::IoStats DurabilityManager::io() const {
  storage::IoStats total = base_->io();
  total += wal_->io();
  return total;
}

}  // namespace engine
}  // namespace neurodb
