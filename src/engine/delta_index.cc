#include "engine/delta_index.h"

#include <algorithm>

namespace neurodb {
namespace engine {

geom::ElementVec DeltaIndex::ApplyTo(const geom::ElementVec& base) const {
  geom::ElementVec merged;
  merged.reserve(base.size() + inserts_.size());
  for (const auto& e : base) {
    if (!IsDead(e.id)) merged.push_back(e);
  }
  for (const auto& [id, bounds] : inserts_) {
    merged.emplace_back(id, bounds);
  }
  // Base is id-sorted and so are the inserts, but interleaving the two
  // sorted runs is cheaper to express as one sort than to hand-merge —
  // Compact is not a hot path.
  std::sort(merged.begin(), merged.end(),
            [](const geom::SpatialElement& a, const geom::SpatialElement& b) {
              return a.id < b.id;
            });
  return merged;
}

}  // namespace engine
}  // namespace neurodb
