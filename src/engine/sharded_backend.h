// NeuroDB — ShardedBackend: the circuit domain partitioned across several
// PageStores, one inner index per shard.
//
// This is the first scaling backend: instead of one simulated disk holding
// the whole circuit, the element set is split into K spatial shards by
// recursive longest-axis median cuts (deterministic: ties broken by element
// id), and every shard gets its *own* PageStore with its own inner index
// built over just that shard's elements. Queries touch only the shards
// whose bounds intersect the request:
//
//   * RangeQuery fans the intersecting shards out across an exec::ThreadPool
//     when one is attached (per-shard buffer pools, results buffered per
//     shard and replayed in shard order, statistics merged in shard order —
//     so a parallel run is bit-identical to a serial one);
//   * KnnQuery walks the shard frontier best-first by shard distance,
//     merging per-shard answers under the global (distance, id) order and
//     stopping once no unvisited shard can still beat the k-th hit.
//
// Mutation is sharded the same way the data is: each inner backend (a
// GridBackend or PagedRTreeBackend per ShardedOptions::inner_index) is a
// BaseDeltaBackend, so an update routed to a shard lands in that shard's
// delta. Inserts route by the median-split bounds (the shard whose bounds
// contain the new center, which then extend to cover the new element so the
// frontier/selection pruning stays conservative); inserts landing outside
// every shard go to the backend's own *spill* delta — the inherited
// BaseDeltaBackend wrapper merges it over the shard fan-out. An id→shard
// map keeps erases and moves exact (no cross-shard tombstone amplification)
// and keeps per-shard populations truthful for cost-based selection.
// Compact() folds every shard's delta in place — same PageStore objects,
// fresh pages — and re-homes spill elements into their nearest shard.
//
// Because every element lives in exactly one shard (or the spill), the
// merged answers are exact, which lets the backend join BackendChoice::kAll
// — four-way parity in the differential harness — for free.

#ifndef NEURODB_ENGINE_SHARDED_BACKEND_H_
#define NEURODB_ENGINE_SHARDED_BACKEND_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/base_delta_backend.h"
#include "engine/grid_backend.h"
#include "engine/rtree_backend.h"
#include "exec/thread_pool.h"

namespace neurodb {
namespace engine {

/// Inner index hosted by each shard.
enum class ShardIndexKind {
  /// Uniform-grid inner index (the historical default; flat circuits).
  kGrid,
  /// Paged R-tree inner index (deep/skewed circuits, where the grid's
  /// uniform cells overfetch dense clusters).
  kRTree,
};

/// How elements are assigned to shards at build/compact time.
enum class ShardAssignment {
  /// Recursive longest-axis median cuts (deterministic, id tiebreak).
  kMedian,
  /// Contiguous equal cuts of the Hilbert-sorted element centers: shards
  /// follow the space-filling curve, so they stay compact under skew where
  /// median cuts produce long thin slabs.
  kHilbert,
};

/// Sharding configuration.
struct ShardedOptions {
  /// Spatial shards to cut the domain into (clamped to the element count
  /// at build time so no shard is empty).
  size_t num_shards = 4;
  /// Which index each shard hosts.
  ShardIndexKind inner_index = ShardIndexKind::kGrid;
  /// Inner grid configuration (used when inner_index == kGrid).
  GridOptions inner;
  /// Inner R-tree configuration (used when inner_index == kRTree).
  rtree::RTreeOptions inner_rtree;
  /// Shard-assignment key.
  ShardAssignment assignment = ShardAssignment::kMedian;

  Status Validate() const;
};

/// Domain-sharded backend: K shards, each an inner BaseDeltaBackend (grid
/// or paged R-tree) over its own PageStore. Stores() exposes one store per
/// shard, so the engine's PoolSets carry one BufferPool per shard.
class ShardedBackend : public BaseDeltaBackend {
 public:
  explicit ShardedBackend(ShardedOptions options = ShardedOptions())
      : options_(options) {}

  const char* name() const override { return "Sharded"; }

  /// Custom build pipeline: split, then build one inner backend per run.
  /// (The inherited Build would retain a duplicate base element list; the
  /// shards each retain their own part instead.)
  Status Build(const geom::ElementVec& elements) override;

  /// Attach a worker pool for intra-query shard fan-out; null (the
  /// default) keeps shard execution serial. Called by the engine when
  /// EngineOptions::num_threads > 1; the pool must outlive the backend's
  /// queries. Fan-out automatically degrades to the serial loop when the
  /// query itself already runs on a pool worker (ExecuteBatch lanes).
  void set_thread_pool(exec::ThreadPool* pool) { thread_pool_ = pool; }

  /// Route to the shard whose bounds contain the new center (extending the
  /// shard's bounds over the new element), else to the spill delta. These
  /// are the pending (unpublished) building blocks; the inherited
  /// Insert/Erase/Move wrappers add the republish, ApplyBatch adds the
  /// per-epoch publish.
  Status InsertPending(geom::ElementId id, const geom::Aabb& bounds) override;
  /// Route to the owning shard via the id map, else to the spill delta.
  Status ErasePending(geom::ElementId id) override;
  Status MovePending(geom::ElementId id, const geom::Aabb& bounds) override;

  /// Cascade: spill delta (inherited), every shard, and the routing
  /// snapshot (shard bounds + populations) readers pin along with the
  /// deltas.
  void PublishVersion(storage::Epoch epoch) override;
  void RepublishLatest() override;
  void SetVersionRetention(size_t versions) override;

  /// Fold every shard's delta in place and re-home spill elements into the
  /// shard whose bounds contain (or are nearest to) their center. Shard
  /// count and PageStore objects are stable across compaction — only page
  /// contents change — so existing PoolSets stay structurally valid (their
  /// cached pages must still be evicted).
  Status Compact() override;

  /// Spill delta plus every shard's pending delta records.
  size_t DeltaSize() const override;

  BackendStats Stats() const override;

  /// Stash the factory; each shard gets its own store ("Sharded.shard<i>")
  /// when BuildBase creates it. Must be called before Build, like the base.
  Status AttachStores(const StoreFactory& factory) override {
    store_factory_ = factory;
    return Status::OK();
  }

  std::vector<storage::PageStore*> Stores() override;

  const ShardedOptions& options() const { return options_; }
  size_t NumShards() const { return shards_.size(); }
  /// Bounding box of shard `i`'s live elements. Cuts go through element
  /// centers, boxes extend beyond them — and inserts only ever extend a
  /// shard's bounds further (exact re-tightening happens at Compact).
  const geom::Aabb& shard_bounds(size_t i) const { return shard_bounds_[i]; }
  const BaseDeltaBackend& shard(size_t i) const { return *shards_[i]; }
  /// Live elements assigned to shard `i` — the per-shard population count
  /// the cost-based shard selection prunes by (zero-population shards are
  /// skipped even when their bounds intersect a query).
  size_t ShardPopulation(size_t i) const { return shard_sizes_[i]; }
  /// Live elements routed to the spill delta (outside every shard bound).
  size_t SpillPopulation() const { return delta_.InsertCount(); }

  /// Shards a range query over `box` executes on: bounds must intersect
  /// AND the population must be non-zero. Exposed for tests.
  std::vector<size_t> SelectShards(const geom::Aabb& box) const;

  /// Raw page reads summed over every shard's PageStore — the per-shard
  /// I/O aggregation the scaling benchmarks report.
  uint64_t TotalStoreReads() const;

 protected:
  Status BuildBase(const geom::ElementVec& elements) override;
  Status ResetBase() override;
  bool retain_base_elements() const override { return false; }
  void ResetDeltaVersions() override;
  Status BaseRangeQuery(storage::Epoch read_epoch, const geom::Aabb& box,
                        storage::PoolSet* pools, ResultVisitor& visitor,
                        RangeStats* stats) const override;
  Status BaseKnnQuery(storage::Epoch read_epoch, const geom::Vec3& point,
                      size_t k, storage::PoolSet* pools,
                      std::vector<geom::KnnHit>* hits,
                      RangeStats* stats) const override;

 private:
  /// The routing state a pinned reader resolves shard selection through: a
  /// consistent (bounds, populations) pair as of one published epoch —
  /// the live shard_bounds_/shard_sizes_ mutate under concurrent inserts.
  struct ShardRouting {
    std::vector<geom::Aabb> bounds;
    std::vector<size_t> sizes;
  };

  /// A copy of the live routing state.
  std::shared_ptr<const ShardRouting> MakeRouting() const {
    auto routing = std::make_shared<ShardRouting>();
    routing->bounds = shard_bounds_;
    routing->sizes = shard_sizes_;
    return routing;
  }

  /// SelectShards against an explicit routing view.
  std::vector<size_t> SelectShardsIn(const geom::Aabb& box,
                                     const ShardRouting& routing) const;

  /// The shard whose bounds contain `center` (lowest index wins), or
  /// npos when no shard covers it (the insert spills).
  size_t RouteByBounds(const geom::Vec3& center) const;

  /// One inner backend of the configured kind.
  std::unique_ptr<BaseDeltaBackend> MakeInner() const;

  ShardedOptions options_;
  exec::ThreadPool* thread_pool_ = nullptr;
  StoreFactory store_factory_;

  std::vector<std::unique_ptr<BaseDeltaBackend>> shards_;
  std::vector<geom::Aabb> shard_bounds_;
  std::vector<size_t> shard_sizes_;
  /// Owning shard of every live element that lives in a shard (spill
  /// elements are absent) — exact erase/move routing and truthful
  /// populations without cross-shard tombstones.
  std::unordered_map<geom::ElementId, uint32_t> id_to_shard_;
  /// Published routing snapshots, one per committed epoch (mirrors the
  /// delta version ring).
  VersionRing<ShardRouting> routing_versions_;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_SHARDED_BACKEND_H_
