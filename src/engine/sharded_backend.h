// NeuroDB — ShardedBackend: the circuit domain partitioned across several
// PageStores, one inner index per shard.
//
// This is the first scaling backend: instead of one simulated disk holding
// the whole circuit, the element set is split into K spatial shards by
// recursive longest-axis median cuts (deterministic: ties broken by element
// id), and every shard gets its *own* PageStore with its own inner index
// built over just that shard's elements. Queries touch only the shards
// whose bounds intersect the request:
//
//   * RangeQuery fans the intersecting shards out across an exec::ThreadPool
//     when one is attached (per-shard buffer pools, results buffered per
//     shard and replayed in shard order, statistics merged in shard order —
//     so a parallel run is bit-identical to a serial one);
//   * KnnQuery walks the shard frontier best-first by shard distance,
//     merging per-shard answers under the global (distance, id) order and
//     stopping once no unvisited shard can still beat the k-th hit.
//
// Because every element lives in exactly one shard, the merged answers are
// exact, which lets the backend join BackendChoice::kAll — four-way parity
// in the differential harness — for free.

#ifndef NEURODB_ENGINE_SHARDED_BACKEND_H_
#define NEURODB_ENGINE_SHARDED_BACKEND_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/backend.h"
#include "engine/grid_backend.h"
#include "exec/thread_pool.h"

namespace neurodb {
namespace engine {

/// Sharding configuration.
struct ShardedOptions {
  /// Spatial shards to cut the domain into (clamped to the element count
  /// at build time so no shard is empty).
  size_t num_shards = 4;
  /// Inner index configuration, one instance per shard.
  GridOptions inner;

  Status Validate() const;
};

/// Domain-sharded backend: K shards, each a GridBackend over its own
/// PageStore. Stores() exposes one store per shard, so the engine's
/// PoolSets carry one BufferPool per shard.
class ShardedBackend : public SpatialBackend {
 public:
  explicit ShardedBackend(ShardedOptions options = ShardedOptions())
      : options_(options) {}

  const char* name() const override { return "Sharded"; }

  Status Build(const geom::ElementVec& elements) override;

  /// Attach a worker pool for intra-query shard fan-out; null (the
  /// default) keeps shard execution serial. Called by the engine when
  /// EngineOptions::num_threads > 1; the pool must outlive the backend's
  /// queries. Fan-out automatically degrades to the serial loop when the
  /// query itself already runs on a pool worker (ExecuteBatch lanes).
  void set_thread_pool(exec::ThreadPool* pool) { thread_pool_ = pool; }

  Status RangeQuery(const geom::Aabb& box, storage::PoolSet* pools,
                    ResultVisitor& visitor,
                    RangeStats* stats = nullptr) const override;

  Status KnnQuery(const geom::Vec3& point, size_t k,
                  storage::PoolSet* pools, std::vector<geom::KnnHit>* hits,
                  RangeStats* stats = nullptr) const override;

  BackendStats Stats() const override;

  std::vector<storage::PageStore*> Stores() override;

  bool built() const { return built_; }
  const ShardedOptions& options() const { return options_; }
  size_t NumShards() const { return shards_.size(); }
  /// Bounding box of shard `i`'s elements (shards may overlap slightly:
  /// cuts go through element centers, boxes extend beyond them).
  const geom::Aabb& shard_bounds(size_t i) const { return shard_bounds_[i]; }
  const GridBackend& shard(size_t i) const { return *shards_[i]; }
  /// Elements assigned to shard `i` — the per-shard population count the
  /// cost-based shard selection prunes by (zero-population shards are
  /// skipped even when their bounds intersect a query).
  size_t ShardPopulation(size_t i) const { return shard_sizes_[i]; }

  /// Shards a range query over `box` executes on: bounds must intersect
  /// AND the population must be non-zero. Exposed for tests.
  std::vector<size_t> SelectShards(const geom::Aabb& box) const;

  /// Raw page reads summed over every shard's PageStore — the per-shard
  /// I/O aggregation the scaling benchmarks report.
  uint64_t TotalStoreReads() const;

 private:
  ShardedOptions options_;
  exec::ThreadPool* thread_pool_ = nullptr;
  bool built_ = false;

  std::vector<std::unique_ptr<GridBackend>> shards_;
  std::vector<geom::Aabb> shard_bounds_;
  std::vector<size_t> shard_sizes_;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_SHARDED_BACKEND_H_
