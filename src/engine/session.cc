#include "engine/session.h"

#include <algorithm>

#include "cache/delta_planner.h"

namespace neurodb {
namespace engine {

Result<Session> Session::Open(const flat::FlatIndex* index,
                              storage::PageStore* store,
                              const neuro::SegmentResolver* resolver,
                              scout::PrefetchMethod method,
                              scout::SessionOptions options) {
  if (index == nullptr || store == nullptr) {
    return Status::InvalidArgument("Session: null index or store");
  }
  if (options.pool_pages == 0) {
    return Status::InvalidArgument("Session: pool_pages must be > 0");
  }

  Session session;
  session.index_ = index;
  session.options_ = options;
  session.budget_ = options.PrefetchBudget();
  session.clock_ = std::make_unique<SimClock>();
  session.pool_ = std::make_unique<storage::BufferPool>(
      store, options.pool_pages, session.clock_.get(), options.cost);
  // Result caching requires the exact crawl configuration: with
  // rescue=false a FLAT range query may miss disconnected pages, while
  // cache entries (and think-time prepopulation, which evaluates from the
  // always-complete seed-tree page coverage) are exact — a cached session
  // would then *disagree* with a cold one. rescue is on by default; the
  // rare approximate configuration just runs uncached.
  if (options.cache_results && options.result_cache_boxes > 0 &&
      index->options().rescue) {
    session.cache_ =
        std::make_unique<cache::ResultCache>(options.result_cache_boxes);
  }

  scout::PrefetchContext ctx;
  ctx.index = index;
  ctx.pool = session.pool_.get();
  ctx.resolver = resolver;
  NEURODB_ASSIGN_OR_RETURN(session.prefetcher_,
                           scout::MakePrefetcher(method, ctx, options.scout));
  session.prefetcher_->Reset();
  return session;
}

Result<scout::StepRecord> Session::RunStep(
    const std::function<Status(std::vector<geom::ElementId>* ids,
                               geom::Aabb* prefetch_box)>& query) {
  scout::StepRecord step;
  uint64_t t0 = clock_->NowMicros();
  uint64_t misses0 = pool_->stats().Get("pool.misses");
  uint64_t hits0 = pool_->stats().Get("pool.hits");
  last_cover_fraction_ = 0.0;
  last_delta_fraction_ = 1.0;

  std::vector<geom::ElementId> ids;
  geom::Aabb prefetch_box;
  NEURODB_RETURN_NOT_OK(query(&ids, &prefetch_box));

  step.stall_us = clock_->NowMicros() - t0;
  step.pages_missed = pool_->stats().Get("pool.misses") - misses0;
  step.pages_hit = pool_->stats().Get("pool.hits") - hits0;
  step.results = ids.size();
  step.cache_hit_fraction = last_cover_fraction_;
  step.delta_volume_fraction = last_delta_fraction_;

  // Think pause: the prefetcher works while the scientist looks at the
  // data. Loads within the budget finish before the next query.
  step.prefetched = prefetcher_->AfterQuery(prefetch_box, ids, budget_);
  step.candidates = prefetcher_->CandidateCount();
  if (cache_ != nullptr) {
    size_t remaining =
        budget_ > step.prefetched ? budget_ - step.prefetched : 0;
    step.prefetched += PrepopulateCache(remaining);
  }
  clock_->Advance(options_.think_time_us);

  total_stall_us_ += step.stall_us;
  steps_.push_back(step);
  return step;
}

Status Session::CachedRangeStep(const geom::Aabb& box,
                                geom::ResultVisitor& visitor,
                                std::vector<geom::ElementId>* ids) {
  cache::DeltaPlan plan;
  NEURODB_ASSIGN_OR_RETURN(
      geom::ElementVec merged,
      cache::DeltaPlanner::Answer(
          *cache_, box,
          [&](const geom::Aabb& residual, geom::CollectingVisitor* out) {
            return index_->RangeQuery(residual, pool_.get(), *out);
          },
          &plan));

  ids->reserve(merged.size());
  for (const geom::SpatialElement& e : merged) {
    visitor.Visit(e.id, e.bounds);
    ids->push_back(e.id);
  }
  last_cover_fraction_ = plan.covered_fraction;
  last_delta_fraction_ = plan.residual_fraction;
  cache_->Insert(box, std::move(merged));
  return Status::OK();
}

size_t Session::PrepopulateCache(size_t budget) {
  size_t loaded = 0;
  for (const geom::Aabb& predicted : prefetcher_->PredictedBoxes()) {
    if (!predicted.IsValid()) continue;
    // Already fully covered (a stationary or repeating path): evaluating
    // would rebuild a result Insert only discards — skip the page scan.
    if (cache_->Covers(predicted)) continue;

    std::vector<uint32_t> pages = index_->PagesInRange(predicted);
    size_t uncached = 0;
    for (uint32_t page : pages) {
      if (!pool_->Contains(index_->PageAt(page))) ++uncached;
    }
    // Evaluating this box would need more demand I/O than the think pause
    // still covers — leave it to the next step's demand path.
    size_t remaining = budget > loaded ? budget - loaded : 0;
    if (uncached > remaining) continue;

    // The precount can go stale mid-loop: on a full pool a Prefetch may
    // evict a not-yet-visited page of this same box, which then needs its
    // own Prefetch. The hard bound below keeps `loaded` within budget
    // regardless (the Peek pass skips the insert if anything is missing).
    for (uint32_t page : pages) {
      if (loaded >= budget) break;
      storage::PageId id = index_->PageAt(page);
      if (pool_->Contains(id)) continue;
      if (pool_->Prefetch(id).ok()) ++loaded;
    }

    // Evaluate over resident pages only; if anything got evicted under
    // pool pressure the entry would be incomplete, so skip the insert.
    geom::ElementVec results;
    bool complete = true;
    for (uint32_t page : pages) {
      const storage::Page* data = pool_->Peek(index_->PageAt(page));
      if (data == nullptr) {
        complete = false;
        break;
      }
      for (const geom::SpatialElement& e : data->elements) {
        if (e.bounds.Intersects(predicted)) results.push_back(e);
      }
    }
    if (!complete) continue;
    cache::SortById(&results);
    cache_->Insert(predicted, std::move(results));
  }
  return loaded;
}

Result<scout::StepRecord> Session::Step(const geom::Aabb& box,
                                        geom::ResultVisitor& visitor) {
  if (!box.IsValid()) {
    return Status::InvalidArgument("Session::Step: invalid box (lo > hi)");
  }
  if (cache_ != nullptr) {
    return RunStep([&](std::vector<geom::ElementId>* ids,
                       geom::Aabb* prefetch_box) {
      *prefetch_box = box;
      return CachedRangeStep(box, visitor, ids);
    });
  }
  return RunStep([&](std::vector<geom::ElementId>* ids,
                     geom::Aabb* prefetch_box) {
    *prefetch_box = box;
    // Stream to the caller while keeping the ids the prefetcher observes.
    geom::VectorVisitor collector(ids);
    geom::TeeVisitor tee(&visitor, &collector);
    return index_->RangeQuery(box, pool_.get(), tee);
  });
}

Result<scout::StepRecord> Session::Step(const geom::Aabb& box) {
  geom::CountingVisitor ignore;
  return Step(box, ignore);
}

Result<scout::StepRecord> Session::StepKnn(const geom::Vec3& point, size_t k,
                                           std::vector<geom::KnnHit>* hits) {
  if (k == 0) {
    return Status::InvalidArgument("Session::StepKnn: k must be > 0");
  }
  if (!geom::IsFinitePoint(point)) {
    return Status::InvalidArgument("Session::StepKnn: non-finite query point");
  }

  std::vector<geom::KnnHit> local;
  std::vector<geom::KnnHit>* out = hits != nullptr ? hits : &local;
  return RunStep([&](std::vector<geom::ElementId>* ids,
                     geom::Aabb* prefetch_box) {
    NEURODB_RETURN_NOT_OK(index_->Knn(point, k, pool_.get(), out));
    ids->reserve(out->size());
    for (const geom::KnnHit& hit : *out) ids->push_back(hit.id);
    // The prefetcher sees the neighbourhood the answer came from — the
    // cube covering the kth hit — so exploration models treat kNN steps
    // like range steps.
    double reach = out->empty() ? 0.0 : out->back().distance;
    *prefetch_box =
        geom::Aabb::Cube(point, 2.0f * static_cast<float>(reach));
    return Status::OK();
  });
}

scout::SessionResult Session::Summary() const {
  scout::SessionResult out;
  out.steps = steps_;
  out.total_stall_us = total_stall_us_;
  out.total_time_us = clock_->NowMicros();
  out.pages_missed = pool_->stats().Get("pool.misses");
  out.pages_hit = pool_->stats().Get("pool.hits");
  out.prefetch_issued = pool_->stats().Get("pool.prefetch_issued");
  out.prefetch_used = pool_->stats().Get("pool.prefetch_used");
  return out;
}

}  // namespace engine
}  // namespace neurodb
