#include "engine/session.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "cache/delta_planner.h"
#include "common/stats.h"

namespace neurodb {
namespace engine {

Result<Session> Session::Open(const flat::FlatIndex* index,
                              storage::PageStore* store,
                              const neuro::SegmentResolver* resolver,
                              scout::PrefetchMethod method,
                              scout::SessionOptions options,
                              const BaseDeltaBackend* delta_source,
                              const UpdateLog* update_log,
                              std::shared_mutex* read_lock,
                              SessionObs hooks) {
  if (index == nullptr || store == nullptr) {
    return Status::InvalidArgument("Session: null index or store");
  }
  if (options.pool_pages == 0) {
    return Status::InvalidArgument("Session: pool_pages must be > 0");
  }

  Session session;
  session.index_ = index;
  session.store_ = store;
  session.store_epoch_at_open_ = store->epoch();
  session.delta_source_ = delta_source;
  if (delta_source != nullptr) {
    session.snap_ = delta_source->LatestDelta();
    session.delta_ = session.snap_.delta.get();
  }
  session.read_lock_ = read_lock;
  session.update_log_ = update_log;
  // Updates applied before the session opened are already part of every
  // answer it will compute — only *future* stamps need cache catch-up.
  session.log_seen_ = update_log != nullptr ? update_log->size() : 0;
  session.options_ = options;
  session.budget_ = options.PrefetchBudget();
  session.clock_ = std::make_unique<SimClock>();
  session.pool_ = std::make_unique<storage::BufferPool>(
      store, options.pool_pages, session.clock_.get(), options.cost);
  // Result caching requires the exact crawl configuration: with
  // rescue=false a FLAT range query may miss disconnected pages, while
  // cache entries (and think-time prepopulation, which evaluates from the
  // always-complete seed-tree page coverage) are exact — a cached session
  // would then *disagree* with a cold one. rescue is on by default; the
  // rare approximate configuration just runs uncached.
  if (options.cache_results && options.result_cache_boxes > 0 &&
      index->options().rescue) {
    session.cache_ =
        std::make_unique<cache::ResultCache>(options.result_cache_boxes);
    // Entries record the epoch they were computed at — start the stamp at
    // the engine's current epoch, not 0 (nothing to invalidate yet).
    if (update_log != nullptr) {
      session.cache_->AdvanceEpoch(update_log->epoch(), geom::Aabb());
    }
  }

  session.obs_ = hooks;
  if (hooks.metrics != nullptr) {
    session.m_steps_ = hooks.metrics->counter("session.step.count");
    session.m_pages_missed_ =
        hooks.metrics->counter("session.step.pages_missed");
    session.m_pages_hit_ = hooks.metrics->counter("session.step.pages_hit");
    session.m_latency_us_ =
        hooks.metrics->histogram("session.step.latency_us");
    session.m_stall_us_ = hooks.metrics->histogram("session.step.stall_us");
  }

  scout::PrefetchContext ctx;
  ctx.index = index;
  ctx.pool = session.pool_.get();
  ctx.resolver = resolver;
  NEURODB_ASSIGN_OR_RETURN(session.prefetcher_,
                           scout::MakePrefetcher(method, ctx, options.scout));
  session.prefetcher_->Reset();
  return session;
}

void Session::CatchUpInvalidations() {
  if (update_log_ == nullptr) return;
  if (cache_ != nullptr) {
    for (const EpochStamp& stamp : update_log_->StampsSince(log_seen_)) {
      cache_->AdvanceEpoch(stamp.epoch, stamp.dirty);
      ++log_seen_;
    }
  } else {
    log_seen_ = update_log_->size();
  }
}

Result<scout::StepRecord> Session::RunStep(
    const std::function<Status(std::vector<geom::ElementId>* ids,
                               geom::Aabb* prefetch_box)>& query) {
  // Wall clock (not the simulated session clock): latency histograms and
  // the slow-query threshold measure real elapsed time.
  Timer wall;
  std::shared_ptr<obs::Trace> trace;
  if (options_.trace_steps || obs_.slow_log != nullptr) {
    trace = std::make_shared<obs::Trace>("session.step");
  }

  // Engine-owned sessions hold the compaction lock shared for the whole
  // step: queries run concurrently with ApplyUpdates (snapshot below), but
  // never against a page layout Compact is mid-way through rebuilding.
  std::shared_lock<std::shared_mutex> read_lock;
  if (read_lock_ != nullptr) {
    read_lock = std::shared_lock<std::shared_mutex>(*read_lock_);
  }

  // A compaction rebuilt the page layout since the last step. The rebuilt
  // base answers every query identically (compaction folds the delta in
  // without changing the live set), the pool evicts its stale pages
  // through the same store-epoch check, and the FLAT index was rebuilt in
  // place — so simply adopt the new layout and carry on. The one layout a
  // session cannot adopt is no layout at all: a base compacted down to
  // zero elements has no crawl pages left to explore.
  if (store_ != nullptr && store_->epoch() != store_epoch_at_open_) {
    if (delta_source_ != nullptr && delta_source_->base_empty()) {
      return Status::InvalidArgument(
          "Session::Step: the base compacted down to empty — there is no "
          "crawl layout left to explore; repopulate and reopen");
    }
    store_epoch_at_open_ = store_->epoch();
  }

  // Pin the newest published delta snapshot for the duration of the step:
  // every merge below sees one immutable delta even while ApplyUpdates
  // publishes newer versions concurrently.
  if (delta_source_ != nullptr) {
    snap_ = delta_source_->LatestDelta();
    delta_ = snap_.delta.get();
  }

  // Before answering: drop cached boxes whose region updates dirtied since
  // the last step — the cached session must stay byte-identical to a cold
  // one across ApplyUpdates.
  CatchUpInvalidations();

  scout::StepRecord step;
  uint64_t t0 = clock_->NowMicros();
  uint64_t misses0 = pool_->stats().Get("pool.misses");
  uint64_t hits0 = pool_->stats().Get("pool.hits");
  last_cover_fraction_ = 0.0;
  last_delta_fraction_ = 1.0;

  std::vector<geom::ElementId> ids;
  geom::Aabb prefetch_box;
  const int query_span = trace != nullptr ? trace->Begin("query") : -1;
  NEURODB_RETURN_NOT_OK(query(&ids, &prefetch_box));
  if (trace != nullptr) trace->End(query_span);

  step.stall_us = clock_->NowMicros() - t0;
  step.pages_missed = pool_->stats().Get("pool.misses") - misses0;
  step.pages_hit = pool_->stats().Get("pool.hits") - hits0;
  step.results = ids.size();
  step.epoch = CurrentEpoch();
  step.cache_hit_fraction = last_cover_fraction_;
  step.delta_volume_fraction = last_delta_fraction_;

  // Think pause: the prefetcher works while the scientist looks at the
  // data. Loads within the budget finish before the next query.
  const int prefetch_span = trace != nullptr ? trace->Begin("prefetch") : -1;
  step.prefetched = prefetcher_->AfterQuery(prefetch_box, ids, budget_);
  step.candidates = prefetcher_->CandidateCount();
  if (cache_ != nullptr) {
    size_t remaining =
        budget_ > step.prefetched ? budget_ - step.prefetched : 0;
    step.prefetched += PrepopulateCache(remaining);
  }
  if (trace != nullptr) {
    trace->Tag(prefetch_span, "pages", step.prefetched);
    trace->End(prefetch_span);
  }
  clock_->Advance(options_.think_time_us);

  const uint64_t wall_us = wall.ElapsedNanos() / 1000;
  if (trace != nullptr) {
    trace->Tag(0, "epoch", step.epoch);
    trace->Tag(0, "results", step.results);
    trace->Tag(0, "pages_missed", step.pages_missed);
    trace->Tag(0, "pages_hit", step.pages_hit);
    trace->Tag(0, "stall_us", step.stall_us);
    trace->End(0);
    if (obs_.slow_log != nullptr &&
        wall_us >= obs_.slow_log->threshold_us()) {
      obs_.slow_log->Record("session.step", wall_us, trace);
    }
    if (options_.trace_steps) step.trace = trace;
  }
  obs::Bump(m_steps_);
  obs::Add(m_pages_missed_, step.pages_missed);
  obs::Add(m_pages_hit_, step.pages_hit);
  obs::Record(m_latency_us_, wall_us);
  obs::Record(m_stall_us_, step.stall_us);

  total_stall_us_ += step.stall_us;
  steps_.push_back(step);
  return step;
}

Status Session::DeltaMergedRange(const geom::Aabb& box,
                                 geom::ElementVec* out) {
  geom::CollectingVisitor base_out;
  NEURODB_RETURN_NOT_OK(index_->RangeQuery(box, pool_.get(), base_out));
  *out = base_out.TakeElements();
  if (delta_ != nullptr) delta_->Overlay(box, out);
  return Status::OK();
}

Status Session::CachedRangeStep(const geom::Aabb& box,
                                geom::ResultVisitor& visitor,
                                std::vector<geom::ElementId>* ids) {
  cache::DeltaPlan plan;
  NEURODB_ASSIGN_OR_RETURN(
      geom::ElementVec merged,
      cache::DeltaPlanner::Answer(
          *cache_, box,
          [&](const geom::Aabb& residual, geom::CollectingVisitor* out) {
            // Residuals answer from base + live delta; an insert shared by
            // two face-adjacent residuals is deduplicated by MergeById.
            geom::ElementVec part;
            NEURODB_RETURN_NOT_OK(DeltaMergedRange(residual, &part));
            for (const geom::SpatialElement& e : part) {
              out->Visit(e.id, e.bounds);
            }
            return Status::OK();
          },
          &plan));

  ids->reserve(merged.size());
  for (const geom::SpatialElement& e : merged) {
    visitor.Visit(e.id, e.bounds);
    ids->push_back(e.id);
  }
  last_cover_fraction_ = plan.covered_fraction;
  last_delta_fraction_ = plan.residual_fraction;
  // The deep copy only pays off when a later StepKnn will read the seeds.
  if (options_.seed_knn) last_results_ = merged;
  cache_->Insert(box, std::move(merged));
  return Status::OK();
}

size_t Session::PrepopulateCache(size_t budget) {
  size_t loaded = 0;
  for (const geom::Aabb& predicted : prefetcher_->PredictedBoxes()) {
    if (!predicted.IsValid()) continue;
    // Already fully covered (a stationary or repeating path): evaluating
    // would rebuild a result Insert only discards — skip the page scan.
    if (cache_->Covers(predicted)) continue;

    std::vector<uint32_t> pages = index_->PagesInRange(predicted);
    size_t uncached = 0;
    for (uint32_t page : pages) {
      if (!pool_->Contains(index_->PageAt(page))) ++uncached;
    }
    // Evaluating this box would need more demand I/O than the think pause
    // still covers — leave it to the next step's demand path.
    size_t remaining = budget > loaded ? budget - loaded : 0;
    if (uncached > remaining) continue;

    // The precount can go stale mid-loop: on a full pool a Prefetch may
    // evict a not-yet-visited page of this same box, which then needs its
    // own Prefetch. The hard bound below keeps `loaded` within budget
    // regardless (the Peek pass skips the insert if anything is missing).
    for (uint32_t page : pages) {
      if (loaded >= budget) break;
      storage::PageId id = index_->PageAt(page);
      if (pool_->Contains(id)) continue;
      if (pool_->Prefetch(id).ok()) ++loaded;
    }

    // Evaluate over resident pages only; if anything got evicted under
    // pool pressure the entry would be incomplete, so skip the insert.
    geom::ElementVec results;
    bool complete = true;
    for (uint32_t page : pages) {
      const storage::Page* data = pool_->Peek(index_->PageAt(page));
      if (data == nullptr) {
        complete = false;
        break;
      }
      for (const geom::SpatialElement& e : data->elements) {
        if (e.bounds.Intersects(predicted)) results.push_back(e);
      }
    }
    if (!complete) continue;
    // Page contents are the immutable base — overlay the live delta so the
    // cached entry is the *current* complete answer for the predicted box.
    if (delta_ != nullptr) delta_->Overlay(predicted, &results);
    cache::SortById(&results);
    cache_->Insert(predicted, std::move(results));
  }
  return loaded;
}

Result<scout::StepRecord> Session::Step(const geom::Aabb& box,
                                        geom::ResultVisitor& visitor) {
  if (!box.IsValid()) {
    return Status::InvalidArgument("Session::Step: invalid box (lo > hi)");
  }
  if (cache_ != nullptr) {
    return RunStep([&](std::vector<geom::ElementId>* ids,
                       geom::Aabb* prefetch_box) {
      *prefetch_box = box;
      return CachedRangeStep(box, visitor, ids);
    });
  }
  return RunStep([&](std::vector<geom::ElementId>* ids,
                     geom::Aabb* prefetch_box) {
    *prefetch_box = box;
    if (delta_ == nullptr || delta_->Empty()) {
      // Read-only fast path: stream in crawl order, collect the element
      // list for the prefetcher and the next kNN step's seed candidates.
      geom::CollectingVisitor collector;
      geom::TeeVisitor tee(&visitor, &collector);
      NEURODB_RETURN_NOT_OK(index_->RangeQuery(box, pool_.get(), tee));
      last_results_ = collector.TakeElements();
    } else {
      geom::ElementVec merged;
      NEURODB_RETURN_NOT_OK(DeltaMergedRange(box, &merged));
      for (const geom::SpatialElement& e : merged) {
        visitor.Visit(e.id, e.bounds);
      }
      last_results_ = std::move(merged);
    }
    ids->reserve(last_results_.size());
    for (const geom::SpatialElement& e : last_results_) ids->push_back(e.id);
    return Status::OK();
  });
}

Result<scout::StepRecord> Session::Step(const geom::Aabb& box) {
  geom::CountingVisitor ignore;
  return Step(box, ignore);
}

Result<scout::StepRecord> Session::StepKnn(const geom::Vec3& point, size_t k,
                                           std::vector<geom::KnnHit>* hits) {
  if (k == 0) {
    return Status::InvalidArgument("Session::StepKnn: k must be > 0");
  }
  if (!geom::IsFinitePoint(point)) {
    return Status::InvalidArgument("Session::StepKnn: non-finite query point");
  }

  std::vector<geom::KnnHit> local;
  std::vector<geom::KnnHit>* out = hits != nullptr ? hits : &local;
  return RunStep([&](std::vector<geom::ElementId>* ids,
                     geom::Aabb* prefetch_box) {
    // Delta kNN seeding: the previous step's results are genuine elements,
    // so the k-th best of their distances to the *new* point bounds the
    // true k-th distance from above — start the expanding ring there. A
    // stale or short seed list only changes the starting radius, never the
    // answer (flat::FlatIndex::Knn doc).
    double radius_hint = 0.0;
    if (options_.seed_knn && last_results_.size() >= k) {
      std::vector<double> distances;
      distances.reserve(last_results_.size());
      for (const geom::SpatialElement& e : last_results_) {
        distances.push_back(geom::KnnDistance(point, e.bounds));
      }
      std::nth_element(distances.begin(), distances.begin() + (k - 1),
                       distances.end());
      radius_hint = distances[k - 1];
    }

    const bool merge_delta = delta_ != nullptr && !delta_->Empty();
    if (!merge_delta) {
      NEURODB_RETURN_NOT_OK(
          index_->Knn(point, k, pool_.get(), out, nullptr, radius_hint));
    } else {
      // Widened base request + dead-hit filter + delta seeding — the same
      // merge BaseDeltaBackend runs (base_delta_backend.cc).
      size_t k_base = k + delta_->TombstoneCount() + delta_->InsertCount();
      std::vector<geom::KnnHit> base_hits;
      NEURODB_RETURN_NOT_OK(index_->Knn(point, k_base, pool_.get(),
                                        &base_hits, nullptr, radius_hint));
      geom::KnnAccumulator acc(k);
      for (const geom::KnnHit& hit : base_hits) {
        if (!delta_->IsDead(hit.id)) acc.Offer(hit.id, hit.distance);
      }
      delta_->SeedKnn(point, &acc);
      *out = acc.TakeSorted();
    }
    ids->reserve(out->size());
    for (const geom::KnnHit& hit : *out) ids->push_back(hit.id);
    // The prefetcher sees the neighbourhood the answer came from — the
    // cube covering the kth hit — so exploration models treat kNN steps
    // like range steps.
    double reach = out->empty() ? 0.0 : out->back().distance;
    *prefetch_box =
        geom::Aabb::Cube(point, 2.0f * static_cast<float>(reach));
    return Status::OK();
  });
}

scout::SessionResult Session::Summary() const {
  scout::SessionResult out;
  out.steps = steps_;
  out.total_stall_us = total_stall_us_;
  out.total_time_us = clock_->NowMicros();
  out.pages_missed = pool_->stats().Get("pool.misses");
  out.pages_hit = pool_->stats().Get("pool.hits");
  out.prefetch_issued = pool_->stats().Get("pool.prefetch_issued");
  out.prefetch_used = pool_->stats().Get("pool.prefetch_used");
  if (cache_ != nullptr) {
    out.cache_invalidated_boxes = cache_->stats().invalidated_boxes;
  }
  return out;
}

}  // namespace engine
}  // namespace neurodb
