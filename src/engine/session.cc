#include "engine/session.h"

namespace neurodb {
namespace engine {

Result<Session> Session::Open(const flat::FlatIndex* index,
                              storage::PageStore* store,
                              const neuro::SegmentResolver* resolver,
                              scout::PrefetchMethod method,
                              scout::SessionOptions options) {
  if (index == nullptr || store == nullptr) {
    return Status::InvalidArgument("Session: null index or store");
  }
  if (options.pool_pages == 0) {
    return Status::InvalidArgument("Session: pool_pages must be > 0");
  }

  Session session;
  session.index_ = index;
  session.options_ = options;
  session.budget_ = options.PrefetchBudget();
  session.clock_ = std::make_unique<SimClock>();
  session.pool_ = std::make_unique<storage::BufferPool>(
      store, options.pool_pages, session.clock_.get(), options.cost);

  scout::PrefetchContext ctx;
  ctx.index = index;
  ctx.pool = session.pool_.get();
  ctx.resolver = resolver;
  NEURODB_ASSIGN_OR_RETURN(session.prefetcher_,
                           scout::MakePrefetcher(method, ctx, options.scout));
  session.prefetcher_->Reset();
  return session;
}

Result<scout::StepRecord> Session::RunStep(
    const std::function<Status(std::vector<geom::ElementId>* ids,
                               geom::Aabb* prefetch_box)>& query) {
  scout::StepRecord step;
  uint64_t t0 = clock_->NowMicros();
  uint64_t misses0 = pool_->stats().Get("pool.misses");
  uint64_t hits0 = pool_->stats().Get("pool.hits");

  std::vector<geom::ElementId> ids;
  geom::Aabb prefetch_box;
  NEURODB_RETURN_NOT_OK(query(&ids, &prefetch_box));

  step.stall_us = clock_->NowMicros() - t0;
  step.pages_missed = pool_->stats().Get("pool.misses") - misses0;
  step.pages_hit = pool_->stats().Get("pool.hits") - hits0;
  step.results = ids.size();

  // Think pause: the prefetcher works while the scientist looks at the
  // data. Loads within the budget finish before the next query.
  step.prefetched = prefetcher_->AfterQuery(prefetch_box, ids, budget_);
  step.candidates = prefetcher_->CandidateCount();
  clock_->Advance(options_.think_time_us);

  total_stall_us_ += step.stall_us;
  steps_.push_back(step);
  return step;
}

Result<scout::StepRecord> Session::Step(const geom::Aabb& box,
                                        geom::ResultVisitor& visitor) {
  if (!box.IsValid()) {
    return Status::InvalidArgument("Session::Step: invalid box (lo > hi)");
  }
  return RunStep([&](std::vector<geom::ElementId>* ids,
                     geom::Aabb* prefetch_box) {
    *prefetch_box = box;
    // Stream to the caller while keeping the ids the prefetcher observes.
    geom::VectorVisitor collector(ids);
    geom::TeeVisitor tee(&visitor, &collector);
    return index_->RangeQuery(box, pool_.get(), tee);
  });
}

Result<scout::StepRecord> Session::Step(const geom::Aabb& box) {
  geom::CountingVisitor ignore;
  return Step(box, ignore);
}

Result<scout::StepRecord> Session::StepKnn(const geom::Vec3& point, size_t k,
                                           std::vector<geom::KnnHit>* hits) {
  if (k == 0) {
    return Status::InvalidArgument("Session::StepKnn: k must be > 0");
  }
  if (!geom::IsFinitePoint(point)) {
    return Status::InvalidArgument("Session::StepKnn: non-finite query point");
  }

  std::vector<geom::KnnHit> local;
  std::vector<geom::KnnHit>* out = hits != nullptr ? hits : &local;
  return RunStep([&](std::vector<geom::ElementId>* ids,
                     geom::Aabb* prefetch_box) {
    NEURODB_RETURN_NOT_OK(index_->Knn(point, k, pool_.get(), out));
    ids->reserve(out->size());
    for (const geom::KnnHit& hit : *out) ids->push_back(hit.id);
    // The prefetcher sees the neighbourhood the answer came from — the
    // cube covering the kth hit — so exploration models treat kNN steps
    // like range steps.
    double reach = out->empty() ? 0.0 : out->back().distance;
    *prefetch_box =
        geom::Aabb::Cube(point, 2.0f * static_cast<float>(reach));
    return Status::OK();
  });
}

scout::SessionResult Session::Summary() const {
  scout::SessionResult out;
  out.steps = steps_;
  out.total_stall_us = total_stall_us_;
  out.total_time_us = clock_->NowMicros();
  out.pages_missed = pool_->stats().Get("pool.misses");
  out.pages_hit = pool_->stats().Get("pool.hits");
  out.prefetch_issued = pool_->stats().Get("pool.prefetch_issued");
  out.prefetch_used = pool_->stats().Get("pool.prefetch_used");
  return out;
}

}  // namespace engine
}  // namespace neurodb
