// NeuroDB — SpatialBackend: the pluggable index interface of QueryEngine.
//
// A backend owns one or more simulated disks (PageStores), knows how to lay
// a dataset out on them (Build), how to answer range queries through buffer
// pools with streaming visitor delivery (RangeQuery), and how to answer
// k-nearest-neighbour queries with deterministic (distance, id) ordering
// (KnnQuery). Queries take a storage::PoolSet — one BufferPool per store of
// the backend (Stores()) — so multi-store backends such as the domain-
// sharded ShardedBackend fit the same interface as the single-store FLAT,
// paged R-tree and uniform grid, and join BackendChoice::kAll comparisons
// without facade changes.

#ifndef NEURODB_ENGINE_BACKEND_H_
#define NEURODB_ENGINE_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/delta_index.h"
#include "geom/aabb.h"
#include "geom/element.h"
#include "geom/knn.h"
#include "geom/vec3.h"
#include "geom/visitor.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "storage/pool_set.h"

namespace neurodb {
namespace engine {

using geom::CollectingVisitor;
using geom::CountingVisitor;
using geom::ResultVisitor;

/// Index footprint report (SpatialBackend::Stats()).
struct BackendStats {
  /// Disk pages occupied by the backend's data + index structure, summed
  /// over every store of the backend.
  size_t index_pages = 0;
  /// Memory-resident metadata bytes (seed trees, neighbor lists, shard
  /// tables, ...).
  size_t metadata_bytes = 0;
  /// Real device I/O summed over every store of the backend. All zeros
  /// when the backend runs on in-memory stores; populated by
  /// storage::DiskPageStore.
  storage::IoStats io;
};

/// Per-query counters, normalized across backends — one row of the demo's
/// live statistics panel (paper Figure 3).
struct RangeStats {
  /// Disk pages fetched on the demand path.
  uint64_t pages_read = 0;
  /// Modeled query time in microseconds (filled in by the engine's clock).
  uint64_t time_us = 0;
  uint64_t results = 0;
  /// Candidate elements tested against the query box.
  uint64_t elements_scanned = 0;
  /// Tree backends: node fetches per level (leaf = index 0); else empty.
  std::vector<uint64_t> nodes_per_level;
};

/// Abstract index backend. Build once, then answer queries through a
/// caller-supplied PoolSet (the pools determine cache behaviour and time
/// accounting; the engine owns pool sets and clocks).
/// Produces one PageStore per request — the hook QueryEngine uses to put a
/// backend's pages on disk. `name` is a stable per-store identifier (e.g.
/// "Grid" or "Sharded.shard3") that disk factories turn into a file name.
using StoreFactory =
    std::function<Result<std::unique_ptr<storage::PageStore>>(
        const std::string& name)>;

class SpatialBackend {
 public:
  SpatialBackend() = default;
  SpatialBackend(const SpatialBackend&) = delete;
  SpatialBackend& operator=(const SpatialBackend&) = delete;
  virtual ~SpatialBackend() = default;

  /// Short display name ("FLAT", "R-Tree"); also the registry key.
  virtual const char* name() const = 0;

  /// Lay `elements` out in this backend's page store(s) and build the
  /// index. Called exactly once per backend instance.
  virtual Status Build(const geom::ElementVec& elements) = 0;

  /// Stream every element intersecting `box` to `visitor`; page I/O goes
  /// through `pools`, which must be a PoolSet over this backend's Stores().
  virtual Status RangeQuery(const geom::Aabb& box, storage::PoolSet* pools,
                            ResultVisitor& visitor,
                            RangeStats* stats = nullptr) const = 0;

  /// Fill `hits` with the k nearest elements of `point` by box distance,
  /// ascending under the library-wide (distance, id) order (geom/knn.h) so
  /// independent backends return bit-identical answers. Page I/O goes
  /// through `pools`. k == 0 yields an empty answer; k larger than the
  /// dataset yields every element. Non-finite points are InvalidArgument.
  virtual Status KnnQuery(const geom::Vec3& point, size_t k,
                          storage::PoolSet* pools,
                          std::vector<geom::KnnHit>* hits,
                          RangeStats* stats = nullptr) const = 0;

  /// Index footprint.
  virtual BackendStats Stats() const = 0;

  // --- Mutation protocol (base+delta backends) -----------------------------
  //
  // The built-in backends derive from BaseDeltaBackend and support the full
  // protocol; a custom backend that leaves these defaulted is read-only, and
  // QueryEngine::ApplyUpdates rejects the whole batch up front (checked via
  // SupportsUpdates before anything applies) rather than diverging from the
  // mutable backends mid-apply. Liveness validation (id exists / does not)
  // happens at the engine boundary; backends apply what they are given.

  /// True when this backend implements Insert/Erase/Move/Compact. The
  /// engine refuses ApplyUpdates while any registered backend is
  /// read-only — a half-applied batch would break kAll parity forever.
  virtual bool SupportsUpdates() const { return false; }

  /// Add element `id` at `bounds` to this backend's live set.
  virtual Status Insert(geom::ElementId /*id*/, const geom::Aabb& /*bounds*/) {
    return Status::Unimplemented(std::string(name()) +
                                 ": backend does not support updates");
  }

  /// Remove live element `id`.
  virtual Status Erase(geom::ElementId /*id*/) {
    return Status::Unimplemented(std::string(name()) +
                                 ": backend does not support updates");
  }

  /// Relocate live element `id` to `bounds`.
  virtual Status Move(geom::ElementId /*id*/, const geom::Aabb& /*bounds*/) {
    return Status::Unimplemented(std::string(name()) +
                                 ": backend does not support updates");
  }

  /// Fold the accumulated delta back into a rebuilt immutable base. After a
  /// successful Compact, DeltaSize() is 0 and query answers are unchanged.
  /// The physical page layout is new: every BufferPool over this backend's
  /// Stores() must be evicted before its next use (QueryEngine::Compact
  /// handles its own pools; sessions opened before a compaction are stale).
  virtual Status Compact() { return Status::OK(); }

  /// Pending delta records (inserts + tombstones); 0 for read-only backends
  /// and right after Compact.
  virtual size_t DeltaSize() const { return 0; }

  // --- Snapshot protocol (MVCC-lite) ---------------------------------------
  //
  // Mutable backends retain the last few published delta versions so a
  // reader pinned at epoch E keeps seeing the E state while the writer
  // commits E+1 (ISSUE 7). The defaults make an immutable custom backend
  // trivially correct: with no mutations there is only one version, so the
  // epoch-pinned queries forward to the plain ones and publishing is a
  // no-op.

  /// Apply a whole update batch and publish the result as the snapshot at
  /// `epoch` — one immutable delta copy per backend per batch instead of
  /// one per operation. The default loops Insert/Erase/Move.
  virtual Status ApplyBatch(const std::vector<UpdateRequest>& updates,
                            storage::Epoch epoch) {
    (void)epoch;
    for (const auto& u : updates) {
      Status s;
      switch (u.kind) {
        case UpdateKind::kInsert:
          s = Insert(u.id, u.bounds);
          break;
        case UpdateKind::kErase:
          s = Erase(u.id);
          break;
        case UpdateKind::kMove:
          s = Move(u.id, u.bounds);
          break;
      }
      NEURODB_RETURN_NOT_OK(s);
    }
    return Status::OK();
  }

  /// Publish the current pending state as the immutable snapshot at
  /// `epoch`. ApplyBatch calls this itself; the engine also calls it after
  /// Compact so epoch E+1 resolves to the freshly compacted (empty-delta)
  /// version.
  virtual void PublishVersion(storage::Epoch /*epoch*/) {}

  /// Stream every element intersecting `box` as of read epoch
  /// `read_epoch` (kLatestEpoch = live pending state). OutOfRange when the
  /// epoch has been retired from the retention window.
  virtual Status RangeQueryAt(storage::Epoch /*read_epoch*/,
                              const geom::Aabb& box, storage::PoolSet* pools,
                              ResultVisitor& visitor,
                              RangeStats* stats = nullptr) const {
    return RangeQuery(box, pools, visitor, stats);
  }

  /// KnnQuery as of read epoch `read_epoch` (kLatestEpoch = live state).
  virtual Status KnnQueryAt(storage::Epoch /*read_epoch*/,
                            const geom::Vec3& point, size_t k,
                            storage::PoolSet* pools,
                            std::vector<geom::KnnHit>* hits,
                            RangeStats* stats = nullptr) const {
    return KnnQuery(point, k, pools, hits, stats);
  }

  /// How many published delta versions to retain (>= 1). No-op for
  /// immutable backends.
  virtual void SetVersionRetention(size_t /*versions*/) {}

  /// Replace this backend's page store(s) with ones made by `factory` —
  /// how a durable engine moves a backend onto disk-backed stores. Must be
  /// called before Build; the backend owns the returned stores. The base
  /// implementation swaps the single primary store; multi-store backends
  /// (ShardedBackend) override to attach one store per shard.
  virtual Status AttachStores(const StoreFactory& factory) {
    auto store = factory(name());
    NEURODB_RETURN_NOT_OK(store.status());
    owned_store_ = std::move(*store);
    store_ = owned_store_.get();
    return Status::OK();
  }

  /// Every simulated disk of this backend, in a fixed order — the stores a
  /// query PoolSet must be built over. Single-store backends return their
  /// one store; ShardedBackend returns one per shard.
  virtual std::vector<storage::PageStore*> Stores() { return {store_}; }

  /// Real device I/O summed over Stores() (zeros on in-memory stores).
  storage::IoStats IoTotals() const {
    storage::IoStats total;
    // Stores() is non-const only because callers build pools over it; the
    // io counters themselves are const reads.
    for (auto* s : const_cast<SpatialBackend*>(this)->Stores()) {
      total += s->io();
    }
    return total;
  }

  /// Build a PoolSet over Stores() — the pool family a query against this
  /// backend needs. `total_capacity_pages` is split across the stores.
  storage::PoolSet MakePoolSet(size_t total_capacity_pages,
                               SimClock* clock = nullptr,
                               storage::DiskCostModel cost =
                                   storage::DiskCostModel{}) {
    return storage::PoolSet(Stores(), total_capacity_pages, clock, cost);
  }

  /// The primary simulated disk (single-store backends; FLAT's crawl pages
  /// for SCOUT sessions). Multi-store backends keep this empty.
  storage::PageStore* store() { return store_; }
  const storage::PageStore& store() const { return *store_; }

 protected:
  /// The primary store. Points at the default in-memory store unless
  /// AttachStores swapped in an owned (e.g. disk-backed) one.
  storage::PageStore* store_ = &memory_store_;

 private:
  storage::PageStore memory_store_;
  std::unique_ptr<storage::PageStore> owned_store_;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_BACKEND_H_
