// NeuroDB — SpatialBackend: the pluggable index interface of QueryEngine.
//
// A backend owns one simulated disk (PageStore), knows how to lay a dataset
// out on it (Build), how to answer range queries through a BufferPool with
// streaming visitor delivery (RangeQuery), and how to answer k-nearest-
// neighbour queries with deterministic (distance, id) ordering (KnnQuery).
// FLAT, the paged R-tree and the uniform grid are the three shipped
// backends; the interface is what future backends (sharded stores)
// implement to join BackendChoice::kAll comparisons without facade changes.

#ifndef NEURODB_ENGINE_BACKEND_H_
#define NEURODB_ENGINE_BACKEND_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geom/aabb.h"
#include "geom/element.h"
#include "geom/knn.h"
#include "geom/vec3.h"
#include "geom/visitor.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace neurodb {
namespace engine {

using geom::CollectingVisitor;
using geom::CountingVisitor;
using geom::ResultVisitor;

/// Index footprint report (SpatialBackend::Stats()).
struct BackendStats {
  /// Disk pages occupied by the backend's data + index structure.
  size_t index_pages = 0;
  /// Memory-resident metadata bytes (seed trees, neighbor lists, ...).
  size_t metadata_bytes = 0;
};

/// Per-query counters, normalized across backends — one row of the demo's
/// live statistics panel (paper Figure 3).
struct RangeStats {
  /// Disk pages fetched on the demand path.
  uint64_t pages_read = 0;
  /// Modeled query time in microseconds (filled in by the engine's clock).
  uint64_t time_us = 0;
  uint64_t results = 0;
  /// Candidate elements tested against the query box.
  uint64_t elements_scanned = 0;
  /// Tree backends: node fetches per level (leaf = index 0); else empty.
  std::vector<uint64_t> nodes_per_level;
};

/// Abstract index backend. Build once, then answer range queries through a
/// caller-supplied BufferPool (the pool determines cache behaviour and time
/// accounting; the engine owns pools and clocks).
class SpatialBackend {
 public:
  SpatialBackend() = default;
  SpatialBackend(const SpatialBackend&) = delete;
  SpatialBackend& operator=(const SpatialBackend&) = delete;
  virtual ~SpatialBackend() = default;

  /// Short display name ("FLAT", "R-Tree"); also the registry key.
  virtual const char* name() const = 0;

  /// Lay `elements` out in this backend's page store and build the index.
  /// Called exactly once per backend instance.
  virtual Status Build(const geom::ElementVec& elements) = 0;

  /// Stream every element intersecting `box` to `visitor`; page I/O goes
  /// through `pool`, which must be a pool over this backend's store().
  virtual Status RangeQuery(const geom::Aabb& box, storage::BufferPool* pool,
                            ResultVisitor& visitor,
                            RangeStats* stats = nullptr) const = 0;

  /// Fill `hits` with the k nearest elements of `point` by box distance,
  /// ascending under the library-wide (distance, id) order (geom/knn.h) so
  /// independent backends return bit-identical answers. Page I/O goes
  /// through `pool`. k == 0 yields an empty answer; k larger than the
  /// dataset yields every element. Non-finite points are InvalidArgument.
  virtual Status KnnQuery(const geom::Vec3& point, size_t k,
                          storage::BufferPool* pool,
                          std::vector<geom::KnnHit>* hits,
                          RangeStats* stats = nullptr) const = 0;

  /// Index footprint.
  virtual BackendStats Stats() const = 0;

  /// The simulated disk holding this backend's pages. The engine builds
  /// buffer pools over it.
  storage::PageStore* store() { return &store_; }
  const storage::PageStore& store() const { return store_; }

 protected:
  storage::PageStore store_;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_BACKEND_H_
