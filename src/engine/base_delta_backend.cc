#include "engine/base_delta_backend.h"

#include <algorithm>

namespace neurodb {
namespace engine {

Status BaseDeltaBackend::Build(const geom::ElementVec& elements) {
  if (built_) {
    return Status::AlreadyExists(std::string(name()) + ": already built");
  }
  base_empty_ = elements.empty();
  if (!base_empty_) {
    NEURODB_RETURN_NOT_OK(BuildBase(elements));
  }
  if (retain_base_elements()) {
    base_elements_ = elements;
    std::sort(base_elements_.begin(), base_elements_.end(),
              [](const geom::SpatialElement& a, const geom::SpatialElement& b) {
                return a.id < b.id;
              });
  }
  built_ = true;
  return Status::OK();
}

Status BaseDeltaBackend::RangeQuery(const geom::Aabb& box,
                                    storage::PoolSet* pools,
                                    ResultVisitor& visitor,
                                    RangeStats* stats) const {
  NEURODB_RETURN_NOT_OK(RequireBuilt("RangeQuery"));
  if (delta_.Empty()) {
    if (base_empty_) return Status::OK();
    return BaseRangeQuery(box, pools, visitor, stats);
  }

  geom::ElementVec merged;
  if (!base_empty_) {
    CollectingVisitor base_out;
    NEURODB_RETURN_NOT_OK(BaseRangeQuery(box, pools, base_out, stats));
    merged = base_out.TakeElements();
  }
  delta_.Overlay(box, &merged);

  for (const geom::SpatialElement& e : merged) visitor.Visit(e.id, e.bounds);
  if (stats != nullptr) {
    stats->results = merged.size();
    // The insert scan is the delta's whole cost model: memory-resident,
    // no page I/O, but each insert is a candidate tested against the box.
    stats->elements_scanned += delta_.InsertCount();
  }
  return Status::OK();
}

Status BaseDeltaBackend::KnnQuery(const geom::Vec3& point, size_t k,
                                  storage::PoolSet* pools,
                                  std::vector<geom::KnnHit>* hits,
                                  RangeStats* stats) const {
  NEURODB_RETURN_NOT_OK(RequireBuilt("KnnQuery"));
  // The read-only fast path delegates wholesale (hook validation applies).
  if (delta_.Empty() && !base_empty_) {
    return BaseKnnQuery(point, k, pools, hits, stats);
  }

  if (hits == nullptr) {
    return Status::InvalidArgument(std::string(name()) +
                                   "::KnnQuery: null output");
  }
  if (!geom::IsFinitePoint(point)) {
    return Status::InvalidArgument(std::string(name()) +
                                   "::KnnQuery: non-finite point");
  }
  if (k == 0) {
    hits->clear();
    return Status::OK();
  }

  // Widen the base request so that even if every tombstoned/shadowed base
  // element landed among the base's best hits, at least k live ones
  // remain; any live base element outside this widened top set is
  // dominated by >= k live base elements and cannot enter the answer.
  const size_t k_widen = delta_.TombstoneCount() + delta_.InsertCount();
  geom::KnnAccumulator acc(k);
  if (!base_empty_) {
    std::vector<geom::KnnHit> base_hits;
    NEURODB_RETURN_NOT_OK(
        BaseKnnQuery(point, k + k_widen, pools, &base_hits, stats));
    for (const geom::KnnHit& hit : base_hits) {
      if (!delta_.IsDead(hit.id)) acc.Offer(hit.id, hit.distance);
    }
  }
  delta_.SeedKnn(point, &acc);

  *hits = acc.TakeSorted();
  if (stats != nullptr) {
    stats->results = hits->size();
    stats->elements_scanned += delta_.InsertCount();
  }
  return Status::OK();
}

Status BaseDeltaBackend::Insert(geom::ElementId id, const geom::Aabb& bounds) {
  NEURODB_RETURN_NOT_OK(RequireBuilt("Insert"));
  delta_.Insert(id, bounds);
  return Status::OK();
}

Status BaseDeltaBackend::Erase(geom::ElementId id) {
  NEURODB_RETURN_NOT_OK(RequireBuilt("Erase"));
  delta_.Erase(id);
  return Status::OK();
}

Status BaseDeltaBackend::Move(geom::ElementId id, const geom::Aabb& bounds) {
  NEURODB_RETURN_NOT_OK(RequireBuilt("Move"));
  delta_.Move(id, bounds);
  return Status::OK();
}

Status BaseDeltaBackend::ReplaceBase(geom::ElementVec elements) {
  NEURODB_RETURN_NOT_OK(RequireBuilt("ReplaceBase"));
  NEURODB_RETURN_NOT_OK(ResetBase());
  base_empty_ = elements.empty();
  if (!base_empty_) {
    NEURODB_RETURN_NOT_OK(BuildBase(elements));
  }
  if (retain_base_elements()) {
    base_elements_ = std::move(elements);
  } else {
    base_elements_.clear();
  }
  delta_.Clear();
  return Status::OK();
}

Status BaseDeltaBackend::Compact() {
  NEURODB_RETURN_NOT_OK(RequireBuilt("Compact"));
  if (delta_.Empty()) return Status::OK();
  return ReplaceBase(LiveElements());
}

}  // namespace engine
}  // namespace neurodb
