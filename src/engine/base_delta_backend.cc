#include "engine/base_delta_backend.h"

#include <algorithm>
#include <utility>

namespace neurodb {
namespace engine {

Status BaseDeltaBackend::Build(const geom::ElementVec& elements) {
  if (built_) {
    return Status::AlreadyExists(std::string(name()) + ": already built");
  }
  base_empty_ = elements.empty();
  if (!base_empty_) {
    NEURODB_RETURN_NOT_OK(BuildBase(elements));
  }
  if (retain_base_elements()) {
    base_elements_ = elements;
    std::sort(base_elements_.begin(), base_elements_.end(),
              [](const geom::SpatialElement& a, const geom::SpatialElement& b) {
                return a.id < b.id;
              });
  }
  built_ = true;
  // The initial version: empty delta at epoch 0, so a reader pinned at the
  // freshly built state always resolves.
  versions_.Reset(0, std::make_shared<const DeltaIndex>(delta_));
  published_revision_ = delta_.revision();
  return Status::OK();
}

Status BaseDeltaBackend::RangeQuery(const geom::Aabb& box,
                                    storage::PoolSet* pools,
                                    ResultVisitor& visitor,
                                    RangeStats* stats) const {
  return RangeQueryAt(storage::kLatestEpoch, box, pools, visitor, stats);
}

Status BaseDeltaBackend::KnnQuery(const geom::Vec3& point, size_t k,
                                  storage::PoolSet* pools,
                                  std::vector<geom::KnnHit>* hits,
                                  RangeStats* stats) const {
  return KnnQueryAt(storage::kLatestEpoch, point, k, pools, hits, stats);
}

Status BaseDeltaBackend::RangeQueryAt(storage::Epoch read_epoch,
                                      const geom::Aabb& box,
                                      storage::PoolSet* pools,
                                      ResultVisitor& visitor,
                                      RangeStats* stats) const {
  NEURODB_RETURN_NOT_OK(RequireBuilt("RangeQuery"));
  if (read_epoch == storage::kLatestEpoch) {
    return RangeQueryView(read_epoch, delta_, box, pools, visitor, stats);
  }
  auto snap = versions_.At(read_epoch);
  NEURODB_RETURN_NOT_OK(snap.status());
  return RangeQueryView(read_epoch, **snap, box, pools, visitor, stats);
}

Status BaseDeltaBackend::KnnQueryAt(storage::Epoch read_epoch,
                                    const geom::Vec3& point, size_t k,
                                    storage::PoolSet* pools,
                                    std::vector<geom::KnnHit>* hits,
                                    RangeStats* stats) const {
  NEURODB_RETURN_NOT_OK(RequireBuilt("KnnQuery"));
  if (read_epoch == storage::kLatestEpoch) {
    return KnnQueryView(read_epoch, delta_, point, k, pools, hits, stats);
  }
  auto snap = versions_.At(read_epoch);
  NEURODB_RETURN_NOT_OK(snap.status());
  return KnnQueryView(read_epoch, **snap, point, k, pools, hits, stats);
}

Status BaseDeltaBackend::RangeQueryView(storage::Epoch read_epoch,
                                        const DeltaIndex& view,
                                        const geom::Aabb& box,
                                        storage::PoolSet* pools,
                                        ResultVisitor& visitor,
                                        RangeStats* stats) const {
  if (view.Empty()) {
    if (base_empty_) return Status::OK();
    return BaseRangeQuery(read_epoch, box, pools, visitor, stats);
  }

  geom::ElementVec merged;
  if (!base_empty_) {
    CollectingVisitor base_out;
    NEURODB_RETURN_NOT_OK(
        BaseRangeQuery(read_epoch, box, pools, base_out, stats));
    merged = base_out.TakeElements();
  }
  view.Overlay(box, &merged);

  for (const geom::SpatialElement& e : merged) visitor.Visit(e.id, e.bounds);
  if (stats != nullptr) {
    stats->results = merged.size();
    // The insert scan is the delta's whole cost model: memory-resident,
    // no page I/O, but each insert is a candidate tested against the box.
    stats->elements_scanned += view.InsertCount();
  }
  return Status::OK();
}

Status BaseDeltaBackend::KnnQueryView(storage::Epoch read_epoch,
                                      const DeltaIndex& view,
                                      const geom::Vec3& point, size_t k,
                                      storage::PoolSet* pools,
                                      std::vector<geom::KnnHit>* hits,
                                      RangeStats* stats) const {
  // The read-only fast path delegates wholesale (hook validation applies).
  if (view.Empty() && !base_empty_) {
    return BaseKnnQuery(read_epoch, point, k, pools, hits, stats);
  }

  if (hits == nullptr) {
    return Status::InvalidArgument(std::string(name()) +
                                   "::KnnQuery: null output");
  }
  if (!geom::IsFinitePoint(point)) {
    return Status::InvalidArgument(std::string(name()) +
                                   "::KnnQuery: non-finite point");
  }
  if (k == 0) {
    hits->clear();
    return Status::OK();
  }

  // Widen the base request so that even if every tombstoned/shadowed base
  // element landed among the base's best hits, at least k live ones
  // remain; any live base element outside this widened top set is
  // dominated by >= k live base elements and cannot enter the answer.
  const size_t k_widen = view.TombstoneCount() + view.InsertCount();
  geom::KnnAccumulator acc(k);
  if (!base_empty_) {
    std::vector<geom::KnnHit> base_hits;
    NEURODB_RETURN_NOT_OK(
        BaseKnnQuery(read_epoch, point, k + k_widen, pools, &base_hits, stats));
    for (const geom::KnnHit& hit : base_hits) {
      if (!view.IsDead(hit.id)) acc.Offer(hit.id, hit.distance);
    }
  }
  view.SeedKnn(point, &acc);

  *hits = acc.TakeSorted();
  if (stats != nullptr) {
    stats->results = hits->size();
    stats->elements_scanned += view.InsertCount();
  }
  return Status::OK();
}

Status BaseDeltaBackend::InsertPending(geom::ElementId id,
                                       const geom::Aabb& bounds) {
  NEURODB_RETURN_NOT_OK(RequireBuilt("Insert"));
  delta_.Insert(id, bounds);
  return Status::OK();
}

Status BaseDeltaBackend::ErasePending(geom::ElementId id) {
  NEURODB_RETURN_NOT_OK(RequireBuilt("Erase"));
  delta_.Erase(id);
  return Status::OK();
}

Status BaseDeltaBackend::MovePending(geom::ElementId id,
                                     const geom::Aabb& bounds) {
  NEURODB_RETURN_NOT_OK(RequireBuilt("Move"));
  delta_.Move(id, bounds);
  return Status::OK();
}

Status BaseDeltaBackend::Insert(geom::ElementId id, const geom::Aabb& bounds) {
  NEURODB_RETURN_NOT_OK(InsertPending(id, bounds));
  RepublishLatest();
  return Status::OK();
}

Status BaseDeltaBackend::Erase(geom::ElementId id) {
  NEURODB_RETURN_NOT_OK(ErasePending(id));
  RepublishLatest();
  return Status::OK();
}

Status BaseDeltaBackend::Move(geom::ElementId id, const geom::Aabb& bounds) {
  NEURODB_RETURN_NOT_OK(MovePending(id, bounds));
  RepublishLatest();
  return Status::OK();
}

Status BaseDeltaBackend::ApplyBatch(const std::vector<UpdateRequest>& updates,
                                    storage::Epoch epoch) {
  for (const auto& u : updates) {
    Status s;
    switch (u.kind) {
      case UpdateKind::kInsert:
        s = InsertPending(u.id, u.bounds);
        break;
      case UpdateKind::kErase:
        s = ErasePending(u.id);
        break;
      case UpdateKind::kMove:
        s = MovePending(u.id, u.bounds);
        break;
    }
    NEURODB_RETURN_NOT_OK(s);
  }
  PublishVersion(epoch);
  return Status::OK();
}

void BaseDeltaBackend::PublishVersion(storage::Epoch epoch) {
  if (versions_.NumVersions() > 0 &&
      delta_.revision() == published_revision_) {
    // Nothing changed since the last publish: the older version already
    // describes this epoch's state (At() resolves by epoch <= E).
    return;
  }
  versions_.Publish(epoch, std::make_shared<const DeltaIndex>(delta_));
  published_revision_ = delta_.revision();
}

void BaseDeltaBackend::RepublishLatest() {
  if (versions_.NumVersions() > 0 &&
      delta_.revision() == published_revision_) {
    return;
  }
  versions_.Republish(std::make_shared<const DeltaIndex>(delta_));
  published_revision_ = delta_.revision();
}

Status BaseDeltaBackend::ReplaceBase(geom::ElementVec elements) {
  NEURODB_RETURN_NOT_OK(RequireBuilt("ReplaceBase"));
  NEURODB_RETURN_NOT_OK(ResetBase());
  base_empty_ = elements.empty();
  if (!base_empty_) {
    NEURODB_RETURN_NOT_OK(BuildBase(elements));
  }
  if (retain_base_elements()) {
    base_elements_ = std::move(elements);
  } else {
    base_elements_.clear();
  }
  delta_.Clear();
  // Published versions describe states the rebuilt base cannot reproduce.
  ResetDeltaVersions();
  return Status::OK();
}

Status BaseDeltaBackend::Compact() {
  NEURODB_RETURN_NOT_OK(RequireBuilt("Compact"));
  if (delta_.Empty()) return Status::OK();
  return ReplaceBase(LiveElements());
}

}  // namespace engine
}  // namespace neurodb
