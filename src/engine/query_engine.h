// NeuroDB — QueryEngine: the unified public API over all three techniques.
//
// The demo tool integrates FLAT range queries, SCOUT-prefetched exploration
// and TOUCH joins. QueryEngine is that integration as an extensible query
// system rather than a fixed three-exhibit facade:
//
//   * indexes are pluggable SpatialBackend instances (FLAT, the paged
//     R-tree, the uniform grid and the domain-sharded backend ship by
//     default; RegisterBackend adds more) selected per query with
//     BackendChoice — kAll runs every backend and cross-checks their result
//     sets, which is the demo's side-by-side comparison and the
//     differential harness's parity oracle;
//   * requests are typed values (RangeRequest, KnnRequest,
//     WalkthroughRequest, JoinRequest) executed by one Execute overload
//     set, each validated at the boundary with Status errors instead of UB;
//   * results stream through ResultVisitor callbacks — nothing is
//     materialized unless the caller asks for it (CollectingVisitor); kNN
//     answers are ordered (distance, id) hit lists (geom/knn.h);
//   * ExecuteBatch runs many range/kNN requests against shared warm buffer
//     pools and reports per-query plus aggregate statistics; with
//     EngineOptions::num_threads > 1 the batch is partitioned into
//     contiguous lanes executed concurrently on an exec::ThreadPool, each
//     lane over its own pools and clock, with reports merged back in
//     request order — deterministic, and bit-identical to running the same
//     lanes serially;
//   * OpenSession returns an incremental exploration Session handle
//     (engine/session.h) for interactive callers.
//
// core::NeuroToolkit remains as a thin compatibility shim over this class.

#ifndef NEURODB_ENGINE_QUERY_ENGINE_H_
#define NEURODB_ENGINE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "engine/backend.h"
#include "engine/flat_backend.h"
#include "engine/grid_backend.h"
#include "engine/rtree_backend.h"
#include "engine/session.h"
#include "engine/sharded_backend.h"
#include "exec/thread_pool.h"
#include "geom/aabb.h"
#include "neuro/circuit.h"
#include "scout/session.h"
#include "storage/page.h"
#include "storage/pool_set.h"
#include "touch/spatial_join.h"

namespace neurodb {
namespace engine {

/// Engine configuration (validated by LoadCircuit).
struct EngineOptions {
  flat::FlatOptions flat;
  /// The baseline disk-resident R-tree configuration.
  rtree::RTreeOptions rtree;
  /// The uniform-grid parity backend configuration.
  GridOptions grid;
  /// The domain-sharded backend configuration (shard count, inner index).
  ShardedOptions sharded;
  /// Buffer pool capacity (pages) for range queries and batches. For a
  /// multi-store backend the budget is split across its per-shard pools.
  size_t pool_pages = 4096;
  /// Worker threads for concurrent ExecuteBatch lanes and intra-query
  /// shard fan-out. 1 (the default) keeps every path serial; > 1 starts an
  /// exec::ThreadPool at LoadCircuit.
  size_t num_threads = 1;
  storage::DiskCostModel cost;
  /// Exploration session tuning (pool, think time, SCOUT knobs).
  scout::SessionOptions session;

  Status Validate() const;
};

/// Which backend(s) a range or kNN request runs on.
enum class BackendChoice {
  kFlat,
  kRTree,
  kGrid,
  kSharded,
  /// Every registered backend; result sets are cross-checked (the demo's
  /// side-by-side comparison panel and the differential-testing harness).
  kAll,
};

/// Buffer pool state a range request runs against.
enum class CachePolicy {
  /// A fresh (empty) pool per backend — the paper's per-query cost model.
  kCold,
  /// The engine's persistent pools, warmed by previous warm queries.
  kWarm,
};

/// A typed range query.
struct RangeRequest {
  geom::Aabb box;
  BackendChoice backend = BackendChoice::kAll;
  CachePolicy cache = CachePolicy::kCold;
};

/// One backend's row of the live statistics panel (paper Figure 3).
struct RangeRow {
  std::string method;
  RangeStats stats;
};

/// Result of one range request (minus the streamed elements).
struct RangeReport {
  /// One row per backend executed, in registration order.
  std::vector<RangeRow> rows;
  /// All executed backends returned the same element set (vacuously true
  /// for single-backend requests).
  bool results_match = true;
  /// Result cardinality (identical across backends when results_match).
  uint64_t results = 0;
};

/// A typed k-nearest-neighbour query. Answers use the library-wide
/// (distance, id) order of geom/knn.h; `k` larger than the dataset clamps
/// to the dataset, `k == 0` and non-finite points are InvalidArgument.
struct KnnRequest {
  geom::Vec3 point;
  size_t k = 1;
  BackendChoice backend = BackendChoice::kAll;
  CachePolicy cache = CachePolicy::kCold;
};

/// Result of one kNN request.
struct KnnReport {
  /// One row per backend executed, in registration order.
  std::vector<RangeRow> rows;
  /// All executed backends returned the same ordered hit sequence
  /// (vacuously true for single-backend requests).
  bool results_match = true;
  /// The primary backend's answer, ascending by (distance, id).
  std::vector<geom::KnnHit> hits;
};

/// A whole-path exploration replay (see OpenSession for incremental use).
struct WalkthroughRequest {
  std::vector<geom::Aabb> queries;
  scout::PrefetchMethod method = scout::PrefetchMethod::kNone;
};

/// A spatial distance join of the loaded axons against dendrites.
struct JoinRequest {
  touch::JoinMethod method = touch::JoinMethod::kTouch;
  touch::JoinOptions options;
};

/// Aggregate statistics of an ExecuteBatch run.
struct BatchStats {
  uint64_t queries = 0;
  /// Demand page fetches summed over every executed backend row.
  uint64_t pages_read = 0;
  /// Total modeled I/O work across the batch (sum over lanes; equals the
  /// batch clock reading when num_threads == 1).
  uint64_t time_us = 0;
  /// Modeled time of the slowest lane — the batch's simulated critical
  /// path. Equals time_us on the serial path.
  uint64_t critical_path_us = 0;
  /// Lanes the batch was partitioned into (1 on the serial path).
  uint64_t lanes = 1;
  /// Result elements summed over requests (first backend of each).
  uint64_t results = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
};

/// Per-request reports plus the aggregate.
struct BatchResult {
  std::vector<RangeReport> reports;
  BatchStats aggregate;
};

/// One entry of a mixed batch: a range or a kNN query.
using QueryRequest = std::variant<RangeRequest, KnnRequest>;

/// The report of one mixed-batch entry, same alternative as its request.
using QueryReport = std::variant<RangeReport, KnnReport>;

/// Per-request reports plus the aggregate for a mixed Range/Knn batch.
struct MixedBatchResult {
  std::vector<QueryReport> reports;
  BatchStats aggregate;
};

/// The engine. Load a circuit once; execute typed requests against it.
class QueryEngine {
 public:
  explicit QueryEngine(EngineOptions options = EngineOptions());

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Add a backend (before LoadCircuit). FLAT, the paged R-tree, the grid
  /// and the sharded backend are registered by the constructor; extra
  /// backends join kAll comparisons.
  Status RegisterBackend(std::unique_ptr<SpatialBackend> backend);

  /// Flatten `circuit` into segment datasets, lay them out on each
  /// backend's simulated disk(s) and build every index. Starts the worker
  /// pool when num_threads > 1.
  Status LoadCircuit(const neuro::Circuit& circuit);

  bool loaded() const { return loaded_; }

  /// Execute a range request, streaming matches of the primary backend to
  /// `visitor` exactly once. With kAll, secondary backends run for the
  /// comparison panel and the parity check only.
  Result<RangeReport> Execute(const RangeRequest& request,
                              ResultVisitor& visitor);

  /// Statistics-only convenience (nothing materialized).
  Result<RangeReport> Execute(const RangeRequest& request);

  /// Execute a kNN request. With kAll, every backend answers and the
  /// ordered hit sequences are cross-checked (KnnReport::results_match);
  /// the report carries the primary backend's hits.
  Result<KnnReport> Execute(const KnnRequest& request);

  /// Run `requests` in order against per-backend pools shared across the
  /// whole batch (kCold requests evict first). One simulated clock spans
  /// the batch. With num_threads > 1 the batch is split into contiguous
  /// lanes (one pool family and clock per lane) executed concurrently;
  /// reports keep request order, and a batch of kCold requests is
  /// bit-identical to the serial run regardless of the thread count.
  Result<BatchResult> ExecuteBatch(std::span<const RangeRequest> requests);

  /// Mixed-batch form: range and kNN requests interleaved against the same
  /// shared pools and batch clock. BatchStats aggregates across both kinds
  /// (a kNN request contributes its hit count to `results`).
  Result<MixedBatchResult> ExecuteBatch(std::span<const QueryRequest> requests);

  /// Replay a navigation path with the given prefetcher (paper Figure 6).
  Result<scout::SessionResult> Execute(const WalkthroughRequest& request);

  /// Join loaded axon segments against dendrite segments (paper Figure 7).
  Result<touch::JoinResult> Execute(const JoinRequest& request);

  /// Open an incremental exploration session (Session::Step per query).
  /// The session borrows the engine's FLAT index, page store and resolver:
  /// the engine must outlive every Session it hands out.
  Result<Session> OpenSession(
      scout::PrefetchMethod method = scout::PrefetchMethod::kScout);

  // Introspection.
  const geom::Aabb& domain() const { return domain_; }
  size_t NumSegments() const { return num_segments_; }
  const neuro::SegmentResolver& resolver() const { return resolver_; }
  const touch::JoinInput& axons() const { return axons_; }
  const touch::JoinInput& dendrites() const { return dendrites_; }
  const EngineOptions& options() const { return options_; }

  size_t NumBackends() const { return backends_.size(); }
  const SpatialBackend& backend(size_t i) const { return *backends_[i]; }

  /// The built-in backends (compatibility accessors; SCOUT sessions and
  /// the crawl-trace example reach the FLAT index through these).
  FlatBackend* flat_backend() { return flat_; }
  PagedRTreeBackend* rtree_backend() { return rtree_; }
  GridBackend* grid_backend() { return grid_; }
  ShardedBackend* sharded_backend() { return sharded_; }
  const flat::FlatIndex& flat_index() const { return flat_->index(); }
  const rtree::PagedRTree& paged_rtree() const { return rtree_->tree(); }

  /// The worker pool (null until LoadCircuit with num_threads > 1).
  exec::ThreadPool* thread_pool() { return thread_pool_.get(); }

 private:
  Status RequireLoaded(const char* op) const;
  /// Backends a request executes on, primary first.
  std::vector<const SpatialBackend*> Select(BackendChoice choice) const;
  /// Session options with the engine-wide cost model applied.
  scout::SessionOptions EffectiveSessionOptions() const;
  /// Run one request against `pools` (parallel to backends_), filling one
  /// report. The caller chooses pool lifetime (persistent warm pools, batch
  /// pools) — `clock` is the clock those pools charge.
  Status ExecuteOn(const RangeRequest& request, ResultVisitor* visitor,
                   const std::vector<storage::PoolSet*>& pools,
                   SimClock* clock, RangeReport* report) const;
  /// kNN twin of ExecuteOn: one request against `pools`, one report.
  Status ExecuteKnnOn(const KnnRequest& request,
                      const std::vector<storage::PoolSet*>& pools,
                      SimClock* clock, KnnReport* report) const;
  /// Boundary validation shared by Execute and ExecuteBatch.
  Status ValidateRequest(const RangeRequest& request, const char* op) const;
  Status ValidateRequest(const KnnRequest& request, const char* op) const;
  /// Build one fresh pool set per backend on `clock` (cold/batch execution).
  std::vector<std::unique_ptr<storage::PoolSet>> MakePools(
      SimClock* clock) const;
  /// The pool set paired with `backend` (`pools` is parallel to backends_).
  storage::PoolSet* PoolFor(
      const SpatialBackend* backend,
      const std::vector<storage::PoolSet*>& pools) const;
  /// Execute requests[range) against `pools` on `clock`, writing
  /// reports[i] for each request index i and accumulating aggregate
  /// counters except pool hits/misses into `stats` — the shared body of
  /// the serial batch path and of each parallel lane.
  Status ExecuteBatchSlice(std::span<const QueryRequest> requests,
                           size_t begin, size_t end,
                           const std::vector<storage::PoolSet*>& pools,
                           SimClock* clock, std::vector<QueryReport>* reports,
                           BatchStats* stats) const;

  EngineOptions options_;
  std::vector<std::unique_ptr<SpatialBackend>> backends_;
  FlatBackend* flat_ = nullptr;    // owned by backends_
  PagedRTreeBackend* rtree_ = nullptr;  // owned by backends_
  GridBackend* grid_ = nullptr;    // owned by backends_
  ShardedBackend* sharded_ = nullptr;  // owned by backends_

  bool loaded_ = false;
  neuro::SegmentResolver resolver_;
  touch::JoinInput axons_;
  touch::JoinInput dendrites_;
  geom::Aabb domain_;
  size_t num_segments_ = 0;

  /// Worker pool for ExecuteBatch lanes and shard fan-out (num_threads > 1).
  std::unique_ptr<exec::ThreadPool> thread_pool_;

  // Persistent warm-path state (CachePolicy::kWarm), one pool set per
  // backend.
  std::unique_ptr<SimClock> warm_clock_;
  std::vector<std::unique_ptr<storage::PoolSet>> warm_pools_;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_QUERY_ENGINE_H_
