// NeuroDB — QueryEngine: the unified public API over all three techniques.
//
// The demo tool integrates FLAT range queries, SCOUT-prefetched exploration
// and TOUCH joins. QueryEngine is that integration as an extensible query
// system rather than a fixed three-exhibit facade:
//
//   * indexes are pluggable SpatialBackend instances (FLAT, the paged
//     R-tree, the uniform grid and the domain-sharded backend ship by
//     default; RegisterBackend adds more) selected per query with
//     BackendChoice — kAll runs every backend and cross-checks their result
//     sets, which is the demo's side-by-side comparison and the
//     differential harness's parity oracle;
//   * requests are typed values (RangeRequest, KnnRequest,
//     WalkthroughRequest, JoinRequest) executed by one Execute overload
//     set, each validated at the boundary with Status errors instead of UB;
//   * results stream through ResultVisitor callbacks — nothing is
//     materialized unless the caller asks for it (CollectingVisitor); kNN
//     answers are ordered (distance, id) hit lists (geom/knn.h);
//   * ExecuteBatch runs many range/kNN requests against shared warm buffer
//     pools and reports per-query plus aggregate statistics; with
//     EngineOptions::num_threads > 1 the batch is partitioned into
//     contiguous lanes executed concurrently on an exec::ThreadPool, each
//     lane over its own pools and clock, with reports merged back in
//     request order — deterministic, and bit-identical to running the same
//     lanes serially;
//   * OpenSession returns an incremental exploration Session handle
//     (engine/session.h) for interactive callers.
//
// core::NeuroToolkit remains as a thin compatibility shim over this class.

#ifndef NEURODB_ENGINE_QUERY_ENGINE_H_
#define NEURODB_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "cache/result_cache.h"
#include "common/result.h"
#include "engine/advisor.h"
#include "engine/backend.h"
#include "engine/delta_index.h"
#include "engine/durability.h"
#include "engine/flat_backend.h"
#include "engine/grid_backend.h"
#include "engine/rtree_backend.h"
#include "engine/session.h"
#include "engine/sharded_backend.h"
#include "exec/thread_pool.h"
#include "geom/aabb.h"
#include "neuro/circuit.h"
#include "obs/metrics.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "scout/session.h"
#include "storage/page.h"
#include "storage/pool_manager.h"
#include "storage/pool_set.h"
#include "touch/spatial_join.h"

namespace neurodb {
namespace engine {

/// Whether the engine owns an obs::MetricsRegistry. With kOff every record
/// site inlines to a null-pointer test (no registry, no atomics, no
/// traces built unless a request asks) — answers are byte-identical
/// either way; only the bookkeeping differs.
enum class MetricsMode {
  kOff,
  kOn,
};

/// Engine configuration (validated by LoadCircuit).
struct EngineOptions {
  flat::FlatOptions flat;
  /// The baseline disk-resident R-tree configuration.
  rtree::RTreeOptions rtree;
  /// The uniform-grid parity backend configuration.
  GridOptions grid;
  /// The domain-sharded backend configuration (shard count, inner index).
  ShardedOptions sharded;
  /// Buffer pool capacity (pages) for range queries and batches. For a
  /// multi-store backend the budget is split across its per-shard pools.
  size_t pool_pages = 4096;
  /// Worker threads for concurrent ExecuteBatch lanes and intra-query
  /// shard fan-out. 1 (the default) keeps every path serial; > 1 starts an
  /// exec::ThreadPool at LoadCircuit.
  size_t num_threads = 1;
  /// Evaluated boxes the engine-level result cache keeps for
  /// CachePolicy::kDelta requests (and each batch lane's private cache).
  /// 0 is the engine-wide kill switch: kDelta behaves like kWarm and
  /// OpenSession/WalkthroughRequest hand out uncached sessions even for
  /// kWarm/kDelta. (Sessions opened via Session::Open directly size their
  /// cache from scout::SessionOptions::result_cache_boxes instead.)
  size_t result_cache_boxes = 8;
  /// Delta snapshot versions every backend retains for pinned readers
  /// (RangeRequest::read_epoch): a reader pinned at most this many epochs
  /// behind the newest ApplyUpdates still resolves; older pins get
  /// kOutOfRange and should re-pin at the current epoch. Compact() retains
  /// nothing across itself — it publishes a single post-compact version
  /// (readers are excluded while it runs, so no in-flight pin is lost).
  size_t retained_versions = 8;
  storage::DiskCostModel cost;
  /// Exploration session tuning (pool, think time, SCOUT knobs).
  scout::SessionOptions session;
  /// Durable storage: a data directory with a checkpointed base, a
  /// write-ahead log for ApplyUpdates and disk-backed page stores. The
  /// default (empty dir) keeps everything in memory.
  DurabilityOptions durability;
  /// Engine-wide metrics (counters, gauges, latency histograms) exported
  /// through QueryEngine::MetricsSnapshot(). On by default: recording is a
  /// few relaxed atomics per request. kOff disables the registry, the
  /// slow-query log and all engine-built traces.
  MetricsMode metrics = MetricsMode::kOn;
  /// Queries slower than this (wall microseconds) are retained — with
  /// their full trace span tree — in the engine's slow-query log.
  /// 0 (the default) disables the log. Requires metrics == kOn.
  uint64_t slow_query_us = 0;
  /// Ring capacity of the slow-query log (oldest entries evict first).
  size_t slow_log_entries = 64;

  Status Validate() const;
};

/// Which backend(s) a range or kNN request runs on.
enum class BackendChoice {
  kFlat,
  kRTree,
  kGrid,
  kSharded,
  /// Every registered backend; result sets are cross-checked (the demo's
  /// side-by-side comparison panel and the differential-testing harness).
  kAll,
};

/// Buffer pool (and result cache) state a request runs against.
enum class CachePolicy {
  /// A fresh (empty) pool per backend — the paper's per-query cost model.
  /// Via Execute this uses throwaway local pools and leaves the engine's
  /// persistent warm state untouched; *inside a serial batch* a kCold
  /// request instead evicts the shared (persistent) pools and clears the
  /// result cache before running — the batch's pools are the warm pools,
  /// so cold-in-batch deliberately resets the warm state.
  kCold,
  /// The engine's persistent pools (storage::PoolManager), warmed by
  /// previous warm/delta queries and surviving across ExecuteBatch calls
  /// on the serial path.
  kWarm,
  /// kWarm, plus semantic result caching: a single-backend range request
  /// is decomposed against the engine's cache::ResultCache — the covered
  /// fragment answered from cached results, only the residual boxes
  /// executed — and its full result set is cached for the next request.
  /// Multi-backend (kAll) requests and kNN requests fall back to kWarm.
  /// In a session, kDelta and kWarm both enable the session result cache.
  kDelta,
};

/// A typed range query.
struct RangeRequest {
  geom::Aabb box;
  BackendChoice backend = BackendChoice::kAll;
  CachePolicy cache = CachePolicy::kCold;
  /// The data epoch to answer at. The default (storage::kLatestEpoch) pins
  /// the request to the engine's current epoch at execution start — so one
  /// request sees one consistent snapshot even while ApplyUpdates publishes
  /// the next epoch concurrently. An explicit epoch within the retention
  /// window (EngineOptions::retained_versions) replays that snapshot;
  /// older epochs fail with kOutOfRange. Explicitly pinned requests bypass
  /// the result-cache delta path (cached entries track the live epoch).
  storage::Epoch read_epoch = storage::kLatestEpoch;
  /// Build a span tree for this request and attach it to the report
  /// (RangeReport::trace): one span per executed backend with pool and
  /// disk sub-spans. Requires EngineOptions::metrics == kOn.
  bool trace = false;
};

/// One backend's row of the live statistics panel (paper Figure 3).
struct RangeRow {
  std::string method;
  RangeStats stats;
};

/// Result of one range request (minus the streamed elements).
struct RangeReport {
  /// One row per backend executed, in registration order.
  std::vector<RangeRow> rows;
  /// All executed backends returned the same element set (vacuously true
  /// for single-backend requests).
  bool results_match = true;
  /// Result cardinality (identical across backends when results_match).
  uint64_t results = 0;
  /// Data epoch this request answered at (0 until the first ApplyUpdates).
  storage::Epoch epoch = 0;
  /// CachePolicy::kDelta only: fraction of the query volume answered from
  /// the result cache, and the fraction the backend still executed.
  /// Non-delta requests report 0 / 1.
  double cache_hit_fraction = 0.0;
  double delta_volume_fraction = 1.0;
  /// Real device I/O this request caused, summed over executed backends.
  /// All zeros when the engine runs on in-memory stores; populated when
  /// backends sit on storage::DiskPageStore.
  storage::IoStats io;
  /// Logical buffer-pool activity of this request (hits, misses,
  /// evictions), summed over executed backends — populated uniformly on
  /// memory and disk stores, unlike `io`.
  storage::PoolCounters pool;
  /// The request's span tree, when RangeRequest::trace asked for one (and
  /// the engine runs with metrics on). Null otherwise.
  std::shared_ptr<const obs::Trace> trace;
};

/// A typed k-nearest-neighbour query. Answers use the library-wide
/// (distance, id) order of geom/knn.h; `k` larger than the dataset clamps
/// to the dataset, `k == 0` and non-finite points are InvalidArgument.
struct KnnRequest {
  geom::Vec3 point;
  size_t k = 1;
  BackendChoice backend = BackendChoice::kAll;
  CachePolicy cache = CachePolicy::kCold;
  /// Snapshot pin, exactly as RangeRequest::read_epoch.
  storage::Epoch read_epoch = storage::kLatestEpoch;
  /// Attach a span tree to the report, exactly as RangeRequest::trace.
  bool trace = false;
};

/// Result of one kNN request.
struct KnnReport {
  /// One row per backend executed, in registration order.
  std::vector<RangeRow> rows;
  /// All executed backends returned the same ordered hit sequence
  /// (vacuously true for single-backend requests).
  bool results_match = true;
  /// The primary backend's answer, ascending by (distance, id).
  std::vector<geom::KnnHit> hits;
  /// Data epoch this request answered at (0 until the first ApplyUpdates).
  storage::Epoch epoch = 0;
  /// Real device I/O this request caused, summed over executed backends
  /// (all zeros on in-memory stores).
  storage::IoStats io;
  /// Logical buffer-pool activity (uniform across memory and disk), as
  /// RangeReport::pool.
  storage::PoolCounters pool;
  /// The request's span tree, when KnnRequest::trace asked for one.
  std::shared_ptr<const obs::Trace> trace;
};

/// Result of one ApplyUpdates batch.
struct UpdateReport {
  /// Mutations applied (the whole batch, or none on validation failure).
  uint64_t applied = 0;
  /// The epoch the batch created — every later report answers at it until
  /// the next batch.
  storage::Epoch epoch = 0;
  /// Union of every bounding box the batch touched (old and new positions)
  /// — exactly the region whose cached results were invalidated.
  geom::Aabb dirty;
  /// Engine result-cache entries this batch invalidated.
  uint64_t invalidated_boxes = 0;
};

/// A whole-path exploration replay (see OpenSession for incremental use).
struct WalkthroughRequest {
  std::vector<geom::Aabb> queries;
  scout::PrefetchMethod method = scout::PrefetchMethod::kNone;
  /// kWarm/kDelta route every step through the session result cache and
  /// the delta planner; kCold (the default) re-executes each box in full.
  CachePolicy cache = CachePolicy::kCold;
};

/// A spatial distance join of the loaded axons against dendrites.
struct JoinRequest {
  touch::JoinMethod method = touch::JoinMethod::kTouch;
  touch::JoinOptions options;
};

/// Aggregate statistics of an ExecuteBatch run.
struct BatchStats {
  uint64_t queries = 0;
  /// Demand page fetches summed over every executed backend row.
  uint64_t pages_read = 0;
  /// Total modeled I/O work across the batch (sum over lanes; equals the
  /// batch clock reading when num_threads == 1).
  uint64_t time_us = 0;
  /// Modeled time of the slowest lane — the batch's simulated critical
  /// path. Equals time_us on the serial path.
  uint64_t critical_path_us = 0;
  /// Lanes the batch was partitioned into (1 on the serial path).
  uint64_t lanes = 1;
  /// Result elements summed over requests (first backend of each).
  uint64_t results = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_evictions = 0;
  /// Requests answered through the result-cache delta planner.
  uint64_t delta_requests = 0;
  /// Mean covered / residual volume fraction over those requests (0 / 0
  /// when the batch had none).
  double cache_hit_fraction = 0.0;
  double delta_volume_fraction = 0.0;
};

/// Per-request reports plus the aggregate.
struct BatchResult {
  std::vector<RangeReport> reports;
  BatchStats aggregate;
};

/// One entry of a mixed batch: a range or a kNN query.
using QueryRequest = std::variant<RangeRequest, KnnRequest>;

/// The report of one mixed-batch entry, same alternative as its request.
using QueryReport = std::variant<RangeReport, KnnReport>;

/// Per-request reports plus the aggregate for a mixed Range/Knn batch.
struct MixedBatchResult {
  std::vector<QueryReport> reports;
  BatchStats aggregate;
};

/// The engine. Load a circuit once; execute typed requests against it.
///
/// Concurrency (docs/API.md "Concurrency & snapshots"): after load, any
/// number of reader threads may call Execute/ExecuteBatch while one writer
/// at a time runs ApplyUpdates — every query pins a read epoch at start and
/// answers from that snapshot (backends retain the last
/// EngineOptions::retained_versions delta versions). ApplyUpdates calls are
/// serialized against each other; Compact excludes readers for the rebuild
/// itself. ApplyUpdatesAsync/CompactAsync move the same work onto a
/// dedicated exec::ThreadPool worker so the calling thread never blocks.
class QueryEngine {
 public:
  explicit QueryEngine(EngineOptions options = EngineOptions());

  /// Joins the worker pools first: in-flight async mutations and batch
  /// lanes finish before any engine state is torn down.
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Recover a durable engine from `dir`: load the last checkpointed base
  /// snapshot, rebuild every backend over it (on disk-backed stores when
  /// options.durability.disk_backends), replay the WAL tail through the
  /// normal ApplyUpdates path, and truncate a torn final record. The
  /// engine resumes at the exact epoch and live set it crashed with (up to
  /// the last fsync'd batch). `options.durability.dir` is overwritten with
  /// `dir`; only built-in backends participate (RegisterBackend requires
  /// the manual LoadElements path). `report`, when non-null, receives what
  /// recovery found.
  static Result<std::unique_ptr<QueryEngine>> Open(
      const std::string& dir, EngineOptions options = EngineOptions(),
      RecoveryReport* report = nullptr);

  /// Add a backend (before LoadCircuit). FLAT, the paged R-tree, the grid
  /// and the sharded backend are registered by the constructor; extra
  /// backends join kAll comparisons.
  Status RegisterBackend(std::unique_ptr<SpatialBackend> backend);

  /// Flatten `circuit` into segment datasets, lay them out on each
  /// backend's simulated disk(s) and build every index. Starts the worker
  /// pool when num_threads > 1.
  Status LoadCircuit(const neuro::Circuit& circuit);

  /// Load a bare element set (no morphology): every spatial backend is
  /// built, but join inputs are empty and SCOUT has no skeletons to
  /// extract. The differential harnesses use this to rebuild engines over
  /// shrunken element subsets; ids must be unique. An *empty* set is
  /// allowed: the engine starts with no live elements and is populated
  /// purely through ApplyUpdates (a durable engine WAL-logs the load set —
  /// even the empty one — so Open recovers it before its first
  /// checkpoint).
  Status LoadElements(geom::ElementVec elements);

  bool loaded() const { return loaded_; }

  /// Apply a batch of mutations to every registered backend, atomically
  /// with respect to validation: the whole batch is checked against the
  /// live id set first (insert of a live id, erase/move of an unknown id
  /// and invalid bounds are InvalidArgument/AlreadyExists/NotFound) and
  /// nothing is applied on failure. On success the engine epoch advances
  /// by one, the result cache drops exactly the cached boxes intersecting
  /// the batch's dirty region, and the update log gains one stamp (open
  /// delta-aware sessions catch up on their next step). Buffer pools are
  /// untouched — updates live in each backend's in-memory delta until
  /// Compact(). Thread-safe against concurrent readers: backends publish
  /// the new delta version *before* the engine epoch advances, so a reader
  /// pinned at either epoch sees a complete snapshot. Concurrent
  /// ApplyUpdates calls serialize on an internal commit lock.
  Result<UpdateReport> ApplyUpdates(std::span<const UpdateRequest> updates);

  /// ApplyUpdates off the calling thread: the batch runs on the engine's
  /// mutation worker (started lazily) and the future carries the report.
  /// The batch is copied in; ordering between concurrently submitted
  /// batches follows the commit lock, exactly as concurrent ApplyUpdates.
  std::future<Result<UpdateReport>> ApplyUpdatesAsync(
      std::vector<UpdateRequest> updates);

  /// Fold every backend's delta into a rebuilt immutable base (same
  /// PageStore objects, fresh pages), evict the engine's warm pools (the
  /// physical layout changed; cached result boxes stay — answers are
  /// unchanged) and advance the epoch. Readers are excluded for the
  /// rebuild itself (an exclusive lock held only across Compact); sessions
  /// opened before a Compact *survive* it — their pools re-fetch lazily
  /// through the store-epoch check (storage::BufferPool::store_epoch).
  Status Compact();

  /// Compact off the calling thread, on the engine's mutation worker.
  std::future<Status> CompactAsync();

  /// Checkpoint off the calling thread, on the engine's mutation worker:
  /// the live set is pinned at the current epoch (VersionRing snapshot)
  /// and streamed to base.ndb while readers AND writers proceed; only the
  /// final header-commit + WAL-cut swap takes the commit lock. Also
  /// triggered automatically when the WAL passes
  /// DurabilityOptions::checkpoint_wal_bytes.
  std::future<Status> CheckpointAsync();

  /// Durable engines only: rewrite base.ndb as the live set pinned at the
  /// current epoch and drop the covered WAL prefix — without folding
  /// backend deltas (Compact() does both). The rewrite streams outside
  /// the commit lock (writers keep committing; their records survive the
  /// WAL cut); after a quiescent checkpoint, Open replays nothing.
  Status Checkpoint();

  /// Pending delta records summed over every backend (0 right after
  /// LoadCircuit/LoadElements and after Compact).
  size_t DeltaSize() const;

  /// The current data epoch (0 until the first ApplyUpdates). Safe to call
  /// from any thread; the value a concurrent reader should pin at.
  storage::Epoch epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// The applied-batch history (epoch + dirty region per batch).
  const UpdateLog& update_log() const { return update_log_; }

  /// Execute a range request, streaming matches of the primary backend to
  /// `visitor` exactly once. With kAll, secondary backends run for the
  /// comparison panel and the parity check only.
  Result<RangeReport> Execute(const RangeRequest& request,
                              ResultVisitor& visitor);

  /// Statistics-only convenience (nothing materialized).
  Result<RangeReport> Execute(const RangeRequest& request);

  /// Execute a kNN request. With kAll, every backend answers and the
  /// ordered hit sequences are cross-checked (KnnReport::results_match);
  /// the report carries the primary backend's hits.
  Result<KnnReport> Execute(const KnnRequest& request);

  /// Run `requests` in order against per-backend pools shared across the
  /// whole batch (kCold requests evict first). One simulated clock spans
  /// the batch. With num_threads > 1 the batch is split into contiguous
  /// lanes (one pool family and clock per lane) executed concurrently;
  /// reports keep request order, and a batch of kCold requests is
  /// bit-identical to the serial run regardless of the thread count.
  Result<BatchResult> ExecuteBatch(std::span<const RangeRequest> requests);

  /// Mixed-batch form: range and kNN requests interleaved against the same
  /// shared pools and batch clock. BatchStats aggregates across both kinds
  /// (a kNN request contributes its hit count to `results`).
  Result<MixedBatchResult> ExecuteBatch(std::span<const QueryRequest> requests);

  /// Replay a navigation path with the given prefetcher (paper Figure 6).
  Result<scout::SessionResult> Execute(const WalkthroughRequest& request);

  /// Join loaded axon segments against dendrite segments (paper Figure 7).
  Result<touch::JoinResult> Execute(const JoinRequest& request);

  /// Rank every built-in backend for `profile` with the cost model in
  /// engine/advisor.h — expected pages per query, computed from the index
  /// structures the backends actually built (R-tree level profiles, FLAT
  /// page bounds, grid geometry, shard populations) — and recommend the
  /// cheapest. Pure read + a few advisor.* metrics; the engine keeps
  /// serving every BackendChoice regardless of the recommendation.
  Result<AdvisorDecision> Advise(const WorkloadProfile& profile);

  /// Open an incremental exploration session (Session::Step per query).
  /// The session borrows the engine's FLAT index, page store and resolver:
  /// the engine must outlive every Session it hands out. `cache` kWarm or
  /// kDelta gives the session a result cache: overlapping steps are
  /// answered by delta decomposition and the prefetcher's predicted next
  /// box is evaluated into the cache during think time. Sessions survive
  /// Compact(): each step re-checks the store's layout epoch and lazily
  /// re-fetches through its pool instead of failing. Requires a non-empty
  /// FLAT base (an engine created empty has no crawl layout to explore).
  Result<Session> OpenSession(
      scout::PrefetchMethod method = scout::PrefetchMethod::kScout,
      CachePolicy cache = CachePolicy::kCold);

  // Introspection.
  const geom::Aabb& domain() const { return domain_; }
  size_t NumSegments() const { return num_segments_; }
  const neuro::SegmentResolver& resolver() const { return resolver_; }
  const touch::JoinInput& axons() const { return axons_; }
  const touch::JoinInput& dendrites() const { return dendrites_; }
  const EngineOptions& options() const { return options_; }

  size_t NumBackends() const { return backends_.size(); }
  const SpatialBackend& backend(size_t i) const { return *backends_[i]; }

  /// The built-in backends (compatibility accessors; SCOUT sessions and
  /// the crawl-trace example reach the FLAT index through these).
  FlatBackend* flat_backend() { return flat_; }
  PagedRTreeBackend* rtree_backend() { return rtree_; }
  GridBackend* grid_backend() { return grid_; }
  ShardedBackend* sharded_backend() { return sharded_; }
  const flat::FlatIndex& flat_index() const { return flat_->index(); }
  const rtree::PagedRTree& paged_rtree() const { return rtree_->tree(); }

  /// The worker pool (null until LoadCircuit with num_threads > 1).
  exec::ThreadPool* thread_pool() { return thread_pool_.get(); }

  /// The persistent warm-path pool manager (null until LoadCircuit): one
  /// named PoolSet per backend — including the sharded backend's per-shard
  /// pools — surviving across Execute and serial ExecuteBatch calls, with
  /// aggregate hit/miss/eviction statistics.
  storage::PoolManager* pool_manager() { return pool_manager_.get(); }

  /// The engine-level result cache serving CachePolicy::kDelta requests
  /// (null until LoadCircuit; disabled when result_cache_boxes == 0).
  const cache::ResultCache* result_cache() const {
    return result_cache_.get();
  }

  /// The durable-storage manager (null for in-memory engines).
  const DurabilityManager* durability() const { return durability_.get(); }

  /// Device I/O totals: every backend store plus base.ndb + wal.ndb. All
  /// zeros for in-memory engines.
  storage::IoStats IoTotals() const;

  /// The engine-wide metrics registry (null when EngineOptions::metrics ==
  /// kOff). Thread-safe; callers may resolve and record their own metrics
  /// alongside the engine's (see docs/OBSERVABILITY.md for the catalog).
  obs::MetricsRegistry* metrics() const { return metrics_.get(); }

  /// The slow-query log (null unless metrics are on and
  /// EngineOptions::slow_query_us > 0).
  const obs::SlowQueryLog* slow_log() const { return slow_log_.get(); }

  /// Point-in-time export of every metric, with snapshot-sampled gauges
  /// (epoch, delta size, pool/cache/io totals) refreshed first. Empty when
  /// metrics are off. Serializes via obs::MetricsSnapshot::ToJson() /
  /// ToPrometheus(). Thread-safe (briefly excludes writers while sampling
  /// the warm-pool and cache gauges).
  obs::MetricsSnapshot MetricsSnapshot();

 private:
  Status RequireLoaded(const char* op) const;
  /// The body of Open on a constructed engine: attach, load base, replay.
  Status Recover(RecoveryReport* report);

  /// One caller's batch waiting in the group-commit queue. Stack-allocated
  /// by the owning ApplyUpdates call; the leader fills `result`, then
  /// flips `done` under group_mu_ and signals group_cv_ — the owner parks
  /// on that condition variable (never on commit_mu_, which would convoy
  /// acknowledged writers behind the next leader) and group_mu_ is the
  /// happens-before edge for both fields.
  struct PendingCommit {
    std::span<const UpdateRequest> updates;
    Result<UpdateReport> result{Status::Internal("commit not processed")};
    bool done = false;
  };
  /// Validate `updates` against live_bounds_ overlaid with `overlay`
  /// (id → alive after earlier accepted batches in the same group). On OK
  /// the batch's own effects are merged into `overlay`.
  Status ValidateBatchLocked(
      std::span<const UpdateRequest> updates,
      std::unordered_map<geom::ElementId, bool>* overlay) const;
  /// Post-validation, post-WAL tail of a commit: mutate backends, publish
  /// version `next`, advance the epoch, invalidate caches, stamp the log.
  Result<UpdateReport> ApplyValidatedLocked(
      std::span<const UpdateRequest> updates, storage::Epoch next);
  /// The non-grouped commit body (kPerBatch / kNone / in-memory): validate,
  /// log one record (fsync per DurabilityOptions::sync), apply.
  Result<UpdateReport> ApplyUpdatesLocked(
      std::span<const UpdateRequest> updates);
  /// Group-commit leader body, caller holds commit_mu_: drain up to
  /// group_max_batches queued commits (waiting group_hold_us for the group
  /// to fill), validate each against the cumulative overlay, append every
  /// accepted record in ONE WAL write + ONE fsync, then apply in order.
  void CommitGroupLocked(std::unique_lock<std::mutex>& commit_lock);
  /// Replay a kWalKindEpochBump record: publish an empty version at `e` on
  /// every backend and advance the engine epoch (a Compact whose
  /// checkpoint never completed left this marker so replay continuity
  /// holds across its epoch).
  Status ApplyEpochBump(storage::Epoch e);
  /// Called under commit_mu_ after a successful durable commit: schedule a
  /// background checkpoint on the mutation worker when the WAL has grown
  /// past DurabilityOptions::checkpoint_wal_bytes (at most one in flight).
  void MaybeScheduleCheckpointLocked();
  /// The streaming checkpoint: pin the live set at the current epoch via
  /// the FLAT backend's version ring (brief commit_mu_ hold), stream the
  /// COW base rewrite under a *shared* compact lock (readers and writers
  /// proceed), then re-take commit_mu_ for the header-commit + WAL-cut
  /// swap. Serialized against itself by checkpoint_mu_.
  Status CheckpointStreaming();
  /// The single-threaded mutation worker behind the Async entry points,
  /// started on first use. Deliberately separate from thread_pool_: a
  /// mutation task blocks on commit/compact locks, and parking it on the
  /// query pool could starve the batch lanes a Compact is waiting out.
  exec::ThreadPool* MutationPool();
  /// The shared tail of LoadCircuit/LoadElements: build every backend over
  /// `elements`, start the worker pool, create the persistent pool manager,
  /// result cache and live-id map.
  Status FinishLoad(geom::ElementVec elements);
  /// Backends a request executes on, primary first.
  std::vector<const SpatialBackend*> Select(BackendChoice choice) const;
  /// Session options with the engine-wide cost model applied.
  scout::SessionOptions EffectiveSessionOptions() const;
  /// result_cache_boxes, forced to 0 (caching disabled everywhere) when
  /// the FLAT index is configured approximate (flat.rescue == false) —
  /// one incomplete kFlat answer would poison the backend-agnostic cache.
  size_t EffectiveResultCacheBoxes() const;
  /// Run one request against `pools` (parallel to backends_), filling one
  /// report. The caller chooses pool lifetime (persistent warm pools, batch
  /// pools) — `clock` is the clock those pools charge.
  /// `trace` (may be null) gains one span per executed backend with pool
  /// and disk sub-spans.
  Status ExecuteOn(const RangeRequest& request, ResultVisitor* visitor,
                   const std::vector<storage::PoolSet*>& pools,
                   SimClock* clock, obs::Trace* trace,
                   RangeReport* report) const;
  /// kNN twin of ExecuteOn: one request against `pools`, one report.
  Status ExecuteKnnOn(const KnnRequest& request,
                      const std::vector<storage::PoolSet*>& pools,
                      SimClock* clock, obs::Trace* trace,
                      KnnReport* report) const;
  /// The delta-request body: plan `request.box` against `cache`, answer
  /// the covered fragment from cached results and the residual boxes via
  /// `backend`, merge under the id order, stream to `visitor` and remember
  /// the full answer in `cache`.
  Status ExecuteDeltaOn(const RangeRequest& request,
                        const SpatialBackend* backend, ResultVisitor* visitor,
                        const std::vector<storage::PoolSet*>& pools,
                        SimClock* clock, cache::ResultCache* cache,
                        obs::Trace* trace, RangeReport* report) const;
  /// The single backend `request` takes the delta path on, or nullptr when
  /// the request is not delta-eligible (not kDelta, cache disabled, or a
  /// multi-backend choice whose parity panel must really execute).
  const SpatialBackend* DeltaBackend(const RangeRequest& request,
                                     const cache::ResultCache* cache) const;
  /// Boundary validation shared by Execute and ExecuteBatch.
  Status ValidateRequest(const RangeRequest& request, const char* op) const;
  Status ValidateRequest(const KnnRequest& request, const char* op) const;
  /// One pool set per backend out of `manager` (created on first use, by
  /// backend name) — the pool family every execution path runs against.
  std::vector<storage::PoolSet*> BackendPools(
      storage::PoolManager* manager) const;
  /// The pool set paired with `backend` (`pools` is parallel to backends_).
  storage::PoolSet* PoolFor(
      const SpatialBackend* backend,
      const std::vector<storage::PoolSet*>& pools) const;
  /// Position of `backend` in backends_ (it always comes from Select).
  size_t BackendIndex(const SpatialBackend* backend) const;
  /// Append a "pool" sub-span (hits/misses/evictions) — and, when the
  /// backend did physical I/O, a "disk" sub-span (bytes, fsyncs) — under
  /// the closed backend span, sharing its time window.
  static void AddPoolAndDiskSpans(obs::Trace* trace, int backend_span,
                                  const storage::PoolCounters& pool_delta,
                                  const storage::IoStats& io_delta);
  /// Execute requests[range) against `manager`'s pools (`pools` is the
  /// manager's per-backend family, `clock` its clock), writing reports[i]
  /// for each request index i and accumulating aggregate counters except
  /// pool hits/misses into `stats` — the shared body of the serial batch
  /// path and of each parallel lane. `cache` (may be null) serves kDelta
  /// requests; stats->cache_hit_fraction / delta_volume_fraction
  /// accumulate *sums* here, normalized to means by the caller. kCold
  /// requests evict through `manager` (keeping its eviction statistics
  /// truthful) and clear `cache`.
  Status ExecuteBatchSlice(std::span<const QueryRequest> requests,
                           size_t begin, size_t end,
                           storage::PoolManager* manager,
                           const std::vector<storage::PoolSet*>& pools,
                           SimClock* clock, cache::ResultCache* cache,
                           std::vector<QueryReport>* reports,
                           BatchStats* stats) const;

  /// Resolved hot-path metric pointers for one request kind; all null when
  /// metrics are off, so record sites inline to a pointer test.
  struct QueryMetrics {
    obs::Counter* count = nullptr;
    obs::Counter* results = nullptr;
    obs::Counter* pages_read = nullptr;
    obs::Histogram* latency_us = nullptr;
  };
  /// Per-backend counters, parallel to backends_ (resolved at FinishLoad).
  struct BackendMetrics {
    obs::Counter* queries = nullptr;
    obs::Counter* pages_read = nullptr;
    obs::Counter* results = nullptr;
  };
  /// Every engine-recorded metric, resolved once against metrics_ (in the
  /// constructor / FinishLoad) so hot paths never pay a name lookup.
  struct EngineMetrics {
    QueryMetrics range;
    QueryMetrics knn;
    obs::Counter* batch_count = nullptr;
    obs::Counter* batch_queries = nullptr;
    obs::Counter* batch_lanes = nullptr;
    obs::Histogram* batch_latency_us = nullptr;
    obs::Histogram* batch_lane_time_us = nullptr;
    obs::Counter* update_batches = nullptr;
    obs::Counter* update_ops = nullptr;
    obs::Counter* update_invalidated_boxes = nullptr;
    obs::Histogram* update_latency_us = nullptr;
    obs::Counter* compact_count = nullptr;
    obs::Histogram* compact_latency_us = nullptr;
    obs::Counter* checkpoint_count = nullptr;
    obs::Histogram* checkpoint_latency_us = nullptr;
    obs::Counter* checkpoint_bytes_written = nullptr;
    obs::Counter* checkpoint_fsyncs = nullptr;
    obs::Counter* wal_fsync = nullptr;
    obs::Histogram* commit_group_size = nullptr;
    obs::Counter* slow_queries = nullptr;
  };
  /// Resolve em_ against the registry (constructor, metrics on only).
  void InitMetrics();
  /// Close out one range/kNN request: record counters + latency, finish
  /// the root span (tags: epoch, results, pages), feed the slow-query log
  /// and attach the trace to the report when the request asked for it.
  void FinishRangeQuery(bool keep_trace, uint64_t wall_us,
                        std::shared_ptr<obs::Trace> trace,
                        RangeReport* report) const;
  void FinishKnnQuery(bool keep_trace, uint64_t wall_us,
                      std::shared_ptr<obs::Trace> trace,
                      KnnReport* report) const;
  /// An engine-built trace for this request, or null (no tracing when
  /// metrics are off; built when the request asks or the slow log might
  /// retain it).
  std::shared_ptr<obs::Trace> MaybeTrace(bool requested,
                                         const char* root) const;

  EngineOptions options_;
  std::vector<std::unique_ptr<SpatialBackend>> backends_;
  FlatBackend* flat_ = nullptr;    // owned by backends_
  PagedRTreeBackend* rtree_ = nullptr;  // owned by backends_
  GridBackend* grid_ = nullptr;    // owned by backends_
  ShardedBackend* sharded_ = nullptr;  // owned by backends_

  bool loaded_ = false;
  /// A backend failed mid-ApplyUpdates: the registry is half-mutated and
  /// kAll parity is unrecoverable — every later call fails loudly.
  /// (Atomic: readers check it without holding the commit lock.)
  std::atomic<bool> corrupted_{false};
  neuro::SegmentResolver resolver_;
  touch::JoinInput axons_;
  touch::JoinInput dendrites_;
  geom::Aabb domain_;
  size_t num_segments_ = 0;

  /// The mutable-circuit bookkeeping: current bounds of every live element
  /// (update validation + exact dirty regions for erase/move), the engine
  /// epoch, and the applied-batch history sessions catch up on.
  /// live_bounds_/num_segments_ are written under commit_mu_ only; the
  /// epoch is the reader-visible publication point (stored with release
  /// *after* every backend published the new delta version).
  std::unordered_map<geom::ElementId, geom::Aabb> live_bounds_;
  std::atomic<storage::Epoch> epoch_{0};
  UpdateLog update_log_;

  /// Writer serialization: every ApplyUpdates/Compact/Checkpoint holds it
  /// for its whole commit. Never held while waiting on query results.
  std::mutex commit_mu_;
  /// Group-commit staging (SyncPolicy::kGroup): guards group_queue_ only —
  /// never held across I/O or while commit_mu_ is being acquired in the
  /// same direction (enqueue drops it before taking commit_mu_; the leader
  /// takes it briefly inside commit_mu_ to drain).
  std::mutex group_mu_;
  std::condition_variable group_cv_;
  std::deque<PendingCommit*> group_queue_;
  /// Checkpoints run one at a time (outermost; ordered before commit_mu_).
  std::mutex checkpoint_mu_;
  /// A size-triggered background checkpoint is queued or running.
  std::atomic<bool> checkpoint_pending_{false};
  /// Reader/compactor exclusion: queries and session steps hold it shared,
  /// Compact holds it exclusive across the base rebuild + republish (the
  /// one window where pinned snapshots genuinely cease to exist).
  /// ApplyUpdates does NOT take it — reads and writes overlap.
  mutable std::shared_mutex compact_mu_;
  /// Serializes the warm path (persistent pools + engine result cache):
  /// BufferPool/SimClock are not internally synchronized, so concurrent
  /// kWarm/kDelta requests take turns. Cold requests run on private pools
  /// and only share the backend snapshots — fully concurrent.
  std::mutex warm_mu_;
  /// Guards result_cache_ (innermost lock: taken by the delta path under
  /// warm_mu_, and by ApplyUpdates under commit_mu_).
  std::mutex cache_mu_;

  /// Worker pool for ExecuteBatch lanes and shard fan-out (num_threads > 1).
  std::unique_ptr<exec::ThreadPool> thread_pool_;
  /// Single-threaded pool behind ApplyUpdatesAsync/CompactAsync (lazy; see
  /// MutationPool()).
  std::unique_ptr<exec::ThreadPool> mutation_pool_;
  std::once_flag mutation_pool_once_;

  /// Persistent warm-path state (kWarm / kDelta): one named pool set per
  /// backend inside the manager, surviving across Execute and serial
  /// ExecuteBatch calls. Cold paths and parallel batch lanes build their
  /// own short-lived PoolManager instead.
  std::unique_ptr<storage::PoolManager> pool_manager_;
  /// The manager's per-backend sets, resolved once at LoadCircuit —
  /// warm-path queries must not pay name lookups (or skew the manager's
  /// set-lifecycle counters) per request.
  std::vector<storage::PoolSet*> warm_pools_;
  /// Engine-level semantic cache behind CachePolicy::kDelta (serial paths;
  /// parallel lanes run private per-lane caches for determinism).
  std::unique_ptr<cache::ResultCache> result_cache_;

  /// Durable storage (null when options_.durability.dir is empty): WAL
  /// logging in ApplyUpdates, checkpointing in Compact/Checkpoint, and the
  /// disk store factory backends attach at load.
  std::unique_ptr<DurabilityManager> durability_;
  /// True while Open replays the WAL: suppresses re-logging replayed
  /// batches and the initial checkpoint of FinishLoad.
  bool recovering_ = false;

  /// Observability (null when options_.metrics == kOff): the thread-safe
  /// registry every layer records into, the resolved hot-path pointers,
  /// per-backend counters (parallel to backends_, filled at FinishLoad)
  /// and the slow-query ring.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  EngineMetrics em_;
  std::vector<BackendMetrics> backend_metrics_;
  std::unique_ptr<obs::SlowQueryLog> slow_log_;
};

}  // namespace engine
}  // namespace neurodb

#endif  // NEURODB_ENGINE_QUERY_ENGINE_H_
