#include "engine/query_engine.h"

#include <algorithm>

namespace neurodb {
namespace engine {

using geom::Aabb;
using geom::ElementId;

Status EngineOptions::Validate() const {
  if (pool_pages == 0) {
    return Status::InvalidArgument("EngineOptions: pool_pages must be > 0");
  }
  if (session.pool_pages == 0) {
    return Status::InvalidArgument(
        "EngineOptions: session.pool_pages must be > 0");
  }
  NEURODB_RETURN_NOT_OK(flat.Validate());
  return rtree.Validate();
}

QueryEngine::QueryEngine(EngineOptions options) : options_(std::move(options)) {
  auto flat = std::make_unique<FlatBackend>(options_.flat);
  auto rtree = std::make_unique<PagedRTreeBackend>(options_.rtree);
  flat_ = flat.get();
  rtree_ = rtree.get();
  backends_.push_back(std::move(flat));
  backends_.push_back(std::move(rtree));
}

Status QueryEngine::RegisterBackend(std::unique_ptr<SpatialBackend> backend) {
  if (backend == nullptr) {
    return Status::InvalidArgument("QueryEngine: null backend");
  }
  if (loaded_) {
    return Status::InvalidArgument(
        "QueryEngine: backends must be registered before LoadCircuit");
  }
  for (const auto& existing : backends_) {
    if (std::string(existing->name()) == backend->name()) {
      return Status::AlreadyExists(std::string("QueryEngine: backend '") +
                                   backend->name() + "' already registered");
    }
  }
  backends_.push_back(std::move(backend));
  return Status::OK();
}

Status QueryEngine::LoadCircuit(const neuro::Circuit& circuit) {
  if (loaded_) {
    return Status::AlreadyExists("QueryEngine: circuit already loaded");
  }
  NEURODB_RETURN_NOT_OK(options_.Validate());
  NEURODB_RETURN_NOT_OK(circuit.Validate());

  neuro::SegmentDataset all =
      circuit.FlattenSegments(neuro::NeuriteFilter::kAll);
  if (all.empty()) {
    return Status::InvalidArgument("QueryEngine: circuit has no segments");
  }
  num_segments_ = all.size();
  domain_ = all.Bounds();
  resolver_.AddDataset(all);

  geom::ElementVec elements = all.Elements();
  for (auto& backend : backends_) {
    NEURODB_RETURN_NOT_OK(backend->Build(elements));
  }

  // Join inputs for synapse discovery.
  neuro::SegmentDataset axons =
      circuit.FlattenSegments(neuro::NeuriteFilter::kAxons);
  neuro::SegmentDataset dendrites =
      circuit.FlattenSegments(neuro::NeuriteFilter::kDendrites);
  axons_ = touch::JoinInput::FromSegments(std::move(axons.segments),
                                          std::move(axons.ids));
  dendrites_ = touch::JoinInput::FromSegments(std::move(dendrites.segments),
                                              std::move(dendrites.ids));

  // Persistent pools for the warm path, one per backend.
  warm_clock_ = std::make_unique<SimClock>();
  warm_pools_.reserve(backends_.size());
  for (auto& backend : backends_) {
    warm_pools_.push_back(std::make_unique<storage::BufferPool>(
        backend->store(), options_.pool_pages, warm_clock_.get(),
        options_.cost));
  }

  loaded_ = true;
  return Status::OK();
}

Status QueryEngine::RequireLoaded(const char* op) const {
  if (!loaded_) {
    return Status::InvalidArgument(std::string("QueryEngine::") + op +
                                   ": no circuit loaded");
  }
  return Status::OK();
}

std::vector<const SpatialBackend*> QueryEngine::Select(
    BackendChoice choice) const {
  std::vector<const SpatialBackend*> out;
  switch (choice) {
    case BackendChoice::kFlat:
      out.push_back(flat_);
      break;
    case BackendChoice::kRTree:
      out.push_back(rtree_);
      break;
    case BackendChoice::kAll:
      for (const auto& backend : backends_) out.push_back(backend.get());
      break;
  }
  return out;
}

scout::SessionOptions QueryEngine::EffectiveSessionOptions() const {
  scout::SessionOptions session_options = options_.session;
  session_options.cost = options_.cost;
  return session_options;
}

Status QueryEngine::ExecuteOn(const RangeRequest& request,
                              ResultVisitor* visitor,
                              const std::vector<storage::BufferPool*>& pools,
                              SimClock* clock, RangeReport* report) const {
  std::vector<const SpatialBackend*> selected = Select(request.backend);
  const bool parity_check = selected.size() > 1;
  std::vector<std::vector<ElementId>> id_sets;

  report->rows.reserve(selected.size());
  for (size_t k = 0; k < selected.size(); ++k) {
    const SpatialBackend* backend = selected[k];
    // Locate the pool paired with this backend.
    storage::BufferPool* pool = nullptr;
    for (size_t i = 0; i < backends_.size(); ++i) {
      if (backends_[i].get() == backend) pool = pools[i];
    }

    RangeRow row;
    row.method = backend->name();
    uint64_t t0 = clock->NowMicros();

    Status status;
    if (parity_check) {
      id_sets.emplace_back();
      geom::VectorVisitor ids(&id_sets.back());
      // The primary backend additionally streams to the caller.
      geom::TeeVisitor tee(k == 0 ? visitor : nullptr, &ids);
      status = backend->RangeQuery(request.box, pool, tee, &row.stats);
    } else if (visitor != nullptr) {
      status = backend->RangeQuery(request.box, pool, *visitor, &row.stats);
    } else {
      geom::CountingVisitor count;
      status = backend->RangeQuery(request.box, pool, count, &row.stats);
    }
    NEURODB_RETURN_NOT_OK(status);

    row.stats.time_us = clock->NowMicros() - t0;
    report->rows.push_back(std::move(row));
  }

  report->results = report->rows.empty() ? 0 : report->rows[0].stats.results;
  report->results_match = true;
  if (parity_check) {
    for (auto& ids : id_sets) std::sort(ids.begin(), ids.end());
    for (size_t k = 1; k < id_sets.size(); ++k) {
      if (id_sets[k] != id_sets[0]) report->results_match = false;
    }
  }
  return Status::OK();
}

Result<RangeReport> QueryEngine::Execute(const RangeRequest& request,
                                         ResultVisitor& visitor) {
  NEURODB_RETURN_NOT_OK(RequireLoaded("Execute"));
  if (!request.box.IsValid()) {
    return Status::InvalidArgument(
        "QueryEngine::Execute: invalid box (lo > hi)");
  }

  RangeReport report;
  if (request.cache == CachePolicy::kWarm) {
    std::vector<storage::BufferPool*> pools;
    for (auto& pool : warm_pools_) pools.push_back(pool.get());
    NEURODB_RETURN_NOT_OK(
        ExecuteOn(request, &visitor, pools, warm_clock_.get(), &report));
    return report;
  }

  // Cold: a fresh pool per backend, as the paper's per-query cost model.
  SimClock clock;
  std::vector<std::unique_ptr<storage::BufferPool>> owned;
  std::vector<storage::BufferPool*> pools;
  for (auto& backend : backends_) {
    owned.push_back(std::make_unique<storage::BufferPool>(
        backend->store(), options_.pool_pages, &clock, options_.cost));
    pools.push_back(owned.back().get());
  }
  NEURODB_RETURN_NOT_OK(ExecuteOn(request, &visitor, pools, &clock, &report));
  return report;
}

Result<RangeReport> QueryEngine::Execute(const RangeRequest& request) {
  CountingVisitor ignore;
  return Execute(request, ignore);
}

Result<BatchResult> QueryEngine::ExecuteBatch(
    std::span<const RangeRequest> requests) {
  NEURODB_RETURN_NOT_OK(RequireLoaded("ExecuteBatch"));
  for (const RangeRequest& request : requests) {
    if (!request.box.IsValid()) {
      return Status::InvalidArgument(
          "QueryEngine::ExecuteBatch: invalid box (lo > hi)");
    }
  }

  // Pools shared across the whole batch; one clock spans it.
  SimClock clock;
  std::vector<std::unique_ptr<storage::BufferPool>> owned;
  std::vector<storage::BufferPool*> pools;
  for (auto& backend : backends_) {
    owned.push_back(std::make_unique<storage::BufferPool>(
        backend->store(), options_.pool_pages, &clock, options_.cost));
    pools.push_back(owned.back().get());
  }

  BatchResult out;
  out.reports.reserve(requests.size());
  for (const RangeRequest& request : requests) {
    if (request.cache == CachePolicy::kCold) {
      for (storage::BufferPool* pool : pools) pool->EvictAll();
    }
    RangeReport report;
    NEURODB_RETURN_NOT_OK(
        ExecuteOn(request, nullptr, pools, &clock, &report));
    for (const RangeRow& row : report.rows) {
      out.aggregate.pages_read += row.stats.pages_read;
    }
    out.aggregate.results += report.results;
    out.reports.push_back(std::move(report));
  }

  out.aggregate.queries = requests.size();
  out.aggregate.time_us = clock.NowMicros();
  for (storage::BufferPool* pool : pools) {
    out.aggregate.pool_hits += pool->stats().Get("pool.hits");
    out.aggregate.pool_misses += pool->stats().Get("pool.misses");
  }
  return out;
}

Result<scout::SessionResult> QueryEngine::Execute(
    const WalkthroughRequest& request) {
  NEURODB_ASSIGN_OR_RETURN(Session session, OpenSession(request.method));
  for (const Aabb& query : request.queries) {
    NEURODB_RETURN_NOT_OK(session.Step(query).status());
  }
  return session.Summary();
}

Result<touch::JoinResult> QueryEngine::Execute(const JoinRequest& request) {
  NEURODB_RETURN_NOT_OK(RequireLoaded("Execute"));
  NEURODB_RETURN_NOT_OK(request.options.Validate());
  return touch::RunJoin(request.method, axons_, dendrites_, request.options);
}

Result<Session> QueryEngine::OpenSession(scout::PrefetchMethod method) {
  NEURODB_RETURN_NOT_OK(RequireLoaded("OpenSession"));
  return Session::Open(&flat_->index(), flat_->store(), &resolver_, method,
                       EffectiveSessionOptions());
}

}  // namespace engine
}  // namespace neurodb
